// Package repro's root benchmark suite regenerates every table and
// figure of the paper (see DESIGN.md §3 for the experiment index) and
// additionally benchmarks the hot paths of each substrate, including the
// ablations called out in DESIGN.md §4. Model training happens once per
// cloud outside the timed regions; each benchmark times the experiment
// regeneration itself.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/glm"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/sched"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchScale trims the sampling volume so the whole suite completes in
// minutes while exercising every code path.
func benchScale() experiments.Scale {
	s := experiments.SmallScale()
	s.Samples = 10
	s.Tuples = 20
	return s
}

var (
	azureOnce  sync.Once
	azureCloud *experiments.Cloud

	huaweiOnce  sync.Once
	huaweiCloud *experiments.Cloud
)

func benchAzure(b *testing.B) *experiments.Cloud {
	b.Helper()
	azureOnce.Do(func() {
		azureCloud = experiments.NewCloud(experiments.Azure, benchScale())
		azureCloud.Model() // train outside the timed region
	})
	return azureCloud
}

func benchHuawei(b *testing.B) *experiments.Cloud {
	b.Helper()
	huaweiOnce.Do(func() {
		s := benchScale()
		s.Samples = 6
		s.Tuples = 12
		huaweiCloud = experiments.NewCloud(experiments.Huawei, s)
		huaweiCloud.Model()
	})
	return huaweiCloud
}

// --- One benchmark per paper table/figure ---

func BenchmarkTable1Datasets(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table1(c)
	}
}

func BenchmarkFigure4BatchArrivalsAzure(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(c)
	}
}

func BenchmarkFigure5BatchArrivalsHuawei(b *testing.B) {
	c := benchHuawei(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(c)
	}
}

func BenchmarkFigure6NaiveArrivals(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(c)
	}
}

func BenchmarkTable2Flavors(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table2(c)
	}
}

func BenchmarkTable3Lifetimes(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(c)
	}
}

func BenchmarkTable4SurvivalMSE(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(c)
	}
}

func BenchmarkFigure7CapacityAzure(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(c)
	}
}

func BenchmarkFigure8CapacityHuawei(b *testing.B) {
	c := benchHuawei(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure8(c)
	}
}

func BenchmarkFigure9ReuseDistance(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure9(c)
	}
}

func BenchmarkTable5Packing(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table5(c)
	}
}

func BenchmarkTenXScaling(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.TenX(c)
	}
}

// BenchmarkFigure1Visualize times the batch grouping that backs the
// Figure 1 rendering.
func BenchmarkFigure1Visualize(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Test.PeriodBatches()
	}
}

func BenchmarkCensoringAblation(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.CensoringAblation(c)
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkSynthGenerateDay(b *testing.B) {
	cfg := synth.AzureLike()
	cfg.Days = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Generate(int64(i))
	}
}

func BenchmarkLSTMStepForward(b *testing.B) {
	net := nn.NewLSTM(nn.Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
	st := net.NewState(1)
	x := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.StepForward(x, st)
	}
}

func BenchmarkLSTMTrainWindow(b *testing.B) {
	net := nn.NewLSTM(nn.Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
	g := rng.New(2)
	const steps, batch = 32, 8
	xs := make([]*mat.Dense, steps)
	targets := make([][]int, steps)
	for s := range xs {
		x := mat.NewDense(batch, 64)
		for i := range x.Data {
			x.Data[i] = g.NormFloat64()
		}
		xs[s] = x
		tg := make([]int, batch)
		for i := range tg {
			tg[i] = g.Intn(17)
		}
		targets[s] = tg
	}
	opt := nn.NewAdam(1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		ys, cache := net.Forward(xs, nil)
		dys := make([]*mat.Dense, steps)
		for s, y := range ys {
			_, d, _ := nn.SoftmaxCE(y, targets[s], nil)
			dys[s] = d
		}
		net.Backward(cache, dys)
		opt.Step(net.Params())
	}
}

// --- Parallel execution layer (DESIGN.md "Parallel execution") ---

// benchMatMul times C += A·B at the given worker count. SetBytes counts
// the matrices touched per op so ns/op and MB/s are both reported.
func benchMatMul(b *testing.B, procs int) {
	defer par.SetProcs(par.SetProcs(procs))
	const m, k, n = 256, 256, 256
	g := rng.New(1)
	a := mat.NewDense(m, k)
	bm := mat.NewDense(k, n)
	for i := range a.Data {
		a.Data[i] = g.NormFloat64()
	}
	for i := range bm.Data {
		bm.Data[i] = g.NormFloat64()
	}
	dst := mat.NewDense(m, n)
	b.SetBytes(8 * (m*k + k*n + m*n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulAdd(dst, a, bm)
	}
}

func BenchmarkMatMul(b *testing.B)         { benchMatMul(b, 1) }
func BenchmarkMatMulParallel(b *testing.B) { benchMatMul(b, runtime.NumCPU()) }

// benchLSTMTrain times one sharded forward/backward/Adam window at the
// given worker count; compare against BenchmarkLSTMTrainWindow for the
// unsharded baseline. SetBytes counts the input activations per op.
func benchLSTMTrain(b *testing.B, procs int) {
	defer par.SetProcs(par.SetProcs(procs))
	net := nn.NewLSTM(nn.Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
	g := rng.New(2)
	const steps, batch = 32, 8
	xs := make([]*mat.Dense, steps)
	targets := make([][]int, steps)
	for s := range xs {
		x := mat.NewDense(batch, 64)
		for i := range x.Data {
			x.Data[i] = g.NormFloat64()
		}
		xs[s] = x
		tg := make([]int, batch)
		for i := range tg {
			tg[i] = g.Intn(17)
		}
		targets[s] = tg
	}
	opt := nn.NewAdam(1e-3)
	sharded := nn.NewShardedLSTM(net, batch)
	b.SetBytes(8 * steps * batch * 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := net.NewState(batch)
		sharded.RunWindow(xs, st, func(lo, hi int, ys []*mat.Dense) ([]*mat.Dense, float64, int) {
			dys := make([]*mat.Dense, len(ys))
			for s, y := range ys {
				_, d, _ := nn.SoftmaxCE(y, targets[s][lo:hi], nil)
				dys[s] = d
			}
			return dys, 0, 0
		})
		opt.Step(net.Params())
	}
}

func BenchmarkLSTMTrainSharded(b *testing.B)  { benchLSTMTrain(b, 1) }
func BenchmarkLSTMTrainParallel(b *testing.B) { benchLSTMTrain(b, runtime.NumCPU()) }

func BenchmarkPoissonRegressionIRLS(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrainArrival(c.Train, core.ArrivalOptions{Kind: core.BatchArrivals, UseDOH: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoissonRegressionProx is the DESIGN.md §4 solver ablation
// counterpart of the IRLS bench.
func BenchmarkPoissonRegressionProx(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrainArrival(c.Train, core.ArrivalOptions{
			Kind: core.BatchArrivals, UseDOH: true, L1: 0.01,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKaplanMeier(b *testing.B) {
	c := benchAzure(b)
	obs := make([]survival.Observation, len(c.Train.VMs))
	for i, vm := range c.Train.VMs {
		obs[i] = survival.Observation{Duration: vm.Duration, Censored: vm.Censored}
	}
	bins := survival.PaperBins()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		survival.KaplanMeier(obs, bins)
	}
}

func BenchmarkGenerateTraceLSTM(b *testing.B) {
	c := benchAzure(b)
	m := c.Model()
	g := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(g.Split(), c.TestW)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "streams/s")
}

// benchGenerateBatch times the continuous-batching decode engine at a
// fixed concurrent stream count; compare streams/s against the serial
// BenchmarkGenerateTraceLSTM baseline (the ISSUE 4 acceptance bar is
// ≥2× at 8 streams).
func benchGenerateBatch(b *testing.B, streams int) {
	c := benchAzure(b)
	m := c.Model()
	g := rng.New(1)
	gs := make([]*rng.RNG, streams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range gs {
			gs[j] = g.Split()
		}
		m.GenerateBatch(gs, c.TestW)
	}
	b.ReportMetric(float64(b.N*streams)/b.Elapsed().Seconds(), "streams/s")
}

func BenchmarkGenerateBatchLSTM1(b *testing.B)  { benchGenerateBatch(b, 1) }
func BenchmarkGenerateBatchLSTM8(b *testing.B)  { benchGenerateBatch(b, 8) }
func BenchmarkGenerateBatchLSTM64(b *testing.B) { benchGenerateBatch(b, 64) }

// benchGenerateSharded times the sharded decode path (DESIGN.md §6.3)
// at a fixed stream count and shard count. Workers follow GOMAXPROCS so
// that bench.sh's GOMAXPROCS=2/4/8 re-runs measure real multi-core
// scaling; compare streams/s against BenchmarkGenerateBatchLSTM64 from
// the same run (the ISSUE 6 acceptance bar is ≥3× at 8 shards on an
// 8-core host — a single-core host pins every shard to the same CPU, so
// the per-GOMAXPROCS rows there only certify no regression).
func benchGenerateSharded(b *testing.B, streams, shards int) {
	defer par.SetProcs(par.SetProcs(runtime.GOMAXPROCS(0)))
	c := benchAzure(b)
	m := c.Model()
	g := rng.New(1)
	gs := make([]*rng.RNG, streams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range gs {
			gs[j] = g.Split()
		}
		m.GenerateBatchSharded(gs, c.TestW, shards)
	}
	b.ReportMetric(float64(b.N*streams)/b.Elapsed().Seconds(), "streams/s")
}

func BenchmarkGenerateShardedLSTM64x2(b *testing.B) { benchGenerateSharded(b, 64, 2) }
func BenchmarkGenerateShardedLSTM64x4(b *testing.B) { benchGenerateSharded(b, 64, 4) }
func BenchmarkGenerateShardedLSTM64x8(b *testing.B) { benchGenerateSharded(b, 64, 8) }

// BenchmarkReplayDecode times the trace-replay path end to end
// (DESIGN.md §9): parse a recorded generation from its versioned JSON
// record, regenerate it through the serial decode engine from the
// recorded seed/window/scale, and verify VM-by-VM agreement with the
// recorded bytes. Compare against BenchmarkGenerateTraceLSTM to read
// off the record parse + verify overhead on top of raw decode.
func BenchmarkReplayDecode(b *testing.B) {
	c := benchAzure(b)
	m := c.Model()
	eng, err := core.NewGenEngine(m, core.EngineSpec{Kind: "serial"})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	const seed = 7
	tr, err := eng.Generate(ctx, rng.New(seed), c.TestW, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr = core.WithCatalog(tr, c.Full.Flavors)
	data, err := workload.NewRecord("bench", "serial", "f64",
		workload.ModelTag(m), seed, c.TestW, 1, tr).Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := workload.ReadRecord(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		replayed, err := workload.Replay(ctx, eng, rec)
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.Verify(replayed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "replays/s")
}

// benchGenerateBatchF32 is benchGenerateBatch on the float32 fast path
// (DESIGN.md §6.4); compare streams/s against the same-shape f64 rows
// (the ISSUE 8 acceptance bar is f32 sharded ≥1.5× f64 at 64 streams).
func benchGenerateBatchF32(b *testing.B, streams int) {
	c := benchAzure(b)
	m := c.Model()
	m.PrepareF32()
	g := rng.New(1)
	gs := make([]*rng.RNG, streams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range gs {
			gs[j] = g.Split()
		}
		m.GenerateBatchF32(gs, c.TestW)
	}
	b.ReportMetric(float64(b.N*streams)/b.Elapsed().Seconds(), "streams/s")
}

func BenchmarkGenerateBatchLSTM64F32(b *testing.B) { benchGenerateBatchF32(b, 64) }

// benchGenerateShardedF32 is benchGenerateSharded on the f32 path.
func benchGenerateShardedF32(b *testing.B, streams, shards int) {
	defer par.SetProcs(par.SetProcs(runtime.GOMAXPROCS(0)))
	c := benchAzure(b)
	m := c.Model()
	m.PrepareF32()
	g := rng.New(1)
	gs := make([]*rng.RNG, streams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range gs {
			gs[j] = g.Split()
		}
		m.GenerateBatchShardedF32(gs, c.TestW, shards)
	}
	b.ReportMetric(float64(b.N*streams)/b.Elapsed().Seconds(), "streams/s")
}

func BenchmarkGenerateShardedLSTM64x2F32(b *testing.B) { benchGenerateShardedF32(b, 64, 2) }
func BenchmarkGenerateShardedLSTM64x4F32(b *testing.B) { benchGenerateShardedF32(b, 64, 4) }

// benchServeDecode times a full request through the continuous-batching
// serve engine, with and without a request trace attached. bench.sh
// reports the Off/On pair as the tracing overhead; DESIGN.md §7 budgets
// it at noise level because the disabled path is a single pointer test
// per stream per round and the enabled path only stamps time.Now() at
// phase boundaries.
func benchServeDecode(b *testing.B, traced bool) {
	c := benchAzure(b)
	eng := core.NewEngine(c.Model(), 0, 8)
	defer eng.Close()
	tc := rtrace.NewTracer(256)
	g := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		var rt *rtrace.Trace
		if traced {
			rt = tc.StartTrace()
			ctx = rtrace.NewContext(ctx, rt)
		}
		if _, err := eng.Generate(ctx, g.Split(), c.TestW, 0); err != nil {
			b.Fatal(err)
		}
		if traced {
			tc.Finish(rt)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "streams/s")
}

func BenchmarkServeDecodeTracingOff(b *testing.B) { benchServeDecode(b, false) }
func BenchmarkServeDecodeTracingOn(b *testing.B)  { benchServeDecode(b, true) }

func BenchmarkGenerateTraceNaive(b *testing.B) {
	c := benchAzure(b)
	n := c.Naive()
	g := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Generate(g.Split(), c.TestW)
	}
}

func BenchmarkPackBusiestFit(b *testing.B) {
	c := benchAzure(b)
	g := rng.New(1)
	events := sched.Events(c.Test, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Pack(c.Test, events, sched.PackOptions{
			Servers: 20, CPUCap: 64, MemCap: 256, Alg: sched.BusiestFit{},
		}, g)
	}
}

func BenchmarkReuseDistances(b *testing.B) {
	c := benchAzure(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ReuseDistances(c.Test)
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkCategoricalCDF vs BenchmarkCategoricalAlias: the two
// categorical samplers available to the hot generation loop.
func BenchmarkCategoricalCDF(b *testing.B) {
	g := rng.New(1)
	w := rng.ZipfWeights(260, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Categorical(w)
	}
}

func BenchmarkCategoricalAlias(b *testing.B) {
	g := rng.New(1)
	a := rng.NewAlias(rng.ZipfWeights(260, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(g)
	}
}

// BenchmarkLSTMForwardBatched vs BenchmarkLSTMForwardUnbatched: the
// batched training step amortizes loop overhead across sequences.
func BenchmarkLSTMForwardBatched(b *testing.B) {
	benchForward(b, 8)
}

func BenchmarkLSTMForwardUnbatched(b *testing.B) {
	benchForward(b, 1)
}

func benchForward(b *testing.B, batch int) {
	net := nn.NewLSTM(nn.Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
	g := rng.New(2)
	const steps = 16
	xs := make([]*mat.Dense, steps)
	for s := range xs {
		x := mat.NewDense(batch, 64)
		for i := range x.Data {
			x.Data[i] = g.NormFloat64()
		}
		xs[s] = x
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(xs, nil)
	}
	// Report per-sequence-step cost so batched/unbatched are comparable.
	b.ReportMetric(float64(b.N*steps*batch)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkHazardHead vs BenchmarkPMFHead: hazard parameterization (the
// paper's choice) vs a PMF/softmax head of the same width.
func BenchmarkHazardHead(b *testing.B) {
	logits := mat.NewDense(8, 47)
	targets := mat.NewDense(8, 47)
	mask := mat.NewDense(8, 47)
	g := rng.New(3)
	for i := range logits.Data {
		logits.Data[i] = g.NormFloat64()
		if g.Bernoulli(0.5) {
			targets.Data[i] = 1
		}
		if g.Bernoulli(0.7) {
			mask.Data[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.MaskedBCEWithLogits(logits, targets, mask)
	}
}

func BenchmarkPMFHead(b *testing.B) {
	logits := mat.NewDense(8, 47)
	g := rng.New(3)
	for i := range logits.Data {
		logits.Data[i] = g.NormFloat64()
	}
	targets := make([]int, 8)
	for i := range targets {
		targets[i] = g.Intn(47)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.SoftmaxCE(logits, targets, nil)
	}
}

// Architecture ablation benches: per-step inference cost of the three
// sequence architectures at equal capacity-ish settings.
func BenchmarkGRUStepForward(b *testing.B) {
	net := nn.NewGRU(nn.Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
	st := net.NewState(1)
	x := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.StepForward(x, st)
	}
}

func BenchmarkTransformerWindowStep(b *testing.B) {
	net := nn.NewTransformer(nn.TransformerConfig{
		InputDim: 64, ModelDim: 48, Heads: 4, FFDim: 96, Layers: 2,
		OutputDim: 17, MaxLen: 64,
	}, rng.New(1))
	w := net.NewWindow()
	x := make([]float64, 64)
	// Pre-fill the window so each timed step pays the full-context cost.
	for i := 0; i < 64; i++ {
		w.Append(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Append(x)
	}
}

func BenchmarkTransformerForwardSeq(b *testing.B) {
	net := nn.NewTransformer(nn.TransformerConfig{
		InputDim: 64, ModelDim: 48, Heads: 4, FFDim: 96, Layers: 2,
		OutputDim: 17, MaxLen: 64,
	}, rng.New(1))
	g := rng.New(2)
	x := mat.NewDense(64, 64)
	for i := range x.Data {
		x.Data[i] = g.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkTraceSliceCensor(b *testing.B) {
	c := benchAzure(b)
	w := trace.Window{Start: 0, End: c.Full.Periods / 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Full.Slice(w, 0)
	}
}

func BenchmarkGLMFitLarge(b *testing.B) {
	g := rng.New(1)
	n, d := 2000, 40
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, g.Uniform(0, 1))
		}
		y[i] = float64(g.Poisson(3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := glm.Fit(x, y, glm.Options{Solver: glm.IRLS, L2: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
