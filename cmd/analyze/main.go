// Command analyze prints a workload characterization report for a
// synthetic preset or a trace CSV: arrival dispersion and seasonality,
// batch structure, flavor popularity, lifetime quantiles and censoring,
// and the inter-job correlations (momentum) that the paper's models
// exploit.
//
// Usage:
//
//	analyze [-cloud azure|huawei] [-days 6] [-seed 1]
//	analyze -csv trace.csv -flavors 16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	cloud := flag.String("cloud", "azure", "azure or huawei preset (ignored with -csv)")
	days := flag.Int("days", 6, "days of synthetic workload")
	seed := flag.Int64("seed", 1, "generation seed")
	csvPath := flag.String("csv", "", "analyze this trace CSV instead of generating")
	flavors := flag.Int("flavors", 16, "flavor count for -csv input")
	flag.Parse()

	var tr *trace.Trace
	var name string
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fs := &trace.FlavorSet{}
		for i := 0; i < *flavors; i++ {
			fs.Defs = append(fs.Defs, trace.FlavorDef{Name: fmt.Sprintf("f%d", i), CPU: 1, MemGB: 1})
		}
		tr, err = trace.ReadCSV(f, fs, 1<<30)
		if err != nil {
			fatal(err)
		}
		max := 0
		for _, vm := range tr.VMs {
			if vm.Start > max {
				max = vm.Start
			}
		}
		tr.Periods = max + 1
		name = *csvPath
	} else {
		cfg := synth.AzureLike()
		if *cloud == "huawei" {
			cfg = synth.HuaweiLike()
		}
		cfg.Days = *days
		full := cfg.Generate(*seed)
		// Impose an observation window so censoring statistics are
		// realistic.
		tr = full.Slice(trace.Window{Start: 0, End: full.Periods}, 0)
		name = cfg.Name
	}
	analysis.Characterize(name, tr).Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
