// Command experiments regenerates the paper's tables and figures on the
// synthetic clouds and prints them in the paper's format.
//
// Usage:
//
//	experiments [-full] [-cloud azure|huawei|both] [-exp all|table1|fig4|fig5|fig6|table2|table3|table4|fig7|fig8|fig9|table5|tenx|censoring|joint] [-seed N] [-journal run.jsonl]
//	experiments -workload-spec mixed -exp table2
//	experiments -replay-trace served.jsonl -exp table2,fig9
//
// The default scale is the fast test configuration; -full uses the
// larger configuration (several minutes of LSTM training per cloud).
//
// -workload-spec replaces the hardcoded clouds with one declarative
// scenario (a preset name or a JSON spec file, DESIGN.md §9); the
// experiment suite runs over the compiled spec exactly as it does over
// the presets. -replay-trace goes one step further: the first record
// in the given file (the workload record format cmd/traced -record and
// cmd/tracegen -record write) becomes the ground-truth history, so the
// sched/capacity experiments run against exactly the bytes that were
// served.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/workload"
)

// readRecords loads a non-empty workload record file.
func readRecords(path string) ([]*workload.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := workload.ReadRecords(f)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("replay-trace: %s holds no records", path)
	}
	return recs, nil
}

func main() {
	full := flag.Bool("full", false, "run the larger FullScale configuration")
	cloud := flag.String("cloud", "both", "azure, huawei, or both")
	workloadSpec := flag.String("workload-spec", "", "run one declarative scenario instead of the -cloud presets: a preset name (azure-like, huawei-like, mixed) or a JSON spec file")
	replayTrace := flag.String("replay-trace", "", "use the first record in this file (workload record format) as the ground-truth history instead of generating one")
	exp := flag.String("exp", "all", "comma-separated experiments to run (all, table1, fig4, fig5, fig6, table2, table3, table4, fig7, fig8, fig9, table5, tenx, censoring, joint, forecast, arch, heads)")
	seed := flag.Int64("seed", 1, "experiment seed")
	export := flag.String("export", "", "also write per-figure TSV plot data into this directory")
	journalPath := flag.String("journal", "", "write a JSONL telemetry journal (per-epoch training events, phase spans) to this path")
	flag.Parse()

	scale := experiments.SmallScale()
	if *full {
		scale = experiments.FullScale()
	}
	scale.Seed = *seed

	var journal *obs.Journal
	if *journalPath != "" {
		var err error
		journal, err = obs.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: open journal:", err)
			os.Exit(1)
		}
		defer journal.Close()
		// Every training loop in every cloud reports through the same
		// journal (writes are line-atomic, so the parallel cloud fits
		// interleave cleanly).
		scale.Train.Obs = journal
	}
	journal.Event("experiments_start", map[string]any{
		"cloud": *cloud, "exp": *exp, "seed": *seed, "full": *full,
	})

	wants := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	want := func(name string) bool { return wants["all"] || wants[name] }

	var clouds []*experiments.Cloud
	start := time.Now()
	switch {
	case *replayTrace != "":
		// Trace replay: a recorded generation is the ground truth.
		recs, err := readRecords(*replayTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		tr := recs[0].Trace()
		cfg := synth.AzureLike()
		if *cloud == "huawei" {
			cfg = synth.HuaweiLike()
		}
		id := experiments.Azure
		if *cloud == "huawei" {
			id = experiments.Huawei
		}
		clouds = append(clouds, experiments.NewCloudFromTrace(id, scale, cfg, tr))
		fmt.Printf("Replaying %d VMs over %d periods from %s\n", len(tr.VMs), tr.Periods, *replayTrace)
	case *workloadSpec != "":
		// Declarative scenario: one cloud, compiled from the spec. The
		// catalog decides which preset's experiment slots it fills.
		spec := workload.Preset(*workloadSpec)
		if spec == nil {
			data, err := os.ReadFile(*workloadSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -workload-spec %q is neither a preset (%v) nor a readable file: %v\n",
					*workloadSpec, workload.PresetNames(), err)
				os.Exit(1)
			}
			spec, err = workload.ParseSpec(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		cfg, err := spec.Compile()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: compile workload spec:", err)
			os.Exit(1)
		}
		id := experiments.Azure
		if spec.Flavors.Catalog == "huawei259" {
			id = experiments.Huawei
		}
		clouds = append(clouds, experiments.NewCloudFromConfig(id, scale, cfg))
		fmt.Printf("Workload spec %q: %d users, %d cohorts\n", spec.Name, spec.Users, len(spec.Cohorts))
	default:
		if *cloud == "azure" || *cloud == "both" {
			clouds = append(clouds, experiments.NewCloud(experiments.Azure, scale))
		}
		if *cloud == "huawei" || *cloud == "both" {
			clouds = append(clouds, experiments.NewCloud(experiments.Huawei, scale))
		}
	}
	if len(clouds) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: unknown -cloud value")
		os.Exit(2)
	}
	fitSpan := journal.StartSpan("fit_all")
	experiments.FitAll(clouds...)
	fitSpan.End()
	fmt.Printf("Prepared and fitted %d synthetic cloud(s) in %v\n\n", len(clouds), time.Since(start).Round(time.Millisecond))

	if want("table1") {
		experiments.RenderTable1(os.Stdout, experiments.Table1(clouds...))
		fmt.Println()
	}
	for _, c := range clouds {
		name := c.ID.String()
		if want("fig4") && c.ID == experiments.Azure {
			sampled, lastDay := experiments.Figure4(c)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 4 ("+name+")", sampled)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 4 ablation ("+name+")", lastDay)
			fmt.Println()
		}
		if want("fig5") && c.ID == experiments.Huawei {
			sampled, lastDay := experiments.Figure5(c)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 5 ("+name+")", sampled)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 5 ablation ("+name+")", lastDay)
			fmt.Println()
		}
		if want("fig6") {
			noDOH, withDOH := experiments.Figure6(c)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 6 ("+name+")", noDOH)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 6 with DOH ("+name+")", withDOH)
			fmt.Println()
		}
		if want("table2") {
			experiments.RenderTable2(os.Stdout, name, experiments.Table2(c))
			fmt.Println()
		}
		if want("table3") {
			experiments.RenderTable3(os.Stdout, name, experiments.Table3(c))
			fmt.Println()
		}
		if want("table4") && c.ID == experiments.Azure {
			experiments.RenderTable4(os.Stdout, experiments.Table4(c))
			fmt.Println()
		}
		if want("censoring") {
			experiments.RenderCensoring(os.Stdout, name, experiments.CensoringAblation(c))
			fmt.Println()
		}
		if want("fig7") && c.ID == experiments.Azure {
			experiments.RenderCapacity(os.Stdout, "Figure 7 ("+name+"). Total-CPU forecast coverage", experiments.Figure7(c))
			fmt.Println()
		}
		if want("fig8") && c.ID == experiments.Huawei {
			experiments.RenderCapacity(os.Stdout, "Figure 8 ("+name+"). Total-CPU forecast coverage", experiments.Figure8(c))
			fmt.Println()
		}
		if want("fig9") {
			actual, results := experiments.Figure9(c)
			experiments.RenderReuse(os.Stdout, name, actual, results)
			fmt.Println()
		}
		if want("table5") {
			experiments.RenderPacking(os.Stdout, name, experiments.Table5(c))
			fmt.Println()
		}
		if want("tenx") {
			experiments.RenderTenX(os.Stdout, name, experiments.TenX(c))
			fmt.Println()
		}
		if want("joint") && c.ID == experiments.Azure {
			experiments.RenderJoint(os.Stdout, name, experiments.JointVsStaged(c))
			fmt.Println()
		}
		if want("forecast") && c.ID == experiments.Azure {
			experiments.RenderForecast(os.Stdout, name, experiments.ForecastVsGenerative(c))
			fmt.Println()
		}
		if want("arch") && c.ID == experiments.Azure {
			experiments.RenderArch(os.Stdout, name, experiments.ArchitectureAblation(c))
			fmt.Println()
		}
		if want("heads") && c.ID == experiments.Azure {
			experiments.RenderHeads(os.Stdout, name, experiments.PMFvsHazard(c))
			fmt.Println()
		}
	}
	if *export != "" {
		if err := experiments.ExportAll(*export, clouds...); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: export:", err)
			os.Exit(1)
		}
		fmt.Printf("Plot data exported to %s\n", *export)
	}
	journal.Event("experiments_done", map[string]any{
		"wall_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
	fmt.Printf("Total time: %v\n", time.Since(start).Round(time.Millisecond))
}
