// Command experiments regenerates the paper's tables and figures on the
// synthetic clouds and prints them in the paper's format.
//
// Usage:
//
//	experiments [-full] [-cloud azure|huawei|both] [-exp all|table1|fig4|fig5|fig6|table2|table3|table4|fig7|fig8|fig9|table5|tenx|censoring|joint] [-seed N] [-journal run.jsonl]
//
// The default scale is the fast test configuration; -full uses the
// larger configuration (several minutes of LSTM training per cloud).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	full := flag.Bool("full", false, "run the larger FullScale configuration")
	cloud := flag.String("cloud", "both", "azure, huawei, or both")
	exp := flag.String("exp", "all", "comma-separated experiments to run (all, table1, fig4, fig5, fig6, table2, table3, table4, fig7, fig8, fig9, table5, tenx, censoring, joint, forecast, arch, heads)")
	seed := flag.Int64("seed", 1, "experiment seed")
	export := flag.String("export", "", "also write per-figure TSV plot data into this directory")
	journalPath := flag.String("journal", "", "write a JSONL telemetry journal (per-epoch training events, phase spans) to this path")
	flag.Parse()

	scale := experiments.SmallScale()
	if *full {
		scale = experiments.FullScale()
	}
	scale.Seed = *seed

	var journal *obs.Journal
	if *journalPath != "" {
		var err error
		journal, err = obs.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: open journal:", err)
			os.Exit(1)
		}
		defer journal.Close()
		// Every training loop in every cloud reports through the same
		// journal (writes are line-atomic, so the parallel cloud fits
		// interleave cleanly).
		scale.Train.Obs = journal
	}
	journal.Event("experiments_start", map[string]any{
		"cloud": *cloud, "exp": *exp, "seed": *seed, "full": *full,
	})

	wants := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	want := func(name string) bool { return wants["all"] || wants[name] }

	var clouds []*experiments.Cloud
	runAzure := *cloud == "azure" || *cloud == "both"
	runHuawei := *cloud == "huawei" || *cloud == "both"
	start := time.Now()
	var azure, huawei *experiments.Cloud
	if runAzure {
		azure = experiments.NewCloud(experiments.Azure, scale)
		clouds = append(clouds, azure)
	}
	if runHuawei {
		huawei = experiments.NewCloud(experiments.Huawei, scale)
		clouds = append(clouds, huawei)
	}
	if len(clouds) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: unknown -cloud value")
		os.Exit(2)
	}
	fitSpan := journal.StartSpan("fit_all")
	experiments.FitAll(clouds...)
	fitSpan.End()
	fmt.Printf("Prepared and fitted %d synthetic cloud(s) in %v\n\n", len(clouds), time.Since(start).Round(time.Millisecond))

	if want("table1") {
		experiments.RenderTable1(os.Stdout, experiments.Table1(clouds...))
		fmt.Println()
	}
	for _, c := range clouds {
		name := c.ID.String()
		if want("fig4") && c.ID == experiments.Azure {
			sampled, lastDay := experiments.Figure4(c)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 4 ("+name+")", sampled)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 4 ablation ("+name+")", lastDay)
			fmt.Println()
		}
		if want("fig5") && c.ID == experiments.Huawei {
			sampled, lastDay := experiments.Figure5(c)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 5 ("+name+")", sampled)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 5 ablation ("+name+")", lastDay)
			fmt.Println()
		}
		if want("fig6") {
			noDOH, withDOH := experiments.Figure6(c)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 6 ("+name+")", noDOH)
			experiments.RenderArrivalCoverage(os.Stdout, "Figure 6 with DOH ("+name+")", withDOH)
			fmt.Println()
		}
		if want("table2") {
			experiments.RenderTable2(os.Stdout, name, experiments.Table2(c))
			fmt.Println()
		}
		if want("table3") {
			experiments.RenderTable3(os.Stdout, name, experiments.Table3(c))
			fmt.Println()
		}
		if want("table4") && c.ID == experiments.Azure {
			experiments.RenderTable4(os.Stdout, experiments.Table4(c))
			fmt.Println()
		}
		if want("censoring") {
			experiments.RenderCensoring(os.Stdout, name, experiments.CensoringAblation(c))
			fmt.Println()
		}
		if want("fig7") && c.ID == experiments.Azure {
			experiments.RenderCapacity(os.Stdout, "Figure 7 ("+name+"). Total-CPU forecast coverage", experiments.Figure7(c))
			fmt.Println()
		}
		if want("fig8") && c.ID == experiments.Huawei {
			experiments.RenderCapacity(os.Stdout, "Figure 8 ("+name+"). Total-CPU forecast coverage", experiments.Figure8(c))
			fmt.Println()
		}
		if want("fig9") {
			actual, results := experiments.Figure9(c)
			experiments.RenderReuse(os.Stdout, name, actual, results)
			fmt.Println()
		}
		if want("table5") {
			experiments.RenderPacking(os.Stdout, name, experiments.Table5(c))
			fmt.Println()
		}
		if want("tenx") {
			experiments.RenderTenX(os.Stdout, name, experiments.TenX(c))
			fmt.Println()
		}
		if want("joint") && c.ID == experiments.Azure {
			experiments.RenderJoint(os.Stdout, name, experiments.JointVsStaged(c))
			fmt.Println()
		}
		if want("forecast") && c.ID == experiments.Azure {
			experiments.RenderForecast(os.Stdout, name, experiments.ForecastVsGenerative(c))
			fmt.Println()
		}
		if want("arch") && c.ID == experiments.Azure {
			experiments.RenderArch(os.Stdout, name, experiments.ArchitectureAblation(c))
			fmt.Println()
		}
		if want("heads") && c.ID == experiments.Azure {
			experiments.RenderHeads(os.Stdout, name, experiments.PMFvsHazard(c))
			fmt.Println()
		}
	}
	if *export != "" {
		if err := experiments.ExportAll(*export, clouds...); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: export:", err)
			os.Exit(1)
		}
		fmt.Printf("Plot data exported to %s\n", *export)
	}
	journal.Event("experiments_done", map[string]any{
		"wall_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
	fmt.Printf("Total time: %v\n", time.Since(start).Round(time.Millisecond))
}
