// Command hypertune runs the paper's §4.2 development-set grid searches:
// the ridge penalty for the batch-arrival Poisson regression, the
// learning rate and weight decay for the flavor and lifetime LSTMs, and
// the geometric DOH-sampling probability.
//
// Usage:
//
//	hypertune [-cloud azure|huawei] [-days 9] [-seed 1] [-stage all|arrival|flavor|lifetime|doh]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/tune"
)

func main() {
	cloud := flag.String("cloud", "azure", "azure or huawei preset")
	days := flag.Int("days", 9, "history length in days")
	seed := flag.Int64("seed", 1, "data seed")
	stage := flag.String("stage", "all", "all, arrival, flavor, lifetime, or doh")
	flag.Parse()

	cfg := synth.AzureLike()
	if *cloud == "huawei" {
		cfg = synth.HuaweiLike()
	}
	cfg.Days = *days
	full := cfg.Generate(*seed)
	devOff := full.Periods * 8 / 10
	train := full.Slice(trace.Window{Start: 0, End: devOff}, 0)
	dev := full.Slice(trace.Window{Start: devOff, End: full.Periods}, 0)
	fmt.Printf("tuning on %s: %d train VMs, %d dev VMs\n\n", cfg.Name, len(train.VMs), len(dev.VMs))

	report := func(name string, results []tune.Result, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "hypertune: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%s grid (best first):\n", name)
		for _, r := range results {
			fmt.Printf("  %v  score %.5f\n", r.Params, r.Score)
		}
		fmt.Println()
	}

	want := func(s string) bool { return *stage == "all" || *stage == s }
	start := time.Now()
	if want("arrival") {
		res, err := tune.ArrivalGrid(train, dev, devOff, []float64{0.01, 0.1, 1, 10})
		report("arrival L2", res, err)
	}
	if want("doh") {
		res, err := tune.DOHGeomGrid(train, dev, devOff, []float64{1.0 / 14, 1.0 / 7, 1.0 / 3, 0.9}, 200)
		report("DOH geometric p (score = 1 - coverage)", res, err)
	}
	base := core.TrainConfig{Hidden: 24, Layers: 2, SeqLen: 64, BatchSize: 8, Epochs: 25, Seed: *seed}
	if want("flavor") {
		res, err := tune.FlavorGrid(train, dev, devOff, base,
			[]float64{3e-3, 8e-3}, []float64{0, 1e-4})
		report("flavor LSTM (lr, wd)", res, err)
	}
	if want("lifetime") {
		res, err := tune.LifetimeGrid(train, dev, devOff, survival.PaperBins(), base,
			[]float64{3e-3, 8e-3}, []float64{0, 1e-4})
		report("lifetime LSTM (lr, wd)", res, err)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
