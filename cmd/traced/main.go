// Command traced trains the generative model (or loads a serialized
// one) and serves synthetic traces over HTTP — the "trace generation as
// a service" deployment of the model.
//
// Usage:
//
//	traced [-addr :8080] [-cloud azure|huawei] [-days 9] [-seed 1]
//	traced -model model.bin -flavors azure
//	traced -journal run.jsonl -debug-addr :6060
//	traced -batch-window 2ms -max-batch 64
//	traced -engine sharded -decode-shards 8
//	traced -precision f32 [-fast-math]
//	traced -checkpoint-dir ckpt/ -checkpoint-every 5 -resume
//	traced -workload-spec mixed
//	traced -workload-spec examples/workloads/mixed.json -record served.jsonl
//
// -workload-spec replaces -cloud with the declarative workload layer
// (DESIGN.md §9): its value is either a named preset (azure-like,
// huawei-like, mixed — the first two compile to exactly the hardcoded
// -cloud configs) or a path to a JSON spec file describing
// heterogeneous client cohorts with per-cohort rate fractions, arrival
// processes (poisson, bursty gamma, weibull), lifetime overrides, and
// SLO classes. The active spec is echoed under "workload" on GET
// /metrics and survives hot reloads unchanged. -record appends every
// served /generate trace — with the seed, window, scale, engine, and
// model tag that reproduce it — to a JSONL file in the versioned
// record format that cmd/tracegen -replay and cmd/experiments
// -replay-trace consume.
//
// With -checkpoint-dir set, training writes an atomic, versioned
// checkpoint (weights + optimizer moments + RNG stream state) every
// -checkpoint-every epochs; a process killed mid-training restarts with
// -resume and reaches byte-identical final weights (DESIGN.md §8). The
// trained serving snapshot is also published into the checkpoint
// directory, and SIGHUP (or POST /-/reload) hot-swaps the serving model
// from the newest published snapshot without dropping in-flight
// /generate requests.
//
// Concurrent POST /generate requests are coalesced into shared decode
// batches (continuous batching, DESIGN.md §6.2): -batch-window is how
// long a request waits for others to join its batch, -max-batch caps
// the streams decoded together. -engine selects the decode engine from
// the registry (serial, batched, or sharded); -engine sharded splits
// the fleet across -decode-shards per-core shards (default GOMAXPROCS)
// with deterministic seed-hash stream placement (DESIGN.md §6.3).
// Responses stay byte-identical to serial decodes of the same seed
// regardless of engine kind, batching, or shard count.
//
// -precision f32 serves through the float32 fast path (DESIGN.md
// §6.4): the LSTM step GEMMs run on f32 weight slabs for higher
// decode throughput. Responses remain deterministic per seed and
// identical across engine kinds, but differ (within validated
// tolerances) from the f64 reference; the divergence is measured
// against the f64 path at startup and on every hot reload, and a
// model outside tolerance refuses to serve. -fast-math additionally
// selects FMA-fused f32 kernels.
//
// Observability (DESIGN.md §7): -trace-buffer N keeps the last N
// finished request traces in a ring — every /generate answers with an
// X-Trace-Id header and GET /debug/traces serves the span trees (queue,
// coalesce, decode, encode per request); 0 disables tracing entirely.
// -fidelity-window N streams every served trace through the live drift
// monitor (flavor NLL, survival MSE, batch-arrival deviance against a
// reference captured at snapshot-publish time), surfacing fidelity.*
// gauges and a drift flag on GET /metrics; 0 disables it. Both are
// read-only: enabling them changes no response bytes.
//
// Endpoints: GET /healthz, GET /readyz, GET /model, GET /metrics,
// GET /debug/traces, POST /generate (see internal/server for the
// request schema). -journal writes a JSONL telemetry journal (per-epoch
// training events, phase spans; write failures surface as
// obs.journal_errors on /metrics); the optional -debug-addr listener
// exposes net/http/pprof under /debug/pprof/ and expvar (including the
// metrics registry and parallel layer counters) under /debug/vars.
// SIGINT/SIGTERM drain in-flight requests via http.Server.Shutdown
// before exiting.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fidelity"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/server"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

// servingPrefix names the published serving snapshots inside the
// checkpoint directory: serving-model-<seq>.ckpt, newest wins.
const servingPrefix = "serving-model"

// publishServing atomically writes the trained model as the next
// serving snapshot version in the checkpoint directory.
func publishServing(dir string, m *core.Model) (string, error) {
	blob, err := m.MarshalBinary()
	if err != nil {
		return "", err
	}
	store := &ckpt.Store{Dir: dir}
	seq := 1
	if prev := store.Seqs(servingPrefix); len(prev) > 0 {
		seq = prev[len(prev)-1] + 1
	}
	return store.Save(servingPrefix, seq, blob)
}

// loadServing reads the newest intact serving snapshot from the
// checkpoint directory, skipping corrupt or truncated versions.
func loadServing(dir string) (*core.Model, error) {
	store := &ckpt.Store{Dir: dir}
	blob, seq, skipped, err := store.LoadLatest(servingPrefix)
	if err != nil {
		return nil, fmt.Errorf("load serving snapshot: %w", err)
	}
	if skipped > 0 {
		log.Printf("traced: skipped %d corrupt serving snapshot(s)", skipped)
	}
	m := &core.Model{}
	if err := m.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("decode serving snapshot %d: %w", seq, err)
	}
	return m, nil
}

// calibrationSeed is the fixed RNG seed for fidelity-reference decodes
// of a loaded or reloaded model. It is a dedicated stream created with
// rng.New — never split from serving seeds — so capturing a reference
// cannot perturb a single served byte.
const calibrationSeed = 0x5EED

// fidelityReference fingerprints a model by decoding a two-day
// calibration window at the end of its training history: the
// distribution the monitor will compare live traffic against.
func fidelityReference(m *core.Model) fidelity.Reference {
	start := m.Flavor.HistoryDays * trace.PeriodsPerDay
	w := trace.Window{Start: start, End: start + 2*trace.PeriodsPerDay}
	return fidelity.ReferenceFromTrace(m.Generate(rng.New(calibrationSeed), w), survival.PaperBins().Edges)
}

// loadModelFile reads a model serialized with MarshalBinary from disk.
func loadModelFile(path string) (*core.Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read model: %w", err)
	}
	m := &core.Model{}
	if err := m.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("load model %s: %w", path, err)
	}
	return m, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cloud := flag.String("cloud", "azure", "azure or huawei preset")
	workloadSpec := flag.String("workload-spec", "", "workload spec: a preset name (azure-like, huawei-like, mixed) or a path to a JSON spec file; overrides -cloud")
	recordPath := flag.String("record", "", "append every served /generate trace to this JSONL file in the workload record/replay format")
	days := flag.Int("days", 9, "history length for training")
	seed := flag.Int64("seed", 1, "data/training seed")
	modelPath := flag.String("model", "", "load a serialized model instead of training")
	hidden := flag.Int("hidden", 24, "LSTM hidden units")
	epochs := flag.Int("epochs", 40, "training epochs")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long /generate waits to coalesce concurrent requests into one decode batch")
	maxBatch := flag.Int("max-batch", 64, "max concurrent streams per decode batch")
	engineKind := flag.String("engine", "batched", "decode engine: serial, batched, or sharded")
	decodeShards := flag.Int("decode-shards", 0, "shard count for -engine sharded (0: GOMAXPROCS)")
	precision := flag.String("precision", "f64", "decode numeric width: f64 (bit-exact reference) or f32 (fast path, validated at publish)")
	fastMath := flag.Bool("fast-math", false, "use FMA-fused f32 kernels (slightly different rounding than the default f32 path; no effect at -precision f64)")
	traceBuffer := flag.Int("trace-buffer", 256, "request traces kept for GET /debug/traces (0 disables request tracing)")
	fidelityWindow := flag.Int("fidelity-window", 64, "served traces in the fidelity drift monitor's sliding window (0 disables the monitor)")
	journalPath := flag.String("journal", "", "write a JSONL telemetry journal (training epochs, phase spans) to this path")
	ckptDir := flag.String("checkpoint-dir", "", "directory for atomic training checkpoints and the published serving snapshot")
	ckptEvery := flag.Int("checkpoint-every", 1, "checkpoint every N training epochs (with -checkpoint-dir)")
	resume := flag.Bool("resume", false, "resume training from the newest matching checkpoint in -checkpoint-dir")
	debugAddr := flag.String("debug-addr", "", "optional debug listener with /debug/pprof/ and /debug/vars")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain timeout on SIGINT/SIGTERM")
	flag.Parse()

	// Validate the engine selection before paying for training.
	if !core.ValidEngineKind(*engineKind) {
		log.Fatalf("traced: unknown -engine %q (have %v)", *engineKind, core.EngineKinds())
	}
	if !core.ValidPrecision(*precision) {
		log.Fatalf("traced: unknown -precision %q (have %v)", *precision, core.Precisions())
	}
	// -fast-math swaps the f32 kernels to their FMA-fused variants
	// process-wide; the f64 path is unaffected either way.
	mat.SetFastMath(*fastMath)

	var journal *obs.Journal
	if *journalPath != "" {
		var err error
		journal, err = obs.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("traced: open journal: %v", err)
		}
		defer journal.Close()
		log.Printf("journaling telemetry to %s", *journalPath)
	}

	cfg := synth.AzureLike()
	if *cloud == "huawei" {
		cfg = synth.HuaweiLike()
	}
	// -workload-spec swaps the hardcoded scenario for a declarative one:
	// a named preset or a JSON spec file, compiled to the same
	// synth.Config shape the presets use, so everything downstream
	// (training, flavors catalog, hot reload) is spec-agnostic.
	var spec *workload.Spec
	if *workloadSpec != "" {
		spec = workload.Preset(*workloadSpec)
		if spec == nil {
			data, err := os.ReadFile(*workloadSpec)
			if err != nil {
				log.Fatalf("traced: -workload-spec %q is neither a preset (%v) nor a readable file: %v",
					*workloadSpec, workload.PresetNames(), err)
			}
			spec, err = workload.ParseSpec(data)
			if err != nil {
				log.Fatalf("traced: %v", err)
			}
		}
		var err error
		cfg, err = spec.Compile()
		if err != nil {
			log.Fatalf("traced: compile workload spec: %v", err)
		}
		log.Printf("workload spec %q: %d users, %d cohorts, catalog of %d flavors",
			spec.Name, spec.Users, len(spec.Cohorts), cfg.Flavors.K())
	}

	// One registry carries checkpoint telemetry from training straight
	// through to the serving /metrics snapshot.
	reg := obs.NewRegistry()
	// Journal write failures surface as obs.journal_errors /
	// obs.journal_dropped_lines on /metrics instead of silently
	// truncating the file (nil-safe when journaling is off).
	journal.CountInto(reg)
	var ckSpec *core.CheckpointSpec
	if *ckptDir != "" {
		ckSpec = &core.CheckpointSpec{
			Dir:    *ckptDir,
			Every:  *ckptEvery,
			Resume: *resume,
			Obs:    reg,
		}
	}

	trainInfo := map[string]any{
		"cloud": cfg.Name,
		"seed":  *seed,
	}
	var model *core.Model
	// fidRef is the drift monitor's reference fingerprint: the real
	// training data when we trained here, else a calibration decode of
	// the loaded model.
	var fidRef *fidelity.Reference
	if *modelPath != "" {
		var err error
		model, err = loadModelFile(*modelPath)
		if err != nil {
			log.Fatalf("traced: %v", err)
		}
		log.Printf("loaded model from %s (%d flavors)", *modelPath, model.Flavor.K)
		trainInfo["source"] = "loaded"
		trainInfo["model_path"] = *modelPath
		journal.Event("model_loaded", map[string]any{"path": *modelPath, "flavors": model.Flavor.K})
	} else {
		cfg.Days = *days
		prep := journal.StartSpan("data_prep")
		history := cfg.Generate(*seed)
		devStart := history.Periods * 85 / 100
		train := history.Slice(trace.Window{Start: 0, End: devStart}, 0)
		dev := history.Slice(trace.Window{Start: devStart, End: history.Periods}, 0)
		prep.End()
		log.Printf("training on %d VMs (%s, %d days)...", len(train.VMs), cfg.Name, *days)
		span := journal.StartSpan("train")
		start := time.Now()
		var err error
		model, err = core.TrainModel(train, core.ModelOptions{
			Bins: survival.PaperBins(),
			Train: core.TrainConfig{
				Hidden: *hidden, Epochs: *epochs, Seed: *seed,
				Dev: dev, DevOffset: devStart,
				Obs:        journal,
				Checkpoint: ckSpec,
			},
			Arrival: core.ArrivalOptions{Checkpoint: ckSpec},
		})
		if err != nil {
			log.Fatalf("traced: train: %v", err)
		}
		span.End()
		wall := time.Since(start).Round(time.Second)
		log.Printf("trained in %v", wall)
		if *fidelityWindow > 0 {
			// The training window itself is the paper's reference: served
			// traffic is scored against the data the model was fitted on.
			ref := fidelity.ReferenceFromTrace(train, survival.PaperBins().Edges)
			fidRef = &ref
		}
		trainInfo["source"] = "trained"
		trainInfo["days"] = *days
		trainInfo["hidden"] = *hidden
		trainInfo["epochs"] = *epochs
		trainInfo["train_vms"] = len(train.VMs)
		trainInfo["train_wall_s"] = wall.Seconds()
		if *ckptDir != "" {
			// Publish the serving snapshot next to the training
			// checkpoints: SIGHUP / POST /-/reload re-reads the newest
			// published version, so a retrained model can be swapped in
			// without restarting the server.
			if path, err := publishServing(*ckptDir, model); err != nil {
				log.Printf("traced: publish serving snapshot: %v", err)
			} else {
				log.Printf("published serving snapshot to %s", path)
			}
		}
	}
	if *journalPath != "" {
		trainInfo["journal"] = *journalPath
	}

	// The f32 fast path is validated against the f64 reference before a
	// single request is served: a broken kernel or weight conversion
	// fails startup, not a downstream consumer. Hot reloads re-validate
	// below.
	if core.Precision(*precision) == core.PrecisionF32 {
		rep, err := model.ValidateF32()
		if err != nil {
			log.Fatalf("traced: %v", err)
		}
		log.Printf("f32 fast path validated over %d steps: prob|Δ|=%.2e hazard|Δ|=%.2e survival|Δ|=%.2e (fast-math=%v)",
			rep.Steps, rep.MaxProbDiff, rep.MaxHazardDiff, rep.MaxSurvivalDiff, *fastMath)
		trainInfo["precision"] = *precision
		journal.Event("f32_validated", map[string]any{
			"steps":         rep.Steps,
			"prob_diff":     rep.MaxProbDiff,
			"hazard_diff":   rep.MaxHazardDiff,
			"survival_diff": rep.MaxSurvivalDiff,
			"fast_math":     *fastMath,
		})
	}

	s := server.NewWithRegistry(model, cfg.Flavors, reg)
	s.TrainInfo = trainInfo
	s.BatchWindow = *batchWindow
	s.MaxBatch = *maxBatch
	s.EngineKind = *engineKind
	s.DecodeShards = *decodeShards
	s.Precision = *precision
	defer s.Close()

	if spec != nil {
		s.Workload = spec.Summary()
	}
	// modelTag fingerprints the serving weights for the record stream;
	// hot reloads refresh it below so records always name the model
	// that actually produced them.
	var modelTag atomic.Value
	var recorder *workload.Recorder
	if *recordPath != "" {
		var err error
		recorder, err = workload.OpenRecorder(*recordPath)
		if err != nil {
			log.Fatalf("traced: open record sink: %v", err)
		}
		defer recorder.Close()
		modelTag.Store(workload.ModelTag(model))
		engine, prec := *engineKind, *precision
		s.OnTrace = func(seed int64, w trace.Window, scale float64, tr *trace.Trace) {
			rec := workload.NewRecord("generate", engine, prec, modelTag.Load().(string), seed, w, scale, tr)
			if err := recorder.Append(rec); err != nil {
				log.Printf("traced: record: %v", err)
			}
		}
		log.Printf("recording served traces to %s", *recordPath)
	}

	if *traceBuffer > 0 {
		s.Tracer = rtrace.NewTracer(*traceBuffer)
		log.Printf("request tracing on: ring of %d traces at GET /debug/traces", *traceBuffer)
	}
	var fid *fidelity.Monitor
	if *fidelityWindow > 0 {
		if fidRef == nil {
			ref := fidelityReference(model)
			fidRef = &ref
		}
		fid = fidelity.NewMonitor(*fidRef, fidelity.Config{Window: *fidelityWindow}, reg)
		s.Fidelity = fid
		log.Printf("fidelity drift monitor on: window of %d traces, gauges at GET /metrics", *fidelityWindow)
	}

	// Hot-reload source: prefer an explicit -model file, else the newest
	// serving snapshot published into the checkpoint directory. Both
	// POST /-/reload and SIGHUP go through the same path.
	var reloadSrc func() (*core.Model, *trace.FlavorSet, error)
	switch {
	case *modelPath != "":
		reloadSrc = func() (*core.Model, *trace.FlavorSet, error) {
			m, err := loadModelFile(*modelPath)
			return m, cfg.Flavors, err
		}
	case *ckptDir != "":
		reloadSrc = func() (*core.Model, *trace.FlavorSet, error) {
			m, err := loadServing(*ckptDir)
			return m, cfg.Flavors, err
		}
	}
	if reloadSrc != nil && core.Precision(*precision) == core.PrecisionF32 {
		// Re-validate the f32 tolerance on every hot reload: a reloaded
		// model that drifts past the published bounds is rejected and the
		// current snapshot keeps serving.
		inner := reloadSrc
		reloadSrc = func() (*core.Model, *trace.FlavorSet, error) {
			m, catalog, err := inner()
			if err != nil {
				return nil, nil, err
			}
			if _, err := m.ValidateF32(); err != nil {
				return nil, nil, err
			}
			return m, catalog, nil
		}
	}
	if fid != nil && reloadSrc != nil {
		// A hot-swapped model is a new distribution: re-fingerprint it and
		// reset the drift window, so live traffic is scored against the
		// model actually serving it.
		inner := reloadSrc
		reloadSrc = func() (*core.Model, *trace.FlavorSet, error) {
			m, catalog, err := inner()
			if err == nil {
				fid.SetReference(fidelityReference(m))
			}
			return m, catalog, err
		}
	}
	if recorder != nil && reloadSrc != nil {
		// Keep the record stream's model tag in step with hot swaps.
		inner := reloadSrc
		reloadSrc = func() (*core.Model, *trace.FlavorSet, error) {
			m, catalog, err := inner()
			if err == nil {
				modelTag.Store(workload.ModelTag(m))
			}
			return m, catalog, err
		}
	}
	s.ReloadFunc = reloadSrc
	if reloadSrc != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				m, catalog, err := reloadSrc()
				if err != nil {
					log.Printf("traced: SIGHUP reload failed, keeping current model: %v", err)
					journal.Event("reload_failed", map[string]any{"error": err.Error()})
					continue
				}
				s.Reload(m, catalog)
				log.Printf("SIGHUP: reloaded serving model (%d flavors)", m.Flavor.K)
				journal.Event("reloaded", map[string]any{"flavors": m.Flavor.K})
			}
		}()
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		expvar.Publish("repro.metrics", expvar.Func(func() any { return s.Metrics().Snapshot() }))
		expvar.Publish("repro.par", expvar.Func(func() any { return par.Snapshot() }))
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("debug listener on %s (/debug/pprof/, /debug/vars)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("traced: debug listener: %v", err)
			}
		}()
	}

	log.Printf("serving on %s (POST /generate, GET /metrics)", *addr)
	journal.Event("serving", map[string]any{"addr": *addr})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Trap SIGINT/SIGTERM and drain in-flight requests instead of dying
	// mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatalf("traced: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Printf("signal received; draining for up to %v...", *shutdownTimeout)
		journal.Event("shutdown", map[string]any{"timeout_s": shutdownTimeout.Seconds()})
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("traced: shutdown: %v", err)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(sctx)
		}
		log.Printf("drained; bye")
	}
}
