// Command traced trains the generative model (or loads a serialized
// one) and serves synthetic traces over HTTP — the "trace generation as
// a service" deployment of the model.
//
// Usage:
//
//	traced [-addr :8080] [-cloud azure|huawei] [-days 9] [-seed 1]
//	traced -model model.bin -flavors azure
//
// Endpoints: GET /healthz, GET /model, POST /generate
// (see internal/server for the request schema).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cloud := flag.String("cloud", "azure", "azure or huawei preset")
	days := flag.Int("days", 9, "history length for training")
	seed := flag.Int64("seed", 1, "data/training seed")
	modelPath := flag.String("model", "", "load a serialized model instead of training")
	hidden := flag.Int("hidden", 24, "LSTM hidden units")
	epochs := flag.Int("epochs", 40, "training epochs")
	flag.Parse()

	cfg := synth.AzureLike()
	if *cloud == "huawei" {
		cfg = synth.HuaweiLike()
	}

	var model *core.Model
	if *modelPath != "" {
		blob, err := os.ReadFile(*modelPath)
		if err != nil {
			log.Fatalf("traced: read model: %v", err)
		}
		model = &core.Model{}
		if err := model.UnmarshalBinary(blob); err != nil {
			log.Fatalf("traced: load model: %v", err)
		}
		log.Printf("loaded model from %s (%d flavors)", *modelPath, model.Flavor.K)
	} else {
		cfg.Days = *days
		history := cfg.Generate(*seed)
		devStart := history.Periods * 85 / 100
		train := history.Slice(trace.Window{Start: 0, End: devStart}, 0)
		dev := history.Slice(trace.Window{Start: devStart, End: history.Periods}, 0)
		log.Printf("training on %d VMs (%s, %d days)...", len(train.VMs), cfg.Name, *days)
		start := time.Now()
		var err error
		model, err = core.TrainModel(train, core.ModelOptions{
			Bins: survival.PaperBins(),
			Train: core.TrainConfig{
				Hidden: *hidden, Epochs: *epochs, Seed: *seed,
				Dev: dev, DevOffset: devStart,
			},
		})
		if err != nil {
			log.Fatalf("traced: train: %v", err)
		}
		log.Printf("trained in %v", time.Since(start).Round(time.Second))
	}

	s := server.New(model, cfg.Flavors)
	log.Printf("serving on %s (POST /generate)", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "traced:", err)
		os.Exit(1)
	}
}
