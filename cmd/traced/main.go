// Command traced trains the generative model (or loads a serialized
// one) and serves synthetic traces over HTTP — the "trace generation as
// a service" deployment of the model.
//
// Usage:
//
//	traced [-addr :8080] [-cloud azure|huawei] [-days 9] [-seed 1]
//	traced -model model.bin -flavors azure
//	traced -journal run.jsonl -debug-addr :6060
//	traced -batch-window 2ms -max-batch 64
//
// Concurrent POST /generate requests are coalesced into shared decode
// batches (continuous batching, DESIGN.md §6.2): -batch-window is how
// long a request waits for others to join its batch, -max-batch caps
// the streams decoded together. Responses stay byte-identical to
// serial decodes of the same seed regardless of batching.
//
// Endpoints: GET /healthz, GET /model, GET /metrics, POST /generate
// (see internal/server for the request schema). -journal writes a JSONL
// telemetry journal (per-epoch training events, phase spans); the
// optional -debug-addr listener exposes net/http/pprof under
// /debug/pprof/ and expvar (including the metrics registry and parallel
// layer counters) under /debug/vars. SIGINT/SIGTERM drain in-flight
// requests via http.Server.Shutdown before exiting.
package main

import (
	"context"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cloud := flag.String("cloud", "azure", "azure or huawei preset")
	days := flag.Int("days", 9, "history length for training")
	seed := flag.Int64("seed", 1, "data/training seed")
	modelPath := flag.String("model", "", "load a serialized model instead of training")
	hidden := flag.Int("hidden", 24, "LSTM hidden units")
	epochs := flag.Int("epochs", 40, "training epochs")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long /generate waits to coalesce concurrent requests into one decode batch")
	maxBatch := flag.Int("max-batch", 64, "max concurrent streams per decode batch")
	journalPath := flag.String("journal", "", "write a JSONL telemetry journal (training epochs, phase spans) to this path")
	debugAddr := flag.String("debug-addr", "", "optional debug listener with /debug/pprof/ and /debug/vars")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain timeout on SIGINT/SIGTERM")
	flag.Parse()

	var journal *obs.Journal
	if *journalPath != "" {
		var err error
		journal, err = obs.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("traced: open journal: %v", err)
		}
		defer journal.Close()
		log.Printf("journaling telemetry to %s", *journalPath)
	}

	cfg := synth.AzureLike()
	if *cloud == "huawei" {
		cfg = synth.HuaweiLike()
	}

	trainInfo := map[string]any{
		"cloud": cfg.Name,
		"seed":  *seed,
	}
	var model *core.Model
	if *modelPath != "" {
		blob, err := os.ReadFile(*modelPath)
		if err != nil {
			log.Fatalf("traced: read model: %v", err)
		}
		model = &core.Model{}
		if err := model.UnmarshalBinary(blob); err != nil {
			log.Fatalf("traced: load model: %v", err)
		}
		log.Printf("loaded model from %s (%d flavors)", *modelPath, model.Flavor.K)
		trainInfo["source"] = "loaded"
		trainInfo["model_path"] = *modelPath
		journal.Event("model_loaded", map[string]any{"path": *modelPath, "flavors": model.Flavor.K})
	} else {
		cfg.Days = *days
		prep := journal.StartSpan("data_prep")
		history := cfg.Generate(*seed)
		devStart := history.Periods * 85 / 100
		train := history.Slice(trace.Window{Start: 0, End: devStart}, 0)
		dev := history.Slice(trace.Window{Start: devStart, End: history.Periods}, 0)
		prep.End()
		log.Printf("training on %d VMs (%s, %d days)...", len(train.VMs), cfg.Name, *days)
		span := journal.StartSpan("train")
		start := time.Now()
		var err error
		model, err = core.TrainModel(train, core.ModelOptions{
			Bins: survival.PaperBins(),
			Train: core.TrainConfig{
				Hidden: *hidden, Epochs: *epochs, Seed: *seed,
				Dev: dev, DevOffset: devStart,
				Obs: journal,
			},
		})
		if err != nil {
			log.Fatalf("traced: train: %v", err)
		}
		span.End()
		wall := time.Since(start).Round(time.Second)
		log.Printf("trained in %v", wall)
		trainInfo["source"] = "trained"
		trainInfo["days"] = *days
		trainInfo["hidden"] = *hidden
		trainInfo["epochs"] = *epochs
		trainInfo["train_vms"] = len(train.VMs)
		trainInfo["train_wall_s"] = wall.Seconds()
	}
	if *journalPath != "" {
		trainInfo["journal"] = *journalPath
	}

	s := server.New(model, cfg.Flavors)
	s.TrainInfo = trainInfo
	s.BatchWindow = *batchWindow
	s.MaxBatch = *maxBatch
	defer s.Close()

	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		expvar.Publish("repro.metrics", expvar.Func(func() any { return s.Metrics().Snapshot() }))
		expvar.Publish("repro.par", expvar.Func(func() any { return par.Snapshot() }))
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("debug listener on %s (/debug/pprof/, /debug/vars)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("traced: debug listener: %v", err)
			}
		}()
	}

	log.Printf("serving on %s (POST /generate, GET /metrics)", *addr)
	journal.Event("serving", map[string]any{"addr": *addr})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Trap SIGINT/SIGTERM and drain in-flight requests instead of dying
	// mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatalf("traced: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Printf("signal received; draining for up to %v...", *shutdownTimeout)
		journal.Event("shutdown", map[string]any{"timeout_s": shutdownTimeout.Seconds()})
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("traced: shutdown: %v", err)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(sctx)
		}
		log.Printf("drained; bye")
	}
}
