// Command tracegen trains the three-stage model on a synthetic
// "historical" trace and emits a generated future trace as CSV on
// stdout (or to -o). The -scale flag implements the paper's single-knob
// stress-test scaling (§6.2: "we generated 10X workloads by changing a
// single line of code").
//
// Usage:
//
//	tracegen [-cloud azure|huawei] [-days N] [-gen-days N] [-scale X] [-seed N] [-o trace.csv] [-v]
//	tracegen -workload-spec mixed [-record gen.jsonl]
//	tracegen -replay gen.jsonl
//
// -workload-spec replaces -cloud with a declarative scenario: a named
// preset (azure-like, huawei-like, mixed) or a path to a JSON spec
// file (DESIGN.md §9). -record writes the generated trace — plus the
// seed, window, and scale that reproduce it — to a JSONL file in the
// versioned record format. -replay skips training entirely and
// re-emits the trace(s) stored in a record file as CSV, so a recorded
// generation can be piped into downstream tools without the model.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}

// outputWriter opens -o, defaulting to stdout.
func outputWriter(path string) (io.Writer, func()) {
	if path == "" {
		return os.Stdout, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	return f, func() { f.Close() }
}

// loadSpec resolves -workload-spec: preset name first, then file path.
func loadSpec(arg string) *workload.Spec {
	if spec := workload.Preset(arg); spec != nil {
		return spec
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		fatalf("-workload-spec %q is neither a preset (%v) nor a readable file: %v",
			arg, workload.PresetNames(), err)
	}
	spec, err := workload.ParseSpec(data)
	if err != nil {
		fatalf("%v", err)
	}
	return spec
}

// replay re-emits recorded traces as CSV without touching a model.
func replay(path string, w io.Writer) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	recs, err := workload.ReadRecords(f)
	if err != nil {
		fatalf("%v", err)
	}
	if len(recs) == 0 {
		fatalf("replay: %s holds no records", path)
	}
	total := 0
	for _, rec := range recs {
		tr := rec.Trace()
		if err := tr.WriteCSV(w); err != nil {
			fatalf("write: %v", err)
		}
		total += len(tr.VMs)
	}
	fmt.Fprintf(os.Stderr, "replayed %d record(s), %d VMs from %s\n", len(recs), total, path)
}

func main() {
	cloud := flag.String("cloud", "azure", "azure or huawei preset")
	workloadSpec := flag.String("workload-spec", "", "workload spec: a preset name (azure-like, huawei-like, mixed) or a JSON spec file; overrides -cloud")
	recordPath := flag.String("record", "", "also write the generated trace to this JSONL file in the workload record/replay format")
	replayPath := flag.String("replay", "", "re-emit the traces stored in this record file as CSV and exit (no training)")
	days := flag.Int("days", 9, "history length in days (training data)")
	genDays := flag.Int("gen-days", 2, "length of the generated future trace in days")
	scale := flag.Float64("scale", 1, "arrival-rate multiplier for the generated trace")
	seed := flag.Int64("seed", 1, "seed for data generation, training, and sampling")
	out := flag.String("o", "", "output CSV path (default stdout)")
	hidden := flag.Int("hidden", 24, "LSTM hidden units per layer")
	epochs := flag.Int("epochs", 40, "training epochs")
	verbose := flag.Bool("v", false, "log training progress to stderr")
	flag.Parse()

	w, closeOut := outputWriter(*out)
	defer closeOut()

	if *replayPath != "" {
		replay(*replayPath, w)
		return
	}

	var cfg synth.Config
	if *workloadSpec != "" {
		spec := loadSpec(*workloadSpec)
		var err error
		cfg, err = spec.Compile()
		if err != nil {
			fatalf("compile workload spec: %v", err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "workload spec %q: %d users, %d cohorts\n",
				spec.Name, spec.Users, len(spec.Cohorts))
		}
	} else {
		switch *cloud {
		case "azure":
			cfg = synth.AzureLike()
		case "huawei":
			cfg = synth.HuaweiLike()
		default:
			fmt.Fprintln(os.Stderr, "tracegen: -cloud must be azure or huawei")
			os.Exit(2)
		}
	}
	cfg.Days = *days

	history := cfg.Generate(*seed)
	// Hold out the final ~15% of the history as a development window for
	// model selection.
	devStart := history.Periods * 85 / 100
	trainW := trace.Window{Start: 0, End: devStart}
	devW := trace.Window{Start: devStart, End: history.Periods}
	train := history.Slice(trainW, 0)
	dev := history.Slice(devW, 0)

	tc := core.TrainConfig{
		Hidden: *hidden, Epochs: *epochs, Seed: *seed,
		Dev: dev, DevOffset: devW.Start,
	}
	if *verbose {
		tc.Progress = func(epoch int, loss float64) {
			fmt.Fprintf(os.Stderr, "epoch %3d  loss %.4f\n", epoch, loss)
		}
	}
	start := time.Now()
	model, err := core.TrainModel(train, core.ModelOptions{Bins: survival.PaperBins(), Train: tc})
	if err != nil {
		fatalf("%v", err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "trained on %d VMs in %v\n", len(train.VMs), time.Since(start).Round(time.Millisecond))
	}

	model.RateScale = *scale
	futureW := trace.Window{
		Start: history.Periods,
		End:   history.Periods + *genDays*trace.PeriodsPerDay,
	}
	genSeed := *seed + 1
	generated := core.WithCatalog(model.Generate(rng.New(genSeed), futureW), cfg.Flavors)

	if *recordPath != "" {
		// RateScale is baked into the model here, so the record's scale
		// is what a replay must pass to Generate to reproduce the bytes.
		rec := workload.NewRecord("tracegen", "serial", "f64", workload.ModelTag(model),
			genSeed, futureW, *scale, generated)
		sink, err := workload.OpenRecorder(*recordPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := sink.Append(rec); err != nil {
			fatalf("record: %v", err)
		}
		if err := sink.Close(); err != nil {
			fatalf("record: %v", err)
		}
		fmt.Fprintf(os.Stderr, "recorded generation to %s\n", *recordPath)
	}

	if err := generated.WriteCSV(w); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "generated %d VMs over %d periods (scale %.1fx)\n",
		len(generated.VMs), generated.Periods, *scale)
}
