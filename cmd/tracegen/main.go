// Command tracegen trains the three-stage model on a synthetic
// "historical" trace and emits a generated future trace as CSV on
// stdout (or to -o). The -scale flag implements the paper's single-knob
// stress-test scaling (§6.2: "we generated 10X workloads by changing a
// single line of code").
//
// Usage:
//
//	tracegen [-cloud azure|huawei] [-days N] [-gen-days N] [-scale X] [-seed N] [-o trace.csv] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	cloud := flag.String("cloud", "azure", "azure or huawei preset")
	days := flag.Int("days", 9, "history length in days (training data)")
	genDays := flag.Int("gen-days", 2, "length of the generated future trace in days")
	scale := flag.Float64("scale", 1, "arrival-rate multiplier for the generated trace")
	seed := flag.Int64("seed", 1, "seed for data generation, training, and sampling")
	out := flag.String("o", "", "output CSV path (default stdout)")
	hidden := flag.Int("hidden", 24, "LSTM hidden units per layer")
	epochs := flag.Int("epochs", 40, "training epochs")
	verbose := flag.Bool("v", false, "log training progress to stderr")
	flag.Parse()

	var cfg synth.Config
	switch *cloud {
	case "azure":
		cfg = synth.AzureLike()
	case "huawei":
		cfg = synth.HuaweiLike()
	default:
		fmt.Fprintln(os.Stderr, "tracegen: -cloud must be azure or huawei")
		os.Exit(2)
	}
	cfg.Days = *days

	history := cfg.Generate(*seed)
	// Hold out the final ~15% of the history as a development window for
	// model selection.
	devStart := history.Periods * 85 / 100
	trainW := trace.Window{Start: 0, End: devStart}
	devW := trace.Window{Start: devStart, End: history.Periods}
	train := history.Slice(trainW, 0)
	dev := history.Slice(devW, 0)

	tc := core.TrainConfig{
		Hidden: *hidden, Epochs: *epochs, Seed: *seed,
		Dev: dev, DevOffset: devW.Start,
	}
	if *verbose {
		tc.Progress = func(epoch int, loss float64) {
			fmt.Fprintf(os.Stderr, "epoch %3d  loss %.4f\n", epoch, loss)
		}
	}
	start := time.Now()
	model, err := core.TrainModel(train, core.ModelOptions{Bins: survival.PaperBins(), Train: tc})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "trained on %d VMs in %v\n", len(train.VMs), time.Since(start).Round(time.Millisecond))
	}

	model.RateScale = *scale
	futureW := trace.Window{
		Start: history.Periods,
		End:   history.Periods + *genDays*trace.PeriodsPerDay,
	}
	generated := core.WithCatalog(model.Generate(rng.New(*seed+1), futureW), cfg.Flavors)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := generated.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %d VMs over %d periods (scale %.1fx)\n",
		len(generated.VMs), generated.Periods, *scale)
}
