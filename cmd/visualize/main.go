// Command visualize renders a workload trace in the style of the
// paper's Figure 1: one row per 5-minute period, one colored cell per
// VM (color = flavor, width = lifetime bin index compressed to a digit),
// batches separated by spaces. It reads a CSV written by tracegen or
// renders a fresh synthetic trace.
//
// Usage:
//
//	visualize [-cloud azure|huawei] [-days 1] [-periods 40] [-seed 7] [-no-color]
//	visualize -csv trace.csv -flavors 16 -periods 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	cloud := flag.String("cloud", "azure", "azure or huawei preset (ignored with -csv)")
	days := flag.Int("days", 1, "days of synthetic workload to generate")
	seed := flag.Int64("seed", 7, "generation seed")
	csvPath := flag.String("csv", "", "render this trace CSV instead of generating")
	flavors := flag.Int("flavors", 16, "flavor count for -csv input")
	periodsFlag := flag.Int("periods", 48, "number of periods (rows) to render")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	flag.Parse()

	var tr *trace.Trace
	switch {
	case *csvPath != "":
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fs := &trace.FlavorSet{}
		for i := 0; i < *flavors; i++ {
			fs.Defs = append(fs.Defs, trace.FlavorDef{Name: fmt.Sprintf("f%d", i), CPU: 1, MemGB: 1})
		}
		tr, err = trace.ReadCSV(f, fs, 1<<30)
		if err != nil {
			fatal(err)
		}
		max := 0
		for _, vm := range tr.VMs {
			if vm.Start > max {
				max = vm.Start
			}
		}
		tr.Periods = max + 1
	default:
		cfg := synth.AzureLike()
		if *cloud == "huawei" {
			cfg = synth.HuaweiLike()
		}
		cfg.Days = *days
		tr = cfg.Generate(*seed)
	}

	bins := survival.PaperBins()
	pb := tr.PeriodBatches()
	n := *periodsFlag
	if n > len(pb) {
		n = len(pb)
	}
	fmt.Printf("Workload visualization: %d periods, %d VMs, %d flavors\n", n, len(tr.VMs), tr.Flavors.K())
	fmt.Println("(row = 5-minute period; cell = VM: color/letter = flavor, digit = lifetime bin width class; batches space-separated)")
	for p := 0; p < n; p++ {
		var row strings.Builder
		fmt.Fprintf(&row, "%4d |", p)
		for bi, b := range pb[p] {
			if bi > 0 {
				row.WriteString(" ")
			}
			for _, idx := range b.Indices {
				vm := tr.VMs[idx]
				bin := bins.Index(vm.Duration)
				row.WriteString(cell(vm.Flavor, bin, !*noColor))
			}
		}
		fmt.Println(row.String())
	}
}

// cell renders one VM as a width-class digit on a flavor-colored
// background (letter-coded when colors are off).
func cell(flavor, bin int, color bool) string {
	// Compress the 47 bins to a single digit 0-9.
	width := bin * 10 / 47
	if !color {
		return fmt.Sprintf("%c%d", 'a'+rune(flavor%26), width)
	}
	// Cycle through the 256-color palette for flavor identity.
	bg := 17 + (flavor*37)%214
	return fmt.Sprintf("\x1b[48;5;%dm\x1b[97m%d\x1b[0m", bg, width)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "visualize:", err)
	os.Exit(1)
}
