package repro

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fidelity"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestDeterminismAcrossWorkerCounts is the end-to-end enforcement of
// the par package's determinism contract: training the full model and
// generating a trace must produce byte-identical weights and output
// whether the parallel layer runs on one worker or eight. Every
// parallel region in the repository — sharded minibatch training,
// blocked GEMM, the pipelined generator, Monte-Carlo sampling — is
// required to reduce in fixed order, and this test catches any of them
// drifting.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(procs int) (flavorW, lifetimeW, traceJSON []byte) {
		defer par.SetProcs(par.SetProcs(procs))
		cfg := synth.AzureLike()
		cfg.Days = 3
		cfg.Users = 60
		cfg.BaseRate = 1.5
		full := cfg.Generate(7)
		trainW, _, testW := synth.StandardSplit(cfg.Days)
		train := full.Slice(trainW, 0)
		m, err := core.TrainModel(train, core.ModelOptions{
			Train: core.TrainConfig{
				Hidden: 8, Layers: 2, SeqLen: 16, BatchSize: 4,
				Epochs: 2, LR: 5e-3, Seed: 3,
			},
		})
		if err != nil {
			t.Fatalf("procs=%d: train: %v", procs, err)
		}
		flavorW, err = m.Flavor.Net.MarshalBinary()
		if err != nil {
			t.Fatalf("procs=%d: marshal flavor: %v", procs, err)
		}
		lifetimeW, err = m.Lifetime.Net.MarshalBinary()
		if err != nil {
			t.Fatalf("procs=%d: marshal lifetime: %v", procs, err)
		}
		tr := m.Generate(rng.New(11), testW)
		tr = core.WithCatalog(tr, full.Flavors)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("procs=%d: write trace: %v", procs, err)
		}
		return flavorW, lifetimeW, buf.Bytes()
	}

	f1, l1, t1 := run(1)
	f8, l8, t8 := run(8)
	if !bytes.Equal(f1, f8) {
		t.Errorf("flavor weights differ between REPRO_PROCS=1 and 8 (%d vs %d bytes)", len(f1), len(f8))
	}
	if !bytes.Equal(l1, l8) {
		t.Errorf("lifetime weights differ between REPRO_PROCS=1 and 8 (%d vs %d bytes)", len(l1), len(l8))
	}
	if !bytes.Equal(t1, t8) {
		t.Errorf("generated traces differ between REPRO_PROCS=1 and 8 (%d vs %d bytes)", len(t1), len(t8))
	}
	if len(t1) == 0 {
		t.Fatal("empty serialized trace")
	}
}

// TestObservabilityIsReadOnly enforces the instrumentation layer's side
// of the determinism contract: attaching a telemetry journal, a
// Progress callback, and an epoch sink to training — and, on the decode
// side, a live request trace plus the fidelity drift monitor — must not
// touch any RNG stream or training state, so the trained weights and
// the generated trace are byte-identical with observability fully on
// and fully off.
func TestObservabilityIsReadOnly(t *testing.T) {
	run := func(observed bool) (flavorW, lifetimeW, traceJSON []byte) {
		cfg := synth.AzureLike()
		cfg.Days = 3
		cfg.Users = 60
		cfg.BaseRate = 1.5
		full := cfg.Generate(7)
		trainW, _, testW := synth.StandardSplit(cfg.Days)
		train := full.Slice(trainW, 0)
		tc := core.TrainConfig{
			Hidden: 8, Layers: 2, SeqLen: 16, BatchSize: 4,
			Epochs: 2, LR: 5e-3, Seed: 3,
		}
		var journal *obs.Journal
		if observed {
			path := filepath.Join(t.TempDir(), "run.jsonl")
			var err error
			journal, err = obs.OpenJournal(path)
			if err != nil {
				t.Fatalf("open journal: %v", err)
			}
			defer func() {
				journal.Close()
				blob, err := os.ReadFile(path)
				if err != nil || len(blob) == 0 {
					t.Errorf("journal was not written (err=%v, %d bytes)", err, len(blob))
				}
			}()
			tc.Obs = journal
			tc.Progress = func(int, float64) {}
		}
		span := journal.StartSpan("train")
		m, err := core.TrainModel(train, core.ModelOptions{Train: tc})
		span.End()
		if err != nil {
			t.Fatalf("observed=%v: train: %v", observed, err)
		}
		flavorW, err = m.Flavor.Net.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		lifetimeW, err = m.Lifetime.Net.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// Decode through the serving engine. The observed arm runs with
		// request tracing attached (spans recorded at every pipeline
		// phase) and folds the result into a fidelity drift monitor; the
		// bare arm runs the identical decode with both disabled.
		eng := core.NewEngine(m, 0, 8)
		ctx := context.Background()
		var tracer *rtrace.Tracer
		var rt *rtrace.Trace
		if observed {
			tracer = rtrace.NewTracer(8)
			rt = tracer.StartTrace()
			ctx = rtrace.NewContext(ctx, rt)
		}
		decoded, err := eng.Generate(ctx, rng.New(11), testW, 0)
		eng.Close()
		if err != nil {
			t.Fatalf("observed=%v: decode: %v", observed, err)
		}
		if observed {
			fin := tracer.Finish(rt)
			if _, ok := fin.SpanDur("decode"); !ok {
				t.Errorf("observed decode recorded no decode span: %+v", fin.Spans)
			}
			mon := fidelity.NewMonitor(
				fidelity.ReferenceFromTrace(train, survival.PaperBins().Edges),
				fidelity.Config{}, obs.NewRegistry())
			mon.ObserveTrace(decoded, 1)
			if mon.Snapshot().WindowVMs != int64(len(decoded.VMs)) {
				t.Error("fidelity monitor did not observe the decoded trace")
			}
		}
		tr := core.WithCatalog(decoded, full.Flavors)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return flavorW, lifetimeW, buf.Bytes()
	}

	fOn, lOn, tOn := run(true)
	fOff, lOff, tOff := run(false)
	if !bytes.Equal(fOn, fOff) {
		t.Error("flavor weights change when telemetry is enabled")
	}
	if !bytes.Equal(lOn, lOff) {
		t.Error("lifetime weights change when telemetry is enabled")
	}
	if !bytes.Equal(tOn, tOff) {
		t.Error("generated trace changes when telemetry is enabled")
	}
	if len(tOn) == 0 {
		t.Fatal("empty serialized trace")
	}
}

// TestBatchedFleetDecodeDeterminism extends the determinism contract to
// the continuous-batching decode path: generating a fleet of seeded
// traces serially (Model.Generate per seed), batched
// (Model.GenerateBatch over all seeds at once), and batched on a model
// resumed from a mid-training checkpoint must all produce byte-identical
// JSON per seed.
func TestBatchedFleetDecodeDeterminism(t *testing.T) {
	train, catalog, testW := resumeFixture(t)
	dir := t.TempDir()
	base := trainFullModel(t, train, &core.CheckpointSpec{Dir: dir, Every: 1, Keep: -1})
	resumed := trainFullModel(t, train, &core.CheckpointSpec{
		Dir: cutDir(t, dir, 1), Every: 1, Keep: -1, Resume: true,
	})

	seeds := []int64{101, 102, 103, 104, 105, 106}
	encode := func(tr *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := core.WithCatalog(tr, catalog).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	newGens := func() []*rng.RNG {
		gs := make([]*rng.RNG, len(seeds))
		for i, s := range seeds {
			gs[i] = rng.New(s)
		}
		return gs
	}

	serial := make([][]byte, len(seeds))
	for i, s := range seeds {
		serial[i] = encode(base.Generate(rng.New(s), testW))
		if len(serial[i]) == 0 {
			t.Fatalf("seed %d: empty serial trace", s)
		}
	}
	batched := base.GenerateBatch(newGens(), testW)
	resumedBatched := resumed.GenerateBatch(newGens(), testW)
	for i, s := range seeds {
		if got := encode(batched[i]); !bytes.Equal(serial[i], got) {
			t.Errorf("seed %d: batched decode differs from serial (%d vs %d bytes)", s, len(got), len(serial[i]))
		}
		if got := encode(resumedBatched[i]); !bytes.Equal(serial[i], got) {
			t.Errorf("seed %d: batched decode on resumed model differs from serial on baseline", s)
		}
	}
}

// TestDeterminismExperimentsSweep covers the experiment-layer fan-outs
// (Monte-Carlo sampling, packing trials) at two worker counts on a tiny
// cloud; unlike the training test above it exercises the shared-events
// parallel packing path with per-tuple RNG streams.
func TestDeterminismExperimentsSweep(t *testing.T) {
	cfg := synth.AzureLike()
	cfg.Days = 3
	cfg.Users = 60
	cfg.BaseRate = 1.5
	full := cfg.Generate(9)
	_, _, testW := synth.StandardSplit(cfg.Days)

	run := func(procs int) []byte {
		defer par.SetProcs(par.SetProcs(procs))
		naive, err := core.NewNaiveGenerator(full.Slice(trace.Window{Start: 0, End: testW.Start}, 0), survival.PaperBins())
		if err != nil {
			t.Fatalf("procs=%d: fit naive: %v", procs, err)
		}
		var buf bytes.Buffer
		g := rng.New(21)
		for i := 0; i < 4; i++ {
			tr := naive.Generate(g.Split(), testW)
			if err := tr.WriteJSON(&buf); err != nil {
				t.Fatalf("procs=%d: %v", procs, err)
			}
		}
		return buf.Bytes()
	}
	if a, b := run(1), run(8); !bytes.Equal(a, b) {
		t.Errorf("naive generator sweep differs across worker counts (%d vs %d bytes)", len(a), len(b))
	}
}
