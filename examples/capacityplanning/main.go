// Capacity planning (§6.1 of the paper): sample many future traces from
// the trained generator, build 90% prediction intervals for total CPUs
// in use, and check how much of the actual future they cover. This is
// the workflow a capacity-engineering team uses to decide server
// purchases ("do we have enough servers to cover 95% of possible
// workload scenarios next month?").
package main

import (
	"fmt"
	"os"

	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rng"
)

func main() {
	// Prepare the synthetic cloud and its train/dev/test windows the
	// same way the experiments harness does.
	scale := experiments.SmallScale()
	scale.Samples = 60
	cloud := experiments.NewCloud(experiments.Azure, scale)
	fmt.Printf("cloud: %s — train %d VMs, test %d VMs\n",
		cloud.ID, len(cloud.Train.VMs), len(cloud.Test.VMs))

	model := cloud.Model() // trains on first use

	// Sample futures and compute per-period total-CPU series.
	g := rng.New(99)
	samples := make([][]float64, scale.Samples)
	for i := range samples {
		tr := core.WithCatalog(model.Generate(g.Split(), cloud.TestW), cloud.Full.Flavors)
		samples[i] = capacity.TotalCPUSeries(tr)
	}

	// VMs already running at the test-window start contribute a known
	// carried-over load (added to every forecast, §6.1).
	carry := capacity.CarryOverSeries(cloud.Full, cloud.TestW)
	actual := capacity.TotalCPUSeries(cloud.Full.Slice(cloud.TestW, 0))

	f := capacity.Evaluate(samples, actual, carry, 0.9)
	fmt.Printf("coverage: %.1f%% of true values inside the 90%% interval\n", f.Coverage*100)

	// Print a daily-resolution view of the band.
	per := len(f.Actual) / 8
	if per == 0 {
		per = 1
	}
	fmt.Println("period    lo       median   hi       actual")
	for p := 0; p < len(f.Actual); p += per {
		iv := f.Intervals[p]
		mark := " "
		if f.Actual[p] < iv.Lo || f.Actual[p] > iv.Hi {
			mark = "*" // outside the band
		}
		fmt.Printf("%6d  %8.0f %8.0f %8.0f %8.0f %s\n", p, iv.Lo, iv.Median, iv.Hi, f.Actual[p], mark)
	}

	// A planner would provision for the upper band:
	var peak float64
	for _, iv := range f.Intervals {
		if iv.Hi > peak {
			peak = iv.Hi
		}
	}
	fmt.Printf("provisioning for the 95th-percentile scenario needs %.0f CPUs\n", peak)
	if f.Coverage < 0.3 {
		fmt.Fprintln(os.Stderr, "warning: unusually low coverage — consider retraining")
	}
}
