// Model release (§7 "Privacy and Synthetic Data"): instead of shipping a
// proprietary trace, a provider can train the generative model, alter
// confidential aspects (arrival volume, flavor popularity) with what-if
// tilts, serialize it, and release the artifact. A consumer deserializes
// and generates unlimited synthetic workload with the planted
// alterations but the real statistical character.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rng"
)

func main() {
	// --- Provider side ---
	scale := experiments.SmallScale()
	cloud := experiments.NewCloud(experiments.Azure, scale)
	model := cloud.Model()

	// Alter confidential aspects before release: scale total volume down
	// 2x and damp the most popular flavor ("leaking information about
	// the types of resources in use" is the concern the paper quotes).
	released := *model
	released.RateScale = 0.5
	factors := make([]float64, cloud.Full.Flavors.K())
	for i := range factors {
		factors[i] = 1
	}
	factors[mostPopular(cloud)] = 0.5
	released.Tilt = core.WhatIf{FlavorFactors: factors}

	blob, err := released.MarshalBinary()
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	fmt.Printf("released model artifact: %d bytes (vs %d VMs of raw trace)\n",
		len(blob), len(cloud.Train.VMs))

	// --- Consumer side ---
	var restored core.Model
	if err := restored.UnmarshalBinary(blob); err != nil {
		fmt.Fprintln(os.Stderr, "unmarshal:", err)
		os.Exit(1)
	}
	// Tilts and scales are runtime knobs, not serialized: the provider
	// communicates them (or bakes a wrapper); here we reapply.
	restored.RateScale = released.RateScale
	restored.Tilt = released.Tilt

	gen := core.WithCatalog(restored.Generate(rng.New(42), cloud.TestW), cloud.Full.Flavors)
	real := cloud.Full.Slice(cloud.TestW, 0)
	fmt.Printf("generated %d VMs (real window: %d; released at 0.5x volume)\n",
		len(gen.VMs), len(real.VMs))

	fmt.Println("\ncharacterization of the released synthetic workload:")
	analysis.Characterize("released", gen).Render(os.Stdout)
	fmt.Println("\ncharacterization of the real (confidential) workload:")
	analysis.Characterize("real", real).Render(os.Stdout)
	fmt.Println("\nthe released trace preserves correlations and seasonality while")
	fmt.Println("hiding the true volume and flavor mix — the paper's §7 proposal.")
}

func mostPopular(c *experiments.Cloud) int {
	counts := make([]int, c.Full.Flavors.K())
	for _, vm := range c.Train.VMs {
		counts[vm.Flavor]++
	}
	best := 0
	for f, n := range counts {
		if n > counts[best] {
			best = f
		}
	}
	return best
}
