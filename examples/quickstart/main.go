// Quickstart: train the three-stage workload model on a small synthetic
// history, generate a one-day future trace, and print summary
// statistics. This is the minimal end-to-end tour of the public API:
//
//	synth.Config.Generate  -> ground-truth history
//	trace.Trace.Slice      -> observation windows with censoring
//	core.TrainModel        -> stage 1-3 training (§2 of the paper)
//	Model.Generate         -> sampled future trace (§2.4)
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	// 1. Build a synthetic "historical" workload (stands in for a real
	// provider trace; see DESIGN.md for the substitution rationale).
	cfg := synth.AzureLike()
	cfg.Days = 8
	history := cfg.Generate(42)
	fmt.Printf("history: %d VMs over %.0f days, %d flavors\n",
		len(history.VMs), history.Days(), history.Flavors.K())

	// 2. Carve train/dev windows with Figure-3 censoring semantics.
	devStart := 6 * trace.PeriodsPerDay
	train := history.Slice(trace.Window{Start: 0, End: devStart}, 0)
	dev := history.Slice(trace.Window{Start: devStart, End: history.Periods}, 0)
	stats := train.ComputeStats()
	fmt.Printf("train:   %d VMs in %d batches (mean size %.2f), %d censored\n",
		stats.VMs, stats.Batches, stats.MeanBatch, stats.Censored)

	// 3. Train all three stages (Poisson regression + two LSTMs).
	model, err := core.TrainModel(train, core.ModelOptions{
		Bins: survival.PaperBins(),
		Train: core.TrainConfig{
			Hidden: 24, Epochs: 30, Seed: 1,
			Dev: dev, DevOffset: devStart,
			Progress: func(epoch int, loss float64) {
				if epoch%10 == 0 {
					fmt.Printf("  epoch %2d loss %.4f\n", epoch, loss)
				}
			},
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}

	// 4. Generate one future day beyond the history.
	future := trace.Window{Start: history.Periods, End: history.Periods + trace.PeriodsPerDay}
	generated := core.WithCatalog(model.Generate(rng.New(7), future), history.Flavors)
	gstats := generated.ComputeStats()
	fmt.Printf("generated: %d VMs in %d batches (mean size %.2f), %.0f CPU-hours\n",
		gstats.VMs, gstats.Batches, gstats.MeanBatch, gstats.TotalCPUhrs)

	// 5. The trace is a plain value: write it wherever you like.
	fmt.Println("first five generated VMs:")
	for _, vm := range generated.VMs[:min(5, len(generated.VMs))] {
		def := generated.Flavors.Defs[vm.Flavor]
		fmt.Printf("  user %3d  %-10s  start period %3d  lifetime %6.0fs\n",
			vm.User, def.Name, vm.Start, vm.Duration)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
