// Scheduler tuning (§6.2 of the paper): compare generated traces to
// real test data on the two properties that drive VM-scheduler design —
// reuse distance (placement-cache sizing, as in Protean) and
// first-failure allocation ratio (fragmentation, as used to compare
// packing algorithms). A scheduler tuned on traces that misrepresent
// these properties gets the wrong cache size or the wrong packing
// algorithm.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/rng"
	"repro/internal/sched"
)

func main() {
	scale := experiments.SmallScale()
	cloud := experiments.NewCloud(experiments.Azure, scale)
	fmt.Printf("cloud: %s — tuning against %d test VMs\n", cloud.ID, len(cloud.Test.VMs))

	// --- Reuse distance (drives placement-cache sizing) ---
	actual := sched.ReuseHistogram(sched.ReuseDistances(cloud.Test))
	fmt.Println("\nreuse-distance distribution (bucket: 0..5, 6+):")
	fmt.Printf("  %-12s %v\n", "test data", pct(actual))
	g := rng.New(11)
	for _, gen := range cloud.Generators() {
		tr := gen.Generate(g.Split(), cloud.TestW)
		h := sched.ReuseHistogram(sched.ReuseDistances(tr))
		fmt.Printf("  %-12s %v\n", gen.Name(), pct(h))
	}
	// A cache sized for hit-rate H needs to hold enough distinct flavors
	// to cover the reuse mass below the cache size.
	fmt.Println("\ncache size needed for a 90% hit-rate (entries):")
	fmt.Printf("  %-12s %d\n", "test data", cacheFor(actual, 0.9))
	for _, gen := range cloud.Generators() {
		tr := gen.Generate(g.Split(), cloud.TestW)
		h := sched.ReuseHistogram(sched.ReuseDistances(tr))
		fmt.Printf("  %-12s %d\n", gen.Name(), cacheFor(h, 0.9))
	}

	// --- Packing / fragmentation (drives algorithm choice) ---
	fmt.Println("\nmean limiting-resource FFAR by packing algorithm (test data):")
	events := sched.Events(cloud.Test, g.Split())
	tuples := sched.SampleTuples(g.Split(), 40, sched.TupleRanges{
		MinServers: 5, MaxServers: 20,
		MinCPU: 16, MaxCPU: 64, MinMem: 64, MaxMem: 512,
	})
	for ai, alg := range sched.Algorithms() {
		var sum float64
		var n int
		for _, tp := range tuples {
			tp.AlgIndex = ai
			res := sched.RunTuple(cloud.Test, events, tp, g)
			sum += res.Limiting
			n++
		}
		fmt.Printf("  %-12s %.3f\n", alg.Name(), sum/float64(n))
	}
	fmt.Println("\n(a provider would pick the algorithm with the highest FFAR — least")
	fmt.Println("capacity lost to fragmentation — and validate it on generated traces)")
}

func pct(h []float64) string {
	s := "["
	for i, v := range h {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.0f%%", v*100)
	}
	return s + "]"
}

// cacheFor returns the smallest reuse-distance bucket boundary whose
// cumulative mass reaches the target hit-rate (6+ means "more than the
// largest tracked distance").
func cacheFor(h []float64, target float64) int {
	cum := 0.0
	for i, v := range h {
		cum += v
		if cum >= target {
			return i + 1
		}
	}
	return len(h)
}
