// What-if stress testing (§6.2 and footnote 5 of the paper): because
// the three-stage model has an explicit arrival-rate parameter, scaling
// the workload 10x is a one-line change (Model.RateScale). The paper
// uses this to verify a scheduler can survive a 10x request rate; the
// key requirement is that scaling preserves the trace's statistical
// character (reuse distances, packability), which this example checks.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rng"
	"repro/internal/sched"
)

func main() {
	scale := experiments.SmallScale()
	cloud := experiments.NewCloud(experiments.Azure, scale)
	model := cloud.Model()

	g := rng.New(5)
	for _, mult := range []float64{1, 2, 10} {
		m := *model
		m.RateScale = mult // the "single line of code"
		tr := core.WithCatalog(m.Generate(g.Split(), cloud.TestW), cloud.Full.Flavors)
		h := sched.ReuseHistogram(sched.ReuseDistances(tr))

		// Pack the scaled trace (arrivals only, as in the paper's 10x
		// variation) onto a proportionally scaled cluster.
		events := sched.Events(tr, g.Split())
		res := sched.Pack(tr, events, sched.PackOptions{
			Servers: int(12 * mult), CPUCap: 64, MemCap: 256,
			Alg: sched.BusiestFit{}, NoDeparts: true,
		}, g)

		fmt.Printf("scale %4.0fx: %6d VMs  reuse[0]=%4.1f%%  reuse[6+]=%4.1f%%  FFAR=%.3f\n",
			mult, len(tr.VMs), h[0]*100, h[6]*100, res.Limiting)
	}
	fmt.Println("\nreuse shape and packability should be stable across scales;")
	fmt.Println("only the volume changes — that is what makes the knob safe for")
	fmt.Println("scheduler stress tests.")
}
