// Package analysis provides workload characterization of traces: the
// arrival, batch, flavor, lifetime, and correlation statistics that the
// workload-analysis literature reports (§7 of the paper surveys it) and
// that this repository used to validate its synthetic ground truth
// against the properties the paper documents for the real clouds.
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/survival"
	"repro/internal/trace"
)

// ArrivalStats characterizes the per-period arrival process.
type ArrivalStats struct {
	MeanPerPeriod float64
	CV            float64   // coefficient of variation (Poisson ⇒ 1/√mean)
	IndexOfDisp   float64   // variance/mean (Poisson ⇒ 1)
	Autocorr      []float64 // lag-1..lag-len autocorrelation
	PeakTroughHr  float64   // max/min of the mean hour-of-day profile
}

// Arrivals computes arrival statistics from per-period counts.
func Arrivals(counts []int, lags int) ArrivalStats {
	n := len(counts)
	if n == 0 {
		return ArrivalStats{}
	}
	xs := make([]float64, n)
	var sum float64
	for i, c := range counts {
		xs[i] = float64(c)
		sum += xs[i]
	}
	mean := sum / float64(n)
	var variance float64
	for _, v := range xs {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(n)
	st := ArrivalStats{MeanPerPeriod: mean}
	if mean > 0 {
		st.CV = math.Sqrt(variance) / mean
		st.IndexOfDisp = variance / mean
	}
	st.Autocorr = make([]float64, lags)
	for k := 1; k <= lags; k++ {
		var cov float64
		for i := 0; i+k < n; i++ {
			cov += (xs[i] - mean) * (xs[i+k] - mean)
		}
		if variance > 0 {
			st.Autocorr[k-1] = cov / float64(n-k) / variance
		}
	}
	// Hour-of-day profile.
	hourSum := make([]float64, 24)
	hourN := make([]float64, 24)
	for p, c := range counts {
		h := trace.HourOfDay(p)
		hourSum[h] += float64(c)
		hourN[h]++
	}
	peak, trough := math.Inf(-1), math.Inf(1)
	for h := 0; h < 24; h++ {
		if hourN[h] == 0 {
			continue
		}
		v := hourSum[h] / hourN[h]
		peak = math.Max(peak, v)
		trough = math.Min(trough, v)
	}
	if trough > 0 && !math.IsInf(peak, -1) {
		st.PeakTroughHr = peak / trough
	}
	return st
}

// BatchStats characterizes the user-batch structure.
type BatchStats struct {
	Count        int
	MeanSize     float64
	P95Size      float64
	MaxSize      int
	SingletonPct float64
}

// Batches computes batch statistics for a trace.
func Batches(tr *trace.Trace) BatchStats {
	var sizes []float64
	maxSize, singles := 0, 0
	for _, list := range tr.PeriodBatches() {
		for _, b := range list {
			s := len(b.Indices)
			sizes = append(sizes, float64(s))
			if s > maxSize {
				maxSize = s
			}
			if s == 1 {
				singles++
			}
		}
	}
	st := BatchStats{Count: len(sizes), MaxSize: maxSize}
	if len(sizes) == 0 {
		return st
	}
	st.MeanSize = metrics.Mean(sizes)
	st.P95Size = metrics.Quantile(sizes, 0.95)
	st.SingletonPct = float64(singles) / float64(len(sizes))
	return st
}

// FlavorStats characterizes the flavor popularity distribution.
type FlavorStats struct {
	Distinct   int     // flavors observed
	EntropyNat float64 // Shannon entropy of the empirical distribution
	Top1Share  float64 // share of the most popular flavor
	Top5Share  float64
}

// Flavors computes flavor popularity statistics.
func Flavors(tr *trace.Trace) FlavorStats {
	counts := make([]float64, tr.Flavors.K())
	var total float64
	for _, vm := range tr.VMs {
		counts[vm.Flavor]++
		total++
	}
	st := FlavorStats{}
	if total == 0 {
		return st
	}
	shares := make([]float64, 0, len(counts))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		st.Distinct++
		p := c / total
		shares = append(shares, p)
		st.EntropyNat += -p * math.Log(p)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	for i, p := range shares {
		if i == 0 {
			st.Top1Share = p
		}
		if i < 5 {
			st.Top5Share += p
		}
	}
	return st
}

// LifetimeStats characterizes the lifetime distribution.
type LifetimeStats struct {
	CensoredPct float64
	P50         float64 // uncensored lifetime quantiles, seconds
	P90         float64
	P99         float64
	// CPUHoursTopDecile is the fraction of total CPU-hours contributed
	// by the longest-lived 10% of uncensored VMs (the paper cites >95%
	// of core-hours from a small fraction of long-running VMs).
	CPUHoursTopDecile float64
}

// Lifetimes computes lifetime statistics.
func Lifetimes(tr *trace.Trace) LifetimeStats {
	var durations []float64
	type vmLoad struct{ dur, cpuh float64 }
	var loads []vmLoad
	var censored int
	var totalCPUh float64
	for _, vm := range tr.VMs {
		if vm.Censored {
			censored++
			continue
		}
		durations = append(durations, vm.Duration)
		cpuh := tr.Flavors.Defs[vm.Flavor].CPU * vm.Duration / 3600
		loads = append(loads, vmLoad{vm.Duration, cpuh})
		totalCPUh += cpuh
	}
	st := LifetimeStats{}
	if len(tr.VMs) > 0 {
		st.CensoredPct = float64(censored) / float64(len(tr.VMs))
	}
	if len(durations) == 0 {
		return st
	}
	st.P50 = metrics.Quantile(durations, 0.5)
	st.P90 = metrics.Quantile(durations, 0.9)
	st.P99 = metrics.Quantile(durations, 0.99)
	sort.Slice(loads, func(i, j int) bool { return loads[i].dur > loads[j].dur })
	topN := len(loads) / 10
	var topCPUh float64
	for i := 0; i < topN; i++ {
		topCPUh += loads[i].cpuh
	}
	if totalCPUh > 0 {
		st.CPUHoursTopDecile = topCPUh / totalCPUh
	}
	return st
}

// CorrelationStats quantifies the inter-job correlations that the
// paper's models exploit and the naive baselines ignore.
type CorrelationStats struct {
	// IntraBatchSameFlavor is the fraction of consecutive within-batch
	// VM pairs sharing a flavor.
	IntraBatchSameFlavor float64
	// IntraBatchLifetimeCorr is the Pearson correlation of log-lifetimes
	// between consecutive within-batch VMs (uncensored pairs).
	IntraBatchLifetimeCorr float64
	// CrossBatchSameFlavor is the fraction of consecutive batches whose
	// first flavors match (user persistence signal).
	CrossBatchSameFlavor float64
}

// Correlations computes the momentum statistics for a trace.
func Correlations(tr *trace.Trace) CorrelationStats {
	var samePairs, pairs int
	var xs, ys []float64
	var crossSame, crossPairs int
	prevBatchFlavor := -1
	for _, list := range tr.PeriodBatches() {
		for _, b := range list {
			first := tr.VMs[b.Indices[0]]
			if prevBatchFlavor >= 0 {
				crossPairs++
				if first.Flavor == prevBatchFlavor {
					crossSame++
				}
			}
			prevBatchFlavor = tr.VMs[b.Indices[len(b.Indices)-1]].Flavor
			for i := 1; i < len(b.Indices); i++ {
				a, c := tr.VMs[b.Indices[i-1]], tr.VMs[b.Indices[i]]
				pairs++
				if a.Flavor == c.Flavor {
					samePairs++
				}
				if !a.Censored && !c.Censored && a.Duration > 0 && c.Duration > 0 {
					xs = append(xs, math.Log(a.Duration))
					ys = append(ys, math.Log(c.Duration))
				}
			}
		}
	}
	st := CorrelationStats{}
	if pairs > 0 {
		st.IntraBatchSameFlavor = float64(samePairs) / float64(pairs)
	}
	if crossPairs > 0 {
		st.CrossBatchSameFlavor = float64(crossSame) / float64(crossPairs)
	}
	st.IntraBatchLifetimeCorr = pearson(xs, ys)
	return st
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	mx, my := metrics.Mean(xs), metrics.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Report bundles the full characterization of one trace.
type Report struct {
	Name         string
	VMs          int
	Days         float64
	Arrivals     ArrivalStats
	BatchArrival ArrivalStats
	Batches      BatchStats
	Flavors      FlavorStats
	Lifetimes    LifetimeStats
	Correlations CorrelationStats
}

// Characterize computes the full report for a trace.
func Characterize(name string, tr *trace.Trace) Report {
	return Report{
		Name:         name,
		VMs:          len(tr.VMs),
		Days:         tr.Days(),
		Arrivals:     Arrivals(tr.ArrivalCounts(), 12),
		BatchArrival: Arrivals(tr.BatchCounts(), 12),
		Batches:      Batches(tr),
		Flavors:      Flavors(tr),
		Lifetimes:    Lifetimes(tr),
		Correlations: Correlations(tr),
	}
}

// Render prints the report as human-readable text.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "Workload characterization: %s\n", r.Name)
	fmt.Fprintf(w, "  %d VMs over %.1f days\n", r.VMs, r.Days)
	fmt.Fprintf(w, "  arrivals/period: mean %.2f, dispersion %.2f, lag-1 autocorr %.2f, peak/trough %.2f\n",
		r.Arrivals.MeanPerPeriod, r.Arrivals.IndexOfDisp, lag1(r.Arrivals), r.Arrivals.PeakTroughHr)
	fmt.Fprintf(w, "  batches/period:  mean %.2f, dispersion %.2f\n",
		r.BatchArrival.MeanPerPeriod, r.BatchArrival.IndexOfDisp)
	fmt.Fprintf(w, "  batches: %d, mean size %.2f, p95 %.0f, %.0f%% singletons\n",
		r.Batches.Count, r.Batches.MeanSize, r.Batches.P95Size, r.Batches.SingletonPct*100)
	fmt.Fprintf(w, "  flavors: %d distinct, entropy %.2f nats, top-1 %.0f%%, top-5 %.0f%%\n",
		r.Flavors.Distinct, r.Flavors.EntropyNat, r.Flavors.Top1Share*100, r.Flavors.Top5Share*100)
	fmt.Fprintf(w, "  lifetimes: p50 %s, p90 %s, p99 %s, %.1f%% censored, top decile = %.0f%% of CPU-hours\n",
		fmtDur(r.Lifetimes.P50), fmtDur(r.Lifetimes.P90), fmtDur(r.Lifetimes.P99),
		r.Lifetimes.CensoredPct*100, r.Lifetimes.CPUHoursTopDecile*100)
	fmt.Fprintf(w, "  correlations: intra-batch same-flavor %.0f%%, lifetime corr %.2f, cross-batch flavor %.0f%%\n",
		r.Correlations.IntraBatchSameFlavor*100, r.Correlations.IntraBatchLifetimeCorr,
		r.Correlations.CrossBatchSameFlavor*100)
}

func lag1(a ArrivalStats) float64 {
	if len(a.Autocorr) == 0 {
		return 0
	}
	return a.Autocorr[0]
}

func fmtDur(seconds float64) string {
	switch {
	case seconds < 3600:
		return fmt.Sprintf("%.0fm", seconds/60)
	case seconds < 86400:
		return fmt.Sprintf("%.1fh", seconds/3600)
	default:
		return fmt.Sprintf("%.1fd", seconds/86400)
	}
}

// BinHistogram returns the distribution of uncensored lifetimes over
// the given bin layout (proportions).
func BinHistogram(tr *trace.Trace, bins survival.Bins) []float64 {
	counts := make([]int, bins.J())
	total := 0
	for _, vm := range tr.VMs {
		if vm.Censored {
			continue
		}
		counts[bins.Index(vm.Duration)]++
		total++
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
