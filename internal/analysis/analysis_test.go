package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := synth.AzureLike()
	cfg.Days = 3
	cfg.Users = 60
	cfg.BaseRate = 2
	return cfg.Generate(1)
}

func TestArrivalsPoissonBaseline(t *testing.T) {
	// A constant-rate iid Poisson count series should have dispersion
	// ~1 and autocorrelation ~0.
	cfg := synth.AzureLike()
	cfg.Days = 3
	cfg.Users = 60
	cfg.BaseRate = 2
	cfg.DiurnalAmp = 0
	cfg.WeekendDip = 1
	cfg.DayEffect = 0
	cfg.Persistence = 0
	tr := cfg.Generate(2)
	st := Arrivals(tr.BatchCounts(), 6)
	if math.Abs(st.IndexOfDisp-1) > 0.25 {
		t.Errorf("flat Poisson dispersion %v, want ~1", st.IndexOfDisp)
	}
	if math.Abs(st.Autocorr[0]) > 0.1 {
		t.Errorf("flat Poisson lag-1 autocorr %v, want ~0", st.Autocorr[0])
	}
}

func TestArrivalsSeasonalWorkload(t *testing.T) {
	tr := smallTrace(t)
	st := Arrivals(tr.BatchCounts(), 6)
	if st.MeanPerPeriod <= 0 {
		t.Fatal("mean should be positive")
	}
	if st.PeakTroughHr <= 1.2 {
		t.Errorf("diurnal peak/trough %v, want > 1.2", st.PeakTroughHr)
	}
	if st.Autocorr[0] <= 0.02 {
		t.Errorf("seasonal workload should show positive lag-1 autocorr: %v", st.Autocorr[0])
	}
}

func TestArrivalsEmpty(t *testing.T) {
	st := Arrivals(nil, 3)
	if st.MeanPerPeriod != 0 || st.CV != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}

func TestBatches(t *testing.T) {
	tr := smallTrace(t)
	st := Batches(tr)
	if st.Count == 0 || st.MaxSize < 1 {
		t.Fatalf("batch stats: %+v", st)
	}
	if st.MeanSize < 1 || st.MeanSize > 10 {
		t.Fatalf("mean size %v implausible", st.MeanSize)
	}
	if st.P95Size < st.MeanSize {
		t.Fatal("p95 below mean")
	}
	if st.SingletonPct < 0 || st.SingletonPct > 1 {
		t.Fatalf("singleton pct %v", st.SingletonPct)
	}
}

func TestBatchesEmpty(t *testing.T) {
	tr := &trace.Trace{Flavors: &trace.FlavorSet{Defs: []trace.FlavorDef{{CPU: 1, MemGB: 1}}}, Periods: 5}
	st := Batches(tr)
	if st.Count != 0 || st.MeanSize != 0 {
		t.Fatalf("empty batch stats: %+v", st)
	}
}

func TestFlavors(t *testing.T) {
	tr := smallTrace(t)
	st := Flavors(tr)
	if st.Distinct < 2 || st.Distinct > tr.Flavors.K() {
		t.Fatalf("distinct %d", st.Distinct)
	}
	if st.EntropyNat <= 0 || st.EntropyNat > math.Log(float64(tr.Flavors.K())) {
		t.Fatalf("entropy %v out of range", st.EntropyNat)
	}
	if st.Top1Share <= 0 || st.Top1Share > 1 || st.Top5Share < st.Top1Share {
		t.Fatalf("shares: %+v", st)
	}
	// Zipf-ish popularity: top-5 should dominate.
	if st.Top5Share < 0.4 {
		t.Errorf("top-5 share %v, want skewed popularity", st.Top5Share)
	}
}

func TestLifetimes(t *testing.T) {
	full := smallTrace(t)
	sliced := full.Slice(trace.Window{Start: 0, End: full.Periods}, 0)
	st := Lifetimes(sliced)
	if !(st.P50 < st.P90 && st.P90 <= st.P99) {
		t.Fatalf("quantiles not ordered: %+v", st)
	}
	if st.CensoredPct <= 0 || st.CensoredPct > 0.7 {
		t.Fatalf("censored pct %v implausible", st.CensoredPct)
	}
	// Long-tail property: the top decile should account for a large
	// share of CPU-hours (the paper cites >95% at Azure scale).
	if st.CPUHoursTopDecile < 0.3 {
		t.Errorf("top-decile CPU-hours %v, want heavy concentration", st.CPUHoursTopDecile)
	}
}

func TestCorrelationsPlantedMomentum(t *testing.T) {
	tr := smallTrace(t)
	st := Correlations(tr)
	if st.IntraBatchSameFlavor < 0.4 {
		t.Errorf("intra-batch flavor momentum %v too weak", st.IntraBatchSameFlavor)
	}
	if st.IntraBatchLifetimeCorr < 0.3 {
		t.Errorf("intra-batch lifetime correlation %v too weak", st.IntraBatchLifetimeCorr)
	}
	if st.CrossBatchSameFlavor <= 0.05 {
		t.Errorf("cross-batch flavor persistence %v too weak", st.CrossBatchSameFlavor)
	}
}

func TestCorrelationsIndependentBaseline(t *testing.T) {
	// Destroying the correlations should drive the stats down.
	cfg := synth.AzureLike()
	cfg.Days = 3
	cfg.Users = 60
	cfg.BaseRate = 2
	cfg.RepeatFlavorP = 0
	cfg.RepeatLifetimeP = 0
	cfg.TemplateP = 0
	cfg.Persistence = 0
	cfg.FavoriteCount = 8
	tr := cfg.Generate(3)
	st := Correlations(tr)
	// Same-user favorite-flavor collisions leave a floor (~0.54 for the
	// geometric preference weights); the planted momentum config sits
	// near 0.75+.
	if st.IntraBatchSameFlavor > 0.65 {
		t.Errorf("independent flavor momentum %v too high", st.IntraBatchSameFlavor)
	}
	planted := Correlations(smallTrace(t))
	if st.IntraBatchSameFlavor >= planted.IntraBatchSameFlavor {
		t.Errorf("independent momentum %v should be below planted %v",
			st.IntraBatchSameFlavor, planted.IntraBatchSameFlavor)
	}
}

func TestCharacterizeAndRender(t *testing.T) {
	tr := smallTrace(t)
	r := Characterize("test", tr)
	if r.VMs != len(tr.VMs) || r.Days != tr.Days() {
		t.Fatalf("report header wrong: %+v", r)
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Workload characterization: test", "arrivals/period", "flavors:", "lifetimes:", "correlations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBinHistogram(t *testing.T) {
	tr := smallTrace(t)
	bins := survival.PaperBins()
	h := BinHistogram(tr, bins)
	if len(h) != bins.J() {
		t.Fatalf("len %d", len(h))
	}
	var sum float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative proportion")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram sums to %v", sum)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("single point should be 0")
	}
	if pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero-variance input should be 0")
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[float64]string{
		120:    "2m",
		7200:   "2.0h",
		172800: "2.0d",
	}
	for in, want := range cases {
		if got := fmtDur(in); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", in, got, want)
		}
	}
}
