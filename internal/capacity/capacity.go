// Package capacity implements the §6.1 capacity-planning evaluation:
// total-CPU time series over a window, carried-over load from VMs
// already running at the window start, and prediction-interval coverage
// across many sampled future traces.
package capacity

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/trace"
)

// TotalCPUSeries returns the number of CPUs in use at each period of the
// trace's window, counting a VM as active in period p when it has
// arrived by p and its end time is beyond the period start.
func TotalCPUSeries(tr *trace.Trace) []float64 {
	out := make([]float64, tr.Periods)
	for _, vm := range tr.VMs {
		cpu := tr.Flavors.Defs[vm.Flavor].CPU
		addSpan(out, vm.Start, vm.EndSeconds(), cpu)
	}
	return out
}

// addSpan adds cpu to every period in [startPeriod, endSeconds).
func addSpan(out []float64, startPeriod int, endSeconds, cpu float64) {
	endPeriod := int(endSeconds / trace.PeriodSeconds)
	if float64(endPeriod)*trace.PeriodSeconds < endSeconds {
		endPeriod++
	}
	if endPeriod > len(out) {
		endPeriod = len(out)
	}
	for p := startPeriod; p < endPeriod; p++ {
		if p >= 0 {
			out[p] += cpu
		}
	}
}

// FullSeries returns the total CPUs in use at every period of the whole
// history, counting each VM from its start period until its end time —
// the observed aggregate series a time-series forecaster would train on.
func FullSeries(history *trace.Trace) []float64 {
	out := make([]float64, history.Periods)
	for _, vm := range history.VMs {
		addSpan(out, vm.Start, vm.EndSeconds(), history.Flavors.Defs[vm.Flavor].CPU)
	}
	return out
}

// CarryOverSeries returns the per-period CPU load, within window w, of
// VMs in the history that started before w and are still running —
// the constant added to every model's forecast in §6.1 ("we include in
// the total workload all VMs already running at the beginning of the
// test window, using their actual lifetimes").
func CarryOverSeries(history *trace.Trace, w trace.Window) []float64 {
	if w.Start < 0 || w.End > history.Periods || w.Start >= w.End {
		panic(fmt.Sprintf("capacity: bad window %+v", w))
	}
	out := make([]float64, w.Periods())
	winStartSec := float64(w.Start) * trace.PeriodSeconds
	for _, vm := range history.VMs {
		if vm.Start >= w.Start {
			continue
		}
		end := vm.EndSeconds()
		if end <= winStartSec {
			continue
		}
		cpu := history.Flavors.Defs[vm.Flavor].CPU
		addSpan(out, 0, end-winStartSec, cpu)
	}
	return out
}

// Forecast is the result of a capacity-planning evaluation.
type Forecast struct {
	Intervals []metrics.Interval
	Actual    []float64
	Coverage  float64
	// CRPS is the mean continuous ranked probability score of the
	// sampled forecast distribution — a strictly proper score combining
	// calibration and sharpness, complementing interval coverage.
	CRPS float64
}

// Evaluate builds per-period prediction intervals (at the given level,
// e.g. 0.9) from sampled total-CPU series, adds the carried-over load to
// both samples and actual, and computes coverage of the actual series.
func Evaluate(sampled [][]float64, actual, carryOver []float64, level float64) Forecast {
	n := len(actual)
	if carryOver != nil && len(carryOver) != n {
		panic(fmt.Sprintf("capacity: carryOver len %d, actual %d", len(carryOver), n))
	}
	// Each sample's adjustment is independent; fan out across the Monte
	// Carlo samples (each task writes only its own row).
	adjusted := make([][]float64, len(sampled))
	par.Do(len(sampled), func(s int) {
		row := sampled[s]
		if len(row) != n {
			panic(fmt.Sprintf("capacity: sample %d len %d, actual %d", s, len(row), n))
		}
		adj := make([]float64, n)
		for i, v := range row {
			adj[i] = v
			if carryOver != nil {
				adj[i] += carryOver[i]
			}
		}
		adjusted[s] = adj
	})
	actAdj := make([]float64, n)
	for i, v := range actual {
		actAdj[i] = v
		if carryOver != nil {
			actAdj[i] += carryOver[i]
		}
	}
	iv := metrics.PredictionIntervals(adjusted, level)
	return Forecast{
		Intervals: iv,
		Actual:    actAdj,
		Coverage:  metrics.Coverage(actAdj, iv),
		CRPS:      metrics.MeanCRPS(adjusted, actAdj),
	}
}
