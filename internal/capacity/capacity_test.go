package capacity

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func fs() *trace.FlavorSet {
	return &trace.FlavorSet{Defs: []trace.FlavorDef{
		{Name: "s", CPU: 2, MemGB: 4},
		{Name: "l", CPU: 8, MemGB: 32},
	}}
}

func TestTotalCPUSeries(t *testing.T) {
	tr := &trace.Trace{
		Flavors: fs(),
		Periods: 5,
		VMs: []trace.VM{
			// 2 CPUs from period 0, lasting 600s (periods 0,1).
			{Flavor: 0, Start: 0, Duration: 600},
			// 8 CPUs from period 1, lasting 450s (periods 1,2 — partial
			// period 2 still counts).
			{Flavor: 1, Start: 1, Duration: 450},
		},
	}
	got := TotalCPUSeries(tr)
	want := []float64{2, 10, 8, 0, 0}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("period %d = %v, want %v (all %v)", i, got[i], w, got)
		}
	}
}

func TestTotalCPUSeriesClampsToWindow(t *testing.T) {
	tr := &trace.Trace{
		Flavors: fs(),
		Periods: 2,
		VMs:     []trace.VM{{Flavor: 0, Start: 1, Duration: 1e9}},
	}
	got := TotalCPUSeries(tr)
	if got[0] != 0 || got[1] != 2 {
		t.Fatalf("series %v", got)
	}
}

func TestCarryOverSeries(t *testing.T) {
	hist := &trace.Trace{
		Flavors: fs(),
		Periods: 10,
		VMs: []trace.VM{
			// Starts before window [4,8), ends at 5*300+0 -> covers window
			// period 0 only (history periods 4..4).
			{Flavor: 1, Start: 2, Duration: 3 * 300},
			// Starts before, runs past the window end: covers all 4.
			{Flavor: 0, Start: 0, Duration: 1e9},
			// Starts inside the window: not carried over.
			{Flavor: 1, Start: 5, Duration: 1e9},
			// Ends before the window: ignored.
			{Flavor: 1, Start: 0, Duration: 300},
		},
	}
	got := CarryOverSeries(hist, trace.Window{Start: 4, End: 8})
	want := []float64{10, 2, 2, 2}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("carry-over %d = %v, want %v (all %v)", i, got[i], w, got)
		}
	}
}

func TestFullSeries(t *testing.T) {
	hist := &trace.Trace{
		Flavors: fs(),
		Periods: 6,
		VMs: []trace.VM{
			{Flavor: 0, Start: 0, Duration: 700},  // 2 CPUs, periods 0-2
			{Flavor: 1, Start: 3, Duration: 9999}, // 8 CPUs, periods 3-5 (clamped)
		},
	}
	got := FullSeries(hist)
	want := []float64{2, 2, 2, 8, 8, 8}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("FullSeries[%d] = %v, want %v (all %v)", i, got[i], w, got)
		}
	}
	// Consistency: FullSeries over a window = carry-over + window slice.
	w := trace.Window{Start: 2, End: 6}
	carry := CarryOverSeries(hist, w)
	own := TotalCPUSeries(hist.Slice(w, 0))
	for i := 0; i < w.Periods(); i++ {
		if carry[i]+own[i] != got[w.Start+i] {
			t.Fatalf("decomposition mismatch at %d: %v + %v != %v", i, carry[i], own[i], got[w.Start+i])
		}
	}
}

func TestCarryOverBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CarryOverSeries(&trace.Trace{Flavors: fs(), Periods: 4}, trace.Window{Start: 3, End: 2})
}

func TestEvaluateCoverage(t *testing.T) {
	// 3 samples of a 2-point series.
	sampled := [][]float64{
		{10, 100},
		{20, 110},
		{30, 120},
	}
	actual := []float64{20, 500}
	f := Evaluate(sampled, actual, nil, 0.9)
	if f.Coverage != 0.5 {
		t.Fatalf("coverage = %v", f.Coverage)
	}
	if len(f.Intervals) != 2 {
		t.Fatalf("intervals = %d", len(f.Intervals))
	}
	if f.Intervals[0].Median != 20 {
		t.Fatalf("median = %v", f.Intervals[0].Median)
	}
}

func TestEvaluateCarryOverShiftsBoth(t *testing.T) {
	sampled := [][]float64{{0}, {10}}
	actual := []float64{5}
	carry := []float64{100}
	f := Evaluate(sampled, actual, carry, 0.9)
	if f.Actual[0] != 105 {
		t.Fatalf("actual adjusted = %v", f.Actual[0])
	}
	if f.Coverage != 1 {
		t.Fatalf("coverage = %v", f.Coverage)
	}
	if math.Abs(f.Intervals[0].Median-105) > 1e-9 {
		t.Fatalf("median = %v", f.Intervals[0].Median)
	}
}

func TestEvaluatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate([][]float64{{1, 2}}, []float64{1}, nil, 0.9)
}

func TestEvaluateCRPS(t *testing.T) {
	sampled := [][]float64{{10}, {20}, {30}}
	good := Evaluate(sampled, []float64{20}, nil, 0.9)
	bad := Evaluate(sampled, []float64{100}, nil, 0.9)
	if good.CRPS <= 0 || bad.CRPS <= good.CRPS {
		t.Fatalf("CRPS should penalize the miss: good %v bad %v", good.CRPS, bad.CRPS)
	}
}
