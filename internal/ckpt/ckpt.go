// Package ckpt is the crash-safe checkpoint store underneath the fault
// -tolerance layer (DESIGN.md §8): versioned, checksummed checkpoint
// files written atomically (write to a temp file, fsync, rename, fsync
// the directory), so a crash at any instant leaves either the previous
// checkpoint or the new one — never a half-written file that silently
// loads. Every frame carries a magic string, a format version, the
// payload length, and a CRC32 of the payload; Decode rejects anything
// truncated or corrupted with an error (never a panic), and LoadLatest
// falls back to the newest file that still verifies.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// magic identifies a checkpoint frame; Version is the current frame
// format. Decode accepts only this version so incompatible future
// formats fail loudly instead of being misparsed.
const (
	magic   = "RPCK"
	Version = 1

	// headerLen is magic(4) + version(4) + payload length(8) + CRC32(4).
	headerLen = 4 + 4 + 8 + 4

	// maxPayload bounds a single checkpoint payload (1 GiB). A frame
	// whose header claims more is corrupt by definition; the bound also
	// keeps Decode from attempting absurd allocations on garbage input.
	maxPayload = 1 << 30
)

// ErrNotFound is returned by LoadLatest when no checkpoint for the
// prefix exists (or none verifies).
var ErrNotFound = errors.New("ckpt: no valid checkpoint found")

// Encode frames a payload: magic, version, length, CRC32, payload.
func Encode(payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	copy(out[0:4], magic)
	binary.LittleEndian.PutUint32(out[4:8], Version)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:20], crc32.ChecksumIEEE(payload))
	copy(out[headerLen:], payload)
	return out
}

// Decode verifies a frame and returns its payload. Any deviation —
// short header, wrong magic, unknown version, truncated or oversized
// payload, checksum mismatch — is an error; Decode never panics on
// arbitrary input.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("ckpt: frame too short: %d bytes, want >= %d", len(data), headerLen)
	}
	if string(data[0:4]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("ckpt: unsupported version %d (want %d)", v, Version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n > maxPayload {
		return nil, fmt.Errorf("ckpt: payload length %d exceeds limit %d", n, maxPayload)
	}
	if uint64(len(data)-headerLen) != n {
		return nil, fmt.Errorf("ckpt: truncated frame: %d payload bytes, header says %d", len(data)-headerLen, n)
	}
	payload := data[headerLen:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[16:20]) {
		return nil, fmt.Errorf("ckpt: checksum mismatch")
	}
	return payload, nil
}

// Store writes versioned checkpoints "<prefix>-<seq>.ckpt" into Dir.
// Sequence numbers order the versions of one prefix; Save keeps the
// newest Keep of them (0 means a default of 3, negative keeps all).
// A Store is stateless apart from its configuration; concurrent Saves
// of distinct prefixes are safe.
type Store struct {
	Dir  string
	Keep int
}

// keep resolves the retention count.
func (s *Store) keep() int {
	if s.Keep == 0 {
		return 3
	}
	return s.Keep
}

const suffix = ".ckpt"

// fileName returns the versioned checkpoint name for (prefix, seq).
func fileName(prefix string, seq int) string {
	return fmt.Sprintf("%s-%08d%s", prefix, seq, suffix)
}

// parseSeq extracts the sequence number from a checkpoint file name for
// the given prefix, or ok=false if the name does not belong to it.
func parseSeq(prefix, name string) (seq int, ok bool) {
	if !strings.HasPrefix(name, prefix+"-") || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix+"-"), suffix)
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Save atomically writes one checkpoint: the frame goes to a temp file
// in the same directory, is fsynced, renamed over the final name, and
// the directory is fsynced so the rename itself survives a crash. On
// success, versions older than the retention count are pruned. Returns
// the final path.
func (s *Store) Save(prefix string, seq int, payload []byte) (string, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", fmt.Errorf("ckpt: mkdir: %w", err)
	}
	final := filepath.Join(s.Dir, fileName(prefix, seq))
	tmp, err := os.CreateTemp(s.Dir, fileName(prefix, seq)+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("ckpt: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(Encode(payload)); err != nil {
		_ = tmp.Close()
		cleanup()
		return "", fmt.Errorf("ckpt: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		cleanup()
		return "", fmt.Errorf("ckpt: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return "", fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return "", fmt.Errorf("ckpt: rename: %w", err)
	}
	if err := syncDir(s.Dir); err != nil {
		return "", fmt.Errorf("ckpt: fsync dir: %w", err)
	}
	s.prune(prefix)
	return final, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// seqs returns the existing sequence numbers for prefix, ascending.
func (s *Store) seqs(prefix string) []int {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSeq(prefix, e.Name()); ok {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Seqs exposes the existing checkpoint sequence numbers for a prefix in
// ascending order (for tests and tooling).
func (s *Store) Seqs(prefix string) []int { return s.seqs(prefix) }

// prune removes the oldest versions beyond the retention count. Prune
// errors are ignored: retention is best-effort and must never fail a
// successful save.
func (s *Store) prune(prefix string) {
	keep := s.keep()
	if keep < 0 {
		return
	}
	seqs := s.seqs(prefix)
	for len(seqs) > keep {
		_ = os.Remove(filepath.Join(s.Dir, fileName(prefix, seqs[0])))
		seqs = seqs[1:]
	}
}

// LoadLatest returns the payload of the newest checkpoint for prefix
// that verifies, its sequence number, and how many newer files were
// skipped as corrupt or unreadable. A truncated or bit-flipped latest
// checkpoint is therefore not fatal: the previous intact version wins.
// Returns ErrNotFound when nothing verifies.
func (s *Store) LoadLatest(prefix string) (payload []byte, seq int, skipped int, err error) {
	seqs := s.seqs(prefix)
	for i := len(seqs) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(filepath.Join(s.Dir, fileName(prefix, seqs[i])))
		if rerr != nil {
			skipped++
			continue
		}
		p, derr := Decode(data)
		if derr != nil {
			skipped++
			continue
		}
		return p, seqs[i], skipped, nil
	}
	return nil, 0, skipped, ErrNotFound
}

// Load reads and verifies one specific checkpoint version.
func (s *Store) Load(prefix string, seq int) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.Dir, fileName(prefix, seq)))
	if err != nil {
		return nil, fmt.Errorf("ckpt: read: %w", err)
	}
	return Decode(data)
}
