package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 1000)}
	for _, p := range payloads {
		frame := Encode(p)
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip changed payload: %d vs %d bytes", len(got), len(p))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	frame := Encode([]byte("the quick brown fox"))
	cases := map[string][]byte{
		"empty":        {},
		"short header": frame[:10],
		"bad magic":    append([]byte("NOPE"), frame[4:]...),
		"truncated":    frame[:len(frame)-3],
		"extended":     append(append([]byte{}, frame...), 0x00),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
	// Every single-byte flip must be caught (magic, version, length,
	// checksum, or payload corruption).
	for i := range frame {
		mut := append([]byte{}, frame...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); err == nil {
			t.Errorf("bit flip at byte %d decoded without error", i)
		}
	}
}

func TestSaveLoadLatest(t *testing.T) {
	s := &Store{Dir: t.TempDir(), Keep: -1}
	for seq, text := range []string{"v0", "v1", "v2"} {
		if _, err := s.Save("model", seq, []byte(text)); err != nil {
			t.Fatalf("save %d: %v", seq, err)
		}
	}
	got, seq, skipped, err := s.LoadLatest("model")
	if err != nil {
		t.Fatalf("load latest: %v", err)
	}
	if string(got) != "v2" || seq != 2 || skipped != 0 {
		t.Fatalf("got %q seq=%d skipped=%d, want v2/2/0", got, seq, skipped)
	}
	if _, _, _, err := s.LoadLatest("other"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing prefix: got %v, want ErrNotFound", err)
	}
}

// TestTruncatedLatestFallsBack is the crash-safety contract: a torn
// write of the newest checkpoint must not lose the run — the previous
// intact checkpoint is used.
func TestTruncatedLatestFallsBack(t *testing.T) {
	s := &Store{Dir: t.TempDir(), Keep: -1}
	if _, err := s.Save("model", 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	path, err := s.Save("model", 2, []byte("newest"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: truncate the newest file.
	if err := os.Truncate(path, 7); err != nil {
		t.Fatal(err)
	}
	got, seq, skipped, err := s.LoadLatest("model")
	if err != nil {
		t.Fatalf("load latest after truncation: %v", err)
	}
	if string(got) != "good" || seq != 1 || skipped != 1 {
		t.Fatalf("got %q seq=%d skipped=%d, want good/1/1", got, seq, skipped)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	s := &Store{Dir: t.TempDir(), Keep: 2}
	for seq := 0; seq < 5; seq++ {
		if _, err := s.Save("m", seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	seqs := s.Seqs("m")
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("retained %v, want [3 4]", seqs)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := &Store{Dir: dir}
	if _, err := s.Save("m", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != suffix {
			t.Errorf("stray file after save: %s", e.Name())
		}
	}
}

func TestPrefixesAreIndependent(t *testing.T) {
	s := &Store{Dir: t.TempDir(), Keep: -1}
	if _, err := s.Save("alpha", 3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save("beta", 9, []byte("b")); err != nil {
		t.Fatal(err)
	}
	got, seq, _, err := s.LoadLatest("alpha")
	if err != nil || string(got) != "a" || seq != 3 {
		t.Fatalf("alpha: %q %d %v", got, seq, err)
	}
	// A prefix that is itself a prefix of another must not match its
	// files.
	if _, _, _, err := s.LoadLatest("alph"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("prefix bleed: %v", err)
	}
}
