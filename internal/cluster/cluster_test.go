package cluster

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

// separatedTrace builds a trace with two well-separated job populations:
// small/short and large/long.
func separatedTrace() *trace.Trace {
	fs := &trace.FlavorSet{Defs: []trace.FlavorDef{
		{Name: "small", CPU: 1, MemGB: 2},
		{Name: "big", CPU: 32, MemGB: 256},
	}}
	tr := &trace.Trace{Flavors: fs, Periods: 10}
	for i := 0; i < 60; i++ {
		tr.VMs = append(tr.VMs, trace.VM{
			ID: i, User: i % 5, Flavor: 0, Start: i % 10, Duration: 300 + float64(i),
		})
	}
	for i := 60; i < 120; i++ {
		tr.VMs = append(tr.VMs, trace.VM{
			ID: i, User: i % 5, Flavor: 1, Start: i % 10, Duration: 500000 + float64(i),
		})
	}
	tr.SortVMs()
	return tr
}

func TestKMeansSeparatesPopulations(t *testing.T) {
	tr := separatedTrace()
	cl, err := KMeans(tr, 2, rng.New(1), 50)
	if err != nil {
		t.Fatal(err)
	}
	if cl.K() != 2 {
		t.Fatalf("K = %d", cl.K())
	}
	// All small/short jobs should land in one cluster and big/long in
	// the other.
	firstSmall := cl.Assign(tr, tr.VMs[0])
	for _, vm := range tr.VMs {
		got := cl.Assign(tr, vm)
		wantSame := tr.Flavors.Defs[vm.Flavor].CPU == 1
		if (got == firstSmall) != wantSame {
			t.Fatalf("VM %d (cpu %v) assigned to cluster %d", vm.ID, tr.Flavors.Defs[vm.Flavor].CPU, got)
		}
	}
	// Members partition the trace.
	total := 0
	for _, m := range cl.Members {
		total += len(m)
	}
	if total != len(tr.VMs) {
		t.Fatalf("members cover %d of %d", total, len(tr.VMs))
	}
}

func TestKMeansErrors(t *testing.T) {
	tr := separatedTrace()
	if _, err := KMeans(tr, 0, rng.New(1), 10); err == nil {
		t.Fatal("expected k=0 error")
	}
	empty := &trace.Trace{Flavors: tr.Flavors, Periods: 1}
	if _, err := KMeans(empty, 2, rng.New(1), 10); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	tr := separatedTrace()
	tr.VMs = tr.VMs[:3]
	cl, err := KMeans(tr, 10, rng.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cl.K() > 3 {
		t.Fatalf("K = %d, want <= 3", cl.K())
	}
}

func TestSampleMember(t *testing.T) {
	tr := separatedTrace()
	cl, err := KMeans(tr, 2, rng.New(2), 50)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(3)
	for k := 0; k < cl.K(); k++ {
		for i := 0; i < 50; i++ {
			idx := cl.SampleMember(k, g)
			if cl.Assign(tr, tr.VMs[idx]) != k {
				t.Fatalf("sampled member %d not in cluster %d", idx, k)
			}
		}
	}
}

func TestPseudoTrace(t *testing.T) {
	cfg := synth.AzureLike()
	cfg.Days = 1
	cfg.Users = 40
	cfg.BaseRate = 2
	tr := cfg.Generate(5)
	cl, err := KMeans(tr, 6, rng.New(4), 30)
	if err != nil {
		t.Fatal(err)
	}
	pseudo := cl.PseudoTrace(tr)
	if pseudo.Flavors.K() != cl.K() {
		t.Fatalf("pseudo catalog %d flavors", pseudo.Flavors.K())
	}
	if err := pseudo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pseudo.VMs) != len(tr.VMs) {
		t.Fatal("VM count changed")
	}
	// Start times and durations are preserved; only flavors relabel.
	for i := range tr.VMs {
		if pseudo.VMs[i].Start != tr.VMs[i].Start || pseudo.VMs[i].Duration != tr.VMs[i].Duration {
			t.Fatal("relabeling changed job timing")
		}
	}
}

// TestInertiaDecreasesWithK is the elbow-curve property: more clusters
// never increase the k-means objective (with enough restarts; we allow
// small seeding noise).
func TestInertiaDecreasesWithK(t *testing.T) {
	cfg := synth.AzureLike()
	cfg.Days = 1
	cfg.Users = 40
	cfg.BaseRate = 2
	tr := cfg.Generate(6)
	prev := -1.0
	for _, k := range []int{1, 4, 16} {
		cl, err := KMeans(tr, k, rng.New(7), 50)
		if err != nil {
			t.Fatal(err)
		}
		in := cl.Inertia(tr)
		if prev >= 0 && in > prev*1.05 {
			t.Fatalf("inertia rose from %v to %v at k=%d", prev, in, k)
		}
		prev = in
	}
}
