package core

import (
	"testing"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/survival"
)

// tinyGenModels builds untrained (randomly initialized) stage-2/3
// models: allocation behavior and decode mechanics do not depend on
// the weights.
func tinyGenModels() (*FlavorModel, *LifetimeModel) {
	const k, days = 3, 2
	fm := &FlavorModel{K: k, Temporal: features.Temporal{HistoryDays: days}, HistoryDays: days}
	fm.Net = nn.NewLSTM(nn.Config{
		InputDim:  flavorInputDim(k, fm.Temporal),
		HiddenDim: 8, Layers: 2, OutputDim: k + 1,
	}, rng.New(1))
	bins := survival.PaperBins()
	lm := &LifetimeModel{
		Bins: bins, K: k,
		Temporal:    features.Temporal{HistoryDays: days},
		LifeFeat:    features.LifetimeFeatures{Bins: bins.J()},
		HistoryDays: days,
	}
	lm.Net = nn.NewLSTM(nn.Config{
		InputDim:  lifetimeInputDim(k, lm.Temporal, lm.LifeFeat),
		HiddenDim: 8, Layers: 2, OutputDim: bins.J(),
	}, rng.New(2))
	return fm, lm
}

// TestGenerationStepAllocFree pins the generation hot path: after the
// pooled decoder states exist, one flavor-decode step and one
// lifetime-hazard step must allocate nothing.
func TestGenerationStepAllocFree(t *testing.T) {
	fm, lm := tinyGenModels()
	fs := fm.acquireFlavorState()
	defer fm.releaseFlavorState(fs)
	fs.probs(0, 0) // size the step scratch
	fs.observe(1)
	if allocs := testing.AllocsPerRun(100, func() {
		fs.probs(1, 0)
		fs.observe(0)
	}); allocs != 0 {
		t.Fatalf("flavor decode step allocates %v times, want 0", allocs)
	}
	ls := lm.acquireLifetimeState()
	defer lm.releaseLifetimeState(ls)
	step := LifetimeStep{Period: 1, Flavor: 1, BatchSize: 2}
	ls.hazard(step, 0)
	ls.observe(2, false)
	if allocs := testing.AllocsPerRun(100, func() {
		ls.hazard(step, 0)
		ls.observe(1, false)
	}); allocs != 0 {
		t.Fatalf("lifetime hazard step allocates %v times, want 0", allocs)
	}
}

// TestPooledStateResetMatchesFresh verifies the sync.Pool recycling is
// invisible: a reused (reset) decoder state must produce bit-identical
// probabilities to a freshly constructed one.
func TestPooledStateResetMatchesFresh(t *testing.T) {
	fm, lm := tinyGenModels()

	// Dirty a state, release it, and re-acquire (usually the same
	// object back; either way it must behave like new).
	dirty := fm.acquireFlavorState()
	for i := 0; i < 7; i++ {
		dirty.probs(i%4, 0)
		dirty.observe(i % (fm.K + 1))
	}
	fm.releaseFlavorState(dirty)
	pooled := fm.acquireFlavorState()
	defer fm.releaseFlavorState(pooled)
	fresh := fm.newFlavorState()
	for i := 0; i < 5; i++ {
		got := pooled.probs(i, 1)
		want := fresh.probs(i, 1)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("step %d: pooled probs[%d]=%v, fresh %v", i, j, got[j], want[j])
			}
		}
		pooled.observe(i % (fm.K + 1))
		fresh.observe(i % (fm.K + 1))
	}

	ldirty := lm.acquireLifetimeState()
	ldirty.hazard(LifetimeStep{Period: 0, Flavor: 1, BatchSize: 3}, 1)
	ldirty.observe(4, true)
	lm.releaseLifetimeState(ldirty)
	lpooled := lm.acquireLifetimeState()
	defer lm.releaseLifetimeState(lpooled)
	lfresh := lm.newLifetimeState()
	for i := 0; i < 5; i++ {
		step := LifetimeStep{Period: i, Flavor: i % lm.K, BatchSize: 2}
		got := lpooled.hazard(step, 0)
		want := lfresh.hazard(step, 0)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("step %d: pooled hazard[%d]=%v, fresh %v", i, j, got[j], want[j])
			}
		}
		lpooled.observe(i%3, i%2 == 0)
		lfresh.observe(i%3, i%2 == 0)
	}
}
