package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"time"

	"repro/internal/ckpt"
	"repro/internal/features"
	"repro/internal/glm"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// ArrivalKind selects what the Poisson regression counts: user batches
// (the paper's stage 1, §2.1) or raw individual VM arrivals (the
// traditional baseline evaluated in Figure 6).
type ArrivalKind int

const (
	// BatchArrivals counts user batches per period.
	BatchArrivals ArrivalKind = iota
	// VMArrivals counts individual VM arrivals per period.
	VMArrivals
)

// ArrivalOptions configures training of the arrival model.
type ArrivalOptions struct {
	Kind   ArrivalKind
	UseDOH bool    // include the survival-encoded day-of-history block
	L2     float64 // ridge penalty (default 0.1)
	L1     float64 // optional lasso penalty (switches to ProxGrad)
	DOH    features.DOHSampler
	// Obs mirrors TrainConfig.Obs. The GLM converges in one solver run,
	// so it emits a single event (model "arrival_glm", epoch 0) whose
	// loss is the fitted mean Poisson NLL on the training periods.
	Obs obs.EpochSink
	// Checkpoint mirrors TrainConfig.Checkpoint (DESIGN.md §8). The fit
	// is one-shot, so its checkpoint stores the fitted coefficients and
	// resume skips the solver.
	Checkpoint *CheckpointSpec
}

// ArrivalModel is the fitted stage-1 model: an inhomogeneous Poisson
// rate over periods, driven by temporal features.
type ArrivalModel struct {
	Reg         *glm.PoissonRegression
	Kind        ArrivalKind
	UseDOH      bool
	HistoryDays int
	DOH         features.DOHSampler
}

// TrainArrival fits the arrival model on the training trace. The
// trace's own periods supply both the counts and the temporal features;
// the day-of-history block spans the training window's days.
func TrainArrival(tr *trace.Trace, opt ArrivalOptions) (*ArrivalModel, error) {
	var counts []int
	switch opt.Kind {
	case BatchArrivals:
		counts = tr.BatchCounts()
	case VMArrivals:
		counts = tr.ArrivalCounts()
	default:
		return nil, fmt.Errorf("core: unknown arrival kind %d", opt.Kind)
	}
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &ArrivalModel{
		Kind:        opt.Kind,
		UseDOH:      opt.UseDOH,
		HistoryDays: historyDays,
		DOH:         opt.DOH,
	}
	m.DOH.HistoryDays = historyDays
	// The fit is one-shot, so its checkpoint is the fitted coefficients:
	// an intact one short-circuits the solver on resume.
	var ckStore *ckpt.Store
	ckFP := arrivalFingerprint(opt, len(counts), historyDays)
	if cs := opt.Checkpoint; cs != nil && cs.Dir != "" {
		ckStore = &ckpt.Store{Dir: cs.Dir, Keep: cs.Keep}
		if cs.Resume {
			if payload, _, _, err := ckStore.LoadLatest("arrival-glm"); err == nil {
				var w arrivalCkptV1
				if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); derr == nil && w.Fingerprint == ckFP {
					m.Reg = &glm.PoissonRegression{W: w.W, Intercept: w.Intercept}
					return m, nil
				}
			}
		}
	}
	dim := m.featureDim()
	x := mat.NewDense(len(counts), dim)
	y := make([]float64, len(counts))
	for p, c := range counts {
		m.encode(x.Row(p), p, trace.DayOfHistory(p))
		y[p] = float64(c)
	}
	l2 := opt.L2
	if l2 == 0 {
		l2 = 0.1
	}
	fitOpt := glm.Options{Solver: glm.IRLS, L2: l2}
	if opt.L1 > 0 {
		fitOpt = glm.Options{Solver: glm.ProxGrad, L2: l2, L1: opt.L1, MaxIter: 2000}
	}
	fitStart := time.Now()
	reg, err := glm.Fit(x, y, fitOpt)
	if err != nil {
		return nil, fmt.Errorf("core: arrival fit: %w", err)
	}
	m.Reg = reg
	if ckStore != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(arrivalCkptV1{
			Fingerprint: ckFP, W: reg.W, Intercept: reg.Intercept,
		}); err == nil {
			_, _ = ckStore.Save("arrival-glm", 1, buf.Bytes())
		}
	}
	if opt.Obs != nil {
		opt.Obs.EpochDone(obs.EpochEvent{
			Model:  ObsArrivalGLM,
			Epoch:  0,
			Epochs: 1,
			Loss:   reg.NLL(x, y),
			Steps:  len(counts),
			WallMS: float64(time.Since(fitStart).Microseconds()) / 1000,
		})
	}
	return m, nil
}

func (m *ArrivalModel) featureDim() int {
	d := 24 + 7
	if m.UseDOH {
		d += m.HistoryDays
	}
	return d
}

func (m *ArrivalModel) encode(dst []float64, period, dohDay int) {
	features.OneHot(dst[:24], trace.HourOfDay(period))
	features.OneHot(dst[24:31], trace.DayOfWeek(period))
	if m.UseDOH {
		day := dohDay
		if day >= m.HistoryDays {
			day = m.HistoryDays - 1
		}
		features.SurvivalEncode(dst[31:], day)
	}
}

// Rate returns the Poisson mean for a period using the given DOH day
// (ignored when the model was trained without DOH features).
func (m *ArrivalModel) Rate(period, dohDay int) float64 {
	return m.RateInto(make([]float64, m.featureDim()), period, dohDay)
}

// RateInto is Rate with caller-owned feature scratch (len must be
// featureDim()), so per-period rate queries on decode hot paths — the
// serial generator and every genStream period transition — allocate
// nothing. The scratch is fully overwritten; values are identical to
// Rate's.
func (m *ArrivalModel) RateInto(scratch []float64, period, dohDay int) float64 {
	m.encode(scratch, period, dohDay)
	return m.Reg.Rate(scratch)
}

// SampleCount draws an arrival count for a period, sampling the DOH day
// per the model's sampler (§2.1.2).
func (m *ArrivalModel) SampleCount(g *rng.RNG, period int) int {
	return g.Poisson(m.Rate(period, m.DOH.Sample(g)))
}

// ArrivalCoverageOn computes the fraction of a held-out trace's
// per-period counts covered by the model's 90% prediction interval
// (sampling the DOH day per draw) — the §5.1 coverage metric, exposed
// for development-set tuning.
func ArrivalCoverageOn(m *ArrivalModel, held *trace.Trace, offset, samples int) float64 {
	g := rng.New(12345)
	var counts []int
	if m.Kind == BatchArrivals {
		counts = held.BatchCounts()
	} else {
		counts = held.ArrivalCounts()
	}
	sampled := make([][]float64, samples)
	for s := range sampled {
		row := make([]float64, len(counts))
		for p := range counts {
			row[p] = float64(m.SampleCount(g, offset+p))
		}
		sampled[s] = row
	}
	actual := make([]float64, len(counts))
	for p, c := range counts {
		actual[p] = float64(c)
	}
	iv := metrics.PredictionIntervals(sampled, 0.9)
	return metrics.Coverage(actual, iv)
}
