package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
)

// CheckpointSpec enables crash-safe training checkpoints (DESIGN.md §8).
// When attached to a training config, every loop writes an atomic,
// checksummed checkpoint at epoch boundaries capturing the model
// weights, the Adam moment vectors and step counter, the epoch cursor,
// the dev-selection state, and the RNG stream state — everything needed
// for a resumed run to reach byte-identical final weights and traces.
// One spec (one directory) serves all seven training loops: each loop
// writes under its own file prefix, so a full TrainModel run checkpoints
// its arrival, flavor, and lifetime stages side by side.
type CheckpointSpec struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every saves a checkpoint after every Every-th epoch (default 1).
	// The final post-training checkpoint is always written.
	Every int
	// Keep bounds retained versions per prefix (ckpt.Store semantics:
	// 0 means 3, negative keeps all).
	Keep int
	// Resume, when set, loads the newest intact checkpoint before
	// training and continues from its epoch cursor. A checkpoint whose
	// fingerprint (architecture, hyperparameters, data shape) does not
	// match the current run is ignored and training starts fresh.
	Resume bool
	// Obs, if non-nil, receives checkpoint telemetry: bytes written,
	// save duration, sequence numbers and save timestamps (age).
	Obs *obs.Registry
}

// everyN resolves the save cadence.
func (s *CheckpointSpec) everyN() int {
	if s == nil || s.Every <= 0 {
		return 1
	}
	return s.Every
}

// trainCkptV1 is the gob payload inside a training checkpoint frame.
type trainCkptV1 struct {
	// Fingerprint binds the checkpoint to one training setup; resume
	// refuses a checkpoint from a different architecture, hyperparameter
	// set, or input data shape.
	Fingerprint string
	// EpochsDone is the epoch cursor: how many epochs completed.
	EpochsDone int
	// Done marks the final checkpoint written after best-snapshot
	// restore; resuming a Done checkpoint skips training entirely.
	Done bool
	// Net is the network snapshot (MarshalBinary wire format).
	Net []byte
	// Opt is the optimizer state (nn.MarshalOptState wire format);
	// empty for loops without optimizer state to carry.
	Opt []byte
	// BestDev / BestSnap carry the dev-selection state so a resumed run
	// restores the same best-scoring weights at the end.
	BestDev  float64
	BestSnap []byte
	// RNG is the weight-init RNG stream position at save time, so the
	// full stream state survives a resume even if a future loop draws
	// training-time randomness.
	RNG rng.State
}

// netCodec is the slice of the network API checkpointing needs; all
// three architectures (LSTM, GRU, Transformer) satisfy it.
type netCodec interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

// trainCheckpointer drives checkpoint saves and resume for one training
// loop. A nil *trainCheckpointer is valid and does nothing, so loops
// call its methods unconditionally.
type trainCheckpointer struct {
	store  ckpt.Store
	prefix string
	fp     string
	every  int

	saves    *obs.Counter
	errors   *obs.Counter
	bytesTot *obs.Counter
	saveDur  *obs.Histogram
	lastSeq  *obs.Gauge
	lastUnix *obs.Gauge
	resumes  *obs.Counter
	rejected *obs.Counter
}

// newTrainCheckpointer returns the checkpointer for one loop, or nil
// when spec is nil or has no directory.
func newTrainCheckpointer(spec *CheckpointSpec, prefix, fingerprint string) *trainCheckpointer {
	if spec == nil || spec.Dir == "" {
		return nil
	}
	t := &trainCheckpointer{
		store:  ckpt.Store{Dir: spec.Dir, Keep: spec.Keep},
		prefix: prefix,
		fp:     fingerprint,
		every:  spec.everyN(),
	}
	if r := spec.Obs; r != nil {
		t.saves = r.Counter("ckpt_saves_total")
		t.errors = r.Counter("ckpt_save_errors_total")
		t.bytesTot = r.Counter("ckpt_bytes_total")
		t.saveDur = r.Histogram("ckpt_save_seconds", obs.LatencyBuckets)
		t.lastSeq = r.Gauge("ckpt_last_seq")
		t.lastUnix = r.Gauge("ckpt_last_save_unix_ms")
		t.resumes = r.Counter("ckpt_resumes_total")
		t.rejected = r.Counter("ckpt_resume_rejected_total")
	}
	return t
}

// resume loads the newest intact checkpoint for this loop and restores
// the network weights and optimizer state in place. Returns the loaded
// payload and true on success; on any failure (nothing on disk, corrupt
// frames, fingerprint mismatch, undecodable state) training starts
// fresh. Restore order matters: the net is restored before the
// optimizer so moment shapes are matched against the restored params,
// and callers must resume before deriving sharded views from the net.
func (t *trainCheckpointer) resume(spec *CheckpointSpec, net netCodec, opt *nn.Adam, params func() []*nn.Param) (trainCkptV1, bool) {
	var zero trainCkptV1
	if t == nil || spec == nil || !spec.Resume {
		return zero, false
	}
	payload, _, _, err := t.store.LoadLatest(t.prefix)
	if err != nil {
		return zero, false
	}
	var w trainCkptV1
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		t.reject()
		return zero, false
	}
	if w.Fingerprint != t.fp || w.EpochsDone < 0 {
		t.reject()
		return zero, false
	}
	if err := net.UnmarshalBinary(w.Net); err != nil {
		t.reject()
		return zero, false
	}
	if opt != nil && len(w.Opt) > 0 {
		if err := nn.UnmarshalOptState(w.Opt, opt, params()); err != nil {
			t.reject()
			return zero, false
		}
	}
	if t.resumes != nil {
		t.resumes.Inc()
	}
	return w, true
}

func (t *trainCheckpointer) reject() {
	if t != nil && t.rejected != nil {
		t.rejected.Inc()
	}
}

// save writes one checkpoint if the cadence (or done) calls for it.
// Failures are counted but do not abort training: a checkpointing
// problem must never take down a run that would otherwise finish.
func (t *trainCheckpointer) save(epochsDone int, done bool, net netCodec, opt *nn.Adam, params []*nn.Param, bestDev float64, bestSnap []byte, g rng.State) {
	if t == nil {
		return
	}
	if !done && epochsDone%t.every != 0 {
		return
	}
	w := trainCkptV1{
		Fingerprint: t.fp,
		EpochsDone:  epochsDone,
		Done:        done,
		BestDev:     bestDev,
		BestSnap:    bestSnap,
		RNG:         g,
	}
	var err error
	if w.Net, err = net.MarshalBinary(); err != nil {
		t.countErr()
		return
	}
	if opt != nil {
		if w.Opt, err = nn.MarshalOptState(opt, params); err != nil {
			t.countErr()
			return
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.countErr()
		return
	}
	seq := epochsDone
	if done {
		// The final checkpoint sorts strictly after every boundary save.
		seq = epochsDone + 1
	}
	start := time.Now()
	if _, err := t.store.Save(t.prefix, seq, buf.Bytes()); err != nil {
		t.countErr()
		return
	}
	if t.saves != nil {
		t.saves.Inc()
		t.bytesTot.Add(int64(buf.Len()))
		t.saveDur.Observe(time.Since(start).Seconds())
		t.lastSeq.Set(int64(seq))
		t.lastUnix.Set(time.Now().UnixMilli())
	}
}

func (t *trainCheckpointer) countErr() {
	if t.errors != nil {
		t.errors.Inc()
	}
}

// fingerprint builds the resume-compatibility string for an LSTM/GRU
// loop from everything that shapes the training trajectory: model name,
// hyperparameters, and input data shape.
func (c TrainConfig) fingerprint(model string, dataLen, k, historyDays int) string {
	return fmt.Sprintf("%s|h%d l%d s%d b%d e%d lr%g wd%g cn%g seed%d de%d do%d dev%t|n%d k%d hd%d",
		model, c.Hidden, c.Layers, c.SeqLen, c.BatchSize, c.Epochs, c.LR,
		c.WeightDecay, c.ClipNorm, c.Seed, c.DevEvery, c.DevOffset, c.Dev != nil,
		dataLen, k, historyDays)
}

// fingerprint is the TransformerTrainConfig counterpart.
func (c TransformerTrainConfig) fingerprint(dataLen, k, historyDays int) string {
	return fmt.Sprintf("%s|d%d h%d f%d l%d m%d e%d lr%g cn%g seed%d|n%d k%d hd%d",
		ObsFlavorTransformer, c.ModelDim, c.Heads, c.FFDim, c.Layers, c.MaxLen,
		c.Epochs, c.LR, c.ClipNorm, c.Seed, dataLen, k, historyDays)
}

// arrivalCkptV1 is the gob payload of a fitted-arrival checkpoint. The
// GLM fit is one-shot, so its checkpoint simply carries the fitted
// coefficients: resume skips the solver entirely.
type arrivalCkptV1 struct {
	Fingerprint string
	W           []float64
	Intercept   float64
}

// arrivalFingerprint binds an arrival checkpoint to the fit setup.
func arrivalFingerprint(o ArrivalOptions, nPeriods, historyDays int) string {
	return fmt.Sprintf("%s|k%d doh%t l2%g l1%g|n%d hd%d",
		ObsArrivalGLM, o.Kind, o.UseDOH, o.L2, o.L1, nPeriods, historyDays)
}
