package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

// ckptTrace builds the small shared fixture: a train slice plus a dev
// slice so the flavor loop's dev-selection state is exercised too.
func ckptTrace(t *testing.T) (tr, dev *trace.Trace, devOffset int) {
	t.Helper()
	cfg := synth.AzureLike()
	cfg.Days = 2
	cfg.Users = 30
	cfg.BaseRate = 1.5
	full := cfg.Generate(5)
	cut := full.Periods * 3 / 4
	tr = full.Slice(trace.Window{Start: 0, End: cut}, 0)
	dev = full.Slice(trace.Window{Start: cut, End: full.Periods}, 0)
	return tr, dev, cut
}

// cutCheckpoints simulates a crash at epoch boundary maxSeq: it returns
// a fresh directory holding only the checkpoint files with sequence
// numbers <= maxSeq, exactly what would exist on disk had the process
// died right after that boundary's save.
func cutCheckpoints(t *testing.T, src string, maxSeq int) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		base := strings.TrimSuffix(name, ".ckpt")
		i := strings.LastIndex(base, "-")
		seq, err := strconv.Atoi(base[i+1:])
		if err != nil {
			t.Fatal(err)
		}
		if seq > maxSeq {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

const ckptTestEpochs = 3

// TestTrainLoopsResumeBitExact is the per-loop crash/resume property:
// for each of the six network training loops, (1) enabling
// checkpointing does not perturb the trained weights, and (2) a run
// killed at ANY epoch boundary and resumed from disk reaches weights
// byte-identical to the uninterrupted run.
func TestTrainLoopsResumeBitExact(t *testing.T) {
	tr, dev, devOffset := ckptTrace(t)
	bins := survival.PaperBins()
	baseCfg := func(spec *CheckpointSpec) TrainConfig {
		return TrainConfig{
			Hidden: 6, Layers: 1, SeqLen: 16, BatchSize: 4,
			Epochs: ckptTestEpochs, LR: 5e-3, Seed: 3,
			Dev: dev, DevOffset: devOffset, DevEvery: 2,
			Checkpoint: spec,
		}
	}
	loops := []struct {
		name  string
		train func(spec *CheckpointSpec) []byte
	}{
		{"flavor-lstm", func(spec *CheckpointSpec) []byte {
			b, err := TrainFlavor(tr, baseCfg(spec)).Net.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"flavor-gru", func(spec *CheckpointSpec) []byte {
			b, err := TrainFlavorGRU(tr, baseCfg(spec)).Net.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"lifetime-hazard", func(spec *CheckpointSpec) []byte {
			b, err := TrainLifetime(tr, bins, baseCfg(spec)).Net.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"lifetime-pmf", func(spec *CheckpointSpec) []byte {
			b, err := TrainLifetimePMF(tr, bins, baseCfg(spec)).Net.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"joint-lstm", func(spec *CheckpointSpec) []byte {
			b, err := TrainJoint(tr, baseCfg(spec)).Net.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"flavor-transformer", func(spec *CheckpointSpec) []byte {
			cfg := TransformerTrainConfig{
				ModelDim: 8, Heads: 2, Layers: 1, MaxLen: 16,
				Epochs: ckptTestEpochs, Seed: 3, Checkpoint: spec,
			}
			b, err := TrainFlavorTransformer(tr, cfg).Net.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	}
	for _, loop := range loops {
		loop := loop
		t.Run(loop.name, func(t *testing.T) {
			want := loop.train(nil)

			dir := t.TempDir()
			got := loop.train(&CheckpointSpec{Dir: dir, Every: 1, Keep: -1})
			if !bytes.Equal(want, got) {
				t.Fatal("enabling checkpointing changed the trained weights")
			}

			for k := 1; k < ckptTestEpochs; k++ {
				resumed := loop.train(&CheckpointSpec{
					Dir: cutCheckpoints(t, dir, k), Every: 1, Keep: -1, Resume: true,
				})
				if !bytes.Equal(want, resumed) {
					t.Fatalf("resume from epoch boundary %d diverged from uninterrupted run", k)
				}
			}

			// Resuming a finished run short-circuits to the final weights.
			done := loop.train(&CheckpointSpec{Dir: dir, Keep: -1, Resume: true})
			if !bytes.Equal(want, done) {
				t.Fatal("resume of a completed run returned different weights")
			}
		})
	}
}

// TestArrivalCheckpointSkipsRefit: the one-shot GLM checkpoint restores
// identical coefficients without re-running the solver.
func TestArrivalCheckpointSkipsRefit(t *testing.T) {
	tr, _, _ := ckptTrace(t)
	base, err := TrainArrival(tr, ArrivalOptions{Kind: BatchArrivals})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	saved, err := TrainArrival(tr, ArrivalOptions{
		Kind: BatchArrivals, Checkpoint: &CheckpointSpec{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := TrainArrival(tr, ArrivalOptions{
		Kind: BatchArrivals, Checkpoint: &CheckpointSpec{Dir: dir, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Reg.W {
		if base.Reg.W[i] != saved.Reg.W[i] || base.Reg.W[i] != resumed.Reg.W[i] {
			t.Fatalf("coefficient %d diverged: %v / %v / %v", i, base.Reg.W[i], saved.Reg.W[i], resumed.Reg.W[i])
		}
	}
	if base.Reg.Intercept != resumed.Reg.Intercept {
		t.Fatal("intercept diverged through checkpoint")
	}
	// A different fit setup must not pick up the stale checkpoint.
	other, err := TrainArrival(tr, ArrivalOptions{
		Kind: VMArrivals, Checkpoint: &CheckpointSpec{Dir: dir, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	same := other.Reg.Intercept == base.Reg.Intercept
	for i := range other.Reg.W {
		if i < len(base.Reg.W) && other.Reg.W[i] != base.Reg.W[i] {
			same = false
		}
	}
	if same {
		t.Fatal("fingerprint mismatch did not force a refit")
	}
}

// TestResumeIgnoresMismatchedFingerprint: a checkpoint from different
// hyperparameters must be ignored, not loaded into the wrong shapes.
func TestResumeIgnoresMismatchedFingerprint(t *testing.T) {
	tr, dev, devOffset := ckptTrace(t)
	dir := t.TempDir()
	cfgA := TrainConfig{
		Hidden: 6, Layers: 1, SeqLen: 16, BatchSize: 4,
		Epochs: 2, LR: 5e-3, Seed: 3, Dev: dev, DevOffset: devOffset,
		Checkpoint: &CheckpointSpec{Dir: dir, Keep: -1},
	}
	TrainFlavor(tr, cfgA)

	cfgB := cfgA
	cfgB.Hidden = 8
	cfgB.Checkpoint = &CheckpointSpec{Dir: dir, Keep: -1, Resume: true}
	cfgNoCk := cfgB
	cfgNoCk.Checkpoint = nil
	want, err := TrainFlavor(tr, cfgNoCk).Net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrainFlavor(tr, cfgB).Net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("mismatched checkpoint perturbed a fresh run")
	}
}
