package core
