package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/survival"
	"repro/internal/trace"
)

// This file is the continuous-batching decode engine (DESIGN.md §6.2):
// Model.Generate's sequential three-stage loop, unrolled into an
// explicit per-stream state machine (genStream) so many independent
// generations advance together through shared batched LSTM step GEMMs
// (nn.Fleet). The scheduler admits newly arrived streams and retires
// finished ones every fleet-step instead of padding to the longest
// sequence or decoding one stream at a time.
//
// Determinism contract: each stream owns its RNG and consumes draws in
// exactly the order Model.Generate does, and a Fleet step is
// bit-identical per row to the serial StepForward, so every batched
// trace is byte-identical to m.Generate(g, w) regardless of batch
// composition, admission order, or worker count.

// BatchGenerator is implemented by generators that can decode many
// independent traces through shared batched step GEMMs. Results must
// be element-wise identical to calling Generate(gs[i], w) serially.
type BatchGenerator interface {
	GenerateBatch(gs []*rng.RNG, w trace.Window) []*trace.Trace
}

// streamPhase is the kind of NN step a stream needs next.
type streamPhase uint8

const (
	phaseFlavor   streamPhase = iota // next step: flavor token
	phaseLifetime                    // next step: lifetime hazard
	phaseDone                        // trace complete (or aborted)
)

// genSpan mirrors Generate's batchSpan: one non-empty batch as a span
// over the period's shared flavor buffer.
type genSpan struct {
	user, lo, hi int
}

// genStream is one in-flight Generate call unrolled into resumable
// state: everything the serial loop keeps on its stack, plus the
// fleet rows holding its LSTM state. All RNG draws happen in consume*
// and startPeriod in exactly the serial order.
type genStream struct {
	m     *Model
	g     *rng.RNG
	w     trace.Window
	scale float64
	out   *trace.Trace
	ctx   context.Context // optional; non-nil only for served streams
	err   error           // context error on aborted streams

	phase streamPhase
	frow  int // flavor fleet row
	lrow  int // lifetime fleet row

	// Period loop state (Generate's locals).
	p        int // current period
	dohDay   int
	curDay   int
	nextUser int
	id       int

	// Flavor stage state.
	nBatches int
	eobCount int
	jobs     int
	curUser  int
	curLo    int
	prevTok  int
	spans    []genSpan
	flavors  []int

	// Lifetime stage state.
	si, ji   int // span / job-in-span cursors
	prevBin  int
	prevCens bool

	// Arrival feature scratch for RateInto, so period transitions on
	// the decode hot path allocate nothing.
	arrF []float64

	// Request tracing (DESIGN.md §7): nil on untraced streams, so the
	// per-round cost of disabled tracing is one pointer test. Spans are
	// only written from the scheduler goroutine that owns the stream.
	tr        *rtrace.Trace
	admitted  time.Time // when the scheduler admitted the stream
	firstStep time.Time // first fleet round that stepped the stream
	rounds    int64     // fleet rounds this stream participated in

	// Delivery: GenerateBatch indexes by slot; Engine replies on done.
	slot int
	done chan engineResult
}

// newGenStream starts one generation: it performs the serial loop's
// up-front draws (initial DOH day) and advances to the first period
// with work, so the stream is immediately steppable (or already done).
func (m *Model) newGenStream(g *rng.RNG, w trace.Window, scale float64, ctx context.Context) *genStream {
	s := &genStream{
		m:       m,
		g:       g,
		w:       w,
		scale:   scale,
		ctx:     ctx,
		out:     &trace.Trace{Flavors: &trace.FlavorSet{Defs: m.flavorDefs()}, Periods: w.Periods()},
		prevTok: EOBToken(m.Flavor.K),
		prevBin: -1,
		arrF:    make([]float64, m.Arrival.featureDim()),
	}
	s.dohDay = m.Arrival.DOH.Sample(g)
	s.curDay = -1
	s.p = w.Start - 1
	s.startPeriod()
	return s
}

// startPeriod advances to the next period with at least one batch,
// drawing DOH days and batch counts exactly as the serial loop does;
// it parks the stream in phaseDone when the window is exhausted.
func (s *genStream) startPeriod() {
	m := s.m
	for s.p++; s.p < s.w.End; s.p++ {
		if d := trace.DayOfHistory(s.p); d != s.curDay {
			s.curDay = d
			s.dohDay = m.Arrival.DOH.Sample(s.g)
		}
		nBatches := s.g.Poisson(m.Arrival.RateInto(s.arrF, s.p, s.dohDay) * s.scale)
		if nBatches == 0 {
			continue
		}
		s.nBatches = nBatches
		s.spans = s.spans[:0]
		s.flavors = s.flavors[:0]
		s.curUser, s.curLo = s.nextUser, 0
		s.nextUser++
		s.jobs, s.eobCount = 0, 0
		s.phase = phaseFlavor
		return
	}
	s.phase = phaseDone
}

// encodeFlavor writes the next flavor-step input (the flavorState
// encoding with this stream's previous token).
func (s *genStream) encodeFlavor(dst []float64) {
	s.m.Flavor.encodeFlavorInput(dst, s.prevTok, s.p, s.dohDay)
}

// consumeFlavor finishes one flavor step from the head logits: sample
// the token (serial draw order: softmax, tilt, Categorical, then the
// max-jobs override), record it, and roll the period machine forward.
func (s *genStream) consumeFlavor(logits, probs []float64) {
	m := s.m
	// Vectorized but bit-identical to the serial path's SoftmaxInto.
	nn.SoftmaxIntoVec(logits, probs)
	if !m.Tilt.isZero() {
		m.Tilt.apply(probs, m.Flavor.K)
	}
	tok := s.g.Categorical(probs)
	eob := EOBToken(m.Flavor.K)
	if s.jobs >= m.maxJobs() {
		tok = eob
	}
	s.prevTok = tok
	if tok != eob {
		s.flavors = append(s.flavors, tok)
		s.jobs++
		return
	}
	s.eobCount++
	// An EOB with no preceding jobs yields an empty batch, which is not
	// representable in the trace; it still counts toward the period's
	// batch total so generation terminates (same as the serial loop).
	if len(s.flavors) > s.curLo {
		s.spans = append(s.spans, genSpan{user: s.curUser, lo: s.curLo, hi: len(s.flavors)})
	}
	s.curUser, s.curLo = s.nextUser, len(s.flavors)
	s.nextUser++
	if s.eobCount < s.nBatches {
		return
	}
	if len(s.spans) == 0 {
		s.startPeriod()
		return
	}
	s.si, s.ji = 0, 0
	s.phase = phaseLifetime
}

// lifetimeStep returns the current job's step features.
func (s *genStream) lifetimeStep() LifetimeStep {
	b := s.spans[s.si]
	return LifetimeStep{
		Period:    s.p,
		Flavor:    s.flavors[b.lo+s.ji],
		BatchSize: b.hi - b.lo,
	}
}

// encodeLifetime writes the next lifetime-step input.
func (s *genStream) encodeLifetime(dst []float64) {
	s.m.Lifetime.encodeLifetimeInput(dst, s.lifetimeStep(), s.dohDay, s.prevBin, s.prevCens)
}

// consumeLifetime finishes one lifetime step: sample the bin and
// duration (serial draw order), emit the VM, and advance the span
// cursors, returning to the period machine when the period's jobs are
// done.
func (s *genStream) consumeLifetime(logits, hz []float64) {
	m := s.m
	// Vectorized but bit-identical to the serial path's SigmoidInto.
	nn.SigmoidIntoVec(logits, hz)
	bin := survival.SampleBin(hz, s.g)
	s.prevBin, s.prevCens = bin, false
	var dur float64
	if m.Interp == survival.Stepped {
		dur = m.Lifetime.Bins.Hi(bin)
	} else {
		dur = s.g.Uniform(m.Lifetime.Bins.Lo(bin), m.Lifetime.Bins.Hi(bin))
	}
	b := s.spans[s.si]
	s.out.VMs = append(s.out.VMs, trace.VM{
		ID:       s.id,
		User:     b.user,
		Flavor:   s.flavors[b.lo+s.ji],
		Start:    s.p - s.w.Start,
		Duration: dur,
	})
	s.id++
	s.ji++
	if b.lo+s.ji >= b.hi {
		s.si++
		s.ji = 0
	}
	if s.si >= len(s.spans) {
		s.startPeriod()
	}
}

// fleetEngine advances a set of genStreams through shared batched
// fleet steps. Invariants: every live stream owns exactly one row in
// each fleet; each round steps every non-done stream exactly once
// (flavor and lifetime streams in two batched GEMM groups); done
// streams are retired at the end of the round with swap-remove row
// compaction mirrored into the owner tables.
type fleetEngine struct {
	m      *Model
	ff, lf nn.StepFleet // f64 nn.Fleet or f32 nn.Fleet32, per Precision

	streams []*genStream
	fOwner  []*genStream // flavor fleet row -> stream
	lOwner  []*genStream // lifetime fleet row -> stream

	// Per-round scratch.
	fReq, lReq, retired []*genStream
	rows                []int
	probs               []float64 // flavor softmax buffer, reused per stream
	hz                  []float64 // lifetime hazard buffer, reused per stream
}

func newFleetEngine(m *Model, capacity int, prec Precision) *fleetEngine {
	e := &fleetEngine{
		m:     m,
		probs: make([]float64, m.Flavor.K+1),
		hz:    make([]float64, m.Lifetime.Bins.J()),
	}
	if prec.normalize() == PrecisionF32 {
		// PrepareF32/PreparePackedF32 are idempotent and cached on the
		// model; callers that fan fleet construction out across
		// goroutines (GenerateBatchShardedF32) prepare them up front.
		// Nil panels (REPRO_NOPACK) fall through to unpacked fleets.
		f32 := m.PrepareF32()
		var pf, pl *nn.PackedLSTM32
		if pp := m.PreparePackedF32(); pp != nil {
			pf, pl = pp.Flavor, pp.Lifetime
		}
		e.ff = f32.Flavor.NewFleet32Packed(capacity, pf)
		e.lf = f32.Lifetime.NewFleet32Packed(capacity, pl)
	} else {
		var pf, pl *nn.PackedLSTM
		if pp := m.PreparePacked(); pp != nil {
			pf, pl = pp.Flavor, pp.Lifetime
		}
		e.ff = m.Flavor.Net.NewFleetPacked(capacity, pf)
		e.lf = m.Lifetime.Net.NewFleetPacked(capacity, pl)
	}
	return e
}

func (e *fleetEngine) active() int { return len(e.streams) }

// admit registers a stream and assigns its fleet rows (zero state, the
// fresh-state condition of the pooled serial decoders).
func (e *fleetEngine) admit(s *genStream) {
	s.frow = e.ff.Admit()
	s.lrow = e.lf.Admit()
	e.streams = append(e.streams, s)
	e.fOwner = append(e.fOwner, nil)
	e.lOwner = append(e.lOwner, nil)
	e.fOwner[s.frow] = s
	e.lOwner[s.lrow] = s
}

// round advances every live stream by exactly one LSTM step and
// retires the ones that finished (or whose context was cancelled),
// returning them. The returned slice is reused by the next round.
func (e *fleetEngine) round() []*genStream {
	// Abort served streams whose client has gone away before spending
	// a step on them.
	for _, s := range e.streams {
		if s.phase != phaseDone && s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				s.err = err
				s.phase = phaseDone
			}
		}
	}
	e.fReq, e.lReq = e.fReq[:0], e.lReq[:0]
	for _, s := range e.streams {
		if s.phase == phaseDone {
			continue
		}
		if s.tr != nil {
			// Traced streams count the rounds they ride in and pin the
			// instant batching ended (their first step); untraced streams
			// pay one pointer test.
			if s.rounds == 0 {
				s.firstStep = time.Now()
			}
			s.rounds++
		}
		switch s.phase {
		case phaseFlavor:
			e.fReq = append(e.fReq, s)
		case phaseLifetime:
			e.lReq = append(e.lReq, s)
		}
	}
	// A stream that transitions phase mid-round waits for the next
	// round's batch of the other kind: group membership is fixed up
	// front, which keeps the step count per stream independent of the
	// batch's composition.
	if len(e.fReq) > 0 {
		e.rows = e.rows[:0]
		for i, s := range e.fReq {
			e.rows = append(e.rows, s.frow)
			s.encodeFlavor(e.ff.InputRow(i))
		}
		y := e.ff.Step(e.rows)
		for i, s := range e.fReq {
			s.consumeFlavor(y.Row(i), e.probs)
		}
	}
	if len(e.lReq) > 0 {
		e.rows = e.rows[:0]
		for i, s := range e.lReq {
			e.rows = append(e.rows, s.lrow)
			s.encodeLifetime(e.lf.InputRow(i))
		}
		y := e.lf.Step(e.rows)
		for i, s := range e.lReq {
			s.consumeLifetime(y.Row(i), e.hz)
		}
	}
	// Retire finished streams, compacting both fleets and the owner
	// tables in lockstep with the fleets' swap-remove.
	e.retired = e.retired[:0]
	for i := 0; i < len(e.streams); {
		s := e.streams[i]
		if s.phase != phaseDone {
			i++
			continue
		}
		if s.tr != nil {
			// Close out the stream's span pair: coalesce covers admission
			// to the first step (batch-window + shard-queue wait), decode
			// covers the stepped rounds. A stream aborted before its first
			// step gets an empty decode span anchored at retirement.
			now := time.Now()
			first := s.firstStep
			if first.IsZero() {
				first = now
			}
			s.tr.Add("coalesce", s.admitted, first.Sub(s.admitted))
			s.tr.AddN("decode", first, now.Sub(first), s.rounds)
		}
		if moved := e.ff.Retire(s.frow); moved >= 0 {
			o := e.fOwner[moved]
			o.frow = s.frow
			e.fOwner[s.frow] = o
		}
		e.fOwner = e.fOwner[:len(e.fOwner)-1]
		if moved := e.lf.Retire(s.lrow); moved >= 0 {
			o := e.lOwner[moved]
			o.lrow = s.lrow
			e.lOwner[s.lrow] = o
		}
		e.lOwner = e.lOwner[:len(e.lOwner)-1]
		last := len(e.streams) - 1
		e.streams[i] = e.streams[last]
		e.streams = e.streams[:last]
		e.retired = append(e.retired, s)
	}
	return e.retired
}

// defaultMaxStreams bounds how many streams decode concurrently in one
// fleet; past ~64 rows the step GEMMs stop gaining from extra batch
// and the admission wave just delays first results.
const defaultMaxStreams = 64

// GenerateBatch decodes one trace per RNG through the continuous
// -batching engine. Each returned trace is byte-identical to
// m.Generate(gs[i], w): streams are admitted in order up to the fleet
// cap, retired as they finish, and replaced from the remaining queue
// every step. Implements BatchGenerator.
func (m *Model) GenerateBatch(gs []*rng.RNG, w trace.Window) []*trace.Trace {
	out := make([]*trace.Trace, len(gs))
	if len(gs) == 0 {
		return out
	}
	m.PreparePacked()
	m.decodeQueue(gs, nil, w, out, PrecisionF64)
	return out
}

// GenerateBatchF32 is GenerateBatch on the float32 fast path: the same
// continuous-batching schedule, but the fleet steps run on f32 weight
// slabs (DESIGN.md §6.4). Results are deterministic per seed and
// independent of batch composition — identical across the serial,
// batched, and sharded f32 engines — but not byte-identical to the f64
// path; ValidateF32 bounds the distributional divergence.
func (m *Model) GenerateBatchF32(gs []*rng.RNG, w trace.Window) []*trace.Trace {
	out := make([]*trace.Trace, len(gs))
	if len(gs) == 0 {
		return out
	}
	m.PrepareF32()
	m.PreparePackedF32()
	m.decodeQueue(gs, nil, w, out, PrecisionF32)
	return out
}

// decodeQueue decodes a queue of streams to completion through one
// fleetEngine: the streams at gs[idx[0]], gs[idx[1]], ... (or all of gs
// when idx is nil) are admitted in queue order up to the fleet cap,
// retired as they finish, and replaced from the remainder every round.
// Each finished trace lands in out at the stream's gs index, and no
// other slot of out is touched — which is what lets per-shard queues
// run concurrently under the par contract (GenerateBatchSharded).
func (m *Model) decodeQueue(gs []*rng.RNG, idx []int, w trace.Window, out []*trace.Trace, prec Precision) {
	n := len(gs)
	if idx != nil {
		n = len(idx)
	}
	if n == 0 {
		return
	}
	slot := func(i int) int {
		if idx == nil {
			return i
		}
		return idx[i]
	}
	capacity := defaultMaxStreams
	if n < capacity {
		capacity = n
	}
	e := newFleetEngine(m, capacity, prec)
	next, done := 0, 0
	for done < n {
		for e.active() < capacity && next < n {
			i := slot(next)
			s := m.newGenStream(gs[i], w, m.rateScale(), nil)
			s.slot = i
			e.admit(s)
			next++
		}
		for _, s := range e.round() {
			out[s.slot] = s.out
			done++
		}
	}
}

// ErrEngineClosed is returned for requests submitted to (or queued on)
// an Engine that has been Closed.
var ErrEngineClosed = errors.New("core: decode engine closed")

type engineResult struct {
	tr  *trace.Trace
	err error
}

type engineReq struct {
	g     *rng.RNG
	w     trace.Window
	scale float64
	ctx   context.Context
	done  chan engineResult

	// Tracing: tr is the request's trace (nil when untraced), submitted
	// the instant Generate enqueued the request; admitReq turns the gap
	// into the "queue" span.
	tr        *rtrace.Trace
	submitted time.Time
}

// newEngineReq builds a request, picking up the caller's trace from ctx
// (shared by Engine.Generate and ShardedEngine.Generate).
func newEngineReq(ctx context.Context, g *rng.RNG, w trace.Window, scale float64) *engineReq {
	req := &engineReq{g: g, w: w, scale: scale, ctx: ctx, done: make(chan engineResult, 1)}
	if tr := rtrace.FromContext(ctx); tr != nil {
		req.tr = tr
		req.submitted = time.Now()
	}
	return req
}

// traceAdmit records the request's queue wait and hands the trace to
// the admitted stream. Call sites are the schedulers' admitReq, so span
// writes stay on one goroutine per request.
func (r *engineReq) traceAdmit(s *genStream) {
	if r.tr == nil {
		return
	}
	now := time.Now()
	r.tr.Add("queue", r.submitted, now.Sub(r.submitted))
	s.tr = r.tr
	s.admitted = now
}

// Engine is the continuous-batching front door for serving: concurrent
// Generate calls coalesce into one shared fleet, each stream advancing
// through the same batched step GEMMs while keeping its own RNG (so
// every response is byte-identical to the serial path). New requests
// join the running batch between steps; an idle engine waits up to
// Window for more arrivals before stepping a fresh batch.
type Engine struct {
	m        *Model
	window   time.Duration
	maxBatch int
	prec     Precision

	reqs chan *engineReq
	quit chan struct{}
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// NewEngine starts the engine's scheduler goroutine on the bit-exact
// f64 path. window is how long an idle engine waits for more requests
// before stepping (0: step immediately; overlapping requests still
// coalesce); maxBatch caps concurrent streams (0: a default of 64).
// The engine registry selects the f32 fast path via
// EngineSpec.Precision (newEngine).
func NewEngine(m *Model, window time.Duration, maxBatch int) *Engine {
	return newEngine(m, window, maxBatch, PrecisionF64)
}

func newEngine(m *Model, window time.Duration, maxBatch int, prec Precision) *Engine {
	if maxBatch <= 0 {
		maxBatch = defaultMaxStreams
	}
	prec = prec.normalize()
	// Convert and pack the serving weights before the scheduler
	// goroutine (or any engine sharing this model) can race on the
	// caches.
	if prec == PrecisionF32 {
		m.PreparePackedF32()
		m.PrepareF32() // unconditionally: packing is skippable, f32 is not
	} else {
		m.PreparePacked()
	}
	e := &Engine{
		m:        m,
		window:   window,
		maxBatch: maxBatch,
		prec:     prec,
		reqs:     make(chan *engineReq, 4*maxBatch),
		quit:     make(chan struct{}),
	}
	e.wg.Add(1)
	go e.loop()
	return e
}

// Generate decodes one trace through the shared batch, blocking until
// its stream retires. scale multiplies the arrival rate (0 means 1,
// matching Model.RateScale). It is safe for concurrent use; the
// result for a given (g, w, scale) is byte-identical to the serial
// m.Generate with Model.RateScale = scale. On context cancellation
// the stream is aborted at the next fleet step and ctx.Err() is
// returned.
func (e *Engine) Generate(ctx context.Context, g *rng.RNG, w trace.Window, scale float64) (*trace.Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req := newEngineReq(ctx, g, w, scale)
	e.mu.RLock()
	closed := e.closed
	if !closed {
		// Submitting under the read lock orders every send before
		// Close's drain: a request either gets a result or
		// ErrEngineClosed, never silence.
		select {
		case e.reqs <- req:
		case <-ctx.Done():
			e.mu.RUnlock()
			return nil, ctx.Err()
		}
	}
	e.mu.RUnlock()
	if closed {
		return nil, ErrEngineClosed
	}
	res := <-req.done
	return res.tr, res.err
}

// Close stops admitting, finishes the in-flight streams, fails any
// queued requests with ErrEngineClosed, and waits for the scheduler
// to exit.
func (e *Engine) Close() {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		close(e.quit)
	}
	e.wg.Wait()
}

func (e *Engine) isClosed() bool {
	select {
	case <-e.quit:
		return true
	default:
		return false
	}
}

func (e *Engine) admitReq(fe *fleetEngine, r *engineReq) {
	if r.ctx != nil && r.ctx.Err() != nil {
		r.done <- engineResult{err: r.ctx.Err()}
		return
	}
	scale := r.scale
	if scale == 0 {
		scale = 1
	}
	s := e.m.newGenStream(r.g, r.w, scale, r.ctx)
	s.done = r.done
	r.traceAdmit(s)
	fe.admit(s)
}

// waitWindow collects arrivals for up to the configured window after
// the first request lands on an idle engine, so near-simultaneous
// requests share one batch from their very first step.
func (e *Engine) waitWindow(fe *fleetEngine) {
	if e.window <= 0 {
		return
	}
	timer := time.NewTimer(e.window)
	defer timer.Stop()
	for fe.active() < e.maxBatch {
		select {
		case r := <-e.reqs:
			e.admitReq(fe, r)
		case <-timer.C:
			return
		case <-e.quit:
			return
		}
	}
}

// loop is the scheduler: admit whatever has arrived (blocking only
// when idle), run one fleet round, deliver retirements, repeat.
func (e *Engine) loop() {
	defer e.wg.Done()
	fe := newFleetEngine(e.m, e.maxBatch, e.prec)
	for {
		if fe.active() == 0 {
			select {
			case <-e.quit:
				e.drainQueue()
				return
			case r := <-e.reqs:
				e.admitReq(fe, r)
				e.waitWindow(fe)
			}
		} else if !e.isClosed() {
			// Continuous admission: latecomers join between steps.
			admitting := true
			for admitting && fe.active() < e.maxBatch {
				select {
				case r := <-e.reqs:
					e.admitReq(fe, r)
				default:
					admitting = false
				}
			}
		}
		for _, s := range fe.round() {
			s.done <- engineResult{tr: s.out, err: s.err}
		}
	}
}

// drainQueue fails every queued request after shutdown.
func (e *Engine) drainQueue() {
	for {
		select {
		case r := <-e.reqs:
			r.done <- engineResult{err: ErrEngineClosed}
		default:
			return
		}
	}
}
