package core

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/glm"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/trace"
)

// traceBytes serializes a trace for byte-level comparison.
func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testArrivalModel builds an untrained constant-rate arrival model
// (all feature weights zero, intercept = log rate): decode mechanics
// and draw order do not depend on the fitted values.
func testArrivalModel(rate float64) *ArrivalModel {
	m := &ArrivalModel{
		Kind:        BatchArrivals,
		UseDOH:      true,
		HistoryDays: 2,
		DOH:         features.DOHSampler{Mode: features.DOHGeometric, GeomP: 0.5, HistoryDays: 2},
	}
	m.Reg = &glm.PoissonRegression{W: make([]float64, m.featureDim()), Intercept: math.Log(rate)}
	return m
}

// TestGenerateBatchMatchesSerial pins the tentpole determinism claim
// on the trained integration fixture: batched decode at sizes 1, 8 and
// 64 is byte-identical to the serial per-stream path, at 1 worker and
// at 8.
func TestGenerateBatchMatchesSerial(t *testing.T) {
	f := getFixture(t)
	m := f.model
	const maxStreams = 64
	serial := make([][]byte, maxStreams)
	// Serial reference at 1 worker.
	func() {
		defer par.SetProcs(par.SetProcs(1))
		src := rng.New(123)
		for i := 0; i < maxStreams; i++ {
			serial[i] = traceBytes(t, m.Generate(src.Split(), f.testW))
		}
	}()
	for _, procs := range []int{1, 8} {
		for _, size := range []int{1, 8, 64} {
			func() {
				defer par.SetProcs(par.SetProcs(procs))
				src := rng.New(123)
				streams := make([]*rng.RNG, maxStreams)
				for i := range streams {
					streams[i] = src.Split()
				}
				for lo := 0; lo < maxStreams; lo += size {
					hi := min(lo+size, maxStreams)
					out := m.GenerateBatch(streams[lo:hi], f.testW)
					for i, tr := range out {
						if got := traceBytes(t, tr); !bytes.Equal(got, serial[lo+i]) {
							t.Fatalf("procs=%d size=%d stream %d: batched trace differs from serial", procs, size, lo+i)
						}
					}
				}
			}()
		}
	}
}

// TestGenerateBatchUntrained runs the same equivalence on untrained
// tiny models (fast path, no fixture training) including a tilt and a
// max-jobs cap so the override and what-if draw order is covered.
func TestGenerateBatchUntrained(t *testing.T) {
	fm, lm := tinyGenModels()
	arr := testArrivalModel(1.5)
	m := &Model{Arrival: arr, Flavor: fm, Lifetime: lm, MaxJobsPerPeriod: 5,
		Tilt: WhatIf{EOBFactor: 0.8, FlavorFactors: []float64{1.2, 0.9, 1}}}
	w := trace.Window{Start: 0, End: 2 * trace.PeriodsPerDay}
	const n = 9
	serial := make([][]byte, n)
	src := rng.New(5)
	for i := range serial {
		serial[i] = traceBytes(t, m.Generate(src.Split(), w))
	}
	src = rng.New(5)
	gs := make([]*rng.RNG, n)
	for i := range gs {
		gs[i] = src.Split()
	}
	for i, tr := range m.GenerateBatch(gs, w) {
		if !bytes.Equal(traceBytes(t, tr), serial[i]) {
			t.Fatalf("stream %d: batched trace differs from serial", i)
		}
	}
}

// TestEngineConcurrentMatchesSerial fires concurrent Engine.Generate
// calls (more than maxBatch, to exercise queueing and continuous
// admission) and checks every response against its serial decode. Run
// under -race via scripts/check.sh.
func TestEngineConcurrentMatchesSerial(t *testing.T) {
	fm, lm := tinyGenModels()
	m := &Model{Arrival: testArrivalModel(1.5), Flavor: fm, Lifetime: lm}
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	e := NewEngine(m, time.Millisecond, 4)
	defer e.Close()
	const n = 16
	var wg sync.WaitGroup
	got := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := e.Generate(context.Background(), rng.New(int64(100+i)), w, 0)
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			_ = tr.WriteJSON(&buf)
			got[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want := traceBytes(t, m.Generate(rng.New(int64(100+i)), w))
		if !bytes.Equal(got[i], want) {
			t.Fatalf("request %d: coalesced trace differs from serial", i)
		}
	}
}

// TestEngineScale checks the per-request scale knob matches the serial
// RateScale semantics (0 means 1).
func TestEngineScale(t *testing.T) {
	fm, lm := tinyGenModels()
	m := &Model{Arrival: testArrivalModel(1.5), Flavor: fm, Lifetime: lm}
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	e := NewEngine(m, 0, 8)
	defer e.Close()
	tr, err := e.Generate(context.Background(), rng.New(42), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	ms := *m
	ms.RateScale = 3
	if !bytes.Equal(traceBytes(t, tr), traceBytes(t, ms.Generate(rng.New(42), w))) {
		t.Fatal("scaled engine trace differs from serial RateScale path")
	}
}

// TestEngineCancellation submits a request with an already-cancelled
// context plus one cancelled mid-flight; both must return ctx errors
// while other streams complete normally.
func TestEngineCancellation(t *testing.T) {
	fm, lm := tinyGenModels()
	m := &Model{Arrival: testArrivalModel(1.5), Flavor: fm, Lifetime: lm}
	w := trace.Window{Start: 0, End: 4 * trace.PeriodsPerDay}
	e := NewEngine(m, 0, 4)
	defer e.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Generate(dead, rng.New(1), w, 0); err != context.Canceled {
		t.Fatalf("pre-cancelled request: err = %v, want context.Canceled", err)
	}

	midCtx, midCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var midErr error
	var okTr *trace.Trace
	var okErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, midErr = e.Generate(midCtx, rng.New(2), w, 0)
	}()
	go func() {
		defer wg.Done()
		okTr, okErr = e.Generate(context.Background(), rng.New(3), w, 0)
	}()
	time.Sleep(2 * time.Millisecond) // let both streams admit
	midCancel()
	wg.Wait()
	if midErr != context.Canceled {
		t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", midErr)
	}
	if okErr != nil {
		t.Fatalf("unaffected stream: %v", okErr)
	}
	if !bytes.Equal(traceBytes(t, okTr), traceBytes(t, m.Generate(rng.New(3), w))) {
		t.Fatal("stream sharing a batch with a cancelled one diverged from serial")
	}
}

// TestEngineClose checks queued and post-Close requests fail with
// ErrEngineClosed and Close is idempotent.
func TestEngineClose(t *testing.T) {
	fm, lm := tinyGenModels()
	m := &Model{Arrival: testArrivalModel(1.5), Flavor: fm, Lifetime: lm}
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	e := NewEngine(m, 0, 2)
	if _, err := e.Generate(context.Background(), rng.New(1), w, 0); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Generate(context.Background(), rng.New(2), w, 0); err != ErrEngineClosed {
		t.Fatalf("post-close: err = %v, want ErrEngineClosed", err)
	}
}

// TestFleetEngineSteadyStateAllocs pins the per-round allocation
// behavior of a warm fleet round: only the trace VM append and the
// unavoidable per-stream result growth may allocate, so a round over
// warmed streams with preallocated outputs must stay at zero.
func TestFleetEngineSteadyStateAllocs(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	fm, lm := tinyGenModels()
	m := &Model{Arrival: testArrivalModel(1.5), Flavor: fm, Lifetime: lm}
	w := trace.Window{Start: 0, End: 400 * trace.PeriodsPerDay} // long-lived streams
	e := newFleetEngine(m, 8, PrecisionF64)
	src := rng.New(77)
	for i := 0; i < 8; i++ {
		s := m.newGenStream(src.Split(), w, 1, nil)
		if s.phase == phaseDone {
			t.Fatal("stream finished before admission; widen the window")
		}
		// Pre-grow the per-stream buffers so steady-state appends don't
		// reallocate under AllocsPerRun.
		s.out.VMs = make([]trace.VM, 0, 1<<20)
		s.spans = make([]genSpan, 0, 4096)
		s.flavors = make([]int, 0, 4096)
		e.admit(s)
	}
	for i := 0; i < 50; i++ { // warm scratch and pools
		e.round()
	}
	if e.active() != 8 {
		t.Skip("streams retired during warmup; window too short for alloc pin")
	}
	if allocs := testing.AllocsPerRun(100, func() { e.round() }); allocs != 0 {
		t.Fatalf("warm fleet round allocates %v times, want 0", allocs)
	}
}
