package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TrainConfig holds the LSTM training hyperparameters shared by the
// flavor and lifetime models (§4.2 of the paper; the defaults here are
// the scaled-down laptop configuration, with the paper's 2×200 network
// available by overriding Hidden).
type TrainConfig struct {
	Hidden      int // hidden units per layer (paper: 200)
	Layers      int // LSTM layers (paper: 2)
	SeqLen      int // training sequence length (paper: 5000)
	BatchSize   int // sequences per minibatch (paper: 50)
	Epochs      int
	LR          float64
	WeightDecay float64
	ClipNorm    float64
	Seed        int64
	// Progress, if non-nil, receives the mean per-step loss after each
	// epoch.
	Progress func(epoch int, loss float64)
	// Obs, if non-nil, receives a structured obs.EpochEvent after each
	// epoch from every training loop sharing this config (flavor
	// LSTM/GRU, lifetime hazard/PMF, joint; the Transformer and arrival
	// GLM carry the hook on their own option structs) — the uniform
	// telemetry hook (DESIGN.md §7). Strictly observational: enabling it
	// cannot change trained weights or generated traces.
	Obs obs.EpochSink
	// Dev, if non-nil, enables development-set model selection (§4.2:
	// hyperparameters and stopping are tuned on the development window):
	// every DevEvery epochs the teacher-forced dev loss is computed and
	// the best-scoring weights are restored at the end of training.
	Dev       *trace.Trace
	DevOffset int // absolute period of the dev window start
	DevEvery  int // default 5
	// Checkpoint, if non-nil with a directory, enables crash-safe
	// epoch-boundary checkpoints and resume for every loop sharing this
	// config (DESIGN.md §8). Like Obs, it is trajectory-neutral: a run
	// with checkpointing enabled (or resumed from one) produces byte-
	// identical weights and traces to an uninterrupted run without it.
	Checkpoint *CheckpointSpec
}

// withDefaults fills zero fields with the scaled-down defaults.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.Hidden == 0 {
		c.Hidden = 48
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.SeqLen == 0 {
		c.SeqLen = 96
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.DevEvery == 0 {
		c.DevEvery = 5
	}
	return c
}

// stepLR implements the step learning-rate schedule: the base rate for
// the first 60% of epochs, half for the next 25%, and a quarter for the
// remainder. The late-phase decay settles the calibration of the
// high-frequency tokens (EOB in particular) that free-running
// generation is sensitive to.
func (c TrainConfig) stepLR(epoch int) float64 {
	switch {
	case epoch >= c.Epochs*17/20:
		return c.LR / 4
	case epoch >= c.Epochs*3/5:
		return c.LR / 2
	default:
		return c.LR
	}
}

// FlavorModel is the stage-2 LSTM over flavor sequences (§2.2). Its
// vocabulary is the K flavors plus the end-of-batch token.
type FlavorModel struct {
	Net         *nn.LSTM
	K           int // number of flavors (EOB token index = K)
	Temporal    features.Temporal
	HistoryDays int

	// statePool recycles decoding states across Generate calls (and
	// concurrent server requests), so steady-state generation performs
	// no per-call state allocation. Guarded by the pool itself;
	// FlavorModel must be shared by pointer once generation starts.
	statePool sync.Pool
}

// flavorInputDim returns the input feature dimensionality: previous
// token one-hot plus temporal features.
func flavorInputDim(k int, temporal features.Temporal) int {
	return (k + 1) + temporal.Dim()
}

// encodeFlavorInput writes the step input: one-hot of the previous token
// and the temporal features of the current period.
func (m *FlavorModel) encodeFlavorInput(dst []float64, prevToken, period, dohDay int) {
	features.OneHot(dst[:m.K+1], prevToken)
	m.Temporal.Encode(dst[m.K+1:], period, dohDay)
}

// TrainFlavor trains the flavor LSTM on the training trace by teacher
// forcing over the serialized token stream, minimizing softmax
// cross-entropy (§2.2.1).
func TrainFlavor(tr *trace.Trace, cfg TrainConfig) *FlavorModel {
	cfg = cfg.withDefaults()
	k := tr.Flavors.K()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &FlavorModel{
		K:           k,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		HistoryDays: historyDays,
	}
	toks := FlavorTokens(tr)
	inDim := flavorInputDim(k, m.Temporal)
	g := rng.New(cfg.Seed)
	m.Net = nn.NewLSTM(nn.Config{
		InputDim:  inDim,
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: k + 1,
	}, g)
	if len(toks) == 0 {
		return m
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	plan := newSegmentPlan(len(toks), cfg.SeqLen, cfg.BatchSize)
	eob := EOBToken(k)
	var devToks []FlavorToken
	if cfg.Dev != nil {
		devToks = FlavorTokens(cfg.Dev)
	}
	bestDev := math.Inf(1)
	var bestSnap []byte
	checkDev := func() (float64, bool) {
		if len(devToks) == 0 {
			return 0, false
		}
		ev := EvaluateFlavor(NewLSTMFlavorPredictor(m), devToks, cfg.DevOffset)
		if ev.NLL < bestDev {
			bestDev = ev.NLL
			if snap, err := m.Net.MarshalBinary(); err == nil {
				bestSnap = snap
			}
		}
		return ev.NLL, true
	}
	// Resume must precede the sharded view: UnmarshalBinary swaps the
	// net's parameter storage, and the shards capture references to it.
	ck := newTrainCheckpointer(cfg.Checkpoint, "flavor-lstm",
		cfg.fingerprint(ObsFlavorLSTM, len(toks), k, historyDays))
	startEpoch := 0
	if w, ok := ck.resume(cfg.Checkpoint, m.Net, opt, m.Net.Params); ok {
		if w.Done {
			return m
		}
		startEpoch = w.EpochsDone
		bestDev, bestSnap = w.BestDev, w.BestSnap
	}
	sharded := nn.NewShardedLSTM(m.Net, plan.batch)
	// Window buffers are allocated once and reused across every window
	// and epoch: per-step inputs, targets and validity masks, plus one
	// full-batch gradient slab per step with persistent per-shard row
	// views handed to the sharded backward pass. Each window rewrites
	// them completely (inputs are zeroed first, exactly like the fresh
	// matrices they replace), so training results are unchanged.
	maxWl := 0
	for w := 0; w < plan.windows; w++ {
		if wl := plan.windowLen(w); wl > maxWl {
			maxWl = wl
		}
	}
	xs := make([]*mat.Dense, maxWl)
	targets := make([][]int, maxWl)
	valids := make([][]bool, maxWl)
	dysFull := make([]*mat.Dense, maxWl)
	for s := 0; s < maxWl; s++ {
		xs[s] = mat.NewDense(plan.batch, inDim)
		targets[s] = make([]int, plan.batch)
		valids[s] = make([]bool, plan.batch)
		dysFull[s] = mat.NewDense(plan.batch, k+1)
	}
	shardDys := make([][]*mat.Dense, nn.NumShards(plan.batch))
	for si := range shardDys {
		lo := si * nn.ShardRows
		hi := min(lo+nn.ShardRows, plan.batch)
		shardDys[si] = make([]*mat.Dense, maxWl)
		for s := 0; s < maxWl; s++ {
			shardDys[si][s] = dysFull[s].SliceRows(lo, hi)
		}
	}
	ec := newEpochClock(ObsFlavorLSTM, cfg.Progress, cfg.Obs, cfg.Epochs)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.stepLR(epoch)
		var totalLoss float64
		var totalSteps int
		// Stateful truncated BPTT: each window continues the B parallel
		// segments from the previous window's final state, so the state
		// distribution matches long free-running generation.
		st := m.Net.NewState(plan.batch)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			var batchSteps int
			for s := 0; s < wl; s++ {
				x := xs[s]
				x.Zero()
				tg := targets[s]
				vd := valids[s]
				clear(tg)
				clear(vd)
				for row := 0; row < plan.batch; row++ {
					t, ok := plan.step(row, w, s)
					if !ok {
						continue
					}
					prev := eob
					if t > 0 {
						prev = toks[t-1].Token
					}
					day := trace.DayOfHistory(toks[t].Period)
					m.encodeFlavorInput(x.Row(row), prev, toks[t].Period, day)
					tg[row] = toks[t].Token
					vd[row] = true
					batchSteps++
				}
			}
			// Normalize gradients by the number of contributing steps so
			// the learning rate is scale-free. The count is known before
			// the forward pass, so each shard scales its own gradients
			// and no cross-shard barrier is needed between loss and BPTT.
			var norm float64
			if batchSteps > 0 {
				norm = 1 / float64(batchSteps)
			}
			loss, steps := sharded.RunWindow(xs[:wl], st, func(lo, hi int, ys []*mat.Dense) ([]*mat.Dense, float64, int) {
				// Shards write disjoint row ranges of the shared slabs.
				dys := shardDys[lo/nn.ShardRows][:len(ys)]
				var shardLoss float64
				var shardN int
				for s, y := range ys {
					l, n := nn.SoftmaxCEInto(y, targets[s][lo:hi], valids[s][lo:hi], dys[s])
					shardLoss += l
					shardN += n
				}
				if batchSteps == 0 {
					return nil, shardLoss, shardN
				}
				for _, d := range dys {
					mat.Scale(norm, d.Data)
				}
				return dys, shardLoss, shardN
			})
			totalLoss += loss
			totalSteps += steps
			if batchSteps == 0 {
				continue
			}
			opt.Step(m.Net.Params())
		}
		var devLoss float64
		var hasDev bool
		if (epoch+1)%cfg.DevEvery == 0 || epoch == cfg.Epochs-1 {
			devLoss, hasDev = checkDev()
		}
		var mean float64
		if totalSteps > 0 {
			mean = totalLoss / float64(totalSteps)
		}
		ec.emit(epoch, mean, totalSteps, opt, devLoss, hasDev)
		ck.save(epoch+1, false, m.Net, opt, m.Net.Params(), bestDev, bestSnap, g.State())
	}
	if bestSnap != nil {
		if err := m.Net.UnmarshalBinary(bestSnap); err != nil {
			panic(fmt.Sprintf("core: restore best flavor snapshot: %v", err))
		}
	}
	ck.save(cfg.Epochs, true, m.Net, opt, m.Net.Params(), bestDev, bestSnap, g.State())
	return m
}

// flavorState is the streaming decoder state for generation and
// teacher-forced evaluation.
type flavorState struct {
	m     *FlavorModel
	st    *nn.State
	prev  int
	input []float64
	out   []float64 // probs result buffer, overwritten each step
}

// newFlavorState returns a fresh decoding state (previous token = EOB).
func (m *FlavorModel) newFlavorState() *flavorState {
	return &flavorState{
		m:     m,
		st:    m.Net.NewState(1),
		prev:  EOBToken(m.K),
		input: make([]float64, flavorInputDim(m.K, m.Temporal)),
		out:   make([]float64, m.K+1),
	}
}

// acquireFlavorState returns a pooled decoding state reset to the
// fresh-state condition. Pair with releaseFlavorState so generation
// stops allocating LSTM state per call once the pool is warm.
func (m *FlavorModel) acquireFlavorState() *flavorState {
	if s, ok := m.statePool.Get().(*flavorState); ok {
		s.reset()
		return s
	}
	return m.newFlavorState()
}

// releaseFlavorState recycles a state obtained from acquireFlavorState.
// The caller must not use s afterwards.
func (m *FlavorModel) releaseFlavorState(s *flavorState) { m.statePool.Put(s) }

// reset restores the fresh-state condition: zero LSTM state, previous
// token = EOB.
func (s *flavorState) reset() {
	s.st.Zero()
	s.prev = EOBToken(s.m.K)
}

// probs advances the LSTM one step and returns the distribution over the
// next token given the current period and DOH day. The returned slice is
// the state's reusable buffer: it is overwritten by the next probs call,
// and callers may mutate it in place (the what-if tilt does).
func (s *flavorState) probs(period, dohDay int) []float64 {
	s.m.encodeFlavorInput(s.input, s.prev, period, dohDay)
	logits := s.m.Net.StepForward(s.input, s.st)
	nn.SoftmaxInto(logits, s.out)
	return s.out
}

// observe records the realized token (teacher forcing / sampling).
func (s *flavorState) observe(token int) { s.prev = token }

// Perplexity is a convenience: exp of mean NLL.
func Perplexity(nll float64) float64 { return math.Exp(nll) }
