package core

import (
	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/trace"
)

// GRUFlavorModel is the stage-2 model with a GRU instead of an LSTM —
// the third arm of the §7 architecture ablation. Training mirrors
// TrainFlavor (stateful truncated BPTT, step LR schedule).
type GRUFlavorModel struct {
	Net         *nn.GRU
	K           int
	Temporal    features.Temporal
	HistoryDays int
}

// TrainFlavorGRU trains the GRU flavor model with the same
// hyperparameter set as the LSTM.
func TrainFlavorGRU(tr *trace.Trace, cfg TrainConfig) *GRUFlavorModel {
	cfg = cfg.withDefaults()
	k := tr.Flavors.K()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &GRUFlavorModel{
		K:           k,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		HistoryDays: historyDays,
	}
	toks := FlavorTokens(tr)
	inDim := flavorInputDim(k, m.Temporal)
	g := rng.New(cfg.Seed + 40)
	m.Net = nn.NewGRU(nn.Config{
		InputDim:  inDim,
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: k + 1,
	}, g)
	if len(toks) == 0 {
		return m
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	plan := newSegmentPlan(len(toks), cfg.SeqLen, cfg.BatchSize)
	eob := EOBToken(k)
	// Resume before the sharded view (see TrainFlavor).
	ck := newTrainCheckpointer(cfg.Checkpoint, "flavor-gru",
		cfg.fingerprint(ObsFlavorGRU, len(toks), k, historyDays))
	startEpoch := 0
	if w, ok := ck.resume(cfg.Checkpoint, m.Net, opt, m.Net.Params); ok {
		if w.Done {
			return m
		}
		startEpoch = w.EpochsDone
	}
	sharded := nn.NewShardedGRU(m.Net, plan.batch)
	ec := newEpochClock(ObsFlavorGRU, cfg.Progress, cfg.Obs, cfg.Epochs)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.stepLR(epoch)
		var totalLoss float64
		var totalSteps int
		st := m.Net.NewState(plan.batch)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			xs := make([]*mat.Dense, wl)
			targets := make([][]int, wl)
			valids := make([][]bool, wl)
			var batchSteps int
			for s := 0; s < wl; s++ {
				x := mat.NewDense(plan.batch, inDim)
				tg := make([]int, plan.batch)
				vd := make([]bool, plan.batch)
				for row := 0; row < plan.batch; row++ {
					t, ok := plan.step(row, w, s)
					if !ok {
						continue
					}
					prev := eob
					if t > 0 {
						prev = toks[t-1].Token
					}
					day := trace.DayOfHistory(toks[t].Period)
					encodeFlavorInputInto(x.Row(row), k, m.Temporal, prev, toks[t].Period, day)
					tg[row] = toks[t].Token
					vd[row] = true
					batchSteps++
				}
				xs[s] = x
				targets[s] = tg
				valids[s] = vd
			}
			var norm float64
			if batchSteps > 0 {
				norm = 1 / float64(batchSteps)
			}
			loss, steps := sharded.RunWindow(xs, st, func(lo, hi int, ys []*mat.Dense) ([]*mat.Dense, float64, int) {
				dys := make([]*mat.Dense, len(ys))
				var shardLoss float64
				var shardN int
				for s, y := range ys {
					l, d, n := nn.SoftmaxCE(y, targets[s][lo:hi], valids[s][lo:hi])
					shardLoss += l
					shardN += n
					dys[s] = d
				}
				if batchSteps == 0 {
					return nil, shardLoss, shardN
				}
				for _, d := range dys {
					mat.Scale(norm, d.Data)
				}
				return dys, shardLoss, shardN
			})
			totalLoss += loss
			totalSteps += steps
			if batchSteps == 0 {
				continue
			}
			opt.Step(m.Net.Params())
		}
		var mean float64
		if totalSteps > 0 {
			mean = totalLoss / float64(totalSteps)
		}
		ec.emit(epoch, mean, totalSteps, opt, 0, false)
		ck.save(epoch+1, false, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	}
	ck.save(cfg.Epochs, true, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	return m
}

// GRUFlavorPredictor adapts the GRU model to the FlavorPredictor
// interface.
type GRUFlavorPredictor struct {
	m     *GRUFlavorModel
	st    *nn.GRUState
	prev  int
	input []float64
	out   []float64 // probs buffer, overwritten each step
}

// NewGRUFlavorPredictor wraps m.
func NewGRUFlavorPredictor(m *GRUFlavorModel) *GRUFlavorPredictor {
	p := &GRUFlavorPredictor{m: m}
	p.Reset()
	return p
}

// Name implements FlavorPredictor.
func (p *GRUFlavorPredictor) Name() string { return "GRU" }

// Reset implements FlavorPredictor.
func (p *GRUFlavorPredictor) Reset() {
	p.st = p.m.Net.NewState(1)
	p.prev = EOBToken(p.m.K)
	p.input = make([]float64, flavorInputDim(p.m.K, p.m.Temporal))
	p.out = make([]float64, p.m.K+1)
}

// Probs implements FlavorPredictor. The result is the predictor's
// reusable buffer, overwritten by the next call.
func (p *GRUFlavorPredictor) Probs(absPeriod int) []float64 {
	encodeFlavorInputInto(p.input, p.m.K, p.m.Temporal, p.prev, absPeriod, trace.DayOfHistory(absPeriod))
	nn.SoftmaxInto(p.m.Net.StepForward(p.input, p.st), p.out)
	return p.out
}

// Predict implements FlavorPredictor (see LSTM wrapper caveat).
func (p *GRUFlavorPredictor) Predict(absPeriod int) int { return argmax(p.Probs(absPeriod)) }

// Observe implements FlavorPredictor.
func (p *GRUFlavorPredictor) Observe(token int) { p.prev = token }
