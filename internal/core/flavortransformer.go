package core

import (
	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TransformerTrainConfig sizes and trains the Transformer flavor model
// (the §7 architecture ablation: "Transformers ... could be used in
// place of the LSTMs").
type TransformerTrainConfig struct {
	ModelDim int // default 32
	Heads    int // default 2
	FFDim    int // default 4*ModelDim
	Layers   int // default 2
	MaxLen   int // context window, default 64
	Epochs   int // default 15
	LR       float64
	ClipNorm float64
	Seed     int64
	// Progress mirrors TrainConfig.Progress: mean per-step loss after
	// each epoch.
	Progress func(epoch int, loss float64)
	// Obs mirrors TrainConfig.Obs: the uniform per-epoch telemetry sink
	// (model name "flavor_transformer").
	Obs obs.EpochSink
	// Checkpoint mirrors TrainConfig.Checkpoint (DESIGN.md §8).
	Checkpoint *CheckpointSpec
}

func (c TransformerTrainConfig) withDefaults() TransformerTrainConfig {
	if c.ModelDim == 0 {
		c.ModelDim = 32
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.FFDim == 0 {
		c.FFDim = 4 * c.ModelDim
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.MaxLen == 0 {
		c.MaxLen = 64
	}
	if c.Epochs == 0 {
		c.Epochs = 15
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// TransformerFlavorModel is the stage-2 model with a causal Transformer
// instead of an LSTM. Same inputs (previous token one-hot + temporal
// features) and output vocabulary (K flavors + EOB).
type TransformerFlavorModel struct {
	Net         *nn.Transformer
	K           int
	Temporal    features.Temporal
	HistoryDays int
}

// TrainFlavorTransformer trains the Transformer flavor model by teacher
// forcing over MaxLen-sized windows of the token stream.
func TrainFlavorTransformer(tr *trace.Trace, cfg TransformerTrainConfig) *TransformerFlavorModel {
	cfg = cfg.withDefaults()
	k := tr.Flavors.K()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &TransformerFlavorModel{
		K:           k,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		HistoryDays: historyDays,
	}
	inDim := flavorInputDim(k, m.Temporal)
	g := rng.New(cfg.Seed + 30)
	m.Net = nn.NewTransformer(nn.TransformerConfig{
		InputDim:  inDim,
		ModelDim:  cfg.ModelDim,
		Heads:     cfg.Heads,
		FFDim:     cfg.FFDim,
		Layers:    cfg.Layers,
		OutputDim: k + 1,
		MaxLen:    cfg.MaxLen,
	}, g)
	toks := FlavorTokens(tr)
	if len(toks) == 0 {
		return m
	}
	opt := nn.NewAdam(cfg.LR)
	opt.ClipNorm = cfg.ClipNorm
	eob := EOBToken(k)
	ck := newTrainCheckpointer(cfg.Checkpoint, "flavor-transformer",
		cfg.fingerprint(len(toks), k, historyDays))
	startEpoch := 0
	if w, ok := ck.resume(cfg.Checkpoint, m.Net, opt, m.Net.Params); ok {
		if w.Done {
			return m
		}
		startEpoch = w.EpochsDone
	}
	ec := newEpochClock(ObsFlavorTransformer, cfg.Progress, cfg.Obs, cfg.Epochs)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		var totalLoss float64
		var totalSteps int
		for start := 0; start < len(toks); start += cfg.MaxLen {
			end := start + cfg.MaxLen
			if end > len(toks) {
				end = len(toks)
			}
			T := end - start
			x := mat.NewDense(T, inDim)
			targets := make([]int, T)
			for s := 0; s < T; s++ {
				t := start + s
				prev := eob
				if t > 0 {
					prev = toks[t-1].Token
				}
				day := trace.DayOfHistory(toks[t].Period)
				encodeFlavorInputInto(x.Row(s), k, m.Temporal, prev, toks[t].Period, day)
				targets[s] = toks[t].Token
			}
			m.Net.ZeroGrads()
			out, cache := m.Net.Forward(x)
			l, d, n := nn.SoftmaxCE(out, targets, nil)
			if n == 0 {
				continue
			}
			totalLoss += l
			totalSteps += n
			mat.Scale(1/float64(n), d.Data)
			m.Net.Backward(cache, d)
			opt.Step(m.Net.Params())
		}
		var mean float64
		if totalSteps > 0 {
			mean = totalLoss / float64(totalSteps)
		}
		ec.emit(epoch, mean, totalSteps, opt, 0, false)
		ck.save(epoch+1, false, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	}
	ck.save(cfg.Epochs, true, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	return m
}

// encodeFlavorInputInto is the shared flavor-step encoding without a
// FlavorModel receiver.
func encodeFlavorInputInto(dst []float64, k int, temporal features.Temporal, prevToken, period, dohDay int) {
	features.OneHot(dst[:k+1], prevToken)
	temporal.Encode(dst[k+1:], period, dohDay)
}

// TransformerFlavorPredictor adapts the model to the FlavorPredictor
// interface for Table 2-style evaluation. It decodes with a sliding
// MaxLen context window.
type TransformerFlavorPredictor struct {
	m      *TransformerFlavorModel
	window *nn.TWindow
	prev   int
	input  []float64
	out    []float64 // probs buffer, overwritten each step
}

// NewTransformerFlavorPredictor wraps m.
func NewTransformerFlavorPredictor(m *TransformerFlavorModel) *TransformerFlavorPredictor {
	p := &TransformerFlavorPredictor{m: m}
	p.Reset()
	return p
}

// Name implements FlavorPredictor.
func (p *TransformerFlavorPredictor) Name() string { return "Transformer" }

// Reset implements FlavorPredictor.
func (p *TransformerFlavorPredictor) Reset() {
	p.window = p.m.Net.NewWindow()
	p.prev = EOBToken(p.m.K)
	p.input = make([]float64, flavorInputDim(p.m.K, p.m.Temporal))
	p.out = make([]float64, p.m.K+1)
}

// Probs implements FlavorPredictor. The result is the predictor's
// reusable buffer, overwritten by the next call.
func (p *TransformerFlavorPredictor) Probs(absPeriod int) []float64 {
	encodeFlavorInputInto(p.input, p.m.K, p.m.Temporal, p.prev, absPeriod, trace.DayOfHistory(absPeriod))
	nn.SoftmaxInto(p.window.Append(p.input), p.out)
	return p.out
}

// Predict implements FlavorPredictor. As with the LSTM wrapper, use
// Probs via EvaluateFlavor; Predict would advance the window twice.
func (p *TransformerFlavorPredictor) Predict(absPeriod int) int {
	return argmax(p.Probs(absPeriod))
}

// Observe implements FlavorPredictor.
func (p *TransformerFlavorPredictor) Observe(token int) { p.prev = token }
