package core

import (
	"testing"
)

// FuzzSnapshotDecode drives arbitrary bytes through Model.UnmarshalBinary
// — the path that loads untrusted snapshot files in cmd/traced. The
// invariant under fuzz: corrupt input yields an error, never a panic,
// and anything that does decode must re-marshal cleanly (i.e. the
// validator admits only self-consistent models). Seed corpus lives in
// testdata/fuzz/FuzzSnapshotDecode plus the programmatic seeds below.
func FuzzSnapshotDecode(f *testing.F) {
	blob, err := tinyModel(f).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:0])
	f.Add([]byte("definitely not gob"))
	// A flipped byte in the middle of the gob stream.
	flipped := append([]byte{}, blob...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Model
		if err := m.UnmarshalBinary(data); err != nil {
			return // rejected cleanly: exactly what hardening promises
		}
		if _, err := m.MarshalBinary(); err != nil {
			t.Fatalf("decoded snapshot does not re-marshal: %v", err)
		}
	})
}
