package core

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/trace"
)

// Generator produces synthetic traces for a future window. The window is
// expressed in absolute periods of the original history so temporal
// features stay phase-aligned; the returned trace is re-based to period
// 0 with Periods = w.Periods().
type Generator interface {
	Name() string
	Generate(g *rng.RNG, w trace.Window) *trace.Trace
}

// Model is the paper's full three-stage generative model (§2.4).
type Model struct {
	Arrival  *ArrivalModel
	Flavor   *FlavorModel
	Lifetime *LifetimeModel
	Interp   survival.Interpolation
	// RateScale multiplies the sampled arrival rate (the single-knob 10×
	// stress-test of §6.2 and footnote 5). Zero means 1.
	RateScale float64
	// Tilt optionally post-processes the flavor LSTM's output
	// probabilities before sampling (the footnote-5 what-if knobs).
	Tilt WhatIf
	// MaxJobsPerPeriod caps runaway flavor sequences; once hit, EOB
	// tokens are forced. Zero means 2000.
	MaxJobsPerPeriod int

	// f32 caches the float32 weight conversion built by PrepareF32.
	// Shallow Model copies (the serial engine copies the Model by value
	// to override RateScale) share the conversion through this pointer,
	// so PrepareF32 on the original covers every copy.
	f32 *ModelF32

	// packed and packed32 cache the panel-packed serving weights built
	// by PreparePacked/PreparePackedF32 (pack.go), shared across shallow
	// copies the same way.
	packed   *ModelPacked
	packed32 *ModelPacked32
}

// ModelOptions bundles the knobs for training the full model.
type ModelOptions struct {
	Bins    survival.Bins
	Train   TrainConfig
	Arrival ArrivalOptions
}

// TrainModel trains all three stages on the training trace (§2). The
// default arrival options follow the paper: batch arrivals with DOH
// features and geometric DOH sampling (success probability 1/7).
func TrainModel(tr *trace.Trace, opt ModelOptions) (*Model, error) {
	if opt.Bins.J() <= 0 {
		opt.Bins = survival.PaperBins()
	}
	arrOpt := opt.Arrival
	arrOpt.Kind = BatchArrivals
	if arrOpt.Obs == nil {
		// One telemetry sink covers all three stages.
		arrOpt.Obs = opt.Train.Obs
	}
	if arrOpt.DOH.Mode == features.DOHGeometric || arrOpt.DOH.GeomP == 0 {
		arrOpt.DOH.GeomP = 1.0 / 7.0
	}
	arrOpt.DOH.Mode = features.DOHGeometric
	arrOpt.UseDOH = true
	arrival, err := TrainArrival(tr, arrOpt)
	if err != nil {
		return nil, fmt.Errorf("core: train model: %w", err)
	}
	flavor := TrainFlavor(tr, opt.Train)
	lifetime := TrainLifetime(tr, opt.Bins, opt.Train)
	return &Model{
		Arrival:  arrival,
		Flavor:   flavor,
		Lifetime: lifetime,
		Interp:   survival.CDI,
	}, nil
}

// Name implements Generator.
func (m *Model) Name() string { return "LSTM" }

func (m *Model) rateScale() float64 {
	if m.RateScale == 0 {
		return 1
	}
	return m.RateScale
}

func (m *Model) maxJobs() int {
	if m.MaxJobsPerPeriod == 0 {
		return 2000
	}
	return m.MaxJobsPerPeriod
}

// Generate runs the three-stage process (§2.4) for every period of the
// window: sample the number of batches, decode flavors until that many
// EOB tokens, then run the lifetime LSTM over the generated jobs,
// re-encoding each sampled output as the next step's input. LSTM state
// carries across periods so momentum persists, as in training on long
// sequences (§4.2). One DOH day is sampled per generated day and shared
// by all three stages for coherence.
//
// Generate only mutates its own decoding state and draws only from g,
// so concurrent calls with distinct RNGs are safe; the experiment layer
// exploits this by fanning Monte-Carlo samples out over pre-split
// streams (one g.Split() per sample, split serially in sample order),
// which reproduces a serial sweep exactly at any worker count.
func (m *Model) Generate(g *rng.RNG, w trace.Window) *trace.Trace {
	out := &trace.Trace{Flavors: &trace.FlavorSet{Defs: m.flavorDefs()}, Periods: w.Periods()}
	fs := m.Flavor.acquireFlavorState()
	defer m.Flavor.releaseFlavorState(fs)
	ls := m.Lifetime.acquireLifetimeState()
	defer m.Lifetime.releaseLifetimeState(ls)
	eob := EOBToken(m.Flavor.K)
	nextUser := 0
	id := 0
	dohDay := m.Arrival.DOH.Sample(g)
	curDay := -1
	// Decoded batches are spans over one shared flavor buffer; both are
	// reused across periods so steady-state decoding allocates nothing
	// per batch or per job.
	type batchSpan struct {
		user, lo, hi int
	}
	var spans []batchSpan
	var flavors []int
	arrF := make([]float64, m.Arrival.featureDim())
	for p := w.Start; p < w.End; p++ {
		if d := trace.DayOfHistory(p); d != curDay {
			curDay = d
			dohDay = m.Arrival.DOH.Sample(g)
		}
		nBatches := g.Poisson(m.Arrival.RateInto(arrF, p, dohDay) * m.rateScale())
		if nBatches == 0 {
			continue
		}
		// Stage 2: decode flavors until nBatches EOB tokens.
		spans = spans[:0]
		flavors = flavors[:0]
		curUser, curLo := nextUser, 0
		nextUser++
		jobs, eobCount := 0, 0
		for eobCount < nBatches {
			probs := fs.probs(p, dohDay)
			if !m.Tilt.isZero() {
				m.Tilt.apply(probs, m.Flavor.K)
			}
			tok := g.Categorical(probs)
			if jobs >= m.maxJobs() {
				tok = eob
			}
			fs.observe(tok)
			if tok != eob {
				flavors = append(flavors, tok)
				jobs++
				continue
			}
			eobCount++
			// An EOB with no preceding jobs yields an empty batch, which
			// is not representable in the trace; it still counts toward
			// the period's batch total so generation terminates.
			if len(flavors) > curLo {
				spans = append(spans, batchSpan{user: curUser, lo: curLo, hi: len(flavors)})
			}
			curUser, curLo = nextUser, len(flavors)
			nextUser++
		}
		// Stage 3: lifetimes for the period's jobs, in order.
		for _, b := range spans {
			size := b.hi - b.lo
			for _, fl := range flavors[b.lo:b.hi] {
				step := LifetimeStep{
					Period:    p,
					Flavor:    fl,
					BatchSize: size,
				}
				hz := ls.hazard(step, dohDay)
				bin := survival.SampleBin(hz, g)
				ls.observe(bin, false)
				var dur float64
				if m.Interp == survival.Stepped {
					dur = m.Lifetime.Bins.Hi(bin)
				} else {
					dur = g.Uniform(m.Lifetime.Bins.Lo(bin), m.Lifetime.Bins.Hi(bin))
				}
				out.VMs = append(out.VMs, trace.VM{
					ID:       id,
					User:     b.user,
					Flavor:   fl,
					Start:    p - w.Start,
					Duration: dur,
				})
				id++
			}
		}
	}
	return out
}

func (m *Model) flavorDefs() []trace.FlavorDef {
	// The model does not carry resource definitions; generators are
	// always paired with the original catalog by the caller. Return
	// placeholder defs sized to K so the trace validates.
	defs := make([]trace.FlavorDef, m.Flavor.K)
	for i := range defs {
		defs[i] = trace.FlavorDef{Name: fmt.Sprintf("f%d", i), CPU: 1, MemGB: 1}
	}
	return defs
}

// WithCatalog returns a copy of tr that uses the given flavor catalog
// (replacing placeholder defs emitted by generators).
func WithCatalog(tr *trace.Trace, fs *trace.FlavorSet) *trace.Trace {
	out := *tr
	out.Flavors = fs
	return &out
}

// NaiveGenerator is the traditional baseline (§6): independent VM
// arrivals from a Poisson regression, i.i.d. flavors from the training
// multinomial, i.i.d. lifetimes from the per-flavor Kaplan-Meier.
type NaiveGenerator struct {
	Arrival   *ArrivalModel // VM-level counts, no DOH by default
	Flavors   *trace.FlavorSet
	flavorW   *rng.Alias
	lifetimes *PerFlavorKMLifetime
	bins      survival.Bins
	RateScale float64
}

// NewNaiveGenerator fits the Naive baseline on the training trace.
func NewNaiveGenerator(tr *trace.Trace, bins survival.Bins) (*NaiveGenerator, error) {
	arr, err := TrainArrival(tr, ArrivalOptions{Kind: VMArrivals, UseDOH: false})
	if err != nil {
		return nil, err
	}
	counts := make([]float64, tr.Flavors.K())
	for i := range counts {
		counts[i] = 1e-9
	}
	for _, vm := range tr.VMs {
		counts[vm.Flavor]++
	}
	return &NaiveGenerator{
		Arrival:   arr,
		Flavors:   tr.Flavors,
		flavorW:   rng.NewAlias(counts),
		lifetimes: NewPerFlavorKMLifetime(tr, bins),
		bins:      bins,
	}, nil
}

// Name implements Generator.
func (n *NaiveGenerator) Name() string { return "Naive" }

// Generate implements Generator: every VM is its own single-job batch
// from a fresh user (full independence).
func (n *NaiveGenerator) Generate(g *rng.RNG, w trace.Window) *trace.Trace {
	scale := n.RateScale
	if scale == 0 {
		scale = 1
	}
	out := &trace.Trace{Flavors: n.Flavors, Periods: w.Periods()}
	id := 0
	for p := w.Start; p < w.End; p++ {
		count := g.Poisson(n.Arrival.Rate(p, 0) * scale)
		for v := 0; v < count; v++ {
			fl := n.flavorW.Sample(g)
			hz := n.lifetimes.Hazard(LifetimeStep{Flavor: fl}, 0)
			dur := survival.SampleDuration(hz, n.bins, g, survival.CDI)
			out.VMs = append(out.VMs, trace.VM{
				ID: id, User: id, Flavor: fl, Start: p - w.Start, Duration: dur,
			})
			id++
		}
	}
	return out
}

// SimpleBatchGenerator is the paper's non-RNN batch-aware baseline (§6):
// batch arrivals from the proposed Poisson regression, batch sizes from
// the empirical training distribution, one flavor and one lifetime
// shared by the whole batch.
type SimpleBatchGenerator struct {
	Arrival   *ArrivalModel
	Flavors   *trace.FlavorSet
	sizes     *rng.Alias
	sizeVals  []int
	flavorW   *rng.Alias
	lifetimes *PerFlavorKMLifetime
	bins      survival.Bins
	RateScale float64
}

// NewSimpleBatchGenerator fits the SimpleBatch baseline on the training
// trace.
func NewSimpleBatchGenerator(tr *trace.Trace, bins survival.Bins) (*SimpleBatchGenerator, error) {
	arr, err := TrainArrival(tr, ArrivalOptions{
		Kind:   BatchArrivals,
		UseDOH: true,
		DOH:    features.DOHSampler{Mode: features.DOHGeometric, GeomP: 1.0 / 7.0},
	})
	if err != nil {
		return nil, err
	}
	// Empirical batch-size distribution (sorted for determinism).
	sizeCounts := map[int]int{}
	maxSize := 0
	for _, batches := range tr.PeriodBatches() {
		for _, b := range batches {
			sizeCounts[len(b.Indices)]++
			if len(b.Indices) > maxSize {
				maxSize = len(b.Indices)
			}
		}
	}
	var vals []int
	var weights []float64
	for s := 1; s <= maxSize; s++ {
		if c := sizeCounts[s]; c > 0 {
			vals = append(vals, s)
			weights = append(weights, float64(c))
		}
	}
	if len(vals) == 0 {
		vals, weights = []int{1}, []float64{1}
	}
	counts := make([]float64, tr.Flavors.K())
	for i := range counts {
		counts[i] = 1e-9
	}
	for _, vm := range tr.VMs {
		counts[vm.Flavor]++
	}
	return &SimpleBatchGenerator{
		Arrival:   arr,
		Flavors:   tr.Flavors,
		sizes:     rng.NewAlias(weights),
		sizeVals:  vals,
		flavorW:   rng.NewAlias(counts),
		lifetimes: NewPerFlavorKMLifetime(tr, bins),
		bins:      bins,
	}, nil
}

// Name implements Generator.
func (s *SimpleBatchGenerator) Name() string { return "SimpleBatch" }

// Generate implements Generator.
func (s *SimpleBatchGenerator) Generate(g *rng.RNG, w trace.Window) *trace.Trace {
	scale := s.RateScale
	if scale == 0 {
		scale = 1
	}
	out := &trace.Trace{Flavors: s.Flavors, Periods: w.Periods()}
	id, user := 0, 0
	for p := w.Start; p < w.End; p++ {
		nBatches := g.Poisson(s.Arrival.Rate(p, s.Arrival.DOH.Sample(g)) * scale)
		for b := 0; b < nBatches; b++ {
			size := s.sizeVals[s.sizes.Sample(g)]
			fl := s.flavorW.Sample(g)
			hz := s.lifetimes.Hazard(LifetimeStep{Flavor: fl}, 0)
			dur := survival.SampleDuration(hz, s.bins, g, survival.CDI)
			for v := 0; v < size; v++ {
				out.VMs = append(out.VMs, trace.VM{
					ID: id, User: user, Flavor: fl, Start: p - w.Start, Duration: dur,
				})
				id++
			}
			user++
		}
	}
	return out
}
