package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

// fixture trains the full model once on a small AzureLike history and
// shares it across integration tests.
type fixture struct {
	cfg   synth.Config
	full  *trace.Trace
	train *trace.Trace
	test  *trace.Trace
	testW trace.Window
	bins  survival.Bins
	model *Model
	tcfg  TrainConfig
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		cfg := synth.AzureLike()
		cfg.Days = 4
		cfg.Users = 80
		cfg.BaseRate = 2
		full := cfg.Generate(42)
		trainW, _, testW := synth.StandardSplit(cfg.Days)
		bins := survival.PaperBins()
		f := &fixture{
			cfg:   cfg,
			full:  full,
			train: full.Slice(trainW, 0),
			test:  full.Slice(testW, 0),
			testW: testW,
			bins:  bins,
			tcfg: TrainConfig{
				Hidden:    24,
				Layers:    2,
				SeqLen:    64,
				BatchSize: 8,
				Epochs:    60,
				LR:        8e-3,
				Seed:      1,
			},
		}
		m, err := TrainModel(f.train, ModelOptions{Bins: bins, Train: f.tcfg})
		if err != nil {
			panic(err)
		}
		f.model = m
		fix = f
	})
	if fix == nil {
		t.Fatal("fixture failed to initialize")
	}
	return fix
}

func TestTrainArrivalCapturesDiurnal(t *testing.T) {
	f := getFixture(t)
	m := f.model.Arrival
	// Compare predicted rates at the planted afternoon peak vs pre-dawn
	// trough on a weekday (day 1 of history).
	day := 1 * trace.PeriodsPerDay
	peak := m.Rate(day+15*trace.PeriodsPerHour, 1)
	trough := m.Rate(day+3*trace.PeriodsPerHour, 1)
	if peak <= trough {
		t.Fatalf("arrival model missed diurnal pattern: peak %v trough %v", peak, trough)
	}
}

func TestArrivalSampleCount(t *testing.T) {
	f := getFixture(t)
	g := rng.New(1)
	var sum float64
	n := 500
	for i := 0; i < n; i++ {
		sum += float64(f.model.Arrival.SampleCount(g, f.testW.Start))
	}
	mean := sum / float64(n)
	if mean <= 0 || mean > 100 {
		t.Fatalf("implausible mean sampled count %v", mean)
	}
}

func TestArrivalVMKindCountsMore(t *testing.T) {
	f := getFixture(t)
	vmArr, err := TrainArrival(f.train, ArrivalOptions{Kind: VMArrivals})
	if err != nil {
		t.Fatal(err)
	}
	// VM arrivals outnumber batch arrivals (batches contain >1 VM on
	// average), so the fitted mean rate must be higher.
	p := 1*trace.PeriodsPerDay + 14*trace.PeriodsPerHour
	if vmArr.Rate(p, 0) <= f.model.Arrival.Rate(p, f.model.Arrival.HistoryDays-1) {
		t.Fatalf("VM rate %v should exceed batch rate %v",
			vmArr.Rate(p, 0), f.model.Arrival.Rate(p, f.model.Arrival.HistoryDays-1))
	}
}

// TestFlavorLSTMBeatsBaselines is the Table 2 shape check: on held-out
// data the LSTM should achieve lower NLL than Multinomial and lower
// 1-best error than RepeatFlav.
func TestFlavorLSTMBeatsBaselines(t *testing.T) {
	f := getFixture(t)
	toks := FlavorTokens(f.test)
	if len(toks) < 200 {
		t.Fatalf("test stream too short: %d", len(toks))
	}
	offset := f.testW.Start
	lstm := EvaluateFlavor(NewLSTMFlavorPredictor(f.model.Flavor), toks, offset)
	multi := EvaluateFlavor(NewMultinomialFlavor(f.train), toks, offset)
	uni := EvaluateFlavor(&UniformFlavor{K: f.train.Flavors.K()}, toks, offset)
	repeat := EvaluateFlavor(NewRepeatFlavor(f.train), toks, offset)

	if math.Abs(uni.NLL-math.Log(17)) > 1e-9 {
		t.Errorf("uniform NLL = %v, want ln17", uni.NLL)
	}
	if !(lstm.NLL < multi.NLL) {
		t.Errorf("LSTM NLL %v should beat multinomial %v", lstm.NLL, multi.NLL)
	}
	if !(multi.NLL < uni.NLL) {
		t.Errorf("multinomial NLL %v should beat uniform %v", multi.NLL, uni.NLL)
	}
	if !(lstm.OneBestErr < multi.OneBestErr) {
		t.Errorf("LSTM 1-best %v should beat multinomial %v", lstm.OneBestErr, multi.OneBestErr)
	}
	if !(repeat.OneBestErr < multi.OneBestErr) {
		t.Errorf("RepeatFlav 1-best %v should beat multinomial %v", repeat.OneBestErr, multi.OneBestErr)
	}
}

// TestLifetimeLSTMBeatsBaselines is the Table 3 shape check.
func TestLifetimeLSTMBeatsBaselines(t *testing.T) {
	f := getFixture(t)
	steps := LifetimeSteps(f.test, f.bins)
	offset := f.testW.Start
	lstm := EvaluateLifetime(NewLSTMLifetimePredictor(f.model.Lifetime), steps, f.bins, offset)
	km := EvaluateLifetime(NewKMLifetime(f.train, f.bins), steps, f.bins, offset)
	coin := EvaluateLifetime(&CoinFlipLifetime{J: f.bins.J()}, steps, f.bins, offset)
	repeat := EvaluateLifetime(NewRepeatLifetime(f.train, f.bins), steps, f.bins, offset)

	if math.Abs(coin.BCE-math.Log(2)) > 1e-9 {
		t.Errorf("coin flip BCE = %v, want ln2", coin.BCE)
	}
	if !(km.BCE < coin.BCE) {
		t.Errorf("KM BCE %v should beat coin flip %v", km.BCE, coin.BCE)
	}
	if !(lstm.BCE < km.BCE) {
		t.Errorf("LSTM BCE %v should beat KM %v", lstm.BCE, km.BCE)
	}
	if !(lstm.OneBestErr < km.OneBestErr) {
		t.Errorf("LSTM 1-best %v should beat KM %v", lstm.OneBestErr, km.OneBestErr)
	}
	if !(repeat.OneBestErr < km.OneBestErr) {
		t.Errorf("RepeatLifetime 1-best %v should beat KM %v", repeat.OneBestErr, km.OneBestErr)
	}
}

func TestGenerateValidAndPlausible(t *testing.T) {
	f := getFixture(t)
	g := rng.New(7)
	gen := f.model.Generate(g, f.testW)
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	if gen.Periods != f.testW.Periods() {
		t.Fatalf("periods = %d", gen.Periods)
	}
	real := len(f.test.VMs)
	got := len(gen.VMs)
	if got < real/4 || got > real*4 {
		t.Fatalf("generated %d VMs, actual window has %d", got, real)
	}
	// Generated traces should show intra-batch flavor momentum like the
	// training data.
	pb := gen.PeriodBatches()
	var same, pairs int
	for _, list := range pb {
		for _, b := range list {
			for i := 1; i < len(b.Indices); i++ {
				pairs++
				if gen.VMs[b.Indices[i]].Flavor == gen.VMs[b.Indices[i-1]].Flavor {
					same++
				}
			}
		}
	}
	if pairs > 50 && float64(same)/float64(pairs) < 0.5 {
		t.Errorf("generated flavor momentum too weak: %v", float64(same)/float64(pairs))
	}
}

func TestGenerateRateScale(t *testing.T) {
	f := getFixture(t)
	base := *f.model
	base.RateScale = 1
	scaled := *f.model
	scaled.RateScale = 5
	nBase := len(base.Generate(rng.New(3), f.testW).VMs)
	nScaled := len(scaled.Generate(rng.New(3), f.testW).VMs)
	ratio := float64(nScaled) / float64(nBase)
	if ratio < 3 || ratio > 8 {
		t.Fatalf("5x scale produced ratio %v (%d vs %d)", ratio, nScaled, nBase)
	}
}

func TestNaiveGenerator(t *testing.T) {
	f := getFixture(t)
	naive, err := NewNaiveGenerator(f.train, f.bins)
	if err != nil {
		t.Fatal(err)
	}
	gen := naive.Generate(rng.New(5), f.testW)
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(gen.VMs) == 0 {
		t.Fatal("no VMs")
	}
	// Naive VMs are singleton batches: every VM its own user.
	for _, batches := range gen.PeriodBatches() {
		for _, b := range batches {
			if len(b.Indices) != 1 {
				t.Fatal("naive batches must be singletons")
			}
		}
	}
	if naive.Name() != "Naive" {
		t.Fatal("name")
	}
}

func TestSimpleBatchGenerator(t *testing.T) {
	f := getFixture(t)
	sb, err := NewSimpleBatchGenerator(f.train, f.bins)
	if err != nil {
		t.Fatal(err)
	}
	gen := sb.Generate(rng.New(5), f.testW)
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(gen.VMs) == 0 {
		t.Fatal("no VMs")
	}
	// Every batch shares one flavor and one lifetime.
	for _, batches := range gen.PeriodBatches() {
		for _, b := range batches {
			for _, idx := range b.Indices[1:] {
				if gen.VMs[idx].Flavor != gen.VMs[b.Indices[0]].Flavor {
					t.Fatal("SimpleBatch batch flavors must match")
				}
				if gen.VMs[idx].Duration != gen.VMs[b.Indices[0]].Duration {
					t.Fatal("SimpleBatch batch lifetimes must match")
				}
			}
		}
	}
}

func TestTeacherForcedHazards(t *testing.T) {
	f := getFixture(t)
	steps := LifetimeSteps(f.test, f.bins)
	if len(steps) > 50 {
		steps = steps[:50]
	}
	hz := f.model.Lifetime.TeacherForcedHazards(steps, f.testW.Start)
	if len(hz) != len(steps) {
		t.Fatalf("got %d hazards", len(hz))
	}
	for i, h := range hz {
		if len(h) != f.bins.J() {
			t.Fatalf("hazard %d len %d", i, len(h))
		}
		for _, v := range h {
			if v < 0 || v > 1 {
				t.Fatalf("hazard out of range: %v", v)
			}
		}
	}
}

func TestModelGeneratorDeterministicGivenSeed(t *testing.T) {
	f := getFixture(t)
	a := f.model.Generate(rng.New(11), f.testW)
	b := f.model.Generate(rng.New(11), f.testW)
	if len(a.VMs) != len(b.VMs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.VMs), len(b.VMs))
	}
	for i := range a.VMs {
		if a.VMs[i] != b.VMs[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestWithCatalog(t *testing.T) {
	f := getFixture(t)
	gen := f.model.Generate(rng.New(1), f.testW)
	re := WithCatalog(gen, f.full.Flavors)
	if re.Flavors != f.full.Flavors {
		t.Fatal("catalog not replaced")
	}
	if len(re.VMs) != len(gen.VMs) {
		t.Fatal("VMs changed")
	}
}
