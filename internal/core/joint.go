package core

import (
	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/trace"
)

// JointModel is the §7 "single LSTM" alternative the paper considered
// and rejected: one network controls the number of batches per period by
// emitting a special end-of-period (EOP) token, instead of delegating
// arrival counts to the stage-1 Poisson regression. The paper reports
// generation was "exquisitely sensitive to the timely sampling of these
// tokens"; this implementation exists to reproduce that observation
// (see the JointVsStaged experiment/test) and as a baseline for the
// ablation benches.
type JointModel struct {
	Net         *nn.LSTM
	K           int // flavors; EOB = K, EOP = K+1
	Temporal    features.Temporal
	HistoryDays int
	// MaxJobsPerPeriod caps runaway generation; zero means 2000.
	MaxJobsPerPeriod int
}

// jointEOB and jointEOP return the special token indices.
func (m *JointModel) jointEOB() int { return m.K }
func (m *JointModel) jointEOP() int { return m.K + 1 }

// jointTokens serializes a trace including one EOP token per period
// (also for empty periods, which become a bare EOP).
func jointTokens(tr *trace.Trace) []FlavorToken {
	eob := EOBToken(tr.Flavors.K())
	eop := tr.Flavors.K() + 1
	pb := tr.PeriodBatches()
	var out []FlavorToken
	for p, batches := range pb {
		for _, b := range batches {
			for _, idx := range b.Indices {
				out = append(out, FlavorToken{Period: p, Token: tr.VMs[idx].Flavor})
			}
			out = append(out, FlavorToken{Period: p, Token: eob})
		}
		out = append(out, FlavorToken{Period: p, Token: eop})
	}
	return out
}

func (m *JointModel) inputDim() int {
	return (m.K + 2) + m.Temporal.Dim()
}

func (m *JointModel) encodeInput(dst []float64, prevToken, period, dohDay int) {
	features.OneHot(dst[:m.K+2], prevToken)
	m.Temporal.Encode(dst[m.K+2:], period, dohDay)
}

// TrainJoint trains the single-LSTM alternative with the same stateful
// truncated-BPTT recipe as the staged flavor model.
func TrainJoint(tr *trace.Trace, cfg TrainConfig) *JointModel {
	cfg = cfg.withDefaults()
	k := tr.Flavors.K()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &JointModel{
		K:           k,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		HistoryDays: historyDays,
	}
	toks := jointTokens(tr)
	inDim := m.inputDim()
	g := rng.New(cfg.Seed + 20)
	m.Net = nn.NewLSTM(nn.Config{
		InputDim:  inDim,
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: k + 2,
	}, g)
	if len(toks) == 0 {
		return m
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	plan := newSegmentPlan(len(toks), cfg.SeqLen, cfg.BatchSize)
	eop := m.jointEOP()
	ck := newTrainCheckpointer(cfg.Checkpoint, "joint-lstm",
		cfg.fingerprint(ObsJointLSTM, len(toks), k, historyDays))
	startEpoch := 0
	if w, ok := ck.resume(cfg.Checkpoint, m.Net, opt, m.Net.Params); ok {
		if w.Done {
			return m
		}
		startEpoch = w.EpochsDone
	}
	ec := newEpochClock(ObsJointLSTM, cfg.Progress, cfg.Obs, cfg.Epochs)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.stepLR(epoch)
		var totalLoss float64
		var totalSteps int
		st := m.Net.NewState(plan.batch)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			xs := make([]*mat.Dense, wl)
			targets := make([][]int, wl)
			valids := make([][]bool, wl)
			var batchSteps int
			for s := 0; s < wl; s++ {
				x := mat.NewDense(plan.batch, inDim)
				tg := make([]int, plan.batch)
				vd := make([]bool, plan.batch)
				for row := 0; row < plan.batch; row++ {
					t, ok := plan.step(row, w, s)
					if !ok {
						continue
					}
					prev := eop
					if t > 0 {
						prev = toks[t-1].Token
					}
					day := trace.DayOfHistory(toks[t].Period)
					m.encodeInput(x.Row(row), prev, toks[t].Period, day)
					tg[row] = toks[t].Token
					vd[row] = true
					batchSteps++
				}
				xs[s] = x
				targets[s] = tg
				valids[s] = vd
			}
			m.Net.ZeroGrads()
			ys, cache := m.Net.Forward(xs, st)
			dys := make([]*mat.Dense, wl)
			for s, y := range ys {
				l, d, n := nn.SoftmaxCE(y, targets[s], valids[s])
				totalLoss += l
				totalSteps += n
				dys[s] = d
			}
			if batchSteps == 0 {
				continue
			}
			norm := 1 / float64(batchSteps)
			for _, d := range dys {
				mat.Scale(norm, d.Data)
			}
			m.Net.Backward(cache, dys)
			opt.Step(m.Net.Params())
		}
		var mean float64
		if totalSteps > 0 {
			mean = totalLoss / float64(totalSteps)
		}
		ec.emit(epoch, mean, totalSteps, opt, 0, false)
		ck.save(epoch+1, false, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	}
	ck.save(cfg.Epochs, true, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	return m
}

// GenerateCounts free-runs the joint model over a window and returns the
// number of batches it generates in each period — the quantity whose
// realism the paper found hard to control via EOP tokens. Flavor output
// is discarded; this isolates the arrival-process comparison against the
// staged model's Poisson regression.
func (m *JointModel) GenerateCounts(g *rng.RNG, w trace.Window, doh features.DOHSampler) []int {
	maxJobs := m.MaxJobsPerPeriod
	if maxJobs == 0 {
		maxJobs = 2000
	}
	counts := make([]int, w.Periods())
	st := m.Net.NewState(1)
	input := make([]float64, m.inputDim())
	probs := make([]float64, m.Net.Cfg.OutputDim)
	prev := m.jointEOP()
	doh.HistoryDays = m.HistoryDays
	dohDay := doh.Sample(g)
	curDay := -1
	for p := w.Start; p < w.End; p++ {
		if d := trace.DayOfHistory(p); d != curDay {
			curDay = d
			dohDay = doh.Sample(g)
		}
		jobs, batches := 0, 0
		for {
			m.encodeInput(input, prev, p, dohDay)
			nn.SoftmaxInto(m.Net.StepForward(input, st), probs)
			tok := g.Categorical(probs)
			if jobs >= maxJobs {
				tok = m.jointEOP()
			}
			prev = tok
			if tok == m.jointEOP() {
				break
			}
			if tok == m.jointEOB() {
				batches++
			} else {
				jobs++
			}
		}
		counts[p-w.Start] = batches
	}
	return counts
}
