package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/trace"
)

// LifetimeModel is the stage-3 LSTM (§2.3): at each step (job) it emits
// J logits that parameterize the discrete hazard over lifetime bins via
// the logistic function. It is the paper's key contribution — an
// inter-case recurrent survival model with censoring-aware training.
type LifetimeModel struct {
	Net         *nn.LSTM
	Bins        survival.Bins
	K           int
	Temporal    features.Temporal
	LifeFeat    features.LifetimeFeatures
	HistoryDays int

	// statePool recycles decoding states across Generate calls (and
	// concurrent server requests); see FlavorModel.statePool.
	statePool sync.Pool
}

// lifetimeInputDim: temporal + current flavor one-hot + batch-size
// scalar + previous-lifetime features (survival encoding + termination
// indicators).
func lifetimeInputDim(k int, temporal features.Temporal, lf features.LifetimeFeatures) int {
	return temporal.Dim() + k + 1 + lf.Dim()
}

// encodeLifetimeInput writes the step input for a job. prevBin < 0
// encodes "no previous job".
func (m *LifetimeModel) encodeLifetimeInput(dst []float64, step LifetimeStep, dohDay, prevBin int, prevCensored bool) {
	encodeLifetimeInputInto(dst, m.K, m.Temporal, m.LifeFeat, step, dohDay, prevBin, prevCensored)
}

// encodeLifetimeInputInto is the receiver-free form shared by the hazard
// and PMF lifetime heads.
func encodeLifetimeInputInto(dst []float64, k int, temporal features.Temporal, lf features.LifetimeFeatures, step LifetimeStep, dohDay, prevBin int, prevCensored bool) {
	td := temporal.Dim()
	temporal.Encode(dst[:td], step.Period, dohDay)
	features.OneHot(dst[td:td+k], step.Flavor)
	dst[td+k] = math.Log1p(float64(step.BatchSize))
	lf.Encode(dst[td+k+1:], prevBin, prevCensored)
}

// lifetimeTargets fills the per-bin targets and mask for one observed
// step (§2.3.2): an uncensored job in bin k is a hazard event at k after
// surviving bins < k (mask 0..k); a job censored in bin c only certifies
// survival of bins < c (mask 0..c-1, all-zero targets).
func lifetimeTargets(target, mask []float64, step LifetimeStep) {
	for j := range target {
		target[j], mask[j] = 0, 0
	}
	if step.Censored {
		for j := 0; j < step.Bin; j++ {
			mask[j] = 1
		}
		return
	}
	for j := 0; j <= step.Bin; j++ {
		mask[j] = 1
	}
	target[step.Bin] = 1
}

// TrainLifetime trains the hazard LSTM on the training trace by teacher
// forcing over the job sequence, minimizing the masked BCE-with-logits
// loss (§2.3.2, §4.1).
func TrainLifetime(tr *trace.Trace, bins survival.Bins, cfg TrainConfig) *LifetimeModel {
	cfg = cfg.withDefaults()
	k := tr.Flavors.K()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &LifetimeModel{
		Bins:        bins,
		K:           k,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		LifeFeat:    features.LifetimeFeatures{Bins: bins.J()},
		HistoryDays: historyDays,
	}
	steps := LifetimeSteps(tr, bins)
	inDim := lifetimeInputDim(k, m.Temporal, m.LifeFeat)
	g := rng.New(cfg.Seed + 1)
	m.Net = nn.NewLSTM(nn.Config{
		InputDim:  inDim,
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: bins.J(),
	}, g)
	if len(steps) == 0 {
		return m
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	plan := newSegmentPlan(len(steps), cfg.SeqLen, cfg.BatchSize)
	j := bins.J()
	var devSteps []LifetimeStep
	if cfg.Dev != nil {
		devSteps = LifetimeSteps(cfg.Dev, bins)
	}
	bestDev := math.Inf(1)
	var bestSnap []byte
	checkDev := func() (float64, bool) {
		if len(devSteps) == 0 {
			return 0, false
		}
		ev := EvaluateLifetime(NewLSTMLifetimePredictor(m), devSteps, bins, cfg.DevOffset)
		if ev.BCE < bestDev {
			bestDev = ev.BCE
			if snap, err := m.Net.MarshalBinary(); err == nil {
				bestSnap = snap
			}
		}
		return ev.BCE, true
	}
	// Resume before the sharded view (see TrainFlavor).
	ck := newTrainCheckpointer(cfg.Checkpoint, "lifetime-hazard",
		cfg.fingerprint(ObsLifetimeHazard, len(steps), k, historyDays))
	startEpoch := 0
	if w, ok := ck.resume(cfg.Checkpoint, m.Net, opt, m.Net.Params); ok {
		if w.Done {
			return m
		}
		startEpoch = w.EpochsDone
		bestDev, bestSnap = w.BestDev, w.BestSnap
	}
	sharded := nn.NewShardedLSTM(m.Net, plan.batch)
	// Reused window buffers (see TrainFlavor): per-step input, target and
	// mask slabs plus a full-batch gradient slab, all with persistent
	// per-shard row views so the sharded callback allocates nothing.
	maxWl := 0
	for w := 0; w < plan.windows; w++ {
		if wl := plan.windowLen(w); wl > maxWl {
			maxWl = wl
		}
	}
	xs := make([]*mat.Dense, maxWl)
	targets := make([]*mat.Dense, maxWl)
	masks := make([]*mat.Dense, maxWl)
	dysFull := make([]*mat.Dense, maxWl)
	for s := 0; s < maxWl; s++ {
		xs[s] = mat.NewDense(plan.batch, inDim)
		targets[s] = mat.NewDense(plan.batch, j)
		masks[s] = mat.NewDense(plan.batch, j)
		dysFull[s] = mat.NewDense(plan.batch, j)
	}
	nShards := nn.NumShards(plan.batch)
	shardDys := make([][]*mat.Dense, nShards)
	shardTg := make([][]*mat.Dense, nShards)
	shardMk := make([][]*mat.Dense, nShards)
	for si := 0; si < nShards; si++ {
		lo := si * nn.ShardRows
		hi := min(lo+nn.ShardRows, plan.batch)
		shardDys[si] = make([]*mat.Dense, maxWl)
		shardTg[si] = make([]*mat.Dense, maxWl)
		shardMk[si] = make([]*mat.Dense, maxWl)
		for s := 0; s < maxWl; s++ {
			shardDys[si][s] = dysFull[s].SliceRows(lo, hi)
			shardTg[si][s] = targets[s].SliceRows(lo, hi)
			shardMk[si][s] = masks[s].SliceRows(lo, hi)
		}
	}
	ec := newEpochClock(ObsLifetimeHazard, cfg.Progress, cfg.Obs, cfg.Epochs)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.stepLR(epoch)
		var totalLoss float64
		var totalOutputs int
		// Stateful truncated BPTT (see TrainFlavor).
		st := m.Net.NewState(plan.batch)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			// The masked-BCE output count is a function of the targets
			// alone, so tally it while encoding: the gradient scale is
			// then known before the sharded forward/backward pass.
			var batchOutputs int
			for s := 0; s < wl; s++ {
				x, tg, mk := xs[s], targets[s], masks[s]
				x.Zero()
				tg.Zero()
				mk.Zero()
				for row := 0; row < plan.batch; row++ {
					t, ok := plan.step(row, w, s)
					if !ok {
						continue // zero mask: no loss
					}
					prevBin, prevCens := -1, false
					if t > 0 {
						prevBin, prevCens = steps[t-1].Bin, steps[t-1].Censored
					}
					day := trace.DayOfHistory(steps[t].Period)
					m.encodeLifetimeInput(x.Row(row), steps[t], day, prevBin, prevCens)
					lifetimeTargets(tg.Row(row), mk.Row(row), steps[t])
					for _, mv := range mk.Row(row) {
						if mv != 0 {
							batchOutputs++
						}
					}
				}
			}
			var norm float64
			if batchOutputs > 0 {
				norm = 1 / float64(batchOutputs)
			}
			loss, outputs := sharded.RunWindow(xs[:wl], st, func(lo, hi int, ys []*mat.Dense) ([]*mat.Dense, float64, int) {
				si := lo / nn.ShardRows
				dys := shardDys[si][:len(ys)]
				var shardLoss float64
				var shardN int
				for s, y := range ys {
					l, n := nn.MaskedBCEWithLogitsInto(y, shardTg[si][s], shardMk[si][s], dys[s])
					shardLoss += l
					shardN += n
				}
				if batchOutputs == 0 {
					return nil, shardLoss, shardN
				}
				for _, d := range dys {
					mat.Scale(norm, d.Data)
				}
				return dys, shardLoss, shardN
			})
			totalLoss += loss
			totalOutputs += outputs
			if batchOutputs == 0 {
				continue
			}
			opt.Step(m.Net.Params())
		}
		var devLoss float64
		var hasDev bool
		if (epoch+1)%cfg.DevEvery == 0 || epoch == cfg.Epochs-1 {
			devLoss, hasDev = checkDev()
		}
		var mean float64
		if totalOutputs > 0 {
			mean = totalLoss / float64(totalOutputs)
		}
		ec.emit(epoch, mean, totalOutputs, opt, devLoss, hasDev)
		ck.save(epoch+1, false, m.Net, opt, m.Net.Params(), bestDev, bestSnap, g.State())
	}
	if bestSnap != nil {
		if err := m.Net.UnmarshalBinary(bestSnap); err != nil {
			panic(fmt.Sprintf("core: restore best lifetime snapshot: %v", err))
		}
	}
	ck.save(cfg.Epochs, true, m.Net, opt, m.Net.Params(), bestDev, bestSnap, g.State())
	return m
}

// lifetimeState is the streaming decoder state for generation and
// teacher-forced evaluation.
type lifetimeState struct {
	m        *LifetimeModel
	st       *nn.State
	prevBin  int
	prevCens bool
	input    []float64
	out      []float64 // hazard result buffer, overwritten each step
}

// newLifetimeState returns a fresh state with no previous job.
func (m *LifetimeModel) newLifetimeState() *lifetimeState {
	return &lifetimeState{
		m:       m,
		st:      m.Net.NewState(1),
		prevBin: -1,
		input:   make([]float64, lifetimeInputDim(m.K, m.Temporal, m.LifeFeat)),
		out:     make([]float64, m.Bins.J()),
	}
}

// acquireLifetimeState returns a pooled decoding state reset to the
// fresh-state condition. Pair with releaseLifetimeState.
func (m *LifetimeModel) acquireLifetimeState() *lifetimeState {
	if s, ok := m.statePool.Get().(*lifetimeState); ok {
		s.reset()
		return s
	}
	return m.newLifetimeState()
}

// releaseLifetimeState recycles a state obtained from
// acquireLifetimeState. The caller must not use s afterwards.
func (m *LifetimeModel) releaseLifetimeState(s *lifetimeState) { m.statePool.Put(s) }

// reset restores the fresh-state condition: zero LSTM state, no
// previous job.
func (s *lifetimeState) reset() {
	s.st.Zero()
	s.prevBin, s.prevCens = -1, false
}

// hazard advances the LSTM one step and returns the per-bin hazard
// probabilities for the given job. The returned slice is the state's
// reusable buffer, overwritten by the next hazard call; clone it to
// keep it across steps.
func (s *lifetimeState) hazard(step LifetimeStep, dohDay int) []float64 {
	s.m.encodeLifetimeInput(s.input, step, dohDay, s.prevBin, s.prevCens)
	logits := s.m.Net.StepForward(s.input, s.st)
	nn.SigmoidInto(logits, s.out)
	return s.out
}

// observe records the realized (or sampled) lifetime bin of the job just
// scored.
func (s *lifetimeState) observe(bin int, censored bool) {
	s.prevBin, s.prevCens = bin, censored
}
