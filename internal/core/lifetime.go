package core

import (
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/trace"
)

// LifetimeModel is the stage-3 LSTM (§2.3): at each step (job) it emits
// J logits that parameterize the discrete hazard over lifetime bins via
// the logistic function. It is the paper's key contribution — an
// inter-case recurrent survival model with censoring-aware training.
type LifetimeModel struct {
	Net         *nn.LSTM
	Bins        survival.Bins
	K           int
	Temporal    features.Temporal
	LifeFeat    features.LifetimeFeatures
	HistoryDays int
}

// lifetimeInputDim: temporal + current flavor one-hot + batch-size
// scalar + previous-lifetime features (survival encoding + termination
// indicators).
func lifetimeInputDim(k int, temporal features.Temporal, lf features.LifetimeFeatures) int {
	return temporal.Dim() + k + 1 + lf.Dim()
}

// encodeLifetimeInput writes the step input for a job. prevBin < 0
// encodes "no previous job".
func (m *LifetimeModel) encodeLifetimeInput(dst []float64, step LifetimeStep, dohDay, prevBin int, prevCensored bool) {
	encodeLifetimeInputInto(dst, m.K, m.Temporal, m.LifeFeat, step, dohDay, prevBin, prevCensored)
}

// encodeLifetimeInputInto is the receiver-free form shared by the hazard
// and PMF lifetime heads.
func encodeLifetimeInputInto(dst []float64, k int, temporal features.Temporal, lf features.LifetimeFeatures, step LifetimeStep, dohDay, prevBin int, prevCensored bool) {
	td := temporal.Dim()
	temporal.Encode(dst[:td], step.Period, dohDay)
	features.OneHot(dst[td:td+k], step.Flavor)
	dst[td+k] = math.Log1p(float64(step.BatchSize))
	lf.Encode(dst[td+k+1:], prevBin, prevCensored)
}

// lifetimeTargets fills the per-bin targets and mask for one observed
// step (§2.3.2): an uncensored job in bin k is a hazard event at k after
// surviving bins < k (mask 0..k); a job censored in bin c only certifies
// survival of bins < c (mask 0..c-1, all-zero targets).
func lifetimeTargets(target, mask []float64, step LifetimeStep) {
	for j := range target {
		target[j], mask[j] = 0, 0
	}
	if step.Censored {
		for j := 0; j < step.Bin; j++ {
			mask[j] = 1
		}
		return
	}
	for j := 0; j <= step.Bin; j++ {
		mask[j] = 1
	}
	target[step.Bin] = 1
}

// TrainLifetime trains the hazard LSTM on the training trace by teacher
// forcing over the job sequence, minimizing the masked BCE-with-logits
// loss (§2.3.2, §4.1).
func TrainLifetime(tr *trace.Trace, bins survival.Bins, cfg TrainConfig) *LifetimeModel {
	cfg = cfg.withDefaults()
	k := tr.Flavors.K()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &LifetimeModel{
		Bins:        bins,
		K:           k,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		LifeFeat:    features.LifetimeFeatures{Bins: bins.J()},
		HistoryDays: historyDays,
	}
	steps := LifetimeSteps(tr, bins)
	inDim := lifetimeInputDim(k, m.Temporal, m.LifeFeat)
	m.Net = nn.NewLSTM(nn.Config{
		InputDim:  inDim,
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: bins.J(),
	}, rng.New(cfg.Seed+1))
	if len(steps) == 0 {
		return m
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	plan := newSegmentPlan(len(steps), cfg.SeqLen, cfg.BatchSize)
	j := bins.J()
	var devSteps []LifetimeStep
	if cfg.Dev != nil {
		devSteps = LifetimeSteps(cfg.Dev, bins)
	}
	bestDev := math.Inf(1)
	var bestSnap []byte
	checkDev := func() (float64, bool) {
		if len(devSteps) == 0 {
			return 0, false
		}
		ev := EvaluateLifetime(NewLSTMLifetimePredictor(m), devSteps, bins, cfg.DevOffset)
		if ev.BCE < bestDev {
			bestDev = ev.BCE
			if snap, err := m.Net.MarshalBinary(); err == nil {
				bestSnap = snap
			}
		}
		return ev.BCE, true
	}
	sharded := nn.NewShardedLSTM(m.Net, plan.batch)
	ec := newEpochClock(ObsLifetimeHazard, cfg.Progress, cfg.Obs, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.stepLR(epoch)
		var totalLoss float64
		var totalOutputs int
		// Stateful truncated BPTT (see TrainFlavor).
		st := m.Net.NewState(plan.batch)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			xs := make([]*mat.Dense, wl)
			targets := make([]*mat.Dense, wl)
			masks := make([]*mat.Dense, wl)
			// The masked-BCE output count is a function of the targets
			// alone, so tally it while encoding: the gradient scale is
			// then known before the sharded forward/backward pass.
			var batchOutputs int
			for s := 0; s < wl; s++ {
				x := mat.NewDense(plan.batch, inDim)
				tg := mat.NewDense(plan.batch, j)
				mk := mat.NewDense(plan.batch, j)
				for row := 0; row < plan.batch; row++ {
					t, ok := plan.step(row, w, s)
					if !ok {
						continue // zero mask: no loss
					}
					prevBin, prevCens := -1, false
					if t > 0 {
						prevBin, prevCens = steps[t-1].Bin, steps[t-1].Censored
					}
					day := trace.DayOfHistory(steps[t].Period)
					m.encodeLifetimeInput(x.Row(row), steps[t], day, prevBin, prevCens)
					lifetimeTargets(tg.Row(row), mk.Row(row), steps[t])
					for _, mv := range mk.Row(row) {
						if mv != 0 {
							batchOutputs++
						}
					}
				}
				xs[s] = x
				targets[s] = tg
				masks[s] = mk
			}
			var norm float64
			if batchOutputs > 0 {
				norm = 1 / float64(batchOutputs)
			}
			loss, outputs := sharded.RunWindow(xs, st, func(lo, hi int, ys []*mat.Dense) ([]*mat.Dense, float64, int) {
				dys := make([]*mat.Dense, len(ys))
				var shardLoss float64
				var shardN int
				for s, y := range ys {
					l, d, n := nn.MaskedBCEWithLogits(y, targets[s].SliceRows(lo, hi), masks[s].SliceRows(lo, hi))
					shardLoss += l
					shardN += n
					dys[s] = d
				}
				if batchOutputs == 0 {
					return nil, shardLoss, shardN
				}
				for _, d := range dys {
					mat.Scale(norm, d.Data)
				}
				return dys, shardLoss, shardN
			})
			totalLoss += loss
			totalOutputs += outputs
			if batchOutputs == 0 {
				continue
			}
			opt.Step(m.Net.Params())
		}
		var devLoss float64
		var hasDev bool
		if (epoch+1)%cfg.DevEvery == 0 || epoch == cfg.Epochs-1 {
			devLoss, hasDev = checkDev()
		}
		var mean float64
		if totalOutputs > 0 {
			mean = totalLoss / float64(totalOutputs)
		}
		ec.emit(epoch, mean, totalOutputs, opt, devLoss, hasDev)
	}
	if bestSnap != nil {
		if err := m.Net.UnmarshalBinary(bestSnap); err != nil {
			panic(fmt.Sprintf("core: restore best lifetime snapshot: %v", err))
		}
	}
	return m
}

// lifetimeState is the streaming decoder state for generation and
// teacher-forced evaluation.
type lifetimeState struct {
	m        *LifetimeModel
	st       *nn.State
	prevBin  int
	prevCens bool
	input    []float64
}

// newLifetimeState returns a fresh state with no previous job.
func (m *LifetimeModel) newLifetimeState() *lifetimeState {
	return &lifetimeState{
		m:       m,
		st:      m.Net.NewState(1),
		prevBin: -1,
		input:   make([]float64, lifetimeInputDim(m.K, m.Temporal, m.LifeFeat)),
	}
}

// hazard advances the LSTM one step and returns the per-bin hazard
// probabilities for the given job.
func (s *lifetimeState) hazard(step LifetimeStep, dohDay int) []float64 {
	s.m.encodeLifetimeInput(s.input, step, dohDay, s.prevBin, s.prevCens)
	logits := s.m.Net.StepForward(s.input, s.st)
	return nn.Sigmoid(logits)
}

// observe records the realized (or sampled) lifetime bin of the job just
// scored.
func (s *lifetimeState) observe(bin int, censored bool) {
	s.prevBin, s.prevCens = bin, censored
}
