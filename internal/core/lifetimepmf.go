package core

import (
	"math"

	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/trace"
)

// PMFLifetimeModel parameterizes the lifetime PMF with a softmax instead
// of the per-bin hazard logistic — the alternative §2.3.1 discusses
// (Kvamme & Borgan found the hazard form "slightly better"; the
// PMFvsHazard experiment reproduces the comparison). The censored-data
// likelihood under a PMF head is the tail mass Σ_{j>=c} f(j).
type PMFLifetimeModel struct {
	Net         *nn.LSTM
	Bins        survival.Bins
	K           int
	Temporal    features.Temporal
	LifeFeat    features.LifetimeFeatures
	HistoryDays int
}

// pmfLoss computes the negative log-likelihood and dLogits for one
// step's softmax logits under the discrete-time survival likelihood:
// -log f(k) for an event in bin k, -log Σ_{j>=c} f(j) for censoring at
// bin c. Returns the loss (0 and nil gradient contribution if the
// censored tail is the whole distribution, which carries no
// information).
func pmfLoss(logits []float64, step LifetimeStep, dLogits []float64) float64 {
	probs := nn.Softmax(logits)
	if !step.Censored {
		k := step.Bin
		for j, p := range probs {
			ind := 0.0
			if j == k {
				ind = 1
			}
			dLogits[j] = p - ind
		}
		return -math.Log(math.Max(probs[k], 1e-300))
	}
	if step.Bin == 0 {
		// Censored before surviving any full bin: no information.
		for j := range dLogits {
			dLogits[j] = 0
		}
		return 0
	}
	var tail float64
	for j := step.Bin; j < len(probs); j++ {
		tail += probs[j]
	}
	tail = math.Max(tail, 1e-300)
	// d/dz_j of -log Σ_{i>=c} p_i = p_j - p_j·1[j>=c]/tail.
	for j, p := range probs {
		in := 0.0
		if j >= step.Bin {
			in = 1
		}
		dLogits[j] = p - p*in/tail
	}
	return -math.Log(tail)
}

// TrainLifetimePMF trains the PMF-head lifetime model with the same
// stateful-BPTT recipe as the hazard model.
func TrainLifetimePMF(tr *trace.Trace, bins survival.Bins, cfg TrainConfig) *PMFLifetimeModel {
	cfg = cfg.withDefaults()
	k := tr.Flavors.K()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	m := &PMFLifetimeModel{
		Bins:        bins,
		K:           k,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		LifeFeat:    features.LifetimeFeatures{Bins: bins.J()},
		HistoryDays: historyDays,
	}
	steps := LifetimeSteps(tr, bins)
	inDim := lifetimeInputDim(k, m.Temporal, m.LifeFeat)
	g := rng.New(cfg.Seed + 50)
	m.Net = nn.NewLSTM(nn.Config{
		InputDim:  inDim,
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: bins.J(),
	}, g)
	if len(steps) == 0 {
		return m
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	plan := newSegmentPlan(len(steps), cfg.SeqLen, cfg.BatchSize)
	j := bins.J()
	ck := newTrainCheckpointer(cfg.Checkpoint, "lifetime-pmf",
		cfg.fingerprint(ObsLifetimePMF, len(steps), k, historyDays))
	startEpoch := 0
	if w, ok := ck.resume(cfg.Checkpoint, m.Net, opt, m.Net.Params); ok {
		if w.Done {
			return m
		}
		startEpoch = w.EpochsDone
	}
	ec := newEpochClock(ObsLifetimePMF, cfg.Progress, cfg.Obs, cfg.Epochs)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.stepLR(epoch)
		var totalLoss float64
		var totalSteps int
		st := m.Net.NewState(plan.batch)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			xs := make([]*mat.Dense, wl)
			stepAt := make([][]*LifetimeStep, wl)
			for s := 0; s < wl; s++ {
				x := mat.NewDense(plan.batch, inDim)
				rows := make([]*LifetimeStep, plan.batch)
				for row := 0; row < plan.batch; row++ {
					t, ok := plan.step(row, w, s)
					if !ok {
						continue
					}
					prevBin, prevCens := -1, false
					if t > 0 {
						prevBin, prevCens = steps[t-1].Bin, steps[t-1].Censored
					}
					day := trace.DayOfHistory(steps[t].Period)
					encodeLifetimeInputInto(x.Row(row), k, m.Temporal, m.LifeFeat, steps[t], day, prevBin, prevCens)
					rows[row] = &steps[t]
				}
				xs[s] = x
				stepAt[s] = rows
			}
			m.Net.ZeroGrads()
			ys, cache := m.Net.Forward(xs, st)
			dys := make([]*mat.Dense, wl)
			var nSteps int
			for s, y := range ys {
				d := mat.NewDense(plan.batch, j)
				for row := 0; row < plan.batch; row++ {
					if stepAt[s][row] == nil {
						continue
					}
					totalLoss += pmfLoss(y.Row(row), *stepAt[s][row], d.Row(row))
					nSteps++
				}
				dys[s] = d
			}
			totalSteps += nSteps
			if nSteps == 0 {
				continue
			}
			norm := 1 / float64(nSteps)
			for _, d := range dys {
				mat.Scale(norm, d.Data)
			}
			m.Net.Backward(cache, dys)
			opt.Step(m.Net.Params())
		}
		var mean float64
		if totalSteps > 0 {
			mean = totalLoss / float64(totalSteps)
		}
		ec.emit(epoch, mean, totalSteps, opt, 0, false)
		ck.save(epoch+1, false, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	}
	ck.save(cfg.Epochs, true, m.Net, opt, m.Net.Params(), 0, nil, g.State())
	return m
}

// PMFLifetimePredictor adapts the PMF model to the LifetimePredictor
// interface: the softmax PMF is converted to a hazard so both heads are
// scored with the same BCE machinery.
type PMFLifetimePredictor struct {
	m        *PMFLifetimeModel
	st       *nn.State
	prevBin  int
	prevCens bool
	input    []float64
}

// NewPMFLifetimePredictor wraps m.
func NewPMFLifetimePredictor(m *PMFLifetimeModel) *PMFLifetimePredictor {
	p := &PMFLifetimePredictor{m: m}
	p.Reset()
	return p
}

// Name implements LifetimePredictor.
func (p *PMFLifetimePredictor) Name() string { return "LSTM (PMF head)" }

// Reset implements LifetimePredictor.
func (p *PMFLifetimePredictor) Reset() {
	p.st = p.m.Net.NewState(1)
	p.prevBin = -1
	p.prevCens = false
	p.input = make([]float64, lifetimeInputDim(p.m.K, p.m.Temporal, p.m.LifeFeat))
}

// Hazard implements LifetimePredictor.
func (p *PMFLifetimePredictor) Hazard(step LifetimeStep, absPeriod int) []float64 {
	local := step
	local.Period = absPeriod
	encodeLifetimeInputInto(p.input, p.m.K, p.m.Temporal, p.m.LifeFeat,
		local, trace.DayOfHistory(absPeriod), p.prevBin, p.prevCens)
	logits := p.m.Net.StepForward(p.input, p.st)
	return survival.PMFToHazard(nn.Softmax(logits))
}

// PredictBin implements LifetimePredictor.
func (p *PMFLifetimePredictor) PredictBin(LifetimeStep) int { return 0 }

// Observe implements LifetimePredictor.
func (p *PMFLifetimePredictor) Observe(step LifetimeStep) {
	p.prevBin, p.prevCens = step.Bin, step.Censored
}
