package core

import (
	"math"
	"testing"
)

func TestPMFLossUncensoredKnown(t *testing.T) {
	logits := []float64{0, 0, 0, 0}
	d := make([]float64, 4)
	loss := pmfLoss(logits, LifetimeStep{Bin: 2}, d)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient: p - onehot = 0.25 everywhere except bin 2 (-0.75); sums
	// to zero.
	var sum float64
	for j, g := range d {
		want := 0.25
		if j == 2 {
			want = -0.75
		}
		if math.Abs(g-want) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", j, g, want)
		}
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("grad sum = %v", sum)
	}
}

func TestPMFLossCensoredKnown(t *testing.T) {
	logits := []float64{0, 0, 0, 0}
	d := make([]float64, 4)
	// Censored at bin 2: tail = p2+p3 = 0.5, loss = ln2.
	loss := pmfLoss(logits, LifetimeStep{Bin: 2, Censored: true}, d)
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	// Bins below the censor point get positive gradient (pushed down),
	// tail bins get zero at the uniform point (0.25 - 0.25/0.5*0.5).
	for j := 0; j < 2; j++ {
		if math.Abs(d[j]-0.25) > 1e-12 {
			t.Fatalf("grad[%d] = %v", j, d[j])
		}
	}
	for j := 2; j < 4; j++ {
		if math.Abs(d[j]-(0.25-0.25/0.5)) > 1e-12 {
			t.Fatalf("tail grad[%d] = %v", j, d[j])
		}
	}
}

func TestPMFLossCensoredBinZeroNoInfo(t *testing.T) {
	logits := []float64{1, 2, 3}
	d := []float64{9, 9, 9}
	loss := pmfLoss(logits, LifetimeStep{Bin: 0, Censored: true}, d)
	if loss != 0 {
		t.Fatalf("loss = %v", loss)
	}
	for _, g := range d {
		if g != 0 {
			t.Fatalf("grad should be zeroed: %v", d)
		}
	}
}

// TestPMFLossGradientNumerical verifies the analytic gradient of both
// the event and censored branches by central differences.
func TestPMFLossGradientNumerical(t *testing.T) {
	logits := []float64{0.3, -0.7, 1.2, 0.1, -0.4}
	for _, step := range []LifetimeStep{{Bin: 3}, {Bin: 2, Censored: true}} {
		d := make([]float64, len(logits))
		pmfLoss(logits, step, d)
		for j := range logits {
			const h = 1e-6
			lp := make([]float64, len(logits))
			copy(lp, logits)
			lp[j] += h
			lm := make([]float64, len(logits))
			copy(lm, logits)
			lm[j] -= h
			scratch := make([]float64, len(logits))
			num := (pmfLoss(lp, step, scratch) - pmfLoss(lm, step, scratch)) / (2 * h)
			if math.Abs(num-d[j]) > 1e-6 {
				t.Fatalf("step %+v grad[%d]: analytic %v numeric %v", step, j, d[j], num)
			}
		}
	}
}

// TestPMFLifetimeModelTrains verifies the PMF head learns: its test BCE
// beats the pooled KM baseline, like the hazard head.
func TestPMFLifetimeModelTrains(t *testing.T) {
	f := getFixture(t)
	cfg := f.tcfg
	cfg.Epochs = 40
	m := TrainLifetimePMF(f.train, f.bins, cfg)
	steps := LifetimeSteps(f.test, f.bins)
	pmf := EvaluateLifetime(NewPMFLifetimePredictor(m), steps, f.bins, f.testW.Start)
	km := EvaluateLifetime(NewKMLifetime(f.train, f.bins), steps, f.bins, f.testW.Start)
	if !(pmf.BCE < km.BCE) {
		t.Errorf("PMF-head BCE %v should beat KM %v", pmf.BCE, km.BCE)
	}
	hazard := EvaluateLifetime(NewLSTMLifetimePredictor(f.model.Lifetime), steps, f.bins, f.testW.Start)
	// Kvamme & Borgan: the hazard parameterization works "slightly
	// better"; at minimum the two heads should be in the same ballpark.
	if pmf.BCE > hazard.BCE*1.5 {
		t.Errorf("PMF head %v too far behind hazard head %v", pmf.BCE, hazard.BCE)
	}
}
