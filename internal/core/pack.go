package core

import (
	"os"

	"repro/internal/nn"
)

// Publish-time packed serving weights (DESIGN.md §6.5). Alongside the
// f32 conversion, snapshot publish packs each decode weight matrix
// once into cache-blocked panels; every decode fleet — serial-f32,
// batched, and sharded, both precisions — then steps on panels with
// the bias/activation epilogue fused into the GEMM tails. Packing is a
// bit-exact address permutation (see mat.PackedDense), so packed and
// unpacked engines emit byte-identical traces; training and the scalar
// serial f64 reference path keep the unpacked matrices as the honest
// baseline the packed paths are pinned against.

// packDisabled is the REPRO_NOPACK kill-switch: any non-empty value
// makes the Prepare* functions return nil panels, dropping every fleet
// back to the unpacked kernels. Because packed and unpacked decode are
// bit-identical, flipping it never changes emitted traces —
// scripts/check.sh proves that with a REPRO_NOPACK=1 tier. A variable,
// not a const, so in-package tests can force either path.
var packDisabled = os.Getenv("REPRO_NOPACK") != ""

// ModelPacked holds the panel-packed f64 decode weights of the model's
// two LSTMs.
type ModelPacked struct {
	Flavor   *nn.PackedLSTM
	Lifetime *nn.PackedLSTM
}

// ModelPacked32 holds the panel-packed weights of the f32 conversion.
type ModelPacked32 struct {
	Flavor   *nn.PackedLSTM32
	Lifetime *nn.PackedLSTM32
}

// PreparePacked packs the model's f64 decode weights once and caches
// the result on the model; later calls (and shallow Model copies,
// which share the cache pointer) return the same panels. Returns nil
// under REPRO_NOPACK. Like PrepareF32, the first call mutates the
// model and must happen before the model is shared across goroutines —
// engine constructors and the batch entry points call it eagerly.
// Hot reload republishes a fresh Model value whose cache starts nil,
// so reloaded weights are always freshly packed.
func (m *Model) PreparePacked() *ModelPacked {
	if packDisabled {
		return nil
	}
	if m.packed == nil {
		m.packed = &ModelPacked{
			Flavor:   m.Flavor.Net.Pack(),
			Lifetime: m.Lifetime.Net.Pack(),
		}
	}
	return m.packed
}

// PreparePackedF32 packs the f32 weight conversion (building it first
// if needed) once and caches the result. Returns nil under
// REPRO_NOPACK. Same sharing and publish-before-fan-out contract as
// PreparePacked.
func (m *Model) PreparePackedF32() *ModelPacked32 {
	if packDisabled {
		return nil
	}
	if m.packed32 == nil {
		f32 := m.PrepareF32()
		m.packed32 = &ModelPacked32{
			Flavor:   f32.Flavor.Pack(),
			Lifetime: f32.Lifetime.Pack(),
		}
	}
	return m.packed32
}
