package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/trace"
)

// withPackDisabled runs f with the REPRO_NOPACK kill-switch forced to
// the given state, restoring it afterwards.
func withPackDisabled(t *testing.T, disabled bool, f func(t *testing.T)) {
	saved := packDisabled
	packDisabled = disabled
	defer func() { packDisabled = saved }()
	name := "pack"
	if disabled {
		name = "nopack"
	}
	t.Run(name, f)
}

// TestPreparePackedCachingAndKillSwitch pins the publish-time cache
// contract: panels are built once and shared, and REPRO_NOPACK yields
// nil panels (so fleets fall back to unpacked weights) without
// touching an existing cache.
func TestPreparePackedCachingAndKillSwitch(t *testing.T) {
	m := tinyGenModel()
	saved := packDisabled
	defer func() { packDisabled = saved }()

	packDisabled = false
	p1 := m.PreparePacked()
	if p1 == nil || p1.Flavor == nil || p1.Lifetime == nil {
		t.Fatal("PreparePacked returned incomplete panels")
	}
	if m.PreparePacked() != p1 {
		t.Fatal("PreparePacked rebuilt panels instead of returning the cache")
	}
	p32 := m.PreparePackedF32()
	if p32 == nil || m.PreparePackedF32() != p32 {
		t.Fatal("PreparePackedF32 cache broken")
	}

	packDisabled = true
	if m.PreparePacked() != nil || m.PreparePackedF32() != nil {
		t.Fatal("REPRO_NOPACK must yield nil panels")
	}
	packDisabled = false
	if m.PreparePacked() != p1 {
		t.Fatal("re-enabling packing must restore the cached panels")
	}

	// Structural pin: the default fleet engines really step on panels
	// (both precisions), and the kill-switch really drops them.
	fe := newFleetEngine(m, 1, PrecisionF64)
	if !fe.ff.(*nn.Fleet).Packed() || !fe.lf.(*nn.Fleet).Packed() {
		t.Fatal("f64 fleet engine is not stepping on packed panels")
	}
	fe32 := newFleetEngine(m, 1, PrecisionF32)
	if !fe32.ff.(*nn.Fleet32).Packed() || !fe32.lf.(*nn.Fleet32).Packed() {
		t.Fatal("f32 fleet engine is not stepping on packed panels")
	}
	packDisabled = true
	fe = newFleetEngine(m, 1, PrecisionF64)
	if fe.ff.(*nn.Fleet).Packed() || fe.lf.(*nn.Fleet).Packed() {
		t.Fatal("REPRO_NOPACK fleet engine still stepping on panels")
	}
}

// TestPackedDecodeByteIdentity is the tentpole acceptance pin inside
// the process: every engine kind × precision produces byte-identical
// traces with packing on and off (the REPRO_NOASM legs of the same
// matrix run via the scripts/check.sh environment tiers). The f64
// serial engine doubles as the honest unpacked scalar reference.
func TestPackedDecodeByteIdentity(t *testing.T) {
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	const n = 5
	seeds := make([]int64, n)
	src := rng.New(41)
	for i := range seeds {
		seeds[i] = src.Int63()
	}

	type cell struct {
		kind EngineKind
		prec Precision
	}
	var cells []cell
	for _, kind := range EngineKinds() {
		for _, prec := range []Precision{PrecisionF64, PrecisionF32} {
			cells = append(cells, cell{kind, prec})
		}
	}

	// Decode the full matrix plus the batch entry points under one
	// kill-switch state. A fresh model per state keeps cache contents
	// honest (a stale shared cache could mask a broken rebuild).
	decodeAll := func(t *testing.T) map[string][][]byte {
		m := tinyGenModel()
		got := make(map[string][][]byte)
		for _, c := range cells {
			eng, err := NewGenEngine(m, EngineSpec{Kind: c.kind, MaxBatch: 4, Shards: 2, Precision: c.prec})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.kind, c.prec, err)
			}
			var out [][]byte
			for _, seed := range seeds {
				tr, err := eng.Generate(context.Background(), rng.New(seed), w, 0)
				if err != nil {
					t.Fatalf("%s/%s: %v", c.kind, c.prec, err)
				}
				out = append(out, traceBytes(t, tr))
			}
			eng.Close()
			got[string(c.kind)+"/"+string(c.prec)] = out
		}
		for _, tr := range m.GenerateBatch(splitStreams(7, n), w) {
			got["batch/f64"] = append(got["batch/f64"], traceBytes(t, tr))
		}
		for _, tr := range m.GenerateBatchSharded(splitStreams(7, n), w, 3) {
			got["shardbatch/f64"] = append(got["shardbatch/f64"], traceBytes(t, tr))
		}
		for _, tr := range m.GenerateBatchF32(splitStreams(7, n), w) {
			got["batch/f32"] = append(got["batch/f32"], traceBytes(t, tr))
		}
		for _, tr := range m.GenerateBatchShardedF32(splitStreams(7, n), w, 3) {
			got["shardbatch/f32"] = append(got["shardbatch/f32"], traceBytes(t, tr))
		}
		return got
	}

	var packed, unpacked map[string][][]byte
	withPackDisabled(t, false, func(t *testing.T) { packed = decodeAll(t) })
	withPackDisabled(t, true, func(t *testing.T) { unpacked = decodeAll(t) })

	if len(packed) != len(unpacked) {
		t.Fatalf("cell count mismatch: %d vs %d", len(packed), len(unpacked))
	}
	for key, want := range unpacked {
		got := packed[key]
		if len(got) != len(want) {
			t.Fatalf("%s: stream count mismatch", key)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s stream %d: packed decode differs from unpacked", key, i)
			}
		}
	}
}
