package core

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/trace"
)

// Float32 serving fast path (DESIGN.md §6.4): the decode engines can
// run their LSTM step GEMMs in float32 (nn.Fleet32) instead of the
// bit-exact float64 reference (nn.Fleet). The f32 path keeps every
// determinism property — per-stream bytes independent of batch
// composition, engine kind, and worker count — but trades bit-parity
// with the f64 path for roughly 2× arithmetic density. Everything
// around the nets (arrival GLM, samplers, softmax/sigmoid heads,
// survival math) stays float64, so divergence enters only through the
// narrowed weights and states and is bounded by ValidateF32 at
// publish time.

// Precision selects the numeric width of a decode engine's LSTM fast
// path. The zero value means PrecisionF64.
type Precision string

const (
	// PrecisionF64 is the bit-exact reference path: every decode is
	// byte-identical to the serial Model.Generate.
	PrecisionF64 Precision = "f64"
	// PrecisionF32 runs the fleet step GEMMs on float32 weight slabs
	// (converted once at PrepareF32). All f32 engines of one model
	// produce identical bytes to each other; they differ from the f64
	// path within the ValidateF32 tolerances.
	PrecisionF32 Precision = "f32"
)

// normalize maps the zero value to the f64 default.
func (p Precision) normalize() Precision {
	if p == "" {
		return PrecisionF64
	}
	return p
}

// ValidPrecision reports whether name selects a known precision (""
// is valid and means f64, mirroring ValidEngineKind's treatment of
// the default).
func ValidPrecision(name string) bool {
	switch Precision(name) {
	case "", PrecisionF64, PrecisionF32:
		return true
	}
	return false
}

// Precisions lists the selectable precisions in preference order.
func Precisions() []Precision { return []Precision{PrecisionF64, PrecisionF32} }

// ModelF32 holds the float32 conversion of the model's two LSTMs. The
// arrival GLM is deliberately absent: rate regression stays float64 on
// every path, so arrival-rate divergence between precisions is zero by
// construction.
type ModelF32 struct {
	Flavor   *nn.LSTM32
	Lifetime *nn.LSTM32
}

// PrepareF32 converts the model's LSTM weights to float32 slabs once
// and caches the result on the model; later calls (and shallow Model
// copies, which share the cache pointer) return the same conversion.
// The first call mutates the model and must happen before the model is
// shared across goroutines — engine constructors and the batch entry
// points call it eagerly for exactly that reason.
func (m *Model) PrepareF32() *ModelF32 {
	if m.f32 == nil {
		m.f32 = &ModelF32{
			Flavor:   m.Flavor.Net.Convert32(),
			Lifetime: m.Lifetime.Net.Convert32(),
		}
	}
	return m.f32
}

// Published f32 tolerances (DESIGN.md §6.4): ValidateF32 enforces
// these at publish time, and the f32 property tests pin them. They are
// deliberately loose relative to the ~1e-6 divergence observed on
// trained models — they bound pathology (a broken kernel or
// conversion), not round-off.
const (
	// F32ProbTol bounds the per-step max |Δ| of the flavor softmax
	// probabilities under teacher forcing.
	F32ProbTol = 1e-3
	// F32HazardTol bounds the per-step max |Δ| of the lifetime
	// sigmoid hazards under teacher forcing.
	F32HazardTol = 1e-3
	// F32SurvivalTol bounds the max |Δ| of the survival curves implied
	// by those hazards (hazard errors compound multiplicatively across
	// bins, hence the looser bound).
	F32SurvivalTol = 5e-3
)

// calibrationSeed drives ValidateF32's teacher-forced input sequence;
// fixed so publish-time validation is reproducible across processes.
const calibrationSeed = 0x5EED

// calibrationSteps is the default teacher-forced step count; long
// enough for recurrent state drift to surface, short enough to run on
// every publish.
const calibrationSteps = 256

// F32Report summarizes the teacher-forced divergence between the f64
// and f32 decode paths.
type F32Report struct {
	Steps int
	// MaxProbDiff is the max |Δ| of flavor softmax probabilities.
	MaxProbDiff float64
	// MaxHazardDiff is the max |Δ| of lifetime sigmoid hazards.
	MaxHazardDiff float64
	// MaxSurvivalDiff is the max |Δ| of the survival curves implied by
	// the per-step hazards.
	MaxSurvivalDiff float64
	// MaxRateDiff is the max |Δ| of the per-period arrival rates. It
	// is identically zero: the arrival GLM is shared float64 code on
	// both paths (ModelF32 has no arrival member to diverge).
	MaxRateDiff float64
}

// F32Divergence measures the f32 path's drift from the f64 reference
// by teacher forcing: both nets receive the identical input sequence
// (tokens sampled from the f64 distributions by a fixed-seed RNG), so
// the comparison isolates numeric divergence from sampling divergence.
// steps <= 0 selects the calibration default.
func (m *Model) F32Divergence(steps int) F32Report {
	if steps <= 0 {
		steps = calibrationSteps
	}
	f32 := m.PrepareF32()
	g := rng.New(calibrationSeed)
	rep := F32Report{Steps: steps}
	rows := []int{0}

	// Flavor stage: free-run the f64 chain, shadow it with the f32 net.
	ff64 := m.Flavor.Net.NewFleet(1)
	ff32 := f32.Flavor.NewFleet32(1)
	ff64.Admit()
	ff32.Admit()
	k := m.Flavor.K
	probs64 := make([]float64, k+1)
	probs32 := make([]float64, k+1)
	prevTok := EOBToken(k)
	p0 := m.Flavor.HistoryDays * trace.PeriodsPerDay
	curDay := -1
	dohDay := 0
	for t := 0; t < steps; t++ {
		p := p0 + t
		if d := trace.DayOfHistory(p); d != curDay {
			curDay = d
			dohDay = m.Arrival.DOH.Sample(g)
		}
		m.Flavor.encodeFlavorInput(ff64.InputRow(0), prevTok, p, dohDay)
		m.Flavor.encodeFlavorInput(ff32.InputRow(0), prevTok, p, dohDay)
		nn.SoftmaxIntoVec(ff64.Step(rows).Row(0), probs64)
		nn.SoftmaxIntoVec(ff32.Step(rows).Row(0), probs32)
		for j := range probs64 {
			if d := math.Abs(probs64[j] - probs32[j]); d > rep.MaxProbDiff || math.IsNaN(d) {
				rep.MaxProbDiff = d
			}
		}
		prevTok = g.Categorical(probs64)
	}

	// Lifetime stage: teacher-forced job steps with f64-sampled bins
	// fed back into both nets.
	lf64 := m.Lifetime.Net.NewFleet(1)
	lf32 := f32.Lifetime.NewFleet32(1)
	lf64.Admit()
	lf32.Admit()
	j := m.Lifetime.Bins.J()
	hz64 := make([]float64, j)
	hz32 := make([]float64, j)
	s64 := make([]float64, j)
	s32 := make([]float64, j)
	prevBin, prevCens := -1, false
	for t := 0; t < steps; t++ {
		step := LifetimeStep{
			Period:    p0 + t,
			Flavor:    g.Intn(k),
			BatchSize: 1 + g.Intn(8),
		}
		m.Lifetime.encodeLifetimeInput(lf64.InputRow(0), step, dohDay, prevBin, prevCens)
		m.Lifetime.encodeLifetimeInput(lf32.InputRow(0), step, dohDay, prevBin, prevCens)
		nn.SigmoidIntoVec(lf64.Step(rows).Row(0), hz64)
		nn.SigmoidIntoVec(lf32.Step(rows).Row(0), hz32)
		survival.HazardToSurvivalInto(s64, hz64)
		survival.HazardToSurvivalInto(s32, hz32)
		for b := range hz64 {
			if d := math.Abs(hz64[b] - hz32[b]); d > rep.MaxHazardDiff || math.IsNaN(d) {
				rep.MaxHazardDiff = d
			}
			if d := math.Abs(s64[b] - s32[b]); d > rep.MaxSurvivalDiff || math.IsNaN(d) {
				rep.MaxSurvivalDiff = d
			}
		}
		prevBin, prevCens = survival.SampleBin(hz64, g), false
	}
	return rep
}

// ValidateF32 runs the calibration divergence measurement and checks
// it against the published tolerances. Serving setups that select
// PrecisionF32 call this once at publish/load time so a broken kernel
// or conversion fails the rollout, not a downstream consumer.
func (m *Model) ValidateF32() (F32Report, error) {
	rep := m.F32Divergence(0)
	switch {
	case !(rep.MaxProbDiff <= F32ProbTol):
		return rep, fmt.Errorf("core: f32 flavor prob divergence %g exceeds tolerance %g", rep.MaxProbDiff, float64(F32ProbTol))
	case !(rep.MaxHazardDiff <= F32HazardTol):
		return rep, fmt.Errorf("core: f32 hazard divergence %g exceeds tolerance %g", rep.MaxHazardDiff, float64(F32HazardTol))
	case !(rep.MaxSurvivalDiff <= F32SurvivalTol):
		return rep, fmt.Errorf("core: f32 survival divergence %g exceeds tolerance %g", rep.MaxSurvivalDiff, float64(F32SurvivalTol))
	case rep.MaxRateDiff != 0:
		return rep, fmt.Errorf("core: f32 arrival rate divergence %g, want exactly 0", rep.MaxRateDiff)
	}
	return rep, nil
}
