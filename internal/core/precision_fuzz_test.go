package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

// fuzzF32 builds the tiny model once, round-trips it through the
// serving-snapshot serialization, and prepares both models' f32
// conversions; the fuzz body only decodes.
var fuzzF32 = sync.OnceValues(func() (*Model, *Model) {
	m := tinyGenModel()
	blob, err := m.MarshalBinary()
	if err != nil {
		panic(err)
	}
	restored := &Model{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		panic(err)
	}
	m.PrepareF32()
	restored.PrepareF32()
	return m, restored
})

// FuzzSnapshotDecodeF32 fuzzes the f32 decode of a model restored from
// its serving snapshot: for arbitrary (seed, window length, scale) the
// restored model's f32 decode must be byte-identical to the original
// model's (snapshot round-trip loses nothing the f32 conversion sees),
// deterministic across repeated decodes, and structurally valid.
func FuzzSnapshotDecodeF32(f *testing.F) {
	f.Add(int64(1), uint8(16), float64(1))
	f.Add(int64(-7), uint8(1), float64(0))
	f.Add(int64(1<<62), uint8(255), float64(2.5))
	f.Add(int64(0x5EED), uint8(64), float64(0.1))
	f.Fuzz(func(t *testing.T, seed int64, periods uint8, scale float64) {
		if scale < 0 || scale != scale || scale > 4 {
			t.Skip("scale outside serving bounds")
		}
		m, restored := fuzzF32()
		w := trace.Window{Start: 0, End: 1 + int(periods)%(2*trace.PeriodsPerDay)}
		decode := func(mm *Model) []byte {
			mm = &Model{Arrival: mm.Arrival, Flavor: mm.Flavor, Lifetime: mm.Lifetime,
				Interp: mm.Interp, RateScale: scale, f32: mm.f32}
			out := mm.GenerateBatchF32([]*rng.RNG{rng.New(seed)}, w)
			var buf bytes.Buffer
			if err := out[0].WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		got := decode(m)
		if again := decode(m); !bytes.Equal(got, again) {
			t.Fatal("f32 decode is not deterministic for one seed")
		}
		if fromSnapshot := decode(restored); !bytes.Equal(got, fromSnapshot) {
			t.Fatal("f32 decode of the restored snapshot differs from the original model")
		}
		// Structural validity of the decoded trace.
		out := m.GenerateBatchF32([]*rng.RNG{rng.New(seed)}, w)
		for _, vm := range out[0].VMs {
			if vm.Start < 0 || vm.Start >= w.Periods() {
				t.Fatalf("VM start %d outside window of %d periods", vm.Start, w.Periods())
			}
			if !(vm.Duration >= 0) {
				t.Fatalf("VM duration %v negative or NaN", vm.Duration)
			}
		}
	})
}
