package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/trace"
)

// tinyGenModel assembles the untrained tiny three-stage model the
// engine tests use, as a full Model.
func tinyGenModel() *Model {
	fm, lm := tinyGenModels()
	return &Model{Arrival: testArrivalModel(1.5), Flavor: fm, Lifetime: lm}
}

// TestPrecisionRegistryMatrix drives every (engine kind × precision)
// cell of the registry over the same seeds and pins the two
// determinism contracts: f64 engines are byte-identical to the serial
// Model.Generate, and f32 engines of every kind are byte-identical to
// each other (GenerateBatchF32 is the f32 reference).
func TestPrecisionRegistryMatrix(t *testing.T) {
	m := tinyGenModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	const n = 6
	seeds := make([]int64, n)
	f64Ref := make([][]byte, n)
	f32Ref := make([][]byte, n)
	src := rng.New(77)
	for i := range seeds {
		seeds[i] = src.Int63()
		f64Ref[i] = traceBytes(t, m.Generate(rng.New(seeds[i]), w))
		out := m.GenerateBatchF32([]*rng.RNG{rng.New(seeds[i])}, w)
		f32Ref[i] = traceBytes(t, out[0])
	}
	// Sampling can mask tiny logit drift (an untrained model's f32
	// bytes often coincide with f64), so guard against a disconnected
	// fast path structurally: the f32 fleet engine must be running
	// nn.Fleet32 steps, not the f64 fleets.
	fe := newFleetEngine(m, 1, PrecisionF32)
	if _, ok := fe.ff.(*nn.Fleet32); !ok {
		t.Fatalf("f32 fleet engine is stepping %T, want *nn.Fleet32", fe.ff)
	}
	if _, ok := fe.lf.(*nn.Fleet32); !ok {
		t.Fatalf("f32 fleet engine is stepping %T, want *nn.Fleet32", fe.lf)
	}
	for _, kind := range EngineKinds() {
		for _, prec := range []Precision{"", PrecisionF64, PrecisionF32} {
			eng, err := NewGenEngine(m, EngineSpec{Kind: kind, MaxBatch: 4, Shards: 2, Precision: prec})
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, prec, err)
			}
			want := f64Ref
			if prec == PrecisionF32 {
				want = f32Ref
			}
			for i, seed := range seeds {
				tr, err := eng.Generate(context.Background(), rng.New(seed), w, 0)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", kind, prec, seed, err)
				}
				if got := traceBytes(t, tr); !bytes.Equal(got, want[i]) {
					t.Fatalf("%s/%s stream %d: trace differs from the %s reference", kind, prec, i, prec.normalize())
				}
			}
			eng.Close()
		}
	}
	if _, err := NewGenEngine(m, EngineSpec{Precision: "f16"}); err == nil {
		t.Fatal("NewGenEngine accepted unknown precision f16")
	}
}

// TestGenerateBatchF32ShardInvariance pins the f32 batch-composition
// contract: sharded f32 decode is byte-identical to the flat f32 batch
// at every shard count (the same invariance the f64 sharding rests
// on).
func TestGenerateBatchF32ShardInvariance(t *testing.T) {
	m := tinyGenModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	const n = 12
	src := rng.New(99)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = src.Int63()
	}
	mkStreams := func() []*rng.RNG {
		gs := make([]*rng.RNG, n)
		for i, s := range seeds {
			gs[i] = rng.New(s)
		}
		return gs
	}
	ref := m.GenerateBatchF32(mkStreams(), w)
	for _, shards := range []int{1, 2, 3, 4} {
		out := m.GenerateBatchShardedF32(mkStreams(), w, shards)
		for i := range out {
			if !bytes.Equal(traceBytes(t, out[i]), traceBytes(t, ref[i])) {
				t.Fatalf("shards=%d stream %d: sharded f32 trace differs from flat f32 batch", shards, i)
			}
		}
	}
}

// TestF32DivergenceWithinTolerance is the property test for the
// published precision policy, on the trained integration fixture: the
// teacher-forced f32 divergence of flavor probabilities, hazards, and
// survival curves stays within the documented tolerances, arrival
// rates diverge by exactly zero, and the measurement is not vacuous
// (a trained f32 net must differ from f64 somewhere).
func TestF32DivergenceWithinTolerance(t *testing.T) {
	f := getFixture(t)
	rep, err := f.model.ValidateF32()
	if err != nil {
		t.Fatalf("trained model fails the published f32 tolerance: %v", err)
	}
	if rep.MaxProbDiff == 0 || rep.MaxHazardDiff == 0 {
		t.Fatalf("f32 divergence identically zero (prob %v, hazard %v): comparison is vacuous", rep.MaxProbDiff, rep.MaxHazardDiff)
	}
	if rep.MaxRateDiff != 0 {
		t.Fatalf("arrival-rate divergence %v, want exactly 0 (shared f64 GLM)", rep.MaxRateDiff)
	}
	t.Logf("f32 divergence over %d steps: prob %.3g (tol %g), hazard %.3g (tol %g), survival %.3g (tol %g)",
		rep.Steps, rep.MaxProbDiff, float64(F32ProbTol), rep.MaxHazardDiff, float64(F32HazardTol),
		rep.MaxSurvivalDiff, float64(F32SurvivalTol))
}

// TestValidateF32RejectsBrokenConversion plants a wrong f32 conversion
// (another net's weights) and checks ValidateF32 refuses it — the
// publish-time gate must actually be able to fail.
func TestValidateF32RejectsBrokenConversion(t *testing.T) {
	m := tinyGenModel()
	// A conversion of differently-initialized weights of the same
	// shapes: outputs land far outside any rounding tolerance.
	badF := nn.NewLSTM(m.Flavor.Net.Cfg, rng.New(1001))
	badL := nn.NewLSTM(m.Lifetime.Net.Cfg, rng.New(1002))
	m.f32 = &ModelF32{Flavor: badF.Convert32(), Lifetime: badL.Convert32()}
	if _, err := m.ValidateF32(); err == nil {
		t.Fatal("ValidateF32 accepted a conversion of the wrong weights")
	}
}

// TestEngineF32ConcurrentDeterministic exercises the f32 batched
// engine under concurrency: every response must equal the f32
// reference decode of its seed regardless of batching. Run under
// -race via scripts/check.sh.
func TestEngineF32ConcurrentDeterministic(t *testing.T) {
	m := tinyGenModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	eng, err := NewGenEngine(m, EngineSpec{Kind: EngineBatched, Window: time.Millisecond, MaxBatch: 4, Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const n = 12
	refs := make([][]byte, n)
	for i := 0; i < n; i++ {
		out := m.GenerateBatchF32([]*rng.RNG{rng.New(int64(i + 1))}, w)
		refs[i] = traceBytes(t, out[0])
	}
	errs := make(chan error, n)
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			tr, err := eng.Generate(context.Background(), rng.New(int64(i+1)), w, 0)
			if err != nil {
				errs <- err
				return
			}
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				errs <- err
				return
			}
			results[i] = buf.Bytes()
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := range results {
		if !bytes.Equal(results[i], refs[i]) {
			t.Fatalf("stream %d: concurrent f32 decode differs from f32 reference", i)
		}
	}
}
