package core

import (
	"math"

	"repro/internal/survival"
	"repro/internal/trace"
)

// FlavorPredictor scores next-flavor predictions for Table 2. Probs may
// return nil for non-probabilistic predictors (RepeatFlav), in which
// case only the 1-best metric is defined. absPeriod is the absolute
// period index (test window offset + local period) so temporal features
// stay phase-aligned with training.
type FlavorPredictor interface {
	Name() string
	Reset()
	Probs(absPeriod int) []float64
	Predict(absPeriod int) int
	Observe(token int)
}

// UniformFlavor predicts all K+1 tokens equally (Table 2 "Uniform").
type UniformFlavor struct{ K int }

// Name implements FlavorPredictor.
func (u *UniformFlavor) Name() string { return "Uniform" }

// Reset implements FlavorPredictor.
func (u *UniformFlavor) Reset() {}

// Probs implements FlavorPredictor.
func (u *UniformFlavor) Probs(int) []float64 {
	p := make([]float64, u.K+1)
	for i := range p {
		p[i] = 1 / float64(u.K+1)
	}
	return p
}

// Predict implements FlavorPredictor.
func (u *UniformFlavor) Predict(int) int { return 0 }

// Observe implements FlavorPredictor.
func (u *UniformFlavor) Observe(int) {}

// MultinomialFlavor predicts each token by its empirical frequency in
// training data (Table 2 "Multinomial" — the traditional
// independent-arrival model).
type MultinomialFlavor struct {
	probs []float64
	best  int
}

// NewMultinomialFlavor estimates token frequencies (flavors and EOB)
// from the training trace with add-one smoothing.
func NewMultinomialFlavor(train *trace.Trace) *MultinomialFlavor {
	k := train.Flavors.K()
	counts := make([]float64, k+1)
	for i := range counts {
		counts[i] = 1 // Laplace smoothing
	}
	for _, tok := range FlavorTokens(train) {
		counts[tok.Token]++
	}
	var total float64
	for _, c := range counts {
		total += c
	}
	m := &MultinomialFlavor{probs: counts}
	for i := range m.probs {
		m.probs[i] /= total
		if m.probs[i] > m.probs[m.best] {
			m.best = i
		}
	}
	return m
}

// Name implements FlavorPredictor.
func (m *MultinomialFlavor) Name() string { return "Multinomial" }

// Reset implements FlavorPredictor.
func (m *MultinomialFlavor) Reset() {}

// Probs implements FlavorPredictor.
func (m *MultinomialFlavor) Probs(int) []float64 { return m.probs }

// Predict implements FlavorPredictor.
func (m *MultinomialFlavor) Predict(int) int { return m.best }

// Observe implements FlavorPredictor.
func (m *MultinomialFlavor) Observe(int) {}

// RepeatFlavor always predicts the previous token, defaulting to the
// most frequent training flavor after an EOB (Table 2 "RepeatFlav" —
// after an end-of-batch the next token is always a flavor, so the
// multinomial fallback is taken over flavors only). It is
// non-probabilistic: Probs returns nil.
type RepeatFlavor struct {
	K          int
	bestFlavor int
	prev       int
}

// NewRepeatFlavor builds the baseline from training data.
func NewRepeatFlavor(train *trace.Trace) *RepeatFlavor {
	r := &RepeatFlavor{K: train.Flavors.K()}
	counts := make([]int, r.K)
	for _, vm := range train.VMs {
		counts[vm.Flavor]++
	}
	for f, c := range counts {
		if c > counts[r.bestFlavor] {
			r.bestFlavor = f
		}
	}
	r.Reset()
	return r
}

// Name implements FlavorPredictor.
func (r *RepeatFlavor) Name() string { return "RepeatFlav" }

// Reset implements FlavorPredictor.
func (r *RepeatFlavor) Reset() { r.prev = EOBToken(r.K) }

// Probs implements FlavorPredictor.
func (r *RepeatFlavor) Probs(int) []float64 { return nil }

// Predict implements FlavorPredictor.
func (r *RepeatFlavor) Predict(int) int {
	if r.prev == EOBToken(r.K) {
		return r.bestFlavor
	}
	return r.prev
}

// Observe implements FlavorPredictor.
func (r *RepeatFlavor) Observe(token int) { r.prev = token }

// LSTMFlavorPredictor wraps the trained flavor LSTM for teacher-forced
// evaluation.
type LSTMFlavorPredictor struct {
	m  *FlavorModel
	st *flavorState
}

// NewLSTMFlavorPredictor wraps m.
func NewLSTMFlavorPredictor(m *FlavorModel) *LSTMFlavorPredictor {
	return &LSTMFlavorPredictor{m: m, st: m.newFlavorState()}
}

// Name implements FlavorPredictor.
func (l *LSTMFlavorPredictor) Name() string { return "LSTM" }

// Reset implements FlavorPredictor (in place; no reallocation).
func (l *LSTMFlavorPredictor) Reset() { l.st.reset() }

// Probs implements FlavorPredictor. The DOH day is the period's actual
// day, clamped to the training history (i.e. the last training day for
// test periods beyond it).
func (l *LSTMFlavorPredictor) Probs(absPeriod int) []float64 {
	return l.st.probs(absPeriod, trace.DayOfHistory(absPeriod))
}

// Predict implements FlavorPredictor. Callers must use the Probs result
// via EvaluateFlavor; Predict alone would advance the LSTM twice, so it
// is only meaningful for non-probabilistic baselines.
func (l *LSTMFlavorPredictor) Predict(absPeriod int) int {
	return argmax(l.Probs(absPeriod))
}

// Observe implements FlavorPredictor.
func (l *LSTMFlavorPredictor) Observe(token int) { l.st.observe(token) }

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// FlavorEval holds Table 2's per-system metrics.
type FlavorEval struct {
	NLL        float64
	OneBestErr float64
	HasNLL     bool
	Steps      int
}

// EvaluateFlavor runs teacher-forced next-token evaluation over the test
// token stream (metrics of §5.2). offset is the absolute period index of
// the test window start.
func EvaluateFlavor(pred FlavorPredictor, toks []FlavorToken, offset int) FlavorEval {
	pred.Reset()
	var nll float64
	var errs, steps int
	probabilistic := true
	for _, tok := range toks {
		abs := offset + tok.Period
		p := pred.Probs(abs)
		var pick int
		if p == nil {
			probabilistic = false
			pick = pred.Predict(abs)
		} else {
			nll += -math.Log(math.Max(p[tok.Token], 1e-300))
			pick = argmax(p)
		}
		if pick != tok.Token {
			errs++
		}
		steps++
		pred.Observe(tok.Token)
	}
	ev := FlavorEval{Steps: steps, HasNLL: probabilistic}
	if steps > 0 {
		ev.OneBestErr = float64(errs) / float64(steps)
		if probabilistic {
			ev.NLL = nll / float64(steps)
		}
	}
	return ev
}

// LifetimePredictor scores next-lifetime predictions for Table 3.
// Hazard may return nil for non-probabilistic predictors
// (RepeatLifetime), in which case only the 1-best metric is defined.
type LifetimePredictor interface {
	Name() string
	Reset()
	Hazard(step LifetimeStep, absPeriod int) []float64
	PredictBin(step LifetimeStep) int
	Observe(step LifetimeStep)
}

// CoinFlipLifetime assumes 50% hazard in every bin (Table 3 "CoinFlip").
type CoinFlipLifetime struct{ J int }

// Name implements LifetimePredictor.
func (c *CoinFlipLifetime) Name() string { return "CoinFlip" }

// Reset implements LifetimePredictor.
func (c *CoinFlipLifetime) Reset() {}

// Hazard implements LifetimePredictor.
func (c *CoinFlipLifetime) Hazard(LifetimeStep, int) []float64 {
	h := make([]float64, c.J)
	for i := range h {
		h[i] = 0.5
	}
	return h
}

// PredictBin implements LifetimePredictor.
func (c *CoinFlipLifetime) PredictBin(LifetimeStep) int { return 0 }

// Observe implements LifetimePredictor.
func (c *CoinFlipLifetime) Observe(LifetimeStep) {}

// KMLifetime predicts the pooled Kaplan-Meier hazard for every job
// (Table 3 "Overall KM").
type KMLifetime struct {
	hazard []float64
	best   int
}

// NewKMLifetime estimates the pooled discrete hazard from the training
// trace.
func NewKMLifetime(train *trace.Trace, bins survival.Bins) *KMLifetime {
	obs := traceObservations(train)
	h := survival.KaplanMeier(obs, bins)
	return &KMLifetime{hazard: h, best: argmax(survival.HazardToPMF(h))}
}

// Name implements LifetimePredictor.
func (k *KMLifetime) Name() string { return "Overall KM" }

// Reset implements LifetimePredictor.
func (k *KMLifetime) Reset() {}

// Hazard implements LifetimePredictor.
func (k *KMLifetime) Hazard(LifetimeStep, int) []float64 { return k.hazard }

// PredictBin implements LifetimePredictor.
func (k *KMLifetime) PredictBin(LifetimeStep) int { return k.best }

// Observe implements LifetimePredictor.
func (k *KMLifetime) Observe(LifetimeStep) {}

// PerFlavorKMLifetime predicts the flavor-specific Kaplan-Meier hazard
// (Table 3 "Per-flavor KM"), falling back to the pooled hazard for
// flavors unseen in training.
type PerFlavorKMLifetime struct {
	hazards map[int][]float64
}

// perFlavorShrinkage is the pseudo-count pulling sparse per-flavor
// hazards toward the pooled hazard (see survival.KaplanMeierGroupedShrunk).
const perFlavorShrinkage = 5

// NewPerFlavorKMLifetime estimates per-flavor hazards from the training
// trace, with light shrinkage toward the pooled hazard so rare flavors
// do not produce degenerate 0/1 hazards at sub-paper sample sizes.
func NewPerFlavorKMLifetime(train *trace.Trace, bins survival.Bins) *PerFlavorKMLifetime {
	obs := traceObservations(train)
	groups := make([]int, len(train.VMs))
	for i, vm := range train.VMs {
		groups[i] = vm.Flavor
	}
	return &PerFlavorKMLifetime{
		hazards: survival.KaplanMeierGroupedShrunk(obs, groups, bins, perFlavorShrinkage),
	}
}

// Name implements LifetimePredictor.
func (p *PerFlavorKMLifetime) Name() string { return "Per-flavor KM" }

// Reset implements LifetimePredictor.
func (p *PerFlavorKMLifetime) Reset() {}

// Hazard implements LifetimePredictor.
func (p *PerFlavorKMLifetime) Hazard(step LifetimeStep, _ int) []float64 {
	if h, ok := p.hazards[step.Flavor]; ok {
		return h
	}
	return p.hazards[-1]
}

// PredictBin implements LifetimePredictor.
func (p *PerFlavorKMLifetime) PredictBin(step LifetimeStep) int {
	return argmax(survival.HazardToPMF(p.Hazard(step, 0)))
}

// Observe implements LifetimePredictor.
func (p *PerFlavorKMLifetime) Observe(LifetimeStep) {}

// RepeatLifetime predicts the previous VM's lifetime bin, defaulting to
// the overall KM mode for the first job of each batch (Table 3
// "RepeatLifetime"). Non-probabilistic.
type RepeatLifetime struct {
	km      *KMLifetime
	prevBin int
	hasPrev bool
}

// NewRepeatLifetime builds the baseline from training data.
func NewRepeatLifetime(train *trace.Trace, bins survival.Bins) *RepeatLifetime {
	return &RepeatLifetime{km: NewKMLifetime(train, bins)}
}

// Name implements LifetimePredictor.
func (r *RepeatLifetime) Name() string { return "RepeatLifetime" }

// Reset implements LifetimePredictor.
func (r *RepeatLifetime) Reset() { r.hasPrev = false }

// Hazard implements LifetimePredictor.
func (r *RepeatLifetime) Hazard(LifetimeStep, int) []float64 { return nil }

// PredictBin implements LifetimePredictor.
func (r *RepeatLifetime) PredictBin(step LifetimeStep) int {
	if step.FirstInBatch || !r.hasPrev {
		return r.km.best
	}
	return r.prevBin
}

// Observe implements LifetimePredictor.
func (r *RepeatLifetime) Observe(step LifetimeStep) {
	r.prevBin, r.hasPrev = step.Bin, true
}

// LSTMLifetimePredictor wraps the trained hazard LSTM for teacher-forced
// evaluation.
type LSTMLifetimePredictor struct {
	m  *LifetimeModel
	st *lifetimeState
}

// NewLSTMLifetimePredictor wraps m.
func NewLSTMLifetimePredictor(m *LifetimeModel) *LSTMLifetimePredictor {
	return &LSTMLifetimePredictor{m: m, st: m.newLifetimeState()}
}

// Name implements LifetimePredictor.
func (l *LSTMLifetimePredictor) Name() string { return "LSTM" }

// Reset implements LifetimePredictor (in place; no reallocation).
func (l *LSTMLifetimePredictor) Reset() { l.st.reset() }

// Hazard implements LifetimePredictor. Each call advances the LSTM one
// step; call exactly once per step, before Observe.
func (l *LSTMLifetimePredictor) Hazard(step LifetimeStep, absPeriod int) []float64 {
	local := step
	local.Period = absPeriod
	return l.st.hazard(local, trace.DayOfHistory(absPeriod))
}

// PredictBin implements LifetimePredictor (unused for probabilistic
// predictors; EvaluateLifetime derives 1-best from Hazard).
func (l *LSTMLifetimePredictor) PredictBin(LifetimeStep) int { return 0 }

// Observe implements LifetimePredictor.
func (l *LSTMLifetimePredictor) Observe(step LifetimeStep) {
	l.st.observe(step.Bin, step.Censored)
}

// LifetimeEval holds Table 3's per-system metrics.
type LifetimeEval struct {
	BCE        float64
	OneBestErr float64
	HasBCE     bool
	Steps      int // uncensored steps scored by 1-best
	Outputs    int // unmasked outputs scored by BCE
}

// EvaluateLifetime runs teacher-forced evaluation over the test job
// sequence (metrics of §5.3). Censored jobs contribute their masked BCE
// terms but are excluded from the 1-best error.
func EvaluateLifetime(pred LifetimePredictor, steps []LifetimeStep, bins survival.Bins, offset int) LifetimeEval {
	pred.Reset()
	j := bins.J()
	target := make([]float64, j)
	mask := make([]float64, j)
	var bce float64
	var outputs, errs, scored int
	probabilistic := true
	for _, step := range steps {
		abs := offset + step.Period
		h := pred.Hazard(step, abs)
		var pick int
		if h == nil {
			probabilistic = false
			pick = pred.PredictBin(step)
		} else {
			lifetimeTargets(target, mask, step)
			for i := 0; i < j; i++ {
				if mask[i] == 0 {
					continue
				}
				p := math.Min(math.Max(h[i], 1e-12), 1-1e-12)
				if target[i] == 1 {
					bce += -math.Log(p)
				} else {
					bce += -math.Log(1 - p)
				}
				outputs++
			}
			pick = argmax(survival.HazardToPMF(h))
		}
		if !step.Censored {
			if pick != step.Bin {
				errs++
			}
			scored++
		}
		pred.Observe(step)
	}
	ev := LifetimeEval{Steps: scored, Outputs: outputs, HasBCE: probabilistic}
	if scored > 0 {
		ev.OneBestErr = float64(errs) / float64(scored)
	}
	if probabilistic && outputs > 0 {
		ev.BCE = bce / float64(outputs)
	}
	return ev
}

// TeacherForcedHazards returns the LSTM's hazard for every step of a
// test sequence under teacher forcing — the per-job survival curves used
// by the Table 4 Survival-MSE evaluation.
func (m *LifetimeModel) TeacherForcedHazards(steps []LifetimeStep, offset int) [][]float64 {
	st := m.acquireLifetimeState()
	defer m.releaseLifetimeState(st)
	out := make([][]float64, len(steps))
	for i, step := range steps {
		abs := offset + step.Period
		local := step
		local.Period = abs
		// hazard reuses one buffer per state; clone to keep every step.
		out[i] = append([]float64(nil), st.hazard(local, trace.DayOfHistory(abs))...)
		st.observe(step.Bin, step.Censored)
	}
	return out
}

// traceObservations converts a trace's VMs into survival observations.
func traceObservations(tr *trace.Trace) []survival.Observation {
	obs := make([]survival.Observation, len(tr.VMs))
	for i, vm := range tr.VMs {
		obs[i] = survival.Observation{Duration: vm.Duration, Censored: vm.Censored}
	}
	return obs
}
