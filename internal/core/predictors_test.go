package core

import (
	"math"
	"testing"

	"repro/internal/survival"
)

func TestUniformFlavor(t *testing.T) {
	u := &UniformFlavor{K: 16}
	p := u.Probs(0)
	if len(p) != 17 {
		t.Fatalf("len %d", len(p))
	}
	if math.Abs(p[0]-1.0/17.0) > 1e-12 {
		t.Fatalf("probs %v", p[0])
	}
	// Uniform NLL over 17 classes is ln 17 = 2.83 (Table 2, Azure).
	ev := EvaluateFlavor(u, []FlavorToken{{0, 3}, {0, 16}}, 0)
	if math.Abs(ev.NLL-math.Log(17)) > 1e-9 {
		t.Fatalf("uniform NLL = %v, want ln17", ev.NLL)
	}
}

func TestMultinomialFlavor(t *testing.T) {
	tr := tinyTrace()
	m := NewMultinomialFlavor(tr)
	p := m.Probs(0)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum %v", sum)
	}
	// Token counts: flavor0 x2, flavor1 x2, EOB x3 -> EOB is mode.
	if m.Predict(0) != 2 {
		t.Fatalf("mode = %d", m.Predict(0))
	}
}

func TestRepeatFlavor(t *testing.T) {
	tr := tinyTrace()
	r := NewRepeatFlavor(tr)
	if r.Probs(0) != nil {
		t.Fatal("RepeatFlav must be non-probabilistic")
	}
	// At start (prev = EOB) it defaults to the most frequent flavor
	// (flavors 0 and 1 tie at two VMs each; ties keep the lower index).
	if r.Predict(0) != 0 {
		t.Fatalf("default after EOB = %d, want most frequent flavor", r.Predict(0))
	}
	r.Observe(1)
	if r.Predict(0) != 1 {
		t.Fatal("should repeat previous flavor")
	}
	r.Observe(EOBToken(2))
	if r.Predict(0) == EOBToken(2) {
		t.Fatal("after EOB must not predict EOB")
	}
	r.Reset()
	if r.Predict(0) != 0 {
		t.Fatal("reset should restore EOB state")
	}
}

// perfectFlavor is a test predictor that is told the answers.
type perfectFlavor struct {
	answers []int
	i       int
	k       int
}

func (p *perfectFlavor) Name() string { return "Perfect" }
func (p *perfectFlavor) Reset()       { p.i = 0 }
func (p *perfectFlavor) Probs(int) []float64 {
	out := make([]float64, p.k+1)
	out[p.answers[p.i]] = 1
	return out
}
func (p *perfectFlavor) Predict(int) int { return p.answers[p.i] }
func (p *perfectFlavor) Observe(int)     { p.i++ }

func TestEvaluateFlavorPerfect(t *testing.T) {
	toks := []FlavorToken{{0, 1}, {0, 0}, {1, 2}}
	pred := &perfectFlavor{answers: []int{1, 0, 2}, k: 2}
	ev := EvaluateFlavor(pred, toks, 0)
	if ev.OneBestErr != 0 || ev.NLL != 0 || ev.Steps != 3 || !ev.HasNLL {
		t.Fatalf("perfect eval = %+v", ev)
	}
}

func TestEvaluateFlavorEmpty(t *testing.T) {
	ev := EvaluateFlavor(&UniformFlavor{K: 2}, nil, 0)
	if ev.Steps != 0 || ev.NLL != 0 {
		t.Fatalf("empty eval = %+v", ev)
	}
}

func TestCoinFlipLifetime(t *testing.T) {
	c := &CoinFlipLifetime{J: 4}
	h := c.Hazard(LifetimeStep{}, 0)
	for _, v := range h {
		if v != 0.5 {
			t.Fatalf("hazard %v", h)
		}
	}
	// BCE of coin flip is ln 2 = 0.693 (Table 3).
	steps := []LifetimeStep{{Bin: 2}}
	ev := EvaluateLifetime(c, steps, survival.UniformBins(4, 4), 0)
	if math.Abs(ev.BCE-math.Log(2)) > 1e-12 {
		t.Fatalf("coin flip BCE = %v, want ln2", ev.BCE)
	}
}

func TestKMLifetimePredictors(t *testing.T) {
	tr := tinyTrace()
	bins := survival.PaperBins()
	km := NewKMLifetime(tr, bins)
	h := km.Hazard(LifetimeStep{}, 0)
	if len(h) != bins.J() {
		t.Fatalf("hazard len %d", len(h))
	}
	pf := NewPerFlavorKMLifetime(tr, bins)
	h0 := pf.Hazard(LifetimeStep{Flavor: 0}, 0)
	h1 := pf.Hazard(LifetimeStep{Flavor: 1}, 0)
	// Flavor 0 VMs die in small bins, flavor 1 in very large bins: the
	// per-flavor hazards must differ.
	same := true
	for i := range h0 {
		if h0[i] != h1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("per-flavor hazards identical")
	}
	// Unknown flavor falls back to pooled.
	hu := pf.Hazard(LifetimeStep{Flavor: 99}, 0)
	pooled := km.Hazard(LifetimeStep{}, 0)
	for i := range hu {
		if hu[i] != pooled[i] {
			t.Fatal("unknown flavor should use pooled hazard")
		}
	}
}

func TestRepeatLifetime(t *testing.T) {
	tr := tinyTrace()
	bins := survival.PaperBins()
	r := NewRepeatLifetime(tr, bins)
	if r.Hazard(LifetimeStep{}, 0) != nil {
		t.Fatal("RepeatLifetime must be non-probabilistic")
	}
	kmBest := NewKMLifetime(tr, bins).best
	if got := r.PredictBin(LifetimeStep{FirstInBatch: true}); got != kmBest {
		t.Fatalf("first-in-batch predict = %d, want KM mode %d", got, kmBest)
	}
	r.Observe(LifetimeStep{Bin: 7})
	if got := r.PredictBin(LifetimeStep{}); got != 7 {
		t.Fatalf("repeat predict = %d", got)
	}
	// First job of a new batch defaults to KM even with history.
	if got := r.PredictBin(LifetimeStep{FirstInBatch: true}); got != kmBest {
		t.Fatalf("new-batch predict = %d", got)
	}
}

func TestEvaluateLifetimeCensoredExcludedFromOneBest(t *testing.T) {
	bins := survival.UniformBins(4, 4)
	c := &CoinFlipLifetime{J: 4}
	steps := []LifetimeStep{
		{Bin: 0},                 // uncensored: coin-flip PMF mode is bin 0 -> correct
		{Bin: 2, Censored: true}, // censored: must not count toward 1-best
	}
	ev := EvaluateLifetime(c, steps, bins, 0)
	if ev.Steps != 1 {
		t.Fatalf("scored steps = %d, want 1", ev.Steps)
	}
	if ev.OneBestErr != 0 {
		t.Fatalf("err = %v", ev.OneBestErr)
	}
	// Censored step still contributed masked BCE outputs (bins 0..1).
	if ev.Outputs != 1+2 {
		t.Fatalf("outputs = %d, want 3", ev.Outputs)
	}
}
