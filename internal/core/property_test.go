package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/features"
	"repro/internal/rng"
	"repro/internal/survival"
)

// TestFlavorInputEncodingQuick checks the flavor step encoding is a
// proper one-hot + temporal block for arbitrary valid inputs.
func TestFlavorInputEncodingQuick(t *testing.T) {
	const k = 16
	temporal := features.Temporal{HistoryDays: 7}
	dst := make([]float64, flavorInputDim(k, temporal))
	f := func(tokRaw uint8, periodRaw uint16, dayRaw uint8) bool {
		tok := int(tokRaw) % (k + 1)
		period := int(periodRaw)
		day := int(dayRaw) % 7
		encodeFlavorInputInto(dst, k, temporal, tok, period, day)
		// Exactly one hot bit in the token block.
		ones := 0
		for _, v := range dst[:k+1] {
			if v == 1 {
				ones++
			} else if v != 0 {
				return false
			}
		}
		if ones != 1 || dst[tok] != 1 {
			return false
		}
		// Temporal block: one HOD bit, one DOW bit, DOH is a prefix of
		// ones.
		temp := dst[k+1:]
		hod, dow := 0, 0
		for _, v := range temp[:24] {
			if v == 1 {
				hod++
			}
		}
		for _, v := range temp[24:31] {
			if v == 1 {
				dow++
			}
		}
		if hod != 1 || dow != 1 {
			return false
		}
		sawZero := false
		for _, v := range temp[31:] {
			if v == 0 {
				sawZero = true
			} else if sawZero {
				return false // ones after a zero: not a survival prefix
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLifetimeTargetsQuick checks the §2.3.2 target/mask construction
// invariants for arbitrary steps.
func TestLifetimeTargetsQuick(t *testing.T) {
	const j = 47
	target := make([]float64, j)
	mask := make([]float64, j)
	f := func(binRaw uint8, censored bool) bool {
		bin := int(binRaw) % j
		lifetimeTargets(target, mask, LifetimeStep{Bin: bin, Censored: censored})
		// Mask is a prefix of ones.
		sawZero := false
		maskOnes := 0
		for _, v := range mask {
			switch v {
			case 1:
				if sawZero {
					return false
				}
				maskOnes++
			case 0:
				sawZero = true
			default:
				return false
			}
		}
		var targetSum float64
		for _, v := range target {
			targetSum += v
		}
		if censored {
			// Survival of bins < bin certified; no event.
			return maskOnes == bin && targetSum == 0
		}
		// Event at bin: mask covers 0..bin, single positive at bin.
		return maskOnes == bin+1 && targetSum == 1 && target[bin] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestWhatIfApplyQuick checks tilted distributions remain distributions.
func TestWhatIfApplyQuick(t *testing.T) {
	f := func(p1, p2, p3 uint8, eobRaw uint8, f1, f2 uint8) bool {
		probs := []float64{
			float64(p1) + 1, float64(p2) + 1, float64(p3) + 1,
		}
		var total float64
		for _, v := range probs {
			total += v
		}
		for i := range probs {
			probs[i] /= total
		}
		w := WhatIf{
			EOBFactor:     float64(eobRaw)/32 + 0.01,
			FlavorFactors: []float64{float64(f1) / 64, float64(f2) / 64},
		}
		w.apply(probs, 2)
		var sum float64
		for _, v := range probs {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSampleBinQuick checks SampleBin always returns a valid index for
// arbitrary hazards.
func TestSampleBinQuick(t *testing.T) {
	gen := rng.New(31)
	q := func(raw [8]uint8) bool {
		h := make([]float64, 8)
		for i, r := range raw {
			h[i] = float64(r) / 255
		}
		b := survival.SampleBin(h, gen)
		return b >= 0 && b < len(h)
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
