package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/trace"
)

// Engine registry (ROADMAP: "extract the serving engine from
// internal/server into an engine registry"): the serial, batched, and
// sharded decode engines behind one interface, selected by name at
// startup and rebuilt against the new model on hot-reload. All three
// produce byte-identical responses for a given (seed, window, scale);
// the kind only chooses how streams share step GEMMs and cores.

// GenEngine is a serving decode engine: concurrent Generate calls,
// each byte-identical to the serial Model.Generate of its seed with
// Model.RateScale = scale (0 meaning 1). Close fails in-flight and
// queued requests with ErrEngineClosed where the contract of the
// concrete engine says so, and releases the engine's resources.
type GenEngine interface {
	Generate(ctx context.Context, g *rng.RNG, w trace.Window, scale float64) (*trace.Trace, error)
	Close()
}

// EngineKind names a decode engine in the registry.
type EngineKind string

const (
	// EngineSerial decodes each request on its own goroutine through
	// the serial reference path — no batching, no coalescing. The
	// correctness yardstick and the right choice for rare, huge
	// requests.
	EngineSerial EngineKind = "serial"
	// EngineBatched is the single-fleet continuous-batching Engine of
	// DESIGN.md §6.2: all streams share one fleet on one scheduler.
	EngineBatched EngineKind = "batched"
	// EngineSharded partitions streams across per-core fleet shards by
	// seed hash and steps the shards concurrently (DESIGN.md §6.3).
	EngineSharded EngineKind = "sharded"
)

// EngineSpec bundles the knobs NewGenEngine needs. Window and
// MaxBatch mirror NewEngine's parameters (batched/sharded only);
// Shards and Obs apply to the sharded engine only. Precision selects
// the fleet numeric width for every kind ("" means f64, the bit-exact
// default); it is orthogonal to Kind, so the registry is a (kind ×
// precision) matrix.
type EngineSpec struct {
	Kind      EngineKind
	Window    time.Duration
	MaxBatch  int
	Shards    int           // sharded: shard count; <= 0 means GOMAXPROCS
	Obs       *obs.Registry // sharded: sink for per-shard gauges; may be nil
	Precision Precision     // "" or "f64": bit-exact; "f32": fast path
}

// engineBuilders is the registry proper. Keeping it a map (rather
// than a switch) lets tests enumerate kinds and keeps NewGenEngine's
// validation in one place. Builders receive a normalized precision.
var engineBuilders = map[EngineKind]func(m *Model, spec EngineSpec) GenEngine{
	EngineSerial: func(m *Model, spec EngineSpec) GenEngine {
		return &serialEngine{m: m, prec: spec.Precision}
	},
	EngineBatched: func(m *Model, spec EngineSpec) GenEngine {
		return newEngine(m, spec.Window, spec.MaxBatch, spec.Precision)
	},
	EngineSharded: func(m *Model, spec EngineSpec) GenEngine {
		return newShardedEngine(m, spec.Window, spec.MaxBatch, spec.Shards, spec.Obs, spec.Precision)
	},
}

// NewGenEngine builds the engine named by spec.Kind ("" selects
// batched, the pre-registry default) at spec.Precision ("" selects
// f64). Unknown kinds or precisions are an error — surfaced at
// startup/reload, never mid-request. For f32 the weight conversion
// happens here, before the engine (or its scheduler goroutine) exists.
func NewGenEngine(m *Model, spec EngineSpec) (GenEngine, error) {
	kind := spec.Kind
	if kind == "" {
		kind = EngineBatched
	}
	build, ok := engineBuilders[kind]
	if !ok {
		return nil, fmt.Errorf("core: unknown engine kind %q (have %v)", kind, EngineKinds())
	}
	if !ValidPrecision(string(spec.Precision)) {
		return nil, fmt.Errorf("core: unknown precision %q (have %v)", spec.Precision, Precisions())
	}
	spec.Precision = spec.Precision.normalize()
	// Prepare the serving-weight caches eagerly: the serial f32 engine
	// decodes on concurrent request goroutines and every builder may
	// share the model, so conversion and packing must happen before the
	// engine (or its scheduler goroutine) exists. The serial f64 engine
	// stays on the scalar unpacked reference path by construction.
	if spec.Precision == PrecisionF32 {
		m.PrepareF32()
		m.PreparePackedF32()
	} else if kind != EngineSerial {
		m.PreparePacked()
	}
	return build(m, spec), nil
}

// EngineKinds lists the registered kinds, sorted for stable output.
func EngineKinds() []EngineKind {
	kinds := make([]EngineKind, 0, len(engineBuilders))
	for k := range engineBuilders {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// ValidEngineKind reports whether name is a registered engine kind.
func ValidEngineKind(name string) bool {
	_, ok := engineBuilders[EngineKind(name)]
	return ok
}

// serialEngine runs each request through the serial reference decoder
// on the caller's goroutine. It exists so the registry's yardstick is
// literally Model.Generate; the batched engines define byte-identity
// against this path. At PrecisionF32 it decodes through a
// single-stream fleet queue instead — there is no serial f32 decoder,
// and a one-row fleet is the f32 reference all f32 engines match.
type serialEngine struct {
	m    *Model
	prec Precision
}

// Generate implements GenEngine. Cancellation is honored only before
// decoding starts: the serial path has no step boundaries to abort at.
func (e *serialEngine) Generate(ctx context.Context, g *rng.RNG, w trace.Window, scale float64) (*trace.Trace, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	// Same scale semantics as Engine.admitReq: the request's scale
	// overrides the model's, 0 meaning 1 (via rateScale()). The value
	// copy shares the f32 weight cache by pointer (PrepareF32 already
	// ran in NewGenEngine for f32 specs).
	m := *e.m
	m.RateScale = scale
	decode := m.Generate
	if e.prec.normalize() == PrecisionF32 {
		decode = func(g *rng.RNG, w trace.Window) *trace.Trace {
			out := make([]*trace.Trace, 1)
			m.decodeQueue([]*rng.RNG{g}, nil, w, out, PrecisionF32)
			return out[0]
		}
	}
	if tr := rtrace.FromContext(ctx); tr != nil {
		// The serial path has no queue or coalesce phases: the whole call
		// is one decode span (with no step rounds to count).
		start := time.Now()
		out := decode(g, w)
		tr.Add("decode", start, time.Since(start))
		return out, nil
	}
	return decode(g, w), nil
}

// Close implements GenEngine; the serial engine holds no resources.
func (e *serialEngine) Close() {}
