package core

import (
	"math"
	"sort"

	"repro/internal/features"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/trace"
)

// ResourceModel implements the §2.2.3 "Beyond Flavors" extension: rather
// than a single softmax over an enumerated flavor catalog, resources are
// generated dimension-by-dimension — a softmax over discretized CPU
// values, then a separate softmax over memory values conditioned on the
// generated CPU (the PixelRNN-style factorization the paper describes).
// This handles workloads (e.g. HPC) where jobs request arbitrary
// CPU/memory combinations that no fixed catalog covers.
type ResourceModel struct {
	CPUNet *nn.LSTM // over C cpu classes + EOB
	MemNet *nn.LSTM // over M memory classes, conditioned on current CPU

	CPUVals []float64 // sorted distinct CPU values (class i -> value)
	MemVals []float64 // sorted distinct memory values

	Temporal    features.Temporal
	HistoryDays int
}

// resourceClasses extracts the sorted distinct CPU and memory values
// from a catalog.
func resourceClasses(fs *trace.FlavorSet) (cpus, mems []float64) {
	cpuSet := map[float64]bool{}
	memSet := map[float64]bool{}
	for _, d := range fs.Defs {
		cpuSet[d.CPU] = true
		memSet[d.MemGB] = true
	}
	for v := range cpuSet {
		cpus = append(cpus, v)
	}
	for v := range memSet {
		mems = append(mems, v)
	}
	sort.Float64s(cpus)
	sort.Float64s(mems)
	return cpus, mems
}

// classIndex returns the index of v in sorted vals (nearest match, so
// values outside the training catalog snap to the closest class).
func classIndex(vals []float64, v float64) int {
	i := sort.SearchFloat64s(vals, v)
	if i >= len(vals) {
		return len(vals) - 1
	}
	if i > 0 && v-vals[i-1] < vals[i]-v {
		return i - 1
	}
	return i
}

// cpuEOB returns the end-of-batch class index for the CPU head.
func (m *ResourceModel) cpuEOB() int { return len(m.CPUVals) }

// resourceInputDims: CPU head sees previous (cpu,mem) classes (with EOB
// in the CPU block) plus temporal features; the memory head additionally
// sees the current CPU class.
func (m *ResourceModel) cpuInputDim() int {
	return (len(m.CPUVals) + 1) + len(m.MemVals) + m.Temporal.Dim()
}

func (m *ResourceModel) memInputDim() int {
	return len(m.CPUVals) + (len(m.CPUVals) + 1) + len(m.MemVals) + m.Temporal.Dim()
}

// encodeCPUInput builds the CPU head's step input. prevCPU is a class
// index or cpuEOB(); prevMem < 0 encodes "previous token was EOB".
func (m *ResourceModel) encodeCPUInput(dst []float64, prevCPU, prevMem, period, dohDay int) {
	nc := len(m.CPUVals) + 1
	features.OneHot(dst[:nc], prevCPU)
	memBlock := dst[nc : nc+len(m.MemVals)]
	for i := range memBlock {
		memBlock[i] = 0
	}
	if prevMem >= 0 {
		features.OneHot(memBlock, prevMem)
	}
	m.Temporal.Encode(dst[nc+len(m.MemVals):], period, dohDay)
}

// encodeMemInput builds the memory head's step input: the current CPU
// class plus the previous job's classes and temporal features.
func (m *ResourceModel) encodeMemInput(dst []float64, curCPU, prevCPU, prevMem, period, dohDay int) {
	features.OneHot(dst[:len(m.CPUVals)], curCPU)
	m.encodeCPUInput(dst[len(m.CPUVals):], prevCPU, prevMem, period, dohDay)
}

// resourceToken is one step of the factorized resource sequence.
type resourceToken struct {
	period   int
	eob      bool
	cpuClass int
	memClass int
}

// resourceTokens serializes a trace into the factorized token stream.
func (m *ResourceModel) resourceTokens(tr *trace.Trace) []resourceToken {
	var out []resourceToken
	for p, batches := range tr.PeriodBatches() {
		for _, b := range batches {
			for _, idx := range b.Indices {
				def := tr.Flavors.Defs[tr.VMs[idx].Flavor]
				out = append(out, resourceToken{
					period:   p,
					cpuClass: classIndex(m.CPUVals, def.CPU),
					memClass: classIndex(m.MemVals, def.MemGB),
				})
			}
			out = append(out, resourceToken{period: p, eob: true})
		}
	}
	return out
}

// TrainResource trains the factorized resource model on a trace.
func TrainResource(tr *trace.Trace, cfg TrainConfig) *ResourceModel {
	cfg = cfg.withDefaults()
	historyDays := int(tr.Days() + 0.999)
	if historyDays < 1 {
		historyDays = 1
	}
	cpus, mems := resourceClasses(tr.Flavors)
	m := &ResourceModel{
		CPUVals:     cpus,
		MemVals:     mems,
		Temporal:    features.Temporal{HistoryDays: historyDays},
		HistoryDays: historyDays,
	}
	m.CPUNet = nn.NewLSTM(nn.Config{
		InputDim:  m.cpuInputDim(),
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: len(cpus) + 1,
	}, rng.New(cfg.Seed+10))
	m.MemNet = nn.NewLSTM(nn.Config{
		InputDim:  m.memInputDim(),
		HiddenDim: cfg.Hidden,
		Layers:    cfg.Layers,
		OutputDim: len(mems),
	}, rng.New(cfg.Seed+11))
	toks := m.resourceTokens(tr)
	if len(toks) == 0 {
		return m
	}
	m.trainHead(toks, cfg, true)
	m.trainHead(toks, cfg, false)
	return m
}

// trainHead runs stateful truncated BPTT for one of the two heads. The
// memory head is trained only on non-EOB steps (its step sequence skips
// EOB tokens, matching generation, where memory is sampled only after a
// CPU class).
func (m *ResourceModel) trainHead(toks []resourceToken, cfg TrainConfig, cpuHead bool) {
	net := m.CPUNet
	inDim := m.cpuInputDim()
	steps := toks
	if !cpuHead {
		net = m.MemNet
		inDim = m.memInputDim()
		steps = make([]resourceToken, 0, len(toks))
		for _, tk := range toks {
			if !tk.eob {
				steps = append(steps, tk)
			}
		}
		if len(steps) == 0 {
			return
		}
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	plan := newSegmentPlan(len(steps), cfg.SeqLen, cfg.BatchSize)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.stepLR(epoch)
		st := net.NewState(plan.batch)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			xs := make([]*mat.Dense, wl)
			targets := make([][]int, wl)
			valids := make([][]bool, wl)
			var batchSteps int
			for s := 0; s < wl; s++ {
				x := mat.NewDense(plan.batch, inDim)
				tg := make([]int, plan.batch)
				vd := make([]bool, plan.batch)
				for row := 0; row < plan.batch; row++ {
					t, ok := plan.step(row, w, s)
					if !ok {
						continue
					}
					prevCPU, prevMem := m.cpuEOB(), -1
					if t > 0 && !steps[t-1].eob {
						prevCPU, prevMem = steps[t-1].cpuClass, steps[t-1].memClass
					}
					day := trace.DayOfHistory(steps[t].period)
					if cpuHead {
						m.encodeCPUInput(x.Row(row), prevCPU, prevMem, steps[t].period, day)
						if steps[t].eob {
							tg[row] = m.cpuEOB()
						} else {
							tg[row] = steps[t].cpuClass
						}
					} else {
						m.encodeMemInput(x.Row(row), steps[t].cpuClass, prevCPU, prevMem, steps[t].period, day)
						tg[row] = steps[t].memClass
					}
					vd[row] = true
					batchSteps++
				}
				xs[s] = x
				targets[s] = tg
				valids[s] = vd
			}
			net.ZeroGrads()
			ys, cache := net.Forward(xs, st)
			dys := make([]*mat.Dense, wl)
			for s, y := range ys {
				_, d, _ := nn.SoftmaxCE(y, targets[s], valids[s])
				dys[s] = d
			}
			if batchSteps == 0 {
				continue
			}
			norm := 1 / float64(batchSteps)
			for _, d := range dys {
				mat.Scale(norm, d.Data)
			}
			net.Backward(cache, dys)
			opt.Step(net.Params())
		}
	}
}

// GeneratedResource is one sampled (CPU, MemGB) pair or an end-of-batch
// marker.
type GeneratedResource struct {
	EOB   bool
	CPU   float64
	MemGB float64
}

// resourceState is the streaming decoder for generation.
type resourceState struct {
	m                *ResourceModel
	cpuSt, memSt     *nn.State
	prevCPU, prevMem int
	cpuIn, memIn     []float64
	cpuOut, memOut   []float64 // softmax buffers, overwritten each step
}

// NewResourceState returns a fresh generation state.
func (m *ResourceModel) NewResourceState() *resourceState {
	return &resourceState{
		m:       m,
		cpuSt:   m.CPUNet.NewState(1),
		memSt:   m.MemNet.NewState(1),
		prevCPU: m.cpuEOB(),
		prevMem: -1,
		cpuIn:   make([]float64, m.cpuInputDim()),
		memIn:   make([]float64, m.memInputDim()),
		cpuOut:  make([]float64, m.CPUNet.Cfg.OutputDim),
		memOut:  make([]float64, m.MemNet.Cfg.OutputDim),
	}
}

// Next samples the next resource token: first the CPU class (or EOB),
// then — only for non-EOB — the memory class conditioned on the CPU.
func (s *resourceState) Next(g *rng.RNG, period, dohDay int) GeneratedResource {
	m := s.m
	m.encodeCPUInput(s.cpuIn, s.prevCPU, s.prevMem, period, dohDay)
	nn.SoftmaxInto(m.CPUNet.StepForward(s.cpuIn, s.cpuSt), s.cpuOut)
	cpuClass := g.Categorical(s.cpuOut)
	if cpuClass == m.cpuEOB() {
		s.prevCPU, s.prevMem = m.cpuEOB(), -1
		return GeneratedResource{EOB: true}
	}
	m.encodeMemInput(s.memIn, cpuClass, s.prevCPU, s.prevMem, period, dohDay)
	nn.SoftmaxInto(m.MemNet.StepForward(s.memIn, s.memSt), s.memOut)
	memClass := g.Categorical(s.memOut)
	s.prevCPU, s.prevMem = cpuClass, memClass
	return GeneratedResource{CPU: m.CPUVals[cpuClass], MemGB: m.MemVals[memClass]}
}

// NearestFlavor maps a generated (CPU, MemGB) pair to the closest
// catalog flavor (Euclidean in normalized resource space), for emitting
// catalog-typed traces from the factorized model.
func NearestFlavor(fs *trace.FlavorSet, cpu, mem float64) int {
	if fs.K() == 0 {
		panic("core: NearestFlavor on empty catalog")
	}
	var maxCPU, maxMem float64
	for _, d := range fs.Defs {
		if d.CPU > maxCPU {
			maxCPU = d.CPU
		}
		if d.MemGB > maxMem {
			maxMem = d.MemGB
		}
	}
	best, bestDist := 0, -1.0
	for i, d := range fs.Defs {
		dc := (d.CPU - cpu) / maxCPU
		dm := (d.MemGB - mem) / maxMem
		dist := dc*dc + dm*dm
		if bestDist < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// FactorizedModel is the end-to-end generator variant that uses the
// factorized CPU→memory resource model in place of the flavor LSTM
// (§2.2.3 made operational). Generated (CPU, mem) pairs are mapped to
// the nearest catalog flavor so downstream consumers (scheduler,
// capacity) see ordinary traces.
type FactorizedModel struct {
	Arrival  *ArrivalModel
	Resource *ResourceModel
	Lifetime *LifetimeModel
	Catalog  *trace.FlavorSet
	Interp   survival.Interpolation
	// MaxJobsPerPeriod caps runaway sequences; zero means 2000.
	MaxJobsPerPeriod int
}

// Name implements Generator.
func (m *FactorizedModel) Name() string { return "LSTM (factorized resources)" }

// Generate implements Generator with the same three-stage loop as
// Model.Generate, the resource stage sampling CPU then memory.
func (m *FactorizedModel) Generate(g *rng.RNG, w trace.Window) *trace.Trace {
	maxJobs := m.MaxJobsPerPeriod
	if maxJobs == 0 {
		maxJobs = 2000
	}
	out := &trace.Trace{Flavors: m.Catalog, Periods: w.Periods()}
	rs := m.Resource.NewResourceState()
	ls := m.Lifetime.acquireLifetimeState()
	defer m.Lifetime.releaseLifetimeState(ls)
	nextUser, id := 0, 0
	dohDay := m.Arrival.DOH.Sample(g)
	curDay := -1
	// Span-based batch bookkeeping, as in Model.Generate.
	type batchSpan struct {
		user, lo, hi int
	}
	var spans []batchSpan
	var flavors []int
	for p := w.Start; p < w.End; p++ {
		if d := trace.DayOfHistory(p); d != curDay {
			curDay = d
			dohDay = m.Arrival.DOH.Sample(g)
		}
		nBatches := g.Poisson(m.Arrival.Rate(p, dohDay))
		if nBatches == 0 {
			continue
		}
		spans = spans[:0]
		flavors = flavors[:0]
		curUser, curLo := nextUser, 0
		nextUser++
		jobs, eobCount := 0, 0
		for eobCount < nBatches {
			var res GeneratedResource
			if jobs >= maxJobs {
				res = GeneratedResource{EOB: true}
			} else {
				res = rs.Next(g, p, dohDay)
			}
			if !res.EOB {
				flavors = append(flavors, NearestFlavor(m.Catalog, res.CPU, res.MemGB))
				jobs++
				continue
			}
			eobCount++
			if len(flavors) > curLo {
				spans = append(spans, batchSpan{user: curUser, lo: curLo, hi: len(flavors)})
			}
			curUser, curLo = nextUser, len(flavors)
			nextUser++
		}
		for _, b := range spans {
			size := b.hi - b.lo
			for _, fl := range flavors[b.lo:b.hi] {
				step := LifetimeStep{Period: p, Flavor: fl, BatchSize: size}
				hz := ls.hazard(step, dohDay)
				bin := survival.SampleBin(hz, g)
				ls.observe(bin, false)
				var dur float64
				if m.Interp == survival.Stepped {
					dur = m.Lifetime.Bins.Hi(bin)
				} else {
					dur = g.Uniform(m.Lifetime.Bins.Lo(bin), m.Lifetime.Bins.Hi(bin))
				}
				out.VMs = append(out.VMs, trace.VM{
					ID: id, User: b.user, Flavor: fl, Start: p - w.Start, Duration: dur,
				})
				id++
			}
		}
	}
	return out
}

// ConditionalMemoryNLL evaluates the memory head's teacher-forced NLL on
// a test trace — the metric that shows conditioning on CPU beats an
// unconditional memory marginal when the catalog couples the dimensions.
func (m *ResourceModel) ConditionalMemoryNLL(tr *trace.Trace, offset int) float64 {
	toks := m.resourceTokens(tr)
	st := m.NewResourceState()
	var nll float64
	var n int
	for _, tk := range toks {
		if tk.eob {
			st.prevCPU, st.prevMem = m.cpuEOB(), -1
			continue
		}
		abs := offset + tk.period
		day := trace.DayOfHistory(abs)
		m.encodeMemInput(st.memIn, tk.cpuClass, st.prevCPU, st.prevMem, abs, day)
		nn.SoftmaxInto(m.MemNet.StepForward(st.memIn, st.memSt), st.memOut)
		p := st.memOut[tk.memClass]
		if p < 1e-300 {
			p = 1e-300
		}
		nll += -math.Log(p)
		n++
		st.prevCPU, st.prevMem = tk.cpuClass, tk.memClass
	}
	if n == 0 {
		return 0
	}
	return nll / float64(n)
}
