package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/trace"
)

func TestResourceClasses(t *testing.T) {
	f := getFixture(t)
	cpus, mems := resourceClasses(f.train.Flavors)
	if len(cpus) != 4 { // AzureLike catalog: 4 CPU sizes
		t.Fatalf("cpu classes: %v", cpus)
	}
	for i := 1; i < len(cpus); i++ {
		if cpus[i] <= cpus[i-1] {
			t.Fatal("cpu classes not sorted")
		}
	}
	if len(mems) == 0 {
		t.Fatal("no mem classes")
	}
}

func TestClassIndexNearest(t *testing.T) {
	vals := []float64{1, 2, 4, 8}
	cases := map[float64]int{0.5: 0, 1: 0, 1.4: 0, 1.6: 1, 3: 2 /* tie rounds up */, 3.5: 2, 8: 3, 99: 3}
	for v, want := range cases {
		if got := classIndex(vals, v); got != want {
			t.Errorf("classIndex(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestNearestFlavor(t *testing.T) {
	fs := &trace.FlavorSet{Defs: []trace.FlavorDef{
		{Name: "a", CPU: 1, MemGB: 2},
		{Name: "b", CPU: 8, MemGB: 64},
	}}
	if NearestFlavor(fs, 1.2, 3) != 0 {
		t.Fatal("should map to small flavor")
	}
	if NearestFlavor(fs, 7, 50) != 1 {
		t.Fatal("should map to large flavor")
	}
}

func TestNearestFlavorEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NearestFlavor(&trace.FlavorSet{}, 1, 1)
}

// TestFactorizedModelGenerates exercises the factorized generator end to
// end: valid trace, plausible volume, in-catalog flavors.
func TestFactorizedModelGenerates(t *testing.T) {
	f := getFixture(t)
	cfg := f.tcfg
	cfg.Epochs = 25
	rm := TrainResource(f.train, cfg)
	fm := &FactorizedModel{
		Arrival:  f.model.Arrival,
		Resource: rm,
		Lifetime: f.model.Lifetime,
		Catalog:  f.train.Flavors,
		Interp:   survival.CDI,
	}
	gen := fm.Generate(rng.New(4), f.testW)
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	real := len(f.test.VMs)
	if len(gen.VMs) < real/5 || len(gen.VMs) > real*5 {
		t.Fatalf("generated %d VMs, actual window has %d", len(gen.VMs), real)
	}
	if fm.Name() == "" {
		t.Fatal("name")
	}
	// The Generator interface is satisfied.
	var _ Generator = fm
}

// TestResourceModelEndToEnd trains the factorized CPU→memory model and
// checks: (1) generation produces valid in-catalog values and terminates
// batches, (2) the conditional memory head beats the unconditional
// memory marginal on held-out data — the point of the §2.2.3
// factorization, since the catalog couples memory to CPU.
func TestResourceModelEndToEnd(t *testing.T) {
	f := getFixture(t)
	cfg := f.tcfg
	cfg.Epochs = 30
	rm := TrainResource(f.train, cfg)

	// (1) Generation sanity.
	g := rng.New(3)
	st := rm.NewResourceState()
	var jobs, eobs int
	cpuSet := map[float64]bool{}
	for _, v := range rm.CPUVals {
		cpuSet[v] = true
	}
	for i := 0; i < 500; i++ {
		res := st.Next(g, f.testW.Start, rm.HistoryDays-1)
		if res.EOB {
			eobs++
			continue
		}
		jobs++
		if !cpuSet[res.CPU] {
			t.Fatalf("generated CPU %v not a class", res.CPU)
		}
		if res.MemGB <= 0 {
			t.Fatalf("generated mem %v", res.MemGB)
		}
	}
	if eobs == 0 || jobs == 0 {
		t.Fatalf("degenerate generation: %d jobs, %d EOBs", jobs, eobs)
	}

	// (2) Conditioning beats the marginal.
	condNLL := rm.ConditionalMemoryNLL(f.test, f.testW.Start)
	// Unconditional marginal over memory classes from training data.
	_, mems := resourceClasses(f.train.Flavors)
	counts := make([]float64, len(mems))
	for i := range counts {
		counts[i] = 1
	}
	var total float64
	for _, vm := range f.train.VMs {
		counts[classIndex(mems, f.train.Flavors.Defs[vm.Flavor].MemGB)]++
	}
	for _, c := range counts {
		total += c
	}
	var margNLL float64
	var n int
	for _, vm := range f.test.VMs {
		p := counts[classIndex(mems, f.test.Flavors.Defs[vm.Flavor].MemGB)] / total
		margNLL += -math.Log(p)
		n++
	}
	margNLL /= float64(n)
	if !(condNLL < margNLL) {
		t.Errorf("conditional memory NLL %v should beat marginal %v", condNLL, margNLL)
	}
}
