package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/trace"
)

// generateTraced runs one request through eng with a fresh request
// trace and returns the response bytes plus the finished trace record.
func generateTraced(t *testing.T, eng GenEngine, tc *rtrace.Tracer, seed int64, w trace.Window) ([]byte, rtrace.Finished) {
	t.Helper()
	tr := tc.StartTrace()
	ctx := rtrace.NewContext(context.Background(), tr)
	out, err := eng.Generate(ctx, rng.New(seed), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	return traceBytes(t, out), tc.Finish(tr)
}

// TestTracedDecodeByteIdentity is the tracing half of the determinism
// contract: attaching a request trace must not change a single response
// byte on any engine kind, while the finished trace carries the
// pipeline-phase spans.
func TestTracedDecodeByteIdentity(t *testing.T) {
	m := shardTestModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	const seed = 4242
	want := traceBytes(t, m.Generate(rng.New(seed), w))

	for _, kind := range []EngineKind{EngineSerial, EngineBatched, EngineSharded} {
		eng, err := NewGenEngine(m, EngineSpec{Kind: kind, MaxBatch: 4, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Untraced request first, then a traced one with the same seed.
		plain, perr := eng.Generate(context.Background(), rng.New(seed), w, 0)
		if perr != nil {
			t.Fatalf("kind %q untraced: %v", kind, perr)
		}
		if !bytes.Equal(traceBytes(t, plain), want) {
			t.Fatalf("kind %q: untraced trace differs from serial", kind)
		}
		tc := rtrace.NewTracer(4)
		got, fin := generateTraced(t, eng, tc, seed, w)
		eng.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("kind %q: traced response differs from untraced (tracing is not read-only)", kind)
		}

		// Span structure: every engine emits a decode span; the batching
		// engines also emit queue and coalesce.
		if d, ok := fin.SpanDur("decode"); !ok || d < 0 {
			t.Fatalf("kind %q: missing decode span (spans=%+v)", kind, fin.Spans)
		}
		if kind != EngineSerial {
			if _, ok := fin.SpanDur("queue"); !ok {
				t.Fatalf("kind %q: missing queue span", kind)
			}
			if _, ok := fin.SpanDur("coalesce"); !ok {
				t.Fatalf("kind %q: missing coalesce span", kind)
			}
			for _, sp := range fin.Spans {
				if sp.Name == "decode" && sp.Steps <= 0 {
					t.Fatalf("kind %q: decode span has %d rounds, want > 0", kind, sp.Steps)
				}
			}
		}
		if kind == EngineSharded {
			if wantShard := ShardOf(seed, 2); fin.Shard != wantShard {
				t.Fatalf("sharded: trace annotated shard %d, want %d", fin.Shard, wantShard)
			}
		} else if fin.Shard != -1 {
			t.Fatalf("kind %q: shard = %d, want -1 (unannotated)", kind, fin.Shard)
		}
	}
}

// TestTracedSpansTileRequest pins the span accounting the /debug/traces
// endpoint relies on: queue, coalesce, and decode are contiguous (each
// span starts where the previous ended) so their sum accounts for the
// engine-side wall time of the request. The queue span itself starts a
// hair after trace start — the caller's pre-submit work — which is the
// only gap allowed.
func TestTracedSpansTileRequest(t *testing.T) {
	m := shardTestModel()
	w := trace.Window{Start: 0, End: 2 * trace.PeriodsPerDay}
	eng := NewEngine(m, 0, 4)
	defer eng.Close()
	tc := rtrace.NewTracer(4)
	_, fin := generateTraced(t, eng, tc, 777, w)

	cursor := findSpan(t, fin, "queue").StartNS
	for _, name := range []string{"queue", "coalesce", "decode"} {
		sp := findSpan(t, fin, name)
		if sp.StartNS != cursor {
			t.Fatalf("span %q starts at %dns, want %dns (spans must tile)", name, sp.StartNS, cursor)
		}
		if sp.DurNS < 0 {
			t.Fatalf("span %q has negative duration %d", name, sp.DurNS)
		}
		cursor = sp.StartNS + sp.DurNS
	}
}

func findSpan(t *testing.T, f rtrace.Finished, name string) rtrace.Span {
	t.Helper()
	for _, sp := range f.Spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("span %q not found in %+v", name, f.Spans)
	return rtrace.Span{}
}

// TestTracedCancelledStream: a request aborted mid-decode still closes
// out its spans (empty decode if it never stepped), so cancelled
// requests don't leave dangling traces.
func TestTracedCancelledStream(t *testing.T) {
	m := shardTestModel()
	w := trace.Window{Start: 0, End: 4000 * trace.PeriodsPerDay} // effectively unbounded
	eng := NewEngine(m, 0, 4)
	defer eng.Close()
	tc := rtrace.NewTracer(4)
	tr := tc.StartTrace()
	ctx, cancel := context.WithCancel(rtrace.NewContext(context.Background(), tr))
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := eng.Generate(ctx, rng.New(9), w, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	fin := tc.Finish(tr)
	for _, name := range []string{"queue", "coalesce", "decode"} {
		findSpan(t, fin, name)
	}
}

// TestTracingDisabledRoundAllocs is the ISSUE's zero-overhead pin: with
// tracing disabled (no trace in the context → s.tr == nil), a warm
// batched decode round must not allocate — the entire tracing path
// collapses to one pointer test per stream per round.
func TestTracingDisabledRoundAllocs(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	m := shardTestModel()
	w := trace.Window{Start: 0, End: 400 * trace.PeriodsPerDay} // long-lived streams
	fe := newFleetEngine(m, 8, PrecisionF64)
	src := rng.New(177)
	for i := 0; i < 8; i++ {
		s := m.newGenStream(src.Split(), w, 1, nil)
		if s.phase == phaseDone {
			t.Fatal("stream finished before admission; widen the window")
		}
		// Pre-grow per-stream buffers so steady-state appends don't
		// reallocate under AllocsPerRun (same discipline as
		// TestShardedRoundSteadyStateAllocs).
		s.out.VMs = make([]trace.VM, 0, 1<<20)
		s.spans = make([]genSpan, 0, 4096)
		s.flavors = make([]int, 0, 4096)
		fe.admit(s)
	}
	for i := 0; i < 50; i++ { // warm scratch
		fe.round()
	}
	if fe.active() != 8 {
		t.Skip("streams retired during warmup; window too short for alloc pin")
	}
	if allocs := testing.AllocsPerRun(100, func() { fe.round() }); allocs != 0 {
		t.Fatalf("untraced warm round allocates %v times, want 0", allocs)
	}
}
