package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/glm"
	"repro/internal/nn"
	"repro/internal/survival"
)

// MarshalBinary serializes a trained Model: all three stages plus the
// metadata needed to rebuild the feature encoders. This is the artifact
// a provider could release instead of a proprietary trace (§7).
func (m *Model) MarshalBinary() ([]byte, error) {
	if m.Arrival == nil || m.Flavor == nil || m.Lifetime == nil {
		return nil, fmt.Errorf("core: cannot marshal a partially initialized model")
	}
	fblob, err := m.Flavor.Net.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal flavor net: %w", err)
	}
	lblob, err := m.Lifetime.Net.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal lifetime net: %w", err)
	}
	snap := ModelSnapshot{
		FlavorNet:    fblob,
		LifetimeNet:  lblob,
		K:            m.Flavor.K,
		HistoryDays:  m.Flavor.HistoryDays,
		BinEdges:     m.Lifetime.Bins.Edges,
		ArrivalW:     m.Arrival.Reg.W,
		ArrivalB:     m.Arrival.Reg.Intercept,
		ArrivalKind:  int(m.Arrival.Kind),
		ArrivalDOH:   int(m.Arrival.DOH.Mode),
		ArrivalGeomP: m.Arrival.DOH.GeomP,
		ArrivalUsed:  m.Arrival.UseDOH,
		Interp:       int(m.Interp),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: marshal model: %w", err)
	}
	return buf.Bytes(), nil
}

// Snapshot field bounds. A model snapshot may come from an untrusted
// file, so every field that sizes an allocation or indexes a table is
// validated before use (FuzzSnapshotDecode drives arbitrary bytes
// through this path and requires error returns, never panics).
const (
	maxSnapshotK           = 1 << 12
	maxSnapshotHistoryDays = 1 << 12
	maxSnapshotBinCount    = 1 << 10
)

// validate rejects snapshot metadata that would panic or poison the
// decoders downstream (glm.Rate length mismatches, negative make sizes,
// out-of-range enums, non-finite bin edges).
func (snap *ModelSnapshot) validate() error {
	if snap.K <= 0 || snap.K > maxSnapshotK {
		return fmt.Errorf("core: snapshot flavor count %d out of range [1, %d]", snap.K, maxSnapshotK)
	}
	if snap.HistoryDays <= 0 || snap.HistoryDays > maxSnapshotHistoryDays {
		return fmt.Errorf("core: snapshot history days %d out of range [1, %d]", snap.HistoryDays, maxSnapshotHistoryDays)
	}
	if len(snap.BinEdges) < 2 || len(snap.BinEdges) > maxSnapshotBinCount {
		return fmt.Errorf("core: snapshot has %d bin edges, want [2, %d]", len(snap.BinEdges), maxSnapshotBinCount)
	}
	prev := math.Inf(-1)
	for i, e := range snap.BinEdges {
		if math.IsNaN(e) || math.IsInf(e, 0) || e <= prev {
			return fmt.Errorf("core: snapshot bin edges not finite and strictly increasing at %d", i)
		}
		prev = e
	}
	if k := ArrivalKind(snap.ArrivalKind); k != BatchArrivals && k != VMArrivals {
		return fmt.Errorf("core: snapshot arrival kind %d unknown", snap.ArrivalKind)
	}
	if mo := features.DOHMode(snap.ArrivalDOH); mo != features.DOHLastDay && mo != features.DOHGeometric {
		return fmt.Errorf("core: snapshot DOH mode %d unknown", snap.ArrivalDOH)
	}
	if it := survival.Interpolation(snap.Interp); it != survival.Stepped && it != survival.CDI {
		return fmt.Errorf("core: snapshot interpolation %d unknown", snap.Interp)
	}
	if math.IsNaN(snap.ArrivalGeomP) || math.IsInf(snap.ArrivalGeomP, 0) {
		return fmt.Errorf("core: snapshot geometric parameter is not finite")
	}
	if math.IsNaN(snap.ArrivalB) || math.IsInf(snap.ArrivalB, 0) {
		return fmt.Errorf("core: snapshot arrival intercept is not finite")
	}
	wantW := 24 + 7
	if snap.ArrivalUsed {
		wantW += snap.HistoryDays
	}
	if len(snap.ArrivalW) != wantW {
		return fmt.Errorf("core: snapshot arrival weights have %d entries, want %d", len(snap.ArrivalW), wantW)
	}
	for i, w := range snap.ArrivalW {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: snapshot arrival weight %d is not finite", i)
		}
	}
	return nil
}

// UnmarshalBinary restores a Model serialized with MarshalBinary. Any
// corrupt or inconsistent snapshot — including one whose embedded
// networks do not match its metadata — yields a wrapped error and
// leaves the receiver untouched; it never panics.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap ModelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("core: unmarshal model: %w", err)
	}
	if err := snap.validate(); err != nil {
		return err
	}
	var fnet, lnet nn.LSTM
	if err := fnet.UnmarshalBinary(snap.FlavorNet); err != nil {
		return fmt.Errorf("core: unmarshal flavor net: %w", err)
	}
	if err := lnet.UnmarshalBinary(snap.LifetimeNet); err != nil {
		return fmt.Errorf("core: unmarshal lifetime net: %w", err)
	}
	bins := survival.Bins{Edges: snap.BinEdges}
	temporal := features.Temporal{HistoryDays: snap.HistoryDays}
	lifeFeat := features.LifetimeFeatures{Bins: bins.J()}
	// Cross-check the decoded networks against the snapshot metadata:
	// a mismatched pair would panic at the first generation step.
	if got, want := fnet.Cfg.OutputDim, snap.K+1; got != want {
		return fmt.Errorf("core: snapshot flavor net emits %d classes, metadata implies %d", got, want)
	}
	if got, want := fnet.Cfg.InputDim, flavorInputDim(snap.K, temporal); got != want {
		return fmt.Errorf("core: snapshot flavor net consumes %d features, metadata implies %d", got, want)
	}
	if got, want := lnet.Cfg.OutputDim, bins.J(); got != want {
		return fmt.Errorf("core: snapshot lifetime net emits %d bins, metadata implies %d", got, want)
	}
	if got, want := lnet.Cfg.InputDim, lifetimeInputDim(snap.K, temporal, lifeFeat); got != want {
		return fmt.Errorf("core: snapshot lifetime net consumes %d features, metadata implies %d", got, want)
	}
	m.Flavor = &FlavorModel{
		Net: &fnet, K: snap.K, Temporal: temporal, HistoryDays: snap.HistoryDays,
	}
	m.Lifetime = &LifetimeModel{
		Net: &lnet, Bins: bins, K: snap.K, Temporal: temporal,
		LifeFeat:    lifeFeat,
		HistoryDays: snap.HistoryDays,
	}
	m.Arrival = &ArrivalModel{
		Reg:         &glm.PoissonRegression{W: snap.ArrivalW, Intercept: snap.ArrivalB},
		Kind:        ArrivalKind(snap.ArrivalKind),
		UseDOH:      snap.ArrivalUsed,
		HistoryDays: snap.HistoryDays,
		DOH: features.DOHSampler{
			Mode:        features.DOHMode(snap.ArrivalDOH),
			HistoryDays: snap.HistoryDays,
			GeomP:       snap.ArrivalGeomP,
		},
	}
	m.Interp = survival.Interpolation(snap.Interp)
	return nil
}
