package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/features"
	"repro/internal/glm"
	"repro/internal/nn"
	"repro/internal/survival"
)

// MarshalBinary serializes a trained Model: all three stages plus the
// metadata needed to rebuild the feature encoders. This is the artifact
// a provider could release instead of a proprietary trace (§7).
func (m *Model) MarshalBinary() ([]byte, error) {
	if m.Arrival == nil || m.Flavor == nil || m.Lifetime == nil {
		return nil, fmt.Errorf("core: cannot marshal a partially initialized model")
	}
	fblob, err := m.Flavor.Net.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal flavor net: %w", err)
	}
	lblob, err := m.Lifetime.Net.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal lifetime net: %w", err)
	}
	snap := ModelSnapshot{
		FlavorNet:    fblob,
		LifetimeNet:  lblob,
		K:            m.Flavor.K,
		HistoryDays:  m.Flavor.HistoryDays,
		BinEdges:     m.Lifetime.Bins.Edges,
		ArrivalW:     m.Arrival.Reg.W,
		ArrivalB:     m.Arrival.Reg.Intercept,
		ArrivalKind:  int(m.Arrival.Kind),
		ArrivalDOH:   int(m.Arrival.DOH.Mode),
		ArrivalGeomP: m.Arrival.DOH.GeomP,
		ArrivalUsed:  m.Arrival.UseDOH,
		Interp:       int(m.Interp),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: marshal model: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a Model serialized with MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap ModelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("core: unmarshal model: %w", err)
	}
	var fnet, lnet nn.LSTM
	if err := fnet.UnmarshalBinary(snap.FlavorNet); err != nil {
		return fmt.Errorf("core: unmarshal flavor net: %w", err)
	}
	if err := lnet.UnmarshalBinary(snap.LifetimeNet); err != nil {
		return fmt.Errorf("core: unmarshal lifetime net: %w", err)
	}
	bins := survival.Bins{Edges: snap.BinEdges}
	temporal := features.Temporal{HistoryDays: snap.HistoryDays}
	m.Flavor = &FlavorModel{
		Net: &fnet, K: snap.K, Temporal: temporal, HistoryDays: snap.HistoryDays,
	}
	m.Lifetime = &LifetimeModel{
		Net: &lnet, Bins: bins, K: snap.K, Temporal: temporal,
		LifeFeat:    features.LifetimeFeatures{Bins: bins.J()},
		HistoryDays: snap.HistoryDays,
	}
	m.Arrival = &ArrivalModel{
		Reg:         &glm.PoissonRegression{W: snap.ArrivalW, Intercept: snap.ArrivalB},
		Kind:        ArrivalKind(snap.ArrivalKind),
		UseDOH:      snap.ArrivalUsed,
		HistoryDays: snap.HistoryDays,
		DOH: features.DOHSampler{
			Mode:        features.DOHMode(snap.ArrivalDOH),
			HistoryDays: snap.HistoryDays,
			GeomP:       snap.ArrivalGeomP,
		},
	}
	m.Interp = survival.Interpolation(snap.Interp)
	return nil
}
