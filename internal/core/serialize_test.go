package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/features"
	"repro/internal/glm"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/survival"
)

// tinyModel hand-builds a small consistent Model (no training) so the
// snapshot hardening tests run in milliseconds.
func tinyModel(t testing.TB) *Model {
	t.Helper()
	const k, historyDays = 3, 2
	bins := survival.Bins{Edges: []float64{0, 1, 4, 24}}
	temporal := features.Temporal{HistoryDays: historyDays}
	lifeFeat := features.LifetimeFeatures{Bins: bins.J()}
	flavor := &FlavorModel{
		Net: nn.NewLSTM(nn.Config{
			InputDim: flavorInputDim(k, temporal), HiddenDim: 4, Layers: 1, OutputDim: k + 1,
		}, rng.New(1)),
		K: k, Temporal: temporal, HistoryDays: historyDays,
	}
	lifetime := &LifetimeModel{
		Net: nn.NewLSTM(nn.Config{
			InputDim: lifetimeInputDim(k, temporal, lifeFeat), HiddenDim: 4, Layers: 1, OutputDim: bins.J(),
		}, rng.New(2)),
		Bins: bins, K: k, Temporal: temporal, LifeFeat: lifeFeat, HistoryDays: historyDays,
	}
	arrival := &ArrivalModel{
		Reg:         &glm.PoissonRegression{W: make([]float64, 24+7), Intercept: 0.5},
		Kind:        BatchArrivals,
		HistoryDays: historyDays,
		DOH:         features.DOHSampler{Mode: features.DOHGeometric, HistoryDays: historyDays, GeomP: 1.0 / 7.0},
	}
	return &Model{Arrival: arrival, Flavor: flavor, Lifetime: lifetime}
}

func reencode(t *testing.T, snap ModelSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestModelSnapshotRoundTrip pins the happy path alongside the
// hardening tests below.
func TestModelSnapshotRoundTrip(t *testing.T) {
	m := tinyModel(t)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("round trip changed the snapshot bytes")
	}
}

// TestModelSnapshotRejectsCorruptInput is the core-side panic-audit
// regression suite: each mutation below used to reach a panic (negative
// make, glm length mismatch, enum misuse) or build a model that would
// panic at the first generation step; all must now return errors.
func TestModelSnapshotRejectsCorruptInput(t *testing.T) {
	m := tinyModel(t)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var good ModelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&good); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*ModelSnapshot)) []byte {
		snap := good
		snap.BinEdges = append([]float64{}, good.BinEdges...)
		snap.ArrivalW = append([]float64{}, good.ArrivalW...)
		f(&snap)
		return reencode(t, snap)
	}
	cases := map[string][]byte{
		"garbage":   []byte("definitely not gob"),
		"truncated": blob[:len(blob)/2],
		"zero K":    mutate(func(s *ModelSnapshot) { s.K = 0 }),
		"negative K": mutate(func(s *ModelSnapshot) {
			s.K = -7
		}),
		"huge K":            mutate(func(s *ModelSnapshot) { s.K = 1 << 30 }),
		"zero history days": mutate(func(s *ModelSnapshot) { s.HistoryDays = 0 }),
		"no bin edges":      mutate(func(s *ModelSnapshot) { s.BinEdges = nil }),
		"single bin edge":   mutate(func(s *ModelSnapshot) { s.BinEdges = []float64{1} }),
		"NaN bin edge": mutate(func(s *ModelSnapshot) {
			s.BinEdges[1] = math.NaN()
		}),
		"non-increasing bin edges": mutate(func(s *ModelSnapshot) {
			s.BinEdges[1], s.BinEdges[2] = s.BinEdges[2], s.BinEdges[1]
		}),
		"unknown arrival kind": mutate(func(s *ModelSnapshot) { s.ArrivalKind = 9 }),
		"unknown DOH mode":     mutate(func(s *ModelSnapshot) { s.ArrivalDOH = 7 }),
		"unknown interpolation": mutate(func(s *ModelSnapshot) {
			s.Interp = 5
		}),
		"NaN geometric p": mutate(func(s *ModelSnapshot) { s.ArrivalGeomP = math.NaN() }),
		"infinite intercept": mutate(func(s *ModelSnapshot) {
			s.ArrivalB = math.Inf(1)
		}),
		"arrival weights too short": mutate(func(s *ModelSnapshot) {
			s.ArrivalW = s.ArrivalW[:5]
		}),
		"arrival weights too long": mutate(func(s *ModelSnapshot) {
			s.ArrivalW = append(s.ArrivalW, 1, 2, 3)
		}),
		"NaN arrival weight": mutate(func(s *ModelSnapshot) {
			s.ArrivalW[0] = math.NaN()
		}),
		"flavor net garbage": mutate(func(s *ModelSnapshot) {
			s.FlavorNet = []byte("junk")
		}),
		"lifetime net garbage": mutate(func(s *ModelSnapshot) {
			s.LifetimeNet = []byte{0xFF}
		}),
		"metadata/net mismatch": mutate(func(s *ModelSnapshot) {
			// Consistent metadata for K=2 but the embedded nets are K=3.
			s.K = 2
		}),
	}
	for name, data := range cases {
		var back Model
		if err := back.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt snapshot decoded without error", name)
		}
	}
}
