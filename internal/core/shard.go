package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/trace"
)

// This file is the sharded decode engine (DESIGN.md §6.3): the
// continuous-batching engine of engine.go, partitioned across K
// per-core fleetEngine shards so decode throughput scales with cores
// instead of saturating one. Every stream is pinned to a shard by a
// deterministic hash of its RNG seed, the shards step concurrently
// through internal/par (so the bounded-worker/REPRO_PROCS discipline
// and utilization counters apply), and — because a fleetEngine's
// output is bit-identical per stream regardless of batch composition —
// sharding changes only which streams share a step GEMM, never a
// single output byte.

// ShardOf maps a stream's RNG seed to a decode shard. The assignment
// is a pure function of (seed, shards) — independent of worker count,
// admission order, engine state, or process — so a stream lands on the
// same shard in every run and on every replica. The hash is the
// splitmix64 finalizer, which spreads sequential seeds (the common
// case: Split() children, per-request counters) uniformly across
// shards.
func ShardOf(seed int64, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(seed)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(shards))
}

// GenerateBatchSharded decodes one trace per RNG like GenerateBatch,
// but partitions the streams across `shards` fleet engines (ShardOf on
// each stream's seed) and runs the shard queues concurrently through
// internal/par. shards <= 0 selects GOMAXPROCS. Each returned trace
// is byte-identical to m.Generate(gs[i], w) — and therefore to
// GenerateBatch — at any shard count and any REPRO_PROCS: shard queues
// write only their own streams' output slots, and per-stream bytes
// never depend on batch composition.
func (m *Model) GenerateBatchSharded(gs []*rng.RNG, w trace.Window, shards int) []*trace.Trace {
	return m.generateBatchSharded(gs, w, shards, PrecisionF64)
}

// GenerateBatchShardedF32 is GenerateBatchSharded on the float32 fast
// path: identical sharding and scheduling, f32 fleet steps. Per-stream
// results are byte-identical to GenerateBatchF32 at any shard count
// (the f32 path keeps the batch-composition invariance the sharding
// contract rests on).
func (m *Model) GenerateBatchShardedF32(gs []*rng.RNG, w trace.Window, shards int) []*trace.Trace {
	m.PrepareF32() // before the shard queues fan out across goroutines
	m.PreparePackedF32()
	return m.generateBatchSharded(gs, w, shards, PrecisionF32)
}

func (m *Model) generateBatchSharded(gs []*rng.RNG, w trace.Window, shards int, prec Precision) []*trace.Trace {
	out := make([]*trace.Trace, len(gs))
	if len(gs) == 0 {
		return out
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// Pack (and for f32, convert) the serving weights before the shard
	// queues fan out: the per-shard fleet constructors read the caches
	// concurrently.
	if prec.normalize() == PrecisionF32 {
		m.PrepareF32()
		m.PreparePackedF32()
	} else {
		m.PreparePacked()
	}
	if shards <= 1 {
		m.decodeQueue(gs, nil, w, out, prec)
		return out
	}
	byShard := make([][]int, shards)
	for i, g := range gs {
		k := ShardOf(g.State().Seed, shards)
		byShard[k] = append(byShard[k], i)
	}
	// Drop empty shards so the par region sizes to the real work.
	work := byShard[:0]
	for _, idx := range byShard {
		if len(idx) > 0 {
			work = append(work, idx)
		}
	}
	par.Do(len(work), func(i int) {
		m.decodeQueue(gs, work[i], w, out, prec)
	})
	return out
}

// shardRounder steps a fixed set of fleetEngine shards, one fleet
// round per shard per call, concurrently through internal/par. Each
// par task touches only its own shard's fleetEngine and retired slot,
// so the region satisfies the par determinism contract. The task
// closure is built once at construction, so a warm round() allocates
// nothing at REPRO_PROCS=1 (TestShardedRoundSteadyStateAllocs; the
// multi-worker path pays par's usual bounded per-region spawn
// scratch).
type shardRounder struct {
	fes     []*fleetEngine
	active  []int          // non-empty shard indices, rebuilt per round
	retired [][]*genStream // per-shard retirements of the last round
	task    func(i int)
}

func newShardRounder(fes []*fleetEngine) *shardRounder {
	r := &shardRounder{
		fes:     fes,
		active:  make([]int, 0, len(fes)),
		retired: make([][]*genStream, len(fes)),
	}
	r.task = func(i int) {
		k := r.active[i]
		r.retired[k] = r.fes[k].round()
	}
	return r
}

// round advances every non-empty shard by one fleet round and returns
// their indices; r.retired[k] holds shard k's retirements until the
// next call.
func (r *shardRounder) round() []int {
	r.active = r.active[:0]
	for k, fe := range r.fes {
		if fe.active() > 0 {
			r.active = append(r.active, k)
		}
	}
	par.Do(len(r.active), r.task)
	return r.active
}

// ShardedEngine is the sharded serving counterpart of Engine: the
// same coalescing front door (requests join between rounds, every
// response byte-identical to a serial decode of its seed), but the
// streams decode on K independent fleetEngine shards — ShardOf on the
// request's seed picks the shard — and every round all non-empty
// shards step concurrently through internal/par. One scheduler
// goroutine owns all shards; the concurrency is inside the round, so
// REPRO_PROCS bounds the fan-out exactly like every other parallel
// region in the repository.
//
// Per-shard telemetry lands in the registry passed to
// NewShardedEngine as two gauge families: decode.shard_occupancy.<k>
// (streams decoding on shard k right now) and
// decode.streams_per_shard.<k> (streams ever assigned to shard k).
type ShardedEngine struct {
	m        *Model
	window   time.Duration
	maxBatch int // total streams across shards
	shards   int
	prec     Precision

	reqs chan *engineReq
	quit chan struct{}
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	occupancy []*obs.Gauge
	assigned  []*obs.Gauge
}

// NewShardedEngine starts a sharded engine with the given coalescing
// window, total stream cap (0: 64 per shard), and shard count (<= 0:
// GOMAXPROCS). Per-shard gauges are registered in reg (nil: a private
// registry, keeping the hot path guard-free).
func NewShardedEngine(m *Model, window time.Duration, maxBatch, shards int, reg *obs.Registry) *ShardedEngine {
	return newShardedEngine(m, window, maxBatch, shards, reg, PrecisionF64)
}

func newShardedEngine(m *Model, window time.Duration, maxBatch, shards int, reg *obs.Registry, prec Precision) *ShardedEngine {
	prec = prec.normalize()
	// Convert and pack before the scheduler goroutine builds per-shard
	// fleets.
	if prec == PrecisionF32 {
		m.PrepareF32()
		m.PreparePackedF32()
	} else {
		m.PreparePacked()
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if maxBatch <= 0 {
		maxBatch = defaultMaxStreams * shards
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &ShardedEngine{
		m:         m,
		window:    window,
		maxBatch:  maxBatch,
		shards:    shards,
		prec:      prec,
		reqs:      make(chan *engineReq, 4*maxBatch),
		quit:      make(chan struct{}),
		occupancy: reg.GaugeFamily("decode.shard_occupancy", shards),
		assigned:  reg.GaugeFamily("decode.streams_per_shard", shards),
	}
	e.wg.Add(1)
	go e.loop()
	return e
}

// Generate decodes one trace through the stream's shard, blocking
// until it retires. Semantics are identical to Engine.Generate: the
// result for a given (g, w, scale) is byte-identical to the serial
// decode, cancellation aborts at the next round, and a closed engine
// returns ErrEngineClosed. Implements GenEngine.
func (e *ShardedEngine) Generate(ctx context.Context, g *rng.RNG, w trace.Window, scale float64) (*trace.Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req := newEngineReq(ctx, g, w, scale)
	e.mu.RLock()
	closed := e.closed
	if !closed {
		// As in Engine.Generate: submitting under the read lock orders
		// every send before Close's drain.
		select {
		case e.reqs <- req:
		case <-ctx.Done():
			e.mu.RUnlock()
			return nil, ctx.Err()
		}
	}
	e.mu.RUnlock()
	if closed {
		return nil, ErrEngineClosed
	}
	res := <-req.done
	return res.tr, res.err
}

// Close stops admitting, finishes the in-flight streams on every
// shard, fails queued requests with ErrEngineClosed, and waits for the
// scheduler to exit. Implements GenEngine.
func (e *ShardedEngine) Close() {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		close(e.quit)
	}
	e.wg.Wait()
}

func (e *ShardedEngine) isClosed() bool {
	select {
	case <-e.quit:
		return true
	default:
		return false
	}
}

// admitReq pins the request's stream to its seed's shard and admits
// it, returning 1 if a stream joined (0 if the request was already
// dead on arrival).
func (e *ShardedEngine) admitReq(fes []*fleetEngine, r *engineReq) int {
	if r.ctx != nil && r.ctx.Err() != nil {
		r.done <- engineResult{err: r.ctx.Err()}
		return 0
	}
	scale := r.scale
	if scale == 0 {
		scale = 1
	}
	k := ShardOf(r.g.State().Seed, e.shards)
	s := e.m.newGenStream(r.g, r.w, scale, r.ctx)
	s.done = r.done
	r.traceAdmit(s)
	r.tr.SetShard(k) // nil-safe: untraced requests skip the annotation
	fes[k].admit(s)
	e.assigned[k].Add(1)
	e.occupancy[k].Set(int64(fes[k].active()))
	return 1
}

// waitWindow collects arrivals for up to the configured window after
// the first request lands on an idle engine.
func (e *ShardedEngine) waitWindow(fes []*fleetEngine, total *int) {
	if e.window <= 0 {
		return
	}
	timer := time.NewTimer(e.window)
	defer timer.Stop()
	for *total < e.maxBatch {
		select {
		case r := <-e.reqs:
			*total += e.admitReq(fes, r)
		case <-timer.C:
			return
		case <-e.quit:
			return
		}
	}
}

// loop is the scheduler: admit whatever has arrived (blocking only
// when idle), step all non-empty shards concurrently, deliver
// retirements in shard order, repeat. Delivery and gauge updates stay
// on this goroutine; only the shard rounds fan out.
func (e *ShardedEngine) loop() {
	defer e.wg.Done()
	fes := make([]*fleetEngine, e.shards)
	perShard := (e.maxBatch + e.shards - 1) / e.shards
	if perShard > defaultMaxStreams {
		perShard = defaultMaxStreams
	}
	for k := range fes {
		fes[k] = newFleetEngine(e.m, perShard, e.prec)
	}
	rounder := newShardRounder(fes)
	total := 0
	for {
		if total == 0 {
			select {
			case <-e.quit:
				e.drainQueue()
				return
			case r := <-e.reqs:
				total += e.admitReq(fes, r)
				e.waitWindow(fes, &total)
			}
		} else if !e.isClosed() {
			// Continuous admission: latecomers join between rounds. The
			// cap is on total streams; a skewed seed population can load
			// one shard past maxBatch/shards, which the occupancy gauges
			// make observable (the fleets grow as needed).
			admitting := true
			for admitting && total < e.maxBatch {
				select {
				case r := <-e.reqs:
					total += e.admitReq(fes, r)
				default:
					admitting = false
				}
			}
		}
		for _, k := range rounder.round() {
			// Gauge before delivery: a requester unblocked by its result
			// must never observe its own stream still counted in-flight
			// (the /metrics drain check would otherwise race this loop).
			e.occupancy[k].Set(int64(fes[k].active()))
			for _, s := range rounder.retired[k] {
				s.done <- engineResult{tr: s.out, err: s.err}
				total--
			}
		}
	}
}

// drainQueue fails every queued request after shutdown.
func (e *ShardedEngine) drainQueue() {
	for {
		select {
		case r := <-e.reqs:
			r.done <- engineResult{err: ErrEngineClosed}
		default:
			return
		}
	}
}
