package core

import (
	"bytes"
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestShardOfDeterministicAndSpread pins the stream→shard hash: a pure
// function of (seed, K), in range, stable across calls, degenerate K
// mapped to shard 0, and sequential seeds (the Split()/counter common
// case) spread across all shards rather than clumping.
func TestShardOfDeterministicAndSpread(t *testing.T) {
	for _, k := range []int{-1, 0, 1} {
		if got := ShardOf(12345, k); got != 0 {
			t.Fatalf("ShardOf(12345, %d) = %d, want 0", k, got)
		}
	}
	const shards = 8
	hit := make([]int, shards)
	for seed := int64(0); seed < 1000; seed++ {
		s1 := ShardOf(seed, shards)
		s2 := ShardOf(seed, shards)
		if s1 != s2 {
			t.Fatalf("seed %d: ShardOf not stable (%d vs %d)", seed, s1, s2)
		}
		if s1 < 0 || s1 >= shards {
			t.Fatalf("seed %d: shard %d out of range [0,%d)", seed, s1, shards)
		}
		hit[s1]++
	}
	for k, n := range hit {
		// 1000 seeds over 8 shards: a uniform hash stays well inside
		// [50, 250]; a clumping one (e.g. seed % high-bit patterns)
		// would leave shards empty.
		if n < 50 || n > 250 {
			t.Fatalf("shard %d got %d of 1000 sequential seeds; hash is clumping", k, n)
		}
	}
}

// shardTestModel is the fast untrained model used across the sharded
// decode tests (decode mechanics and draw order do not depend on
// fitted weights).
func shardTestModel() *Model {
	fm, lm := tinyGenModels()
	return &Model{Arrival: testArrivalModel(1.5), Flavor: fm, Lifetime: lm}
}

// splitStreams returns n child RNGs split serially from one seed —
// fresh for every decode leg, since decoding consumes the streams.
func splitStreams(seed int64, n int) []*rng.RNG {
	src := rng.New(seed)
	gs := make([]*rng.RNG, n)
	for i := range gs {
		gs[i] = src.Split()
	}
	return gs
}

// TestShardedDecodeDeterminism is the tentpole acceptance test: serial
// vs batched vs sharded decode at K=1, 2, 8, each at REPRO_PROCS=1 and
// 8, all byte-identical per stream. scripts/check.sh re-runs it under
// -race at GOMAXPROCS=4.
func TestShardedDecodeDeterminism(t *testing.T) {
	m := shardTestModel()
	w := trace.Window{Start: 0, End: 2 * trace.PeriodsPerDay}
	const n = 24
	const seed = 99

	serial := make([][]byte, n)
	func() {
		defer par.SetProcs(par.SetProcs(1))
		for i, g := range splitStreams(seed, n) {
			serial[i] = traceBytes(t, m.Generate(g, w))
		}
	}()

	for _, procs := range []int{1, 8} {
		func() {
			defer par.SetProcs(par.SetProcs(procs))
			for i, tr := range m.GenerateBatch(splitStreams(seed, n), w) {
				if !bytes.Equal(traceBytes(t, tr), serial[i]) {
					t.Fatalf("procs=%d batched stream %d differs from serial", procs, i)
				}
			}
			for _, shards := range []int{1, 2, 8} {
				for i, tr := range m.GenerateBatchSharded(splitStreams(seed, n), w, shards) {
					if !bytes.Equal(traceBytes(t, tr), serial[i]) {
						t.Fatalf("procs=%d shards=%d stream %d differs from serial", procs, shards, i)
					}
				}
			}
		}()
	}
}

// TestShardedDecodeDeterminismTrained runs the sharded equivalence on
// the trained integration fixture, so the claim also holds with real
// weights and real flavor/lifetime dynamics.
func TestShardedDecodeDeterminismTrained(t *testing.T) {
	f := getFixture(t)
	m := f.model
	const n = 16
	serial := make([][]byte, n)
	func() {
		defer par.SetProcs(par.SetProcs(1))
		for i, g := range splitStreams(321, n) {
			serial[i] = traceBytes(t, m.Generate(g, f.testW))
		}
	}()
	defer par.SetProcs(par.SetProcs(8))
	for _, shards := range []int{2, 8} {
		for i, tr := range m.GenerateBatchSharded(splitStreams(321, n), f.testW, shards) {
			if !bytes.Equal(traceBytes(t, tr), serial[i]) {
				t.Fatalf("shards=%d stream %d differs from serial", shards, i)
			}
		}
	}
}

// TestShardedEngineMatchesSerial fires concurrent requests (more than
// the total cap, exercising queueing and continuous admission across
// shards) through a ShardedEngine and checks every response against
// its serial decode, plus the per-shard gauge bookkeeping afterwards.
// Run under -race via scripts/check.sh.
func TestShardedEngineMatchesSerial(t *testing.T) {
	m := shardTestModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	reg := obs.NewRegistry()
	const shards = 3
	e := NewShardedEngine(m, time.Millisecond, 6, shards, reg)
	defer e.Close()
	const n = 20
	var wg sync.WaitGroup
	got := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := e.Generate(context.Background(), rng.New(int64(200+i)), w, 0)
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			_ = tr.WriteJSON(&buf)
			got[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want := traceBytes(t, m.Generate(rng.New(int64(200+i)), w))
		if !bytes.Equal(got[i], want) {
			t.Fatalf("request %d: sharded trace differs from serial", i)
		}
	}
	// Gauge bookkeeping: assignments must total the request count and
	// match each seed's ShardOf, and occupancy must drain back to zero.
	snap := reg.Snapshot()
	wantPerShard := make([]int64, shards)
	for i := 0; i < n; i++ {
		wantPerShard[ShardOf(int64(200+i), shards)]++
	}
	var total int64
	for k := 0; k < shards; k++ {
		occ := snap.Gauges["decode.shard_occupancy."+strconv.Itoa(k)]
		if occ != 0 {
			t.Fatalf("shard %d occupancy = %d after drain, want 0", k, occ)
		}
		asn := snap.Gauges["decode.streams_per_shard."+strconv.Itoa(k)]
		if asn != wantPerShard[k] {
			t.Fatalf("shard %d assigned = %d, want %d (ShardOf over request seeds)", k, asn, wantPerShard[k])
		}
		total += asn
	}
	if total != n {
		t.Fatalf("total assigned = %d, want %d", total, n)
	}
}

// TestShardedEngineScale pins the per-request scale knob against the
// serial RateScale semantics, as TestEngineScale does for the batched
// engine.
func TestShardedEngineScale(t *testing.T) {
	m := shardTestModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	e := NewShardedEngine(m, 0, 8, 2, nil)
	defer e.Close()
	tr, err := e.Generate(context.Background(), rng.New(42), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	ms := *m
	ms.RateScale = 3
	if !bytes.Equal(traceBytes(t, tr), traceBytes(t, ms.Generate(rng.New(42), w))) {
		t.Fatal("scaled sharded trace differs from serial RateScale path")
	}
}

// TestShardedEngineCloseAndCancel checks the lifecycle contract
// mirrors Engine: pre-cancelled contexts fail with ctx.Err, Close is
// idempotent, and post-Close requests fail with ErrEngineClosed.
func TestShardedEngineCloseAndCancel(t *testing.T) {
	m := shardTestModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	e := NewShardedEngine(m, 0, 4, 2, nil)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Generate(dead, rng.New(1), w, 0); err != context.Canceled {
		t.Fatalf("pre-cancelled request: err = %v, want context.Canceled", err)
	}
	if _, err := e.Generate(context.Background(), rng.New(1), w, 0); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Generate(context.Background(), rng.New(2), w, 0); err != ErrEngineClosed {
		t.Fatalf("post-close: err = %v, want ErrEngineClosed", err)
	}
}

// TestEngineRegistry covers the registry surface: every kind
// constructs an engine whose output is byte-identical to the others,
// "" defaults to batched, unknown kinds error, and the enumeration/
// validation helpers agree.
func TestEngineRegistry(t *testing.T) {
	kinds := EngineKinds()
	if len(kinds) != 3 {
		t.Fatalf("EngineKinds() = %v, want 3 kinds", kinds)
	}
	for _, k := range []EngineKind{EngineSerial, EngineBatched, EngineSharded} {
		if !ValidEngineKind(string(k)) {
			t.Fatalf("ValidEngineKind(%q) = false", k)
		}
	}
	if ValidEngineKind("warp-drive") {
		t.Fatal(`ValidEngineKind("warp-drive") = true`)
	}
	if _, err := NewGenEngine(shardTestModel(), EngineSpec{Kind: "warp-drive"}); err == nil {
		t.Fatal("NewGenEngine with unknown kind: err = nil")
	}

	m := shardTestModel()
	w := trace.Window{Start: 0, End: trace.PeriodsPerDay}
	want := traceBytes(t, m.Generate(rng.New(7), w))
	ms := *m
	ms.RateScale = 2
	wantScaled := traceBytes(t, ms.Generate(rng.New(7), w))
	for _, kind := range []EngineKind{"", EngineSerial, EngineBatched, EngineSharded} {
		e, err := NewGenEngine(m, EngineSpec{Kind: kind, MaxBatch: 4, Shards: 2})
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		tr, err := e.Generate(context.Background(), rng.New(7), w, 0)
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if !bytes.Equal(traceBytes(t, tr), want) {
			t.Fatalf("kind %q: trace differs from serial reference", kind)
		}
		tr, err = e.Generate(context.Background(), rng.New(7), w, 2)
		if err != nil {
			t.Fatalf("kind %q scaled: %v", kind, err)
		}
		if !bytes.Equal(traceBytes(t, tr), wantScaled) {
			t.Fatalf("kind %q: scaled trace differs from serial RateScale path", kind)
		}
		e.Close()
	}

	// The serial engine honours an already-cancelled context.
	e, err := NewGenEngine(m, EngineSpec{Kind: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Generate(dead, rng.New(7), w, 0); err != context.Canceled {
		t.Fatalf("serial pre-cancelled: err = %v, want context.Canceled", err)
	}
}

// TestShardedRoundSteadyStateAllocs pins the per-shard step path at
// zero steady-state allocations: a warm roundShards pass over several
// populated shards must not allocate at REPRO_PROCS=1 (the
// multi-worker path pays par's bounded per-region goroutine scratch,
// like every other par call site).
func TestShardedRoundSteadyStateAllocs(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	m := shardTestModel()
	w := trace.Window{Start: 0, End: 400 * trace.PeriodsPerDay} // long-lived streams
	const shards = 4
	fes := make([]*fleetEngine, shards)
	src := rng.New(77)
	for k := range fes {
		fes[k] = newFleetEngine(m, 4, PrecisionF64)
		for i := 0; i < 4; i++ {
			s := m.newGenStream(src.Split(), w, 1, nil)
			if s.phase == phaseDone {
				t.Fatal("stream finished before admission; widen the window")
			}
			// Pre-grow per-stream buffers so steady-state appends don't
			// reallocate under AllocsPerRun.
			s.out.VMs = make([]trace.VM, 0, 1<<20)
			s.spans = make([]genSpan, 0, 4096)
			s.flavors = make([]int, 0, 4096)
			fes[k].admit(s)
		}
	}
	rounder := newShardRounder(fes)
	for i := 0; i < 50; i++ { // warm scratch
		rounder.round()
	}
	for k := range fes {
		if fes[k].active() != 4 {
			t.Skip("streams retired during warmup; window too short for alloc pin")
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { rounder.round() }); allocs != 0 {
		t.Fatalf("warm sharded round allocates %v times, want 0", allocs)
	}
}
