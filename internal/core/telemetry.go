package core

import (
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
)

// Model names used in obs.EpochEvent, one per training loop, so journal
// consumers can compare runs across architectures (DESIGN.md §7).
const (
	ObsFlavorLSTM        = "flavor_lstm"
	ObsFlavorGRU         = "flavor_gru"
	ObsFlavorTransformer = "flavor_transformer"
	ObsLifetimeHazard    = "lifetime_hazard"
	ObsLifetimePMF       = "lifetime_pmf"
	ObsJointLSTM         = "joint_lstm"
	ObsArrivalGLM        = "arrival_glm"
)

// epochClock tracks per-epoch wall time and emits the uniform telemetry
// for one training loop: the legacy Progress callback plus the
// structured obs sink. Telemetry is strictly observational — it reads
// loop state after the epoch's updates and never touches RNG streams,
// so enabling it cannot change trained weights (pinned by the root
// determinism test).
type epochClock struct {
	model    string
	progress func(epoch int, loss float64)
	sink     obs.EpochSink
	epochs   int
	start    time.Time
}

// newEpochClock starts the wall clock for the first epoch. It takes the
// hook fields directly (rather than a TrainConfig) because the
// Transformer loop carries them on its own config type.
func newEpochClock(model string, progress func(epoch int, loss float64), sink obs.EpochSink, epochs int) *epochClock {
	return &epochClock{
		model:    model,
		progress: progress,
		sink:     sink,
		epochs:   epochs,
		start:    time.Now(),
	}
}

// emit reports one finished epoch (steps == 0 epochs carry no loss and
// are skipped, matching the original Progress guard) and restarts the
// clock for the next epoch. opt may be nil for loops without an Adam
// optimizer; dev is the dev-set loss when it was evaluated this epoch.
func (ec *epochClock) emit(epoch int, meanLoss float64, steps int, opt *nn.Adam, dev float64, hasDev bool) {
	wall := time.Since(ec.start)
	ec.start = time.Now()
	if steps == 0 {
		return
	}
	if ec.progress != nil {
		ec.progress(epoch, meanLoss)
	}
	if ec.sink == nil {
		return
	}
	e := obs.EpochEvent{
		Model:  ec.model,
		Epoch:  epoch,
		Epochs: ec.epochs,
		Loss:   meanLoss,
		Dev:    dev,
		HasDev: hasDev,
		Steps:  steps,
		WallMS: float64(wall.Microseconds()) / 1000,
	}
	if opt != nil {
		e.LR = opt.LR
		e.GradNorm = opt.LastGradNorm()
	}
	ec.sink.EpochDone(e)
}
