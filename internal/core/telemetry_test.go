package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

// telemetryTrace builds a tiny training trace shared by the telemetry
// tests (training five networks, so keep it small).
func telemetryTrace() *trace.Trace {
	cfg := synth.AzureLike()
	cfg.Days = 2
	cfg.Users = 30
	cfg.BaseRate = 1.5
	full := cfg.Generate(5)
	return full.Slice(trace.Window{Start: 0, End: full.Periods}, 0)
}

// recorder collects epoch events, grouped by model name, under a mutex
// (FitAll-style callers emit concurrently).
type recorder struct {
	mu     sync.Mutex
	events map[string][]obs.EpochEvent
}

func newRecorder() *recorder { return &recorder{events: map[string][]obs.EpochEvent{}} }

func (r *recorder) EpochDone(e obs.EpochEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[e.Model] = append(r.events[e.Model], e)
}

// TestAllTrainingLoopsEmitEpochEvents is the satellite guarantee that
// no training loop is silent: each of the seven fits routes per-epoch
// telemetry through the shared obs hook.
func TestAllTrainingLoopsEmitEpochEvents(t *testing.T) {
	tr := telemetryTrace()
	rec := newRecorder()
	cfg := TrainConfig{
		Hidden: 6, Layers: 1, SeqLen: 16, BatchSize: 4,
		Epochs: 2, LR: 5e-3, Seed: 3, Obs: rec,
	}
	bins := survival.PaperBins()

	TrainFlavor(tr, cfg)
	TrainFlavorGRU(tr, cfg)
	TrainLifetime(tr, bins, cfg)
	TrainLifetimePMF(tr, bins, cfg)
	TrainJoint(tr, cfg)
	TrainFlavorTransformer(tr, TransformerTrainConfig{
		ModelDim: 8, Heads: 2, Layers: 1, MaxLen: 16, Epochs: 2, Seed: 3, Obs: rec,
	})
	if _, err := TrainArrival(tr, ArrivalOptions{Kind: BatchArrivals, Obs: rec}); err != nil {
		t.Fatalf("arrival: %v", err)
	}

	wantEpochs := map[string]int{
		ObsFlavorLSTM:        2,
		ObsFlavorGRU:         2,
		ObsLifetimeHazard:    2,
		ObsLifetimePMF:       2,
		ObsJointLSTM:         2,
		ObsFlavorTransformer: 2,
		ObsArrivalGLM:        1,
	}
	for model, want := range wantEpochs {
		evs := rec.events[model]
		if len(evs) != want {
			t.Errorf("%s: %d events, want %d", model, len(evs), want)
			continue
		}
		for i, e := range evs {
			if e.Epoch != i {
				t.Errorf("%s: event %d has epoch %d", model, i, e.Epoch)
			}
			if math.IsNaN(e.Loss) || math.IsInf(e.Loss, 0) {
				t.Errorf("%s: non-finite loss %v", model, e.Loss)
			}
			if e.Steps <= 0 {
				t.Errorf("%s: steps = %d", model, e.Steps)
			}
			if e.WallMS < 0 {
				t.Errorf("%s: wall_ms = %v", model, e.WallMS)
			}
		}
	}
	// The recurrent loops clip gradients, so the recorded norm and LR
	// must be populated.
	for _, model := range []string{ObsFlavorLSTM, ObsFlavorGRU, ObsLifetimeHazard, ObsLifetimePMF, ObsJointLSTM} {
		for _, e := range rec.events[model] {
			if e.GradNorm <= 0 {
				t.Errorf("%s epoch %d: grad_norm = %v, want > 0", model, e.Epoch, e.GradNorm)
			}
			if e.LR <= 0 {
				t.Errorf("%s epoch %d: lr = %v, want > 0", model, e.Epoch, e.LR)
			}
		}
	}
}

// TestTrainModelSharesObsAcrossStages checks the single-sink wiring:
// one TrainConfig.Obs covers arrival + flavor + lifetime, and dev-set
// epochs carry a dev loss.
func TestTrainModelSharesObsAcrossStages(t *testing.T) {
	cfg := synth.AzureLike()
	cfg.Days = 2
	cfg.Users = 30
	cfg.BaseRate = 1.5
	full := cfg.Generate(6)
	devStart := full.Periods * 85 / 100
	train := full.Slice(trace.Window{Start: 0, End: devStart}, 0)
	dev := full.Slice(trace.Window{Start: devStart, End: full.Periods}, 0)

	rec := newRecorder()
	var progressCalls int
	_, err := TrainModel(train, ModelOptions{
		Bins: survival.PaperBins(),
		Train: TrainConfig{
			Hidden: 6, Layers: 1, SeqLen: 16, BatchSize: 4,
			Epochs: 2, LR: 5e-3, Seed: 3, DevEvery: 1,
			Dev: dev, DevOffset: devStart,
			Obs:      rec,
			Progress: func(int, float64) { progressCalls++ },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{ObsArrivalGLM, ObsFlavorLSTM, ObsLifetimeHazard} {
		if len(rec.events[model]) == 0 {
			t.Errorf("%s: no events through shared TrainModel sink", model)
		}
	}
	// DevEvery=1 scores the dev set every epoch on both LSTM stages.
	for _, model := range []string{ObsFlavorLSTM, ObsLifetimeHazard} {
		for _, e := range rec.events[model] {
			if !e.HasDev {
				t.Errorf("%s epoch %d: missing dev loss with DevEvery=1", model, e.Epoch)
			} else if math.IsNaN(e.Dev) || math.IsInf(e.Dev, 0) {
				t.Errorf("%s epoch %d: non-finite dev loss %v", model, e.Epoch, e.Dev)
			}
		}
	}
	// The legacy Progress hook still fires alongside the obs sink
	// (flavor + lifetime, 2 epochs each).
	if progressCalls != 4 {
		t.Errorf("progress calls = %d, want 4", progressCalls)
	}
}
