// Package core implements the paper's contribution: the three-stage
// generative workload model (§2) — a Poisson-regression batch-arrival
// model, an LSTM flavor-sequence model with end-of-batch tokens, and an
// LSTM lifetime model parameterizing a censoring-aware discrete hazard —
// together with the end-to-end trace generator (§2.4) and every baseline
// the paper evaluates against (Naive, SimpleBatch, Uniform, Multinomial,
// RepeatFlav, CoinFlip, Kaplan-Meier variants, RepeatLifetime).
package core

import (
	"repro/internal/survival"
	"repro/internal/trace"
)

// FlavorToken is one element of the flavor sequence: either a flavor
// index in [0, K) or the end-of-batch token EOB(K). The token stream
// serializes a trace in generative order: for each period, for each
// batch, the batch's flavors followed by one EOB (§2.2.1).
type FlavorToken struct {
	Period int
	Token  int
}

// EOBToken returns the end-of-batch token index for a K-flavor catalog.
func EOBToken(k int) int { return k }

// FlavorTokens serializes tr into the flavor token stream.
func FlavorTokens(tr *trace.Trace) []FlavorToken {
	eob := EOBToken(tr.Flavors.K())
	var out []FlavorToken
	for p, batches := range tr.PeriodBatches() {
		for _, b := range batches {
			for _, idx := range b.Indices {
				out = append(out, FlavorToken{Period: p, Token: tr.VMs[idx].Flavor})
			}
			out = append(out, FlavorToken{Period: p, Token: eob})
		}
	}
	return out
}

// LifetimeStep is one element of the lifetime sequence: one job together
// with everything the hazard LSTM conditions on (§2.3.3). The sequence
// contains only jobs (no EOB tokens); batch boundaries are conveyed by
// the BatchSize feature and the FirstInBatch flag used by the
// RepeatLifetime baseline.
type LifetimeStep struct {
	Period       int
	Flavor       int
	BatchSize    int
	Bin          int // lifetime bin (censoring bin if Censored)
	Censored     bool
	FirstInBatch bool
}

// LifetimeSteps serializes tr into the lifetime step sequence using the
// given bin layout.
func LifetimeSteps(tr *trace.Trace, bins survival.Bins) []LifetimeStep {
	var out []LifetimeStep
	for p, batches := range tr.PeriodBatches() {
		for _, b := range batches {
			for i, idx := range b.Indices {
				vm := tr.VMs[idx]
				out = append(out, LifetimeStep{
					Period:       p,
					Flavor:       vm.Flavor,
					BatchSize:    len(b.Indices),
					Bin:          bins.Index(vm.Duration),
					Censored:     vm.Censored,
					FirstInBatch: i == 0,
				})
			}
		}
	}
	return out
}

// segmentPlan describes stateful truncated-BPTT training: the stream of
// total steps is split into batch contiguous segments processed in
// parallel; each training window advances all segments by seqLen steps,
// carrying LSTM state across windows within an epoch. This keeps the
// network's state distribution during training consistent with
// arbitrarily long free-running generation.
type segmentPlan struct {
	total   int
	batch   int
	segLen  int
	winLen  int
	windows int
}

func newSegmentPlan(total, seqLen, batchSize int) segmentPlan {
	if seqLen <= 0 || batchSize <= 0 {
		panic("core: segment plan needs positive seqLen and batchSize")
	}
	if batchSize > total && total > 0 {
		batchSize = total
	}
	segLen := (total + batchSize - 1) / batchSize
	windows := (segLen + seqLen - 1) / seqLen
	return segmentPlan{
		total: total, batch: batchSize, segLen: segLen,
		winLen: seqLen, windows: windows,
	}
}

// step returns the global stream index for segment row b at window w,
// window-local step s, and whether it is in range.
func (p segmentPlan) step(b, w, s int) (int, bool) {
	local := w*p.winLen + s
	if local >= p.segLen {
		return 0, false
	}
	t := b*p.segLen + local
	if t >= p.total {
		return 0, false
	}
	return t, true
}

// windowLen returns the number of steps in window w (the final window
// may be short).
func (p segmentPlan) windowLen(w int) int {
	l := p.segLen - w*p.winLen
	if l > p.winLen {
		l = p.winLen
	}
	if l < 0 {
		l = 0
	}
	return l
}
