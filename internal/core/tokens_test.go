package core

import (
	"testing"

	"repro/internal/survival"
	"repro/internal/trace"
)

func tinyTrace() *trace.Trace {
	fs := &trace.FlavorSet{Defs: []trace.FlavorDef{
		{Name: "a", CPU: 1, MemGB: 2},
		{Name: "b", CPU: 2, MemGB: 4},
	}}
	return &trace.Trace{
		Flavors: fs,
		Periods: 4,
		VMs: []trace.VM{
			{ID: 0, User: 1, Flavor: 0, Start: 0, Duration: 100},
			{ID: 1, User: 1, Flavor: 0, Start: 0, Duration: 120},
			{ID: 2, User: 2, Flavor: 1, Start: 0, Duration: 90000},
			{ID: 3, User: 3, Flavor: 1, Start: 2, Duration: 50, Censored: true},
		},
	}
}

func TestFlavorTokens(t *testing.T) {
	toks := FlavorTokens(tinyTrace())
	// Period 0: [0 0 EOB] [1 EOB]; period 2: [1 EOB].
	want := []FlavorToken{
		{0, 0}, {0, 0}, {0, 2},
		{0, 1}, {0, 2},
		{2, 1}, {2, 2},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, w := range want {
		if toks[i] != w {
			t.Fatalf("token %d = %+v, want %+v", i, toks[i], w)
		}
	}
}

func TestEOBToken(t *testing.T) {
	if EOBToken(16) != 16 {
		t.Fatal("EOB token should be K")
	}
}

func TestLifetimeSteps(t *testing.T) {
	bins := survival.PaperBins()
	steps := LifetimeSteps(tinyTrace(), bins)
	if len(steps) != 4 {
		t.Fatalf("got %d steps", len(steps))
	}
	if !steps[0].FirstInBatch || steps[1].FirstInBatch || !steps[2].FirstInBatch {
		t.Fatal("FirstInBatch flags wrong")
	}
	if steps[0].BatchSize != 2 || steps[2].BatchSize != 1 {
		t.Fatalf("batch sizes wrong: %+v", steps)
	}
	if steps[0].Bin != bins.Index(100) {
		t.Fatalf("bin wrong: %d", steps[0].Bin)
	}
	if !steps[3].Censored {
		t.Fatal("censor flag lost")
	}
	if steps[3].Period != 2 {
		t.Fatalf("period wrong: %d", steps[3].Period)
	}
}

func TestSegmentPlanCoversEveryStepOnce(t *testing.T) {
	for _, tc := range []struct{ total, seqLen, batch int }{
		{10, 4, 2}, {100, 7, 3}, {5, 10, 8}, {1, 1, 1}, {64, 64, 1},
	} {
		plan := newSegmentPlan(tc.total, tc.seqLen, tc.batch)
		seen := make([]int, tc.total)
		for w := 0; w < plan.windows; w++ {
			wl := plan.windowLen(w)
			if wl > tc.seqLen {
				t.Fatalf("window %d too long: %d", w, wl)
			}
			for s := 0; s < wl; s++ {
				for b := 0; b < plan.batch; b++ {
					if t2, ok := plan.step(b, w, s); ok {
						seen[t2]++
					}
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%+v: step %d covered %d times", tc, i, c)
			}
		}
	}
}

func TestSegmentPlanContiguity(t *testing.T) {
	// Within a segment row, successive (window, step) positions must map
	// to consecutive stream indices so state carry is meaningful.
	plan := newSegmentPlan(50, 4, 3)
	for b := 0; b < plan.batch; b++ {
		prev := -1
		for w := 0; w < plan.windows; w++ {
			for s := 0; s < plan.windowLen(w); s++ {
				t2, ok := plan.step(b, w, s)
				if !ok {
					continue
				}
				if prev >= 0 && t2 != prev+1 {
					t.Fatalf("segment %d jumps from %d to %d", b, prev, t2)
				}
				prev = t2
			}
		}
	}
}

func TestSegmentPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newSegmentPlan(10, 0, 2)
}

func TestLifetimeTargets(t *testing.T) {
	target := make([]float64, 5)
	mask := make([]float64, 5)
	// Uncensored event in bin 2.
	lifetimeTargets(target, mask, LifetimeStep{Bin: 2})
	wantT := []float64{0, 0, 1, 0, 0}
	wantM := []float64{1, 1, 1, 0, 0}
	for i := range wantT {
		if target[i] != wantT[i] || mask[i] != wantM[i] {
			t.Fatalf("uncensored: target %v mask %v", target, mask)
		}
	}
	// Censored in bin 2: only survival of bins < 2 is certified.
	lifetimeTargets(target, mask, LifetimeStep{Bin: 2, Censored: true})
	wantM = []float64{1, 1, 0, 0, 0}
	for i := range wantM {
		if target[i] != 0 || mask[i] != wantM[i] {
			t.Fatalf("censored: target %v mask %v", target, mask)
		}
	}
	// Censored in bin 0: nothing certified.
	lifetimeTargets(target, mask, LifetimeStep{Bin: 0, Censored: true})
	for i := range mask {
		if mask[i] != 0 {
			t.Fatalf("censored bin 0 mask %v", mask)
		}
	}
}
