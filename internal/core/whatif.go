package core

import (
	"fmt"
)

// WhatIf holds the footnote-5 post-processing knobs: multiplicative
// tilts applied to the flavor LSTM's output probabilities before
// sampling, enabling what-if experiments (larger/smaller batches, or
// shifted flavor popularity) without retraining. Tilted probabilities
// are renormalized. The paper cautions that such tilts may degrade
// generated-trace properties; TestWhatIf* and the ablation benches
// quantify the effect at this scale.
type WhatIf struct {
	// EOBFactor multiplies the end-of-batch token's probability.
	// Values < 1 lengthen batches, > 1 shorten them. Zero means 1.
	EOBFactor float64
	// FlavorFactors optionally multiplies each flavor's probability
	// (length K); nil means no tilt.
	FlavorFactors []float64
}

// apply tilts a probability vector over K flavors + EOB in place and
// renormalizes. probs must have length K+1.
func (w WhatIf) apply(probs []float64, k int) {
	if len(probs) != k+1 {
		panic(fmt.Sprintf("core: WhatIf.apply probs len %d, want %d", len(probs), k+1))
	}
	if w.FlavorFactors != nil {
		if len(w.FlavorFactors) != k {
			panic(fmt.Sprintf("core: WhatIf flavor factors len %d, want %d", len(w.FlavorFactors), k))
		}
		for f, factor := range w.FlavorFactors {
			probs[f] *= factor
		}
	}
	if w.EOBFactor > 0 {
		probs[k] *= w.EOBFactor
	}
	var total float64
	for _, p := range probs {
		total += p
	}
	if total <= 0 {
		// Degenerate tilt: fall back to forcing EOB so generation
		// terminates rather than dividing by zero.
		for i := range probs {
			probs[i] = 0
		}
		probs[k] = 1
		return
	}
	for i := range probs {
		probs[i] /= total
	}
}

// isZero reports whether no tilt is configured.
func (w WhatIf) isZero() bool {
	return (w.EOBFactor == 0 || w.EOBFactor == 1) && w.FlavorFactors == nil
}

// ModelSnapshot is the serializable form of a trained Model (the
// "pre-trained model release" discussed in §7's privacy paragraph: a
// provider can ship this instead of a proprietary trace).
type ModelSnapshot struct {
	FlavorNet    []byte
	LifetimeNet  []byte
	K            int
	HistoryDays  int
	BinEdges     []float64
	ArrivalW     []float64
	ArrivalB     float64
	ArrivalKind  int
	ArrivalDOH   int // DOHMode
	ArrivalGeomP float64
	ArrivalUsed  bool // UseDOH
	Interp       int  // survival.Interpolation
}
