package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWhatIfApplyNormalizes(t *testing.T) {
	w := WhatIf{EOBFactor: 2, FlavorFactors: []float64{1, 0.5}}
	probs := []float64{0.4, 0.4, 0.2} // 2 flavors + EOB
	w.apply(probs, 2)
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum %v", sum)
	}
	// flavor1 halved, EOB doubled: 0.4, 0.2, 0.4 -> normalized.
	if math.Abs(probs[0]-0.4) > 1e-12 || math.Abs(probs[1]-0.2) > 1e-12 || math.Abs(probs[2]-0.4) > 1e-12 {
		t.Fatalf("tilted probs %v", probs)
	}
}

func TestWhatIfDegenerateFallsBackToEOB(t *testing.T) {
	w := WhatIf{FlavorFactors: []float64{0, 0}, EOBFactor: 1}
	probs := []float64{0.5, 0.5, 0}
	w.apply(probs, 2)
	if probs[2] != 1 {
		t.Fatalf("degenerate tilt should force EOB: %v", probs)
	}
}

func TestWhatIfIsZero(t *testing.T) {
	if !(WhatIf{}).isZero() {
		t.Fatal("zero value should be zero tilt")
	}
	if !(WhatIf{EOBFactor: 1}).isZero() {
		t.Fatal("factor 1 should be zero tilt")
	}
	if (WhatIf{EOBFactor: 2}).isZero() {
		t.Fatal("factor 2 is a tilt")
	}
	if (WhatIf{FlavorFactors: []float64{1}}).isZero() {
		t.Fatal("flavor factors are a tilt")
	}
}

func TestWhatIfApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(WhatIf{}).apply([]float64{1, 2}, 2)
}

// TestWhatIfEOBTiltChangesBatchSize verifies the footnote-5 mechanism
// end-to-end: halving the EOB probability roughly doubles generated
// batch sizes.
func TestWhatIfEOBTiltChangesBatchSize(t *testing.T) {
	f := getFixture(t)
	meanBatch := func(m Model) float64 {
		tr := m.Generate(rng.New(9), f.testW)
		var jobs, batches int
		for _, list := range tr.PeriodBatches() {
			for _, b := range list {
				batches++
				jobs += len(b.Indices)
			}
		}
		if batches == 0 {
			return 0
		}
		return float64(jobs) / float64(batches)
	}
	base := *f.model
	small := *f.model
	small.Tilt = WhatIf{EOBFactor: 3} // more EOBs -> smaller batches
	big := *f.model
	big.Tilt = WhatIf{EOBFactor: 0.33}
	mb, ms, mbig := meanBatch(base), meanBatch(small), meanBatch(big)
	if !(ms < mb && mb < mbig) {
		t.Fatalf("EOB tilt ordering violated: small %v base %v big %v", ms, mb, mbig)
	}
}

// TestWhatIfFlavorTiltShiftsMix verifies flavor tilts shift the
// generated flavor distribution.
func TestWhatIfFlavorTiltShiftsMix(t *testing.T) {
	f := getFixture(t)
	k := f.train.Flavors.K()
	boost := make([]float64, k)
	for i := range boost {
		boost[i] = 1
	}
	boost[0] = 10
	tilted := *f.model
	tilted.Tilt = WhatIf{FlavorFactors: boost}
	countFrac := func(m Model) float64 {
		tr := m.Generate(rng.New(10), f.testW)
		if len(tr.VMs) == 0 {
			return 0
		}
		n := 0
		for _, vm := range tr.VMs {
			if vm.Flavor == 0 {
				n++
			}
		}
		return float64(n) / float64(len(tr.VMs))
	}
	baseFrac := countFrac(*f.model)
	tiltFrac := countFrac(tilted)
	if tiltFrac <= baseFrac {
		t.Fatalf("flavor tilt did not boost flavor 0: %v vs %v", tiltFrac, baseFrac)
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	f := getFixture(t)
	blob, err := f.model.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// The restored model must generate the identical trace for the same
	// seed.
	a := f.model.Generate(rng.New(21), f.testW)
	b := restored.Generate(rng.New(21), f.testW)
	if len(a.VMs) != len(b.VMs) {
		t.Fatalf("restored model generates %d VMs, original %d", len(b.VMs), len(a.VMs))
	}
	for i := range a.VMs {
		if a.VMs[i] != b.VMs[i] {
			t.Fatalf("VM %d differs after round trip", i)
		}
	}
}

func TestModelUnmarshalCorrupt(t *testing.T) {
	var m Model
	if err := m.UnmarshalBinary([]byte("junk")); err == nil {
		t.Fatal("expected error")
	}
}

func TestModelMarshalPartial(t *testing.T) {
	var m Model
	if _, err := m.MarshalBinary(); err == nil {
		t.Fatal("expected error for partial model")
	}
}
