package experiments

import "repro/internal/core"

// HeadRow is one parameterization's row in the §2.3.1 hazard-vs-PMF
// lifetime-head comparison.
type HeadRow struct {
	Head       string
	BCE        float64
	OneBestErr float64
}

// PMFvsHazard reproduces the §2.3.1 design comparison: parameterizing
// the discrete hazard (the paper's choice, following Kvamme & Borgan's
// "slightly better") versus a softmax PMF head trained with the
// censored-tail likelihood.
func PMFvsHazard(c *Cloud) []HeadRow {
	steps := core.LifetimeSteps(c.Test, c.Bins)
	offset := c.TestW.Start
	hz := core.EvaluateLifetime(core.NewLSTMLifetimePredictor(c.Model().Lifetime), steps, c.Bins, offset)
	tc := c.Scale.Train
	pmfModel := core.TrainLifetimePMF(c.Train, c.Bins, tc)
	pmf := core.EvaluateLifetime(core.NewPMFLifetimePredictor(pmfModel), steps, c.Bins, offset)
	km := core.EvaluateLifetime(core.NewKMLifetime(c.Train, c.Bins), steps, c.Bins, offset)
	return []HeadRow{
		{Head: "Overall KM", BCE: km.BCE, OneBestErr: km.OneBestErr},
		{Head: "LSTM (hazard head)", BCE: hz.BCE, OneBestErr: hz.OneBestErr},
		{Head: "LSTM (PMF head)", BCE: pmf.BCE, OneBestErr: pmf.OneBestErr},
	}
}

// ArchRow is one architecture's row in the §7 sequence-architecture
// ablation.
type ArchRow struct {
	Arch       string
	NLL        float64
	OneBestErr float64
}

// ArchitectureAblation compares the LSTM flavor model against a causal
// Transformer trained on the same token stream (§7: "Transformers ...
// could be used in place of the LSTMs"), with the training multinomial
// as the floor.
func ArchitectureAblation(c *Cloud) []ArchRow {
	toks := core.FlavorTokens(c.Test)
	offset := c.TestW.Start
	var rows []ArchRow

	multi := core.EvaluateFlavor(core.NewMultinomialFlavor(c.Train), toks, offset)
	rows = append(rows, ArchRow{Arch: "Multinomial", NLL: multi.NLL, OneBestErr: multi.OneBestErr})

	lstm := core.EvaluateFlavor(core.NewLSTMFlavorPredictor(c.Model().Flavor), toks, offset)
	rows = append(rows, ArchRow{Arch: "LSTM", NLL: lstm.NLL, OneBestErr: lstm.OneBestErr})

	gru := core.TrainFlavorGRU(c.Train, c.Scale.Train)
	grue := core.EvaluateFlavor(core.NewGRUFlavorPredictor(gru), toks, offset)
	rows = append(rows, ArchRow{Arch: "GRU", NLL: grue.NLL, OneBestErr: grue.OneBestErr})

	tf := core.TrainFlavorTransformer(c.Train, core.TransformerTrainConfig{Seed: c.Scale.Seed})
	tfe := core.EvaluateFlavor(core.NewTransformerFlavorPredictor(tf), toks, offset)
	rows = append(rows, ArchRow{Arch: "Transformer", NLL: tfe.NLL, OneBestErr: tfe.OneBestErr})
	return rows
}
