package experiments

import "testing"

// TestArchitectureAblation checks the §7 architecture swap: a causal
// Transformer trained on the same flavor stream is a working drop-in —
// clearly better than the order-free multinomial — with the (dev-tuned)
// LSTM remaining the reference.
func TestArchitectureAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains LSTM and Transformer flavor models")
	}
	rows := ArchitectureAblation(azure(t))
	byName := map[string]ArchRow{}
	for _, r := range rows {
		byName[r.Arch] = r
	}
	multi, lstm, gru, tf := byName["Multinomial"], byName["LSTM"], byName["GRU"], byName["Transformer"]
	if !(tf.NLL < multi.NLL) {
		t.Errorf("transformer NLL %v should beat multinomial %v", tf.NLL, multi.NLL)
	}
	if !(tf.OneBestErr < multi.OneBestErr) {
		t.Errorf("transformer 1-best %v should beat multinomial %v", tf.OneBestErr, multi.OneBestErr)
	}
	if !(gru.NLL < multi.NLL) {
		t.Errorf("GRU NLL %v should beat multinomial %v", gru.NLL, multi.NLL)
	}
	if lstm.NLL > tf.NLL+0.1 {
		t.Errorf("tuned LSTM NLL %v should not trail the untuned transformer %v badly", lstm.NLL, tf.NLL)
	}
	if lstm.NLL > gru.NLL+0.25 {
		t.Errorf("LSTM NLL %v should be in the GRU's ballpark %v", lstm.NLL, gru.NLL)
	}
}

// TestPMFvsHazard checks the §2.3.1 head comparison: both neural heads
// beat KM, and the hazard head (the paper's choice) does not trail the
// PMF head meaningfully.
func TestPMFvsHazard(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains two lifetime LSTMs")
	}
	rows := PMFvsHazard(azure(t))
	byName := map[string]HeadRow{}
	for _, r := range rows {
		byName[r.Head] = r
	}
	km := byName["Overall KM"]
	hz := byName["LSTM (hazard head)"]
	pmf := byName["LSTM (PMF head)"]
	if !(hz.BCE < km.BCE) || !(pmf.BCE < km.BCE) {
		t.Errorf("both heads should beat KM: hazard %v pmf %v km %v", hz.BCE, pmf.BCE, km.BCE)
	}
	if hz.BCE > pmf.BCE*1.15 {
		t.Errorf("hazard head %v should not trail PMF head %v (paper: slightly better)", hz.BCE, pmf.BCE)
	}
}
