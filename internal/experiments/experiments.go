// Package experiments reproduces every table and figure of the paper's
// evaluation (§5 prediction results, §6 use cases) on the synthetic
// Azure-like and Huawei-like workloads. Each exported function
// regenerates one table or figure and returns a structured result that
// cmd/experiments renders in the paper's format and bench_test.go runs
// as a benchmark.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/par"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Scale selects the experiment size: the scaled-down configuration used
// by tests and benches, or the larger one behind cmd/experiments -full.
type Scale struct {
	AzureDays, AzureUsers   int
	AzureRate               float64
	HuaweiDays, HuaweiUsers int
	HuaweiRate              float64
	// HuaweiExtraDays extends the Huawei test-window censoring horizon
	// (§3.2's two extra months of monitoring, scaled).
	HuaweiExtraDays int
	Samples         int // sampled traces / Poisson draws per figure (paper: 500)
	Tuples          int // packing tuples for Table 5 / Figure 10 (paper: 500)
	Train           core.TrainConfig
	Seed            int64
}

// SmallScale is the fast configuration used by tests and benchmarks.
func SmallScale() Scale {
	return Scale{
		// 9 days so the training window covers every day-of-week (a
		// shorter history leaves weekend DOW features untrained and
		// biases weekend test periods).
		AzureDays: 9, AzureUsers: 400, AzureRate: 3,
		HuaweiDays: 12, HuaweiUsers: 80, HuaweiRate: 1.6,
		HuaweiExtraDays: 4,
		Samples:         40,
		Tuples:          100,
		Train: core.TrainConfig{
			Hidden: 24, Layers: 2, SeqLen: 64, BatchSize: 8,
			Epochs: 40, LR: 8e-3,
		},
		Seed: 1,
	}
}

// FullScale is the larger configuration for cmd/experiments -full. It
// remains far below the paper's GPU-month scale but sharpens every
// estimate.
func FullScale() Scale {
	return Scale{
		AzureDays: 14, AzureUsers: 300, AzureRate: 4,
		HuaweiDays: 40, HuaweiUsers: 200, HuaweiRate: 1.6,
		HuaweiExtraDays: 10,
		Samples:         500,
		Tuples:          500,
		Train: core.TrainConfig{
			Hidden: 64, Layers: 2, SeqLen: 128, BatchSize: 8,
			Epochs: 20, LR: 5e-3,
		},
		Seed: 1,
	}
}

// CloudID selects the dataset.
type CloudID int

const (
	// Azure is the AzureLike synthetic cloud.
	Azure CloudID = iota
	// Huawei is the HuaweiLike synthetic cloud.
	Huawei
)

func (c CloudID) String() string {
	if c == Azure {
		return "Azure"
	}
	return "HuaweiCloud"
}

// Cloud is a prepared dataset: the ground-truth history, its windows and
// slices, and (once Model/Baselines are called) the trained generators.
type Cloud struct {
	ID         CloudID
	Scale      Scale
	Cfg        synth.Config
	Full       *trace.Trace
	TrainW     trace.Window
	DevW       trace.Window
	TestW      trace.Window
	Train      *trace.Trace
	Dev        *trace.Trace
	Test       *trace.Trace
	Bins       survival.Bins
	model      *core.Model
	modelNoDOH *core.Model
	naive      *core.NaiveGenerator
	simple     *core.SimpleBatchGenerator
}

// NewCloud generates the ground-truth history and carves the windows.
func NewCloud(id CloudID, s Scale) *Cloud {
	var cfg synth.Config
	switch id {
	case Azure:
		cfg = synth.AzureLike()
		cfg.Days, cfg.Users, cfg.BaseRate = s.AzureDays, s.AzureUsers, s.AzureRate
	case Huawei:
		cfg = synth.HuaweiLike()
		cfg.Days, cfg.Users, cfg.BaseRate = s.HuaweiDays, s.HuaweiUsers, s.HuaweiRate
	default:
		panic(fmt.Sprintf("experiments: unknown cloud %d", id))
	}
	return NewCloudFromConfig(id, s, cfg)
}

// NewCloudFromConfig generates the ground-truth history from an
// arbitrary scenario config — the workload-spec path: cmd/experiments
// compiles a declarative spec (possibly multi-cohort) and runs the
// same experiment suite over it that the hardcoded presets get.
func NewCloudFromConfig(id CloudID, s Scale, cfg synth.Config) *Cloud {
	full := cfg.Generate(s.Seed*1000 + int64(id))
	return NewCloudFromTrace(id, s, cfg, full)
}

// NewCloudFromTrace carves windows over an existing ground-truth trace
// — the trace-replay path: a recorded generation (workload record
// format) stands in for a fresh synth run, so the sched/capacity
// experiments run against exactly the bytes that were served. The
// trace's length, not cfg.Days, determines the windows.
func NewCloudFromTrace(id CloudID, s Scale, cfg synth.Config, full *trace.Trace) *Cloud {
	days := full.Periods / trace.PeriodsPerDay
	if days < 3 {
		panic(fmt.Sprintf("experiments: ground-truth trace spans %d periods; need at least 3 days", full.Periods))
	}
	var extra float64
	if id == Huawei {
		extra = float64(s.HuaweiExtraDays) * 86400
	}
	trainW, devW, testW := synth.StandardSplit(days)
	return &Cloud{
		ID:     id,
		Scale:  s,
		Cfg:    cfg,
		Full:   full,
		TrainW: trainW,
		DevW:   devW,
		TestW:  testW,
		Train:  full.Slice(trainW, 0),
		Dev:    full.Slice(devW, 0),
		Test:   full.Slice(testW, extra),
		Bins:   survival.PaperBins(),
	}
}

// Model returns the trained three-stage LSTM model, training it on first
// use.
func (c *Cloud) Model() *core.Model {
	if c.model == nil {
		tc := c.Scale.Train
		tc.Dev = c.Dev
		tc.DevOffset = c.DevW.Start
		m, err := core.TrainModel(c.Train, core.ModelOptions{Bins: c.Bins, Train: tc})
		if err != nil {
			panic(fmt.Sprintf("experiments: train %s: %v", c.ID, err))
		}
		c.model = m
	}
	return c.model
}

// ModelNoDOH returns a model variant whose generator always encodes the
// last history day instead of sampling DOH days — the Figure 8 ablation.
func (c *Cloud) ModelNoDOH() *core.Model {
	if c.modelNoDOH == nil {
		base := *c.Model()
		arr := *base.Arrival
		arr.DOH.Mode = features.DOHLastDay
		base.Arrival = &arr
		c.modelNoDOH = &base
	}
	return c.modelNoDOH
}

// Naive returns the fitted Naive baseline generator.
func (c *Cloud) Naive() *core.NaiveGenerator {
	if c.naive == nil {
		n, err := core.NewNaiveGenerator(c.Train, c.Bins)
		if err != nil {
			panic(fmt.Sprintf("experiments: naive %s: %v", c.ID, err))
		}
		c.naive = n
	}
	return c.naive
}

// SimpleBatch returns the fitted SimpleBatch baseline generator.
func (c *Cloud) SimpleBatch() *core.SimpleBatchGenerator {
	if c.simple == nil {
		s, err := core.NewSimpleBatchGenerator(c.Train, c.Bins)
		if err != nil {
			panic(fmt.Sprintf("experiments: simplebatch %s: %v", c.ID, err))
		}
		c.simple = s
	}
	return c.simple
}

// Generators returns the three end-to-end generators of §6 in paper
// order: Naive, SimpleBatch, LSTM.
func (c *Cloud) Generators() []core.Generator {
	return []core.Generator{c.Naive(), c.SimpleBatch(), c.Model()}
}

// FitAll trains every cloud's generators up front, fitting the clouds
// in parallel. Each cloud's fit consumes only its own seeded streams
// and writes only its own lazy caches, so the fitted models are
// identical to on-demand fitting — this just overlaps the per-cloud
// training time before a sequential rendering pass.
func FitAll(clouds ...*Cloud) {
	par.Do(len(clouds), func(i int) {
		c := clouds[i]
		c.Model()
		c.Naive()
		c.SimpleBatch()
	})
}

// Table1Row is one dataset row of Table 1.
type Table1Row struct {
	Cloud                        string
	TrainDays, DevDays, TestDays float64
	TrainVMs, DevVMs, TestVMs    int
}

// Table1 reports the experimental dataset statistics (paper Table 1).
func Table1(clouds ...*Cloud) []Table1Row {
	rows := make([]Table1Row, 0, len(clouds))
	for _, c := range clouds {
		rows = append(rows, Table1Row{
			Cloud:     c.ID.String(),
			TrainDays: c.TrainW.Days(),
			DevDays:   c.DevW.Days(),
			TestDays:  c.TestW.Days(),
			TrainVMs:  len(c.Train.VMs),
			DevVMs:    len(c.Dev.VMs),
			TestVMs:   len(c.Test.VMs),
		})
	}
	return rows
}
