package experiments

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	azureOnce sync.Once
	azureC    *Cloud

	huaweiOnce sync.Once
	huaweiC    *Cloud
)

func azure(t *testing.T) *Cloud {
	t.Helper()
	azureOnce.Do(func() { azureC = NewCloud(Azure, SmallScale()) })
	return azureC
}

// huaweiScale trims the sampling load for the Huawei tests: the
// 259-flavor vocabulary makes each LSTM step ~5x more expensive than
// Azure's.
func huaweiScale() Scale {
	s := SmallScale()
	s.Samples = 12
	s.Tuples = 40
	return s
}

func huawei(t *testing.T) *Cloud {
	t.Helper()
	huaweiOnce.Do(func() { huaweiC = NewCloud(Huawei, huaweiScale()) })
	return huaweiC
}

func TestTable1(t *testing.T) {
	rows := Table1(azure(t))
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Cloud != "Azure" || r.TrainVMs == 0 || r.TestVMs == 0 {
		t.Fatalf("row = %+v", r)
	}
	if r.TrainDays <= r.TestDays {
		t.Fatalf("train window should be longest: %+v", r)
	}
}

// TestFigure4DOHSampling checks the §5.1 Azure result shape: sampling
// DOH days yields (weakly) better coverage than always encoding the last
// day, and coverage with sampling is reasonably high.
func TestFigure4DOHSampling(t *testing.T) {
	sampled, lastDay := Figure4(azure(t))
	if sampled.Coverage < 0.5 {
		t.Errorf("sampled-DOH coverage %v too low", sampled.Coverage)
	}
	if sampled.Coverage < lastDay.Coverage-0.05 {
		t.Errorf("sampling DOH days should not hurt coverage: %v vs %v",
			sampled.Coverage, lastDay.Coverage)
	}
	if sampled.Kind != "batch" || sampled.DOH != "sampled" || lastDay.DOH != "last-day" {
		t.Errorf("labels wrong: %+v %+v", sampled.Kind, lastDay.DOH)
	}
	if len(sampled.Intervals) != azure(t).TestW.Periods() {
		t.Errorf("interval count %d", len(sampled.Intervals))
	}
}

// TestFigure6NaivePoissonUndercovers checks the Figure 6 shape: a
// Poisson model of individual VM arrivals dramatically underestimates
// variance relative to the batch model.
func TestFigure6NaivePoissonUndercovers(t *testing.T) {
	noDOH, withDOH := Figure6(azure(t))
	batchSampled, _ := Figure4(azure(t))
	if noDOH.Coverage >= batchSampled.Coverage {
		t.Errorf("VM-level Poisson coverage %v should be below batch coverage %v",
			noDOH.Coverage, batchSampled.Coverage)
	}
	if withDOH.Coverage < noDOH.Coverage-0.05 {
		t.Errorf("DOH sampling should not reduce VM-level coverage much: %v vs %v",
			withDOH.Coverage, noDOH.Coverage)
	}
}

// TestTable2Shape checks the Table 2 ordering on Azure: Uniform worst,
// then Multinomial, with the LSTM best on both metrics, and the
// RepeatFlav 1-best between Multinomial and LSTM.
func TestTable2Shape(t *testing.T) {
	rows := Table2(azure(t))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(name string) Table2Row {
		for _, r := range rows {
			if r.System == name {
				return r
			}
		}
		t.Fatalf("missing system %q", name)
		return Table2Row{}
	}
	uni, multi, repeat, lstm := get("Uniform"), get("Multinomial"), get("RepeatFlav"), get("LSTM")
	if math.Abs(uni.NLL-math.Log(17)) > 1e-9 {
		t.Errorf("uniform NLL %v != ln17", uni.NLL)
	}
	if repeat.HasNLL {
		t.Error("RepeatFlav must report N/A NLL")
	}
	if !(lstm.NLL < multi.NLL && multi.NLL < uni.NLL) {
		t.Errorf("NLL ordering violated: %v %v %v", lstm.NLL, multi.NLL, uni.NLL)
	}
	if !(lstm.OneBestErr < repeat.OneBestErr && repeat.OneBestErr < multi.OneBestErr) {
		t.Errorf("1-best ordering violated: %v %v %v",
			lstm.OneBestErr, repeat.OneBestErr, multi.OneBestErr)
	}
}

// TestTable3Shape checks the Table 3 ordering on Azure.
func TestTable3Shape(t *testing.T) {
	rows := Table3(azure(t))
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(name string) Table3Row {
		for _, r := range rows {
			if r.System == name {
				return r
			}
		}
		t.Fatalf("missing system %q", name)
		return Table3Row{}
	}
	coin, km, pf, repeat, lstm := get("CoinFlip"), get("Overall KM"),
		get("Per-flavor KM"), get("RepeatLifetime"), get("LSTM")
	if math.Abs(coin.BCE-math.Log(2)) > 1e-9 {
		t.Errorf("coin-flip BCE %v != ln2", coin.BCE)
	}
	if repeat.HasBCE {
		t.Error("RepeatLifetime must report N/A BCE")
	}
	if !(lstm.BCE < pf.BCE && pf.BCE <= km.BCE && km.BCE < coin.BCE) {
		t.Errorf("BCE ordering violated: lstm %v pf %v km %v coin %v",
			lstm.BCE, pf.BCE, km.BCE, coin.BCE)
	}
	if !(lstm.OneBestErr < km.OneBestErr) {
		t.Errorf("LSTM 1-best %v should beat KM %v", lstm.OneBestErr, km.OneBestErr)
	}
}

// TestTable4Shape checks the Survival-MSE orderings: LSTM halves the KM
// error; bins/interpolation matter far less than the model; CDI helps
// the LSTM.
func TestTable4Shape(t *testing.T) {
	rows := Table4(azure(t))
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(system, disc, interp string) Table4Row {
		for _, r := range rows {
			if r.System == system && r.Discretization == disc && r.Interpolation == interp {
				return r
			}
		}
		t.Fatalf("missing row %s/%s/%s", system, disc, interp)
		return Table4Row{}
	}
	km47s := get("KM", "47 bins", "Stepped")
	km47c := get("KM", "47 bins", "CDI")
	km495c := get("KM", "495 bins", "CDI")
	kmCont := get("KM", "Continuous", "N/A")
	lstmS := get("LSTM", "47 bins", "Stepped")
	lstmC := get("LSTM", "47 bins", "CDI")
	// All KM variants should be within a factor of ~2 of one another
	// (the paper's are nearly identical at million-VM scale; small-sample
	// noise widens the band here)...
	kmVals := []float64{km47s.SurvivalMSE, km47c.SurvivalMSE, km495c.SurvivalMSE, kmCont.SurvivalMSE}
	for _, v := range kmVals {
		if v > 2*kmVals[0] || v < kmVals[0]/2 {
			t.Errorf("KM variants should be within 2x: %v", kmVals)
		}
	}
	// ...and the LSTM should be clearly better than every KM variant.
	for _, v := range kmVals {
		if !(lstmC.SurvivalMSE < v*0.85) {
			t.Errorf("LSTM CDI MSE %v should clearly beat KM %v", lstmC.SurvivalMSE, v)
		}
	}
	// CDI should help (or at worst be within noise of) the stepped
	// interpolation for the LSTM; the paper's gain is ~10%, ours is
	// sub-noise at the scaled sample size.
	if lstmC.SurvivalMSE > lstmS.SurvivalMSE*1.05 {
		t.Errorf("CDI should not hurt the LSTM: %v vs %v", lstmC.SurvivalMSE, lstmS.SurvivalMSE)
	}
}

func TestCensoringAblation(t *testing.T) {
	rows := CensoringAblation(azure(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BCE <= 0 || math.IsNaN(r.BCE) {
			t.Errorf("variant %s BCE %v", r.Variant, r.BCE)
		}
	}
}

// TestFigure7Shape checks the §6.1 Azure result: the batch-aware
// generators cover far more of the true workload than Naive.
func TestFigure7Shape(t *testing.T) {
	results := Figure7(azure(t))
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Generator] = r.Coverage
	}
	if byName["LSTM"] <= byName["Naive"] {
		t.Errorf("LSTM coverage %v should beat Naive %v", byName["LSTM"], byName["Naive"])
	}
	if byName["Naive"] > 0.5 {
		t.Errorf("Naive coverage %v suspiciously high (paper: ~0%%)", byName["Naive"])
	}
	if byName["LSTM"] < 0.5 {
		t.Errorf("LSTM coverage %v too low (paper: 83%%)", byName["LSTM"])
	}
}

// TestFigure9Shape checks the §6.2 reuse-distance result: the LSTM's
// short-distance reuse (bucket 0) tracks the real data much more closely
// than Naive, which shows far less reuse.
func TestFigure9Shape(t *testing.T) {
	actual, results := Figure9(azure(t))
	byName := map[string]ReuseResult{}
	for _, r := range results {
		byName[r.Generator] = r
	}
	lstmGap := math.Abs(byName["LSTM"].Mean[0] - actual[0])
	naiveGap := math.Abs(byName["Naive"].Mean[0] - actual[0])
	if lstmGap >= naiveGap {
		t.Errorf("LSTM bucket-0 gap %v should beat Naive %v (actual %v, lstm %v, naive %v)",
			lstmGap, naiveGap, actual[0], byName["LSTM"].Mean[0], byName["Naive"].Mean[0])
	}
	if byName["Naive"].Mean[0] >= actual[0] {
		t.Errorf("Naive should show less reuse than actual: %v vs %v",
			byName["Naive"].Mean[0], actual[0])
	}
}

// TestTable5Shape checks the packing result: Naive traces pack easier
// (higher FFAR) than real data, and the LSTM's median FFAR is closer to
// the real data's than Naive's is.
func TestTable5Shape(t *testing.T) {
	results := Table5(azure(t))
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]PackingResult{}
	for _, r := range results {
		byName[r.Source] = r
	}
	test := byName["Test data"]
	naive := byName["Naive"]
	lstm := byName["LSTM"]
	if naive.Median <= test.Median {
		t.Errorf("Naive median FFAR %v should exceed test data %v", naive.Median, test.Median)
	}
	// The LSTM's median FFAR should track the real data at least as well
	// as Naive's, within the sampling noise of the tuple set (the paper's
	// gaps are ~10x larger at its 500-tuple, million-VM scale).
	const noise = 0.004
	if math.Abs(lstm.Median-test.Median) >= math.Abs(naive.Median-test.Median)+noise {
		t.Errorf("LSTM median gap should not exceed Naive's: lstm %v naive %v test %v",
			lstm.Median, naive.Median, test.Median)
	}
	for _, r := range results {
		if len(r.FFARs) != azure(t).Scale.Tuples {
			t.Errorf("%s has %d packings", r.Source, len(r.FFARs))
		}
	}
}

// TestTenXScaling checks the §6.2 variation: 10x arrival scaling
// produces ~10x the VMs while preserving the reuse-distance shape.
func TestTenXScaling(t *testing.T) {
	res := TenX(azure(t))
	if res.VMRatio < 6 || res.VMRatio > 15 {
		t.Errorf("10x scaling produced VM ratio %v", res.VMRatio)
	}
	// Bucket-0 reuse proportion should be within a few points.
	if math.Abs(res.Reuse1x[0]-res.Reuse10x[0]) > 0.15 {
		t.Errorf("reuse shape changed under 10x: %v vs %v", res.Reuse1x[0], res.Reuse10x[0])
	}
}

// TestHuaweiUniformNLL pins the 259-flavor vocabulary: uniform NLL is
// ln(260) = 5.56, matching Table 2's 5.55. Evaluated directly so the
// test does not need to train the Huawei LSTM.
func TestHuaweiUniformNLL(t *testing.T) {
	c := huawei(t)
	toks := core.FlavorTokens(c.Test)
	ev := core.EvaluateFlavor(&core.UniformFlavor{K: c.Train.Flavors.K()}, toks, c.TestW.Start)
	if math.Abs(ev.NLL-math.Log(260)) > 1e-9 {
		t.Fatalf("uniform NLL %v != ln260", ev.NLL)
	}
}

// TestFigure8Shape checks the Huawei capacity result: the LSTM (with DOH
// sampling) covers more of the true workload than SimpleBatch, which is
// biased by the whole-history distributions under the planted regime
// change.
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains the Huawei model and samples traces")
	}
	c := huawei(t)
	results := Figure8(c)
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Generator] = r.Coverage
	}
	// The robust Huawei claims at this scale: the LSTM far outcovers
	// Naive, stays within noise of SimpleBatch (it clearly wins at the
	// paper's scale), and the DOH-sampling ablation matters (the paper's
	// 92.8% vs 61.9%).
	if byName["LSTM"] <= byName["Naive"] {
		t.Errorf("LSTM coverage %v should beat Naive %v", byName["LSTM"], byName["Naive"])
	}
	if byName["LSTM"] < byName["SimpleBatch"]-0.1 {
		t.Errorf("LSTM coverage %v should not trail SimpleBatch %v under regime change",
			byName["LSTM"], byName["SimpleBatch"])
	}
	if byName["LSTM"] <= byName["LSTM (no DOH sampling)"] {
		t.Errorf("DOH sampling should improve coverage: %v vs %v",
			byName["LSTM"], byName["LSTM (no DOH sampling)"])
	}
}

// TestTable4SurvivalAllocs pins the pooled-curve memory discipline of
// the Table 4 sweep: survival curves are converted once per KM table
// and once per teacher-forced subject (one shared slab), never per
// (subject, grid-time) sample. Before the SurvivalCurveAt refactor a
// single Table4 call allocated ~19 GB across ~11.7M allocations; the
// pooled path measures ~8k allocs / ~6 MB, and the budget below sits
// two orders of magnitude above that but two under the broken state,
// so any reintroduction of per-sample conversion trips it immediately.
func TestTable4SurvivalAllocs(t *testing.T) {
	c := azure(t)
	Table4(c) // warm caches (model training, trace slices) outside the measurement
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	Table4(c)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	t.Logf("Table4: %d allocs, %.1f MB", allocs, float64(bytes)/(1<<20))
	if allocs > 100_000 {
		t.Errorf("Table4 allocations = %d, budget 100k: per-sample curve conversion is back?", allocs)
	}
	if bytes > 100<<20 {
		t.Errorf("Table4 allocated %.1f MB, budget 100 MB: per-sample curve conversion is back?", float64(bytes)/(1<<20))
	}
}
