package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ExportSeries writes a TSV file with one row per period: time (days),
// interval lo/median/hi, and the actual value — the plot data behind the
// arrival and capacity figures (4-8). Columns are gnuplot- and
// pandas-friendly.
func ExportSeries(path string, intervals []metrics.Interval, actual []float64) error {
	if len(intervals) != len(actual) {
		return fmt.Errorf("experiments: export length mismatch %d vs %d", len(intervals), len(actual))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "days\tlo\tmedian\thi\tactual"); err != nil {
		return err
	}
	for p := range actual {
		days := float64(p) / float64(trace.PeriodsPerDay)
		if _, err := fmt.Fprintf(f, "%.4f\t%g\t%g\t%g\t%g\n",
			days, intervals[p].Lo, intervals[p].Median, intervals[p].Hi, actual[p]); err != nil {
			return err
		}
	}
	return nil
}

// ExportReuse writes the Figure 9 reuse-distance distributions as TSV:
// one row per bucket, one column per source.
func ExportReuse(path string, actual []float64, results []ReuseResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	header := "bucket\tactual"
	for _, r := range results {
		header += "\t" + r.Generator
	}
	if _, err := fmt.Fprintln(f, header); err != nil {
		return err
	}
	labels := []string{"0", "1", "2", "3", "4", "5", "6+"}
	for i, lab := range labels {
		row := fmt.Sprintf("%s\t%g", lab, actual[i])
		for _, r := range results {
			row += fmt.Sprintf("\t%g", r.Mean[i])
		}
		if _, err := fmt.Fprintln(f, row); err != nil {
			return err
		}
	}
	return nil
}

// ExportFFAR writes the Figure 10 scatter data as TSV: one row per
// packing with its source, CPU FFAR, and memory FFAR.
func ExportFFAR(path string, results []PackingResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "source\tcpu_ffar\tmem_ffar\tlimiting"); err != nil {
		return err
	}
	for _, r := range results {
		for _, p := range r.FFARs {
			if _, err := fmt.Fprintf(f, "%s\t%g\t%g\t%g\n", r.Source, p.CPUFFAR, p.MemFFAR, p.Limiting); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExportAll regenerates the plot-data files for every figure into dir
// (created if needed): fig4/fig5 (batch arrivals), fig6 (VM arrivals),
// fig7/fig8 (capacity), fig9 (reuse), fig10 (packing scatter).
func ExportAll(dir string, clouds ...*Cloud) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	FitAll(clouds...)
	for _, c := range clouds {
		tag := "azure"
		figA, figC := "fig4", "fig7"
		if c.ID == Huawei {
			tag = "huawei"
			figA, figC = "fig5", "fig8"
		}
		sampled, _ := Figure4(c)
		if err := ExportSeries(filepath.Join(dir, figA+"_"+tag+"_batch_arrivals.tsv"),
			sampled.Intervals, sampled.Actual); err != nil {
			return err
		}
		noDOH, _ := Figure6(c)
		if err := ExportSeries(filepath.Join(dir, "fig6_"+tag+"_vm_arrivals.tsv"),
			noDOH.Intervals, noDOH.Actual); err != nil {
			return err
		}
		var caps []CapacityResult
		if c.ID == Huawei {
			caps = Figure8(c)
		} else {
			caps = Figure7(c)
		}
		for _, r := range caps {
			name := fmt.Sprintf("%s_%s_capacity_%s.tsv", figC, tag, sanitize(r.Generator))
			if err := ExportSeries(filepath.Join(dir, name), r.Forecast.Intervals, r.Forecast.Actual); err != nil {
				return err
			}
		}
		actual, reuse := Figure9(c)
		if err := ExportReuse(filepath.Join(dir, "fig9_"+tag+"_reuse.tsv"), actual, reuse); err != nil {
			return err
		}
		if err := ExportFFAR(filepath.Join(dir, "fig10_"+tag+"_ffar.tsv"), Table5(c)); err != nil {
			return err
		}
	}
	return nil
}

// sanitize converts a display name into a filename fragment.
func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
