package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
)

func TestExportSeries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.tsv")
	iv := []metrics.Interval{{Lo: 1, Median: 2, Hi: 3}, {Lo: 4, Median: 5, Hi: 6}}
	if err := ExportSeries(path, iv, []float64{2.5, 5.5}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if lines[0] != "days\tlo\tmedian\thi\tactual" {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "\t1\t2\t3\t2.5") {
		t.Fatalf("row: %q", lines[1])
	}
}

func TestExportSeriesMismatch(t *testing.T) {
	if err := ExportSeries(filepath.Join(t.TempDir(), "x"), nil, []float64{1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestExportReuse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.tsv")
	actual := make([]float64, sched.ReuseBuckets)
	actual[0] = 0.5
	res := []ReuseResult{{Generator: "LSTM", Mean: make([]float64, sched.ReuseBuckets)}}
	if err := ExportReuse(path, actual, res); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	s := string(data)
	if !strings.Contains(s, "bucket\tactual\tLSTM") || !strings.Contains(s, "6+") {
		t.Fatalf("content: %q", s)
	}
}

func TestExportFFAR(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.tsv")
	res := []PackingResult{{
		Source: "Test data",
		FFARs:  []sched.PackResult{{CPUFFAR: 0.9, MemFFAR: 0.5, Limiting: 0.9}},
	}}
	if err := ExportFFAR(path, res); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "Test data\t0.9\t0.5\t0.9") {
		t.Fatalf("content: %q", string(data))
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("LSTM (no DOH sampling)"); got != "LSTM__no_DOH_sampling_" {
		t.Fatalf("sanitize = %q", got)
	}
}

// TestExportAll writes every figure's plot data for the (already
// trained) Azure cloud.
func TestExportAll(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: runs every figure experiment")
	}
	dir := t.TempDir()
	if err := ExportAll(dir, azure(t)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	for _, want := range []string{
		"fig4_azure_batch_arrivals.tsv",
		"fig6_azure_vm_arrivals.tsv",
		"fig9_azure_reuse.tsv",
		"fig10_azure_ffar.tsv",
	} {
		if !names[want] {
			t.Errorf("missing export %q (have %v)", want, names)
		}
	}
	// At least one capacity series per generator.
	foundCapacity := false
	for n := range names {
		if strings.HasPrefix(n, "fig7_azure_capacity_") {
			foundCapacity = true
		}
	}
	if !foundCapacity {
		t.Error("missing capacity exports")
	}
}
