package experiments

import (
	"repro/internal/capacity"
	"repro/internal/forecast"
	"repro/internal/metrics"
)

// ForecastRow is one method's row in the forecasting-vs-generative
// comparison (§7 "Workload Forecasting" contrast).
type ForecastRow struct {
	Method   string
	Coverage float64
	MAPE     float64
}

// ForecastVsGenerative compares classical time-series forecasters of the
// aggregate total-CPU series against the generative LSTM's
// trace-sampled prediction intervals on the same test window and
// coverage metric. The forecasters see the observed aggregate series up
// to the test window; the generative model sees individual jobs.
func ForecastVsGenerative(c *Cloud) []ForecastRow {
	full := capacity.FullSeries(c.Full)
	trainSeries := full[:c.TestW.Start]
	actual := full[c.TestW.Start:c.TestW.End]
	horizon := c.TestW.Periods()

	var rows []ForecastRow
	period := 288 // one day of 5-minute periods
	for _, base := range []forecast.Forecaster{
		&forecast.SeasonalNaive{Period: period},
		&forecast.HoltWinters{Period: period},
	} {
		p := &forecast.Probabilistic{Base: base, Level: 0.9}
		if err := p.Fit(trainSeries, horizon); err != nil {
			rows = append(rows, ForecastRow{Method: base.Name(), Coverage: -1})
			continue
		}
		iv := p.Intervals(horizon)
		point := make([]float64, horizon)
		for i, v := range iv {
			point[i] = v.Median
		}
		rows = append(rows, ForecastRow{
			Method:   base.Name(),
			Coverage: metrics.Coverage(actual, iv),
			MAPE:     forecast.MAPE(point, actual),
		})
	}

	// Generative model on the same footing: sampled traces plus the
	// carried-over load.
	gen := CapacityPlanning(c, c.Generators()[2:3]) // LSTM only
	lstm := gen[0]
	med := make([]float64, horizon)
	for i, iv := range lstm.Forecast.Intervals {
		med[i] = iv.Median
	}
	rows = append(rows, ForecastRow{
		Method:   "Generative LSTM",
		Coverage: lstm.Coverage,
		MAPE:     forecast.MAPE(med, lstm.Forecast.Actual),
	})
	return rows
}
