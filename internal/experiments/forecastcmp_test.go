package experiments

import "testing"

// TestForecastVsGenerative checks the §7 contrast: the generative model
// produces more accurate point forecasts of total CPUs (lower MAPE) than
// the classical aggregate-series forecasters, because it models the
// job-level process rather than a single aggregate.
func TestForecastVsGenerative(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains the LSTM and samples traces")
	}
	rows := ForecastVsGenerative(azure(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ForecastRow{}
	for _, r := range rows {
		byName[r.Method] = r
		if r.Coverage < 0 || r.Coverage > 1 {
			t.Errorf("%s coverage %v out of range", r.Method, r.Coverage)
		}
	}
	lstm := byName["Generative LSTM"]
	for _, classical := range []string{"SeasonalNaive", "HoltWinters"} {
		if lstm.MAPE >= byName[classical].MAPE {
			t.Errorf("generative MAPE %v should beat %s %v",
				lstm.MAPE, classical, byName[classical].MAPE)
		}
	}
}
