package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Fprintln helpers render each experiment's result in the paper's table
// format. All writers are plain text so cmd/experiments output can be
// diffed against EXPERIMENTS.md.

// RenderTable1 prints dataset statistics (paper Table 1).
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1. Experimental datasets")
	fmt.Fprintf(w, "%-12s %28s %32s\n", "", "Window size (days)", "Number of VMs")
	fmt.Fprintf(w, "%-12s %8s %8s %8s  %10s %10s %10s\n", "", "Train", "Dev", "Test", "Train", "Dev", "Test")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8.1f %8.1f %8.1f  %10d %10d %10d\n",
			r.Cloud, r.TrainDays, r.DevDays, r.TestDays, r.TrainVMs, r.DevVMs, r.TestVMs)
	}
}

// RenderArrivalCoverage prints a Figure 4/5/6-style summary line plus a
// compact sparkline of the actual counts against the interval band.
func RenderArrivalCoverage(w io.Writer, title string, res ArrivalCoverage) {
	fmt.Fprintf(w, "%s [%s arrivals, DOH=%s]: %.1f%% of true values in 90%% prediction interval\n",
		title, res.Kind, res.DOH, res.Coverage*100)
}

// RenderTable2 prints flavor-model results (paper Table 2).
func RenderTable2(w io.Writer, cloud string, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2 (%s). Flavor sequence modeling\n", cloud)
	fmt.Fprintf(w, "%-14s %8s %12s\n", "System", "NLL", "1-Best-Err")
	for _, r := range rows {
		nll := "N/A"
		if r.HasNLL {
			nll = fmt.Sprintf("%.2f", r.NLL)
		}
		fmt.Fprintf(w, "%-14s %8s %11.1f%%\n", r.System, nll, r.OneBestErr*100)
	}
}

// RenderTable3 prints lifetime-model results (paper Table 3).
func RenderTable3(w io.Writer, cloud string, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3 (%s). Lifetime modeling\n", cloud)
	fmt.Fprintf(w, "%-16s %8s %12s\n", "System", "BCE", "1-Best-Err")
	for _, r := range rows {
		bce := "N/A"
		if r.HasBCE {
			bce = fmt.Sprintf("%.3f", r.BCE)
		}
		fmt.Fprintf(w, "%-16s %8s %11.1f%%\n", r.System, bce, r.OneBestErr*100)
	}
}

// RenderTable4 prints the Survival-MSE evaluation (paper Table 4).
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4. Evaluation in continuous domain (Survival-MSE)")
	fmt.Fprintf(w, "%-6s %-14s %-16s %12s\n", "System", "Discretization", "Interpolation", "Survival-MSE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-14s %-16s %11.2f%%\n",
			r.System, r.Discretization, r.Interpolation, r.SurvivalMSE*100)
	}
}

// RenderCapacity prints Figure 7/8-style capacity planning coverage.
func RenderCapacity(w io.Writer, title string, results []CapacityResult) {
	fmt.Fprintln(w, title)
	for _, r := range results {
		fmt.Fprintf(w, "  %-24s %5.1f%% captured in 90%% prediction interval\n",
			r.Generator+"-generated:", r.Coverage*100)
	}
}

// RenderReuse prints Figure 9-style reuse-distance distributions.
func RenderReuse(w io.Writer, cloud string, actual []float64, results []ReuseResult) {
	fmt.Fprintf(w, "Figure 9 (%s). Reuse distance distributions (%% of requests)\n", cloud)
	header := []string{"0", "1", "2", "3", "4", "5", "6+"}
	fmt.Fprintf(w, "%-26s", "Reuse distance")
	for _, h := range header {
		fmt.Fprintf(w, "%7s", h)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-26s", "Test data")
	for _, v := range actual {
		fmt.Fprintf(w, "%6.1f%%", v*100)
	}
	fmt.Fprintln(w)
	for _, r := range results {
		fmt.Fprintf(w, "%-26s", "Range of "+r.Generator+" samples")
		for i := range r.Mean {
			fmt.Fprintf(w, "%6.1f%%", r.Mean[i]*100)
		}
		fmt.Fprintln(w)
	}
}

// RenderPacking prints Table 5-style FFAR summaries.
func RenderPacking(w io.Writer, cloud string, results []PackingResult) {
	fmt.Fprintf(w, "Table 5 (%s). First-failure allocation ratio (limiting resource)\n", cloud)
	fmt.Fprintf(w, "%-14s %10s %10s\n", "Generator", "Median", ">0.95")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %9.1f%% %9.1f%%\n", r.Source, r.Median*100, r.Frac95*100)
	}
}

// RenderTenX prints the 10x-scaling robustness summary.
func RenderTenX(w io.Writer, cloud string, res TenXResult) {
	fmt.Fprintf(w, "10x scaling (%s): VM ratio %.1fx\n", cloud, res.VMRatio)
	fmt.Fprintf(w, "  reuse bucket-0: 1x %.1f%% vs 10x %.1f%%\n", res.Reuse1x[0]*100, res.Reuse10x[0]*100)
	fmt.Fprintf(w, "  FFAR median:   1x %.1f%% vs 10x %.1f%%\n", res.Pack1x.Median*100, res.Pack10x.Median*100)
}

// RenderCensoring prints the §5.3 censoring-handling ablation.
func RenderCensoring(w io.Writer, cloud string, rows []CensoringRow) {
	fmt.Fprintf(w, "Censoring ablation (%s): KM test BCE by treatment\n", cloud)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %.4f\n", r.Variant, r.BCE)
	}
}

// RenderJoint prints the §7 single-LSTM-vs-staged ablation.
func RenderJoint(w io.Writer, cloud string, res JointResult) {
	fmt.Fprintf(w, "Single-LSTM (EOP) vs staged arrivals (%s): per-period batch counts\n", cloud)
	fmt.Fprintf(w, "  %-22s mean %.2f  dispersion %.2f\n", "actual", res.ActualMean, res.ActualDispersion)
	fmt.Fprintf(w, "  %-22s mean %.2f  dispersion %.2f  (err %.1f%%)\n",
		"staged (Poisson reg.)", res.StagedMean, res.StagedDispersion, res.StagedErr*100)
	fmt.Fprintf(w, "  %-22s mean %.2f  dispersion %.2f  (err %.1f%%)\n",
		"joint (EOP tokens)", res.JointMean, res.JointDispersion, res.JointErr*100)
}

// RenderForecast prints the §7 forecasting-vs-generative comparison.
func RenderForecast(w io.Writer, cloud string, rows []ForecastRow) {
	fmt.Fprintf(w, "Forecasting vs generative (%s): total-CPU test-window accuracy\n", cloud)
	fmt.Fprintf(w, "  %-18s %10s %8s\n", "Method", "Coverage", "MAPE")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %9.1f%% %7.1f%%\n", r.Method, r.Coverage*100, r.MAPE*100)
	}
}

// RenderArch prints the §7 sequence-architecture ablation.
func RenderArch(w io.Writer, cloud string, rows []ArchRow) {
	fmt.Fprintf(w, "Architecture ablation (%s): flavor-sequence modeling\n", cloud)
	fmt.Fprintf(w, "  %-14s %8s %12s\n", "Architecture", "NLL", "1-Best-Err")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %8.2f %11.1f%%\n", r.Arch, r.NLL, r.OneBestErr*100)
	}
}

// RenderHeads prints the §2.3.1 hazard-vs-PMF lifetime-head comparison.
func RenderHeads(w io.Writer, cloud string, rows []HeadRow) {
	fmt.Fprintf(w, "Lifetime-head ablation (%s): hazard vs PMF parameterization\n", cloud)
	fmt.Fprintf(w, "  %-20s %8s %12s\n", "Head", "BCE", "1-Best-Err")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %8.3f %11.1f%%\n", r.Head, r.BCE, r.OneBestErr*100)
	}
}

// Sparkline renders values as a unicode mini-chart (for terminal
// inspection of arrival/capacity series).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
