package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// JointResult compares the staged arrival process (stage-1 Poisson
// regression) against the §7 single-LSTM alternative with end-of-period
// tokens on per-period batch-count realism over the test window.
type JointResult struct {
	ActualMean float64
	// StagedMean / JointMean are the mean per-period batch counts each
	// model generates (averaged over samples).
	StagedMean float64
	JointMean  float64
	// StagedErr / JointErr are the absolute relative errors of the
	// generated means vs the actual mean.
	StagedErr float64
	JointErr  float64
	// StagedDispersion / JointDispersion / ActualDispersion are the
	// variance/mean ratios of the per-period counts.
	ActualDispersion float64
	StagedDispersion float64
	JointDispersion  float64
}

// JointVsStaged reproduces the paper's §7 observation that delegating
// arrival counts to EOP tokens is fragile compared to an explicit
// arrival-rate stage. Both models train on the same window; each
// generates Samples/4 count series over the test window.
func JointVsStaged(c *Cloud) JointResult {
	tc := c.Scale.Train
	joint := core.TrainJoint(c.Train, tc)
	staged := c.Model()

	n := c.Scale.Samples/4 + 1
	doh := features.DOHSampler{Mode: features.DOHGeometric, GeomP: 1.0 / 7.0}

	actualCounts := c.Test.BatchCounts()
	actual := make([]float64, len(actualCounts))
	for i, v := range actualCounts {
		actual[i] = float64(v)
	}

	gj := rng.New(c.Scale.Seed + 61)
	gs := rng.New(c.Scale.Seed + 62)
	var jointAll, stagedAll []float64
	for s := 0; s < n; s++ {
		jc := joint.GenerateCounts(gj.Split(), c.TestW, doh)
		for _, v := range jc {
			jointAll = append(jointAll, float64(v))
		}
		g := gs.Split()
		for p := c.TestW.Start; p < c.TestW.End; p++ {
			stagedAll = append(stagedAll, float64(staged.Arrival.SampleCount(g, p)))
		}
	}

	res := JointResult{
		ActualMean:       metrics.Mean(actual),
		StagedMean:       metrics.Mean(stagedAll),
		JointMean:        metrics.Mean(jointAll),
		ActualDispersion: dispersion(actual),
		StagedDispersion: dispersion(stagedAll),
		JointDispersion:  dispersion(jointAll),
	}
	if res.ActualMean > 0 {
		res.StagedErr = math.Abs(res.StagedMean-res.ActualMean) / res.ActualMean
		res.JointErr = math.Abs(res.JointMean-res.ActualMean) / res.ActualMean
	}
	return res
}

func dispersion(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := metrics.Mean(xs)
	if m == 0 {
		return 0
	}
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs)) / m
}
