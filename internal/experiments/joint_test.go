package experiments

import "testing"

// TestJointVsStaged reproduces the paper's §7 design rationale: the
// explicit arrival-rate stage tracks the true batch-count process at
// least as faithfully as the single-LSTM-with-EOP-tokens alternative,
// whose count distribution drifts (the paper found it "exquisitely
// sensitive to the timely sampling of these tokens").
func TestJointVsStaged(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains the joint LSTM")
	}
	res := JointVsStaged(azure(t))
	if res.ActualMean <= 0 {
		t.Fatalf("degenerate actual mean: %+v", res)
	}
	if res.StagedErr > res.JointErr+0.05 {
		t.Errorf("staged mean error %v should not exceed joint %v", res.StagedErr, res.JointErr)
	}
	stagedGap := abs(res.StagedDispersion - res.ActualDispersion)
	jointGap := abs(res.JointDispersion - res.ActualDispersion)
	if stagedGap > jointGap+0.25 {
		t.Errorf("staged dispersion gap %v should not exceed joint %v", stagedGap, jointGap)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
