package experiments

import (
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/survival"
)

// ArrivalCoverage is the result of an arrival-forecast experiment
// (Figures 4, 5 and 6): per-period prediction intervals over the test
// window and their coverage of the true counts.
type ArrivalCoverage struct {
	Cloud     string
	Kind      string // "batch" or "VM"
	DOH       string // "sampled" or "last-day" or "none"
	Intervals []metrics.Interval
	Actual    []float64
	Coverage  float64
}

// arrivalCoverage samples counts per test period and computes 90%
// interval coverage (§5.1: 500 samples per period).
func arrivalCoverage(c *Cloud, kind core.ArrivalKind, useDOH bool, mode features.DOHMode) ArrivalCoverage {
	opt := core.ArrivalOptions{Kind: kind, UseDOH: useDOH,
		DOH: features.DOHSampler{Mode: mode, GeomP: 1.0 / 7.0}}
	m, err := core.TrainArrival(c.Train, opt)
	if err != nil {
		panic(err)
	}
	g := rng.New(c.Scale.Seed + 77)
	periods := c.TestW.Periods()
	samples := make([][]float64, c.Scale.Samples)
	for s := range samples {
		row := make([]float64, periods)
		for p := 0; p < periods; p++ {
			row[p] = float64(m.SampleCount(g, c.TestW.Start+p))
		}
		samples[s] = row
	}
	var counts []int
	if kind == core.BatchArrivals {
		counts = c.Test.BatchCounts()
	} else {
		counts = c.Test.ArrivalCounts()
	}
	actual := make([]float64, periods)
	for p, v := range counts {
		actual[p] = float64(v)
	}
	iv := metrics.PredictionIntervals(samples, 0.9)
	res := ArrivalCoverage{
		Cloud:     c.ID.String(),
		Intervals: iv,
		Actual:    actual,
		Coverage:  metrics.Coverage(actual, iv),
	}
	if kind == core.BatchArrivals {
		res.Kind = "batch"
	} else {
		res.Kind = "VM"
	}
	switch {
	case !useDOH:
		res.DOH = "none"
	case mode == features.DOHGeometric:
		res.DOH = "sampled"
	default:
		res.DOH = "last-day"
	}
	return res
}

// Figure4 reproduces the Azure batch-arrival coverage figure, including
// the last-day-DOH ablation discussed in §5.1 (82.5% vs 56.5% in the
// paper).
func Figure4(c *Cloud) (sampled, lastDay ArrivalCoverage) {
	return arrivalCoverage(c, core.BatchArrivals, true, features.DOHGeometric),
		arrivalCoverage(c, core.BatchArrivals, true, features.DOHLastDay)
}

// Figure5 is the Huawei variant of Figure 4 (94.5% vs 95.0%).
func Figure5(c *Cloud) (sampled, lastDay ArrivalCoverage) {
	return Figure4(c)
}

// Figure6 reproduces the individual-VM-arrival Poisson experiment: raw
// VM counts without DOH features (the traditional model) and with
// sampled DOH days (18% → 51.4% on Azure; 52.9% → 68.2% on Huawei).
func Figure6(c *Cloud) (noDOH, withDOH ArrivalCoverage) {
	return arrivalCoverage(c, core.VMArrivals, false, features.DOHLastDay),
		arrivalCoverage(c, core.VMArrivals, true, features.DOHGeometric)
}

// Table2Row is one system row of Table 2.
type Table2Row struct {
	System     string
	NLL        float64
	HasNLL     bool
	OneBestErr float64
}

// Table2 evaluates the four flavor predictors on the test sequence.
func Table2(c *Cloud) []Table2Row {
	toks := core.FlavorTokens(c.Test)
	preds := []core.FlavorPredictor{
		&core.UniformFlavor{K: c.Train.Flavors.K()},
		core.NewMultinomialFlavor(c.Train),
		core.NewRepeatFlavor(c.Train),
		core.NewLSTMFlavorPredictor(c.Model().Flavor),
	}
	rows := make([]Table2Row, 0, len(preds))
	for _, p := range preds {
		ev := core.EvaluateFlavor(p, toks, c.TestW.Start)
		rows = append(rows, Table2Row{
			System: p.Name(), NLL: ev.NLL, HasNLL: ev.HasNLL, OneBestErr: ev.OneBestErr,
		})
	}
	return rows
}

// Table3Row is one system row of Table 3.
type Table3Row struct {
	System     string
	BCE        float64
	HasBCE     bool
	OneBestErr float64
}

// Table3 evaluates the five lifetime predictors on the test sequence.
func Table3(c *Cloud) []Table3Row {
	steps := core.LifetimeSteps(c.Test, c.Bins)
	preds := []core.LifetimePredictor{
		&core.CoinFlipLifetime{J: c.Bins.J()},
		core.NewKMLifetime(c.Train, c.Bins),
		core.NewPerFlavorKMLifetime(c.Train, c.Bins),
		core.NewRepeatLifetime(c.Train, c.Bins),
		core.NewLSTMLifetimePredictor(c.Model().Lifetime),
	}
	rows := make([]Table3Row, 0, len(preds))
	for _, p := range preds {
		ev := core.EvaluateLifetime(p, steps, c.Bins, c.TestW.Start)
		rows = append(rows, Table3Row{
			System: p.Name(), BCE: ev.BCE, HasBCE: ev.HasBCE, OneBestErr: ev.OneBestErr,
		})
	}
	return rows
}

// Table4Row is one row of the continuous-domain Survival-MSE table.
type Table4Row struct {
	System         string
	Discretization string
	Interpolation  string
	SurvivalMSE    float64
}

// Table4 reproduces the Survival-MSE evaluation: KM with 47 and 495
// bins under stepped and CDI interpolation, continuous-time KM, and the
// LSTM with 47 bins under both interpolations. Curves are evaluated on
// an hourly grid out to 20 days.
func Table4(c *Cloud) []Table4Row {
	const (
		gridStep = 3600.0
		horizon  = 20 * 86400.0
	)
	// The "true survival function for each job" needs the true lifetime;
	// since the ground truth simulator is ours, extend the observation
	// horizon far past the test window so virtually no test job is
	// censored (the paper's Azure test window, at 5.7 days with 3.2%
	// censoring, has the same property at its native scale).
	extended := c.Full.Slice(c.TestW, 30*86400)
	obs := make([]survival.Observation, len(extended.VMs))
	for i, vm := range extended.VMs {
		obs[i] = survival.Observation{Duration: vm.Duration, Censored: vm.Censored}
	}
	trainObs := make([]survival.Observation, len(c.Train.VMs))
	for i, vm := range c.Train.VMs {
		trainObs[i] = survival.Observation{Duration: vm.Duration, Censored: vm.Censored}
	}
	var rows []Table4Row
	addKM := func(bins survival.Bins, disc string, interp survival.Interpolation, iname string) {
		// One curve conversion per table, not one per (subject, grid
		// time): the grid sweep below evaluates the same hazard millions
		// of times.
		s := survival.HazardToSurvival(survival.KaplanMeier(trainObs, bins))
		mse := survival.SurvivalMSE(func(_ int, t float64) float64 {
			return survival.SurvivalCurveAt(t, s, bins, interp)
		}, obs, gridStep, horizon)
		rows = append(rows, Table4Row{System: "KM", Discretization: disc, Interpolation: iname, SurvivalMSE: mse})
	}
	coarse := c.Bins
	fine := survival.FineBins()
	addKM(coarse, "47 bins", survival.Stepped, "Stepped")
	addKM(fine, "495 bins", survival.Stepped, "Stepped")
	addKM(coarse, "47 bins", survival.CDI, "CDI")
	addKM(fine, "495 bins", survival.CDI, "CDI")

	ckm := survival.NewContinuousKM(trainObs)
	mse := survival.SurvivalMSE(func(_ int, t float64) float64 { return ckm.At(t) }, obs, gridStep, horizon)
	rows = append(rows, Table4Row{System: "KM", Discretization: "Continuous", Interpolation: "N/A", SurvivalMSE: mse})

	// Teacher-forced inputs also come from the extended view: with the
	// paper's ~3% censoring the model sees essentially true previous
	// lifetimes, which the 1-day scaled window would otherwise hide.
	steps := core.LifetimeSteps(extended, c.Bins)
	hazards := c.Model().Lifetime.TeacherForcedHazards(steps, c.TestW.Start)
	// Convert every subject's hazard to its survival curve exactly once
	// (one slab, J floats per subject) instead of per grid time — this
	// was ~19 GB of duplicate HazardToSurvival allocations per Table4
	// call, pinned by TestTable4SurvivalAllocs.
	j := c.Bins.J()
	slab := make([]float64, len(hazards)*j)
	curves := make([][]float64, len(hazards))
	for i, h := range hazards {
		curves[i] = survival.HazardToSurvivalInto(slab[i*j:(i+1)*j], h)
	}
	for _, spec := range []struct {
		interp survival.Interpolation
		name   string
	}{{survival.Stepped, "Stepped"}, {survival.CDI, "CDI"}} {
		interp := spec.interp
		mse := survival.SurvivalMSE(func(i int, t float64) float64 {
			return survival.SurvivalCurveAt(t, curves[i], c.Bins, interp)
		}, obs, gridStep, horizon)
		rows = append(rows, Table4Row{System: "LSTM", Discretization: "47 bins", Interpolation: spec.name, SurvivalMSE: mse})
	}
	return rows
}

// CensoringRow is one row of the §5.3 censoring-handling ablation.
type CensoringRow struct {
	Variant string
	BCE     float64
}

// CensoringAblation compares the three KM censoring treatments discussed
// in §5.3: proper censoring-aware KM, discarding censored VMs, and
// treating censoring times as terminations.
func CensoringAblation(c *Cloud) []CensoringRow {
	trainObs := make([]survival.Observation, len(c.Train.VMs))
	for i, vm := range c.Train.VMs {
		trainObs[i] = survival.Observation{Duration: vm.Duration, Censored: vm.Censored}
	}
	steps := core.LifetimeSteps(c.Test, c.Bins)
	variants := []struct {
		name string
		h    []float64
	}{
		{"censoring-aware", survival.KaplanMeier(trainObs, c.Bins)},
		{"ignore-censored", survival.KaplanMeierIgnoreCensored(trainObs, c.Bins)},
		{"censored-as-events", survival.KaplanMeierCensoredAsEvents(trainObs, c.Bins)},
	}
	rows := make([]CensoringRow, 0, len(variants))
	for _, v := range variants {
		pred := &fixedHazard{name: v.name, h: v.h}
		ev := core.EvaluateLifetime(pred, steps, c.Bins, c.TestW.Start)
		rows = append(rows, CensoringRow{Variant: v.name, BCE: ev.BCE})
	}
	return rows
}

// fixedHazard is a LifetimePredictor with a constant hazard.
type fixedHazard struct {
	name string
	h    []float64
}

func (f *fixedHazard) Name() string                            { return f.name }
func (f *fixedHazard) Reset()                                  {}
func (f *fixedHazard) Hazard(core.LifetimeStep, int) []float64 { return f.h }
func (f *fixedHazard) PredictBin(core.LifetimeStep) int        { return 0 }
func (f *fixedHazard) Observe(core.LifetimeStep)               {}
