package experiments

import (
	"math"

	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

// splitStreams derives n child RNG streams from g, in order. Splitting
// happens serially before any parallel region, so the streams — and
// therefore every downstream draw — do not depend on the worker count.
func splitStreams(g *rng.RNG, n int) []*rng.RNG {
	gs := make([]*rng.RNG, n)
	for i := range gs {
		gs[i] = g.Split()
	}
	return gs
}

// CapacityResult is one generator's row in a Figure 7/8 experiment.
type CapacityResult struct {
	Generator string
	Coverage  float64
	Forecast  capacity.Forecast
}

// sampleCPUSeries generates n traces and returns their total-CPU
// series. Generators that support continuous batching decode all n
// streams through shared step GEMMs; the rest sample in parallel from
// pre-split RNG streams. Both paths produce the same traces as a
// serial run, sample for sample.
func sampleCPUSeries(c *Cloud, gen core.Generator, n int, seed int64) [][]float64 {
	gs := splitStreams(rng.New(seed), n)
	out := make([][]float64, n)
	if bg, ok := gen.(core.BatchGenerator); ok {
		trs := bg.GenerateBatch(gs, c.TestW)
		for i, tr := range trs {
			out[i] = capacity.TotalCPUSeries(core.WithCatalog(tr, c.Full.Flavors))
		}
		return out
	}
	par.Do(n, func(i int) {
		tr := core.WithCatalog(gen.Generate(gs[i], c.TestW), c.Full.Flavors)
		out[i] = capacity.TotalCPUSeries(tr)
	})
	return out
}

// CapacityPlanning reproduces Figures 7 (Azure) and 8 (Huawei): 90%
// prediction intervals for total CPUs over the test window from each
// generator, with the carried-over load of VMs already running at the
// window start added to every model (§6.1).
func CapacityPlanning(c *Cloud, gens []core.Generator) []CapacityResult {
	carry := capacity.CarryOverSeries(c.Full, c.TestW)
	actual := capacity.TotalCPUSeries(c.Full.Slice(c.TestW, 0))
	out := make([]CapacityResult, 0, len(gens))
	for gi, gen := range gens {
		samples := sampleCPUSeries(c, gen, c.Scale.Samples, c.Scale.Seed+int64(1000+gi))
		f := capacity.Evaluate(samples, actual, carry, 0.9)
		out = append(out, CapacityResult{Generator: gen.Name(), Coverage: f.Coverage, Forecast: f})
	}
	return out
}

// Figure7 runs capacity planning with the three §6 generators.
func Figure7(c *Cloud) []CapacityResult {
	return CapacityPlanning(c, c.Generators())
}

// Figure8 runs capacity planning on the Huawei-like cloud, adding the
// no-DOH LSTM ablation the paper reports (92.8% with DOH sampling vs
// 61.9% without).
func Figure8(c *Cloud) []CapacityResult {
	noDOH := c.ModelNoDOH()
	gens := append(c.Generators(), namedGenerator{noDOH, "LSTM (no DOH sampling)"})
	return CapacityPlanning(c, gens)
}

// namedGenerator overrides a generator's display name.
type namedGenerator struct {
	core.Generator
	name string
}

func (n namedGenerator) Name() string { return n.name }

// ReuseResult is one generator's reuse-distance distribution (Figure 9):
// per-bucket min/mean/max proportions across the sampled traces.
type ReuseResult struct {
	Generator string
	Min       []float64
	Mean      []float64
	Max       []float64
}

// Figure9 computes reuse-distance distributions for the actual test data
// and for samples from each generator.
func Figure9(c *Cloud) (actual []float64, results []ReuseResult) {
	actual = sched.ReuseHistogram(sched.ReuseDistances(c.Test))
	for gi, gen := range c.Generators() {
		// Reuse distributions are stable across samples; a fraction of
		// the capacity-planning sample count suffices.
		n := c.Scale.Samples/5 + 1
		gs := splitStreams(rng.New(c.Scale.Seed+int64(2000+gi)), n)
		hists := make([][]float64, n)
		if bg, ok := gen.(core.BatchGenerator); ok {
			// Batched decode through shared step GEMMs; per-stream
			// results are identical to the serial path below.
			for s, tr := range bg.GenerateBatch(gs, c.TestW) {
				hists[s] = sched.ReuseHistogram(sched.ReuseDistances(tr))
			}
		} else {
			par.Do(n, func(s int) {
				tr := gen.Generate(gs[s], c.TestW)
				hists[s] = sched.ReuseHistogram(sched.ReuseDistances(tr))
			})
		}
		minH := make([]float64, sched.ReuseBuckets)
		maxH := make([]float64, sched.ReuseBuckets)
		sumH := make([]float64, sched.ReuseBuckets)
		for i := range minH {
			minH[i] = math.Inf(1)
			maxH[i] = math.Inf(-1)
		}
		for _, h := range hists {
			for i, v := range h {
				minH[i] = math.Min(minH[i], v)
				maxH[i] = math.Max(maxH[i], v)
				sumH[i] += v
			}
		}
		mean := make([]float64, sched.ReuseBuckets)
		for i := range mean {
			mean[i] = sumH[i] / float64(n)
		}
		results = append(results, ReuseResult{
			Generator: gen.Name(), Min: minH, Mean: mean, Max: maxH,
		})
	}
	return actual, results
}

// PackingResult summarizes Table 5 / Figure 10 for one trace source:
// per-tuple limiting-resource FFARs, their median, and the fraction of
// packings exceeding 0.95.
type PackingResult struct {
	Source string
	FFARs  []sched.PackResult
	Median float64
	Frac95 float64
}

func summarizePacking(name string, results []sched.PackResult) PackingResult {
	limiting := make([]float64, len(results))
	over := 0
	for i, r := range results {
		limiting[i] = r.Limiting
		if r.Limiting > 0.95 {
			over++
		}
	}
	med := 0.0
	if len(limiting) > 0 {
		med = metrics.Quantile(limiting, 0.5)
	}
	frac := 0.0
	if len(results) > 0 {
		frac = float64(over) / float64(len(results))
	}
	return PackingResult{Source: name, FFARs: results, Median: med, Frac95: frac}
}

// packTrace runs every tuple against one trace. The tuples share one
// sequential RNG stream (Pack's draw count is data-dependent), so the
// loop itself stays serial; Table5 parallelizes across sources instead.
func packTrace(tr *trace.Trace, tuples []sched.Tuple, seed int64) []sched.PackResult {
	g := rng.New(seed)
	events := sched.Events(tr, g.Split())
	out := make([]sched.PackResult, len(tuples))
	for i, tp := range tuples {
		out[i] = sched.RunTuple(tr, events, tp, g)
	}
	return out
}

// defaultTupleRanges sizes clusters so that CPU and memory are each the
// limiting resource in roughly half the packings (§6.2). The ranges are
// expressed relative to the cloud's mean per-VM demand.
func defaultTupleRanges(c *Cloud) sched.TupleRanges {
	var cpu, mem float64
	for _, vm := range c.Train.VMs {
		cpu += c.Full.Flavors.Defs[vm.Flavor].CPU
		mem += c.Full.Flavors.Defs[vm.Flavor].MemGB
	}
	n := float64(len(c.Train.VMs))
	if n == 0 {
		n = 1
	}
	meanCPU, meanMem := cpu/n, mem/n
	return sched.TupleRanges{
		MinServers: 5, MaxServers: 25,
		MinCPU: 4 * meanCPU, MaxCPU: 16 * meanCPU,
		MinMem: 4 * meanMem, MaxMem: 16 * meanMem,
	}
}

// Table5 reproduces the packing experiments of Table 5 / Figure 10: the
// same random scheduling tuples applied to the actual test data and to
// one sampled trace per tuple from each generator.
func Table5(c *Cloud) []PackingResult {
	tuples := sched.SampleTuples(rng.New(c.Scale.Seed+31), c.Scale.Tuples, defaultTupleRanges(c))
	gens := c.Generators()
	// Within one source the tuples share a single sequential RNG stream
	// (trace sampling, event jitter, and packing interleave draws whose
	// counts are data-dependent), so each source runs serially and the
	// fan-out is across sources. Every source seeds its own generator,
	// so the per-source streams — and hence the results — match a fully
	// serial run exactly.
	out := make([]PackingResult, len(gens)+1)
	par.Do(len(gens)+1, func(gi int) {
		if gi == len(gens) {
			out[gi] = summarizePacking("Test data", packTrace(c.Test, tuples, c.Scale.Seed+41))
			return
		}
		gen := gens[gi]
		g := rng.New(c.Scale.Seed + int64(3000+gi))
		results := make([]sched.PackResult, len(tuples))
		for i, tp := range tuples {
			tr := core.WithCatalog(gen.Generate(g.Split(), c.TestW), c.Full.Flavors)
			events := sched.Events(tr, g.Split())
			results[i] = sched.RunTuple(tr, events, tp, g)
		}
		out[gi] = summarizePacking(gen.Name(), results)
	})
	return out
}

// TenXResult holds the §6.2 10×-scaling robustness check: reuse
// histograms and packing summaries at 1× and 10× arrival rates for the
// LSTM generator.
type TenXResult struct {
	Reuse1x, Reuse10x []float64
	Pack1x, Pack10x   PackingResult
	VMRatio           float64
}

// TenX scales the LSTM generator's arrival rate 10× ("changing a single
// line of code", footnote 5) and verifies the reuse and FFAR shapes
// survive, using arrivals-only packings as in the paper's variation.
func TenX(c *Cloud) TenXResult {
	base := *c.Model()
	base.RateScale = 1
	scaled := *c.Model()
	scaled.RateScale = 10
	g := rng.New(c.Scale.Seed + 51)
	tr1 := core.WithCatalog(base.Generate(g.Split(), c.TestW), c.Full.Flavors)
	tr10 := core.WithCatalog(scaled.Generate(g.Split(), c.TestW), c.Full.Flavors)

	tuples := sched.SampleTuples(rng.New(c.Scale.Seed+52), c.Scale.Tuples, defaultTupleRanges(c))
	packArrivalsOnly := func(tr *trace.Trace, seed int64) []sched.PackResult {
		gg := rng.New(seed)
		events := sched.Events(tr, gg.Split())
		gs := splitStreams(gg, len(tuples))
		out := make([]sched.PackResult, len(tuples))
		par.Do(len(tuples), func(i int) {
			tp := tuples[i]
			start := int(tp.StartFrac * float64(len(events)))
			out[i] = sched.Pack(tr, events, sched.PackOptions{
				Servers: tp.Servers, CPUCap: tp.CPUCap, MemCap: tp.MemCap,
				Alg: sched.Algorithms()[tp.AlgIndex], Start: start, NoDeparts: true,
			}, gs[i])
		})
		return out
	}
	res := TenXResult{
		Reuse1x:  sched.ReuseHistogram(sched.ReuseDistances(tr1)),
		Reuse10x: sched.ReuseHistogram(sched.ReuseDistances(tr10)),
		Pack1x:   summarizePacking("LSTM 1x", packArrivalsOnly(tr1, c.Scale.Seed+53)),
		Pack10x:  summarizePacking("LSTM 10x", packArrivalsOnly(tr10, c.Scale.Seed+54)),
	}
	if len(tr1.VMs) > 0 {
		res.VMRatio = float64(len(tr10.VMs)) / float64(len(tr1.VMs))
	}
	return res
}
