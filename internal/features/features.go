// Package features builds the model input encodings of §2.1.2, §2.2.2
// and §2.3.3: one-hot hour-of-day and day-of-week, survival-encoded
// day-of-history (DOH), flavor one-hots with the end-of-batch token,
// survival-encoded previous lifetimes with termination indicators, and
// the geometric DOH sampler used when generating beyond the training
// window.
package features

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/trace"
)

// OneHot writes a one-hot encoding of idx into dst (which is zeroed
// first).
func OneHot(dst []float64, idx int) {
	for i := range dst {
		dst[i] = 0
	}
	if idx < 0 || idx >= len(dst) {
		panic(fmt.Sprintf("features: one-hot index %d out of [0,%d)", idx, len(dst)))
	}
	dst[idx] = 1
}

// SurvivalEncode writes a survival encoding of idx into dst: elements
// 0..idx are 1, the rest 0 (§2.1.2). idx is clamped to the valid range;
// idx < 0 yields all zeros.
func SurvivalEncode(dst []float64, idx int) {
	if idx >= len(dst) {
		idx = len(dst) - 1
	}
	for i := range dst {
		if i <= idx {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// Temporal encodes the coarse-granularity period features shared by all
// three model stages: hour-of-day (one-hot, 24), day-of-week (one-hot,
// 7), and day-of-history (survival-encoded over HistoryDays).
type Temporal struct {
	HistoryDays int
}

// Dim returns the encoded feature dimensionality.
func (t Temporal) Dim() int { return 24 + 7 + t.HistoryDays }

// Encode writes the temporal features of the given absolute period into
// dst. dohDay is the day to encode in the DOH block — the period's own
// day during training, or a sampled day during generation (§2.1.2).
func (t Temporal) Encode(dst []float64, period, dohDay int) {
	if len(dst) != t.Dim() {
		panic(fmt.Sprintf("features: temporal dst len %d, want %d", len(dst), t.Dim()))
	}
	OneHot(dst[:24], trace.HourOfDay(period))
	OneHot(dst[24:31], trace.DayOfWeek(period))
	SurvivalEncode(dst[31:], clamp(dohDay, 0, t.HistoryDays-1))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DOHMode selects how the day-of-history feature is set when generating
// periods beyond the training window (§2.1.2).
type DOHMode int

const (
	// DOHLastDay always encodes the final training day N.
	DOHLastDay DOHMode = iota
	// DOHGeometric samples a day k-days-before-N with k ~ Geometric(p).
	DOHGeometric
)

// DOHSampler draws the day used for the DOH feature at generation time.
type DOHSampler struct {
	Mode        DOHMode
	HistoryDays int     // N
	GeomP       float64 // success probability (paper: 1/7)
}

// Sample returns the day index to encode.
func (s DOHSampler) Sample(g *rng.RNG) int {
	last := s.HistoryDays - 1
	if s.Mode == DOHLastDay {
		return last
	}
	p := s.GeomP
	if p <= 0 || p > 1 {
		p = 1.0 / 7.0
	}
	return clamp(last-g.Geometric(p), 0, last)
}

// LifetimeFeatures encodes the previous job's lifetime for the hazard
// LSTM (§2.3.3): a survival encoding of the previous job's (possibly
// censored) lifetime bin, plus per-bin termination indicators that are 1
// for every bin at or beyond the termination bin when the previous job
// is known to have terminated, and all zero when it was censored (or
// when there is no previous job).
type LifetimeFeatures struct {
	Bins int // number of lifetime bins J
}

// Dim returns the encoded dimensionality (2J).
func (l LifetimeFeatures) Dim() int { return 2 * l.Bins }

// Encode writes the previous-lifetime features. prevBin < 0 means no
// previous job (both blocks zero).
func (l LifetimeFeatures) Encode(dst []float64, prevBin int, prevCensored bool) {
	if len(dst) != l.Dim() {
		panic(fmt.Sprintf("features: lifetime dst len %d, want %d", len(dst), l.Dim()))
	}
	surv := dst[:l.Bins]
	term := dst[l.Bins:]
	if prevBin < 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	SurvivalEncode(surv, prevBin)
	if prevCensored {
		for i := range term {
			term[i] = 0
		}
		return
	}
	for i := range term {
		if i >= prevBin {
			term[i] = 1
		} else {
			term[i] = 0
		}
	}
}
