package features

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func TestOneHot(t *testing.T) {
	dst := make([]float64, 4)
	OneHot(dst, 2)
	want := []float64{0, 0, 1, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("one-hot = %v", dst)
		}
	}
	// Re-encoding zeroes old positions.
	OneHot(dst, 0)
	if dst[2] != 0 || dst[0] != 1 {
		t.Fatalf("re-encode = %v", dst)
	}
}

func TestOneHotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHot(make([]float64, 3), 3)
}

func TestSurvivalEncode(t *testing.T) {
	dst := make([]float64, 5)
	SurvivalEncode(dst, 2)
	want := []float64{1, 1, 1, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("survival = %v", dst)
		}
	}
	SurvivalEncode(dst, -1)
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("negative idx should be all zero: %v", dst)
		}
	}
	SurvivalEncode(dst, 99) // clamps
	for _, v := range dst {
		if v != 1 {
			t.Fatalf("clamped idx should be all ones: %v", dst)
		}
	}
}

func TestTemporalEncode(t *testing.T) {
	tm := Temporal{HistoryDays: 10}
	if tm.Dim() != 41 {
		t.Fatalf("dim = %d", tm.Dim())
	}
	dst := make([]float64, tm.Dim())
	// Period at hour 3 of day 8 (day-of-week 1).
	p := 8*trace.PeriodsPerDay + 3*trace.PeriodsPerHour
	tm.Encode(dst, p, 8)
	if dst[3] != 1 {
		t.Fatalf("HOD wrong: %v", dst[:24])
	}
	if dst[24+1] != 1 {
		t.Fatalf("DOW wrong: %v", dst[24:31])
	}
	// DOH survival encode of day 8: first 9 elements 1.
	for i := 0; i < 9; i++ {
		if dst[31+i] != 1 {
			t.Fatalf("DOH wrong at %d: %v", i, dst[31:])
		}
	}
	if dst[31+9] != 0 {
		t.Fatalf("DOH should stop at day 8: %v", dst[31:])
	}
}

func TestTemporalEncodeClamps(t *testing.T) {
	tm := Temporal{HistoryDays: 5}
	dst := make([]float64, tm.Dim())
	tm.Encode(dst, 0, 99) // beyond history: clamps to last day
	for i := 0; i < 5; i++ {
		if dst[31+i] != 1 {
			t.Fatal("clamp to last day failed")
		}
	}
}

func TestDOHSamplerLastDay(t *testing.T) {
	s := DOHSampler{Mode: DOHLastDay, HistoryDays: 20}
	g := rng.New(1)
	for i := 0; i < 10; i++ {
		if d := s.Sample(g); d != 19 {
			t.Fatalf("last-day sample = %d", d)
		}
	}
}

func TestDOHSamplerGeometric(t *testing.T) {
	s := DOHSampler{Mode: DOHGeometric, HistoryDays: 50, GeomP: 1.0 / 7.0}
	g := rng.New(2)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		d := s.Sample(g)
		if d < 0 || d > 49 {
			t.Fatalf("sample %d out of range", d)
		}
		sum += float64(d)
	}
	mean := sum / float64(n)
	// Expected roughly 49 - 6 = 43 (slightly higher due to clamping).
	if mean < 41 || mean > 45 {
		t.Fatalf("geometric DOH mean %v, want ~43", mean)
	}
}

func TestDOHSamplerDefaultP(t *testing.T) {
	s := DOHSampler{Mode: DOHGeometric, HistoryDays: 30}
	g := rng.New(3)
	for i := 0; i < 100; i++ {
		d := s.Sample(g)
		if d < 0 || d > 29 {
			t.Fatalf("sample %d out of range", d)
		}
	}
}

func TestLifetimeFeatures(t *testing.T) {
	lf := LifetimeFeatures{Bins: 4}
	if lf.Dim() != 8 {
		t.Fatalf("dim = %d", lf.Dim())
	}
	dst := make([]float64, 8)
	// Uncensored previous job in bin 1.
	lf.Encode(dst, 1, false)
	wantSurv := []float64{1, 1, 0, 0}
	wantTerm := []float64{0, 1, 1, 1}
	for i := 0; i < 4; i++ {
		if dst[i] != wantSurv[i] || dst[4+i] != wantTerm[i] {
			t.Fatalf("uncensored encode = %v", dst)
		}
	}
	// Censored previous job at bin 2: survival encode, no termination.
	lf.Encode(dst, 2, true)
	for i := 0; i < 4; i++ {
		wantS := 0.0
		if i <= 2 {
			wantS = 1
		}
		if dst[i] != wantS || dst[4+i] != 0 {
			t.Fatalf("censored encode = %v", dst)
		}
	}
	// No previous job.
	lf.Encode(dst, -1, false)
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("no-prev encode = %v", dst)
		}
	}
}

func TestTemporalEncodeWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Temporal{HistoryDays: 3}.Encode(make([]float64, 5), 0, 0)
}

func TestLifetimeFeaturesWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LifetimeFeatures{Bins: 4}.Encode(make([]float64, 3), 1, false)
}
