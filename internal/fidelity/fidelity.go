// Package fidelity is the live drift monitor for served traffic: does
// the traffic this server is generating *right now* still match the
// reference distributions it was validated against at snapshot-publish
// time?
//
// The paper's core claim is statistical faithfulness, measured by
// flavor NLL (Table 2), Survival-MSE (Table 4), and batch-arrival
// deviance (Figures 4–5). This package computes windowed versions of
// those metrics online: a Reference captures the distributional
// fingerprint of a trusted trace (the training window, or a
// calibration decode of a freshly published model), and a Monitor
// streams every served /generate response through sliding-window
// estimators, comparing the window's empirical flavor mix, lifetime
// survival curve, and per-period batch arrivals against the reference.
// When any divergence crosses its threshold the monitor raises a drift
// flag — the sensor the observe–predict–calibrate loop (ROADMAP item
// 4) will act on to trigger re-training.
//
// Like the rest of the instrumentation layer (DESIGN.md §7), the
// monitor is strictly read-only: it only inspects traces that were
// already generated, draws from no RNG stream, and feeds nothing back,
// so enabling it cannot change a single served byte (pinned by the
// root determinism test).
package fidelity

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Reference is the distributional fingerprint served traffic is
// compared against, captured from a trusted trace at snapshot-publish
// time.
type Reference struct {
	// FlavorProbs is the smoothed flavor distribution (length K, sums
	// to 1, strictly positive so log-likelihoods are finite).
	FlavorProbs []float64 `json:"flavor_probs"`
	// Edges are the lifetime-bin edges in seconds (length J+1,
	// ascending, Edges[0] = 0); both curves are discretized onto them.
	Edges []float64 `json:"edges"`
	// Survival is the empirical survival probability at Edges[1..J]:
	// Survival[j] = P(duration > Edges[j+1]), with durations beyond the
	// horizon clipped into the last bin (so Survival[J-1] = 0 — the
	// observed curve is clipped identically, keeping the comparison
	// consistent).
	Survival []float64 `json:"survival"`
	// BatchRate is the mean number of batch arrivals per period.
	BatchRate float64 `json:"batch_rate"`
}

// binIndex maps a duration onto the reference bins: the first j with
// d <= Edges[j+1], clipping beyond-horizon durations into the last bin
// (same convention as survival.Bins.Index).
func (r Reference) binIndex(d float64) int {
	j := sort.SearchFloat64s(r.Edges[1:], d)
	if last := len(r.Edges) - 2; j > last {
		return last
	}
	return j
}

// ReferenceFromTrace captures a trace's fingerprint over the given
// lifetime-bin edges. Censored VMs contribute their flavor and batch
// membership but not their (truncated) duration.
func ReferenceFromTrace(tr *trace.Trace, edges []float64) Reference {
	if len(edges) < 2 {
		panic("fidelity: need at least 2 bin edges")
	}
	k := tr.Flavors.K()
	ref := Reference{
		FlavorProbs: make([]float64, k),
		Edges:       append([]float64(nil), edges...),
		Survival:    make([]float64, len(edges)-1),
	}
	binCounts := make([]int64, len(edges)-1)
	var durations int64
	for _, vm := range tr.VMs {
		if vm.Flavor >= 0 && vm.Flavor < k {
			ref.FlavorProbs[vm.Flavor]++
		}
		if !vm.Censored {
			binCounts[ref.binIndex(vm.Duration)]++
			durations++
		}
	}
	// Add-half smoothing keeps every flavor's probability positive, so
	// an observed draw of a rare flavor has finite NLL instead of +Inf.
	total := float64(len(tr.VMs)) + 0.5*float64(k)
	for i := range ref.FlavorProbs {
		ref.FlavorProbs[i] = (ref.FlavorProbs[i] + 0.5) / total
	}
	// Survival at each upper edge via suffix counts.
	var above int64
	for j := len(binCounts) - 1; j >= 0; j-- {
		ref.Survival[j] = float64(above) / float64(max64(durations, 1))
		above += binCounts[j]
	}
	if tr.Periods > 0 {
		ref.BatchRate = float64(countBatches(tr)) / float64(tr.Periods)
	}
	return ref
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// countBatches counts batch arrivals (maximal same-user runs within a
// period) without materializing trace.PeriodBatches.
func countBatches(tr *trace.Trace) int64 {
	var n int64
	curPeriod, curUser := -1, -1
	for _, vm := range tr.VMs {
		if vm.Start != curPeriod || vm.User != curUser {
			curPeriod, curUser = vm.Start, vm.User
			n++
		}
	}
	return n
}

// Config bundles the monitor's knobs; zero values select defaults.
// The thresholds are operator policy, not statistics: they bound how
// far the windowed metrics may wander before the drift flag trips.
type Config struct {
	// Window is the sliding window length in served traces (default
	// 64).
	Window int
	// MinVMs gates the drift flag: below this many VMs in the window
	// the estimators are too noisy to act on (default 200).
	MinVMs int64
	// MaxFlavorKL bounds KL(observed ‖ reference) of the flavor mix in
	// nats (default 0.25).
	MaxFlavorKL float64
	// MaxSurvivalMSE bounds the MSE between the windowed and reference
	// survival curves at the bin edges (default 0.02).
	MaxSurvivalMSE float64
	// MaxArrivalDeviance bounds the mean per-period Poisson deviance of
	// batch arrivals against the reference rate (default 8; a
	// correctly-calibrated constant-rate stream sits near 1, diurnal
	// rate structure inflates the baseline).
	MaxArrivalDeviance float64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinVMs <= 0 {
		c.MinVMs = 200
	}
	if c.MaxFlavorKL <= 0 {
		c.MaxFlavorKL = 0.25
	}
	if c.MaxSurvivalMSE <= 0 {
		c.MaxSurvivalMSE = 0.02
	}
	if c.MaxArrivalDeviance <= 0 {
		c.MaxArrivalDeviance = 8
	}
	return c
}

// traceStats is one served trace's contribution to the window.
type traceStats struct {
	flavorCounts []int64
	binCounts    []int64
	vms          int64
	periods      int64
	devContrib   float64 // Σ_p [y ln(y/μ') − (y − μ')], μ' scale-adjusted
}

// Monitor streams served traces through sliding-window fidelity
// estimators. All methods are safe for concurrent use and safe on a
// nil *Monitor (no-ops), so the server threads an optional monitor
// without guarding.
type Monitor struct {
	mu  sync.Mutex
	ref Reference
	cfg Config

	ring   []traceStats
	next   int
	filled int

	// Window aggregates, maintained incrementally.
	flavorCounts []int64
	binCounts    []int64
	vms          int64
	periods      int64
	devContrib   float64

	// Registry-backed outputs.
	observed  *obs.Counter
	winTraces *obs.Gauge
	winVMs    *obs.Gauge
	driftFlag *obs.Gauge
	flavorNLL *obs.FloatGauge
	flavorKL  *obs.FloatGauge
	survMSE   *obs.FloatGauge
	arrDev    *obs.FloatGauge

	status Status
}

// NewMonitor builds a monitor comparing served traffic against ref,
// publishing its gauges into reg (nil: a private registry). The
// reference must carry a flavor distribution and bin edges.
func NewMonitor(ref Reference, cfg Config, reg *obs.Registry) *Monitor {
	if len(ref.FlavorProbs) == 0 || len(ref.Edges) < 2 {
		panic(fmt.Sprintf("fidelity: incomplete reference (K=%d, edges=%d)",
			len(ref.FlavorProbs), len(ref.Edges)))
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:       cfg,
		ring:      make([]traceStats, cfg.Window),
		observed:  reg.Counter("fidelity.observed_traces"),
		winTraces: reg.Gauge("fidelity.window_traces"),
		winVMs:    reg.Gauge("fidelity.window_vms"),
		driftFlag: reg.Gauge("fidelity.drift"),
		flavorNLL: reg.FloatGauge("fidelity.flavor_nll"),
		flavorKL:  reg.FloatGauge("fidelity.flavor_kl"),
		survMSE:   reg.FloatGauge("fidelity.survival_mse"),
		arrDev:    reg.FloatGauge("fidelity.arrival_deviance"),
	}
	m.setReferenceLocked(ref)
	return m
}

// SetReference swaps the reference fingerprint (hot model reload) and
// resets the window: observations of the old model say nothing about
// the new one.
func (m *Monitor) SetReference(ref Reference) {
	if m == nil {
		return
	}
	if len(ref.FlavorProbs) == 0 || len(ref.Edges) < 2 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.setReferenceLocked(ref)
}

func (m *Monitor) setReferenceLocked(ref Reference) {
	m.ref = ref
	m.next, m.filled = 0, 0
	m.flavorCounts = make([]int64, len(ref.FlavorProbs))
	m.binCounts = make([]int64, len(ref.Edges)-1)
	m.vms, m.periods, m.devContrib = 0, 0, 0
	for i := range m.ring {
		m.ring[i] = traceStats{}
	}
	m.recomputeLocked()
}

// ObserveTrace folds one served trace into the window. scale is the
// request's arrival-rate multiplier (0 means 1): the expected batch
// rate is scaled accordingly so a deliberate 10× stress request does
// not read as arrival drift.
func (m *Monitor) ObserveTrace(tr *trace.Trace, scale float64) {
	if m == nil || tr == nil {
		return
	}
	if scale == 0 {
		scale = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	// Evict the slot we are about to overwrite.
	slot := &m.ring[m.next]
	if m.filled == len(m.ring) {
		for k, c := range slot.flavorCounts {
			m.flavorCounts[k] -= c
		}
		for j, c := range slot.binCounts {
			m.binCounts[j] -= c
		}
		m.vms -= slot.vms
		m.periods -= slot.periods
		m.devContrib -= slot.devContrib
	} else {
		m.filled++
	}

	// Summarize the trace into the slot (slices reused across evictions).
	if slot.flavorCounts == nil {
		slot.flavorCounts = make([]int64, len(m.flavorCounts))
		slot.binCounts = make([]int64, len(m.binCounts))
	} else {
		for k := range slot.flavorCounts {
			slot.flavorCounts[k] = 0
		}
		for j := range slot.binCounts {
			slot.binCounts[j] = 0
		}
	}
	slot.vms = 0
	slot.periods = int64(tr.Periods)
	slot.devContrib = 0

	k := len(m.flavorCounts)
	mu := m.ref.BatchRate * scale
	curPeriod, curUser := -1, -1
	var y int64 // current period's batch count
	foldPeriod := func() {
		if y > 0 && mu > 0 {
			fy := float64(y)
			slot.devContrib += fy*math.Log(fy/mu) - fy
		}
		y = 0
	}
	for _, vm := range tr.VMs {
		if vm.Flavor >= 0 && vm.Flavor < k {
			slot.flavorCounts[vm.Flavor]++
		}
		if !vm.Censored {
			slot.binCounts[m.ref.binIndex(vm.Duration)]++
		}
		slot.vms++
		if vm.Start != curPeriod {
			foldPeriod()
			curPeriod, curUser = vm.Start, vm.User
			y = 1
		} else if vm.User != curUser {
			curUser = vm.User
			y++
		}
	}
	foldPeriod()
	if mu > 0 {
		// Zero-batch periods contribute +μ each; fold all Periods' −(y−μ)
		// mass at once (the per-period −y part is inside the loop above).
		slot.devContrib += float64(tr.Periods) * mu
	} else {
		slot.periods = 0 // no reference rate: arrivals are unscored
	}

	// Fold into the aggregates and advance the ring.
	for i, c := range slot.flavorCounts {
		m.flavorCounts[i] += c
	}
	for j, c := range slot.binCounts {
		m.binCounts[j] += c
	}
	m.vms += slot.vms
	m.periods += slot.periods
	m.devContrib += slot.devContrib
	m.next = (m.next + 1) % len(m.ring)
	m.observed.Inc()

	m.recomputeLocked()
}

// Status is the JSON-marshalable view of the monitor, served under the
// "fidelity" key of GET /metrics.
type Status struct {
	WindowTraces int   `json:"window_traces"`
	WindowVMs    int64 `json:"window_vms"`
	// FlavorNLL is the mean negative log-likelihood (nats) of the
	// window's flavor draws under the reference distribution; FlavorKL
	// is the excess over the window's own entropy, i.e.
	// KL(observed ‖ reference).
	FlavorNLL float64 `json:"flavor_nll"`
	FlavorKL  float64 `json:"flavor_kl"`
	// SurvivalMSE is the mean squared gap between the windowed and
	// reference survival curves at the bin edges.
	SurvivalMSE float64 `json:"survival_mse"`
	// ArrivalDeviance is the mean per-period Poisson deviance of batch
	// arrival counts against the (scale-adjusted) reference rate.
	ArrivalDeviance float64 `json:"arrival_deviance"`
	// Drift is true when any metric exceeds its threshold with at
	// least MinVMs observations in the window.
	Drift bool `json:"drift"`
	// The thresholds in effect, so a /metrics reader can interpret the
	// flag.
	MaxFlavorKL        float64 `json:"max_flavor_kl"`
	MaxSurvivalMSE     float64 `json:"max_survival_mse"`
	MaxArrivalDeviance float64 `json:"max_arrival_deviance"`
}

// Snapshot returns the current status (zero Status on a nil monitor).
func (m *Monitor) Snapshot() Status {
	if m == nil {
		return Status{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status
}

// recomputeLocked refreshes the derived metrics, the drift flag, and
// the registry gauges from the window aggregates.
func (m *Monitor) recomputeLocked() {
	s := Status{
		WindowTraces:       m.filled,
		WindowVMs:          m.vms,
		MaxFlavorKL:        m.cfg.MaxFlavorKL,
		MaxSurvivalMSE:     m.cfg.MaxSurvivalMSE,
		MaxArrivalDeviance: m.cfg.MaxArrivalDeviance,
	}
	if m.vms > 0 {
		n := float64(m.vms)
		for k, c := range m.flavorCounts {
			if c == 0 {
				continue
			}
			p := float64(c) / n
			s.FlavorNLL -= p * math.Log(m.ref.FlavorProbs[k])
			s.FlavorKL += p * math.Log(p/m.ref.FlavorProbs[k])
		}
		var durations int64
		for _, c := range m.binCounts {
			durations += c
		}
		if durations > 0 {
			var above int64
			var sse float64
			for j := len(m.binCounts) - 1; j >= 0; j-- {
				sObs := float64(above) / float64(durations)
				d := sObs - m.ref.Survival[j]
				sse += d * d
				above += m.binCounts[j]
			}
			s.SurvivalMSE = sse / float64(len(m.binCounts))
		}
	}
	if m.periods > 0 {
		s.ArrivalDeviance = 2 * m.devContrib / float64(m.periods)
	}
	if m.vms >= m.cfg.MinVMs {
		s.Drift = s.FlavorKL > m.cfg.MaxFlavorKL ||
			s.SurvivalMSE > m.cfg.MaxSurvivalMSE ||
			s.ArrivalDeviance > m.cfg.MaxArrivalDeviance
	}
	m.status = s

	m.winTraces.Set(int64(s.WindowTraces))
	m.winVMs.Set(s.WindowVMs)
	m.flavorNLL.Set(s.FlavorNLL)
	m.flavorKL.Set(s.FlavorKL)
	m.survMSE.Set(s.SurvivalMSE)
	m.arrDev.Set(s.ArrivalDeviance)
	if s.Drift {
		m.driftFlag.Set(1)
	} else {
		m.driftFlag.Set(0)
	}
}
