package fidelity

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// testEdges are small lifetime bins: ≤10m, ≤1h, ≤1d, ≤10d.
var testEdges = []float64{0, 600, 3600, 86400, 864000}

func testFlavors(k int) *trace.FlavorSet {
	fs := &trace.FlavorSet{}
	for i := 0; i < k; i++ {
		fs.Defs = append(fs.Defs, trace.FlavorDef{Name: fmt.Sprintf("f%d", i), CPU: 1, MemGB: 1})
	}
	return fs
}

// synthTrace builds a deterministic trace: each period holds
// batchesPerPeriod single-VM batches (distinct users), with flavors and
// durations cycling through mix and durs.
func synthTrace(fs *trace.FlavorSet, periods, batchesPerPeriod int, mix []int, durs []float64) *trace.Trace {
	tr := &trace.Trace{Flavors: fs, Periods: periods}
	id := 0
	for p := 0; p < periods; p++ {
		for b := 0; b < batchesPerPeriod; b++ {
			tr.VMs = append(tr.VMs, trace.VM{
				ID: id, User: b, Flavor: mix[id%len(mix)],
				Start: p, Duration: durs[id%len(durs)],
			})
			id++
		}
	}
	return tr
}

func TestReferenceFromTrace(t *testing.T) {
	fs := testFlavors(4)
	tr := synthTrace(fs, 50, 4, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	// One censored VM: counts for flavor and batches, not for survival.
	tr.VMs = append(tr.VMs, trace.VM{ID: len(tr.VMs), User: 99, Flavor: 0, Start: 49, Duration: 100, Censored: true})
	ref := ReferenceFromTrace(tr, testEdges)

	var sum float64
	for _, p := range ref.FlavorProbs {
		if p <= 0 {
			t.Fatalf("flavor prob not positive: %v", ref.FlavorProbs)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("flavor probs sum to %v, want 1", sum)
	}
	for j := 1; j < len(ref.Survival); j++ {
		if ref.Survival[j] > ref.Survival[j-1] {
			t.Fatalf("survival not non-increasing: %v", ref.Survival)
		}
	}
	if last := ref.Survival[len(ref.Survival)-1]; last != 0 {
		t.Fatalf("survival at horizon = %v, want 0 (durations clip into last bin)", last)
	}
	// Durations cycle through the 4 bins uniformly → S = 3/4, 2/4, 1/4, 0.
	want := []float64{0.75, 0.5, 0.25, 0}
	for j := range want {
		if math.Abs(ref.Survival[j]-want[j]) > 1e-12 {
			t.Fatalf("survival = %v, want %v", ref.Survival, want)
		}
	}
	// 4 single-VM batches per period, plus the lone censored VM's batch.
	if got, want := ref.BatchRate, (50.0*4+1)/50.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("batch rate = %v, want %v", got, want)
	}
}

// TestMatchedTrafficNoDrift: traffic drawn from the reference itself
// must sit at (near-)zero divergence with the flag down.
func TestMatchedTrafficNoDrift(t *testing.T) {
	fs := testFlavors(4)
	tr := synthTrace(fs, 60, 5, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	reg := obs.NewRegistry()
	m := NewMonitor(ReferenceFromTrace(tr, testEdges), Config{MinVMs: 100}, reg)

	for i := 0; i < 3; i++ {
		m.ObserveTrace(tr, 1)
	}
	s := m.Snapshot()
	if s.Drift {
		t.Fatalf("matched traffic flagged as drift: %+v", s)
	}
	if s.WindowTraces != 3 || s.WindowVMs != int64(3*len(tr.VMs)) {
		t.Fatalf("window accounting: %+v", s)
	}
	if s.FlavorKL > 0.01 {
		t.Fatalf("matched flavor KL = %v, want ~0", s.FlavorKL)
	}
	if s.SurvivalMSE > 1e-9 {
		t.Fatalf("matched survival MSE = %v, want 0", s.SurvivalMSE)
	}
	if s.ArrivalDeviance > 1e-9 {
		t.Fatalf("matched arrival deviance = %v, want 0", s.ArrivalDeviance)
	}
	// NLL is cross-entropy: entropy of the mix plus the (tiny) KL.
	if s.FlavorNLL < math.Log(4)-0.01 || s.FlavorNLL > math.Log(4)+0.05 {
		t.Fatalf("flavor NLL = %v, want ≈ ln 4", s.FlavorNLL)
	}
	if reg.Gauge("fidelity.drift").Value() != 0 {
		t.Fatal("drift gauge raised on matched traffic")
	}
}

// TestSkewedFlavorMixTripsDrift is the ISSUE acceptance case: inject a
// deliberately skewed flavor mix and the drift flag must trip, on the
// snapshot and on the registry gauges.
func TestSkewedFlavorMixTripsDrift(t *testing.T) {
	fs := testFlavors(4)
	balanced := synthTrace(fs, 60, 5, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	skewed := synthTrace(fs, 60, 5, []int{0}, []float64{300, 1800, 7200, 200000})
	reg := obs.NewRegistry()
	m := NewMonitor(ReferenceFromTrace(balanced, testEdges), Config{MinVMs: 100}, reg)

	m.ObserveTrace(skewed, 1)
	s := m.Snapshot()
	if !s.Drift {
		t.Fatalf("skewed flavor mix did not trip drift: %+v", s)
	}
	// All mass on flavor 0 against a ~uniform reference: KL ≈ ln 4.
	if s.FlavorKL < 1.0 {
		t.Fatalf("flavor KL = %v, want ≈ ln 4", s.FlavorKL)
	}
	if reg.Gauge("fidelity.drift").Value() != 1 {
		t.Fatal("drift gauge not raised")
	}
	if got := reg.FloatGauge("fidelity.flavor_kl").Value(); got != s.FlavorKL {
		t.Fatalf("flavor_kl gauge = %v, want %v", got, s.FlavorKL)
	}
}

// TestDriftClearsAsWindowSlides: once healthy traffic refills the
// window, the old skewed traces evict and the flag drops.
func TestDriftClearsAsWindowSlides(t *testing.T) {
	fs := testFlavors(4)
	balanced := synthTrace(fs, 60, 5, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	skewed := synthTrace(fs, 60, 5, []int{3}, []float64{300, 1800, 7200, 200000})
	m := NewMonitor(ReferenceFromTrace(balanced, testEdges), Config{Window: 4, MinVMs: 100}, nil)

	m.ObserveTrace(skewed, 1)
	m.ObserveTrace(skewed, 1)
	if !m.Snapshot().Drift {
		t.Fatal("drift should be up while skewed traces dominate")
	}
	for i := 0; i < 4; i++ {
		m.ObserveTrace(balanced, 1)
	}
	s := m.Snapshot()
	if s.Drift {
		t.Fatalf("drift still up after window refilled with matched traffic: %+v", s)
	}
	if s.WindowTraces != 4 {
		t.Fatalf("window traces = %d, want 4", s.WindowTraces)
	}
}

// TestArrivalScaleNormalization: a deliberate rate-scaled request must
// not read as arrival drift when its scale is reported, and a
// mis-reported scale must.
func TestArrivalScaleNormalization(t *testing.T) {
	fs := testFlavors(4)
	base := synthTrace(fs, 60, 5, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	tripled := synthTrace(fs, 60, 15, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	m := NewMonitor(ReferenceFromTrace(base, testEdges), Config{MinVMs: 100}, nil)

	m.ObserveTrace(tripled, 3)
	if s := m.Snapshot(); s.Drift || s.ArrivalDeviance > 1e-9 {
		t.Fatalf("scale-adjusted stress traffic flagged: %+v", s)
	}

	// Same traffic claiming scale 1: 15 batches/period against μ=5.
	m.SetReference(ReferenceFromTrace(base, testEdges))
	m.ObserveTrace(tripled, 1)
	s := m.Snapshot()
	if !s.Drift || s.ArrivalDeviance <= m.cfg.MaxArrivalDeviance {
		t.Fatalf("3× arrivals at claimed scale 1 not flagged: %+v", s)
	}
}

// TestSetReferenceResetsWindow: a hot reload swaps the reference and
// must discard observations of the old model.
func TestSetReferenceResetsWindow(t *testing.T) {
	fs := testFlavors(4)
	balanced := synthTrace(fs, 60, 5, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	skewed := synthTrace(fs, 60, 5, []int{1}, []float64{300, 1800, 7200, 200000})
	m := NewMonitor(ReferenceFromTrace(balanced, testEdges), Config{MinVMs: 100}, nil)

	m.ObserveTrace(skewed, 1)
	if !m.Snapshot().Drift {
		t.Fatal("precondition: drift should be up")
	}
	// New model: the skewed mix IS the new reference.
	m.SetReference(ReferenceFromTrace(skewed, testEdges))
	s := m.Snapshot()
	if s.Drift || s.WindowTraces != 0 || s.WindowVMs != 0 {
		t.Fatalf("window not reset on SetReference: %+v", s)
	}
	m.ObserveTrace(skewed, 1)
	if s := m.Snapshot(); s.Drift {
		t.Fatalf("traffic matching the new reference flagged: %+v", s)
	}
}

// TestMinVMsGate: too few observations must never trip the flag, no
// matter how skewed.
func TestMinVMsGate(t *testing.T) {
	fs := testFlavors(4)
	balanced := synthTrace(fs, 60, 5, []int{0, 1, 2, 3}, []float64{300, 1800, 7200, 200000})
	tiny := synthTrace(fs, 3, 2, []int{0}, []float64{300})
	m := NewMonitor(ReferenceFromTrace(balanced, testEdges), Config{MinVMs: 100}, nil)
	m.ObserveTrace(tiny, 1)
	s := m.Snapshot()
	if s.Drift {
		t.Fatalf("drift tripped below MinVMs: %+v", s)
	}
	if s.FlavorKL == 0 {
		t.Fatal("metrics should still be computed below the gate")
	}
}

// TestNilMonitor: the disabled state threads through call sites
// without guards.
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	m.ObserveTrace(&trace.Trace{Flavors: testFlavors(1), Periods: 1}, 1)
	m.SetReference(Reference{})
	if s := m.Snapshot(); s != (Status{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
	// Non-nil monitor, nil trace: also a no-op.
	fs := testFlavors(4)
	tr := synthTrace(fs, 10, 2, []int{0, 1, 2, 3}, []float64{300})
	mon := NewMonitor(ReferenceFromTrace(tr, testEdges), Config{}, nil)
	mon.ObserveTrace(nil, 1)
	if got := mon.Snapshot().WindowTraces; got != 0 {
		t.Fatalf("nil trace observed: window = %d", got)
	}
}
