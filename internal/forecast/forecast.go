// Package forecast implements classical time-series forecasting of
// aggregate workload — the alternative capacity-planning methodology the
// paper contrasts with its generative approach (§7 "Workload
// Forecasting"). It provides a seasonal-naive forecaster and
// Holt-Winters triple exponential smoothing with additive seasonality,
// both producing probabilistic forecasts via empirical residual
// quantiles, so they can be compared against the generative model's
// prediction intervals on the same coverage metric.
package forecast

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Forecaster produces h-step-ahead point forecasts from a history.
type Forecaster interface {
	Name() string
	// Fit ingests the training series.
	Fit(series []float64) error
	// Forecast returns point predictions for the next h steps.
	Forecast(h int) []float64
}

// SeasonalNaive predicts the value from one season ago.
type SeasonalNaive struct {
	Period  int // season length in steps
	history []float64
}

// Name implements Forecaster.
func (s *SeasonalNaive) Name() string { return "SeasonalNaive" }

// Fit implements Forecaster.
func (s *SeasonalNaive) Fit(series []float64) error {
	if s.Period <= 0 {
		return fmt.Errorf("forecast: seasonal-naive needs Period > 0")
	}
	if len(series) < s.Period {
		return fmt.Errorf("forecast: series length %d shorter than period %d", len(series), s.Period)
	}
	s.history = append([]float64(nil), series...)
	return nil
}

// Forecast implements Forecaster.
func (s *SeasonalNaive) Forecast(h int) []float64 {
	out := make([]float64, h)
	n := len(s.history)
	for i := 0; i < h; i++ {
		out[i] = s.history[n-s.Period+(i%s.Period)]
	}
	return out
}

// HoltWinters is additive triple exponential smoothing.
type HoltWinters struct {
	Period             int
	Alpha, Beta, Gamma float64 // smoothing factors; zero means defaults
	level, trend       float64
	seasonal           []float64
	fitted             bool
}

// Name implements Forecaster.
func (hw *HoltWinters) Name() string { return "HoltWinters" }

// Fit implements Forecaster.
func (hw *HoltWinters) Fit(series []float64) error {
	m := hw.Period
	if m <= 0 {
		return fmt.Errorf("forecast: Holt-Winters needs Period > 0")
	}
	if len(series) < 2*m {
		return fmt.Errorf("forecast: need at least two seasons (%d), got %d", 2*m, len(series))
	}
	if hw.Alpha == 0 {
		hw.Alpha = 0.3
	}
	if hw.Beta == 0 {
		hw.Beta = 0.05
	}
	if hw.Gamma == 0 {
		hw.Gamma = 0.2
	}
	// Initialize from the first two seasons.
	var s1, s2 float64
	for i := 0; i < m; i++ {
		s1 += series[i]
		s2 += series[m+i]
	}
	s1 /= float64(m)
	s2 /= float64(m)
	hw.level = s1
	hw.trend = (s2 - s1) / float64(m)
	hw.seasonal = make([]float64, m)
	for i := 0; i < m; i++ {
		hw.seasonal[i] = series[i] - s1
	}
	// Smooth through the series.
	for t, y := range series {
		si := t % m
		prevLevel := hw.level
		hw.level = hw.Alpha*(y-hw.seasonal[si]) + (1-hw.Alpha)*(hw.level+hw.trend)
		hw.trend = hw.Beta*(hw.level-prevLevel) + (1-hw.Beta)*hw.trend
		hw.seasonal[si] = hw.Gamma*(y-hw.level) + (1-hw.Gamma)*hw.seasonal[si]
	}
	hw.fitted = true
	return nil
}

// Forecast implements Forecaster.
func (hw *HoltWinters) Forecast(h int) []float64 {
	if !hw.fitted {
		panic("forecast: Forecast before Fit")
	}
	m := len(hw.seasonal)
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		out[i] = hw.level + float64(i+1)*hw.trend + hw.seasonal[(i+1)%m]
	}
	return out
}

// Probabilistic wraps a point forecaster with empirical residual
// quantiles estimated by a backtest over the training series, yielding
// prediction intervals comparable to the generative model's.
type Probabilistic struct {
	Base Forecaster
	// Level is the central interval mass (e.g. 0.9).
	Level float64
	// Backtests is the number of held-out backtest folds (default 4).
	Backtests int

	loQ, hiQ float64 // residual quantiles
	fitted   bool
}

// Fit fits the base forecaster on the full series and estimates residual
// quantiles from rolling-origin backtests.
func (p *Probabilistic) Fit(series []float64, horizon int) error {
	if p.Level <= 0 || p.Level >= 1 {
		return fmt.Errorf("forecast: level %v outside (0,1)", p.Level)
	}
	folds := p.Backtests
	if folds <= 0 {
		folds = 4
	}
	var residuals []float64
	for f := 1; f <= folds; f++ {
		cut := len(series) - f*horizon
		if cut < horizon {
			break
		}
		if err := p.Base.Fit(series[:cut]); err != nil {
			return fmt.Errorf("forecast: backtest fold %d: %w", f, err)
		}
		pred := p.Base.Forecast(horizon)
		for i := 0; i < horizon && cut+i < len(series); i++ {
			residuals = append(residuals, series[cut+i]-pred[i])
		}
	}
	if len(residuals) == 0 {
		return fmt.Errorf("forecast: series too short for backtesting")
	}
	alpha := (1 - p.Level) / 2
	p.loQ = metrics.Quantile(residuals, alpha)
	p.hiQ = metrics.Quantile(residuals, 1-alpha)
	if err := p.Base.Fit(series); err != nil {
		return err
	}
	p.fitted = true
	return nil
}

// Intervals returns the h-step-ahead prediction intervals.
func (p *Probabilistic) Intervals(h int) []metrics.Interval {
	if !p.fitted {
		panic("forecast: Intervals before Fit")
	}
	pred := p.Base.Forecast(h)
	out := make([]metrics.Interval, h)
	for i, v := range pred {
		out[i] = metrics.Interval{Lo: v + p.loQ, Median: v, Hi: v + p.hiQ}
		if out[i].Lo < 0 {
			out[i].Lo = 0 // workload cannot be negative
		}
	}
	return out
}

// MAPE returns the mean absolute percentage error of pred vs actual,
// skipping zero actuals.
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("forecast: MAPE length mismatch %d vs %d", len(pred), len(actual)))
	}
	var sum float64
	var n int
	for i, a := range actual {
		if a == 0 {
			continue
		}
		sum += math.Abs(pred[i]-a) / math.Abs(a)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
