package forecast

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// seasonalSeries builds level + trend + sinusoidal season + noise.
func seasonalSeries(n, period int, level, trend, amp, noise float64, g *rng.RNG) []float64 {
	out := make([]float64, n)
	for t := range out {
		season := amp * math.Sin(2*math.Pi*float64(t%period)/float64(period))
		out[t] = level + trend*float64(t) + season + noise*g.NormFloat64()
	}
	return out
}

func TestSeasonalNaiveExactOnPureSeason(t *testing.T) {
	s := &SeasonalNaive{Period: 4}
	series := []float64{1, 2, 3, 4, 1, 2, 3, 4}
	if err := s.Fit(series); err != nil {
		t.Fatal(err)
	}
	pred := s.Forecast(6)
	want := []float64{1, 2, 3, 4, 1, 2}
	for i, w := range want {
		if pred[i] != w {
			t.Fatalf("pred[%d] = %v, want %v", i, pred[i], w)
		}
	}
}

func TestSeasonalNaiveErrors(t *testing.T) {
	if err := (&SeasonalNaive{}).Fit([]float64{1}); err == nil {
		t.Fatal("expected period error")
	}
	if err := (&SeasonalNaive{Period: 4}).Fit([]float64{1, 2}); err == nil {
		t.Fatal("expected short-series error")
	}
}

func TestHoltWintersTracksTrendAndSeason(t *testing.T) {
	g := rng.New(1)
	period := 24
	series := seasonalSeries(period*10, period, 100, 0.5, 20, 1, g)
	hw := &HoltWinters{Period: period}
	if err := hw.Fit(series); err != nil {
		t.Fatal(err)
	}
	pred := hw.Forecast(period)
	truth := seasonalSeries(period*11, period, 100, 0.5, 20, 0, rng.New(2))[period*10:]
	if m := MAPE(pred, truth); m > 0.05 {
		t.Fatalf("Holt-Winters MAPE %v too high", m)
	}
}

func TestHoltWintersBeatsSeasonalNaiveUnderTrend(t *testing.T) {
	g := rng.New(3)
	period := 24
	series := seasonalSeries(period*8, period, 50, 1.0, 10, 0.5, g)
	truth := seasonalSeries(period*9, period, 50, 1.0, 10, 0, rng.New(4))[period*8:]

	hw := &HoltWinters{Period: period}
	if err := hw.Fit(series); err != nil {
		t.Fatal(err)
	}
	sn := &SeasonalNaive{Period: period}
	if err := sn.Fit(series); err != nil {
		t.Fatal(err)
	}
	if MAPE(hw.Forecast(period), truth) >= MAPE(sn.Forecast(period), truth) {
		t.Fatal("Holt-Winters should beat seasonal-naive on a trending series")
	}
}

func TestHoltWintersErrors(t *testing.T) {
	if err := (&HoltWinters{}).Fit([]float64{1}); err == nil {
		t.Fatal("expected period error")
	}
	if err := (&HoltWinters{Period: 4}).Fit([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("expected two-season error")
	}
}

func TestForecastBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&HoltWinters{Period: 2}).Forecast(2)
}

func TestProbabilisticCoverage(t *testing.T) {
	g := rng.New(5)
	period := 24
	series := seasonalSeries(period*12, period, 100, 0, 15, 3, g)
	horizon := period
	p := &Probabilistic{Base: &HoltWinters{Period: period}, Level: 0.9}
	if err := p.Fit(series, horizon); err != nil {
		t.Fatal(err)
	}
	iv := p.Intervals(horizon)
	if len(iv) != horizon {
		t.Fatalf("intervals %d", len(iv))
	}
	truth := seasonalSeries(period*13, period, 100, 0, 15, 3, rng.New(6))[period*12:]
	cov := metrics.Coverage(truth, iv)
	if cov < 0.6 {
		t.Fatalf("coverage %v too low for a stationary series", cov)
	}
	for _, i := range iv {
		if i.Lo > i.Median || i.Median > i.Hi {
			t.Fatalf("interval not ordered: %+v", i)
		}
		if i.Lo < 0 {
			t.Fatal("negative workload bound")
		}
	}
}

func TestProbabilisticErrors(t *testing.T) {
	p := &Probabilistic{Base: &SeasonalNaive{Period: 4}, Level: 1.5}
	if err := p.Fit(make([]float64, 40), 4); err == nil {
		t.Fatal("expected level error")
	}
	p2 := &Probabilistic{Base: &SeasonalNaive{Period: 4}, Level: 0.9}
	if err := p2.Fit([]float64{1, 2, 3, 4}, 4); err == nil {
		t.Fatal("expected too-short error")
	}
}

func TestIntervalsBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Probabilistic{Base: &SeasonalNaive{Period: 2}, Level: 0.9}).Intervals(2)
}

func TestMAPE(t *testing.T) {
	if m := MAPE([]float64{110, 90}, []float64{100, 100}); math.Abs(m-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v", m)
	}
	if MAPE([]float64{5}, []float64{0}) != 0 {
		t.Fatal("zero actuals should be skipped")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}
