// Package glm implements Poisson regression — the paper's batch-arrival
// model (§2.1) — standing in for the statsmodels GLM package. Two
// solvers are provided: iteratively re-weighted least squares (the
// paper's choice, supporting an L2/ridge penalty) and proximal gradient
// descent (supporting the full elastic-net penalty from §2.1.1).
package glm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Solver selects the fitting algorithm.
type Solver int

const (
	// IRLS is iteratively re-weighted least squares (Newton's method on
	// the Poisson log-likelihood). The L1 penalty must be zero.
	IRLS Solver = iota
	// ProxGrad is proximal gradient descent with backtracking line
	// search; it supports the full elastic-net penalty.
	ProxGrad
)

// Options controls fitting.
type Options struct {
	Solver  Solver
	L1      float64 // elastic-net L1 penalty weight
	L2      float64 // elastic-net L2 penalty weight
	MaxIter int     // default 100 (IRLS) / 500 (ProxGrad)
	Tol     float64 // relative NLL improvement stopping threshold, default 1e-8
}

// PoissonRegression is a fitted inhomogeneous Poisson rate model:
// mu(x) = exp(w·x + b).
type PoissonRegression struct {
	W         []float64
	Intercept float64
}

// Rate returns the predicted Poisson mean for feature vector x.
func (m *PoissonRegression) Rate(x []float64) float64 {
	return math.Exp(m.linear(x))
}

func (m *PoissonRegression) linear(x []float64) float64 {
	if len(x) != len(m.W) {
		panic(fmt.Sprintf("glm: feature len %d, model has %d", len(x), len(m.W)))
	}
	return mat.Dot(m.W, x) + m.Intercept
}

// NLL returns the mean Poisson negative log-likelihood of counts y given
// features X (ignoring the y! term, as in the paper's loss).
func (m *PoissonRegression) NLL(x *mat.Dense, y []float64) float64 {
	if x.Rows != len(y) {
		panic("glm: NLL rows mismatch")
	}
	var total float64
	for i := 0; i < x.Rows; i++ {
		eta := m.linear(x.Row(i))
		total += math.Exp(eta) - y[i]*eta
	}
	return total / float64(x.Rows)
}

// Fit fits a Poisson regression of counts y on features X.
func Fit(x *mat.Dense, y []float64, opt Options) (*PoissonRegression, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("glm: %d rows but %d targets", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return nil, errors.New("glm: empty training set")
	}
	for _, v := range y {
		if v < 0 {
			return nil, errors.New("glm: negative count")
		}
	}
	switch opt.Solver {
	case IRLS:
		if opt.L1 != 0 {
			return nil, errors.New("glm: IRLS does not support an L1 penalty; use ProxGrad")
		}
		return fitIRLS(x, y, opt)
	case ProxGrad:
		return fitProx(x, y, opt)
	default:
		return nil, fmt.Errorf("glm: unknown solver %d", opt.Solver)
	}
}

// fitIRLS runs Newton iterations: at each step solve
// (Xᵀ diag(mu) X + l2 I) d = Xᵀ(y - mu) - l2 w.
func fitIRLS(x *mat.Dense, y []float64, opt Options) (*PoissonRegression, error) {
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-8
	}
	n, d := x.Rows, x.Cols
	// Augment with intercept column (unpenalized).
	da := d + 1
	w := make([]float64, da)
	// Start the intercept at log(mean(y)) for fast convergence.
	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	w[d] = math.Log(math.Max(ybar, 1e-8))
	mu := make([]float64, n)
	prev := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		var nll float64
		for i := 0; i < n; i++ {
			eta := mat.Dot(x.Row(i), w[:d]) + w[d]
			eta = math.Min(eta, 30) // guard against overflow mid-iteration
			mu[i] = math.Exp(eta)
			nll += mu[i] - y[i]*eta
		}
		for j := 0; j < d; j++ {
			nll += 0.5 * opt.L2 * w[j] * w[j]
		}
		if !math.IsInf(prev, 1) && math.Abs(prev-nll) <= tol*math.Max(1, math.Abs(prev)) {
			break
		}
		prev = nll
		// Hessian H = Xaᵀ diag(mu) Xa + l2 I (intercept unpenalized).
		h := mat.NewDense(da, da)
		grad := make([]float64, da)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			r := y[i] - mu[i]
			for j := 0; j < d; j++ {
				grad[j] += r * row[j]
			}
			grad[d] += r
			for j := 0; j < d; j++ {
				wj := mu[i] * row[j]
				if wj == 0 {
					continue
				}
				hrow := h.Row(j)
				for k := j; k < d; k++ {
					hrow[k] += wj * row[k]
				}
				hrow[d] += wj
			}
			h.Set(d, d, h.At(d, d)+mu[i])
		}
		for j := 0; j < d; j++ {
			grad[j] -= opt.L2 * w[j]
			h.Set(j, j, h.At(j, j)+opt.L2+1e-10)
		}
		h.Set(d, d, h.At(d, d)+1e-10)
		// Mirror upper triangle to lower.
		for j := 0; j < da; j++ {
			for k := 0; k < j; k++ {
				h.Set(j, k, h.At(k, j))
			}
		}
		step, ok := mat.SolveCholesky(h, grad)
		if !ok {
			return nil, errors.New("glm: IRLS Hessian not positive definite")
		}
		// Damped Newton: halve until NLL does not explode.
		scale := 1.0
		for tries := 0; tries < 20; tries++ {
			cand := make([]float64, da)
			for j := range cand {
				cand[j] = w[j] + scale*step[j]
			}
			if nllOf(x, y, cand, opt.L2) < prev+1e-12 {
				w = cand
				break
			}
			scale /= 2
			if tries == 19 {
				w = cand
			}
		}
	}
	return &PoissonRegression{W: w[:d], Intercept: w[d]}, nil
}

func nllOf(x *mat.Dense, y []float64, w []float64, l2 float64) float64 {
	d := x.Cols
	var nll float64
	for i := 0; i < x.Rows; i++ {
		eta := mat.Dot(x.Row(i), w[:d]) + w[d]
		eta = math.Min(eta, 30)
		nll += math.Exp(eta) - y[i]*eta
	}
	for j := 0; j < d; j++ {
		nll += 0.5 * l2 * w[j] * w[j]
	}
	return nll
}

// fitProx runs ISTA with backtracking: gradient step on the smooth part
// (NLL + L2) followed by soft-thresholding for the L1 part.
func fitProx(x *mat.Dense, y []float64, opt Options) (*PoissonRegression, error) {
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 500
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-8
	}
	n, d := x.Rows, x.Cols
	w := make([]float64, d+1)
	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	w[d] = math.Log(math.Max(ybar, 1e-8))
	step := 1.0
	prev := smoothNLL(x, y, w, opt.L2)
	for iter := 0; iter < maxIter; iter++ {
		grad := smoothGrad(x, y, w, opt.L2)
		// Backtracking line search on the smooth objective.
		var cand []float64
		for tries := 0; ; tries++ {
			cand = make([]float64, d+1)
			for j := 0; j < d; j++ {
				cand[j] = softThreshold(w[j]-step*grad[j], step*opt.L1)
			}
			cand[d] = w[d] - step*grad[d]
			f := smoothNLL(x, y, cand, opt.L2)
			// Sufficient-decrease test against the quadratic model.
			var quad float64
			for j := range cand {
				diff := cand[j] - w[j]
				quad += grad[j]*diff + diff*diff/(2*step)
			}
			if f <= prev+quad+1e-12 || tries >= 30 {
				prev = f
				break
			}
			step /= 2
		}
		var moved float64
		for j := range w {
			moved += math.Abs(cand[j] - w[j])
		}
		w = cand
		if moved <= tol*(1+mat.Norm1(w)) {
			break
		}
		step *= 1.2 // allow the step to grow back
	}
	return &PoissonRegression{W: w[:d], Intercept: w[d]}, nil
}

func smoothNLL(x *mat.Dense, y []float64, w []float64, l2 float64) float64 {
	return nllOf(x, y, w, l2)
}

func smoothGrad(x *mat.Dense, y []float64, w []float64, l2 float64) []float64 {
	d := x.Cols
	grad := make([]float64, d+1)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		eta := mat.Dot(row, w[:d]) + w[d]
		eta = math.Min(eta, 30)
		r := math.Exp(eta) - y[i]
		for j := 0; j < d; j++ {
			grad[j] += r * row[j]
		}
		grad[d] += r
	}
	for j := 0; j < d; j++ {
		grad[j] += l2 * w[j]
	}
	return grad
}

func softThreshold(v, lambda float64) float64 {
	switch {
	case v > lambda:
		return v - lambda
	case v < -lambda:
		return v + lambda
	default:
		return 0
	}
}
