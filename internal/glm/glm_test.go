package glm

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// synthPoisson builds a dataset with known weights.
func synthPoisson(g *rng.RNG, n int, w []float64, intercept float64) (*mat.Dense, []float64) {
	d := len(w)
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = g.Uniform(-1, 1)
		}
		mu := math.Exp(mat.Dot(row, w) + intercept)
		y[i] = float64(g.Poisson(mu))
	}
	return x, y
}

func TestIRLSRecoversWeights(t *testing.T) {
	g := rng.New(1)
	trueW := []float64{0.8, -0.5, 0.3}
	x, y := synthPoisson(g, 4000, trueW, 1.2)
	m, err := Fit(x, y, Options{Solver: IRLS})
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range trueW {
		if math.Abs(m.W[j]-w) > 0.1 {
			t.Errorf("w[%d] = %v, want ~%v", j, m.W[j], w)
		}
	}
	if math.Abs(m.Intercept-1.2) > 0.1 {
		t.Errorf("intercept = %v, want ~1.2", m.Intercept)
	}
}

func TestProxGradRecoversWeights(t *testing.T) {
	g := rng.New(2)
	trueW := []float64{0.6, -0.7}
	x, y := synthPoisson(g, 4000, trueW, 0.8)
	m, err := Fit(x, y, Options{Solver: ProxGrad, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range trueW {
		if math.Abs(m.W[j]-w) > 0.12 {
			t.Errorf("w[%d] = %v, want ~%v", j, m.W[j], w)
		}
	}
}

func TestIRLSAndProxAgree(t *testing.T) {
	g := rng.New(3)
	x, y := synthPoisson(g, 2000, []float64{0.4, 0.2, -0.3}, 0.5)
	a, err := Fit(x, y, Options{Solver: IRLS, L2: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(x, y, Options{Solver: ProxGrad, L2: 0.1, MaxIter: 5000, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.W {
		if math.Abs(a.W[j]-b.W[j]) > 0.02 {
			t.Errorf("solver disagreement w[%d]: IRLS %v Prox %v", j, a.W[j], b.W[j])
		}
	}
}

func TestL1DrivesIrrelevantWeightsToZero(t *testing.T) {
	g := rng.New(4)
	// Two informative features followed by six pure-noise features.
	trueW := []float64{1.0, -1.0, 0, 0, 0, 0, 0, 0}
	x, y := synthPoisson(g, 3000, trueW, 1.0)
	m, err := Fit(x, y, Options{Solver: ProxGrad, L1: 300, MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	zeroed := 0
	for j := 2; j < len(trueW); j++ {
		if m.W[j] == 0 {
			zeroed++
		}
	}
	if zeroed < 4 {
		t.Errorf("L1 zeroed only %d/6 noise weights: %v", zeroed, m.W)
	}
	if math.Abs(m.W[0]) < 0.3 || math.Abs(m.W[1]) < 0.3 {
		t.Errorf("informative weights over-shrunk: %v", m.W[:2])
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	g := rng.New(5)
	x, y := synthPoisson(g, 1000, []float64{1.5}, 0)
	loose, err := Fit(x, y, Options{Solver: IRLS})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Fit(x, y, Options{Solver: IRLS, L2: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tight.W[0]) >= math.Abs(loose.W[0]) {
		t.Errorf("L2 did not shrink: loose %v tight %v", loose.W[0], tight.W[0])
	}
}

func TestConstantRate(t *testing.T) {
	// With no informative features, the model should learn mu = mean(y).
	g := rng.New(6)
	n := 2000
	x := mat.NewDense(n, 1) // all-zero feature
	y := make([]float64, n)
	var sum float64
	for i := range y {
		y[i] = float64(g.Poisson(7))
		sum += y[i]
	}
	m, err := Fit(x, y, Options{Solver: IRLS})
	if err != nil {
		t.Fatal(err)
	}
	want := sum / float64(n)
	if got := m.Rate(make([]float64, 1)); math.Abs(got-want) > 0.05 {
		t.Errorf("rate %v, want %v", got, want)
	}
}

func TestNLLDecreasesWithBetterModel(t *testing.T) {
	g := rng.New(7)
	x, y := synthPoisson(g, 2000, []float64{1.0, -0.5}, 1.0)
	fitted, err := Fit(x, y, Options{Solver: IRLS})
	if err != nil {
		t.Fatal(err)
	}
	junk := &PoissonRegression{W: []float64{0, 0}, Intercept: 0}
	if fitted.NLL(x, y) >= junk.NLL(x, y) {
		t.Error("fitted model should have lower NLL than null model")
	}
}

func TestFitErrors(t *testing.T) {
	x := mat.NewDense(2, 1)
	if _, err := Fit(x, []float64{1}, Options{}); err == nil {
		t.Error("expected rows mismatch error")
	}
	if _, err := Fit(mat.NewDense(0, 1), nil, Options{}); err == nil {
		t.Error("expected empty error")
	}
	if _, err := Fit(x, []float64{1, -2}, Options{}); err == nil {
		t.Error("expected negative count error")
	}
	if _, err := Fit(x, []float64{1, 2}, Options{Solver: IRLS, L1: 1}); err == nil {
		t.Error("expected IRLS+L1 error")
	}
	if _, err := Fit(x, []float64{1, 2}, Options{Solver: Solver(99)}); err == nil {
		t.Error("expected unknown solver error")
	}
}

func TestRatePanicsOnWrongLen(t *testing.T) {
	m := &PoissonRegression{W: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Rate([]float64{1})
}

func TestIRLSCollinearFeatures(t *testing.T) {
	// A constant column is perfectly collinear with the intercept; the
	// ridge jitter must keep the Hessian factorizable.
	g := rng.New(8)
	n := 500
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1) // constant column
		x.Set(i, 1, g.Uniform(-1, 1))
		y[i] = float64(g.Poisson(math.Exp(0.5*x.At(i, 1) + 1)))
	}
	m, err := Fit(x, y, Options{Solver: IRLS, L2: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.W[1]-0.5) > 0.15 {
		t.Fatalf("informative weight %v", m.W[1])
	}
}

func TestIRLSAllZeroCounts(t *testing.T) {
	// All-zero counts: the MLE pushes the intercept to -inf; the fit
	// must still terminate and predict a tiny rate.
	x := mat.NewDense(50, 1)
	y := make([]float64, 50)
	m, err := Fit(x, y, Options{Solver: IRLS, L2: 0.1, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rate := m.Rate([]float64{0}); rate > 0.05 {
		t.Fatalf("rate %v should be near zero", rate)
	}
}
