package mat

import "math"

// Native float32 gate activations for the f32 serving fast path
// (DESIGN.md §6.4). The f32 decode fleet's sigmoid and tanh run here at
// eight lanes per YMM register instead of widening each gate row to
// float64 and paying the four-lane f64 exp — the activation share of a
// decode step drops from over half the step to a sliver.
//
// Determinism contract: the assembly kernels and the portable scalar
// path below are bit-identical. Both execute the same operation
// sequence — clamp, round-to-nearest-even reduction, FMA Horner
// polynomial, exponent-field scale — with every fused multiply-add on
// the portable path reproduced exactly by fma32. The clamp bounds are
// chosen so the scale factor is always a normal float32: no overflow,
// underflow, or denormal branches exist in either path. These kernels
// use FMA unconditionally (like the f64 expAVX2) regardless of
// SetFastMath, which only selects the GEMM accumulation contract.
//
// Accuracy: the reduced-range polynomial is Cephes' expf (~2 ulp), so
// sigmoid and tanh land within a few float32 ulps of the correctly
// rounded value — far inside the published f32 decode tolerances
// (core.ValidateF32 measures the end-to-end effect per snapshot).

// The exp32 constant set. exp32HI/exp32LO clamp the argument so the
// scaled exponent k stays in [-126, 127]: the 2^k scale factor is
// always a normal float32 and the top end cannot overflow. The final
// multiply may still graze the denormal range at the very bottom —
// identically on both paths, since it is the same single multiply.
const (
	exp32HI    float32 = 88.02969193111305  // ln(2^127)
	exp32LO    float32 = -87.33654475055310 // ln(2^-126)
	exp32LOG2E float32 = 1.44269504088896341
	exp32LN2H  float32 = 0.693359375 // ln2 high split (Cephes)
	exp32LN2L  float32 = -2.12194440054690583e-4
	exp32C5    float32 = 1.9875691500e-4
	exp32C4    float32 = 1.3981999507e-3
	exp32C3    float32 = 8.3334519073e-3
	exp32C2    float32 = 4.1665795894e-2
	exp32C1    float32 = 1.6666665459e-1
	exp32C0    float32 = 5.0000001201e-1
)

// exp32Consts is the broadcast constant table the assembly kernels
// load from: one 8-lane row (32 bytes) per constant, in the order of
// the offsets documented in batch32_amd64.s. Sharing one table between
// the assembly and the portable constants above is what guarantees the
// two paths agree bit-for-bit. The last two rows are integer bit
// patterns (the exponent bias and the sign mask) stored through
// Float32frombits.
var exp32Consts [14 * 8]float32

func init() {
	cs := [...]float32{
		exp32HI, exp32LO, exp32LOG2E, exp32LN2H, exp32LN2L,
		exp32C5, exp32C4, exp32C3, exp32C2, exp32C1, exp32C0,
		1.0,
		math.Float32frombits(127),        // exponent bias, as int32 lanes
		math.Float32frombits(0x80000000), // sign mask
	}
	for i, c := range cs {
		for j := 0; j < 8; j++ {
			exp32Consts[i*8+j] = c
		}
	}
}

// minps32 and maxps32 reproduce the exact MINPS/MAXPS lane semantics
// (result is b when the comparison is unordered, i.e. on NaN), so the
// portable clamp matches the vector clamp on every input.
func minps32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxps32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// exp32 is the portable scalar transcription of the assembly exp core:
// same clamp, same VCVTPS2DQ round-to-nearest-even reduction, same FMA
// Horner polynomial (via fma32), same exponent-field scale.
func exp32(x float32) float32 {
	x = maxps32(minps32(x, exp32HI), exp32LO)
	kf := x * exp32LOG2E
	ki := int32(math.RoundToEven(float64(kf)))
	k := float32(ki)
	r := fma32(-k, exp32LN2H, x)
	r = fma32(-k, exp32LN2L, r)
	z := exp32C5
	z = fma32(z, r, exp32C4)
	z = fma32(z, r, exp32C3)
	z = fma32(z, r, exp32C2)
	z = fma32(z, r, exp32C1)
	z = fma32(z, r, exp32C0)
	rr := r * r
	y := fma32(z, rr, r) + 1
	return y * math.Float32frombits(uint32(ki+127)<<23)
}

func sigmoid32(x float32) float32 { return 1 / (1 + exp32(-x)) }

func tanh32(x float32) float32 {
	e := exp32(x + x)
	return (e - 1) / (e + 1)
}

// SigmoidSlice32 sets dst[i] = 1/(1+exp(-x[i])) in float32 for every i,
// bit-identical across the AVX2 and portable paths. dst and x may alias
// exactly.
func SigmoidSlice32(dst, x []float32) {
	if len(dst) != len(x) {
		panic("mat: SigmoidSlice32 length mismatch")
	}
	i := 0
	if useBatchASM {
		if n8 := len(x) &^ 7; n8 > 0 {
			sigmoid32AVX2(&dst[0], &x[0], n8)
			i = n8
		}
	}
	for ; i < len(x); i++ {
		dst[i] = sigmoid32(x[i])
	}
}

// TanhSlice32 sets dst[i] = tanh(x[i]) in float32 via exp(2x),
// bit-identical across the AVX2 and portable paths. dst and x may alias
// exactly.
func TanhSlice32(dst, x []float32) {
	if len(dst) != len(x) {
		panic("mat: TanhSlice32 length mismatch")
	}
	i := 0
	if useBatchASM {
		if n8 := len(x) &^ 7; n8 > 0 {
			tanh32AVX2(&dst[0], &x[0], n8)
			i = n8
		}
	}
	for ; i < len(x); i++ {
		dst[i] = tanh32(x[i])
	}
}
