package mat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// actInputs32 is the shared edge-case-heavy input set for the
// activation kernel tests: specials, saturation bounds, clamp edges,
// tiny and denormal magnitudes, and a dense random sweep of the range
// the gates actually see.
func actInputs32() []float32 {
	xs := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, -0.5,
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		exp32HI, exp32LO, exp32HI / 2, exp32LO / 2,
		math.Nextafter32(exp32HI, 200), math.Nextafter32(exp32LO, -200),
		88.5, -88.5, 127, -127, 1e4, -1e4, 3.4e38, -3.4e38,
		1e-10, -1e-10, 1e-38, -1e-38, math.Float32frombits(1),
		0.3465, -0.3465, 0.3466, -0.3466, // reduction half-ln2 boundary
	}
	g := rng.New(42)
	for i := 0; i < 4096; i++ {
		xs = append(xs, float32((g.Float64()-0.5)*40))
	}
	for i := 0; i < 512; i++ {
		xs = append(xs, float32((g.Float64()-0.5)*240))
	}
	return xs
}

// TestActivation32ASMParity pins the determinism contract of the new
// activation kernels: the AVX2 paths and the portable scalar paths
// produce bit-identical float32 results for every input, including
// NaN, infinities, and the clamp edges, at every slice offset modulo
// the 8-lane granule.
func TestActivation32ASMParity(t *testing.T) {
	xs := actInputs32()
	kernels := []struct {
		name   string
		slice  func(dst, x []float32)
		scalar func(float32) float32
	}{
		{"sigmoid", SigmoidSlice32, sigmoid32},
		{"tanh", TanhSlice32, tanh32},
	}
	for _, kn := range kernels {
		// Portable reference for every element.
		want := make([]float32, len(xs))
		for i, v := range xs {
			want[i] = kn.scalar(v)
		}
		withBatchASM(t, func(t *testing.T) {
			// Vary the length so both the 8-wide body and the scalar
			// tail are exercised against the same reference.
			for _, n := range []int{len(xs), len(xs) - 3, 8, 7, 1, 0} {
				dst := make([]float32, n)
				kn.slice(dst, xs[:n])
				for i := range dst {
					if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
						t.Fatalf("%s(%g) n=%d: got %x want %x (asm=%v)",
							kn.name, xs[i], n, math.Float32bits(dst[i]),
							math.Float32bits(want[i]), useBatchASM)
					}
				}
			}
		})
	}
}

// TestActivation32Accuracy bounds the kernels against the correctly
// rounded float64 reference: a few float32 ulps everywhere, which is
// orders of magnitude inside the published f32 decode tolerances
// (core.ValidateF32 measures the end-to-end effect).
func TestActivation32Accuracy(t *testing.T) {
	for _, x := range actInputs32() {
		if x != x {
			continue
		}
		x64 := float64(x)
		if got, want := float64(sigmoid32(x)), 1/(1+math.Exp(-x64)); math.Abs(got-want) > 5e-7 {
			t.Fatalf("sigmoid32(%g) = %g, want %g (|err| %g)", x, got, want, math.Abs(got-want))
		}
		if got, want := float64(tanh32(x)), math.Tanh(x64); math.Abs(got-want) > 5e-7 {
			t.Fatalf("tanh32(%g) = %g, want %g (|err| %g)", x, got, want, math.Abs(got-want))
		}
	}
	// Spot-check the saturated tails hit the limits exactly.
	for _, x := range []float32{40, 100, 1e30, float32(math.Inf(1))} {
		if sigmoid32(x) != 1 || sigmoid32(-x) >= 1e-15 {
			t.Fatalf("sigmoid32 saturation broken at ±%g", x)
		}
		if tanh32(x) != 1 || tanh32(-x) != -1 {
			t.Fatalf("tanh32 saturation broken at ±%g", x)
		}
	}
}

// TestActivation32Alias pins the documented exact-alias contract
// (dst == x), which is how the fleet applies the gates in place.
func TestActivation32Alias(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		xs := actInputs32()
		for _, apply := range []func(dst, x []float32){SigmoidSlice32, TanhSlice32} {
			sep := make([]float32, len(xs))
			apply(sep, xs)
			inPlace := append([]float32(nil), xs...)
			apply(inPlace, inPlace)
			for i := range sep {
				if math.Float32bits(sep[i]) != math.Float32bits(inPlace[i]) {
					t.Fatalf("aliased result differs at %d: %g vs %g", i, inPlace[i], sep[i])
				}
			}
		}
	})
}

func benchActivation32(b *testing.B, apply func(dst, x []float32)) {
	g := rng.New(7)
	x := make([]float32, 256)
	for i := range x {
		x[i] = float32((g.Float64() - 0.5) * 20)
	}
	dst := make([]float32, len(x))
	b.SetBytes(4 * 2 * int64(len(x)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply(dst, x)
	}
}

func BenchmarkSigmoidSlice32_256(b *testing.B) { benchActivation32(b, SigmoidSlice32) }
func BenchmarkTanhSlice32_256(b *testing.B)    { benchActivation32(b, TanhSlice32) }
