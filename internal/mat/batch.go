package mat

import (
	"math"
	"os"
)

// Batched-decode kernels (DESIGN.md §6.2). The continuous-batching
// fleet in internal/nn drives many concurrent streams through shared
// step GEMMs and elementwise transcendentals from a single goroutine,
// so unlike MulAdd these entry points never fan out to the parallel
// layer; they instead vectorize within one core (AVX2 on amd64, with a
// register-blocked pure-Go fallback elsewhere). Every kernel here is
// bit-identical to its reference counterpart — MulAdd for the GEMM,
// math.Exp for ExpSlice — which is what lets the batched decode path
// promise byte-identical traces to serial decode (see the exactness
// tests in batch_test.go).

// useBatchASM gates the assembly kernels. It is a variable (not a
// const) so exactness tests can force the fallback path; outside tests
// it is written once at init. Setting REPRO_NOASM (to any non-empty
// value) disables the assembly even where the CPU supports it, so CI
// can exercise the portable fallbacks under instrumentation the asm
// escapes (scripts/check.sh runs such a tier under -race); because
// every fallback is bit-identical to its kernel, the flag never
// changes results.
var useBatchASM = haveBatchASM() && os.Getenv("REPRO_NOASM") == ""

// MulAddBatched computes dst += a * b, bit-identically to MulAdd: each
// dst element accumulates its k terms in ascending order, so blocking,
// vectorization, and the fallback all produce the same bits. It stays
// on the calling goroutine regardless of size — the batched decode
// scheduler owns its own concurrency — and is tuned for the decode
// shapes (tens of rows, gate panels a few hundred columns wide).
func MulAddBatched(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulAddBatched shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	n4 := n &^ 3
	if useBatchASM && n4 > 0 {
		gemmAVX2(&dst.Data[0], &a.Data[0], &b.Data[0], m, k, n)
	} else {
		mulAddJTiles(dst, a, b, n4)
	}
	// Column tail the 4-wide kernels do not cover. Ascending k keeps it
	// bit-identical to the reference kernel.
	for j := n4; j < n; j++ {
		for i := 0; i < m; i++ {
			arow := a.Row(i)
			s := dst.Data[i*n+j]
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * b.Data[kk*n+j]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// mulAddJTiles is the portable batched GEMM kernel: per dst row,
// 4-column tiles held in registers across the k sweep (the same
// schedule the assembly kernel vectorizes). Covers columns [0, n4).
func mulAddJTiles(dst, a, b *Dense, n4 int) {
	n := b.Cols
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j+4 <= n4; j += 4 {
			s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			for kk := 0; kk < k; kk++ {
				al := arow[kk]
				brow := b.Data[kk*n+j : kk*n+j+4]
				s0 += al * brow[0]
				s1 += al * brow[1]
				s2 += al * brow[2]
				s3 += al * brow[3]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
	}
}

// ExpSlice sets dst[i] = math.Exp(x[i]) for every i, bit-for-bit —
// including overflow to +Inf, denormal and underflow results, and the
// NaN/±Inf special cases. dst and x may alias exactly. On amd64 with
// AVX2+FMA the bulk runs four lanes at a time through a vector
// transcription of math.Exp's FMA path; everywhere else (and for the
// length tail) it calls math.Exp.
func ExpSlice(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mat: ExpSlice length mismatch")
	}
	i := 0
	if useBatchASM {
		if n4 := len(x) &^ 3; n4 > 0 {
			expAVX2(&dst[0], &x[0], n4)
			i = n4
		}
	}
	for ; i < len(x); i++ {
		dst[i] = math.Exp(x[i])
	}
}
