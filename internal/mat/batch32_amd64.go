package mat

// gemm32AVX2 computes dst[i*n+j] += Σ_k a[i*k+k′]·b[k′*n+j] in float32
// for all m rows and columns [0, n&^7), eight lanes per YMM register —
// twice gemmAVX2's width — accumulating each element's k terms in
// ascending order with separate VMULPS+VADDPS (no FMA, matching the
// portable fallback's plain float32 expression). Columns n&^7..n-1 are
// the caller's job. Implemented in batch32_amd64.s.
//
//go:noescape
func gemm32AVX2(dst, a, b *float32, m, k, n int)

// gemm32FMA is gemm32AVX2 with each multiply-add fused into a single
// VFMADD231PS rounding — the SetFastMath(true) variant, reproduced
// exactly by the portable fma32. Implemented in batch32_amd64.s.
//
//go:noescape
func gemm32FMA(dst, a, b *float32, m, k, n int)

// sigmoid32AVX2 sets dst[i] = 1/(1+exp(-x[i])) for i in [0, n), n a
// positive multiple of 8, bit-identical to the portable sigmoid32 in
// act32.go. Implemented in batch32_amd64.s.
//
//go:noescape
func sigmoid32AVX2(dst, x *float32, n int)

// tanh32AVX2 sets dst[i] = tanh(x[i]) for i in [0, n), n a positive
// multiple of 8, bit-identical to the portable tanh32 in act32.go.
// Implemented in batch32_amd64.s.
//
//go:noescape
func tanh32AVX2(dst, x *float32, n int)

// gemmPacked32AVX2 accumulates one 32-column packed panel tile into dst
// for m activation rows: dst[i*n+j] += Σ_k a[i*k+k′]·p[k′*32+j], j in
// [0, 32), with dst addressed at the tile's first column. Same
// ascending-k separate-VMULPS+VADDPS schedule as gemm32AVX2, so results
// are bit-identical; only the panel loads are contiguous. m and k must
// be positive. Implemented in batch32_amd64.s.
//
//go:noescape
func gemmPacked32AVX2(dst, a, p *float32, m, k, n int)

// gemmPacked8AVX2 is the 8-column narrow-tile variant of
// gemmPacked32AVX2. Implemented in batch32_amd64.s.
//
//go:noescape
func gemmPacked8AVX2(dst, a, p *float32, m, k, n int)

// gemmPacked32FMA is gemmPacked32AVX2 with each multiply-add fused into
// one VFMADD231PS rounding — the SetFastMath(true) variant, reproduced
// exactly by the portable fma32. Implemented in batch32_amd64.s.
//
//go:noescape
func gemmPacked32FMA(dst, a, p *float32, m, k, n int)

// gemmPacked8FMA is the fused 8-column narrow-tile variant.
// Implemented in batch32_amd64.s.
//
//go:noescape
func gemmPacked8FMA(dst, a, p *float32, m, k, n int)
