// AVX2 float32 GEMM kernels for the f32 serving fast path (DESIGN.md
// §6.4). Both are eight-lane transcriptions of the float64 gemmAVX2
// schedule — 32-column register tiles with an 8-column cleanup tile,
// k innermost and ascending — and both are verified element-for-element
// against the portable fallbacks in mat32_test.go:
//
//   - gemm32AVX2 uses separate VMULPS+VADDPS, matching the fallback's
//     plain float32 multiply-then-add rounding.
//
//   - gemm32FMA fuses each term with VFMADD231PS (one rounding per
//     term), matching the fallback's software fma32 exactly.

#include "textflag.h"

// func gemm32AVX2(dst, a, b *float32, m, k, n int)
//
// dst[i][j] += sum_k a[i][k]*b[k][j] over columns [0, n&^7), with
// 32-column register tiles and an 8-column cleanup tile. The k loop is
// innermost and ascending, and every product feeds a separate add.
TEXT ·gemm32AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10

	TESTQ CX, CX
	JLE   sgdone
	TESTQ R9, R9
	JLE   sgdone

	MOVQ R10, R11 // R11 = (n &^ 7) * 4: 8-wide column limit, bytes
	ANDQ $-8, R11
	SHLQ $2, R11
	MOVQ R10, R12 // R12 = (n &^ 31) * 4: 32-wide column limit, bytes
	ANDQ $-32, R12
	SHLQ $2, R12
	SHLQ $2, R10  // R10 = n*4: dst/b row stride, bytes

sgrowi:
	XORQ BX, BX // j, bytes

sgj32:
	CMPQ BX, R12
	JGE  sgj8
	VMOVUPS (DI)(BX*1), Y0
	VMOVUPS 32(DI)(BX*1), Y1
	VMOVUPS 64(DI)(BX*1), Y2
	VMOVUPS 96(DI)(BX*1), Y3
	LEAQ    (DX)(BX*1), R13 // &b[0][j]
	MOVQ    SI, AX          // &a[i][0]
	MOVQ    R9, R8          // k countdown

sgk32:
	VBROADCASTSS (AX), Y4
	VMULPS       (R13), Y4, Y5
	VADDPS       Y5, Y0, Y0
	VMULPS       32(R13), Y4, Y6
	VADDPS       Y6, Y1, Y1
	VMULPS       64(R13), Y4, Y7
	VADDPS       Y7, Y2, Y2
	VMULPS       96(R13), Y4, Y8
	VADDPS       Y8, Y3, Y3
	ADDQ         $4, AX
	ADDQ         R10, R13
	DECQ         R8
	JNZ          sgk32
	VMOVUPS      Y0, (DI)(BX*1)
	VMOVUPS      Y1, 32(DI)(BX*1)
	VMOVUPS      Y2, 64(DI)(BX*1)
	VMOVUPS      Y3, 96(DI)(BX*1)
	ADDQ         $128, BX
	JMP          sgj32

sgj8:
	CMPQ BX, R11
	JGE  sgrowiend
	VMOVUPS (DI)(BX*1), Y0
	LEAQ    (DX)(BX*1), R13
	MOVQ    SI, AX
	MOVQ    R9, R8

sgk8:
	VBROADCASTSS (AX), Y4
	VMULPS       (R13), Y4, Y5
	VADDPS       Y5, Y0, Y0
	ADDQ         $4, AX
	ADDQ         R10, R13
	DECQ         R8
	JNZ          sgk8
	VMOVUPS      Y0, (DI)(BX*1)
	ADDQ         $32, BX
	JMP          sgj8

sgrowiend:
	ADDQ R10, DI        // next dst row
	LEAQ (SI)(R9*4), SI // next a row
	DECQ CX
	JNZ  sgrowi

sgdone:
	VZEROUPPER
	RET

// func gemm32FMA(dst, a, b *float32, m, k, n int)
//
// gemm32AVX2 with every multiply-add fused: one VFMADD231PS rounding
// per accumulated term (the SetFastMath contract).
TEXT ·gemm32FMA(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10

	TESTQ CX, CX
	JLE   fgdone
	TESTQ R9, R9
	JLE   fgdone

	MOVQ R10, R11 // R11 = (n &^ 7) * 4: 8-wide column limit, bytes
	ANDQ $-8, R11
	SHLQ $2, R11
	MOVQ R10, R12 // R12 = (n &^ 31) * 4: 32-wide column limit, bytes
	ANDQ $-32, R12
	SHLQ $2, R12
	SHLQ $2, R10  // R10 = n*4: dst/b row stride, bytes

fgrowi:
	XORQ BX, BX // j, bytes

fgj32:
	CMPQ BX, R12
	JGE  fgj8
	VMOVUPS (DI)(BX*1), Y0
	VMOVUPS 32(DI)(BX*1), Y1
	VMOVUPS 64(DI)(BX*1), Y2
	VMOVUPS 96(DI)(BX*1), Y3
	LEAQ    (DX)(BX*1), R13 // &b[0][j]
	MOVQ    SI, AX          // &a[i][0]
	MOVQ    R9, R8          // k countdown

fgk32:
	VBROADCASTSS (AX), Y4
	VFMADD231PS  (R13), Y4, Y0
	VFMADD231PS  32(R13), Y4, Y1
	VFMADD231PS  64(R13), Y4, Y2
	VFMADD231PS  96(R13), Y4, Y3
	ADDQ         $4, AX
	ADDQ         R10, R13
	DECQ         R8
	JNZ          fgk32
	VMOVUPS      Y0, (DI)(BX*1)
	VMOVUPS      Y1, 32(DI)(BX*1)
	VMOVUPS      Y2, 64(DI)(BX*1)
	VMOVUPS      Y3, 96(DI)(BX*1)
	ADDQ         $128, BX
	JMP          fgj32

fgj8:
	CMPQ BX, R11
	JGE  fgrowiend
	VMOVUPS (DI)(BX*1), Y0
	LEAQ    (DX)(BX*1), R13
	MOVQ    SI, AX
	MOVQ    R9, R8

fgk8:
	VBROADCASTSS (AX), Y4
	VFMADD231PS  (R13), Y4, Y0
	ADDQ         $4, AX
	ADDQ         R10, R13
	DECQ         R8
	JNZ          fgk8
	VMOVUPS      Y0, (DI)(BX*1)
	ADDQ         $32, BX
	JMP          fgj8

fgrowiend:
	ADDQ R10, DI        // next dst row
	LEAQ (SI)(R9*4), SI // next a row
	DECQ CX
	JNZ  fgrowi

fgdone:
	VZEROUPPER
	RET

// Eight-lane f32 activation kernels for the decode fleet's gates
// (act32.go holds the shared constant table ·exp32Consts and the
// bit-identical portable transcription). EXPCORE32 is the common exp
// core — clamp, round-to-nearest-even argument reduction, FMA Horner
// polynomial, exponent-field scale — operating on Y0 with BX holding
// the constant table base; it clobbers Y1-Y3. Table rows (32 bytes
// each): +0 HI, +32 LO, +64 log2(e), +96 ln2 high, +128 ln2 low,
// +160..+320 the six polynomial coefficients C5..C0, +352 1.0,
// +384 int32 127 (exponent bias), +416 the sign mask.
//
// The clamp turns every special case into ordinary arithmetic: inputs
// above HI or below LO (and NaNs, which MINPS/MAXPS resolve to the
// bound) saturate, k stays in [-126, 127], and the 2^k scale factor is
// always a normal float32.
#define EXPCORE32 \
	VMINPS 0(BX), Y0, Y0 \
	VMAXPS 32(BX), Y0, Y0 \
	VMULPS 64(BX), Y0, Y1 \
	VCVTPS2DQ Y1, Y1 \
	VCVTDQ2PS Y1, Y2 \
	VFNMADD231PS 96(BX), Y2, Y0 \
	VFNMADD231PS 128(BX), Y2, Y0 \
	VMOVUPS 160(BX), Y3 \
	VFMADD213PS 192(BX), Y0, Y3 \
	VFMADD213PS 224(BX), Y0, Y3 \
	VFMADD213PS 256(BX), Y0, Y3 \
	VFMADD213PS 288(BX), Y0, Y3 \
	VFMADD213PS 320(BX), Y0, Y3 \
	VMULPS Y0, Y0, Y2 \
	VFMADD213PS Y0, Y2, Y3 \
	VADDPS 352(BX), Y3, Y3 \
	VPADDD 384(BX), Y1, Y1 \
	VPSLLD $23, Y1, Y1 \
	VMULPS Y1, Y3, Y0

// func sigmoid32AVX2(dst, x *float32, n int)
//
// dst[i] = 1/(1+exp(-x[i])) for i in [0, n), n a positive multiple
// of 8. Negate via the sign mask, exp core, then a full-precision
// divide (no reciprocal approximation: VDIVPS rounds correctly, which
// is what the portable path computes).
TEXT ·sigmoid32AVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	MOVQ $·exp32Consts(SB), BX

sigloop:
	VMOVUPS (SI), Y0
	VXORPS  416(BX), Y0, Y0 // -x
	EXPCORE32
	VADDPS  352(BX), Y0, Y2 // e + 1
	VMOVUPS 352(BX), Y3
	VDIVPS  Y2, Y3, Y0      // 1 / (e + 1)
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     sigloop
	VZEROUPPER
	RET

// func tanh32AVX2(dst, x *float32, n int)
//
// dst[i] = tanh(x[i]) for i in [0, n), n a positive multiple of 8,
// via e = exp(2x) and (e-1)/(e+1). The clamp inside the exp core
// saturates both tails to ±1 without special cases.
TEXT ·tanh32AVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	MOVQ $·exp32Consts(SB), BX

tanhloop:
	VMOVUPS (SI), Y0
	VADDPS  Y0, Y0, Y0 // 2x
	EXPCORE32
	VMOVUPS 352(BX), Y4
	VSUBPS  Y4, Y0, Y2 // e - 1
	VADDPS  Y4, Y0, Y3 // e + 1
	VDIVPS  Y3, Y2, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     tanhloop
	VZEROUPPER
	RET

// Packed-panel f32 tile kernels (DESIGN.md §6.5): the eight-lane
// counterparts of gemmPacked16AVX2/gemmPacked4AVX2, one pair per
// accumulation contract. Each processes ONE j-tile of a packed panel
// across all m activation rows with sequential panel loads; the
// no-FMA pair matches mulAddPackedTile32's separate multiply-then-add
// rounding, the FMA pair matches mulAddPackedTileFMA32's single fused
// rounding per term (SetFastMath).

// func gemmPacked32AVX2(dst, a, p *float32, m, k, n int)
//
// dst[i*n + j] += Σ_kk a[i*k + kk] * p[kk*32 + j] for i in [0, m),
// j in [0, 32). dst row stride n*4 bytes; a rows contiguous (k*4
// bytes); p is one k×32 panel tile (rows 128 bytes apart, sequential).
TEXT ·gemmPacked32AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10
	SHLQ $2, R10 // dst row stride, bytes

sp32row:
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	MOVQ    DX, R13 // panel cursor, reset per row
	MOVQ    SI, AX  // &a[i][0]
	MOVQ    R9, R8  // k countdown

sp32k:
	VBROADCASTSS (AX), Y4
	VMULPS       (R13), Y4, Y5
	VADDPS       Y5, Y0, Y0
	VMULPS       32(R13), Y4, Y6
	VADDPS       Y6, Y1, Y1
	VMULPS       64(R13), Y4, Y7
	VADDPS       Y7, Y2, Y2
	VMULPS       96(R13), Y4, Y8
	VADDPS       Y8, Y3, Y3
	ADDQ         $4, AX
	ADDQ         $128, R13
	DECQ         R8
	JNZ          sp32k
	VMOVUPS      Y0, (DI)
	VMOVUPS      Y1, 32(DI)
	VMOVUPS      Y2, 64(DI)
	VMOVUPS      Y3, 96(DI)
	ADDQ         R10, DI        // next dst row
	LEAQ         (SI)(R9*4), SI // next a row
	DECQ         CX
	JNZ          sp32row
	VZEROUPPER
	RET

// func gemmPacked8AVX2(dst, a, p *float32, m, k, n int)
//
// The 8-column narrow-tile variant: one YMM accumulator, panel rows
// 32 bytes apart.
TEXT ·gemmPacked8AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10
	SHLQ $2, R10

sp8row:
	VMOVUPS (DI), Y0
	MOVQ    DX, R13
	MOVQ    SI, AX
	MOVQ    R9, R8

sp8k:
	VBROADCASTSS (AX), Y4
	VMULPS       (R13), Y4, Y5
	VADDPS       Y5, Y0, Y0
	ADDQ         $4, AX
	ADDQ         $32, R13
	DECQ         R8
	JNZ          sp8k
	VMOVUPS      Y0, (DI)
	ADDQ         R10, DI
	LEAQ         (SI)(R9*4), SI
	DECQ         CX
	JNZ          sp8row
	VZEROUPPER
	RET

// func gemmPacked32FMA(dst, a, p *float32, m, k, n int)
//
// gemmPacked32AVX2 with each multiply-add fused into one VFMADD231PS
// rounding per term (the SetFastMath contract).
TEXT ·gemmPacked32FMA(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10
	SHLQ $2, R10

fp32row:
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	MOVQ    DX, R13
	MOVQ    SI, AX
	MOVQ    R9, R8

fp32k:
	VBROADCASTSS (AX), Y4
	VFMADD231PS  (R13), Y4, Y0
	VFMADD231PS  32(R13), Y4, Y1
	VFMADD231PS  64(R13), Y4, Y2
	VFMADD231PS  96(R13), Y4, Y3
	ADDQ         $4, AX
	ADDQ         $128, R13
	DECQ         R8
	JNZ          fp32k
	VMOVUPS      Y0, (DI)
	VMOVUPS      Y1, 32(DI)
	VMOVUPS      Y2, 64(DI)
	VMOVUPS      Y3, 96(DI)
	ADDQ         R10, DI
	LEAQ         (SI)(R9*4), SI
	DECQ         CX
	JNZ          fp32row
	VZEROUPPER
	RET

// func gemmPacked8FMA(dst, a, p *float32, m, k, n int)
//
// The fused 8-column narrow-tile variant.
TEXT ·gemmPacked8FMA(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10
	SHLQ $2, R10

fp8row:
	VMOVUPS (DI), Y0
	MOVQ    DX, R13
	MOVQ    SI, AX
	MOVQ    R9, R8

fp8k:
	VBROADCASTSS (AX), Y4
	VFMADD231PS  (R13), Y4, Y0
	ADDQ         $4, AX
	ADDQ         $32, R13
	DECQ         R8
	JNZ          fp8k
	VMOVUPS      Y0, (DI)
	ADDQ         R10, DI
	LEAQ         (SI)(R9*4), SI
	DECQ         CX
	JNZ          fp8row
	VZEROUPPER
	RET
