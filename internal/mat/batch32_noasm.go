//go:build !amd64

package mat

// Without assembly kernels MulAddBatched32 uses the portable tiled
// fallbacks in mat32.go, which are bit-identical (and the reference the
// assembly is tested against).

func gemm32AVX2(dst, a, b *float32, m, k, n int) {
	panic("mat: gemm32AVX2 without assembly kernel")
}

func gemm32FMA(dst, a, b *float32, m, k, n int) {
	panic("mat: gemm32FMA without assembly kernel")
}

func sigmoid32AVX2(dst, x *float32, n int) {
	panic("mat: sigmoid32AVX2 without assembly kernel")
}

func tanh32AVX2(dst, x *float32, n int) {
	panic("mat: tanh32AVX2 without assembly kernel")
}

func gemmPacked32AVX2(dst, a, p *float32, m, k, n int) {
	panic("mat: gemmPacked32AVX2 without assembly kernel")
}

func gemmPacked8AVX2(dst, a, p *float32, m, k, n int) {
	panic("mat: gemmPacked8AVX2 without assembly kernel")
}

func gemmPacked32FMA(dst, a, p *float32, m, k, n int) {
	panic("mat: gemmPacked32FMA without assembly kernel")
}

func gemmPacked8FMA(dst, a, p *float32, m, k, n int) {
	panic("mat: gemmPacked8FMA without assembly kernel")
}
