package mat

// haveBatchASM reports whether the AVX2 batched-decode kernels may be
// used. The gate requires AVX, AVX2, FMA, and OS-enabled YMM state:
// AVX2 for the 256-bit integer ops in the vector ldexp, and AVX+FMA
// because expAVX2 transcribes math.Exp's FMA path — math's own
// useFMA flag is exactly HasAVX && HasFMA, so whenever our kernels are
// enabled the scalar math.Exp they must match bit-for-bit is on that
// same path.
func haveBatchASM() bool { return cpuHasAVX2FMA() }

// cpuHasAVX2FMA reports AVX+AVX2+FMA with OS-enabled YMM state
// (CPUID leaves 1 and 7, XGETBV). Implemented in batch_amd64.s.
func cpuHasAVX2FMA() bool

// gemmAVX2 computes dst[i*n+j] += Σ_k a[i*k+j′]·b[j′*n+j] for all m
// rows and columns [0, n&^3), accumulating each element's k terms in
// ascending order with separate VMULPD+VADDPD (no FMA — the reference
// scalar kernel rounds the product and the sum separately, and fusing
// them would change bits). Columns n&^3..n-1 are the caller's job.
//
//go:noescape
func gemmAVX2(dst, a, b *float64, m, k, n int)

// expAVX2 sets dst[i] = math.Exp(x[i]) for i in [0, n), n a positive
// multiple of 4, bit-identically to math.Exp's amd64 FMA path. dst and
// x may alias exactly. Implemented in batch_amd64.s.
//
//go:noescape
func expAVX2(dst, x *float64, n int)

// gemmPacked16AVX2 accumulates one 16-column packed panel tile into dst
// for m activation rows: dst[i*n+j] += Σ_k a[i*k+k′]·p[k′*16+j], j in
// [0, 16), with dst addressed at the tile's first column. Same
// ascending-k separate-VMULPD+VADDPD schedule as gemmAVX2, so results
// are bit-identical; only the panel loads are contiguous. m and k must
// be positive. Implemented in batch_amd64.s.
//
//go:noescape
func gemmPacked16AVX2(dst, a, p *float64, m, k, n int)

// gemmPacked4AVX2 is the 4-column narrow-tile variant of
// gemmPacked16AVX2. Implemented in batch_amd64.s.
//
//go:noescape
func gemmPacked4AVX2(dst, a, p *float64, m, k, n int)
