// AVX2 kernels for the continuous-batching decode path (DESIGN.md
// §6.2). Both kernels are bit-identical to their portable references
// and are verified against them element-for-element in batch_test.go:
//
//   - gemmAVX2 accumulates each dst element's k terms in ascending
//     order with separate VMULPD+VADDPD. No FMA: the scalar reference
//     rounds the product and the sum separately, and fusing them would
//     change low bits.
//
//   - expAVX2 is a four-lane transcription of math.Exp's amd64 FMA
//     path (exp_amd64.s, the Shibata/SLEEF reduction): the same FMA
//     reduction, polynomial, squaring chain, and two-step denormal
//     ldexp, instruction for instruction, with the scalar code's
//     branches (overflow, underflow, denormal, NaN, ±Inf) turned into
//     masked blends. It is used only when the CPU also makes math.Exp
//     take that path (see haveBatchASM), so the two always agree.

#include "textflag.h"

// func cpuHasAVX2FMA() bool
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	// CPUID.1:ECX — FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $(1<<12 | 1<<27 | 1<<28), BX
	CMPL BX, $(1<<12 | 1<<27 | 1<<28)
	JNE  nosupport

	// XGETBV(0) — OS enabled XMM (bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  nosupport

	// CPUID.(7,0):EBX — AVX2 (bit 5).
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   nosupport

	MOVB $1, ret+0(FP)
	RET

nosupport:
	MOVB $0, ret+0(FP)
	RET

// func gemmAVX2(dst, a, b *float64, m, k, n int)
//
// dst[i][j] += sum_k a[i][k]*b[k][j] over columns [0, n&^3), with
// 16-column register tiles and a 4-column cleanup tile. The k loop is
// innermost and ascending, and every product feeds a separate add.
TEXT ·gemmAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10

	TESTQ CX, CX
	JLE   gdone
	TESTQ R9, R9
	JLE   gdone

	MOVQ R10, R11 // R11 = (n &^ 3) * 8: 4-wide column limit, bytes
	ANDQ $-4, R11
	SHLQ $3, R11
	MOVQ R10, R12 // R12 = (n &^ 15) * 8: 16-wide column limit, bytes
	ANDQ $-16, R12
	SHLQ $3, R12
	SHLQ $3, R10  // R10 = n*8: dst/b row stride, bytes

growi:
	XORQ BX, BX // j, bytes

gj16:
	CMPQ BX, R12
	JGE  gj4
	VMOVUPD (DI)(BX*1), Y0
	VMOVUPD 32(DI)(BX*1), Y1
	VMOVUPD 64(DI)(BX*1), Y2
	VMOVUPD 96(DI)(BX*1), Y3
	LEAQ    (DX)(BX*1), R13 // &b[0][j]
	MOVQ    SI, AX          // &a[i][0]
	MOVQ    R9, R8          // k countdown

gk16:
	VBROADCASTSD (AX), Y4
	VMULPD       (R13), Y4, Y5
	VADDPD       Y5, Y0, Y0
	VMULPD       32(R13), Y4, Y6
	VADDPD       Y6, Y1, Y1
	VMULPD       64(R13), Y4, Y7
	VADDPD       Y7, Y2, Y2
	VMULPD       96(R13), Y4, Y8
	VADDPD       Y8, Y3, Y3
	ADDQ         $8, AX
	ADDQ         R10, R13
	DECQ         R8
	JNZ          gk16
	VMOVUPD      Y0, (DI)(BX*1)
	VMOVUPD      Y1, 32(DI)(BX*1)
	VMOVUPD      Y2, 64(DI)(BX*1)
	VMOVUPD      Y3, 96(DI)(BX*1)
	ADDQ         $128, BX
	JMP          gj16

gj4:
	CMPQ BX, R11
	JGE  growiend
	VMOVUPD (DI)(BX*1), Y0
	LEAQ    (DX)(BX*1), R13
	MOVQ    SI, AX
	MOVQ    R9, R8

gk4:
	VBROADCASTSD (AX), Y4
	VMULPD       (R13), Y4, Y5
	VADDPD       Y5, Y0, Y0
	ADDQ         $8, AX
	ADDQ         R10, R13
	DECQ         R8
	JNZ          gk4
	VMOVUPD      Y0, (DI)(BX*1)
	ADDQ         $32, BX
	JMP          gj4

growiend:
	ADDQ R10, DI        // next dst row
	LEAQ (SI)(R9*8), SI // next a row
	DECQ CX
	JNZ  growi

gdone:
	VZEROUPPER
	RET

// Broadcast constant table for expAVX2: each 32-byte row is one
// float64 (or int64) replicated four times. The float values are the
// exact constants of math's exp_amd64.s.
DATA expc<>+0(SB)/8, $1.4426950408889634073599246810018920    // LOG2E
DATA expc<>+8(SB)/8, $1.4426950408889634073599246810018920
DATA expc<>+16(SB)/8, $1.4426950408889634073599246810018920
DATA expc<>+24(SB)/8, $1.4426950408889634073599246810018920
DATA expc<>+32(SB)/8, $7.09782712893384e+02                   // Overflow
DATA expc<>+40(SB)/8, $7.09782712893384e+02
DATA expc<>+48(SB)/8, $7.09782712893384e+02
DATA expc<>+56(SB)/8, $7.09782712893384e+02
DATA expc<>+64(SB)/8, $0.69314718055966295651160180568695068359375 // LN2U
DATA expc<>+72(SB)/8, $0.69314718055966295651160180568695068359375
DATA expc<>+80(SB)/8, $0.69314718055966295651160180568695068359375
DATA expc<>+88(SB)/8, $0.69314718055966295651160180568695068359375
DATA expc<>+96(SB)/8, $0.28235290563031577122588448175013436025525412068e-12 // LN2L
DATA expc<>+104(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA expc<>+112(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA expc<>+120(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA expc<>+128(SB)/8, $0.0625
DATA expc<>+136(SB)/8, $0.0625
DATA expc<>+144(SB)/8, $0.0625
DATA expc<>+152(SB)/8, $0.0625
DATA expc<>+160(SB)/8, $2.4801587301587301587e-5
DATA expc<>+168(SB)/8, $2.4801587301587301587e-5
DATA expc<>+176(SB)/8, $2.4801587301587301587e-5
DATA expc<>+184(SB)/8, $2.4801587301587301587e-5
DATA expc<>+192(SB)/8, $1.9841269841269841270e-4
DATA expc<>+200(SB)/8, $1.9841269841269841270e-4
DATA expc<>+208(SB)/8, $1.9841269841269841270e-4
DATA expc<>+216(SB)/8, $1.9841269841269841270e-4
DATA expc<>+224(SB)/8, $1.3888888888888888889e-3
DATA expc<>+232(SB)/8, $1.3888888888888888889e-3
DATA expc<>+240(SB)/8, $1.3888888888888888889e-3
DATA expc<>+248(SB)/8, $1.3888888888888888889e-3
DATA expc<>+256(SB)/8, $8.3333333333333333333e-3
DATA expc<>+264(SB)/8, $8.3333333333333333333e-3
DATA expc<>+272(SB)/8, $8.3333333333333333333e-3
DATA expc<>+280(SB)/8, $8.3333333333333333333e-3
DATA expc<>+288(SB)/8, $4.1666666666666666667e-2
DATA expc<>+296(SB)/8, $4.1666666666666666667e-2
DATA expc<>+304(SB)/8, $4.1666666666666666667e-2
DATA expc<>+312(SB)/8, $4.1666666666666666667e-2
DATA expc<>+320(SB)/8, $1.6666666666666666667e-1
DATA expc<>+328(SB)/8, $1.6666666666666666667e-1
DATA expc<>+336(SB)/8, $1.6666666666666666667e-1
DATA expc<>+344(SB)/8, $1.6666666666666666667e-1
DATA expc<>+352(SB)/8, $0.5
DATA expc<>+360(SB)/8, $0.5
DATA expc<>+368(SB)/8, $0.5
DATA expc<>+376(SB)/8, $0.5
DATA expc<>+384(SB)/8, $1.0
DATA expc<>+392(SB)/8, $1.0
DATA expc<>+400(SB)/8, $1.0
DATA expc<>+408(SB)/8, $1.0
DATA expc<>+416(SB)/8, $2.0
DATA expc<>+424(SB)/8, $2.0
DATA expc<>+432(SB)/8, $2.0
DATA expc<>+440(SB)/8, $2.0
DATA expc<>+448(SB)/8, $0x3FF // exponent bias
DATA expc<>+456(SB)/8, $0x3FF
DATA expc<>+464(SB)/8, $0x3FF
DATA expc<>+472(SB)/8, $0x3FF
DATA expc<>+480(SB)/8, $1 // for biased <= 0 as 1 > biased
DATA expc<>+488(SB)/8, $1
DATA expc<>+496(SB)/8, $1
DATA expc<>+504(SB)/8, $1
DATA expc<>+512(SB)/8, $-52 // deepest representable denormal shift
DATA expc<>+520(SB)/8, $-52
DATA expc<>+528(SB)/8, $-52
DATA expc<>+536(SB)/8, $-52
DATA expc<>+544(SB)/8, $0x7FE // for biased >= 0x7FF as biased > 0x7FE
DATA expc<>+552(SB)/8, $0x7FE
DATA expc<>+560(SB)/8, $0x7FE
DATA expc<>+568(SB)/8, $0x7FE
DATA expc<>+576(SB)/8, $0x3FE // bias-1 for the denormal two-step
DATA expc<>+584(SB)/8, $0x3FE
DATA expc<>+592(SB)/8, $0x3FE
DATA expc<>+600(SB)/8, $0x3FE
DATA expc<>+608(SB)/8, $0x0010000000000000 // bits of 2^-1022
DATA expc<>+616(SB)/8, $0x0010000000000000
DATA expc<>+624(SB)/8, $0x0010000000000000
DATA expc<>+632(SB)/8, $0x0010000000000000
DATA expc<>+640(SB)/8, $0x7FF0000000000000 // +Inf
DATA expc<>+648(SB)/8, $0x7FF0000000000000
DATA expc<>+656(SB)/8, $0x7FF0000000000000
DATA expc<>+664(SB)/8, $0x7FF0000000000000
DATA expc<>+672(SB)/4, $0x00000000 // -Inf (split to fit the int range)
DATA expc<>+676(SB)/4, $0xFFF00000
DATA expc<>+680(SB)/4, $0x00000000
DATA expc<>+684(SB)/4, $0xFFF00000
DATA expc<>+688(SB)/4, $0x00000000
DATA expc<>+692(SB)/4, $0xFFF00000
DATA expc<>+696(SB)/4, $0x00000000
DATA expc<>+700(SB)/4, $0xFFF00000
GLOBL expc<>+0(SB), RODATA, $704

// func expAVX2(dst, x *float64, n int)
//
// dst[i] = Exp(x[i]) for i in [0, n), n a positive multiple of 4.
// Four-lane transcription of archExp's FMA path; see the file comment.
TEXT ·expAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX

eloop:
	VMOVUPD (SI), Y0
	VMOVUPD Y0, Y12 // original bits for the NaN lanes

	// Special-case masks, from the unmodified input: NaN (return x),
	// -Inf (return 0), and x > Overflow (return +Inf; also catches
	// +Inf itself, which the scalar code returns unchanged).
	VCMPPD $3, Y0, Y0, Y5            // unordered: NaN lanes
	VCMPPD $0, expc<>+672(SB), Y0, Y6 // x == -Inf
	VCMPPD $30, expc<>+32(SB), Y0, Y4 // x > Overflow (GT_OQ: false for NaN)

	// Argument reduction: k = round(x*log2(e)); r = x - k*ln2 via the
	// split-constant FNMAs; r /= 16.
	VMULPD       expc<>+0(SB), Y0, Y1
	VCVTPD2DQY   Y1, X13
	VCVTDQ2PD    X13, Y3
	VFNMADD231PD expc<>+64(SB), Y3, Y0
	VFNMADD231PD expc<>+96(SB), Y3, Y0
	VMULPD       expc<>+128(SB), Y0, Y0

	// Taylor polynomial, FMA Horner, then exp(r)-1 via the squaring
	// chain f = f*(f+2) four times (last fused with the final +1).
	VMOVUPD     expc<>+160(SB), Y1
	VFMADD213PD expc<>+192(SB), Y0, Y1
	VFMADD213PD expc<>+224(SB), Y0, Y1
	VFMADD213PD expc<>+256(SB), Y0, Y1
	VFMADD213PD expc<>+288(SB), Y0, Y1
	VFMADD213PD expc<>+320(SB), Y0, Y1
	VFMADD213PD expc<>+352(SB), Y0, Y1
	VFMADD213PD expc<>+384(SB), Y0, Y1
	VMULPD      Y1, Y0, Y0
	VADDPD      expc<>+416(SB), Y0, Y2
	VMULPD      Y2, Y0, Y0
	VADDPD      expc<>+416(SB), Y0, Y2
	VMULPD      Y2, Y0, Y0
	VADDPD      expc<>+416(SB), Y0, Y2
	VMULPD      Y2, Y0, Y0
	VADDPD      expc<>+416(SB), Y0, Y2
	VFMADD213PD expc<>+384(SB), Y2, Y0

	// Vector ldexp: biased = k + 1023. Lanes with biased > 0x7FE
	// overflow to +Inf; lanes with biased <= 0 rescale through the
	// scalar code's two-step denormal product (underflowing to 0 below
	// biased = -52); the rest scale by 2^k directly.
	VPMOVSXDQ X13, Y7
	VPADDQ    expc<>+448(SB), Y7, Y7
	VMOVDQU   expc<>+480(SB), Y8
	VPCMPGTQ  Y7, Y8, Y8               // biased <= 0: denormal lanes
	VMOVDQU   expc<>+512(SB), Y9
	VPCMPGTQ  Y7, Y9, Y9               // biased < -52: underflow lanes
	VPCMPGTQ  expc<>+544(SB), Y7, Y10  // biased > 0x7FE: overflow lanes
	VPSLLQ    $52, Y7, Y11
	VMULPD    Y11, Y0, Y11             // normal lanes: f * 2^k
	VPADDQ    expc<>+576(SB), Y7, Y7
	VPSLLQ    $52, Y7, Y7
	VMULPD    Y7, Y0, Y7
	VMULPD    expc<>+608(SB), Y7, Y7   // denormal lanes: (f*2^(k+2045)) * 2^-1022

	// Compose, in the scalar code's precedence order (NaN last).
	VBLENDVPD Y8, Y7, Y11, Y0
	VXORPD    Y2, Y2, Y2
	VBLENDVPD Y9, Y2, Y0, Y0
	VMOVUPD   expc<>+640(SB), Y3
	VBLENDVPD Y10, Y3, Y0, Y0
	VBLENDVPD Y4, Y3, Y0, Y0
	VBLENDVPD Y6, Y2, Y0, Y0
	VBLENDVPD Y5, Y12, Y0, Y0

	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     eloop
	VZEROUPPER
	RET

// Packed-panel tile kernels (DESIGN.md §6.5). Each processes ONE
// j-tile of a packed weight panel across all m activation rows, with
// the panel's k rows loaded sequentially (the tile is k-major and
// contiguous), so after the first activation row the whole tile serves
// from L1. The accumulation schedule is gemmAVX2's — k innermost and
// ascending, separate VMULPD+VADDPD per term — so packing cannot
// change a single output bit.

// func gemmPacked16AVX2(dst, a, p *float64, m, k, n int)
//
// dst[i*n + j] += Σ_kk a[i*k + kk] * p[kk*16 + j] for i in [0, m),
// j in [0, 16). dst is addressed at the tile's first column (row
// stride n*8 bytes); a rows are contiguous (stride k*8 bytes); p is
// one k×16 panel tile (rows 128 bytes apart, sequential).
TEXT ·gemmPacked16AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10
	SHLQ $3, R10 // dst row stride, bytes

p16row:
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	MOVQ    DX, R13 // panel cursor, reset per row
	MOVQ    SI, AX  // &a[i][0]
	MOVQ    R9, R8  // k countdown

p16k:
	VBROADCASTSD (AX), Y4
	VMULPD       (R13), Y4, Y5
	VADDPD       Y5, Y0, Y0
	VMULPD       32(R13), Y4, Y6
	VADDPD       Y6, Y1, Y1
	VMULPD       64(R13), Y4, Y7
	VADDPD       Y7, Y2, Y2
	VMULPD       96(R13), Y4, Y8
	VADDPD       Y8, Y3, Y3
	ADDQ         $8, AX
	ADDQ         $128, R13
	DECQ         R8
	JNZ          p16k
	VMOVUPD      Y0, (DI)
	VMOVUPD      Y1, 32(DI)
	VMOVUPD      Y2, 64(DI)
	VMOVUPD      Y3, 96(DI)
	ADDQ         R10, DI        // next dst row
	LEAQ         (SI)(R9*8), SI // next a row
	DECQ         CX
	JNZ          p16row
	VZEROUPPER
	RET

// func gemmPacked4AVX2(dst, a, p *float64, m, k, n int)
//
// The 4-column narrow-tile variant of gemmPacked16AVX2: one YMM
// accumulator, panel rows 32 bytes apart.
TEXT ·gemmPacked4AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ m+24(FP), CX
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10
	SHLQ $3, R10 // dst row stride, bytes

p4row:
	VMOVUPD (DI), Y0
	MOVQ    DX, R13
	MOVQ    SI, AX
	MOVQ    R9, R8

p4k:
	VBROADCASTSD (AX), Y4
	VMULPD       (R13), Y4, Y5
	VADDPD       Y5, Y0, Y0
	ADDQ         $8, AX
	ADDQ         $32, R13
	DECQ         R8
	JNZ          p4k
	VMOVUPD      Y0, (DI)
	ADDQ         R10, DI
	LEAQ         (SI)(R9*8), SI
	DECQ         CX
	JNZ          p4row
	VZEROUPPER
	RET
