//go:build !amd64

package mat

// haveBatchASM reports whether assembly batched-decode kernels exist
// for this architecture. Without them MulAddBatched and ExpSlice use
// the portable fallbacks in batch.go, which are bit-identical (and the
// reference the assembly is tested against).
func haveBatchASM() bool { return false }

func gemmAVX2(dst, a, b *float64, m, k, n int) {
	panic("mat: gemmAVX2 without assembly kernel")
}

func expAVX2(dst, x *float64, n int) {
	panic("mat: expAVX2 without assembly kernel")
}

func gemmPacked16AVX2(dst, a, p *float64, m, k, n int) {
	panic("mat: gemmPacked16AVX2 without assembly kernel")
}

func gemmPacked4AVX2(dst, a, p *float64, m, k, n int) {
	panic("mat: gemmPacked4AVX2 without assembly kernel")
}
