package mat

import (
	"math"
	"testing"
)

// withBatchASM runs f twice when assembly kernels are available — once
// with them and once forced onto the portable fallback — so every
// exactness property is checked on both paths.
func withBatchASM(t *testing.T, f func(t *testing.T)) {
	t.Run("fallback", func(t *testing.T) {
		saved := useBatchASM
		useBatchASM = false
		defer func() { useBatchASM = saved }()
		f(t)
	})
	if !haveBatchASM() {
		return
	}
	t.Run("asm", func(t *testing.T) {
		saved := useBatchASM
		useBatchASM = true
		defer func() { useBatchASM = saved }()
		f(t)
	})
}

// TestMulAddBatchedBitExact checks MulAddBatched against MulAdd, the
// reference the serial decode path uses, over shapes that exercise the
// 16-wide tiles, the 4-wide cleanup, and the scalar column tail.
func TestMulAddBatchedBitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		shapes := [][3]int{
			{8, 24, 96}, {1, 24, 96}, {64, 24, 96}, // decode gate panels
			{8, 24, 18}, {8, 24, 48}, // head shapes
			{7, 23, 97}, {3, 5, 3}, {2, 1, 1}, // tails everywhere
			{5, 31, 16}, {1, 1, 17}, {9, 2, 130},
		}
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := denseRand(m, k, 1)
			b := denseRand(k, n, 2)
			want := denseRand(m, n, 3)
			got := want.Clone()
			MulAdd(want, a, b)
			MulAddBatched(got, a, b)
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("%dx%dx%d: elem %d: got %x want %x",
						m, k, n, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
				}
			}
		}
	})
}

// expCases returns inputs that exercise every branch of math.Exp: the
// ordinary range, both sides of the overflow cutoff, the denormal
// result band, underflow, and the non-finite specials.
func expCases() []float64 {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 1e-9, -1e-9,
		87.3, -87.3, 300, -300, 700, -700,
		709.782712893384, 709.7827128933841, 709.78271289338397,
		-708.3964185322641, -708.39641853226408, -708.4,
		-744, -745, -745.1, -745.1332191019412, -746, -800,
		710, 1000, 1e9, -1e9,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Float64frombits(0x7FF8000000000001), // NaN with payload
		4.503599627370496e15, 1e-320, -1e-320,
	}
	// Dense sweeps across the interesting boundaries.
	for x := -746.0; x < -707.0; x += 0.001953125 {
		cases = append(cases, x)
	}
	for x := 709.0; x < 710.5; x += 0.0009765625 {
		cases = append(cases, x)
	}
	// Pseudo-random coverage of the ordinary range (fixed LCG so the
	// test is deterministic without the rng package).
	s := uint64(12345)
	for i := 0; i < 20000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		x := (float64(s>>11)/float64(1<<53) - 0.5) * 1500 // [-750, 750)
		cases = append(cases, x)
	}
	for i := 0; i < 4000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		x := (float64(s>>11)/float64(1<<53) - 0.5) * 20 // [-10, 10)
		cases = append(cases, x)
	}
	return cases
}

// TestExpSliceBitExact checks ExpSlice against math.Exp bit-for-bit
// over every branch of the scalar implementation, in bulk (so the
// vector path runs) and with the inputs rotated so each case visits
// every lane.
func TestExpSliceBitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		cases := expCases()
		for rot := 0; rot < 4; rot++ {
			x := make([]float64, len(cases))
			for i, v := range cases {
				x[(i+rot)%len(x)] = v
			}
			dst := make([]float64, len(x))
			ExpSlice(dst, x)
			for i, v := range x {
				want := math.Exp(v)
				if math.Float64bits(dst[i]) != math.Float64bits(want) {
					t.Fatalf("rot %d: Exp(%v) = %x, want %x",
						rot, v, math.Float64bits(dst[i]), math.Float64bits(want))
				}
			}
		}
	})
}

// TestExpSliceAlias checks the documented exact-alias contract.
func TestExpSliceAlias(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		x := []float64{-3, -0.5, 0, 0.5, 1, 2, 3, 4, 5}
		want := make([]float64, len(x))
		for i, v := range x {
			want[i] = math.Exp(v)
		}
		ExpSlice(x, x)
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
				t.Fatalf("elem %d: got %v want %v", i, x[i], want[i])
			}
		}
	})
}

// TestBatchKernelsNoAlloc pins the batched kernels at zero allocations.
func TestBatchKernelsNoAlloc(t *testing.T) {
	a := denseRand(8, 24, 1)
	b := denseRand(24, 96, 2)
	dst := NewDense(8, 96)
	x := denseRand(1, 96, 3).Data
	y := make([]float64, 96)
	if n := testing.AllocsPerRun(100, func() {
		MulAddBatched(dst, a, b)
		ExpSlice(y, x)
	}); n != 0 {
		t.Fatalf("batched kernels allocated %v per run", n)
	}
}

func BenchmarkMulAddBatchedDecodeShape(b *testing.B) {
	a := denseRand(8, 24, 1)
	bm := denseRand(24, 96, 2)
	dst := NewDense(8, 96)
	b.SetBytes(8 * int64(len(a.Data)+len(bm.Data)+len(dst.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddBatched(dst, a, bm)
	}
}

func BenchmarkExpSlice96(b *testing.B) {
	x := denseRand(1, 96, 1).Data
	dst := make([]float64, 96)
	b.SetBytes(8 * 2 * 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpSlice(dst, x)
	}
}

func BenchmarkExpScalar96(b *testing.B) {
	x := denseRand(1, 96, 1).Data
	dst := make([]float64, 96)
	b.SetBytes(8 * 2 * 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range x {
			dst[j] = math.Exp(v)
		}
	}
}
