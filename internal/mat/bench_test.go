package mat

import (
	"testing"

	"repro/internal/rng"
)

// Micro-benchmarks backing the DESIGN.md "Parallel execution" numbers:
// dense vs sparse GEMM kernels (the dense path dropped its per-element
// zero test; the sparse path keeps it for one-hot inputs) and the
// shipped 4-way unrolled Dot/Axpy against straight-loop baselines.
//
// Caveat: on hosts with unstable clocks, consecutive benchmark blocks
// drift enough to swamp a ~5% kernel delta. The Dot/Axpy unrolling
// decisions were made from paired alternating-median timing (variants
// interleaved round-robin in one process), which cancels the drift:
// dot unrolled ~4% faster, axpy unrolled ~12% faster on go1.24/amd64.

func denseRand(r, c int, seed int64) *Dense {
	g := rng.New(seed)
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = g.NormFloat64()
	}
	return m
}

// oneHotRows mimics a layer-0 input batch: one nonzero per row.
func oneHotRows(r, c int, seed int64) *Dense {
	g := rng.New(seed)
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		m.Row(i)[g.Intn(c)] = 1
	}
	return m
}

func benchMulAdd(b *testing.B, a *Dense, kernel func(dst, a, bm *Dense)) {
	bm := denseRand(a.Cols, 128, 2)
	dst := NewDense(a.Rows, 128)
	b.SetBytes(8 * int64(len(a.Data)+len(bm.Data)+len(dst.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(dst, a, bm)
	}
}

// Dense input through both kernels: the dense kernel's branch-free inner
// loop should win even though the sparse kernel would skip nothing.
func BenchmarkMulAddDenseKernel(b *testing.B) {
	benchMulAdd(b, denseRand(64, 256, 1), MulAdd)
}

func BenchmarkMulAddSparseKernelDenseInput(b *testing.B) {
	benchMulAdd(b, denseRand(64, 256, 1), MulAddSparse)
}

// One-hot input through both kernels: here the zero-skip pays for itself
// by a wide margin, which is why layer 0 dispatches on sparsity.
func BenchmarkMulAddDenseKernelOneHot(b *testing.B) {
	benchMulAdd(b, oneHotRows(64, 256, 1), MulAdd)
}

func BenchmarkMulAddSparseKernelOneHot(b *testing.B) {
	benchMulAdd(b, oneHotRows(64, 256, 1), MulAddSparse)
}

// dotRef and axpyRef are the pre-unrolling straight loops, kept as
// benchmark baselines for the shipped 4-way unrolled kernels.
func dotRef(x, y []float64) float64 {
	var s float64
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

func axpyRef(alpha float64, x, y []float64) {
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

const vecLen = 1024

func BenchmarkDotUnrolled(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkDotRef(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += dotRef(x, y)
	}
	_ = sink
}

func BenchmarkAxpyUnrolled(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(1e-9, x, y)
	}
}

func BenchmarkAxpyRef(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axpyRef(1e-9, x, y)
	}
}
