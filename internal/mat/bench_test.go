package mat

import (
	"testing"

	"repro/internal/rng"
)

// Micro-benchmarks backing the DESIGN.md "Parallel execution" numbers:
// dense vs sparse GEMM kernels (the dense path dropped its per-element
// zero test; the sparse path keeps it for one-hot inputs) and the
// shipped straight-loop Dot/Axpy against the rejected 4-way unrolled
// variants. Both sides of each pair run the same vector length.
//
// Caveat: on hosts with unstable clocks, consecutive benchmark blocks
// drift enough to swamp a ~5% kernel delta. The Dot/Axpy decisions come
// from paired alternating-median timing (variants interleaved
// round-robin in one process, TestPairedKernelMeasure), which cancels
// the drift: as direct in-package calls the straight dot wins by
// nearly 2× in every build measured, while axpy shows no robust
// difference (the sign flips with code layout between builds), so the
// simpler straight loop ships there too. The compiler eliminates
// bounds checks from the range loops; the manual unrolls keep theirs
// and gain nothing on the serial dependency chain dot is pinned to
// for bit-exact summation order.

func denseRand(r, c int, seed int64) *Dense {
	g := rng.New(seed)
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = g.NormFloat64()
	}
	return m
}

// oneHotRows mimics a layer-0 input batch: one nonzero per row.
func oneHotRows(r, c int, seed int64) *Dense {
	g := rng.New(seed)
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		m.Row(i)[g.Intn(c)] = 1
	}
	return m
}

func benchMulAdd(b *testing.B, a *Dense, kernel func(dst, a, bm *Dense)) {
	bm := denseRand(a.Cols, 128, 2)
	dst := NewDense(a.Rows, 128)
	b.SetBytes(8 * int64(len(a.Data)+len(bm.Data)+len(dst.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(dst, a, bm)
	}
}

// Dense input through both kernels: the dense kernel's branch-free inner
// loop should win even though the sparse kernel would skip nothing.
func BenchmarkMulAddDenseKernel(b *testing.B) {
	benchMulAdd(b, denseRand(64, 256, 1), MulAdd)
}

func BenchmarkMulAddSparseKernelDenseInput(b *testing.B) {
	benchMulAdd(b, denseRand(64, 256, 1), MulAddSparse)
}

// One-hot input through both kernels: here the zero-skip pays for itself
// by a wide margin, which is why layer 0 dispatches on sparsity.
func BenchmarkMulAddDenseKernelOneHot(b *testing.B) {
	benchMulAdd(b, oneHotRows(64, 256, 1), MulAdd)
}

func BenchmarkMulAddSparseKernelOneHot(b *testing.B) {
	benchMulAdd(b, oneHotRows(64, 256, 1), MulAddSparse)
}

// dotUnrolled4 and axpyUnrolled4 are the rejected 4-way manual
// unrolls, kept only as benchmark baselines for the shipped straight
// loops (the accumulation order is identical, so either variant would
// be bit-exact — the choice is purely a speed call).
func dotUnrolled4(a, b []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

func axpyUnrolled4(alpha float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x) && i+4 <= len(y); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

const vecLen = 1024

// BenchmarkDot times the shipped kernel exactly as the GEMM inner
// loops consume it: a direct (inlinable) call to the package-private
// straight loop. The exported Dot wrapper adds a shape check the hot
// paths never pay.
func BenchmarkDot(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += dot(x, y)
	}
	_ = sink
}

// BenchmarkDotUnrolled times the rejected 4-way unroll at the same
// vector length.
func BenchmarkDotUnrolled(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += dotUnrolled4(x, y)
	}
	_ = sink
}

// BenchmarkAxpy times the shipped kernel as the GEMM inner loops
// consume it (direct call of the package-private straight loop).
func BenchmarkAxpy(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axpy(1e-9, x, y)
	}
}

// BenchmarkAxpyUnrolled times the rejected 4-way unroll at the same
// vector length.
func BenchmarkAxpyUnrolled(b *testing.B) {
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data
	b.SetBytes(8 * 2 * vecLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axpyUnrolled4(1e-9, x, y)
	}
}

// TestUnrolledVariantsBitExact pins the claim above: the rejected
// unrolls compute bit-identical results to the shipped straight loops,
// including at lengths that exercise the unroll tail.
func TestUnrolledVariantsBitExact(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 64, 1023} {
		x := denseRand(1, n+1, 1).Data[:n]
		y := denseRand(1, n+1, 2).Data[:n]
		if got, want := dotUnrolled4(x, y), Dot(x, y); got != want {
			t.Fatalf("n=%d: dotUnrolled4=%v, Dot=%v", n, got, want)
		}
		y2 := append([]float64(nil), y...)
		Axpy(0.37, x, y)
		axpyUnrolled4(0.37, x, y2)
		for i := range y {
			if y[i] != y2[i] {
				t.Fatalf("n=%d: axpy mismatch at %d: %v vs %v", n, i, y[i], y2[i])
			}
		}
	}
}
