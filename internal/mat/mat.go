// Package mat provides small dense linear-algebra primitives used by the
// neural-network and regression packages. Matrices are row-major float64
// and sized once; all operations check dimensions and panic on mismatch,
// since a shape error is always a programming bug in this codebase.
package mat

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Kernel tuning knobs. parMinFlops is the multiply-add count below
// which a product stays on the serial path (goroutine hand-off costs
// more than the work below it); blockK is the k-panel height of the
// cache-blocked dense kernels, sized so a panel of b (blockK×n floats)
// stays resident in L1/L2 across the row sweep. Neither knob affects
// results: every dst element accumulates its k-terms in ascending order
// on both the serial and the blocked/parallel paths, so the kernels are
// bit-identical at any worker count.
const (
	parMinFlops = 1 << 15
	blockK      = 64
)

// gemmGrain returns the minimum rows per parallel chunk so each worker
// gets at least parMinFlops of work.
func gemmGrain(rowFlops int) int {
	if rowFlops <= 0 {
		return 1
	}
	return parMinFlops/rowFlops + 1
}

// Dense is a row-major matrix of float64.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an r-by-c matrix.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice %dx%d needs %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements of m to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and n have identical dimensions.
func (m *Dense) SameShape(n *Dense) bool { return m.Rows == n.Rows && m.Cols == n.Cols }

// SliceRows returns a view (not a copy) of rows [lo, hi).
func (m *Dense) SliceRows(lo, hi int) *Dense {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: SliceRows [%d,%d) of %v", lo, hi, m))
	}
	return &Dense{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

func (m *Dense) String() string {
	return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
}

// Mul computes dst = a * b. dst must be a.Rows x b.Cols and must not
// alias a or b. The k-inner loop is ordered for sequential access.
func Mul(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul shape mismatch %v * %v -> %v", a, b, dst))
	}
	dst.Zero()
	MulAdd(dst, a, b)
}

// MulAdd computes dst += a * b with the dense kernel: cache-blocked
// over k, row-parallel above the size threshold, and no per-element
// zero test (dense data makes that branch a mispredict; sparse inputs
// such as one-hot feature rows should call MulAddSparse instead).
func MulAdd(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAdd shape mismatch %v * %v -> %v", a, b, dst))
	}
	rowFlops := a.Cols * b.Cols
	if usePackedB && a.Rows*rowFlops >= packMinFlops {
		// Forward GEMMs above the same threshold the transpose-packed
		// backward kernels use repack B into panel scratch and run the
		// packed tile kernel: identical bits (ascending-k accumulation
		// is preserved), contiguous loads instead of the scalar axpy
		// stream (TestPairedForwardGEMMMeasure).
		mulAddPackedB(dst, a, b)
		return
	}
	if a.Rows*rowFlops < parMinFlops {
		mulAddRows(dst, a, b, 0, a.Rows)
		return
	}
	par.For(a.Rows, gemmGrain(rowFlops), func(lo, hi int) {
		mulAddRows(dst, a, b, lo, hi)
	})
}

// mulAddRows computes dst[lo:hi] += a[lo:hi] * b, k-blocked. Each dst
// element accumulates its k terms in ascending order, so the result is
// independent of blocking and of how rows are split across workers.
func mulAddRows(dst, a, b *Dense, lo, hi int) {
	n := b.Cols
	for k0 := 0; k0 < a.Cols; k0 += blockK {
		k1 := k0 + blockK
		if k1 > a.Cols {
			k1 = a.Cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k := k0; k < k1; k++ {
				axpy(arow[k], b.Data[k*n:k*n+n], drow)
			}
		}
	}
}

// MulAddSparse computes dst += a * b, skipping zero elements of a. It
// is the right kernel when a's rows are mostly zero (one-hot token and
// feature encodings); on dense data the per-element branch mispredicts
// and MulAdd is faster.
func MulAddSparse(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAddSparse shape mismatch %v * %v -> %v", a, b, dst))
	}
	rowFlops := a.Cols * b.Cols
	if a.Rows*rowFlops < parMinFlops {
		mulAddSparseRows(dst, a, b, 0, a.Rows)
		return
	}
	par.For(a.Rows, gemmGrain(rowFlops), func(lo, hi int) {
		mulAddSparseRows(dst, a, b, lo, hi)
	})
}

// mulAddSparseRows computes dst[lo:hi] += a[lo:hi] * b skipping zero
// a-elements. Named helper rather than a closure hoisted above the
// serial/parallel branch, so the serial fast path stays allocation-free.
func mulAddSparseRows(dst, a, b *Dense, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			axpy(av, b.Data[k*n:k*n+n], drow)
		}
	}
}

// MulATB computes dst += aᵀ * b (a is kxm, b is kxn, dst is mxn).
// Above packMinFlops it packs aᵀ once and runs the cache-blocked
// batched kernel (see pack.go). Below, the serial path streams a and b
// row-major (k outer); the parallel path partitions dst rows, paying a
// strided read of a's columns to keep writes disjoint. All paths
// accumulate each dst element's k terms in ascending order, so they
// are bit-identical.
func MulATB(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulATB shape mismatch %vᵀ * %v -> %v", a, b, dst))
	}
	m, n := a.Cols, b.Cols
	if m*a.Rows*n >= packMinFlops {
		mulATBPacked(dst, a, b)
		return
	}
	rowFlops := a.Rows * n
	if m*rowFlops < parMinFlops || par.Procs() == 1 {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Data[k*n : k*n+n]
			for i, av := range arow {
				axpy(av, brow, dst.Row(i))
			}
		}
		return
	}
	par.For(m, gemmGrain(rowFlops), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for k := 0; k < a.Rows; k++ {
				axpy(a.Data[k*m+i], b.Data[k*n:k*n+n], drow)
			}
		}
	})
}

// MulATBSparse computes dst += aᵀ * b, skipping zero elements of a —
// the gradient-side counterpart of MulAddSparse (a is then a one-hot
// input batch and almost every term vanishes).
func MulATBSparse(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulATBSparse shape mismatch %vᵀ * %v -> %v", a, b, dst))
	}
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Data[k*n : k*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			axpy(av, brow, dst.Row(i))
		}
	}
}

// MulABT computes dst += a * bᵀ (a is mxk, b is nxk, dst is mxn),
// row-parallel above the size threshold. Above packMinFlops it packs
// bᵀ once and runs the cache-blocked batched kernel through a zeroed
// panel, bit-identical to the dot-then-add reference (see pack.go).
func MulABT(dst, a, b *Dense) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulABT shape mismatch %v * %vᵀ -> %v", a, b, dst))
	}
	if a.Rows*a.Cols*b.Rows >= packMinFlops {
		mulABTPacked(dst, a, b)
		return
	}
	rowFlops := a.Cols * b.Rows
	if a.Rows*rowFlops < parMinFlops {
		mulABTRows(dst, a, b, 0, a.Rows)
		return
	}
	par.For(a.Rows, gemmGrain(rowFlops), func(lo, hi int) {
		mulABTRows(dst, a, b, lo, hi)
	})
}

// mulABTRows computes dst[lo:hi] += a[lo:hi] * bᵀ. Kept as a named
// helper (not a closure hoisted above the serial/parallel branch) so
// the serial fast path does not heap-allocate a closure per call.
func mulABTRows(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] += dot(arow, b.Row(j))
		}
	}
}

// AddBiasRows adds bias vector b to every row of m in place.
func AddBiasRows(m *Dense, b []float64) {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddBiasRows bias len %d != cols %d", len(b), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range b {
			row[j] += v
		}
	}
}

// SumRows accumulates the column-wise sum of m into dst (len m.Cols).
func SumRows(dst []float64, m *Dense) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: SumRows dst len %d != cols %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(a), len(b)))
	}
	return dot(a, b)
}

// dot is the unchecked kernel behind Dot. The adds stay sequential
// into one accumulator on purpose: the strict ascending-index
// summation order is what keeps every GEMM path — serial, blocked, or
// row-parallel — bit-identical, so a multi-accumulator split is off
// the table here. With the dependency chain serial either way, a
// 4-way manual unroll buys nothing and in fact runs nearly 2× slower
// on this host by paired alternating-median measurement of direct
// in-package calls (the compiler already eliminates the bounds checks
// from the range loop; see TestPairedKernelMeasure and BenchmarkDot*
// in bench_test.go, where the rejected unrolled variant is kept
// honest at the same length).
func dot(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes y += alpha*x element-wise.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	axpy(alpha, x, y)
}

// axpy is the unchecked kernel behind Axpy and the GEMM inner loops.
// Updates are element-wise, so the iteration shape cannot change the
// result. Re-measurement did not reproduce the +12% once claimed for
// a 4-way manual unroll: paired alternating-median timing of direct
// in-package calls swings ±20% between otherwise-identical builds as
// unrelated edits move code layout, with neither variant robustly
// ahead (see TestPairedKernelMeasure and BenchmarkAxpy* in
// bench_test.go). The straight range loop ships because it is simpler
// and the compiler eliminates its bounds checks, which the unroll's
// double length guard defeats.
func axpy(alpha float64, x, y []float64) {
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// MaxAbs returns the largest absolute value in x (0 for empty input).
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AddTo computes dst = a + b element-wise over equal-shape matrices.
func AddTo(dst, a, b *Dense) {
	if !dst.SameShape(a) || !dst.SameShape(b) {
		panic("mat: AddTo shape mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// HadamardAdd computes dst += a ⊙ b element-wise.
func HadamardAdd(dst, a, b *Dense) {
	if !dst.SameShape(a) || !dst.SameShape(b) {
		panic("mat: HadamardAdd shape mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] += v * b.Data[i]
	}
}

// SolveCholesky solves the symmetric positive-definite system A x = b in
// place, returning x. A is modified (its lower triangle holds the
// Cholesky factor on return). Returns false if A is not positive
// definite to working precision.
func SolveCholesky(a *Dense, b []float64) ([]float64, bool) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mat: SolveCholesky shape mismatch")
	}
	// Cholesky factorization A = L Lᵀ, stored in lower triangle.
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := a.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 {
			return nil, false
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	x := make([]float64, n)
	copy(x, b)
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= a.At(i, k) * x[k]
		}
		x[i] = s / a.At(i, i)
	}
	// Back solve Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= a.At(k, i) * x[k]
		}
		x[i] = s / a.At(i, i)
	}
	return x, true
}
