// Package mat provides small dense linear-algebra primitives used by the
// neural-network and regression packages. Matrices are row-major float64
// and sized once; all operations check dimensions and panic on mismatch,
// since a shape error is always a programming bug in this codebase.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix of float64.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an r-by-c matrix.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice %dx%d needs %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements of m to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and n have identical dimensions.
func (m *Dense) SameShape(n *Dense) bool { return m.Rows == n.Rows && m.Cols == n.Cols }

func (m *Dense) String() string {
	return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
}

// Mul computes dst = a * b. dst must be a.Rows x b.Cols and must not
// alias a or b. The k-inner loop is ordered for sequential access.
func Mul(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul shape mismatch %v * %v -> %v", a, b, dst))
	}
	dst.Zero()
	MulAdd(dst, a, b)
}

// MulAdd computes dst += a * b.
func MulAdd(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAdd shape mismatch %v * %v -> %v", a, b, dst))
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulATB computes dst += aᵀ * b (a is kxm, b is kxn, dst is mxn).
func MulATB(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulATB shape mismatch %vᵀ * %v -> %v", a, b, dst))
	}
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Data[k*n : k*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulABT computes dst += a * bᵀ (a is mxk, b is nxk, dst is mxn).
func MulABT(dst, a, b *Dense) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulABT shape mismatch %v * %vᵀ -> %v", a, b, dst))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] += Dot(arow, b.Row(j))
		}
	}
}

// AddBiasRows adds bias vector b to every row of m in place.
func AddBiasRows(m *Dense, b []float64) {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddBiasRows bias len %d != cols %d", len(b), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range b {
			row[j] += v
		}
	}
}

// SumRows accumulates the column-wise sum of m into dst (len m.Cols).
func SumRows(dst []float64, m *Dense) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: SumRows dst len %d != cols %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x element-wise.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// MaxAbs returns the largest absolute value in x (0 for empty input).
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AddTo computes dst = a + b element-wise over equal-shape matrices.
func AddTo(dst, a, b *Dense) {
	if !dst.SameShape(a) || !dst.SameShape(b) {
		panic("mat: AddTo shape mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// HadamardAdd computes dst += a ⊙ b element-wise.
func HadamardAdd(dst, a, b *Dense) {
	if !dst.SameShape(a) || !dst.SameShape(b) {
		panic("mat: HadamardAdd shape mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] += v * b.Data[i]
	}
}

// SolveCholesky solves the symmetric positive-definite system A x = b in
// place, returning x. A is modified (its lower triangle holds the
// Cholesky factor on return). Returns false if A is not positive
// definite to working precision.
func SolveCholesky(a *Dense, b []float64) ([]float64, bool) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mat: SolveCholesky shape mismatch")
	}
	// Cholesky factorization A = L Lᵀ, stored in lower triangle.
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := a.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 {
			return nil, false
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	x := make([]float64, n)
	copy(x, b)
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= a.At(i, k) * x[k]
		}
		x[i] = s / a.At(i, i)
	}
	// Back solve Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= a.At(k, i) * x[k]
		}
		x[i] = s / a.At(i, i)
	}
	return x, true
}
