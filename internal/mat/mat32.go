package mat

import (
	"fmt"
	"math"
)

// Float32 serving fast path (DESIGN.md §6.4). Dense32 and the kernels
// below exist only for inference: the f32 decode engines run their step
// GEMMs at twice the AVX2 lane width of the float64 kernels, trading
// bounded output divergence (validated at snapshot publish) for
// throughput. Training and the bit-exact f64 serving path never touch
// this file.
//
// Determinism contract (same as the f64 kernels): every f32 GEMM path —
// assembly, portable fallback, any tiling — accumulates each dst
// element's k terms in ascending order with one float32 rounding per
// multiply and one per add, so results are bit-identical across paths
// and independent of batch composition. The optional FMA mode (see
// SetFastMath) fuses each multiply-add into a single rounding; it is a
// different, equally deterministic contract, and the portable fallback
// reproduces it exactly via fma32.

// Dense32 is a row-major matrix of float32.
type Dense32 struct {
	Rows, Cols int
	Data       []float32
}

// NewDense32 allocates a zeroed r-by-c float32 matrix.
func NewDense32(r, c int) *Dense32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// FromSlice32 wraps data (not copied) as an r-by-c matrix.
func FromSlice32(r, c int, data []float32) *Dense32 {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice32 %dx%d needs %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Dense32{Rows: r, Cols: c, Data: data}
}

// Row returns a view (not a copy) of row i.
func (m *Dense32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets all elements of m to zero.
func (m *Dense32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func (m *Dense32) String() string {
	return fmt.Sprintf("Dense32(%dx%d)", m.Rows, m.Cols)
}

// Dense32 returns a rounded float32 copy of m (round-to-nearest-even
// per element). This is the weight-slab conversion the f32 serving path
// performs once at snapshot publish.
func (m *Dense) Dense32() *Dense32 {
	out := NewDense32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// fastMath selects the FMA variants of the f32 kernels. It is written
// once at startup (the -fast-math flag) before any engine exists;
// flipping it mid-flight would change decode bytes, so it is not
// synchronized.
var fastMath bool

// SetFastMath selects (on=true) or deselects the fused-multiply-add f32
// GEMM variant. FMA halves the rounding steps per accumulation term —
// slightly different low bits, typically slightly more accurate — and
// removes the separate-add dependency from the inner loop. The no-FMA
// path is the default because its portable fallback is plain float32
// arithmetic on any compiler; results under FMA remain deterministic
// and are reproduced exactly by the fallback's software fma32. Call
// before building engines; see DESIGN.md §6.4 for the policy.
func SetFastMath(on bool) { fastMath = on }

// FastMath reports whether the FMA f32 kernel variant is selected.
func FastMath() bool { return fastMath }

// MulAddBatched32 computes dst += a * b in float32, the serving
// fast-path counterpart of MulAddBatched: single-goroutine, AVX2
// 8-lane on amd64 (twice MulAddBatched's vector width), register-tiled
// portable fallback elsewhere, bit-identical across all paths. Under
// SetFastMath(true) every multiply-add term is fused (one rounding);
// otherwise product and sum round separately, matching the fallback's
// plain float32 expression.
func MulAddBatched32(dst, a, b *Dense32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulAddBatched32 shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	n8 := n &^ 7
	if fastMath {
		if useBatchASM && n8 > 0 {
			gemm32FMA(&dst.Data[0], &a.Data[0], &b.Data[0], m, k, n)
		} else {
			mulAddJTilesFMA32(dst, a, b, n8)
		}
		// Column tail beyond the 8-wide kernels, same FMA contract.
		for j := n8; j < n; j++ {
			for i := 0; i < m; i++ {
				arow := a.Row(i)
				s := dst.Data[i*n+j]
				for kk := 0; kk < k; kk++ {
					s = fma32(arow[kk], b.Data[kk*n+j], s)
				}
				dst.Data[i*n+j] = s
			}
		}
		return
	}
	if useBatchASM && n8 > 0 {
		gemm32AVX2(&dst.Data[0], &a.Data[0], &b.Data[0], m, k, n)
	} else {
		mulAddJTiles32(dst, a, b, n8)
	}
	for j := n8; j < n; j++ {
		for i := 0; i < m; i++ {
			arow := a.Row(i)
			s := dst.Data[i*n+j]
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * b.Data[kk*n+j]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// mulAddJTiles32 is the portable f32 batched GEMM kernel: per dst row,
// 8-column register tiles across the k sweep — the schedule gemm32AVX2
// vectorizes. Covers columns [0, n8).
func mulAddJTiles32(dst, a, b *Dense32, n8 int) {
	n := b.Cols
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j+8 <= n8; j += 8 {
			s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			s4, s5, s6, s7 := drow[j+4], drow[j+5], drow[j+6], drow[j+7]
			for kk := 0; kk < k; kk++ {
				al := arow[kk]
				brow := b.Data[kk*n+j : kk*n+j+8]
				s0 += al * brow[0]
				s1 += al * brow[1]
				s2 += al * brow[2]
				s3 += al * brow[3]
				s4 += al * brow[4]
				s5 += al * brow[5]
				s6 += al * brow[6]
				s7 += al * brow[7]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			drow[j+4], drow[j+5], drow[j+6], drow[j+7] = s4, s5, s6, s7
		}
	}
}

// mulAddJTilesFMA32 is the portable FMA-mode kernel: identical schedule,
// every term accumulated through fma32 so the bits match gemm32FMA's
// VFMADD231PS exactly.
func mulAddJTilesFMA32(dst, a, b *Dense32, n8 int) {
	n := b.Cols
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j+8 <= n8; j += 8 {
			s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			s4, s5, s6, s7 := drow[j+4], drow[j+5], drow[j+6], drow[j+7]
			for kk := 0; kk < k; kk++ {
				al := arow[kk]
				brow := b.Data[kk*n+j : kk*n+j+8]
				s0 = fma32(al, brow[0], s0)
				s1 = fma32(al, brow[1], s1)
				s2 = fma32(al, brow[2], s2)
				s3 = fma32(al, brow[3], s3)
				s4 = fma32(al, brow[4], s4)
				s5 = fma32(al, brow[5], s5)
				s6 = fma32(al, brow[6], s6)
				s7 = fma32(al, brow[7], s7)
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			drow[j+4], drow[j+5], drow[j+6], drow[j+7] = s4, s5, s6, s7
		}
	}
}

// fma32 returns a*b+c with a single float32 rounding — exactly what
// VFMADD231PS computes per lane — in portable Go. The float64 product
// is exact (24+24 significand bits fit in 53), but rounding the double
// sum straight to float32 would double-round; instead the sum is taken
// round-to-odd at double precision (sticky the inexact low bits into
// the last significand bit), after which the final float32 rounding is
// correct for every input (53 ≥ 24+2). Used only on the FMA-mode
// fallback path, where exactness beats speed.
func fma32(a, b, c float32) float32 {
	p := float64(a) * float64(b) // exact: 48-bit significand
	s := p + float64(c)
	if math.IsNaN(s) || math.IsInf(s, 0) {
		// Specials carry through conversion exactly (Inf inputs, Inf*0).
		return float32(s)
	}
	// 2Sum: e is the exact rounding error of the double addition.
	t := s - p
	e := (p - (s - t)) + (float64(c) - t)
	if e != 0 && math.Float64bits(s)&1 == 0 {
		// Inexact and the nearest double is even: round to odd by taking
		// the neighbor on the side of the exact sum.
		if e > 0 {
			s = math.Nextafter(s, math.Inf(1))
		} else {
			s = math.Nextafter(s, math.Inf(-1))
		}
	}
	return float32(s)
}

// MulAddSparse32 computes dst += a * b skipping zero elements of a —
// the f32 counterpart of MulAddSparse for the decode path's one-hot
// step inputs. Serial by design (the fleet drives it per row).
func MulAddSparse32(dst, a, b *Dense32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulAddSparse32 shape mismatch")
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			if fastMath {
				for j, bv := range brow {
					drow[j] = fma32(av, bv, drow[j])
				}
			} else {
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// AddBiasRows32 adds bias vector b to every row of m in place.
func AddBiasRows32(m *Dense32, b []float32) {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddBiasRows32 bias len %d != cols %d", len(b), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range b {
			row[j] += v
		}
	}
}

// expChunk32 is the widening buffer length of ExpSlice32 — a multiple
// of 4 (the f64 vector kernel's lane granule) small enough to stay on
// the stack.
const expChunk32 = 128

// ExpSlice32 sets dst[i] = float32(math.Exp(float64(x[i]))) for every
// i: each f32 input is widened (exact), exponentiated at full double
// precision, and rounded once back to float32 — a correctly rounded f32
// exp for all practical purposes, with identical bits on every path.
// On amd64 the bulk widens through a stack chunk into the 4-lane
// expAVX2 kernel; elsewhere (and for the tail) it calls math.Exp. dst
// and x may alias exactly.
func ExpSlice32(dst, x []float32) {
	if len(dst) != len(x) {
		panic("mat: ExpSlice32 length mismatch")
	}
	i := 0
	if useBatchASM {
		var buf [expChunk32]float64
		for i+4 <= len(x) {
			n := len(x) - i
			if n > expChunk32 {
				n = expChunk32
			}
			n &^= 3
			for j := 0; j < n; j++ {
				buf[j] = float64(x[i+j])
			}
			expAVX2(&buf[0], &buf[0], n)
			for j := 0; j < n; j++ {
				dst[i+j] = float32(buf[j])
			}
			i += n
		}
	}
	for ; i < len(x); i++ {
		dst[i] = float32(math.Exp(float64(x[i])))
	}
}
