package mat

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/rng"
)

func dense32Rand(r, c int, seed int64) *Dense32 {
	g := rng.New(seed)
	m := NewDense32(r, c)
	for i := range m.Data {
		m.Data[i] = float32(g.NormFloat64())
	}
	return m
}

// withFastMath runs f under both kernel contracts (separate rounding
// and fused multiply-add), restoring the global afterwards.
func withFastMath(t *testing.T, f func(t *testing.T)) {
	for _, on := range []bool{false, true} {
		name := "nofma"
		if on {
			name = "fma"
		}
		t.Run(name, func(t *testing.T) {
			saved := fastMath
			SetFastMath(on)
			defer SetFastMath(saved)
			f(t)
		})
	}
}

// mulAddBatched32Ref is the naive triple loop under the active
// contract: ascending k, one rounding per multiply and add (no-FMA) or
// one fused rounding per term (FMA, via fma32 — itself pinned against
// exact arithmetic in TestFMA32Exact). Both kernel paths must match it
// bit-for-bit, which transitively makes asm and fallback identical.
func mulAddBatched32Ref(dst, a, b *Dense32) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := dst.Data[i*n+j]
			for kk := 0; kk < k; kk++ {
				if fastMath {
					s = fma32(a.Data[i*k+kk], b.Data[kk*n+j], s)
				} else {
					s += a.Data[i*k+kk] * b.Data[kk*n+j]
				}
			}
			dst.Data[i*n+j] = s
		}
	}
}

// TestMulAddBatched32BitExact checks MulAddBatched32 against the naive
// reference over shapes exercising the 32-wide tiles, the 8-wide
// cleanup, and the scalar column tail — on both kernel paths and under
// both rounding contracts. On AVX2 hosts the FMA run also pins the
// software fma32 against hardware VFMADD231PS across every element.
func TestMulAddBatched32BitExact(t *testing.T) {
	withFastMath(t, func(t *testing.T) {
		withBatchASM(t, func(t *testing.T) {
			shapes := [][3]int{
				{8, 24, 96}, {1, 24, 96}, {64, 24, 96}, // decode gate panels
				{8, 24, 18}, {8, 24, 48}, // head shapes
				{7, 23, 97}, {3, 5, 3}, {2, 1, 1}, // tails everywhere
				{5, 31, 40}, {1, 1, 17}, {9, 2, 130}, {4, 16, 33},
			}
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				a := dense32Rand(m, k, 1)
				b := dense32Rand(k, n, 2)
				want := dense32Rand(m, n, 3)
				got := NewDense32(m, n)
				copy(got.Data, want.Data)
				mulAddBatched32Ref(want, a, b)
				MulAddBatched32(got, a, b)
				for i := range want.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						t.Fatalf("%dx%dx%d: elem %d: got %x want %x",
							m, k, n, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
					}
				}
			}
		})
	})
}

// TestMulAddSparse32Matches checks the zero-skipping kernel against
// MulAddBatched32's reference on one-hot rows (where skipped terms are
// exact zeros, the two are bit-identical under either contract).
func TestMulAddSparse32Matches(t *testing.T) {
	withFastMath(t, func(t *testing.T) {
		g := rng.New(7)
		a := NewDense32(9, 26)
		for i := 0; i < a.Rows; i++ {
			a.Row(i)[g.Intn(a.Cols)] = 1
		}
		b := dense32Rand(26, 96, 2)
		want := dense32Rand(9, 96, 3)
		got := NewDense32(9, 96)
		copy(got.Data, want.Data)
		mulAddBatched32Ref(want, a, b)
		MulAddSparse32(got, a, b)
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("elem %d: got %v want %v", i, got.Data[i], want.Data[i])
			}
		}
	})
}

// TestFMA32Exact pins fma32 against arbitrary-precision arithmetic:
// for finite inputs the result must be the correctly rounded (nearest,
// ties to even) float32 of the exact a·b+c. Inputs include directed
// double-rounding traps — products whose double sum with c lands
// exactly between float32 neighbors plus a sliver only visible beyond
// double precision — which the naive float32(float64 expression)
// mis-rounds; the round-to-odd step exists for exactly these.
func TestFMA32Exact(t *testing.T) {
	check := func(a, b, c float32) {
		got := fma32(a, b, c)
		exact := new(big.Float).SetPrec(200)
		exact.Mul(big.NewFloat(float64(a)), big.NewFloat(float64(b)))
		exact.Add(exact, big.NewFloat(float64(c)))
		var want float32
		if exact.Sign() == 0 {
			// Exact cancellation: the sign of the zero follows IEEE addition
			// of the (exact) double product and addend.
			want = float32(float64(a)*float64(b) + float64(c))
		} else {
			want, _ = exact.Float32()
		}
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("fma32(%x, %x, %x) = %x, want %x",
				a, b, c, math.Float32bits(got), math.Float32bits(want))
		}
	}

	// Directed: specials, signed zeros, exact cancellation, denormals,
	// and overflow.
	f32 := math.Float32frombits
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	directed := [][3]float32{
		{0, 0, 0}, {1, 1, -1}, {1.5, 2, -3}, {-1.5, 2, 3},
		{1, -1, 1}, {3, 7, -21},
		{f32(0x00000001), f32(0x00000001), 0},   // denormal² underflows
		{f32(0x00800000), 0.5, f32(0x00000001)}, // denormal arithmetic
		{f32(0x7F7FFFFF), 2, 0},                 // overflow to +Inf
		{f32(0x7F7FFFFF), 1, f32(0x7F7FFFFF)},   // overflow via add
		{f32(0x34000001), f32(0x34000001), 1},   // tiny product vs 1: sticky bits far below
		{f32(0x3F800001), f32(0x3F800001), -1},  // (1+ε)² - 1
		{f32(0x3F800001), f32(0xBF800001), 1},   // 1 - (1+ε)²
		{1e19, 1e19, -inf}, {inf, 1, 1}, {1, inf, -inf},
	}
	for _, d := range directed {
		a, b, c := d[0], d[1], d[2]
		got := fma32(a, b, c)
		if math.IsInf(float64(a)*float64(b)+float64(c), 0) || math.IsNaN(float64(a)*float64(b)+float64(c)) {
			want := float32(float64(a)*float64(b) + float64(c))
			if math.Float32bits(got) != math.Float32bits(want) &&
				!(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
				t.Fatalf("fma32(%v, %v, %v) = %v, want %v", a, b, c, got, want)
			}
			continue
		}
		check(a, b, c)
	}
	if got := fma32(nan, 1, 1); !math.IsNaN(float64(got)) {
		t.Fatalf("fma32(NaN,1,1) = %v", got)
	}

	// Randomized sweep across mixed magnitudes, biased toward near
	// cancellation (c ≈ -a·b) where double rounding actually bites.
	s := uint64(99)
	next := func() float32 {
		s = s*6364136223846793005 + 1442695040888963407
		bits := uint32(s >> 32)
		// Clamp exponent into the finite range, keep sign and mantissa.
		exp := (bits >> 23) & 0xFF
		if exp == 0xFF {
			exp = 0xFE
		}
		return math.Float32frombits(bits&0x807FFFFF | exp<<23)
	}
	for i := 0; i < 50000; i++ {
		a, b := next(), next()
		var c float32
		switch i % 3 {
		case 0:
			c = next()
		case 1:
			c = -a * b // near-cancellation: error term dominates
		case 2:
			c = float32(-float64(a) * float64(b) * 1.0000001)
		}
		if math.IsInf(float64(a)*float64(b)+float64(c), 0) {
			continue
		}
		check(a, b, c)
	}
}

// exp32Cases covers every float32-relevant branch of exp: the ordinary
// range, the overflow cutoff (≈88.72), the denormal-result band and
// underflow (≈-103.97), and the specials.
func exp32Cases() []float32 {
	cases := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, -0.5, 1e-9, -1e-9,
		80, -80, 87.3, -87.3,
		88.72283, 88.722839, 88.7229, 89, 100, 1000,
		-87.33654, -87.4, -100,
		-103.97, -103.972084, -103.9721, -104, -200,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.Float32frombits(0x00000001), math.Float32frombits(0x80000001),
	}
	for x := float32(-105); x < -86; x += 0.0078125 {
		cases = append(cases, x)
	}
	for x := float32(88); x < 89.5; x += 0.00390625 {
		cases = append(cases, x)
	}
	s := uint64(321)
	for i := 0; i < 20000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		cases = append(cases, float32((float64(s>>11)/float64(1<<53)-0.5)*240)) // [-120, 120)
	}
	return cases
}

// TestExpSlice32BitExact checks ExpSlice32 against its documented
// definition float32(math.Exp(float64(x))) bit-for-bit, rotated so
// every case visits every lane and chunk position.
func TestExpSlice32BitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		cases := exp32Cases()
		for rot := 0; rot < 4; rot++ {
			x := make([]float32, len(cases))
			for i, v := range cases {
				x[(i+rot)%len(x)] = v
			}
			dst := make([]float32, len(x))
			ExpSlice32(dst, x)
			for i, v := range x {
				want := float32(math.Exp(float64(v)))
				if math.Float32bits(dst[i]) != math.Float32bits(want) {
					t.Fatalf("rot %d: Exp32(%v) = %x, want %x",
						rot, v, math.Float32bits(dst[i]), math.Float32bits(want))
				}
			}
		}
	})
}

// TestExpSlice32Alias checks the documented exact-alias contract across
// a chunk boundary.
func TestExpSlice32Alias(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		x := make([]float32, expChunk32+9)
		g := rng.New(5)
		for i := range x {
			x[i] = float32(g.NormFloat64())
		}
		want := make([]float32, len(x))
		for i, v := range x {
			want[i] = float32(math.Exp(float64(v)))
		}
		ExpSlice32(x, x)
		for i := range x {
			if math.Float32bits(x[i]) != math.Float32bits(want[i]) {
				t.Fatalf("elem %d: got %v want %v", i, x[i], want[i])
			}
		}
	})
}

// TestBatchKernels32NoAlloc pins the f32 serving kernels at zero
// allocations under both contracts.
func TestBatchKernels32NoAlloc(t *testing.T) {
	a := dense32Rand(8, 24, 1)
	b := dense32Rand(24, 96, 2)
	dst := NewDense32(8, 96)
	x := dense32Rand(1, 96, 3).Data
	y := make([]float32, 96)
	for _, on := range []bool{false, true} {
		saved := fastMath
		SetFastMath(on)
		if n := testing.AllocsPerRun(100, func() {
			MulAddBatched32(dst, a, b)
			ExpSlice32(y, x)
		}); n != 0 {
			t.Fatalf("fastMath=%v: f32 kernels allocated %v per run", on, n)
		}
		SetFastMath(saved)
	}
}

func BenchmarkMulAddBatched32DecodeShape(b *testing.B) {
	a := dense32Rand(8, 24, 1)
	bm := dense32Rand(24, 96, 2)
	dst := NewDense32(8, 96)
	b.SetBytes(4 * int64(len(a.Data)+len(bm.Data)+len(dst.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddBatched32(dst, a, bm)
	}
}

func BenchmarkMulAddBatched32FMADecodeShape(b *testing.B) {
	a := dense32Rand(8, 24, 1)
	bm := dense32Rand(24, 96, 2)
	dst := NewDense32(8, 96)
	saved := fastMath
	SetFastMath(true)
	defer SetFastMath(saved)
	b.SetBytes(4 * int64(len(a.Data)+len(bm.Data)+len(dst.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddBatched32(dst, a, bm)
	}
}

func BenchmarkExpSlice32_96(b *testing.B) {
	x := dense32Rand(1, 96, 1).Data
	dst := make([]float32, 96)
	b.SetBytes(4 * 2 * 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpSlice32(dst, x)
	}
}
