package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %v len=%d", m, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewDense(-1, 2)
}

func TestFromSliceAndAtSet(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("At wrong: %v %v", m.At(0, 2), m.At(1, 0))
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatalf("Set failed")
	}
}

func TestFromSliceLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row should be a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := NewDense(2, 2)
	Mul(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("Mul[%d]=%v want %v", i, dst.Data[i], w)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(NewDense(2, 2), NewDense(2, 3), NewDense(2, 2))
}

// naive reference implementations for property checks
func refMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randDense(r *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestMulAgainstReferenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := randDense(r, m, k), randDense(r, k, n)
		got := NewDense(m, n)
		Mul(got, a, b)
		want := refMul(a, b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("iter %d: Mul mismatch at %d: %v vs %v", iter, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulATBMatchesExplicitTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		k, m, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b := randDense(r, k, m), randDense(r, k, n)
		got := NewDense(m, n)
		MulATB(got, a, b)
		at := NewDense(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		want := refMul(at, b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("MulATB mismatch at %d", i)
			}
		}
	}
}

func TestMulABTMatchesExplicitTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b := randDense(r, m, k), randDense(r, n, k)
		got := NewDense(m, n)
		MulABT(got, a, b)
		bt := NewDense(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		want := refMul(a, bt)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("MulABT mismatch at %d", i)
			}
		}
	}
}

func TestMulAddAccumulates(t *testing.T) {
	a := FromSlice(1, 1, []float64{2})
	b := FromSlice(1, 1, []float64{3})
	dst := FromSlice(1, 1, []float64{10})
	MulAdd(dst, a, b)
	if dst.At(0, 0) != 16 {
		t.Fatalf("MulAdd got %v want 16", dst.At(0, 0))
	}
}

func TestAddBiasRowsAndSumRows(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	AddBiasRows(m, []float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddBiasRows wrong: %v", m.Data)
	}
	sum := make([]float64, 2)
	SumRows(sum, m)
	if sum[0] != 11+13 || sum[1] != 22+24 {
		t.Fatalf("SumRows wrong: %v", sum)
	}
}

func TestDotAxpyScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot got %v", Dot(a, b))
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[0] != 3 || y[2] != 7 {
		t.Fatalf("Axpy wrong: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 {
		t.Fatalf("Scale wrong: %v", y)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 got %v", Norm2(x))
	}
	if Norm1(x) != 7 {
		t.Fatalf("Norm1 got %v", Norm1(x))
	}
	if MaxAbs(x) != 4 {
		t.Fatalf("MaxAbs got %v", MaxAbs(x))
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) should be 0")
	}
}

func TestAddToHadamardAdd(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{3, 4})
	dst := NewDense(1, 2)
	AddTo(dst, a, b)
	if dst.At(0, 0) != 4 || dst.At(0, 1) != 6 {
		t.Fatalf("AddTo wrong: %v", dst.Data)
	}
	HadamardAdd(dst, a, b)
	if dst.At(0, 0) != 4+3 || dst.At(0, 1) != 6+8 {
		t.Fatalf("HadamardAdd wrong: %v", dst.Data)
	}
}

func TestSolveCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
	a := FromSlice(2, 2, []float64{4, 2, 2, 3})
	x, ok := SolveCholesky(a, []float64{2, 1})
	if !ok {
		t.Fatal("SolveCholesky failed on SPD matrix")
	}
	if !almostEq(x[0], 0.5, 1e-12) || !almostEq(x[1], 0, 1e-12) {
		t.Fatalf("x = %v, want [0.5 0]", x)
	}
}

func TestSolveCholeskyNotSPD(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // indefinite
	if _, ok := SolveCholesky(a, []float64{1, 1}); ok {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestSolveCholeskyRandomSPD(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		n := 1 + r.Intn(8)
		g := randDense(r, n, n)
		// A = GᵀG + I is SPD.
		a := NewDense(n, n)
		MulATB(a, g, g)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		orig := a.Clone()
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, ok := SolveCholesky(a, b)
		if !ok {
			t.Fatal("SPD solve failed")
		}
		// Check A x = b with the original matrix.
		for i := 0; i < n; i++ {
			if got := Dot(orig.Row(i), x); !almostEq(got, b[i], 1e-8) {
				t.Fatalf("residual row %d: %v vs %v", i, got, b[i])
			}
		}
	}
}

func TestDotCommutativeQuick(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := Dot(a[:], b[:]), Dot(b[:], a[:])
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulDistributiveQuick(t *testing.T) {
	// (A+B)*C == A*C + B*C within tolerance.
	f := func(av, bv, cv [4]float64) bool {
		a := FromSlice(2, 2, av[:])
		b := FromSlice(2, 2, bv[:])
		c := FromSlice(2, 2, cv[:])
		for _, v := range append(append(append([]float64{}, av[:]...), bv[:]...), cv[:]...) {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		ab := NewDense(2, 2)
		AddTo(ab, a, b)
		lhs := NewDense(2, 2)
		Mul(lhs, ab, c)
		r1 := NewDense(2, 2)
		Mul(r1, a, c)
		r2 := NewDense(2, 2)
		Mul(r2, b, c)
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], r1.Data[i]+r2.Data[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
