package mat

import (
	"sync"

	"repro/internal/par"
)

// Packed cache-blocked backward GEMM fast paths. MulATB and MulABT feed
// BPTT's gradient products ((T·b)-row activations against gate panels);
// above packMinFlops they transpose one operand once into pooled
// scratch and then run the batched AVX2 kernel (gemmAVX2, or its tiled
// portable fallback) over contiguous rows, instead of the strided
// axpy/dot loops the small-shape paths keep.
//
// Bit-compatibility: both fast paths reproduce the small-shape paths'
// bits exactly, so the threshold (and any future retuning of it) can
// never change a trained weight:
//
//   - MulATB accumulates directly into dst with ascending-k adds — the
//     same per-element rounding sequence as the axpy loops.
//
//   - MulABT's reference rounds each dot product fully before the
//     single add into dst. The fast path preserves that by accumulating
//     into a zeroed scratch panel (ascending-k from zero computes the
//     dot's bits exactly) and then adding the panel to dst elementwise.

const (
	// packMinFlops is the multiply-add count above which the packed
	// paths win: below it the extra transpose pass and pool traffic cost
	// more than the strided reads they remove (paired-measured at the
	// BPTT shapes; see TestPairedBackwardGEMMMeasure).
	packMinFlops = 1 << 14
	// packTile is the square blocking granule of the transpose, sized so
	// a tile of the source and destination both sit in L1.
	packTile = 32
)

// packPool recycles transpose/panel scratch across calls. Training
// shards call MulATB/MulABT concurrently, so the scratch cannot be a
// package global; a Pool keeps the steady state allocation-free per P
// without serializing the shards.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

func packGet(n int) *[]float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func packPut(p *[]float64) { packPool.Put(p) }

// transposeInto writes aᵀ (c×r) into dst, tile-blocked so neither side
// streams with a large stride.
func transposeInto(dst []float64, a *Dense) {
	r, c := a.Rows, a.Cols
	for i0 := 0; i0 < c; i0 += packTile {
		i1 := i0 + packTile
		if i1 > c {
			i1 = c
		}
		for k0 := 0; k0 < r; k0 += packTile {
			k1 := k0 + packTile
			if k1 > r {
				k1 = r
			}
			for i := i0; i < i1; i++ {
				drow := dst[i*r : i*r+r]
				for k := k0; k < k1; k++ {
					drow[k] = a.Data[k*c+i]
				}
			}
		}
	}
}

// gemmRaw computes dst += a·b over raw row-major slices (m×kk, kk×n,
// m×n), each element's k terms ascending: the AVX2 kernel where
// enabled, the 4-column register tiles otherwise, and a scalar column
// tail — all bit-identical to MulAdd's rounding sequence.
func gemmRaw(dst, a, b []float64, m, kk, n int) {
	if m == 0 || kk == 0 || n == 0 {
		return
	}
	n4 := n &^ 3
	if n4 > 0 {
		if useBatchASM {
			gemmAVX2(&dst[0], &a[0], &b[0], m, kk, n)
		} else {
			for i := 0; i < m; i++ {
				arow := a[i*kk : i*kk+kk]
				drow := dst[i*n : i*n+n]
				for j := 0; j+4 <= n4; j += 4 {
					s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
					for k := 0; k < kk; k++ {
						al := arow[k]
						brow := b[k*n+j : k*n+j+4]
						s0 += al * brow[0]
						s1 += al * brow[1]
						s2 += al * brow[2]
						s3 += al * brow[3]
					}
					drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
				}
			}
		}
	}
	for j := n4; j < n; j++ {
		for i := 0; i < m; i++ {
			arow := a[i*kk : i*kk+kk]
			s := dst[i*n+j]
			for k := 0; k < kk; k++ {
				s += arow[k] * b[k*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// mulATBPacked computes dst += aᵀ·b by transposing a once into pooled
// scratch and running the contiguous kernel, row-parallel above the
// parallel threshold. Bit-identical to MulATB's small-shape paths.
func mulATBPacked(dst, a, b *Dense) {
	m, n, kk := a.Cols, b.Cols, a.Rows
	sp := packGet(m * kk)
	at := *sp
	transposeInto(at, a)
	rowFlops := kk * n
	if m*rowFlops < parMinFlops || par.Procs() == 1 {
		gemmRaw(dst.Data, at, b.Data, m, kk, n)
	} else {
		par.For(m, gemmGrain(rowFlops), func(lo, hi int) {
			gemmRaw(dst.Data[lo*n:hi*n], at[lo*kk:hi*kk], b.Data, hi-lo, kk, n)
		})
	}
	packPut(sp)
}

// mulABTPanelRows computes dst[lo:hi] += a[lo:hi]·bt through a zeroed
// pooled panel, preserving MulABT's dot-then-add rounding (see the file
// comment). Named helper so the serial path allocates no closure.
func mulABTPanelRows(dst, a *Dense, bt []float64, lo, hi, kk, n int) {
	pp := packGet((hi - lo) * n)
	p := *pp
	clear(p)
	gemmRaw(p, a.Data[lo*kk:hi*kk], bt, hi-lo, kk, n)
	d := dst.Data[lo*n : hi*n]
	for i, v := range p {
		d[i] += v
	}
	packPut(pp)
}

// mulABTPacked computes dst += a·bᵀ by transposing b once into pooled
// scratch and running the contiguous kernel per row panel,
// row-parallel above the parallel threshold. Bit-identical to MulABT's
// small-shape paths for every dst (zeroed or not).
func mulABTPacked(dst, a, b *Dense) {
	m, kk, n := a.Rows, a.Cols, b.Rows
	sp := packGet(kk * n)
	bt := *sp
	transposeInto(bt, b)
	rowFlops := kk * n
	if m*rowFlops < parMinFlops || par.Procs() == 1 {
		mulABTPanelRows(dst, a, bt, 0, m, kk, n)
	} else {
		par.For(m, gemmGrain(rowFlops), func(lo, hi int) {
			mulABTPanelRows(dst, a, bt, lo, hi, kk, n)
		})
	}
	packPut(sp)
}
