package mat

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/par"
)

// mulATBRef is the pre-pack serial MulATB loop (k outer, axpy rows),
// kept as the bit-exactness reference for the packed path.
func mulATBRef(dst, a, b *Dense) {
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Data[k*n : k*n+n]
		for i, av := range arow {
			axpy(av, brow, dst.Row(i))
		}
	}
}

// mulABTRef is the pre-pack MulABT loop (full dot rounded before the
// single add into dst), the reference the zeroed-panel trick must
// reproduce for every dst — zeroed or mid-accumulation.
func mulABTRef(dst, a, b *Dense) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] += dot(arow, b.Row(j))
		}
	}
}

// packShapes spans both sides of packMinFlops, BPTT-like panels, and
// tails in every dimension (odd k, odd n, sub-tile m).
var packShapes = [][3]int{ // {k, m, n} for ATB: a is k×m, b is k×n
	{768, 72, 192}, {768, 48, 192}, {96, 24, 96}, // BPTT gradient panels
	{33, 7, 129}, {65, 3, 5}, {129, 31, 33}, // tails everywhere
	{8, 4, 8}, {1, 1, 1}, {64, 64, 64},
	{40, 100, 3}, {40, 3, 100},
}

// TestMulATBPackedBitExact checks the packed path (called directly, so
// shapes below the dispatch threshold are covered too) and the public
// MulATB against the pre-pack reference, bit-for-bit, on both kernel
// paths, accumulating into a nonzero dst.
func TestMulATBPackedBitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		for _, sh := range packShapes {
			k, m, n := sh[0], sh[1], sh[2]
			a := denseRand(k, m, 1)
			b := denseRand(k, n, 2)
			want := denseRand(m, n, 3)
			got1 := want.Clone()
			got2 := want.Clone()
			mulATBRef(want, a, b)
			mulATBPacked(got1, a, b)
			MulATB(got2, a, b)
			for i := range want.Data {
				if math.Float64bits(got1.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("packed %dx%dx%d: elem %d: got %x want %x",
						k, m, n, i, math.Float64bits(got1.Data[i]), math.Float64bits(want.Data[i]))
				}
				if math.Float64bits(got2.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("MulATB %dx%dx%d: elem %d: got %x want %x",
						k, m, n, i, math.Float64bits(got2.Data[i]), math.Float64bits(want.Data[i]))
				}
			}
		}
	})
}

// TestMulABTPackedBitExact is the MulABT counterpart. The nonzero dst
// matters doubly here: the attention backward accumulates MulABT into a
// running gradient, and the zeroed-panel construction must keep the
// dot-then-single-add rounding for those call sites.
func TestMulABTPackedBitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		for _, sh := range packShapes {
			k, m, n := sh[0], sh[1], sh[2] // a is m×k, b is n×k
			a := denseRand(m, k, 1)
			b := denseRand(n, k, 2)
			want := denseRand(m, n, 3)
			got1 := want.Clone()
			got2 := want.Clone()
			mulABTRef(want, a, b)
			mulABTPacked(got1, a, b)
			MulABT(got2, a, b)
			for i := range want.Data {
				if math.Float64bits(got1.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("packed %dx%dx%d: elem %d: got %x want %x",
						m, k, n, i, math.Float64bits(got1.Data[i]), math.Float64bits(want.Data[i]))
				}
				if math.Float64bits(got2.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("MulABT %dx%dx%d: elem %d: got %x want %x",
						m, k, n, i, math.Float64bits(got2.Data[i]), math.Float64bits(want.Data[i]))
				}
			}
		}
	})
}

// TestPackedSteadyStateNoAlloc pins the packed serial paths at zero
// steady-state allocations (one warm call fills the pool; afterwards
// every buffer is recycled).
func TestPackedSteadyStateNoAlloc(t *testing.T) {
	if par.Procs() > 1 {
		t.Skip("parallel path allocates its par.For closure by design")
	}
	if raceEnabled {
		t.Skip("race-mode sync.Pool.Put randomly drops items, so the pool is not allocation-free under the detector")
	}
	a := denseRand(768, 48, 1)
	b := denseRand(768, 192, 2)
	dstT := NewDense(48, 192)
	a2 := denseRand(768, 192, 3)
	b2 := denseRand(48, 192, 4)
	dst2 := NewDense(768, 48)
	MulATB(dstT, a, b)
	MulABT(dst2, a2, b2)
	if n := testing.AllocsPerRun(50, func() {
		MulATB(dstT, a, b)
		MulABT(dst2, a2, b2)
	}); n != 0 {
		t.Fatalf("packed backward GEMMs allocated %v per run", n)
	}
}

// TestPairedBackwardGEMMMeasure reports drift-resistant paired timings
// of the packed backward GEMMs against the pre-pack loops at the BPTT
// gradient shapes (SeqLen·Batch = 768 activation rows against the
// 4H-wide gate panels of the default H=48 config). Variants alternate
// round-robin in one process and per-round medians are compared, the
// same methodology as TestPairedKernelMeasure. Run with -v; never fails.
func TestPairedBackwardGEMMMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement, skipped in -short")
	}
	const rows, h = 768, 48
	a := denseRand(rows, h, 1)    // layer activations
	g := denseRand(rows, 4*h, 2)  // gate-panel gradient
	wgrad := NewDense(h, 4*h)     // weight gradient (ATB dst)
	wh := denseRand(h, 4*h, 3)    // recurrent weights as n×k for ABT
	gw := denseRand(rows, 4*h, 4) // upstream gradient (ABT a)
	dh := NewDense(rows, h)       // hidden gradient (ABT dst)

	const rounds, iters = 120, 8
	measure := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start)
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}

	var atbOld, atbPacked, abtOld, abtPacked []time.Duration
	for r := 0; r < rounds; r++ {
		atbOld = append(atbOld, measure(func() { mulATBRef(wgrad, a, g) }))
		atbPacked = append(atbPacked, measure(func() { mulATBPacked(wgrad, a, g) }))
		abtOld = append(abtOld, measure(func() { mulABTRef(dh, gw, wh) }))
		abtPacked = append(abtPacked, measure(func() { mulABTPacked(dh, gw, wh) }))
	}
	t.Logf("MulATB %dx%dx%d  loop   median %v per %d calls", rows, h, 4*h, median(atbOld), iters)
	t.Logf("MulATB %dx%dx%d  packed median %v per %d calls", rows, h, 4*h, median(atbPacked), iters)
	t.Logf("MulABT %dx%dx%d  loop   median %v per %d calls", rows, 4*h, h, median(abtOld), iters)
	t.Logf("MulABT %dx%dx%d  packed median %v per %d calls", rows, 4*h, h, median(abtPacked), iters)
}

func BenchmarkMulATBPackedBPTTShape(b *testing.B) {
	a := denseRand(768, 48, 1)
	g := denseRand(768, 192, 2)
	dst := NewDense(48, 192)
	b.SetBytes(8 * int64(len(a.Data)+len(g.Data)+len(dst.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulATB(dst, a, g)
	}
}

func BenchmarkMulABTPackedBPTTShape(b *testing.B) {
	a := denseRand(768, 192, 1)
	w := denseRand(48, 192, 2)
	dst := NewDense(768, 48)
	b.SetBytes(8 * int64(len(a.Data)+len(w.Data)+len(dst.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulABT(dst, a, w)
	}
}
