package mat

import (
	"sort"
	"testing"
	"time"
)

// TestPairedKernelMeasure reports drift-resistant timings for the
// shipped straight-loop dot/axpy kernels against the rejected 4-way
// unrolled variants, all as direct in-package calls (how the GEMM
// inner loops consume them). Variants alternate round-robin within one
// process so slow clock drift (frequency scaling, noisy neighbors)
// hits all of them equally, and per-round medians are compared —
// consecutive `go test -bench` blocks on such hosts drift by more
// than the deltas at stake, which is how an earlier baseline briefly
// shipped the slower unrolled dot. Run with -v to see the numbers; it
// never fails.
func TestPairedKernelMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement, skipped in -short")
	}
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data

	const rounds, iters = 300, 2000
	measure := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start)
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}

	var sink float64
	var dotShip, dotUnroll, axpyShip, axpyUnroll []time.Duration
	for r := 0; r < rounds; r++ {
		dotShip = append(dotShip, measure(func() { sink += dot(x, y) }))
		dotUnroll = append(dotUnroll, measure(func() { sink += dotUnrolled4(x, y) }))
		axpyShip = append(axpyShip, measure(func() { axpy(1e-12, x, y) }))
		axpyUnroll = append(axpyUnroll, measure(func() { axpyUnrolled4(1e-12, x, y) }))
	}
	_ = sink
	t.Logf("dot  shipped  median %v per %d calls", median(dotShip), iters)
	t.Logf("dot  unrolled median %v per %d calls", median(dotUnroll), iters)
	t.Logf("axpy shipped  median %v per %d calls", median(axpyShip), iters)
	t.Logf("axpy unrolled median %v per %d calls", median(axpyUnroll), iters)
}
