package mat

import (
	"sort"
	"testing"
	"time"
)

// TestPairedKernelMeasure reports drift-resistant timings for the
// unrolled Dot/Axpy kernels against their straight-loop baselines.
// Variants alternate round-robin within one process so slow clock
// drift (frequency scaling, noisy neighbors) hits all of them equally,
// and per-round medians are compared — consecutive `go test -bench`
// blocks on such hosts drift by more than the ~5% deltas at stake.
// Run with -v to see the numbers; it never fails.
func TestPairedKernelMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement, skipped in -short")
	}
	x := denseRand(1, vecLen, 1).Data
	y := denseRand(1, vecLen, 2).Data

	const rounds, iters = 300, 2000
	measure := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start)
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}

	var sink float64
	var dotUnroll, dotPlain, axpyUnroll, axpyPlain []time.Duration
	for r := 0; r < rounds; r++ {
		dotUnroll = append(dotUnroll, measure(func() { sink += Dot(x, y) }))
		dotPlain = append(dotPlain, measure(func() { sink += dotRef(x, y) }))
		axpyUnroll = append(axpyUnroll, measure(func() { Axpy(1e-12, x, y) }))
		axpyPlain = append(axpyPlain, measure(func() { axpyRef(1e-12, x, y) }))
	}
	_ = sink
	t.Logf("dot  unrolled median %v per %d calls", median(dotUnroll), iters)
	t.Logf("dot  straight median %v per %d calls", median(dotPlain), iters)
	t.Logf("axpy unrolled median %v per %d calls", median(axpyUnroll), iters)
	t.Logf("axpy straight median %v per %d calls", median(axpyPlain), iters)
}
