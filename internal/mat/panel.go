package mat

import (
	"fmt"
	"os"
	"unsafe"

	"repro/internal/par"
)

// Publish-time packed weight panels (DESIGN.md §6.5). The decode hot
// path multiplies small activation batches against the same immutable
// weight matrices every round; MulAddBatched streams those matrices
// row-major, so every k step loads B with an n-element stride and a
// gate slab wider than L1 is re-fetched from L2 once per activation
// row. PackedDense/PackedDense32 convert a weight matrix once — at
// snapshot publish — into j-tile-major panels: the columns are split
// into register-width tiles (16 then 4 float64 columns; 32 then 8
// float32 columns; a column-major tail below that), and each tile
// stores its k rows contiguously. The packed kernels then sweep one
// tile across all activation rows with sequential panel loads, so a
// tile (k×16 float64 = 8 KB at k=64) stays L1-resident for the whole
// row sweep instead of the full matrix streaming from L2 per row.
//
// Bit-compatibility: the panel layout permutes only the ADDRESS of
// each B element, never the accumulation order. Every packed kernel —
// assembly and portable — accumulates each dst element's k terms in
// ascending k with a separate multiply and add (or one fused rounding
// per term under the f32 SetFastMath contract), exactly like
// MulAddBatched/MulAddBatched32. Packing therefore cannot change a
// single output bit, which is what lets the decode engines switch
// panels on and off (REPRO_NOPACK) without perturbing a trace.
//
// The epilogue variants (MulAddPackedEpi*) call back after each
// finished j-tile so the caller can apply its bias/activation pass
// while the tile is still hot in L1, instead of a second full sweep
// over the output slab; see the function comments for the contract.

// usePackedB gates the packed-B dispatch inside MulAdd and the packed
// decode panels built by internal/core. Setting REPRO_NOPACK (to any
// non-empty value) forces every consumer back onto the unpacked
// kernels; because the packed paths are bit-identical, the flag never
// changes results — it exists as a kill-switch and so CI can prove the
// identity (scripts/check.sh runs a REPRO_NOPACK=1 tier). A variable,
// not a const, so in-package tests can force either path.
var usePackedB = os.Getenv("REPRO_NOPACK") == ""

// Panel tile widths. The wide tile matches the widest register block
// of the batched kernels (4 YMM accumulators); the narrow tile matches
// their cleanup block (1 YMM). Columns beyond the narrow multiple are
// stored column-major so the scalar tail loop also gets contiguous
// loads.
const (
	panelWide64   = 16
	panelNarrow64 = 4
	panelWide32   = 32
	panelNarrow32 = 8
)

// alignedFloats returns an n-element slice whose backing array starts
// on a cache-line boundary, so panels never straddle or falsely share
// a line with a neighboring allocation. Alignment changes addresses
// only, never values.
func alignedFloats(n int) []float64 {
	const pad = cacheLineBytes / 8
	raw := make([]float64, n+pad)
	off := 0
	if n > 0 {
		addr := uintptr(unsafe.Pointer(&raw[0]))
		if rem := addr % cacheLineBytes; rem != 0 {
			off = int((cacheLineBytes - rem) / 8)
		}
	}
	return raw[off : off+n]
}

func alignedFloats32(n int) []float32 {
	const pad = cacheLineBytes / 4
	raw := make([]float32, n+pad)
	off := 0
	if n > 0 {
		addr := uintptr(unsafe.Pointer(&raw[0]))
		if rem := addr % cacheLineBytes; rem != 0 {
			off = int((cacheLineBytes - rem) / 4)
		}
	}
	return raw[off : off+n]
}

const cacheLineBytes = 64

// PackedDense is a float64 weight matrix converted once into
// j-tile-major panels for the packed decode kernels. It is immutable
// after Pack and safe to share across goroutines and fleets.
type PackedDense struct {
	Rows, Cols int // shape of the original (k×n) matrix
	data       []float64
}

// Pack converts m into cache-blocked panels (see the file comment for
// the layout). The conversion is a pure copy — every element keeps its
// value — and allocates once; call it at publish time, not per GEMM.
func (m *Dense) Pack() *PackedDense {
	p := &PackedDense{Rows: m.Rows, Cols: m.Cols, data: alignedFloats(m.Rows * m.Cols)}
	packPanelInto(p.data, m)
	return p
}

func (p *PackedDense) String() string {
	return fmt.Sprintf("PackedDense(%dx%d)", p.Rows, p.Cols)
}

// packPanelInto writes b's elements into dst in panel order: wide
// (16-column) tiles first, then narrow (4-column) tiles, then the
// column-major tail, each tile k-major. len(dst) must be b.Rows*b.Cols.
func packPanelInto(dst []float64, b *Dense) {
	k, n := b.Rows, b.Cols
	nw, nn := n&^(panelWide64-1), n&^(panelNarrow64-1)
	off := 0
	for j0 := 0; j0 < nw; j0 += panelWide64 {
		for kk := 0; kk < k; kk++ {
			copy(dst[off:off+panelWide64], b.Data[kk*n+j0:kk*n+j0+panelWide64])
			off += panelWide64
		}
	}
	for j0 := nw; j0 < nn; j0 += panelNarrow64 {
		for kk := 0; kk < k; kk++ {
			copy(dst[off:off+panelNarrow64], b.Data[kk*n+j0:kk*n+j0+panelNarrow64])
			off += panelNarrow64
		}
	}
	for j := nn; j < n; j++ {
		for kk := 0; kk < k; kk++ {
			dst[off] = b.Data[kk*n+j]
			off++
		}
	}
}

// Unpack returns the original row-major matrix (a fresh copy), the
// exact inverse of Pack. Used by tests and diagnostics.
func (p *PackedDense) Unpack() *Dense {
	out := NewDense(p.Rows, p.Cols)
	k, n := p.Rows, p.Cols
	nw, nn := n&^(panelWide64-1), n&^(panelNarrow64-1)
	off := 0
	for j0 := 0; j0 < nw; j0 += panelWide64 {
		for kk := 0; kk < k; kk++ {
			copy(out.Data[kk*n+j0:kk*n+j0+panelWide64], p.data[off:off+panelWide64])
			off += panelWide64
		}
	}
	for j0 := nw; j0 < nn; j0 += panelNarrow64 {
		for kk := 0; kk < k; kk++ {
			copy(out.Data[kk*n+j0:kk*n+j0+panelNarrow64], p.data[off:off+panelNarrow64])
			off += panelNarrow64
		}
	}
	for j := nn; j < n; j++ {
		for kk := 0; kk < k; kk++ {
			out.Data[kk*n+j] = p.data[off]
			off++
		}
	}
	return out
}

// MulAddPacked computes dst += a * b against a packed panel,
// bit-identically to MulAddBatched on the unpacked matrix: same
// ascending-k accumulation per element, separate multiply and add.
// Single-goroutine, like MulAddBatched — the decode scheduler owns its
// own concurrency.
func MulAddPacked(dst, a *Dense, b *PackedDense) {
	MulAddPackedEpi(dst, a, b, nil)
}

// MulAddPackedEpi is MulAddPacked with a fused epilogue: after the
// columns [j0, j1) of every dst row have received their full
// accumulation, epi(j0, j1) is invoked — while those columns are still
// hot in cache — before the kernel moves to the next tile. The calls
// partition [0, b.Cols) in ascending order (wide tiles, narrow tiles,
// then one call for the scalar tail, when each is non-empty). A nil
// epi is MulAddPacked. The epilogue must only touch dst columns
// [j0, j1); it runs even when a has zero rows, so bias-style epilogues
// need no special casing.
func MulAddPackedEpi(dst, a *Dense, b *PackedDense, epi func(j0, j1 int)) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAddPacked shape mismatch %v * %v -> %v", a, b, dst))
	}
	mulAddPackedRows(dst, a, b, 0, a.Rows, epi)
}

// mulAddPackedRows runs the packed kernel over dst rows [lo, hi). The
// epilogue (nil allowed) sees every tile of the column range once,
// regardless of the row range — callers that split rows across workers
// must pass epi only from one range (MulAdd's dispatch passes nil).
func mulAddPackedRows(dst, a *Dense, b *PackedDense, lo, hi int, epi func(j0, j1 int)) {
	m := hi - lo
	k, n := b.Rows, b.Cols
	nw, nn := n&^(panelWide64-1), n&^(panelNarrow64-1)
	run := m > 0 && k > 0
	var ad, dd []float64
	if run {
		ad = a.Data[lo*k : hi*k]
		dd = dst.Data[lo*n : hi*n]
	}
	off := 0
	for j0 := 0; j0 < nw; j0 += panelWide64 {
		if run {
			tile := b.data[off : off+k*panelWide64]
			if useBatchASM {
				gemmPacked16AVX2(&dd[j0], &ad[0], &tile[0], m, k, n)
			} else {
				mulAddPackedTile(dd[j0:], ad, tile, m, k, n, panelWide64)
			}
		}
		off += k * panelWide64
		if epi != nil {
			epi(j0, j0+panelWide64)
		}
	}
	for j0 := nw; j0 < nn; j0 += panelNarrow64 {
		if run {
			tile := b.data[off : off+k*panelNarrow64]
			if useBatchASM {
				gemmPacked4AVX2(&dd[j0], &ad[0], &tile[0], m, k, n)
			} else {
				mulAddPackedTile(dd[j0:], ad, tile, m, k, n, panelNarrow64)
			}
		}
		off += k * panelNarrow64
		if epi != nil {
			epi(j0, j0+panelNarrow64)
		}
	}
	if nn < n {
		for j := nn; j < n; j++ {
			if run {
				col := b.data[off : off+k]
				for i := 0; i < m; i++ {
					arow := ad[i*k : i*k+k]
					s := dd[i*n+j]
					for kk, av := range arow {
						s += av * col[kk]
					}
					dd[i*n+j] = s
				}
			}
			off += k
		}
		if epi != nil {
			epi(nn, n)
		}
	}
}

// mulAddPackedTile is the portable packed-tile kernel: one w-column
// j-tile (w a multiple of 4) swept across m rows in 4-column register
// groups, k innermost and ascending with separate multiply and add —
// the exact rounding sequence of mulAddJTiles, so assembly on/off
// cannot change bits. dst is addressed at the tile's first column with
// row stride n; tile is the k×w panel block.
func mulAddPackedTile(dst, a, tile []float64, m, k, n, w int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		drow := dst[i*n : i*n+w]
		for j := 0; j+4 <= w; j += 4 {
			s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			for kk, av := range arow {
				trow := tile[kk*w+j : kk*w+j+4]
				s0 += av * trow[0]
				s1 += av * trow[1]
				s2 += av * trow[2]
				s3 += av * trow[3]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
	}
}

// mulAddPackedB is MulAdd's forward fast path: pack b once into pooled
// panel scratch, then run the packed kernel row-parallel. The pack pass
// costs one extra sweep over b, amortized across a.Rows row sweeps that
// each replace strided B loads with contiguous L1-resident tiles;
// paired measurement at the training and BPTT shapes shows the
// crossover sits below packMinFlops (TestPairedForwardGEMMMeasure).
// Bit-identical to mulAddRows: same ascending-k order per element.
func mulAddPackedB(dst, a, b *Dense) {
	k, n := b.Rows, b.Cols
	sp := packGet(k * n)
	pb := PackedDense{Rows: k, Cols: n, data: *sp}
	packPanelInto(pb.data, b)
	rowFlops := k * n
	if a.Rows*rowFlops < parMinFlops || par.Procs() == 1 {
		mulAddPackedRows(dst, a, &pb, 0, a.Rows, nil)
	} else {
		par.For(a.Rows, gemmGrain(rowFlops), func(lo, hi int) {
			mulAddPackedRows(dst, a, &pb, lo, hi, nil)
		})
	}
	packPut(sp)
}

// PackedDense32 is the float32 counterpart of PackedDense: 32-column
// wide tiles, 8-column narrow tiles, column-major tail, each k-major.
// Immutable after Pack32 and safe to share.
type PackedDense32 struct {
	Rows, Cols int
	data       []float32
}

// Pack32 converts m into float32 panels (see PackedDense).
func (m *Dense32) Pack32() *PackedDense32 {
	p := &PackedDense32{Rows: m.Rows, Cols: m.Cols, data: alignedFloats32(m.Rows * m.Cols)}
	k, n := m.Rows, m.Cols
	nw, nn := n&^(panelWide32-1), n&^(panelNarrow32-1)
	off := 0
	for j0 := 0; j0 < nw; j0 += panelWide32 {
		for kk := 0; kk < k; kk++ {
			copy(p.data[off:off+panelWide32], m.Data[kk*n+j0:kk*n+j0+panelWide32])
			off += panelWide32
		}
	}
	for j0 := nw; j0 < nn; j0 += panelNarrow32 {
		for kk := 0; kk < k; kk++ {
			copy(p.data[off:off+panelNarrow32], m.Data[kk*n+j0:kk*n+j0+panelNarrow32])
			off += panelNarrow32
		}
	}
	for j := nn; j < n; j++ {
		for kk := 0; kk < k; kk++ {
			p.data[off] = m.Data[kk*n+j]
			off++
		}
	}
	return p
}

func (p *PackedDense32) String() string {
	return fmt.Sprintf("PackedDense32(%dx%d)", p.Rows, p.Cols)
}

// MulAddPacked32 computes dst += a * b against a float32 panel,
// bit-identically to MulAddBatched32 on the unpacked matrix under both
// accumulation contracts (separate rounding by default; one fused
// rounding per term under SetFastMath, reproduced portably by fma32).
func MulAddPacked32(dst, a *Dense32, b *PackedDense32) {
	MulAddPackedEpi32(dst, a, b, nil)
}

// MulAddPackedEpi32 is MulAddPacked32 with the fused tile epilogue;
// see MulAddPackedEpi for the callback contract (here the partition is
// 32-column tiles, 8-column tiles, then the scalar tail).
func MulAddPackedEpi32(dst, a *Dense32, b *PackedDense32, epi func(j0, j1 int)) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAddPacked32 shape mismatch %v * %v -> %v", a, b, dst))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	nw, nn := n&^(panelWide32-1), n&^(panelNarrow32-1)
	run := m > 0 && k > 0
	fma := fastMath
	off := 0
	for j0 := 0; j0 < nw; j0 += panelWide32 {
		if run {
			tile := b.data[off : off+k*panelWide32]
			switch {
			case useBatchASM && fma:
				gemmPacked32FMA(&dst.Data[j0], &a.Data[0], &tile[0], m, k, n)
			case useBatchASM:
				gemmPacked32AVX2(&dst.Data[j0], &a.Data[0], &tile[0], m, k, n)
			case fma:
				mulAddPackedTileFMA32(dst.Data[j0:], a.Data, tile, m, k, n, panelWide32)
			default:
				mulAddPackedTile32(dst.Data[j0:], a.Data, tile, m, k, n, panelWide32)
			}
		}
		off += k * panelWide32
		if epi != nil {
			epi(j0, j0+panelWide32)
		}
	}
	for j0 := nw; j0 < nn; j0 += panelNarrow32 {
		if run {
			tile := b.data[off : off+k*panelNarrow32]
			switch {
			case useBatchASM && fma:
				gemmPacked8FMA(&dst.Data[j0], &a.Data[0], &tile[0], m, k, n)
			case useBatchASM:
				gemmPacked8AVX2(&dst.Data[j0], &a.Data[0], &tile[0], m, k, n)
			case fma:
				mulAddPackedTileFMA32(dst.Data[j0:], a.Data, tile, m, k, n, panelNarrow32)
			default:
				mulAddPackedTile32(dst.Data[j0:], a.Data, tile, m, k, n, panelNarrow32)
			}
		}
		off += k * panelNarrow32
		if epi != nil {
			epi(j0, j0+panelNarrow32)
		}
	}
	if nn < n {
		for j := nn; j < n; j++ {
			if run {
				col := b.data[off : off+k]
				for i := 0; i < m; i++ {
					arow := a.Data[i*k : i*k+k]
					s := dst.Data[i*n+j]
					if fma {
						for kk, av := range arow {
							s = fma32(av, col[kk], s)
						}
					} else {
						for kk, av := range arow {
							s += av * col[kk]
						}
					}
					dst.Data[i*n+j] = s
				}
			}
			off += k
		}
		if epi != nil {
			epi(nn, n)
		}
	}
}

// mulAddPackedTile32 is the portable f32 packed-tile kernel (8-column
// register groups, separate multiply and add) — the schedule the
// assembly tile kernels vectorize, bit-identical to mulAddJTiles32.
func mulAddPackedTile32(dst, a []float32, tile []float32, m, k, n, w int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		drow := dst[i*n : i*n+w]
		for j := 0; j+8 <= w; j += 8 {
			s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			s4, s5, s6, s7 := drow[j+4], drow[j+5], drow[j+6], drow[j+7]
			for kk, av := range arow {
				trow := tile[kk*w+j : kk*w+j+8]
				s0 += av * trow[0]
				s1 += av * trow[1]
				s2 += av * trow[2]
				s3 += av * trow[3]
				s4 += av * trow[4]
				s5 += av * trow[5]
				s6 += av * trow[6]
				s7 += av * trow[7]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			drow[j+4], drow[j+5], drow[j+6], drow[j+7] = s4, s5, s6, s7
		}
	}
}

// mulAddPackedTileFMA32 is the FMA-contract portable tile kernel: one
// fused rounding per term via fma32, bit-identical to the VFMADD231PS
// assembly tiles.
func mulAddPackedTileFMA32(dst, a []float32, tile []float32, m, k, n, w int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		drow := dst[i*n : i*n+w]
		for j := 0; j+8 <= w; j += 8 {
			s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			s4, s5, s6, s7 := drow[j+4], drow[j+5], drow[j+6], drow[j+7]
			for kk, av := range arow {
				trow := tile[kk*w+j : kk*w+j+8]
				s0 = fma32(av, trow[0], s0)
				s1 = fma32(av, trow[1], s1)
				s2 = fma32(av, trow[2], s2)
				s3 = fma32(av, trow[3], s3)
				s4 = fma32(av, trow[4], s4)
				s5 = fma32(av, trow[5], s5)
				s6 = fma32(av, trow[6], s6)
				s7 = fma32(av, trow[7], s7)
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			drow[j+4], drow[j+5], drow[j+6], drow[j+7] = s4, s5, s6, s7
		}
	}
}
