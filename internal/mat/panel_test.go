package mat

import (
	"math"
	"sort"
	"testing"
	"time"
)

// withPackedB runs f with the packed-B MulAdd dispatch forced on and
// off, restoring the global afterwards — the in-process analog of the
// REPRO_NOPACK tier in scripts/check.sh.
func withPackedB(t *testing.T, f func(t *testing.T)) {
	for _, on := range []bool{false, true} {
		name := "nopack"
		if on {
			name = "pack"
		}
		t.Run(name, func(t *testing.T) {
			saved := usePackedB
			usePackedB = on
			defer func() { usePackedB = saved }()
			f(t)
		})
	}
}

// panelShapes exercises every region of the panel layout: multiple
// wide tiles, the narrow cleanup tiles, the scalar column tail, and
// degenerate edges (single row/col, k=1, wide-only, tail-only). The
// decode shapes (gates 4h=96/256, heads 18/48) are included verbatim.
var panelShapes = [][3]int{
	{8, 24, 96}, {1, 24, 96}, {64, 24, 96}, {64, 64, 256},
	{8, 24, 18}, {8, 24, 48}, {64, 64, 64},
	{7, 23, 97}, {3, 5, 3}, {2, 1, 1}, {5, 31, 16}, {1, 1, 17},
	{9, 2, 130}, {4, 6, 35}, {6, 3, 7}, {2, 2, 39}, {3, 4, 40},
}

// TestPackUnpackRoundTrip pins that packing is a pure permutation:
// Unpack(Pack(m)) reproduces every element bit-for-bit.
func TestPackUnpackRoundTrip(t *testing.T) {
	for _, sh := range panelShapes {
		k, n := sh[1], sh[2]
		b := denseRand(k, n, 7)
		got := b.Pack().Unpack()
		for i := range b.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(b.Data[i]) {
				t.Fatalf("%dx%d: elem %d changed across pack round-trip", k, n, i)
			}
		}
	}
}

// TestMulAddPackedBitExact pins the packed f64 kernel against
// MulAddBatched on the unpacked matrix — the panel layout must not
// change a single output bit, on the assembly and portable paths.
func TestMulAddPackedBitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		for _, sh := range panelShapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := denseRand(m, k, 1)
			b := denseRand(k, n, 2)
			want := denseRand(m, n, 3)
			got := want.Clone()
			MulAddBatched(want, a, b)
			MulAddPacked(got, a, b.Pack())
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("%dx%dx%d: elem %d: got %x want %x",
						m, k, n, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
				}
			}
		}
	})
}

// TestMulAddPacked32BitExact is the float32 pin, under both rounding
// contracts (the FMA tiles only run with SetFastMath).
func TestMulAddPacked32BitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		withFastMath(t, func(t *testing.T) {
			for _, sh := range panelShapes {
				m, k, n := sh[0], sh[1], sh[2]
				a := dense32Rand(m, k, 1)
				b := dense32Rand(k, n, 2)
				want := dense32Rand(m, n, 3)
				got := NewDense32(m, n)
				copy(got.Data, want.Data)
				MulAddBatched32(want, a, b)
				MulAddPacked32(got, a, b.Pack32())
				for i := range want.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						t.Fatalf("%dx%dx%d: elem %d: got %x want %x",
							m, k, n, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
					}
				}
			}
		})
	})
}

// TestMulAddPackedEpiPartition pins the epilogue contract: the calls
// partition [0, n) in ascending order, fire exactly once per tile, see
// fully-accumulated columns, and run even for zero activation rows.
func TestMulAddPackedEpiPartition(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		for _, sh := range panelShapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := denseRand(m, k, 4)
			b := denseRand(k, n, 5)
			want := denseRand(m, n, 6)
			got := want.Clone()
			MulAddBatched(want, a, b)

			next := 0
			MulAddPackedEpi(got, a, b.Pack(), func(j0, j1 int) {
				if j0 != next || j1 <= j0 || j1 > n {
					t.Fatalf("%dx%dx%d: epi segment [%d,%d), want start %d", m, k, n, j0, j1, next)
				}
				next = j1
				// Columns [j0, j1) must already hold their final GEMM
				// value when the epilogue sees them.
				for i := 0; i < m; i++ {
					for j := j0; j < j1; j++ {
						if math.Float64bits(got.Data[i*n+j]) != math.Float64bits(want.Data[i*n+j]) {
							t.Fatalf("%dx%dx%d: epi [%d,%d): col %d not finished", m, k, n, j0, j1, j)
						}
					}
				}
			})
			if next != n {
				t.Fatalf("%dx%dx%d: epi covered [0,%d), want [0,%d)", m, k, n, next, n)
			}

			// Zero activation rows: the GEMM is a no-op but bias-style
			// epilogues still need the full partition.
			empty := NewDense(0, n)
			ea := NewDense(0, k)
			next = 0
			MulAddPackedEpi(empty, ea, b.Pack(), func(j0, j1 int) { next = j1 })
			if next != n {
				t.Fatalf("%dx%dx%d: zero-row epi stopped at %d", m, k, n, next)
			}
		}
	})
}

// TestMulAddPackedEpi32Partition is the float32 partition pin.
func TestMulAddPackedEpi32Partition(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		for _, sh := range panelShapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := dense32Rand(m, k, 4)
			b := dense32Rand(k, n, 5)
			got := dense32Rand(m, n, 6)
			next := 0
			MulAddPackedEpi32(got, a, b.Pack32(), func(j0, j1 int) {
				if j0 != next || j1 <= j0 || j1 > n {
					t.Fatalf("%dx%dx%d: epi segment [%d,%d), want start %d", m, k, n, j0, j1, next)
				}
				next = j1
			})
			if next != n {
				t.Fatalf("%dx%dx%d: epi covered [0,%d), want [0,%d)", m, k, n, next, n)
			}
		}
	})
}

// TestMulAddPackedDispatchBitExact pins that MulAdd produces identical
// bits whether or not the packed-B dispatch is taken, at shapes
// straddling packMinFlops (the training/BPTT sizes the dispatch
// targets).
func TestMulAddPackedDispatchBitExact(t *testing.T) {
	withBatchASM(t, func(t *testing.T) {
		shapes := [][3]int{
			{64, 64, 256}, {32, 96, 256}, {64, 24, 96}, // BPTT gate GEMMs
			{128, 64, 64}, {7, 61, 67}, {200, 10, 17},
		}
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := denseRand(m, k, 1)
			b := denseRand(k, n, 2)
			base := denseRand(m, n, 3)
			var packed, unpacked *Dense
			withPackedB(t, func(t *testing.T) {
				got := base.Clone()
				MulAdd(got, a, b)
				if usePackedB {
					packed = got
				} else {
					unpacked = got
				}
			})
			for i := range packed.Data {
				if math.Float64bits(packed.Data[i]) != math.Float64bits(unpacked.Data[i]) {
					t.Fatalf("%dx%dx%d: elem %d differs across pack dispatch", m, k, n, i)
				}
			}
		}
	})
}

// FuzzMulAddPacked feeds random shapes and data through the packed f64
// kernel and bit-compares against the unpacked batched reference —
// both assembly and portable, with and without a fused epilogue doing
// a bias-style rewrite of each finished segment.
func FuzzMulAddPacked(f *testing.F) {
	f.Add(uint8(8), uint8(24), uint8(96), int64(1))
	f.Add(uint8(64), uint8(64), uint8(255), int64(2))
	f.Add(uint8(1), uint8(1), uint8(1), int64(3))
	f.Add(uint8(7), uint8(23), uint8(97), int64(4))
	f.Add(uint8(3), uint8(2), uint8(17), int64(5))
	f.Fuzz(func(t *testing.T, mm, kk, nn uint8, seed int64) {
		m, k, n := int(mm)%65, int(kk)%65, int(nn)%130
		if m == 0 || k == 0 || n == 0 {
			return
		}
		a := denseRand(m, k, seed)
		b := denseRand(k, n, seed+1)
		base := denseRand(m, n, seed+2)
		bias := denseRand(1, n, seed+3).Data
		p := b.Pack()

		want := base.Clone()
		MulAddBatched(want, a, b)
		for i := 0; i < m; i++ {
			row := want.Row(i)
			for j, bv := range bias {
				row[j] += bv
			}
		}

		withBatchASM(t, func(t *testing.T) {
			got := base.Clone()
			MulAddPackedEpi(got, a, p, func(j0, j1 int) {
				for i := 0; i < m; i++ {
					row := got.Row(i)
					for j := j0; j < j1; j++ {
						row[j] += bias[j]
					}
				}
			})
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("%dx%dx%d: elem %d: got %x want %x",
						m, k, n, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
				}
			}
		})
	})
}

// TestPairedForwardGEMMMeasure extends the paired-measure methodology
// to the forward GEMM at the batched/sharded BPTT shapes: the shipped
// packed-B dispatch against the pre-PR scalar-axpy path, round-robin in
// one process with per-round medians, so clock drift cannot pick the
// winner. It documents the packMinFlops crossover; it never fails.
func TestPairedForwardGEMMMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement, skipped in -short")
	}
	shapes := [][3]int{
		{64, 64, 256}, // batched BPTT gate GEMM (h=64)
		{32, 96, 256}, // sharded BPTT with stacked input
		{64, 64, 64},  // BPTT cell-grad GEMM
		{8, 24, 96},   // below packMinFlops: dispatch must not regress it
	}
	const rounds, iters = 60, 20
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := denseRand(m, k, 1)
		b := denseRand(k, n, 2)
		dst := NewDense(m, n)
		measure := func(f func()) time.Duration {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			return time.Since(start)
		}
		var packed, axpy []time.Duration
		for r := 0; r < rounds; r++ {
			packed = append(packed, measure(func() { mulAddPackedB(dst, a, b) }))
			axpy = append(axpy, measure(func() { mulAddRows(dst, a, b, 0, m) }))
		}
		flops := m * k * n
		t.Logf("%dx%dx%d (%d flops, packMinFlops=%d): packed %v, axpy %v per %d calls",
			m, k, n, flops, packMinFlops, median(packed), median(axpy), iters)
	}
}
