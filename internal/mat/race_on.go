//go:build race

package mat

// raceEnabled reports whether the race detector is compiled in. Alloc
// pins over sync.Pool-backed paths skip under the detector: race-mode
// Pool.Put randomly drops items, so steady state is not allocation-free
// by design there.
const raceEnabled = true
