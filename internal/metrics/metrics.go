// Package metrics implements the evaluation measures used throughout the
// paper: prediction-interval coverage, empirical quantiles, and simple
// distribution summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-th empirical quantile (0 <= q <= 1) of xs using
// linear interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Interval is a per-point prediction interval with a median.
type Interval struct {
	Lo, Median, Hi float64
}

// PredictionIntervals computes per-index central prediction intervals of
// the given coverage level from samples[s][i] (sample s, index i).
func PredictionIntervals(samples [][]float64, level float64) []Interval {
	if len(samples) == 0 {
		panic("metrics: no samples")
	}
	n := len(samples[0])
	alpha := (1 - level) / 2
	out := make([]Interval, n)
	col := make([]float64, len(samples))
	for i := 0; i < n; i++ {
		for s, row := range samples {
			if len(row) != n {
				panic(fmt.Sprintf("metrics: sample %d has %d points, want %d", s, len(row), n))
			}
			col[s] = row[i]
		}
		out[i] = Interval{
			Lo:     Quantile(col, alpha),
			Median: Quantile(col, 0.5),
			Hi:     Quantile(col, 1-alpha),
		}
	}
	return out
}

// Coverage returns the fraction of actual values falling inside their
// prediction interval (inclusive).
func Coverage(actual []float64, intervals []Interval) float64 {
	if len(actual) != len(intervals) {
		panic(fmt.Sprintf("metrics: %d actuals vs %d intervals", len(actual), len(intervals)))
	}
	if len(actual) == 0 {
		return 0
	}
	hit := 0
	for i, v := range actual {
		if v >= intervals[i].Lo && v <= intervals[i].Hi {
			hit++
		}
	}
	return float64(hit) / float64(len(actual))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// CRPS estimates the continuous ranked probability score of an
// empirical forecast distribution (given by samples) against the
// observed value y, using the standard unbiased sample form
// E|X - y| - ½·E|X - X'|. Lower is better; CRPS generalizes absolute
// error to probabilistic forecasts.
func CRPS(samples []float64, y float64) float64 {
	n := len(samples)
	if n == 0 {
		panic("metrics: CRPS with no samples")
	}
	sorted := make([]float64, n)
	copy(sorted, samples)
	sort.Float64s(sorted)
	var term1 float64
	for _, x := range sorted {
		term1 += math.Abs(x - y)
	}
	term1 /= float64(n)
	// E|X - X'| over all pairs via the sorted-order identity:
	// Σ_i Σ_j |x_i - x_j| = 2 Σ_i (2i - n + 1) x_i for ascending x.
	var pairSum float64
	for i, x := range sorted {
		pairSum += float64(2*i-n+1) * x
	}
	term2 := 2 * pairSum / float64(n*n)
	return term1 - 0.5*term2
}

// MeanCRPS averages CRPS across a series: samples[s][i] is sample s of
// point i.
func MeanCRPS(samples [][]float64, actual []float64) float64 {
	if len(samples) == 0 {
		panic("metrics: MeanCRPS with no samples")
	}
	n := len(actual)
	col := make([]float64, len(samples))
	var total float64
	for i := 0; i < n; i++ {
		for s, row := range samples {
			if len(row) != n {
				panic(fmt.Sprintf("metrics: sample %d has %d points, want %d", s, len(row), n))
			}
			col[s] = row[i]
		}
		total += CRPS(col, actual[i])
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Histogram buckets values into counts over edges: count[i] holds values
// in [edges[i], edges[i+1]); values beyond the last edge land in the
// final bucket.
func Histogram(xs []float64, edges []float64) []int {
	if len(edges) < 2 {
		panic("metrics: Histogram needs at least 2 edges")
	}
	counts := make([]int, len(edges)-1)
	for _, v := range xs {
		idx := sort.SearchFloat64s(edges[1:], math.Nextafter(v, math.Inf(1)))
		if idx >= len(counts) {
			idx = len(counts) - 1
		}
		counts[idx]++
	}
	return counts
}

// Proportions normalizes integer counts to fractions summing to 1
// (all-zero input yields all zeros).
func Proportions(counts []int) []float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
