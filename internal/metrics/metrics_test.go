package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantileKnown(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extremes wrong")
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("input mutated")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw [6]uint16, qa, qb uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionIntervalsAndCoverage(t *testing.T) {
	// 101 samples of 2 points: point 0 takes values 0..100, point 1 is
	// constant 5.
	samples := make([][]float64, 101)
	for s := range samples {
		samples[s] = []float64{float64(s), 5}
	}
	iv := PredictionIntervals(samples, 0.9)
	if iv[0].Median != 50 {
		t.Fatalf("median = %v", iv[0].Median)
	}
	if math.Abs(iv[0].Lo-5) > 1e-9 || math.Abs(iv[0].Hi-95) > 1e-9 {
		t.Fatalf("interval = %+v", iv[0])
	}
	if iv[1].Lo != 5 || iv[1].Hi != 5 {
		t.Fatalf("constant interval = %+v", iv[1])
	}
	cov := Coverage([]float64{50, 5}, iv)
	if cov != 1 {
		t.Fatalf("coverage = %v", cov)
	}
	cov = Coverage([]float64{200, 5}, iv)
	if cov != 0.5 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestPredictionIntervalsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PredictionIntervals([][]float64{{1, 2}, {1}}, 0.9)
}

func TestCoverageEmptyAndMismatch(t *testing.T) {
	if Coverage(nil, nil) != 0 {
		t.Fatal("empty coverage should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Coverage([]float64{1}, nil)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestHistogramAndProportions(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 10}
	counts := Histogram(xs, []float64{0, 1, 2, 3})
	// [0,1): 0, 0.5 -> 2; [1,2): 1, 1.5 -> 2; [2,3): 10 clamps to last -> 1.
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("histogram = %v", counts)
	}
	props := Proportions(counts)
	if math.Abs(props[0]-0.4) > 1e-12 {
		t.Fatalf("proportions = %v", props)
	}
	zero := Proportions([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("all-zero proportions should be zeros")
	}
}

func TestCRPSDegenerateForecast(t *testing.T) {
	// A point forecast's CRPS is its absolute error.
	samples := []float64{5, 5, 5, 5}
	if got := CRPS(samples, 7); math.Abs(got-2) > 1e-12 {
		t.Fatalf("CRPS = %v, want 2", got)
	}
	if got := CRPS(samples, 5); math.Abs(got) > 1e-12 {
		t.Fatalf("perfect CRPS = %v", got)
	}
}

func TestCRPSRewardsSharpness(t *testing.T) {
	// Both forecasts centered on the truth; the sharper one scores
	// better.
	truth := 10.0
	narrow := []float64{9.5, 10.5, 9.8, 10.2}
	wide := []float64{5, 15, 7, 13}
	if CRPS(narrow, truth) >= CRPS(wide, truth) {
		t.Fatal("sharper calibrated forecast should score better")
	}
}

func TestCRPSPenalizesBias(t *testing.T) {
	truth := 10.0
	centered := []float64{9, 10, 11}
	biased := []float64{19, 20, 21}
	if CRPS(centered, truth) >= CRPS(biased, truth) {
		t.Fatal("biased forecast should score worse")
	}
}

func TestMeanCRPS(t *testing.T) {
	samples := [][]float64{{1, 10}, {3, 10}}
	got := MeanCRPS(samples, []float64{2, 10})
	// Point 0: E|X-2| = 1, E|X-X'| = (0+2+2+0)/4 = 1 -> 0.5.
	// Point 1: 0.
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("MeanCRPS = %v, want 0.25", got)
	}
}

func TestCRPSPanics(t *testing.T) {
	for _, f := range []func(){
		func() { CRPS(nil, 1) },
		func() { MeanCRPS(nil, nil) },
		func() { MeanCRPS([][]float64{{1}}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram([]float64{1}, []float64{0})
}
