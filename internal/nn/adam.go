package nn

import (
	"math"

	"repro/internal/mat"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2014) with decoupled
// weight decay and optional global-norm gradient clipping, matching the
// paper's training setup (§4.1-4.2).
type Adam struct {
	LR          float64 // learning rate
	Beta1       float64 // first-moment decay (default 0.9)
	Beta2       float64 // second-moment decay (default 0.999)
	Eps         float64 // numerical stabilizer (default 1e-8)
	WeightDecay float64 // decoupled L2 decay applied to weights
	ClipNorm    float64 // if > 0, clip gradients to this global L2 norm
	t           int     // step counter for bias correction
	lastNorm    float64 // pre-clip global gradient norm from the latest Step
}

// NewAdam returns an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Steps returns how many optimization steps have been applied.
func (a *Adam) Steps() int { return a.t }

// LastGradNorm returns the pre-clip global gradient L2 norm observed at
// the most recent Step. The norm is only computed when ClipNorm > 0
// (clipping already pays for the pass over the gradients); it reads 0
// otherwise, keeping the unclipped path cost-free.
func (a *Adam) LastGradNorm() float64 { return a.lastNorm }

// Step applies one update to all params from their accumulated
// gradients. Gradients are left untouched; the caller zeroes them.
func (a *Adam) Step(params []*Param) {
	a.t++
	if a.ClipNorm > 0 {
		var sq float64
		for _, p := range params {
			for _, g := range p.Grad.Data {
				sq += g * g
			}
		}
		norm := math.Sqrt(sq)
		a.lastNorm = norm
		if norm > a.ClipNorm {
			scale := a.ClipNorm / norm
			for _, p := range params {
				mat.Scale(scale, p.Grad.Data)
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		val, grad, m, v := p.Value.Data, p.Grad.Data, p.m.Data, p.v.Data
		for i, g := range grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			upd := a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			if a.WeightDecay > 0 {
				upd += a.LR * a.WeightDecay * val[i]
			}
			val[i] -= upd
		}
	}
}
