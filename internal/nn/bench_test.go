package nn

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Package-level benches for the recurrent substrates, all reporting
// allocations: after the workspace/arena rewrite the steady-state
// numbers here are expected to stay at (or near) zero allocs/op — the
// allocation-regression tests in alloc_test.go enforce the bound, these
// benches make the byte volume visible.

func benchNet(b *testing.B) *LSTM {
	b.Helper()
	return NewLSTM(Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
}

func benchInputs(steps, batch int) []*mat.Dense {
	g := rng.New(2)
	xs := make([]*mat.Dense, steps)
	for s := range xs {
		x := mat.NewDense(batch, 64)
		for i := range x.Data {
			x.Data[i] = g.NormFloat64()
		}
		xs[s] = x
	}
	return xs
}

func BenchmarkLSTMForward(b *testing.B) {
	net := benchNet(b)
	xs := benchInputs(32, 8)
	st := net.NewState(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(xs, st)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	net := benchNet(b)
	xs := benchInputs(32, 8)
	st := net.NewState(8)
	dys := make([]*mat.Dense, len(xs))
	for s := range dys {
		dys[s] = mat.NewDense(8, 17)
		for j := range dys[s].Data {
			dys[s].Data[j] = 0.01
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		_, cache := net.Forward(xs, st)
		net.Backward(cache, dys)
	}
}

func BenchmarkLSTMStep(b *testing.B) {
	net := benchNet(b)
	st := net.NewState(1)
	x := make([]float64, 64)
	x[3] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.StepForward(x, st)
	}
}

func BenchmarkGRUForwardBackward(b *testing.B) {
	net := NewGRU(Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
	xs := benchInputs(32, 8)
	st := net.NewState(8)
	dys := make([]*mat.Dense, len(xs))
	for s := range dys {
		dys[s] = mat.NewDense(8, 17)
		for j := range dys[s].Data {
			dys[s].Data[j] = 0.01
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		_, cache := net.Forward(xs, st)
		net.Backward(cache, dys)
	}
}

func BenchmarkGRUStep(b *testing.B) {
	net := NewGRU(Config{InputDim: 64, HiddenDim: 48, Layers: 2, OutputDim: 17}, rng.New(1))
	st := net.NewState(1)
	x := make([]float64, 64)
	x[3] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.StepForward(x, st)
	}
}
