package nn

import (
	"fmt"
	"unsafe"

	"repro/internal/mat"
)

// Float32 serving fast path (DESIGN.md §6.4). LSTM32 is a frozen
// float32 copy of a trained LSTM's weights, and Fleet32 is the batched
// decode fleet that runs on it: the step GEMMs and the gate
// nonlinearities all execute in float32 at twice the f64 kernels' AVX2
// lane width (mat/act32.go holds the native sigmoid/tanh). The facade
// stays float64 — InputRow hands out f64 staging rows and Step returns
// f64 logits — so the decode scheduler and samplers in internal/core
// are precision-blind.
//
// Like every decode kernel in this codebase, the f32 step is fully
// deterministic and batch-composition invariant: each GEMM output
// element accumulates its k terms in ascending order whatever the
// batch, and activations are per-row. What f32 gives up is bit-parity
// with the f64 path — outputs diverge within the tolerance validated
// at snapshot publish (core.ValidateF32), not byte-identity.

// StepFleet is the decode-fleet surface the batching engines drive;
// *Fleet (float64, bit-exact) and *Fleet32 (float32 fast path) both
// implement it. See Fleet for the row-index protocol.
type StepFleet interface {
	Rows() int
	Admit() int
	Retire(row int) (moved int)
	InputRow(i int) []float64
	Step(rows []int) *mat.Dense
}

var (
	_ StepFleet = (*Fleet)(nil)
	_ StepFleet = (*Fleet32)(nil)
)

// lstmLayer32 holds one layer's weights narrowed to float32. Gate
// order matches lstmLayer: input, forget, cell (g), output.
type lstmLayer32 struct {
	first bool
	wx    *mat.Dense32 // [in x 4H]
	wh    *mat.Dense32 // [H x 4H]
	b     []float32    // [4H]
}

// LSTM32 is a frozen float32 snapshot of an LSTM's weights for the f32
// serving path. It holds no gradients and cannot train; build one per
// published model snapshot with Convert32.
type LSTM32 struct {
	Cfg    Config
	layers []*lstmLayer32
	wy     *mat.Dense32 // [H x OutputDim]
	by     []float32    // [OutputDim]
}

// Convert32 returns a float32 copy of the network's weights, each
// element rounded once (to nearest even). The copy is immutable by
// convention and safe to share across fleets and goroutines.
func (n *LSTM) Convert32() *LSTM32 {
	out := &LSTM32{Cfg: n.Cfg}
	for _, l := range n.layers {
		out.layers = append(out.layers, &lstmLayer32{
			first: l.first,
			wx:    l.wx.Value.Dense32(),
			wh:    l.wh.Value.Dense32(),
			b:     l.b.Value.Dense32().Data,
		})
	}
	out.wy = n.wy.Value.Dense32()
	out.by = n.by.Value.Dense32().Data
	return out
}

// alignedDense32 is alignedDense for float32 slabs: backing array on a
// cache-line boundary so concurrently stepped per-shard fleets never
// share a line.
func alignedDense32(r, c int) *mat.Dense32 {
	n := r * c
	const pad = cacheLine / 4 // float32s per line
	raw := make([]float32, n+pad)
	off := 0
	if n > 0 {
		addr := uintptr(unsafe.Pointer(&raw[0]))
		if rem := addr % cacheLine; rem != 0 {
			off = int((cacheLine - rem) / 4)
		}
	}
	return mat.FromSlice32(r, c, raw[off:off+n])
}

// Fleet32 is the float32 counterpart of Fleet: per-stream hidden/cell
// state lives in f32 slabs, and the step GEMMs and gate activations
// run the native f32 kernels. Admission, retire compaction, and the
// Step protocol are identical to Fleet. Not safe for concurrent use;
// distinct Fleet32s may be stepped concurrently.
type Fleet32 struct {
	net *LSTM32
	n   int
	cap int

	// Persistent per-stream state, f32, one row per stream per layer.
	h, c []*mat.Dense32 // [cap x H]

	// Staging and scratch. x is the float64 input facade (InputRow);
	// x32 is its narrowed copy that actually feeds the layer-0 GEMM.
	x   *mat.Dense   // [cap x InputDim] f64 staging
	x32 *mat.Dense32 // [cap x InputDim]

	gh, gc []*mat.Dense32 // gathered subset state [cap x H]
	z      *mat.Dense32   // gate pre-activations [cap x 4H]
	y32    *mat.Dense32   // head logits, f32 [cap x OutputDim]
	y      *mat.Dense     // widened logits returned to the caller

	// Preallocated view headers (no allocation in Step).
	xv         mat.Dense
	yv         mat.Dense
	x32v, zv   mat.Dense32
	y32v       mat.Dense32
	ghv, gcv   []mat.Dense32
	rx         mat.Dense   // 1-row f64 cursor for the sparsity dispatch
	rx32, rz32 mat.Dense32 // 1-row f32 cursors for the layer-0 GEMMs

	// tanh(c) scratch, one row.
	tc32 []float32

	// Packed serving weights and fused tile epilogues (pack.go); nil on
	// an unpacked fleet. Set by NewFleet32Packed only.
	panels  *PackedLSTM32
	epis    []func(j0, j1 int)
	headEpi func(j0, j1 int)
}

// NewFleet32 returns an empty f32 fleet over the converted weights
// with initial capacity for the given number of streams.
func (n *LSTM32) NewFleet32(capacity int) *Fleet32 {
	if capacity < 1 {
		capacity = 1
	}
	f := &Fleet32{net: n}
	f.alloc(capacity)
	return f
}

func (f *Fleet32) alloc(capacity int) {
	cfg := f.net.Cfg
	nl := len(f.net.layers)
	h := make([]*mat.Dense32, nl)
	c := make([]*mat.Dense32, nl)
	for l := 0; l < nl; l++ {
		h[l] = alignedDense32(capacity, cfg.HiddenDim)
		c[l] = alignedDense32(capacity, cfg.HiddenDim)
		if f.n > 0 {
			copy(h[l].Data, f.h[l].Data[:f.n*cfg.HiddenDim])
			copy(c[l].Data, f.c[l].Data[:f.n*cfg.HiddenDim])
		}
	}
	f.h, f.c = h, c
	f.cap = capacity
	f.x = alignedDense(capacity, cfg.InputDim)
	f.x32 = alignedDense32(capacity, cfg.InputDim)
	f.gh = make([]*mat.Dense32, nl)
	f.gc = make([]*mat.Dense32, nl)
	for l := 0; l < nl; l++ {
		f.gh[l] = alignedDense32(capacity, cfg.HiddenDim)
		f.gc[l] = alignedDense32(capacity, cfg.HiddenDim)
	}
	f.z = alignedDense32(capacity, 4*cfg.HiddenDim)
	f.y32 = alignedDense32(capacity, cfg.OutputDim)
	f.y = alignedDense(capacity, cfg.OutputDim)
	f.ghv = make([]mat.Dense32, nl)
	f.gcv = make([]mat.Dense32, nl)
	f.tc32 = make([]float32, cfg.HiddenDim)
}

// Rows returns the number of live streams.
func (f *Fleet32) Rows() int { return f.n }

// Admit adds a stream with zero initial state and returns its row
// index (see Fleet.Admit).
func (f *Fleet32) Admit() int {
	if f.n == f.cap {
		f.alloc(2 * f.cap)
	}
	row := f.n
	f.n++
	hd := f.net.Cfg.HiddenDim
	for l := range f.h {
		clear(f.h[l].Row(row)[:hd])
		clear(f.c[l].Row(row)[:hd])
	}
	return row
}

// Retire removes the stream in the given row by swap-remove compaction
// (see Fleet.Retire).
func (f *Fleet32) Retire(row int) (moved int) {
	if row < 0 || row >= f.n {
		panic(fmt.Sprintf("nn: Fleet32.Retire row %d of %d", row, f.n))
	}
	last := f.n - 1
	moved = -1
	if row != last {
		for l := range f.h {
			copy(f.h[l].Row(row), f.h[l].Row(last))
			copy(f.c[l].Row(row), f.c[l].Row(last))
		}
		moved = last
	}
	f.n = last
	return moved
}

// InputRow returns the i-th float64 staging buffer for the next Step
// (slot i feeds rows[i]); Step narrows it to f32 internally. The
// caller must fully overwrite it before Step.
func (f *Fleet32) InputRow(i int) []float64 { return f.x.Row(i) }

func viewRows32(v *mat.Dense32, m *mat.Dense32, k int) *mat.Dense32 {
	v.Rows, v.Cols = k, m.Cols
	v.Data = m.Data[:k*m.Cols]
	return v
}

func viewRow32(v *mat.Dense32, m *mat.Dense32, i int) *mat.Dense32 {
	v.Rows, v.Cols = 1, m.Cols
	v.Data = m.Data[i*m.Cols : (i+1)*m.Cols]
	return v
}

// Step advances the streams in rows[i] by one LSTM step on the f32
// path and returns the [len(rows) x OutputDim] logits widened to
// float64 (valid until the next Step). The schedule mirrors
// Fleet.Step; per stream the result is deterministic and independent
// of which other streams share the batch.
func (f *Fleet32) Step(rows []int) *mat.Dense {
	k := len(rows)
	if k == 0 {
		return viewRows(&f.yv, f.y, 0)
	}
	net := f.net
	hd := net.Cfg.HiddenDim

	// Gather the subset's state into contiguous rows.
	for l := range f.h {
		gh, gc := f.gh[l], f.gc[l]
		hl, cl := f.h[l], f.c[l]
		for i, r := range rows {
			copy(gh.Row(i), hl.Row(r))
			copy(gc.Row(i), cl.Row(r))
		}
	}

	// Narrow the staged f64 inputs once; the one-hot and bounded-scalar
	// encodings the decode path feeds are exactly representable, so this
	// rounds nothing in practice.
	in64 := viewRows(&f.xv, f.x, k)
	for i := 0; i < len(in64.Data); i++ {
		f.x32.Data[i] = float32(in64.Data[i])
	}

	in := viewRows32(&f.x32v, f.x32, k)
	Z := viewRows32(&f.zv, f.z, k)
	for l, layer := range net.layers {
		var pw *packedLayer32
		if f.panels != nil {
			pw = &f.panels.layers[l]
		}
		Z.Zero()
		if layer.first {
			// Same per-row sparse-vs-dense dispatch as Fleet, decided on
			// the staged f64 row (identical nonzero pattern). Sparse rows
			// read the unpacked matrix; dense rows take the panel.
			for i := 0; i < k; i++ {
				xr64 := viewRow(&f.rx, in64, i)
				xr := viewRow32(&f.rx32, in, i)
				zr := viewRow32(&f.rz32, Z, i)
				if sparseEnough(xr64) {
					mat.MulAddSparse32(zr, xr, layer.wx)
				} else if pw != nil {
					mat.MulAddPacked32(zr, xr, pw.wx)
				} else {
					mat.MulAddBatched32(zr, xr, layer.wx)
				}
			}
		} else if pw != nil {
			mat.MulAddPacked32(Z, in, pw.wx)
		} else {
			mat.MulAddBatched32(Z, in, layer.wx)
		}
		H := viewRows32(&f.ghv[l], f.gh[l], k)
		C := viewRows32(&f.gcv[l], f.gc[l], k)
		if pw != nil {
			// Packed recurrent GEMM with bias + gate activations fused
			// into the tile epilogue (pack.go), then the cell/hidden
			// update. Identical bits to the unpacked schedule.
			mat.MulAddPackedEpi32(Z, H, pw.wh, f.epis[l])
			for i := 0; i < k; i++ {
				zrow := Z.Row(i)
				hrow, crow := H.Row(i), C.Row(i)
				for j := 0; j < hd; j++ {
					crow[j] = zrow[hd+j]*crow[j] + zrow[j]*zrow[2*hd+j]
				}
				mat.TanhSlice32(f.tc32, crow[:hd])
				for j := 0; j < hd; j++ {
					hrow[j] = zrow[3*hd+j] * f.tc32[j]
				}
			}
			in = H
			continue
		}
		mat.MulAddBatched32(Z, H, layer.wh)
		mat.AddBiasRows32(Z, layer.b)
		// Gate nonlinearities: native f32 activations in place on each
		// gate segment (mat/act32.go; eight lanes on amd64, bit-identical
		// portable fallback), then the cell/hidden update in plain f32.
		for i := 0; i < k; i++ {
			zrow := Z.Row(i)
			hrow, crow := H.Row(i), C.Row(i)
			mat.SigmoidSlice32(zrow[:2*hd], zrow[:2*hd])         // i and f gates
			mat.TanhSlice32(zrow[2*hd:3*hd], zrow[2*hd:3*hd])    // g gate
			mat.SigmoidSlice32(zrow[3*hd:4*hd], zrow[3*hd:4*hd]) // o gate
			for j := 0; j < hd; j++ {
				crow[j] = zrow[hd+j]*crow[j] + zrow[j]*zrow[2*hd+j]
			}
			mat.TanhSlice32(f.tc32, crow[:hd])
			for j := 0; j < hd; j++ {
				hrow[j] = zrow[3*hd+j] * f.tc32[j]
			}
		}
		in = H
	}
	Y := viewRows32(&f.y32v, f.y32, k)
	Y.Zero()
	if f.panels != nil {
		mat.MulAddPackedEpi32(Y, in, f.panels.wy, f.headEpi)
	} else {
		mat.MulAddBatched32(Y, in, net.wy)
		mat.AddBiasRows32(Y, net.by)
	}

	// Scatter the advanced state back to the streams' home rows.
	for l := range f.h {
		gh, gc := f.gh[l], f.gc[l]
		hl, cl := f.h[l], f.c[l]
		for i, r := range rows {
			copy(hl.Row(r), gh.Row(i))
			copy(cl.Row(r), gc.Row(i))
		}
	}

	// Widen the logits for the precision-blind consumers (softmax,
	// sampling, and tracing all stay f64).
	out := viewRows(&f.yv, f.y, k)
	for i, v := range Y.Data {
		out.Data[i] = float64(v)
	}
	return out
}
