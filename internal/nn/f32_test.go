package nn

import (
	"math"
	"testing"

	"repro/internal/par"
	"repro/internal/rng"
)

// TestFleet32BatchCompositionInvariant drives each stream through a
// shared Fleet32 in deterministic varying subsets and through a
// dedicated single-stream Fleet32, and asserts bit-identical logits:
// the f32 path trades bit-parity with f64, never determinism or
// batch-composition invariance.
func TestFleet32BatchCompositionInvariant(t *testing.T) {
	net32 := fleetTestNet().Convert32()
	const streams = 6
	f := net32.NewFleet32(streams)
	solo := make([]*Fleet32, streams)
	rows := make([]int, streams)
	for s := 0; s < streams; s++ {
		rows[s] = f.Admit()
		solo[s] = net32.NewFleet32(1)
		solo[s].Admit()
	}
	steps := make([]int, streams)
	pick := rng.New(99)
	for round := 0; round < 60; round++ {
		var sub []int
		for s := 0; s < streams; s++ {
			if round == 0 || pick.Float64() < 0.6 {
				sub = append(sub, s)
			}
		}
		batch := make([]int, len(sub))
		for i, s := range sub {
			batch[i] = rows[s]
			fleetInput(f.InputRow(i), s, steps[s])
		}
		y := f.Step(batch)
		for i, s := range sub {
			fleetInput(solo[s].InputRow(0), s, steps[s])
			want := solo[s].Step([]int{0})
			got := y.Row(i)
			for j := range want.Row(0) {
				if math.Float64bits(got[j]) != math.Float64bits(want.Row(0)[j]) {
					t.Fatalf("round %d stream %d logit %d: batched %v, solo %v",
						round, s, j, got[j], want.Row(0)[j])
				}
			}
			steps[s]++
		}
	}
}

// TestFleet32TracksF64 bounds the f32 fleet's logit divergence from the
// bit-exact f64 fleet over a multi-step decode. This is a smoke bound
// on raw logits (the serving-level distribution tolerance is validated
// in core.ValidateF32); f32 weights carry ~1e-7 relative error and the
// gate nonlinearities are contraction maps, so drift stays small over
// any window the decode path uses.
func TestFleet32TracksF64(t *testing.T) {
	net := fleetTestNet()
	net32 := net.Convert32()
	const streams = 4
	f64fleet := net.NewFleet(streams)
	f32fleet := net32.NewFleet32(streams)
	batch := make([]int, streams)
	for s := 0; s < streams; s++ {
		batch[s] = f64fleet.Admit()
		f32fleet.Admit()
	}
	const tol = 1e-4
	for round := 0; round < 96; round++ {
		for i := range batch {
			fleetInput(f64fleet.InputRow(i), i, round)
			fleetInput(f32fleet.InputRow(i), i, round)
		}
		y64 := f64fleet.Step(batch)
		y32 := f32fleet.Step(batch)
		for i := range batch {
			r64, r32 := y64.Row(i), y32.Row(i)
			for j := range r64 {
				if d := math.Abs(r64[j] - r32[j]); d > tol || math.IsNaN(d) {
					t.Fatalf("round %d stream %d logit %d: f64 %v f32 %v (|Δ|=%g > %g)",
						round, i, j, r64[j], r32[j], d, tol)
				}
			}
		}
	}
}

// TestFleet32RetireCompaction mirrors the f64 compaction test: retire
// first/middle/last rows and check survivors keep producing logits
// bit-identical to their dedicated single-stream reference fleets.
func TestFleet32RetireCompaction(t *testing.T) {
	net32 := fleetTestNet().Convert32()
	const streams = 5
	f := net32.NewFleet32(2) // force growth too
	solo := make([]*Fleet32, streams)
	rows := make([]int, streams)
	owner := make(map[int]int)
	for s := 0; s < streams; s++ {
		rows[s] = f.Admit()
		owner[rows[s]] = s
		solo[s] = net32.NewFleet32(1)
		solo[s].Admit()
	}
	live := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	steps := make([]int, streams)

	stepAll := func() {
		t.Helper()
		var sub []int
		for s := 0; s < streams; s++ {
			if live[s] {
				sub = append(sub, s)
			}
		}
		batch := make([]int, len(sub))
		for i, s := range sub {
			batch[i] = rows[s]
			fleetInput(f.InputRow(i), s, steps[s])
		}
		y := f.Step(batch)
		for i, s := range sub {
			fleetInput(solo[s].InputRow(0), s, steps[s])
			want := solo[s].Step([]int{0}).Row(0)
			for j := range want {
				if y.Row(i)[j] != want[j] {
					t.Fatalf("stream %d logit %d: fleet %v, solo %v", s, j, y.Row(i)[j], want[j])
				}
			}
			steps[s]++
		}
	}
	retire := func(s int) {
		t.Helper()
		moved := f.Retire(rows[s])
		if moved >= 0 {
			o := owner[moved]
			rows[o] = rows[s]
			owner[rows[s]] = o
			delete(owner, moved)
		} else {
			delete(owner, rows[s])
		}
		live[s] = false
	}

	stepAll()
	retire(0)
	stepAll()
	retire(2)
	stepAll()
	lastRow := f.Rows() - 1
	retire(owner[lastRow])
	stepAll()
	if f.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", f.Rows())
	}
}

// TestFleet32StepAllocFree pins the f32 decode step at zero
// steady-state allocations.
func TestFleet32StepAllocFree(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	net32 := fleetTestNet().Convert32()
	const streams = 8
	f := net32.NewFleet32(streams)
	batch := make([]int, streams)
	for s := 0; s < streams; s++ {
		batch[s] = f.Admit()
	}
	for i := range batch {
		fleetInput(f.InputRow(i), i, 0)
	}
	f.Step(batch) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		for i := range batch {
			in := f.InputRow(i)
			clear(in)
			if i%2 == 1 {
				in[i%len(in)] = 1
			} else {
				for j := range in {
					in[j] = float64(i*7+j) * 0.125
				}
			}
		}
		f.Step(batch)
	}); allocs != 0 {
		t.Fatalf("f32 fleet step allocates %v times, want 0", allocs)
	}
}
