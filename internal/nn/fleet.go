package nn

import (
	"fmt"
	"unsafe"

	"repro/internal/mat"
)

// Fleet is the batched stateful counterpart of StepForward: it owns
// per-layer hidden/cell state for many concurrent decode streams as
// row slices of shared slabs and advances any subset of them through
// one set of batched step GEMMs (DESIGN.md §6.2). Streams are admitted
// with Admit (a row index) and retired with Retire, which compacts the
// slabs by swap-remove so every batched GEMM runs over contiguous
// rows.
//
// Per stream, a Fleet step is bit-identical to StepForward on a
// dedicated State: every GEMM kernel — including the vectorized
// MulAddBatched — accumulates each output element's k-terms in
// ascending order regardless of batch size, blocking, or worker count;
// the vectorized gate activations compute exactly the scalar loop's
// operations (vecact.go); and layer 0 re-applies StepForward's
// sparse-row dispatch so skip-zero kernel choices match row for row.
//
// A Fleet is not safe for concurrent use; the decode scheduler in
// internal/core drives it from one goroutine. Distinct Fleets, however,
// may be stepped concurrently (the sharded decode engine runs one per
// shard): every slab and scratch buffer is owned by its Fleet alone and
// starts on a 64-byte boundary (alignedDense), so two shards never
// share — truly or falsely — a cache line. Steady-state Step calls
// allocate nothing (scratch grows only when Admit outgrows capacity).
type Fleet struct {
	net *LSTM
	n   int // live streams (rows 0..n-1 of h/c)
	cap int // slab capacity in rows

	// Persistent per-stream state, one row per stream, per layer.
	h, c []*mat.Dense // [cap x H]

	// Step scratch: gathered inputs/state for the stepping subset, all
	// sized to cap and viewed down to the subset size per call.
	x      *mat.Dense   // gathered step inputs [cap x InputDim]
	gh, gc []*mat.Dense // gathered per-layer state [cap x H]
	z      *mat.Dense   // gate pre-activations [cap x 4H]
	y      *mat.Dense   // head output [cap x OutputDim]

	// Preallocated view headers so Step performs no allocation: k-row
	// prefixes of the scratch slabs plus 1-row cursors for the layer-0
	// per-row dispatch.
	xv, zv, yv mat.Dense
	ghv, gcv   []mat.Dense
	rx, rz     mat.Dense

	// Gate-loop scratch for the vectorized activations: tanh exp
	// arguments and the tanh(c) output, one hidden row each.
	ts, tc []float64

	// Packed serving weights and the fused tile epilogues bound to them
	// (pack.go); nil on an unpacked fleet. Set by NewFleetPacked only —
	// the epilogue closures are prebuilt there so Step stays
	// allocation-free.
	panels  *PackedLSTM
	epis    []func(j0, j1 int)
	headEpi func(j0, j1 int)
}

// NewFleet returns an empty fleet with initial capacity for the given
// number of streams (it grows as needed).
func (n *LSTM) NewFleet(capacity int) *Fleet {
	if capacity < 1 {
		capacity = 1
	}
	f := &Fleet{net: n}
	f.alloc(capacity)
	return f
}

// cacheLine is the assumed cache-line (and AVX-friendly) granule for
// slab alignment.
const cacheLine = 64

// alignedDense returns an r x c Dense whose backing array starts on a
// cacheLine boundary. The Go allocator only guarantees 8-byte alignment
// for []float64, which lets two small slabs from different fleets land
// on the same line; over-allocating by one line and slicing at the
// aligned offset removes that false sharing between concurrently
// stepped shards. Alignment never changes values, only addresses, so
// decode bytes are unaffected.
func alignedDense(r, c int) *mat.Dense {
	n := r * c
	const pad = cacheLine / 8 // float64s per line
	raw := make([]float64, n+pad)
	off := 0
	if n > 0 {
		addr := uintptr(unsafe.Pointer(&raw[0]))
		if rem := addr % cacheLine; rem != 0 {
			off = int((cacheLine - rem) / 8)
		}
	}
	return mat.FromSlice(r, c, raw[off:off+n])
}

// alloc (re)creates the slabs at the given row capacity, preserving
// the first f.n rows of the persistent state. Every slab is allocated
// cache-line-aligned and owned exclusively by this fleet, so per-shard
// fleets stepped in parallel contend on nothing.
func (f *Fleet) alloc(capacity int) {
	cfg := f.net.Cfg
	nl := len(f.net.layers)
	h := make([]*mat.Dense, nl)
	c := make([]*mat.Dense, nl)
	for l := 0; l < nl; l++ {
		h[l] = alignedDense(capacity, cfg.HiddenDim)
		c[l] = alignedDense(capacity, cfg.HiddenDim)
		if f.n > 0 {
			copy(h[l].Data, f.h[l].Data[:f.n*cfg.HiddenDim])
			copy(c[l].Data, f.c[l].Data[:f.n*cfg.HiddenDim])
		}
	}
	f.h, f.c = h, c
	f.cap = capacity
	f.x = alignedDense(capacity, cfg.InputDim)
	f.gh = make([]*mat.Dense, nl)
	f.gc = make([]*mat.Dense, nl)
	for l := 0; l < nl; l++ {
		f.gh[l] = alignedDense(capacity, cfg.HiddenDim)
		f.gc[l] = alignedDense(capacity, cfg.HiddenDim)
	}
	f.z = alignedDense(capacity, 4*cfg.HiddenDim)
	f.y = alignedDense(capacity, cfg.OutputDim)
	f.ghv = make([]mat.Dense, nl)
	f.gcv = make([]mat.Dense, nl)
	f.ts = make([]float64, cfg.HiddenDim)
	f.tc = make([]float64, cfg.HiddenDim)
}

// Rows returns the number of live streams.
func (f *Fleet) Rows() int { return f.n }

// Admit adds a stream with zero initial state and returns its row
// index. The index stays valid until the stream retires or a later
// Retire moves it (see Retire's return value).
func (f *Fleet) Admit() int {
	if f.n == f.cap {
		f.alloc(2 * f.cap)
	}
	row := f.n
	f.n++
	hd := f.net.Cfg.HiddenDim
	for l := range f.h {
		clear(f.h[l].Row(row)[:hd])
		clear(f.c[l].Row(row)[:hd])
	}
	return row
}

// Retire removes the stream in the given row. To keep the live rows
// contiguous it moves the last live row into the freed slot
// (swap-remove compaction) and returns that row's previous index so
// the caller can re-point whichever stream owned it; -1 means nothing
// moved. State copies are exact, so compaction never perturbs decode
// results.
func (f *Fleet) Retire(row int) (moved int) {
	if row < 0 || row >= f.n {
		panic(fmt.Sprintf("nn: Fleet.Retire row %d of %d", row, f.n))
	}
	last := f.n - 1
	moved = -1
	if row != last {
		for l := range f.h {
			copy(f.h[l].Row(row), f.h[l].Row(last))
			copy(f.c[l].Row(row), f.c[l].Row(last))
		}
		moved = last
	}
	f.n = last
	return moved
}

// InputRow returns the i-th input buffer for the next Step call (slot
// i feeds rows[i]). The caller must fully overwrite it before Step.
func (f *Fleet) InputRow(i int) []float64 { return f.x.Row(i) }

// viewRows points header v at the first k rows of m.
func viewRows(v *mat.Dense, m *mat.Dense, k int) *mat.Dense {
	v.Rows, v.Cols = k, m.Cols
	v.Data = m.Data[:k*m.Cols]
	return v
}

// viewRow points header v at row i of m.
func viewRow(v *mat.Dense, m *mat.Dense, i int) *mat.Dense {
	v.Rows, v.Cols = 1, m.Cols
	v.Data = m.Data[i*m.Cols : (i+1)*m.Cols]
	return v
}

// Step advances the streams in rows[i] (i = 0..len(rows)-1) by one
// LSTM step, consuming input slot i for rows[i], and returns the
// [len(rows) x OutputDim] logits (row i for rows[i]; valid until the
// next Step). Rows not listed are untouched. The subset is gathered
// into contiguous scratch, advanced through shared batched GEMMs, and
// scattered back; per stream the result is bit-identical to
// StepForward.
func (f *Fleet) Step(rows []int) *mat.Dense {
	k := len(rows)
	if k == 0 {
		return viewRows(&f.yv, f.y, 0)
	}
	net := f.net
	hd := net.Cfg.HiddenDim

	// Gather the subset's state into contiguous rows.
	for l := range f.h {
		gh, gc := f.gh[l], f.gc[l]
		hl, cl := f.h[l], f.c[l]
		for i, r := range rows {
			copy(gh.Row(i), hl.Row(r))
			copy(gc.Row(i), cl.Row(r))
		}
	}

	in := viewRows(&f.xv, f.x, k)
	Z := viewRows(&f.zv, f.z, k)
	for l, layer := range net.layers {
		var pw *packedLayer
		if f.panels != nil {
			pw = &f.panels.layers[l]
		}
		Z.Zero()
		if layer.first {
			// Replicate StepForward's per-row kernel dispatch: each
			// stream's input chooses sparse vs dense exactly as its
			// serial step would. Sparse rows read the unpacked matrix
			// (the skip-zero kernel needs row-major B); dense rows take
			// the panel, which computes identical bits.
			for i := 0; i < k; i++ {
				xr := viewRow(&f.rx, in, i)
				zr := viewRow(&f.rz, Z, i)
				if sparseEnough(xr) {
					mat.MulAddSparse(zr, xr, layer.wx.Value)
				} else if pw != nil {
					mat.MulAddPacked(zr, xr, pw.wx)
				} else {
					mat.MulAddBatched(zr, xr, layer.wx.Value)
				}
			}
		} else if pw != nil {
			mat.MulAddPacked(Z, in, pw.wx)
		} else {
			mat.MulAddBatched(Z, in, layer.wx.Value)
		}
		H := viewRows(&f.ghv[l], f.gh[l], k)
		C := viewRows(&f.gcv[l], f.gc[l], k)
		if pw != nil {
			// Packed recurrent GEMM with the bias + gate nonlinearities
			// fused into the tile epilogue (pack.go): each finished gate
			// segment is activated while still hot in L1 instead of a
			// second sweep over the whole (k x 4H) slab. Elementwise math
			// in the unpacked order — identical bits.
			mat.MulAddPackedEpi(Z, H, pw.wh, f.epis[l])
			for i := 0; i < k; i++ {
				zrow := Z.Row(i)
				hrow, crow := H.Row(i), C.Row(i)
				for j := 0; j < hd; j++ {
					crow[j] = zrow[hd+j]*crow[j] + zrow[j]*zrow[2*hd+j]
				}
				vecTanhInto(f.tc, crow, f.ts)
				for j := 0; j < hd; j++ {
					hrow[j] = zrow[3*hd+j] * f.tc[j]
				}
			}
			in = H
			continue
		}
		mat.MulAddBatched(Z, H, layer.wh.Value)
		mat.AddBiasRows(Z, layer.b.Value.Row(0))
		// Gate nonlinearities via the vectorized activations. Per
		// element these compute exactly what StepForward's scalar loop
		// computes — i/f/o sigmoids, g and cell tanhs, and the same
		// mul/add order in the c and h updates — see vecact.go.
		for i := 0; i < k; i++ {
			zrow := Z.Row(i)
			hrow, crow := H.Row(i), C.Row(i)
			vecSigmoid(zrow[:2*hd])                             // i and f gates
			vecTanhInto(zrow[2*hd:3*hd], zrow[2*hd:3*hd], f.ts) // g gate
			vecSigmoid(zrow[3*hd:])                             // o gate
			for j := 0; j < hd; j++ {
				crow[j] = zrow[hd+j]*crow[j] + zrow[j]*zrow[2*hd+j]
			}
			vecTanhInto(f.tc, crow, f.ts)
			for j := 0; j < hd; j++ {
				hrow[j] = zrow[3*hd+j] * f.tc[j]
			}
		}
		in = H
	}
	Y := viewRows(&f.yv, f.y, k)
	Y.Zero()
	if f.panels != nil {
		mat.MulAddPackedEpi(Y, in, f.panels.wy, f.headEpi)
	} else {
		mat.MulAddBatched(Y, in, net.wy.Value)
		mat.AddBiasRows(Y, net.by.Value.Row(0))
	}

	// Scatter the advanced state back to the streams' home rows.
	for l := range f.h {
		gh, gc := f.gh[l], f.gc[l]
		hl, cl := f.h[l], f.c[l]
		for i, r := range rows {
			copy(hl.Row(r), gh.Row(i))
			copy(cl.Row(r), gc.Row(i))
		}
	}
	return Y
}
