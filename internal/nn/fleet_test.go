package nn

import (
	"testing"
	"unsafe"

	"repro/internal/par"
	"repro/internal/rng"
)

func fleetTestNet() *LSTM {
	return NewLSTM(Config{InputDim: 9, HiddenDim: 8, Layers: 2, OutputDim: 5}, rng.New(7))
}

// fleetInput writes a deterministic step input for stream s at step t.
// Odd streams get one-hot rows (sparse kernel dispatch), even streams
// dense rows, so both layer-0 paths are exercised in one batch.
func fleetInput(dst []float64, s, t int) {
	clear(dst)
	if s%2 == 1 {
		dst[(s+t)%len(dst)] = 1
		return
	}
	g := rng.New(int64(1000*s + t))
	for i := range dst {
		dst[i] = g.NormFloat64()
	}
}

// TestFleetMatchesStepForward drives interleaved subsets of streams
// through Fleet.Step and asserts every logit is bit-identical to the
// same stream advanced alone via StepForward.
func TestFleetMatchesStepForward(t *testing.T) {
	net := fleetTestNet()
	const streams = 6
	f := net.NewFleet(streams)
	refs := make([]*State, streams)
	rows := make([]int, streams)
	for s := 0; s < streams; s++ {
		rows[s] = f.Admit()
		refs[s] = net.NewState(1)
	}
	steps := make([]int, streams) // per-stream step counter
	ref := make([]float64, net.Cfg.InputDim)
	pick := rng.New(99)
	for round := 0; round < 60; round++ {
		// A deterministic, varying subset: stream s steps when the
		// round's draw admits it; every stream steps in round 0.
		var sub []int
		for s := 0; s < streams; s++ {
			if round == 0 || pick.Float64() < 0.6 {
				sub = append(sub, s)
			}
		}
		batch := make([]int, len(sub))
		for i, s := range sub {
			batch[i] = rows[s]
			fleetInput(f.InputRow(i), s, steps[s])
		}
		y := f.Step(batch)
		for i, s := range sub {
			fleetInput(ref, s, steps[s])
			want := net.StepForward(ref, refs[s])
			got := y.Row(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("round %d stream %d logit %d: fleet %v, serial %v", round, s, j, got[j], want[j])
				}
			}
			steps[s]++
		}
	}
}

// TestFleetRetireCompaction retires streams mid-decode (first, middle,
// last rows) and checks the swap-remove bookkeeping: surviving streams
// keep producing StepForward-identical logits from their moved rows.
func TestFleetRetireCompaction(t *testing.T) {
	net := fleetTestNet()
	const streams = 5
	f := net.NewFleet(2) // force growth too
	refs := make([]*State, streams)
	rows := make([]int, streams)
	owner := make(map[int]int) // fleet row -> stream
	for s := 0; s < streams; s++ {
		rows[s] = f.Admit()
		owner[rows[s]] = s
		refs[s] = net.NewState(1)
	}
	live := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	steps := make([]int, streams)
	ref := make([]float64, net.Cfg.InputDim)

	stepAll := func() {
		t.Helper()
		var sub []int
		for s := 0; s < streams; s++ {
			if live[s] {
				sub = append(sub, s)
			}
		}
		batch := make([]int, len(sub))
		for i, s := range sub {
			batch[i] = rows[s]
			fleetInput(f.InputRow(i), s, steps[s])
		}
		y := f.Step(batch)
		for i, s := range sub {
			fleetInput(ref, s, steps[s])
			want := net.StepForward(ref, refs[s])
			for j := range want {
				if y.Row(i)[j] != want[j] {
					t.Fatalf("stream %d logit %d: fleet %v, serial %v", s, j, y.Row(i)[j], want[j])
				}
			}
			steps[s]++
		}
	}
	retire := func(s int) {
		t.Helper()
		moved := f.Retire(rows[s])
		if moved >= 0 {
			o := owner[moved]
			rows[o] = rows[s]
			owner[rows[s]] = o
			delete(owner, moved)
		} else {
			delete(owner, rows[s])
		}
		live[s] = false
	}

	stepAll()
	retire(0) // first row: moves the last row down
	stepAll()
	retire(2) // middle
	stepAll()
	// Retire the stream holding the last row: nothing moves.
	lastRow := f.Rows() - 1
	retire(owner[lastRow])
	stepAll()
	if f.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", f.Rows())
	}
}

// TestFleetStepAllocFree pins the batched decode step at zero
// steady-state allocations (serial kernels; the parallel fan-out
// allocates its bounded per-region scratch like every par path).
func TestFleetStepAllocFree(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	net := fleetTestNet()
	const streams = 8
	f := net.NewFleet(streams)
	batch := make([]int, streams)
	for s := 0; s < streams; s++ {
		batch[s] = f.Admit()
	}
	for i := range batch {
		fleetInput(f.InputRow(i), i, 0)
	}
	f.Step(batch) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		for i := range batch {
			// Alloc-free input refresh (fleetInput's dense branch seeds
			// an RNG, which allocates); half one-hot, half dense.
			in := f.InputRow(i)
			clear(in)
			if i%2 == 1 {
				in[i%len(in)] = 1
			} else {
				for j := range in {
					in[j] = float64(i*7+j) * 0.125
				}
			}
		}
		f.Step(batch)
	}); allocs != 0 {
		t.Fatalf("fleet step allocates %v times, want 0", allocs)
	}
}

// TestFleetSlabsCacheAligned checks every persistent and scratch slab
// of a fleet starts on a 64-byte boundary (awkward capacities
// included), so fleets owned by different decode shards can never
// falsely share a cache line — and that alignment does not perturb a
// single logit vs StepForward (covered by the Matches test running on
// the same allocator).
func TestFleetSlabsCacheAligned(t *testing.T) {
	net := fleetTestNet()
	for _, capacity := range []int{1, 2, 3, 7, 8, 64} {
		f := net.NewFleet(capacity)
		slabs := [][]float64{f.x.Data, f.z.Data, f.y.Data}
		for l := range f.h {
			slabs = append(slabs, f.h[l].Data, f.c[l].Data, f.gh[l].Data, f.gc[l].Data)
		}
		for i, s := range slabs {
			if len(s) == 0 {
				continue
			}
			if addr := uintptr(unsafe.Pointer(&s[0])); addr%cacheLine != 0 {
				t.Fatalf("capacity %d slab %d: address %#x not %d-byte aligned", capacity, i, addr, cacheLine)
			}
		}
	}
}

// TestFleetConcurrentShards steps several independently owned fleets
// concurrently through par (the sharded decode engine's access
// pattern) and checks every stream on every shard stays bit-identical
// to its serial StepForward reference. Run under -race this also pins
// the "distinct Fleets may be stepped concurrently" contract.
func TestFleetConcurrentShards(t *testing.T) {
	defer par.SetProcs(par.SetProcs(8))
	net := fleetTestNet()
	const shards = 4
	const streams = 3 // per shard
	const rounds = 30
	fleets := make([]*Fleet, shards)
	refs := make([][]*State, shards)
	bad := make([]bool, shards)
	for k := range fleets {
		fleets[k] = net.NewFleet(streams)
		refs[k] = make([]*State, streams)
		for s := 0; s < streams; s++ {
			fleets[k].Admit()
			refs[k][s] = net.NewState(1)
		}
	}
	batch := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	for round := 0; round < rounds; round++ {
		par.Do(shards, func(k int) {
			f := fleets[k]
			ref := make([]float64, net.Cfg.InputDim)
			for s := 0; s < streams; s++ {
				fleetInput(f.InputRow(s), shards*s+k, round)
			}
			y := f.Step(batch[k])
			for s := 0; s < streams; s++ {
				fleetInput(ref, shards*s+k, round)
				want := net.StepForward(ref, refs[k][s])
				got := y.Row(s)
				for j := range want {
					if got[j] != want[j] {
						bad[k] = true
					}
				}
			}
		})
	}
	for k, b := range bad {
		if b {
			t.Fatalf("shard %d diverged from serial StepForward under concurrent stepping", k)
		}
	}
}

// TestFleetAdmitZeroState checks a freshly admitted stream behaves as
// if it had a zero State even when its row previously held another
// stream's state.
func TestFleetAdmitZeroState(t *testing.T) {
	net := fleetTestNet()
	f := net.NewFleet(2)
	r0 := f.Admit()
	in := make([]float64, net.Cfg.InputDim)
	for step := 0; step < 3; step++ {
		fleetInput(f.InputRow(0), 3, step)
		f.Step([]int{r0})
	}
	f.Retire(r0)
	r1 := f.Admit() // same slab row as r0
	ref := net.NewState(1)
	fleetInput(f.InputRow(0), 4, 0)
	y := f.Step([]int{r1})
	fleetInput(in, 4, 0)
	want := net.StepForward(in, ref)
	for j := range want {
		if y.Row(0)[j] != want[j] {
			t.Fatalf("logit %d: %v vs %v", j, y.Row(0)[j], want[j])
		}
	}
}
