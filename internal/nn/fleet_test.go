package nn

import (
	"testing"

	"repro/internal/par"
	"repro/internal/rng"
)

func fleetTestNet() *LSTM {
	return NewLSTM(Config{InputDim: 9, HiddenDim: 8, Layers: 2, OutputDim: 5}, rng.New(7))
}

// fleetInput writes a deterministic step input for stream s at step t.
// Odd streams get one-hot rows (sparse kernel dispatch), even streams
// dense rows, so both layer-0 paths are exercised in one batch.
func fleetInput(dst []float64, s, t int) {
	clear(dst)
	if s%2 == 1 {
		dst[(s+t)%len(dst)] = 1
		return
	}
	g := rng.New(int64(1000*s + t))
	for i := range dst {
		dst[i] = g.NormFloat64()
	}
}

// TestFleetMatchesStepForward drives interleaved subsets of streams
// through Fleet.Step and asserts every logit is bit-identical to the
// same stream advanced alone via StepForward.
func TestFleetMatchesStepForward(t *testing.T) {
	net := fleetTestNet()
	const streams = 6
	f := net.NewFleet(streams)
	refs := make([]*State, streams)
	rows := make([]int, streams)
	for s := 0; s < streams; s++ {
		rows[s] = f.Admit()
		refs[s] = net.NewState(1)
	}
	steps := make([]int, streams) // per-stream step counter
	ref := make([]float64, net.Cfg.InputDim)
	pick := rng.New(99)
	for round := 0; round < 60; round++ {
		// A deterministic, varying subset: stream s steps when the
		// round's draw admits it; every stream steps in round 0.
		var sub []int
		for s := 0; s < streams; s++ {
			if round == 0 || pick.Float64() < 0.6 {
				sub = append(sub, s)
			}
		}
		batch := make([]int, len(sub))
		for i, s := range sub {
			batch[i] = rows[s]
			fleetInput(f.InputRow(i), s, steps[s])
		}
		y := f.Step(batch)
		for i, s := range sub {
			fleetInput(ref, s, steps[s])
			want := net.StepForward(ref, refs[s])
			got := y.Row(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("round %d stream %d logit %d: fleet %v, serial %v", round, s, j, got[j], want[j])
				}
			}
			steps[s]++
		}
	}
}

// TestFleetRetireCompaction retires streams mid-decode (first, middle,
// last rows) and checks the swap-remove bookkeeping: surviving streams
// keep producing StepForward-identical logits from their moved rows.
func TestFleetRetireCompaction(t *testing.T) {
	net := fleetTestNet()
	const streams = 5
	f := net.NewFleet(2) // force growth too
	refs := make([]*State, streams)
	rows := make([]int, streams)
	owner := make(map[int]int) // fleet row -> stream
	for s := 0; s < streams; s++ {
		rows[s] = f.Admit()
		owner[rows[s]] = s
		refs[s] = net.NewState(1)
	}
	live := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	steps := make([]int, streams)
	ref := make([]float64, net.Cfg.InputDim)

	stepAll := func() {
		t.Helper()
		var sub []int
		for s := 0; s < streams; s++ {
			if live[s] {
				sub = append(sub, s)
			}
		}
		batch := make([]int, len(sub))
		for i, s := range sub {
			batch[i] = rows[s]
			fleetInput(f.InputRow(i), s, steps[s])
		}
		y := f.Step(batch)
		for i, s := range sub {
			fleetInput(ref, s, steps[s])
			want := net.StepForward(ref, refs[s])
			for j := range want {
				if y.Row(i)[j] != want[j] {
					t.Fatalf("stream %d logit %d: fleet %v, serial %v", s, j, y.Row(i)[j], want[j])
				}
			}
			steps[s]++
		}
	}
	retire := func(s int) {
		t.Helper()
		moved := f.Retire(rows[s])
		if moved >= 0 {
			o := owner[moved]
			rows[o] = rows[s]
			owner[rows[s]] = o
			delete(owner, moved)
		} else {
			delete(owner, rows[s])
		}
		live[s] = false
	}

	stepAll()
	retire(0) // first row: moves the last row down
	stepAll()
	retire(2) // middle
	stepAll()
	// Retire the stream holding the last row: nothing moves.
	lastRow := f.Rows() - 1
	retire(owner[lastRow])
	stepAll()
	if f.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", f.Rows())
	}
}

// TestFleetStepAllocFree pins the batched decode step at zero
// steady-state allocations (serial kernels; the parallel fan-out
// allocates its bounded per-region scratch like every par path).
func TestFleetStepAllocFree(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	net := fleetTestNet()
	const streams = 8
	f := net.NewFleet(streams)
	batch := make([]int, streams)
	for s := 0; s < streams; s++ {
		batch[s] = f.Admit()
	}
	for i := range batch {
		fleetInput(f.InputRow(i), i, 0)
	}
	f.Step(batch) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		for i := range batch {
			// Alloc-free input refresh (fleetInput's dense branch seeds
			// an RNG, which allocates); half one-hot, half dense.
			in := f.InputRow(i)
			clear(in)
			if i%2 == 1 {
				in[i%len(in)] = 1
			} else {
				for j := range in {
					in[j] = float64(i*7+j) * 0.125
				}
			}
		}
		f.Step(batch)
	}); allocs != 0 {
		t.Fatalf("fleet step allocates %v times, want 0", allocs)
	}
}

// TestFleetAdmitZeroState checks a freshly admitted stream behaves as
// if it had a zero State even when its row previously held another
// stream's state.
func TestFleetAdmitZeroState(t *testing.T) {
	net := fleetTestNet()
	f := net.NewFleet(2)
	r0 := f.Admit()
	in := make([]float64, net.Cfg.InputDim)
	for step := 0; step < 3; step++ {
		fleetInput(f.InputRow(0), 3, step)
		f.Step([]int{r0})
	}
	f.Retire(r0)
	r1 := f.Admit() // same slab row as r0
	ref := net.NewState(1)
	fleetInput(f.InputRow(0), 4, 0)
	y := f.Step([]int{r1})
	fleetInput(in, 4, 0)
	want := net.StepForward(in, ref)
	for j := range want {
		if y.Row(0)[j] != want[j] {
			t.Fatalf("logit %d: %v vs %v", j, y.Row(0)[j], want[j])
		}
	}
}
