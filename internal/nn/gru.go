package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// GRU is a stacked gated-recurrent-unit network with a linear output
// head — a lighter-weight alternative recurrent architecture (§7 of the
// paper discusses architecture choice; the GRU ablation bench compares
// it against the LSTM). The API mirrors LSTM: Forward/Backward over
// step-major minibatches, StepForward for generation.
type GRU struct {
	Cfg    Config
	layers []*gruLayer
	wy     *Param
	by     *Param
	params []*Param
}

// gruLayer holds one layer's parameters. Gate order within the 3H
// dimension is reset (r), update (z), candidate (n).
type gruLayer struct {
	in, hidden int
	first      bool   // layer 0: input may be a sparse feature encoding
	wx         *Param // [in x 3H]
	wh         *Param // [H x 3H]
	b          *Param // [1 x 3H]
}

// NewGRU constructs a GRU network with Xavier-uniform weights.
func NewGRU(cfg Config, g *rng.RNG) *GRU {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := &GRU{Cfg: cfg}
	in := cfg.InputDim
	for l := 0; l < cfg.Layers; l++ {
		layer := &gruLayer{
			in:     in,
			hidden: cfg.HiddenDim,
			first:  l == 0,
			wx:     newParam(fmt.Sprintf("g%d.wx", l), in, 3*cfg.HiddenDim),
			wh:     newParam(fmt.Sprintf("g%d.wh", l), cfg.HiddenDim, 3*cfg.HiddenDim),
			b:      newParam(fmt.Sprintf("g%d.b", l), 1, 3*cfg.HiddenDim),
		}
		xavierInit(layer.wx.Value, in, cfg.HiddenDim, g)
		xavierInit(layer.wh.Value, cfg.HiddenDim, cfg.HiddenDim, g)
		n.layers = append(n.layers, layer)
		n.params = append(n.params, layer.wx, layer.wh, layer.b)
		in = cfg.HiddenDim
	}
	n.wy = newParam("ghead.wy", cfg.HiddenDim, cfg.OutputDim)
	n.by = newParam("ghead.by", 1, cfg.OutputDim)
	xavierInit(n.wy.Value, cfg.HiddenDim, cfg.OutputDim, g)
	n.params = append(n.params, n.wy, n.by)
	return n
}

// Params returns all learnable parameters.
func (n *GRU) Params() []*Param { return n.params }

// NumParams returns the scalar parameter count.
func (n *GRU) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += len(p.Value.Data)
	}
	return total
}

// ZeroGrads clears gradients.
func (n *GRU) ZeroGrads() {
	for _, p := range n.params {
		p.ZeroGrad()
	}
}

// GRUState holds per-layer hidden activations.
type GRUState struct {
	H []*mat.Dense
}

// NewState returns a zero state for batch size b.
func (n *GRU) NewState(b int) *GRUState {
	s := &GRUState{}
	for range n.layers {
		s.H = append(s.H, mat.NewDense(b, n.Cfg.HiddenDim))
	}
	return s
}

// gruStepCache stores one step's activations for backward.
type gruStepCache struct {
	x       *mat.Dense
	hPrev   *mat.Dense
	r, z, c *mat.Dense // gate activations; c is the candidate (tanh)
	h       *mat.Dense // output hidden state
	// rh = r ⊙ hPrev, the input to the candidate's recurrent term.
	rh *mat.Dense
}

// GRUCache is the forward cache.
type GRUCache struct {
	steps  [][]*gruStepCache
	hidden []*mat.Dense
	batch  int
}

// T returns the cached step count.
func (c *GRUCache) T() int { return len(c.steps) }

// Forward runs the network over xs, mirroring LSTM.Forward.
func (n *GRU) Forward(xs []*mat.Dense, st *GRUState) ([]*mat.Dense, *GRUCache) {
	if len(xs) == 0 {
		return nil, &GRUCache{}
	}
	b := xs[0].Rows
	if st == nil {
		st = n.NewState(b)
	}
	cache := &GRUCache{batch: b}
	ys := make([]*mat.Dense, len(xs))
	for t, x := range xs {
		layerIn := x
		stepCaches := make([]*gruStepCache, len(n.layers))
		for l, layer := range n.layers {
			sc := layer.forward(layerIn, st.H[l])
			stepCaches[l] = sc
			st.H[l] = sc.h
			layerIn = sc.h
		}
		cache.steps = append(cache.steps, stepCaches)
		cache.hidden = append(cache.hidden, layerIn)
		y := mat.NewDense(b, n.Cfg.OutputDim)
		mat.MulAdd(y, layerIn, n.wy.Value)
		mat.AddBiasRows(y, n.by.Value.Row(0))
		ys[t] = y
	}
	return ys, cache
}

func (l *gruLayer) forward(x, hPrev *mat.Dense) *gruStepCache {
	b := x.Rows
	h := l.hidden
	// zx = x Wx + bias; zh = hPrev Wh (candidate recurrent term needs
	// r applied before Wh's n-block, so compute blocks separately).
	zx := mat.NewDense(b, 3*h)
	if l.first && sparseEnough(x) {
		mat.MulAddSparse(zx, x, l.wx.Value)
	} else {
		mat.MulAdd(zx, x, l.wx.Value)
	}
	mat.AddBiasRows(zx, l.b.Value.Row(0))
	zh := mat.NewDense(b, 3*h)
	mat.MulAdd(zh, hPrev, l.wh.Value)
	sc := &gruStepCache{
		x: x, hPrev: hPrev,
		r: mat.NewDense(b, h), z: mat.NewDense(b, h), c: mat.NewDense(b, h),
		h: mat.NewDense(b, h), rh: mat.NewDense(b, h),
	}
	for row := 0; row < b; row++ {
		zxr, zhr := zx.Row(row), zh.Row(row)
		rr, zr, cr := sc.r.Row(row), sc.z.Row(row), sc.c.Row(row)
		hp, hr, rhr := hPrev.Row(row), sc.h.Row(row), sc.rh.Row(row)
		for j := 0; j < h; j++ {
			rr[j] = sigmoid(zxr[j] + zhr[j])
			zr[j] = sigmoid(zxr[h+j] + zhr[h+j])
		}
		// Candidate: n = tanh(zx_n + r ⊙ zh_n). Note rh caches r⊙hPrev
		// only for the gradient of Wh's n-block, which sees r⊙hPrev...
		// in this formulation the recurrent term is r ⊙ (hPrev Wh_n),
		// i.e. the gate applies after the matmul (the "v3" GRU variant,
		// also used by cuDNN), so cache r and zh_n instead.
		for j := 0; j < h; j++ {
			rhr[j] = zhr[2*h+j] // stash zh_n for backward
			cr[j] = math.Tanh(zxr[2*h+j] + rr[j]*zhr[2*h+j])
			hr[j] = (1-zr[j])*cr[j] + zr[j]*hp[j]
		}
	}
	return sc
}

// Backward runs truncated backpropagation through time.
func (n *GRU) Backward(cache *GRUCache, dys []*mat.Dense) {
	if len(dys) != cache.T() {
		panic(fmt.Sprintf("nn: GRU Backward got %d grads for %d steps", len(dys), cache.T()))
	}
	if cache.T() == 0 {
		return
	}
	b := cache.batch
	h := n.Cfg.HiddenDim
	nl := len(n.layers)
	dh := make([]*mat.Dense, nl)
	for l := range dh {
		dh[l] = mat.NewDense(b, h)
	}
	dzx := mat.NewDense(b, 3*h)
	dzh := mat.NewDense(b, 3*h)
	for t := cache.T() - 1; t >= 0; t-- {
		dy := dys[t]
		hTop := cache.hidden[t]
		mat.MulATB(n.wy.Grad, hTop, dy)
		mat.SumRows(n.by.Grad.Row(0), dy)
		mat.MulABT(dh[nl-1], dy, n.wy.Value)
		for l := nl - 1; l >= 0; l-- {
			sc := cache.steps[t][l]
			layer := n.layers[l]
			dhl := dh[l]
			dzx.Zero()
			dzh.Zero()
			dhPrevGate := mat.NewDense(b, h)
			for row := 0; row < b; row++ {
				dhr := dhl.Row(row)
				rr, zr, cr := sc.r.Row(row), sc.z.Row(row), sc.c.Row(row)
				hp, zhn := sc.hPrev.Row(row), sc.rh.Row(row)
				dzxr, dzhr := dzx.Row(row), dzh.Row(row)
				dhp := dhPrevGate.Row(row)
				for j := 0; j < h; j++ {
					dH := dhr[j]
					// h = (1-z)*c + z*hPrev
					dz := dH * (hp[j] - cr[j])
					dc := dH * (1 - zr[j])
					dhp[j] += dH * zr[j]
					// c = tanh(zx_n + r*zh_n)
					dPre := dc * (1 - cr[j]*cr[j])
					dzxr[2*h+j] = dPre
					dr := dPre * zhn[j]
					dzhr[2*h+j] = dPre * rr[j]
					// gates
					dzr := dz * zr[j] * (1 - zr[j])
					dzxr[h+j] = dzr
					dzhr[h+j] = dzr
					drr := dr * rr[j] * (1 - rr[j])
					dzxr[j] = drr
					dzhr[j] = drr
				}
			}
			if layer.first && sparseEnough(sc.x) {
				mat.MulATBSparse(layer.wx.Grad, sc.x, dzx)
			} else {
				mat.MulATB(layer.wx.Grad, sc.x, dzx)
			}
			mat.SumRows(layer.b.Grad.Row(0), dzx)
			mat.MulATB(layer.wh.Grad, sc.hPrev, dzh)
			// dhPrev = gate term + dzh Whᵀ.
			dhl.Zero()
			mat.MulABT(dhl, dzh, layer.wh.Value)
			for i := range dhl.Data {
				dhl.Data[i] += dhPrevGate.Data[i]
			}
			if l > 0 {
				mat.MulABT(dh[l-1], dzx, layer.wx.Value)
			}
		}
	}
}

// StepForward runs one batch-1 inference step.
func (n *GRU) StepForward(x []float64, st *GRUState) []float64 {
	if len(x) != n.Cfg.InputDim {
		panic(fmt.Sprintf("nn: GRU StepForward input len %d, want %d", len(x), n.Cfg.InputDim))
	}
	in := mat.FromSlice(1, len(x), x)
	for l, layer := range n.layers {
		sc := layer.forward(in, st.H[l])
		st.H[l] = sc.h
		in = sc.h
	}
	y := mat.NewDense(1, n.Cfg.OutputDim)
	mat.MulAdd(y, in, n.wy.Value)
	mat.AddBiasRows(y, n.by.Value.Row(0))
	return y.Row(0)
}
