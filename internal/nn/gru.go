package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// GRU is a stacked gated-recurrent-unit network with a linear output
// head — a lighter-weight alternative recurrent architecture (§7 of the
// paper discusses architecture choice; the GRU ablation bench compares
// it against the LSTM). The API mirrors LSTM: Forward/Backward over
// step-major minibatches, StepForward for generation. Like the LSTM,
// Forward/Backward scratch comes from a per-network Workspace and the
// same validity/reentrancy rules apply.
type GRU struct {
	Cfg    Config
	layers []*gruLayer
	wy     *Param
	by     *Param
	params []*Param
	ws     *Workspace // Forward/Backward scratch arenas, lazily acquired
}

// gruLayer holds one layer's parameters. Gate order within the 3H
// dimension is reset (r), update (z), candidate (n).
type gruLayer struct {
	in, hidden int
	first      bool   // layer 0: input may be a sparse feature encoding
	wx         *Param // [in x 3H]
	wh         *Param // [H x 3H]
	b          *Param // [1 x 3H]
}

// NewGRU constructs a GRU network with Xavier-uniform weights.
func NewGRU(cfg Config, g *rng.RNG) *GRU {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := &GRU{Cfg: cfg}
	in := cfg.InputDim
	for l := 0; l < cfg.Layers; l++ {
		layer := &gruLayer{
			in:     in,
			hidden: cfg.HiddenDim,
			first:  l == 0,
			wx:     newParam(fmt.Sprintf("g%d.wx", l), in, 3*cfg.HiddenDim),
			wh:     newParam(fmt.Sprintf("g%d.wh", l), cfg.HiddenDim, 3*cfg.HiddenDim),
			b:      newParam(fmt.Sprintf("g%d.b", l), 1, 3*cfg.HiddenDim),
		}
		xavierInit(layer.wx.Value, in, cfg.HiddenDim, g)
		xavierInit(layer.wh.Value, cfg.HiddenDim, cfg.HiddenDim, g)
		n.layers = append(n.layers, layer)
		n.params = append(n.params, layer.wx, layer.wh, layer.b)
		in = cfg.HiddenDim
	}
	n.wy = newParam("ghead.wy", cfg.HiddenDim, cfg.OutputDim)
	n.by = newParam("ghead.by", 1, cfg.OutputDim)
	xavierInit(n.wy.Value, cfg.HiddenDim, cfg.OutputDim, g)
	n.params = append(n.params, n.wy, n.by)
	return n
}

// Params returns all learnable parameters.
func (n *GRU) Params() []*Param { return n.params }

// NumParams returns the scalar parameter count.
func (n *GRU) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += len(p.Value.Data)
	}
	return total
}

// ZeroGrads clears gradients.
func (n *GRU) ZeroGrads() {
	for _, p := range n.params {
		p.ZeroGrad()
	}
}

// GRUState holds per-layer hidden activations. The same aliasing rules
// as LSTM State apply: after Forward the entries view the workspace;
// StepForward updates them in place using state-owned scratch.
type GRUState struct {
	H []*mat.Dense

	zx, zh, y *mat.Dense // StepForward scratch, lazily sized
	xh        mat.Dense
}

// NewState returns a zero state for batch size b.
func (n *GRU) NewState(b int) *GRUState {
	s := &GRUState{}
	for range n.layers {
		s.H = append(s.H, mat.NewDense(b, n.Cfg.HiddenDim))
	}
	return s
}

// GRUCache is the forward cache; like the LSTM Cache it lives in the
// workspace arena of the Forward call that filled it, sequence-fused
// into row-block slabs.
type GRUCache struct {
	steps int
	batch int
	ar    *arena

	x          *mat.Dense   // packed layer-0 input [T·B x InputDim]
	h          []*mat.Dense // per layer [(T+1)·B x H]; block 0 is the initial state
	r, z, c    []*mat.Dense // per layer gate/candidate activations [T·B x H]
	rh         []*mat.Dense // per layer cached zh_n (candidate recurrent pre-gate) [T·B x H]
	ys         []*mat.Dense
}

// T returns the cached step count.
func (c *GRUCache) T() int { return c.steps }

// gruCache returns the arena's embedded GRUCache, resized for nl layers.
func (a *arena) gruCacheFor(nl int) *GRUCache {
	c := &a.gruCache
	c.ar = a
	c.x = nil
	if cap(c.h) < nl {
		c.h = make([]*mat.Dense, nl)
		c.r = make([]*mat.Dense, nl)
		c.z = make([]*mat.Dense, nl)
		c.c = make([]*mat.Dense, nl)
		c.rh = make([]*mat.Dense, nl)
	}
	c.h, c.r, c.z = c.h[:nl], c.r[:nl], c.z[:nl]
	c.c, c.rh = c.c[:nl], c.rh[:nl]
	return c
}

// Forward runs the network over xs, mirroring LSTM.Forward (including
// the workspace validity contract on everything it returns).
func (n *GRU) Forward(xs []*mat.Dense, st *GRUState) ([]*mat.Dense, *GRUCache) {
	if len(xs) == 0 {
		return nil, &GRUCache{}
	}
	T := len(xs)
	b := xs[0].Rows
	h := n.Cfg.HiddenDim
	id := n.Cfg.InputDim
	nl := len(n.layers)
	ar := n.workspace().flip()
	cache := ar.gruCacheFor(nl)
	cache.steps, cache.batch = T, b

	X := ar.slab(T*b, id, false)
	for t, x := range xs {
		copy(X.Data[t*b*id:(t+1)*b*id], x.Data)
	}
	cache.x = X

	layerX := X
	for l, layer := range n.layers {
		H := ar.slab((T+1)*b, h, false)
		if st != nil {
			if st.H[l].Rows != b || st.H[l].Cols != h {
				panic(fmt.Sprintf("nn: GRU state layer %d is %dx%d, want %dx%d", l, st.H[l].Rows, st.H[l].Cols, b, h))
			}
			copy(H.Data[:b*h], st.H[l].Data)
		} else {
			clear(H.Data[:b*h])
		}
		R := ar.slab(T*b, h, false)
		Zg := ar.slab(T*b, h, false)
		Cc := ar.slab(T*b, h, false)
		RH := ar.slab(T*b, h, false)
		// zx = x Wx + bias for the whole sequence in one fused GEMM;
		// zh = hPrev Wh per step (candidate recurrent term needs the
		// reset gate applied after Wh's n-block, so blocks stay split).
		ZX := ar.slab(T*b, 3*h, true)
		if layer.first && sparseEnough(layerX) {
			mat.MulAddSparse(ZX, layerX, layer.wx.Value)
		} else {
			mat.MulAdd(ZX, layerX, layer.wx.Value)
		}
		mat.AddBiasRows(ZX, layer.b.Value.Row(0))
		zh := ar.slab(b, 3*h, false)
		for t := 0; t < T; t++ {
			zxt := ar.view(ZX, t*b, (t+1)*b)
			hPrev := ar.view(H, t*b, (t+1)*b)
			zh.Zero()
			mat.MulAdd(zh, hPrev, layer.wh.Value)
			for row := 0; row < b; row++ {
				gRow := t*b + row
				zxr, zhr := zxt.Row(row), zh.Row(row)
				rr, zr, cr := R.Row(gRow), Zg.Row(gRow), Cc.Row(gRow)
				hp, hr, rhr := H.Row(gRow), H.Row(gRow+b), RH.Row(gRow)
				for j := 0; j < h; j++ {
					rr[j] = sigmoid(zxr[j] + zhr[j])
					zr[j] = sigmoid(zxr[h+j] + zhr[h+j])
				}
				// Candidate: n = tanh(zx_n + r ⊙ zh_n) — the "v3" GRU
				// variant (also used by cuDNN) where the reset gate
				// applies after the recurrent matmul; rh stashes zh_n
				// for the gradient of Wh's n-block.
				for j := 0; j < h; j++ {
					rhr[j] = zhr[2*h+j]
					cr[j] = math.Tanh(zxr[2*h+j] + rr[j]*zhr[2*h+j])
					hr[j] = (1-zr[j])*cr[j] + zr[j]*hp[j]
				}
			}
		}
		cache.h[l] = H
		cache.r[l], cache.z[l] = R, Zg
		cache.c[l], cache.rh[l] = Cc, RH
		if st != nil {
			st.H[l] = ar.view(H, T*b, (T+1)*b)
		}
		layerX = ar.view(H, b, (T+1)*b)
	}

	Y := ar.slab(T*b, n.Cfg.OutputDim, true)
	mat.MulAdd(Y, layerX, n.wy.Value)
	mat.AddBiasRows(Y, n.by.Value.Row(0))
	ys := cache.ys[:0]
	for t := 0; t < T; t++ {
		ys = append(ys, ar.view(Y, t*b, (t+1)*b))
	}
	cache.ys = ys
	return ys, cache
}

// Backward runs truncated backpropagation through time, accumulating
// parameter gradients via sequence-fused GEMMs like LSTM.Backward.
func (n *GRU) Backward(cache *GRUCache, dys []*mat.Dense) {
	if len(dys) != cache.T() {
		panic(fmt.Sprintf("nn: GRU Backward got %d grads for %d steps", len(dys), cache.T()))
	}
	if cache.T() == 0 {
		return
	}
	T := cache.steps
	b := cache.batch
	h := n.Cfg.HiddenDim
	od := n.Cfg.OutputDim
	nl := len(n.layers)
	ar := cache.ar

	DY := ar.slab(T*b, od, false)
	for t, dy := range dys {
		copy(DY.Data[t*b*od:(t+1)*b*od], dy.Data)
	}
	hTop := ar.view(cache.h[nl-1], b, (T+1)*b)
	mat.MulATB(n.wy.Grad, hTop, DY)
	mat.SumRows(n.by.Grad.Row(0), DY)

	DH := ar.slab(T*b, h, true)
	mat.MulABT(DH, DY, n.wy.Value)

	DZX := ar.slab(T*b, 3*h, false) // fully written per layer
	DZH := ar.slab(T*b, 3*h, false)
	dpg := ar.slab(b, h, false)   // gate-path gradient to hPrev at step t
	dhrec := ar.slab(b, h, false) // carried recurrent hidden gradient
	for l := nl - 1; l >= 0; l-- {
		layer := n.layers[l]
		HP := cache.h[l]
		R, Zg, Cc, RH := cache.r[l], cache.z[l], cache.c[l], cache.rh[l]
		dhrec.Zero()
		for t := T - 1; t >= 0; t-- {
			dpg.Zero()
			for row := 0; row < b; row++ {
				gRow := t*b + row
				dhr, recRow := DH.Row(gRow), dhrec.Row(row)
				rr, zr, cr := R.Row(gRow), Zg.Row(gRow), Cc.Row(gRow)
				hp, zhn := HP.Row(gRow), RH.Row(gRow) // HP block t = hPrev
				dzxr, dzhr := DZX.Row(gRow), DZH.Row(gRow)
				dhp := dpg.Row(row)
				for j := 0; j < h; j++ {
					dH := dhr[j] + recRow[j]
					// h = (1-z)*c + z*hPrev
					dz := dH * (hp[j] - cr[j])
					dc := dH * (1 - zr[j])
					dhp[j] += dH * zr[j]
					// c = tanh(zx_n + r*zh_n)
					dPre := dc * (1 - cr[j]*cr[j])
					dzxr[2*h+j] = dPre
					dr := dPre * zhn[j]
					dzhr[2*h+j] = dPre * rr[j]
					// gates
					dzr := dz * zr[j] * (1 - zr[j])
					dzxr[h+j] = dzr
					dzhr[h+j] = dzr
					drr := dr * rr[j] * (1 - rr[j])
					dzxr[j] = drr
					dzhr[j] = drr
				}
			}
			// dhPrev = gate term + dzh Whᵀ, carried into step t-1.
			if t > 0 {
				dzht := ar.view(DZH, t*b, (t+1)*b)
				dhrec.Zero()
				mat.MulABT(dhrec, dzht, layer.wh.Value)
				mat.Axpy(1, dpg.Data, dhrec.Data)
			}
		}
		var xl *mat.Dense
		if l == 0 {
			xl = cache.x
		} else {
			xl = ar.view(cache.h[l-1], b, (T+1)*b)
		}
		if layer.first && sparseEnough(xl) {
			mat.MulATBSparse(layer.wx.Grad, xl, DZX)
		} else {
			mat.MulATB(layer.wx.Grad, xl, DZX)
		}
		mat.SumRows(layer.b.Grad.Row(0), DZX)
		mat.MulATB(layer.wh.Grad, ar.view(cache.h[l], 0, T*b), DZH)
		if l > 0 {
			DH.Zero()
			mat.MulABT(DH, DZX, layer.wx.Value)
		}
	}
}

// StepForward runs one batch-1 inference step; the returned logits are
// valid until the next StepForward on the same state. Safe to call
// concurrently on one network with distinct states.
func (n *GRU) StepForward(x []float64, st *GRUState) []float64 {
	if len(x) != n.Cfg.InputDim {
		panic(fmt.Sprintf("nn: GRU StepForward input len %d, want %d", len(x), n.Cfg.InputDim))
	}
	h := n.Cfg.HiddenDim
	if st.zx == nil || st.zx.Cols != 3*h {
		st.zx = mat.NewDense(1, 3*h)
		st.zh = mat.NewDense(1, 3*h)
	}
	if st.y == nil || st.y.Cols != n.Cfg.OutputDim {
		st.y = mat.NewDense(1, n.Cfg.OutputDim)
	}
	st.xh.Rows, st.xh.Cols, st.xh.Data = 1, len(x), x
	in := &st.xh
	for l, layer := range n.layers {
		zx, zh := st.zx, st.zh
		zx.Zero()
		if layer.first && sparseEnough(in) {
			mat.MulAddSparse(zx, in, layer.wx.Value)
		} else {
			mat.MulAdd(zx, in, layer.wx.Value)
		}
		mat.AddBiasRows(zx, layer.b.Value.Row(0))
		zh.Zero()
		mat.MulAdd(zh, st.H[l], layer.wh.Value)
		zxr, zhr := zx.Row(0), zh.Row(0)
		hrow := st.H[l].Row(0)
		for j := 0; j < h; j++ {
			rj := sigmoid(zxr[j] + zhr[j])
			zj := sigmoid(zxr[h+j] + zhr[h+j])
			cj := math.Tanh(zxr[2*h+j] + rj*zhr[2*h+j])
			hrow[j] = (1-zj)*cj + zj*hrow[j]
		}
		in = st.H[l]
	}
	st.y.Zero()
	mat.MulAdd(st.y, in, n.wy.Value)
	mat.AddBiasRows(st.y, n.by.Value.Row(0))
	return st.y.Row(0)
}
