package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func tinyGRU(seed int64) *GRU {
	return NewGRU(Config{InputDim: 3, HiddenDim: 5, Layers: 2, OutputDim: 4}, rng.New(seed))
}

func TestNewGRUShapes(t *testing.T) {
	n := tinyGRU(1)
	if len(n.layers) != 2 {
		t.Fatalf("layers %d", len(n.layers))
	}
	want := 3*15 + 5*15 + 15 + 5*15 + 5*15 + 15 + 5*4 + 4
	if n.NumParams() != want {
		t.Fatalf("NumParams %d, want %d", n.NumParams(), want)
	}
}

func TestGRUBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGRU(Config{}, rng.New(1))
}

func TestGRUStepMatchesForward(t *testing.T) {
	n := tinyGRU(2)
	g := rng.New(3)
	xs := randInputs(g, 5, 1, 3)
	full, _ := n.Forward(xs, nil)
	st := n.NewState(1)
	for s, x := range xs {
		got := n.StepForward(x.Row(0), st)
		for j, v := range got {
			if math.Abs(v-full[s].At(0, j)) > 1e-12 {
				t.Fatalf("step %d out %d: %v vs %v", s, j, v, full[s].At(0, j))
			}
		}
	}
}

func TestGRUStateCarry(t *testing.T) {
	n := tinyGRU(4)
	xs := randInputs(rng.New(5), 4, 2, 3)
	// Forward outputs stay valid only until the next-but-one Forward on
	// the same network; snapshot each result before the next call.
	fullView, _ := n.Forward(xs, nil)
	full := cloneAll(fullView)
	st := n.NewState(2)
	a, _ := n.Forward(xs[:2], st)
	got := cloneAll(a)
	b, _ := n.Forward(xs[2:], st)
	got = append(got, cloneAll(b)...)
	for s := range full {
		for i := range full[s].Data {
			if math.Abs(full[s].Data[i]-got[s].Data[i]) > 1e-12 {
				t.Fatalf("carry mismatch at step %d", s)
			}
		}
	}
}

// TestGRUGradientCheck verifies the hand-written GRU backward pass.
func TestGRUGradientCheck(t *testing.T) {
	n := tinyGRU(6)
	g := rng.New(7)
	const steps, batch = 4, 2
	xs := randInputs(g, steps, batch, 3)
	targets := make([][]int, steps)
	for s := range targets {
		targets[s] = []int{g.Intn(4), g.Intn(4)}
	}
	lossFn := func() float64 {
		ys, _ := n.Forward(xs, nil)
		var total float64
		for s, y := range ys {
			l, _, _ := SoftmaxCE(y, targets[s], nil)
			total += l
		}
		return total
	}
	n.ZeroGrads()
	ys, cache := n.Forward(xs, nil)
	dys := make([]*mat.Dense, steps)
	for s, y := range ys {
		_, d, _ := SoftmaxCE(y, targets[s], nil)
		dys[s] = d
	}
	n.Backward(cache, dys)
	for _, p := range n.Params() {
		stride := len(p.Value.Data)/5 + 1
		for idx := 0; idx < len(p.Value.Data); idx += stride {
			num := numericalGrad(lossFn, p, idx)
			ana := p.Grad.Data[idx]
			diff := math.Abs(num - ana)
			scl := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if diff/scl > 1e-5 {
				t.Errorf("param %s[%d]: analytic %v numeric %v", p.Name, idx, ana, num)
			}
		}
	}
}

func TestGRULearnsDelayTask(t *testing.T) {
	n := NewGRU(Config{InputDim: 2, HiddenDim: 8, Layers: 1, OutputDim: 2}, rng.New(8))
	g := rng.New(9)
	opt := NewAdam(0.02)
	opt.ClipNorm = 5
	var first, last float64
	for iter := 0; iter < 150; iter++ {
		xs := randInputs(g, 6, 4, 2)
		targets := make([][]int, 6)
		for s := range targets {
			targets[s] = make([]int, 4)
			for b := 0; b < 4; b++ {
				if s > 0 && xs[s-1].At(b, 0) > 0 {
					targets[s][b] = 1
				}
			}
		}
		n.ZeroGrads()
		ys, cache := n.Forward(xs, nil)
		var total float64
		dys := make([]*mat.Dense, len(ys))
		for s, y := range ys {
			valid := make([]bool, 4)
			for b := range valid {
				valid[b] = s > 0
			}
			l, d, _ := SoftmaxCE(y, targets[s], valid)
			total += l
			dys[s] = d
		}
		n.Backward(cache, dys)
		opt.Step(n.Params())
		if iter == 0 {
			first = total
		}
		last = total
	}
	if last >= first*0.5 {
		t.Fatalf("GRU failed to learn: first %v last %v", first, last)
	}
}

func TestGRUEmptySequence(t *testing.T) {
	n := tinyGRU(10)
	ys, cache := n.Forward(nil, nil)
	if len(ys) != 0 || cache.T() != 0 {
		t.Fatal("empty forward should be empty")
	}
	n.Backward(cache, nil)
}

func TestGRUSerializationRoundTrip(t *testing.T) {
	n := tinyGRU(42)
	xs := randInputs(rng.New(1), 3, 1, 3)
	before, _ := n.Forward(xs, nil)
	blob, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored GRU
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	after, _ := restored.Forward(xs, nil)
	for s := range before {
		for i := range before[s].Data {
			if before[s].Data[i] != after[s].Data[i] {
				t.Fatal("GRU round trip changed outputs")
			}
		}
	}
	if err := restored.UnmarshalBinary([]byte("junk")); err == nil {
		t.Fatal("expected error on corrupt blob")
	}
}
