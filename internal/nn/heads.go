package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// SoftmaxCE computes the mean softmax cross-entropy over the valid steps
// of a batch of logits and returns (loss, dLogits, count). logits is
// [B x K]; targets[r] is the class index for row r; valid[r] false marks
// padding rows that contribute neither loss nor gradient (pass nil for
// all-valid). The gradient is of the summed loss (not mean), matching
// how the trainer normalizes across a whole minibatch.
func SoftmaxCE(logits *mat.Dense, targets []int, valid []bool) (loss float64, dLogits *mat.Dense, count int) {
	dLogits = mat.NewDense(logits.Rows, logits.Cols)
	loss, count = SoftmaxCEInto(logits, targets, valid, dLogits)
	return loss, dLogits, count
}

// SoftmaxCEInto is SoftmaxCE writing the gradient into a caller-provided
// [B x K] matrix (cleared first), so steady-state training loops can
// reuse one buffer instead of allocating per minibatch.
func SoftmaxCEInto(logits *mat.Dense, targets []int, valid []bool, dLogits *mat.Dense) (loss float64, count int) {
	b, k := logits.Rows, logits.Cols
	if len(targets) != b {
		panic(fmt.Sprintf("nn: SoftmaxCE %d targets for %d rows", len(targets), b))
	}
	if valid != nil && len(valid) != b {
		panic("nn: SoftmaxCE valid length mismatch")
	}
	if dLogits.Rows != b || dLogits.Cols != k {
		panic(fmt.Sprintf("nn: SoftmaxCEInto dst %dx%d, want %dx%d", dLogits.Rows, dLogits.Cols, b, k))
	}
	dLogits.Zero()
	for r := 0; r < b; r++ {
		if valid != nil && !valid[r] {
			continue
		}
		tgt := targets[r]
		if tgt < 0 || tgt >= k {
			panic(fmt.Sprintf("nn: SoftmaxCE target %d out of range [0,%d)", tgt, k))
		}
		row := logits.Row(r)
		probs := dLogits.Row(r) // reuse as scratch: will hold p - onehot
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			probs[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range probs {
			probs[j] *= inv
		}
		loss += -math.Log(math.Max(probs[tgt], 1e-300))
		probs[tgt] -= 1
		count++
	}
	return loss, count
}

// LogSoftmax returns the log-probabilities for one logit vector.
func LogSoftmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	LogSoftmaxInto(logits, out)
	return out
}

// LogSoftmaxInto writes the log-probabilities into out (same length as
// logits; aliasing logits is allowed).
func LogSoftmaxInto(logits, out []float64) {
	if len(out) != len(logits) {
		panic(fmt.Sprintf("nn: LogSoftmaxInto dst len %d, want %d", len(out), len(logits)))
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(v - maxv)
	}
	lse := maxv + math.Log(sum)
	for i, v := range logits {
		out[i] = v - lse
	}
}

// Softmax returns the probabilities for one logit vector.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	SoftmaxInto(logits, out)
	return out
}

// SoftmaxInto writes the probabilities into out, computed exactly as
// Softmax does (log-softmax then exponentiation, for the same bits).
func SoftmaxInto(logits, out []float64) {
	LogSoftmaxInto(logits, out)
	for i, v := range out {
		out[i] = math.Exp(v)
	}
}

// MaskedBCEWithLogits computes the summed binary cross-entropy with
// logits over masked outputs, the numerically stable equivalent of
// PyTorch's BCEWithLogitsLoss with a weight mask (§4.1 of the paper).
// logits, targets and mask are all [B x K]; entries with mask 0
// contribute neither loss nor gradient. Returns (loss, dLogits, count)
// where count is the number of unmasked outputs.
func MaskedBCEWithLogits(logits, targets, mask *mat.Dense) (loss float64, dLogits *mat.Dense, count int) {
	dLogits = mat.NewDense(logits.Rows, logits.Cols)
	loss, count = MaskedBCEWithLogitsInto(logits, targets, mask, dLogits)
	return loss, dLogits, count
}

// MaskedBCEWithLogitsInto is MaskedBCEWithLogits writing the gradient
// into a caller-provided matrix (cleared first).
func MaskedBCEWithLogitsInto(logits, targets, mask, dLogits *mat.Dense) (loss float64, count int) {
	if !logits.SameShape(targets) || !logits.SameShape(mask) {
		panic("nn: MaskedBCEWithLogits shape mismatch")
	}
	if !logits.SameShape(dLogits) {
		panic("nn: MaskedBCEWithLogitsInto dst shape mismatch")
	}
	dLogits.Zero()
	for i, z := range logits.Data {
		m := mask.Data[i]
		if m == 0 {
			continue
		}
		t := targets.Data[i]
		// Stable: max(z,0) - z*t + log(1+exp(-|z|)).
		l := math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
		loss += m * l
		dLogits.Data[i] = m * (sigmoid(z) - t)
		count++
	}
	return loss, count
}

// Sigmoid applies the logistic function element-wise to a copy of x.
func Sigmoid(x []float64) []float64 {
	out := make([]float64, len(x))
	SigmoidInto(x, out)
	return out
}

// SigmoidInto applies the logistic function element-wise into out (same
// length as x; aliasing is allowed).
func SigmoidInto(x, out []float64) {
	if len(out) != len(x) {
		panic(fmt.Sprintf("nn: SigmoidInto dst len %d, want %d", len(out), len(x)))
	}
	for i, v := range x {
		out[i] = sigmoid(v)
	}
}
