// Package nn is a from-scratch neural-network substrate standing in for
// the PyTorch stack the paper trained with. It provides multi-layer LSTM
// networks with full backpropagation-through-time, a linear output head,
// softmax cross-entropy and masked binary-cross-entropy-with-logits
// losses (the two heads the paper's flavor and lifetime models use), and
// an Adam optimizer with decoupled weight decay. All math is float64 on
// the stdlib only; gradients are verified against numerical
// differentiation in the package tests.
package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Param is one learnable tensor together with its gradient accumulator
// and Adam moment estimates.
type Param struct {
	Name  string
	Value *mat.Dense
	Grad  *mat.Dense
	m, v  *mat.Dense // Adam first/second moment estimates
}

func newParam(name string, r, c int) *Param {
	return &Param{
		Name:  name,
		Value: mat.NewDense(r, c),
		Grad:  mat.NewDense(r, c),
		m:     mat.NewDense(r, c),
		v:     mat.NewDense(r, c),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Config describes an LSTM network: stacked LSTM layers followed by a
// linear head producing OutputDim scores per step.
type Config struct {
	InputDim  int
	HiddenDim int
	Layers    int
	OutputDim int
}

func (c Config) validate() error {
	if c.InputDim <= 0 || c.HiddenDim <= 0 || c.Layers <= 0 || c.OutputDim <= 0 {
		return fmt.Errorf("nn: invalid config %+v", c)
	}
	return nil
}

// lstmLayer holds the parameters of one LSTM layer. Gate order within
// the 4H dimension is input, forget, cell (g), output.
type lstmLayer struct {
	in, hidden int
	first      bool   // layer 0: input may be a sparse feature encoding
	wx         *Param // [in x 4H]
	wh         *Param // [H x 4H]
	b          *Param // [1 x 4H]
}

// LSTM is a stacked LSTM network with a linear output head.
type LSTM struct {
	Cfg    Config
	layers []*lstmLayer
	wy     *Param // [H x OutputDim]
	by     *Param // [1 x OutputDim]
	params []*Param
}

// NewLSTM constructs a network with Xavier-uniform weights (forget-gate
// biases initialized to +1, the standard trick for gradient flow).
func NewLSTM(cfg Config, g *rng.RNG) *LSTM {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := &LSTM{Cfg: cfg}
	in := cfg.InputDim
	for l := 0; l < cfg.Layers; l++ {
		layer := &lstmLayer{
			in:     in,
			hidden: cfg.HiddenDim,
			first:  l == 0,
			wx:     newParam(fmt.Sprintf("l%d.wx", l), in, 4*cfg.HiddenDim),
			wh:     newParam(fmt.Sprintf("l%d.wh", l), cfg.HiddenDim, 4*cfg.HiddenDim),
			b:      newParam(fmt.Sprintf("l%d.b", l), 1, 4*cfg.HiddenDim),
		}
		xavierInit(layer.wx.Value, in, cfg.HiddenDim, g)
		xavierInit(layer.wh.Value, cfg.HiddenDim, cfg.HiddenDim, g)
		for j := cfg.HiddenDim; j < 2*cfg.HiddenDim; j++ {
			layer.b.Value.Set(0, j, 1) // forget gate bias
		}
		n.layers = append(n.layers, layer)
		n.params = append(n.params, layer.wx, layer.wh, layer.b)
		in = cfg.HiddenDim
	}
	n.wy = newParam("head.wy", cfg.HiddenDim, cfg.OutputDim)
	n.by = newParam("head.by", 1, cfg.OutputDim)
	xavierInit(n.wy.Value, cfg.HiddenDim, cfg.OutputDim, g)
	n.params = append(n.params, n.wy, n.by)
	return n
}

func xavierInit(w *mat.Dense, fanIn, fanOut int, g *rng.RNG) {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = g.Uniform(-bound, bound)
	}
}

// Params returns all learnable parameters (for the optimizer and tests).
func (n *LSTM) Params() []*Param { return n.params }

// NumParams returns the total number of scalar parameters.
func (n *LSTM) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += len(p.Value.Data)
	}
	return total
}

// ZeroGrads clears all parameter gradients.
func (n *LSTM) ZeroGrads() {
	for _, p := range n.params {
		p.ZeroGrad()
	}
}

// State holds per-layer hidden and cell activations for a batch, used
// both to carry state across Forward calls and for stepwise generation.
type State struct {
	H []*mat.Dense // per layer, [B x H]
	C []*mat.Dense // per layer, [B x H]
}

// NewState returns a zero state for batch size b.
func (n *LSTM) NewState(b int) *State {
	s := &State{}
	for range n.layers {
		s.H = append(s.H, mat.NewDense(b, n.Cfg.HiddenDim))
		s.C = append(s.C, mat.NewDense(b, n.Cfg.HiddenDim))
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{}
	for i := range s.H {
		out.H = append(out.H, s.H[i].Clone())
		out.C = append(out.C, s.C[i].Clone())
	}
	return out
}

// Zero clears the state in place.
func (s *State) Zero() {
	for i := range s.H {
		s.H[i].Zero()
		s.C[i].Zero()
	}
}

// stepCache stores activations from one time step of one layer that the
// backward pass needs.
type stepCache struct {
	x          *mat.Dense // layer input [B x in]
	hPrev      *mat.Dense // [B x H]
	cPrev      *mat.Dense // [B x H]
	i, f, g, o *mat.Dense // gate activations [B x H]
	c          *mat.Dense // new cell [B x H]
	tanhC      *mat.Dense // tanh(c) [B x H]
}

// Cache stores everything Forward computed that Backward consumes.
type Cache struct {
	steps  [][]*stepCache // [T][layer]
	hidden []*mat.Dense   // top-layer h per step [B x H]
	batch  int
}

// T returns the number of time steps in the cached forward pass.
func (c *Cache) T() int { return len(c.steps) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// sparseEnough reports whether fewer than a quarter of m's entries are
// nonzero — past that, the skip branch in the sparse kernels beats the
// dense kernel's unconditional multiply-adds. The scan is O(len) per
// step versus the O(len·4H) product it guards. Layer-0 inputs here are
// one-hot token/feature encodings, so this is almost always true in
// training and false for dense random benches.
func sparseEnough(m *mat.Dense) bool {
	nz := 0
	for _, v := range m.Data {
		if v != 0 {
			nz++
		}
	}
	return nz*4 < len(m.Data)
}

// Forward runs the network over xs (a sequence of [B x InputDim] step
// inputs), starting from state st (zero state if nil; st is updated in
// place to the final state). It returns per-step output logits
// [B x OutputDim] and a cache for Backward.
func (n *LSTM) Forward(xs []*mat.Dense, st *State) ([]*mat.Dense, *Cache) {
	if len(xs) == 0 {
		return nil, &Cache{}
	}
	b := xs[0].Rows
	if st == nil {
		st = n.NewState(b)
	}
	h := n.Cfg.HiddenDim
	cache := &Cache{batch: b}
	ys := make([]*mat.Dense, len(xs))
	for t, x := range xs {
		if x.Rows != b || x.Cols != n.Cfg.InputDim {
			panic(fmt.Sprintf("nn: step %d input %v, want %dx%d", t, x, b, n.Cfg.InputDim))
		}
		layerIn := x
		stepCaches := make([]*stepCache, len(n.layers))
		for l, layer := range n.layers {
			sc := layer.forward(layerIn, st.H[l], st.C[l])
			stepCaches[l] = sc
			st.H[l] = sc.hOut(h)
			st.C[l] = sc.c
			layerIn = st.H[l]
		}
		cache.steps = append(cache.steps, stepCaches)
		cache.hidden = append(cache.hidden, layerIn)
		// Output head: y = h*Wy + by.
		y := mat.NewDense(b, n.Cfg.OutputDim)
		mat.MulAdd(y, layerIn, n.wy.Value)
		mat.AddBiasRows(y, n.by.Value.Row(0))
		ys[t] = y
	}
	return ys, cache
}

// hOut recomputes h = o ⊙ tanh(c) from the cached gates; stored as a
// method so forward only materializes it once.
func (sc *stepCache) hOut(h int) *mat.Dense {
	out := mat.NewDense(sc.c.Rows, h)
	for i := range out.Data {
		out.Data[i] = sc.o.Data[i] * sc.tanhC.Data[i]
	}
	return out
}

func (l *lstmLayer) forward(x, hPrev, cPrev *mat.Dense) *stepCache {
	b := x.Rows
	h := l.hidden
	z := mat.NewDense(b, 4*h)
	if l.first && sparseEnough(x) {
		mat.MulAddSparse(z, x, l.wx.Value)
	} else {
		mat.MulAdd(z, x, l.wx.Value)
	}
	mat.MulAdd(z, hPrev, l.wh.Value)
	mat.AddBiasRows(z, l.b.Value.Row(0))
	sc := &stepCache{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: mat.NewDense(b, h), f: mat.NewDense(b, h),
		g: mat.NewDense(b, h), o: mat.NewDense(b, h),
		c: mat.NewDense(b, h), tanhC: mat.NewDense(b, h),
	}
	for r := 0; r < b; r++ {
		zrow := z.Row(r)
		irow, frow, grow, orow := sc.i.Row(r), sc.f.Row(r), sc.g.Row(r), sc.o.Row(r)
		crow, cprow, tcrow := sc.c.Row(r), cPrev.Row(r), sc.tanhC.Row(r)
		for j := 0; j < h; j++ {
			irow[j] = sigmoid(zrow[j])
			frow[j] = sigmoid(zrow[h+j])
			grow[j] = math.Tanh(zrow[2*h+j])
			orow[j] = sigmoid(zrow[3*h+j])
			crow[j] = frow[j]*cprow[j] + irow[j]*grow[j]
			tcrow[j] = math.Tanh(crow[j])
		}
	}
	return sc
}

// Backward runs backpropagation-through-time. dys holds the gradient of
// the loss with respect to each step's output logits (same shapes as the
// Forward outputs). Gradients are accumulated into the parameters; call
// ZeroGrads first for a fresh minibatch.
func (n *LSTM) Backward(cache *Cache, dys []*mat.Dense) {
	if len(dys) != cache.T() {
		panic(fmt.Sprintf("nn: Backward got %d grads for %d steps", len(dys), cache.T()))
	}
	if cache.T() == 0 {
		return
	}
	b := cache.batch
	h := n.Cfg.HiddenDim
	nl := len(n.layers)
	// Running gradients flowing backward in time, per layer.
	dh := make([]*mat.Dense, nl)
	dc := make([]*mat.Dense, nl)
	for l := 0; l < nl; l++ {
		dh[l] = mat.NewDense(b, h)
		dc[l] = mat.NewDense(b, h)
	}
	dz := mat.NewDense(b, 4*h)
	for t := cache.T() - 1; t >= 0; t-- {
		// Head gradient: y = h_top*Wy + by.
		dy := dys[t]
		if dy.Rows != b || dy.Cols != n.Cfg.OutputDim {
			panic(fmt.Sprintf("nn: Backward step %d grad %v", t, dy))
		}
		hTop := cache.hidden[t]
		mat.MulATB(n.wy.Grad, hTop, dy)
		mat.SumRows(n.by.Grad.Row(0), dy)
		// dh_top += dy * Wyᵀ
		mat.MulABT(dh[nl-1], dy, n.wy.Value)
		// Backward through layers, top to bottom.
		for l := nl - 1; l >= 0; l-- {
			sc := cache.steps[t][l]
			layer := n.layers[l]
			dhl, dcl := dh[l], dc[l]
			// Through h = o*tanh(c) and cell update.
			dz.Zero()
			for r := 0; r < b; r++ {
				dhRow, dcRow := dhl.Row(r), dcl.Row(r)
				iRow, fRow, gRow, oRow := sc.i.Row(r), sc.f.Row(r), sc.g.Row(r), sc.o.Row(r)
				tcRow, cpRow := sc.tanhC.Row(r), sc.cPrev.Row(r)
				dzRow := dz.Row(r)
				for j := 0; j < h; j++ {
					doj := dhRow[j] * tcRow[j]
					dcj := dcRow[j] + dhRow[j]*oRow[j]*(1-tcRow[j]*tcRow[j])
					dij := dcj * gRow[j]
					dfj := dcj * cpRow[j]
					dgj := dcj * iRow[j]
					// Pre-activation gradients.
					dzRow[j] = dij * iRow[j] * (1 - iRow[j])
					dzRow[h+j] = dfj * fRow[j] * (1 - fRow[j])
					dzRow[2*h+j] = dgj * (1 - gRow[j]*gRow[j])
					dzRow[3*h+j] = doj * oRow[j] * (1 - oRow[j])
					// Gradient to previous cell.
					dcRow[j] = dcj * fRow[j]
				}
			}
			// Parameter gradients.
			if layer.first && sparseEnough(sc.x) {
				mat.MulATBSparse(layer.wx.Grad, sc.x, dz)
			} else {
				mat.MulATB(layer.wx.Grad, sc.x, dz)
			}
			mat.MulATB(layer.wh.Grad, sc.hPrev, dz)
			mat.SumRows(layer.b.Grad.Row(0), dz)
			// Gradient to previous h (same layer, previous step).
			dhl.Zero()
			mat.MulABT(dhl, dz, layer.wh.Value)
			// Gradient to layer input: flows into dh of layer below at
			// this same time step.
			if l > 0 {
				mat.MulABT(dh[l-1], dz, n.layers[l].wx.Value)
			}
		}
	}
}

// StepForward runs a single step for batch size 1 during generation:
// x is one input vector, st is updated in place, and the output logits
// are returned. No cache is kept (inference only).
func (n *LSTM) StepForward(x []float64, st *State) []float64 {
	if len(x) != n.Cfg.InputDim {
		panic(fmt.Sprintf("nn: StepForward input len %d, want %d", len(x), n.Cfg.InputDim))
	}
	in := mat.FromSlice(1, len(x), x)
	for l, layer := range n.layers {
		sc := layer.forward(in, st.H[l], st.C[l])
		st.H[l] = sc.hOut(n.Cfg.HiddenDim)
		st.C[l] = sc.c
		in = st.H[l]
	}
	y := mat.NewDense(1, n.Cfg.OutputDim)
	mat.MulAdd(y, in, n.wy.Value)
	mat.AddBiasRows(y, n.by.Value.Row(0))
	return y.Row(0)
}
