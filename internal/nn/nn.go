// Package nn is a from-scratch neural-network substrate standing in for
// the PyTorch stack the paper trained with. It provides multi-layer LSTM
// networks with full backpropagation-through-time, a linear output head,
// softmax cross-entropy and masked binary-cross-entropy-with-logits
// losses (the two heads the paper's flavor and lifetime models use), and
// an Adam optimizer with decoupled weight decay. All math is float64 on
// the stdlib only; gradients are verified against numerical
// differentiation in the package tests.
//
// Forward/Backward scratch comes from a per-network Workspace (see
// workspace.go), so the steady-state training hot path is
// allocation-free. Forward and Backward are therefore not reentrant on
// one network; StepForward keeps its scratch on the State and stays
// safe to call concurrently with distinct states.
package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Param is one learnable tensor together with its gradient accumulator
// and Adam moment estimates.
type Param struct {
	Name  string
	Value *mat.Dense
	Grad  *mat.Dense
	m, v  *mat.Dense // Adam first/second moment estimates
}

func newParam(name string, r, c int) *Param {
	return &Param{
		Name:  name,
		Value: mat.NewDense(r, c),
		Grad:  mat.NewDense(r, c),
		m:     mat.NewDense(r, c),
		v:     mat.NewDense(r, c),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Config describes an LSTM network: stacked LSTM layers followed by a
// linear head producing OutputDim scores per step.
type Config struct {
	InputDim  int
	HiddenDim int
	Layers    int
	OutputDim int
}

func (c Config) validate() error {
	if c.InputDim <= 0 || c.HiddenDim <= 0 || c.Layers <= 0 || c.OutputDim <= 0 {
		return fmt.Errorf("nn: invalid config %+v", c)
	}
	return nil
}

// lstmLayer holds the parameters of one LSTM layer. Gate order within
// the 4H dimension is input, forget, cell (g), output.
type lstmLayer struct {
	in, hidden int
	first      bool   // layer 0: input may be a sparse feature encoding
	wx         *Param // [in x 4H]
	wh         *Param // [H x 4H]
	b          *Param // [1 x 4H]
}

// LSTM is a stacked LSTM network with a linear output head.
type LSTM struct {
	Cfg    Config
	layers []*lstmLayer
	wy     *Param // [H x OutputDim]
	by     *Param // [1 x OutputDim]
	params []*Param
	ws     *Workspace // Forward/Backward scratch arenas, lazily acquired
}

// NewLSTM constructs a network with Xavier-uniform weights (forget-gate
// biases initialized to +1, the standard trick for gradient flow).
func NewLSTM(cfg Config, g *rng.RNG) *LSTM {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := &LSTM{Cfg: cfg}
	in := cfg.InputDim
	for l := 0; l < cfg.Layers; l++ {
		layer := &lstmLayer{
			in:     in,
			hidden: cfg.HiddenDim,
			first:  l == 0,
			wx:     newParam(fmt.Sprintf("l%d.wx", l), in, 4*cfg.HiddenDim),
			wh:     newParam(fmt.Sprintf("l%d.wh", l), cfg.HiddenDim, 4*cfg.HiddenDim),
			b:      newParam(fmt.Sprintf("l%d.b", l), 1, 4*cfg.HiddenDim),
		}
		xavierInit(layer.wx.Value, in, cfg.HiddenDim, g)
		xavierInit(layer.wh.Value, cfg.HiddenDim, cfg.HiddenDim, g)
		for j := cfg.HiddenDim; j < 2*cfg.HiddenDim; j++ {
			layer.b.Value.Set(0, j, 1) // forget gate bias
		}
		n.layers = append(n.layers, layer)
		n.params = append(n.params, layer.wx, layer.wh, layer.b)
		in = cfg.HiddenDim
	}
	n.wy = newParam("head.wy", cfg.HiddenDim, cfg.OutputDim)
	n.by = newParam("head.by", 1, cfg.OutputDim)
	xavierInit(n.wy.Value, cfg.HiddenDim, cfg.OutputDim, g)
	n.params = append(n.params, n.wy, n.by)
	return n
}

func xavierInit(w *mat.Dense, fanIn, fanOut int, g *rng.RNG) {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = g.Uniform(-bound, bound)
	}
}

// Params returns all learnable parameters (for the optimizer and tests).
func (n *LSTM) Params() []*Param { return n.params }

// NumParams returns the total number of scalar parameters.
func (n *LSTM) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += len(p.Value.Data)
	}
	return total
}

// ZeroGrads clears all parameter gradients.
func (n *LSTM) ZeroGrads() {
	for _, p := range n.params {
		p.ZeroGrad()
	}
}

// State holds per-layer hidden and cell activations for a batch, used
// both to carry state across Forward calls and for stepwise generation.
// After a Forward call the H/C entries are views into the network's
// workspace, valid until the next-but-one Forward on that network
// (Clone them to keep longer). StepForward updates H/C in place.
type State struct {
	H []*mat.Dense // per layer, [B x H]
	C []*mat.Dense // per layer, [B x H]

	// StepForward scratch, lazily sized. It lives on the state rather
	// than the network so concurrent generation with distinct states
	// stays race-free.
	z, y *mat.Dense
	xh   mat.Dense
}

// NewState returns a zero state for batch size b.
func (n *LSTM) NewState(b int) *State {
	s := &State{}
	for range n.layers {
		s.H = append(s.H, mat.NewDense(b, n.Cfg.HiddenDim))
		s.C = append(s.C, mat.NewDense(b, n.Cfg.HiddenDim))
	}
	return s
}

// Clone deep-copies the state (scratch buffers are not carried over).
func (s *State) Clone() *State {
	out := &State{}
	for i := range s.H {
		out.H = append(out.H, s.H[i].Clone())
		out.C = append(out.C, s.C[i].Clone())
	}
	return out
}

// Zero clears the state in place.
func (s *State) Zero() {
	for i := range s.H {
		s.H[i].Zero()
		s.C[i].Zero()
	}
}

// Cache stores everything Forward computed that Backward consumes. All
// matrices are slabs in (or views into) the arena of the Forward call
// that produced it, so a Cache is valid until the next-but-one Forward
// on the same network. Activations are stored sequence-fused: each slab
// holds T (or T+1) row-blocks of B rows, block t covering step t.
type Cache struct {
	steps int
	batch int
	ar    *arena

	x                 *mat.Dense   // packed layer-0 input [T·B x InputDim]
	h, c              []*mat.Dense // per layer [(T+1)·B x H]; block 0 is the initial state
	i, f, g, o, tanhC []*mat.Dense // per layer gate activations [T·B x H]
	ys                []*mat.Dense // per-step output views returned by Forward
}

// T returns the number of time steps in the cached forward pass.
func (c *Cache) T() int { return c.steps }

// lstmCache returns the arena's embedded Cache, resized for nl layers.
func (a *arena) lstmCache(nl int) *Cache {
	c := &a.cache
	c.ar = a
	c.x = nil
	if cap(c.h) < nl {
		c.h = make([]*mat.Dense, nl)
		c.c = make([]*mat.Dense, nl)
		c.i = make([]*mat.Dense, nl)
		c.f = make([]*mat.Dense, nl)
		c.g = make([]*mat.Dense, nl)
		c.o = make([]*mat.Dense, nl)
		c.tanhC = make([]*mat.Dense, nl)
	}
	c.h, c.c = c.h[:nl], c.c[:nl]
	c.i, c.f = c.i[:nl], c.f[:nl]
	c.g, c.o = c.g[:nl], c.o[:nl]
	c.tanhC = c.tanhC[:nl]
	return c
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// sparseEnough reports whether fewer than a quarter of m's entries are
// nonzero — past that, the skip branch in the sparse kernels beats the
// dense kernel's unconditional multiply-adds. The scan is O(len) per
// step versus the O(len·4H) product it guards. Layer-0 inputs here are
// one-hot token/feature encodings, so this is almost always true in
// training and false for dense random benches.
func sparseEnough(m *mat.Dense) bool {
	nz := 0
	for _, v := range m.Data {
		if v != 0 {
			nz++
		}
	}
	return nz*4 < len(m.Data)
}

// Forward runs the network over xs (a sequence of [B x InputDim] step
// inputs), starting from state st (zero state if nil; st is updated in
// place to the final state). It returns per-step output logits
// [B x OutputDim] and a cache for Backward.
//
// The returned slices, the cache, and the updated state alias the
// network's workspace; they stay valid until the next-but-one Forward
// call on this network. Forward is not safe for concurrent use on one
// network (use StepForward with distinct states for that).
func (n *LSTM) Forward(xs []*mat.Dense, st *State) ([]*mat.Dense, *Cache) {
	if len(xs) == 0 {
		return nil, &Cache{}
	}
	T := len(xs)
	b := xs[0].Rows
	h := n.Cfg.HiddenDim
	id := n.Cfg.InputDim
	nl := len(n.layers)
	ar := n.workspace().flip()
	cache := ar.lstmCache(nl)
	cache.steps, cache.batch = T, b

	// Pack the step inputs into one [T·B x InputDim] slab so layer 0's
	// input projection runs as a single sequence-fused GEMM.
	X := ar.slab(T*b, id, false)
	for t, x := range xs {
		if x.Rows != b || x.Cols != id {
			panic(fmt.Sprintf("nn: step %d input %v, want %dx%d", t, x, b, id))
		}
		copy(X.Data[t*b*id:(t+1)*b*id], x.Data)
	}
	cache.x = X

	layerX := X
	for l, layer := range n.layers {
		// H and C hold blocks 0..T; block 0 is the incoming state,
		// copied before anything else is written because the incoming
		// views may alias this very slab (a state carried from two
		// Forward calls ago lands back on the same arena).
		H := ar.slab((T+1)*b, h, false)
		C := ar.slab((T+1)*b, h, false)
		if st != nil {
			if st.H[l].Rows != b || st.H[l].Cols != h {
				panic(fmt.Sprintf("nn: state layer %d is %dx%d, want %dx%d", l, st.H[l].Rows, st.H[l].Cols, b, h))
			}
			copy(H.Data[:b*h], st.H[l].Data)
			copy(C.Data[:b*h], st.C[l].Data)
		} else {
			clear(H.Data[:b*h])
			clear(C.Data[:b*h])
		}
		I := ar.slab(T*b, h, false)
		F := ar.slab(T*b, h, false)
		G := ar.slab(T*b, h, false)
		O := ar.slab(T*b, h, false)
		TC := ar.slab(T*b, h, false)
		// Sequence-fused input projection: all T steps' x·Wx in one
		// GEMM. The recurrent term and bias are added per step below,
		// preserving the per-element accumulation order (x-terms,
		// h-terms, bias) of the per-step formulation bit for bit.
		Z := ar.slab(T*b, 4*h, true)
		if layer.first && sparseEnough(layerX) {
			mat.MulAddSparse(Z, layerX, layer.wx.Value)
		} else {
			mat.MulAdd(Z, layerX, layer.wx.Value)
		}
		bias := layer.b.Value.Row(0)
		for t := 0; t < T; t++ {
			zt := ar.view(Z, t*b, (t+1)*b)
			hPrev := ar.view(H, t*b, (t+1)*b)
			mat.MulAdd(zt, hPrev, layer.wh.Value)
			mat.AddBiasRows(zt, bias)
			for r := 0; r < b; r++ {
				row := t*b + r
				zrow := zt.Row(r)
				irow, frow := I.Row(row), F.Row(row)
				grow, orow := G.Row(row), O.Row(row)
				cprow := C.Row(row) // block t: previous cell
				crow := C.Row(row + b)
				hrow := H.Row(row + b)
				tcrow := TC.Row(row)
				for j := 0; j < h; j++ {
					irow[j] = sigmoid(zrow[j])
					frow[j] = sigmoid(zrow[h+j])
					grow[j] = math.Tanh(zrow[2*h+j])
					orow[j] = sigmoid(zrow[3*h+j])
					crow[j] = frow[j]*cprow[j] + irow[j]*grow[j]
					tcrow[j] = math.Tanh(crow[j])
					hrow[j] = orow[j] * tcrow[j]
				}
			}
		}
		cache.h[l], cache.c[l] = H, C
		cache.i[l], cache.f[l] = I, F
		cache.g[l], cache.o[l] = G, O
		cache.tanhC[l] = TC
		if st != nil {
			st.H[l] = ar.view(H, T*b, (T+1)*b)
			st.C[l] = ar.view(C, T*b, (T+1)*b)
		}
		layerX = ar.view(H, b, (T+1)*b)
	}

	// Output head, fused across the sequence: Y = H_top·Wy + by.
	Y := ar.slab(T*b, n.Cfg.OutputDim, true)
	mat.MulAdd(Y, layerX, n.wy.Value)
	mat.AddBiasRows(Y, n.by.Value.Row(0))
	ys := cache.ys[:0]
	for t := 0; t < T; t++ {
		ys = append(ys, ar.view(Y, t*b, (t+1)*b))
	}
	cache.ys = ys
	return ys, cache
}

// Backward runs backpropagation-through-time. dys holds the gradient of
// the loss with respect to each step's output logits (same shapes as the
// Forward outputs). Gradients are accumulated into the parameters; call
// ZeroGrads first for a fresh minibatch.
//
// Scratch bump-continues on the arena holding the cache, and parameter
// gradients for Wx, Wh and the head accumulate via sequence-fused GEMMs
// over the whole window rather than one small GEMM per step.
func (n *LSTM) Backward(cache *Cache, dys []*mat.Dense) {
	if len(dys) != cache.T() {
		panic(fmt.Sprintf("nn: Backward got %d grads for %d steps", len(dys), cache.T()))
	}
	if cache.T() == 0 {
		return
	}
	T := cache.steps
	b := cache.batch
	h := n.Cfg.HiddenDim
	od := n.Cfg.OutputDim
	nl := len(n.layers)
	ar := cache.ar

	// Pack the head gradients and run the head backward fused.
	DY := ar.slab(T*b, od, false)
	for t, dy := range dys {
		if dy.Rows != b || dy.Cols != od {
			panic(fmt.Sprintf("nn: Backward step %d grad %v", t, dy))
		}
		copy(DY.Data[t*b*od:(t+1)*b*od], dy.Data)
	}
	hTop := ar.view(cache.h[nl-1], b, (T+1)*b)
	mat.MulATB(n.wy.Grad, hTop, DY)
	mat.SumRows(n.by.Grad.Row(0), DY)

	// DH holds, for the layer currently being processed, the gradient
	// arriving from above at every step: from the head for the top
	// layer, then from layer l's input projection for layer l-1.
	DH := ar.slab(T*b, h, true)
	mat.MulABT(DH, DY, n.wy.Value)

	DZ := ar.slab(T*b, 4*h, false)  // pre-activation grads, fully written per layer
	dc := ar.slab(b, h, false)      // carried cell gradient
	dhrec := ar.slab(b, h, false)   // carried recurrent hidden gradient
	for l := nl - 1; l >= 0; l-- {
		layer := n.layers[l]
		C := cache.c[l]
		I, F := cache.i[l], cache.f[l]
		G, O := cache.g[l], cache.o[l]
		TC := cache.tanhC[l]
		dc.Zero()
		dhrec.Zero()
		for t := T - 1; t >= 0; t-- {
			for r := 0; r < b; r++ {
				row := t*b + r
				dhRow, recRow, dcRow := DH.Row(row), dhrec.Row(r), dc.Row(r)
				iRow, fRow := I.Row(row), F.Row(row)
				gRow, oRow := G.Row(row), O.Row(row)
				tcRow, cpRow := TC.Row(row), C.Row(row) // block t: previous cell
				dzRow := DZ.Row(row)
				for j := 0; j < h; j++ {
					dH := dhRow[j] + recRow[j]
					doj := dH * tcRow[j]
					dcj := dcRow[j] + dH*oRow[j]*(1-tcRow[j]*tcRow[j])
					dij := dcj * gRow[j]
					dfj := dcj * cpRow[j]
					dgj := dcj * iRow[j]
					// Pre-activation gradients.
					dzRow[j] = dij * iRow[j] * (1 - iRow[j])
					dzRow[h+j] = dfj * fRow[j] * (1 - fRow[j])
					dzRow[2*h+j] = dgj * (1 - gRow[j]*gRow[j])
					dzRow[3*h+j] = doj * oRow[j] * (1 - oRow[j])
					// Gradient to previous cell.
					dcRow[j] = dcj * fRow[j]
				}
			}
			// Recurrent gradient into step t-1.
			if t > 0 {
				dzt := ar.view(DZ, t*b, (t+1)*b)
				dhrec.Zero()
				mat.MulABT(dhrec, dzt, layer.wh.Value)
			}
		}
		// Parameter gradients, sequence-fused over all T steps.
		var xl *mat.Dense
		if l == 0 {
			xl = cache.x
		} else {
			xl = ar.view(cache.h[l-1], b, (T+1)*b)
		}
		if layer.first && sparseEnough(xl) {
			mat.MulATBSparse(layer.wx.Grad, xl, DZ)
		} else {
			mat.MulATB(layer.wx.Grad, xl, DZ)
		}
		mat.MulATB(layer.wh.Grad, ar.view(cache.h[l], 0, T*b), DZ)
		mat.SumRows(layer.b.Grad.Row(0), DZ)
		// Gradient to the layer below's hidden state at every step.
		if l > 0 {
			DH.Zero()
			mat.MulABT(DH, DZ, layer.wx.Value)
		}
	}
}

// StepForward runs a single step for batch size 1 during generation:
// x is one input vector, st is updated in place, and the output logits
// are returned (valid until the next StepForward on the same state).
// All scratch lives on the state, so concurrent StepForward calls on one
// network are safe as long as each goroutine uses its own state.
func (n *LSTM) StepForward(x []float64, st *State) []float64 {
	if len(x) != n.Cfg.InputDim {
		panic(fmt.Sprintf("nn: StepForward input len %d, want %d", len(x), n.Cfg.InputDim))
	}
	h := n.Cfg.HiddenDim
	if st.z == nil || st.z.Cols != 4*h {
		st.z = mat.NewDense(1, 4*h)
	}
	if st.y == nil || st.y.Cols != n.Cfg.OutputDim {
		st.y = mat.NewDense(1, n.Cfg.OutputDim)
	}
	st.xh.Rows, st.xh.Cols, st.xh.Data = 1, len(x), x
	in := &st.xh
	for l, layer := range n.layers {
		z := st.z
		z.Zero()
		if layer.first && sparseEnough(in) {
			mat.MulAddSparse(z, in, layer.wx.Value)
		} else {
			mat.MulAdd(z, in, layer.wx.Value)
		}
		mat.MulAdd(z, st.H[l], layer.wh.Value)
		mat.AddBiasRows(z, layer.b.Value.Row(0))
		zrow := z.Row(0)
		hrow, crow := st.H[l].Row(0), st.C[l].Row(0)
		for j := 0; j < h; j++ {
			ij := sigmoid(zrow[j])
			fj := sigmoid(zrow[h+j])
			gj := math.Tanh(zrow[2*h+j])
			oj := sigmoid(zrow[3*h+j])
			crow[j] = fj*crow[j] + ij*gj
			hrow[j] = oj * math.Tanh(crow[j])
		}
		in = st.H[l]
	}
	st.y.Zero()
	mat.MulAdd(st.y, in, n.wy.Value)
	mat.AddBiasRows(st.y, n.by.Value.Row(0))
	return st.y.Row(0)
}
