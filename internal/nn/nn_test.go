package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func tinyNet(t *testing.T, in, hidden, layers, out int, seed int64) *LSTM {
	t.Helper()
	return NewLSTM(Config{InputDim: in, HiddenDim: hidden, Layers: layers, OutputDim: out}, rng.New(seed))
}

func randInputs(g *rng.RNG, steps, b, dim int) []*mat.Dense {
	xs := make([]*mat.Dense, steps)
	for t := range xs {
		x := mat.NewDense(b, dim)
		for i := range x.Data {
			x.Data[i] = g.NormFloat64()
		}
		xs[t] = x
	}
	return xs
}

// cloneAll snapshots Forward outputs that would otherwise be
// invalidated by the next-but-one Forward on the same network.
func cloneAll(ms []*mat.Dense) []*mat.Dense {
	out := make([]*mat.Dense, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Clone())
	}
	return out
}

func TestNewLSTMShapes(t *testing.T) {
	n := tinyNet(t, 5, 7, 2, 3, 1)
	if len(n.layers) != 2 {
		t.Fatalf("layers = %d", len(n.layers))
	}
	if n.layers[0].wx.Value.Rows != 5 || n.layers[0].wx.Value.Cols != 28 {
		t.Fatalf("layer0 wx shape %v", n.layers[0].wx.Value)
	}
	if n.layers[1].wx.Value.Rows != 7 {
		t.Fatalf("layer1 input dim should be hidden: %v", n.layers[1].wx.Value)
	}
	want := 5*28 + 7*28 + 28 + 7*28 + 7*28 + 28 + 7*3 + 3
	if n.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", n.NumParams(), want)
	}
}

func TestNewLSTMBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLSTM(Config{InputDim: 0, HiddenDim: 1, Layers: 1, OutputDim: 1}, rng.New(1))
}

func TestForgetGateBiasInit(t *testing.T) {
	n := tinyNet(t, 2, 4, 1, 1, 1)
	b := n.layers[0].b.Value.Row(0)
	for j := 0; j < 4; j++ {
		if b[j] != 0 || b[4+j] != 1 || b[8+j] != 0 || b[12+j] != 0 {
			t.Fatalf("bias init wrong at %d: %v", j, b)
		}
	}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	n := tinyNet(t, 3, 4, 2, 5, 2)
	xs := randInputs(rng.New(3), 6, 2, 3)
	ys1, _ := n.Forward(xs, nil)
	ys2, _ := n.Forward(xs, nil)
	if len(ys1) != 6 {
		t.Fatalf("got %d outputs", len(ys1))
	}
	for t2, y := range ys1 {
		if y.Rows != 2 || y.Cols != 5 {
			t.Fatalf("output shape %v", y)
		}
		for i := range y.Data {
			if y.Data[i] != ys2[t2].Data[i] {
				t.Fatal("forward not deterministic")
			}
		}
	}
}

func TestForwardStateCarries(t *testing.T) {
	n := tinyNet(t, 3, 4, 1, 2, 4)
	xs := randInputs(rng.New(5), 4, 1, 3)
	// Full sequence in one call vs two calls with carried state. Forward
	// outputs alias the workspace and stay valid only until the
	// next-but-one Forward, so snapshot each result before moving on.
	ysAllView, _ := n.Forward(xs, nil)
	ysAll := cloneAll(ysAllView)
	st := n.NewState(1)
	ysA, _ := n.Forward(xs[:2], st)
	got := cloneAll(ysA)
	ysB, _ := n.Forward(xs[2:], st)
	got = append(got, cloneAll(ysB)...)
	for t2 := range ysAll {
		for i := range ysAll[t2].Data {
			if math.Abs(ysAll[t2].Data[i]-got[t2].Data[i]) > 1e-12 {
				t.Fatalf("state carry mismatch at step %d", t2)
			}
		}
	}
}

func TestStepForwardMatchesForward(t *testing.T) {
	n := tinyNet(t, 3, 4, 2, 2, 6)
	xs := randInputs(rng.New(7), 5, 1, 3)
	ysAll, _ := n.Forward(xs, nil)
	st := n.NewState(1)
	for t2, x := range xs {
		y := n.StepForward(x.Row(0), st)
		for j, v := range y {
			if math.Abs(v-ysAll[t2].At(0, j)) > 1e-12 {
				t.Fatalf("StepForward mismatch at step %d out %d", t2, j)
			}
		}
	}
}

func TestStateCloneAndZero(t *testing.T) {
	n := tinyNet(t, 2, 3, 2, 1, 8)
	st := n.NewState(1)
	n.StepForward([]float64{1, -1}, st)
	cl := st.Clone()
	st.Zero()
	for l := range cl.H {
		if mat.MaxAbs(st.H[l].Data) != 0 || mat.MaxAbs(st.C[l].Data) != 0 {
			t.Fatal("Zero did not clear state")
		}
		if mat.MaxAbs(cl.H[l].Data) == 0 {
			t.Fatal("Clone affected by Zero")
		}
	}
}

// numericalGrad computes d(loss)/d(param[idx]) by central differences.
func numericalGrad(lossFn func() float64, p *Param, idx int) float64 {
	const h = 1e-5
	orig := p.Value.Data[idx]
	p.Value.Data[idx] = orig + h
	lp := lossFn()
	p.Value.Data[idx] = orig - h
	lm := lossFn()
	p.Value.Data[idx] = orig
	return (lp - lm) / (2 * h)
}

// TestGradientCheckSoftmax verifies BPTT gradients against numerical
// differentiation for a softmax-CE head over a short sequence.
func TestGradientCheckSoftmax(t *testing.T) {
	n := tinyNet(t, 3, 4, 2, 3, 42)
	g := rng.New(9)
	const steps, batch = 4, 2
	xs := randInputs(g, steps, batch, 3)
	targets := make([][]int, steps)
	for s := range targets {
		targets[s] = []int{g.Intn(3), g.Intn(3)}
	}
	lossFn := func() float64 {
		ys, _ := n.Forward(xs, nil)
		var total float64
		for s, y := range ys {
			l, _, _ := SoftmaxCE(y, targets[s], nil)
			total += l
		}
		return total
	}
	// Analytic gradients.
	n.ZeroGrads()
	ys, cache := n.Forward(xs, nil)
	dys := make([]*mat.Dense, steps)
	for s, y := range ys {
		_, d, _ := SoftmaxCE(y, targets[s], nil)
		dys[s] = d
	}
	n.Backward(cache, dys)
	checkGrads(t, n, lossFn)
}

// TestGradientCheckMaskedBCE verifies BPTT gradients for the hazard head
// with a mask that zeroes out some outputs (the censoring machinery).
func TestGradientCheckMaskedBCE(t *testing.T) {
	n := tinyNet(t, 2, 3, 2, 4, 77)
	g := rng.New(11)
	const steps, batch = 3, 2
	xs := randInputs(g, steps, batch, 2)
	targets := make([]*mat.Dense, steps)
	masks := make([]*mat.Dense, steps)
	for s := range targets {
		tg := mat.NewDense(batch, 4)
		mk := mat.NewDense(batch, 4)
		for i := range tg.Data {
			if g.Bernoulli(0.5) {
				tg.Data[i] = 1
			}
			if g.Bernoulli(0.7) {
				mk.Data[i] = 1
			}
		}
		targets[s], masks[s] = tg, mk
	}
	lossFn := func() float64 {
		ys, _ := n.Forward(xs, nil)
		var total float64
		for s, y := range ys {
			l, _, _ := MaskedBCEWithLogits(y, targets[s], masks[s])
			total += l
		}
		return total
	}
	n.ZeroGrads()
	ys, cache := n.Forward(xs, nil)
	dys := make([]*mat.Dense, steps)
	for s, y := range ys {
		_, d, _ := MaskedBCEWithLogits(y, targets[s], masks[s])
		dys[s] = d
	}
	n.Backward(cache, dys)
	checkGrads(t, n, lossFn)
}

func checkGrads(t *testing.T, n *LSTM, lossFn func() float64) {
	t.Helper()
	for _, p := range n.Params() {
		// Spot-check a handful of indices per parameter to keep runtime low.
		stride := len(p.Value.Data)/5 + 1
		for idx := 0; idx < len(p.Value.Data); idx += stride {
			num := numericalGrad(lossFn, p, idx)
			ana := p.Grad.Data[idx]
			diff := math.Abs(num - ana)
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if diff/scale > 1e-5 {
				t.Errorf("param %s[%d]: analytic %v numeric %v", p.Name, idx, ana, num)
			}
		}
	}
}

func TestSoftmaxCEKnownValues(t *testing.T) {
	logits := mat.FromSlice(1, 2, []float64{0, 0})
	loss, d, count := SoftmaxCE(logits, []int{0}, nil)
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	if math.Abs(d.At(0, 0)-(-0.5)) > 1e-12 || math.Abs(d.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("grad = %v", d.Data)
	}
}

func TestSoftmaxCEValidMask(t *testing.T) {
	logits := mat.FromSlice(2, 2, []float64{5, -5, 3, 3})
	loss, d, count := SoftmaxCE(logits, []int{0, 1}, []bool{false, true})
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	if d.At(0, 0) != 0 || d.At(0, 1) != 0 {
		t.Fatal("masked row should have zero grad")
	}
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v", loss)
	}
}

func TestSoftmaxNormalizes(t *testing.T) {
	p := Softmax([]float64{1, 2, 3, 4})
	var sum float64
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			t.Fatal("softmax should be increasing for increasing logits")
		}
	}
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestLogSoftmaxStability(t *testing.T) {
	ls := LogSoftmax([]float64{1000, 1000})
	if math.Abs(ls[0]-(-math.Log(2))) > 1e-9 {
		t.Fatalf("log softmax overflowed: %v", ls)
	}
}

func TestMaskedBCEKnownValues(t *testing.T) {
	logits := mat.FromSlice(1, 2, []float64{0, 100})
	targets := mat.FromSlice(1, 2, []float64{1, 0})
	mask := mat.FromSlice(1, 2, []float64{1, 0})
	loss, d, count := MaskedBCEWithLogits(logits, targets, mask)
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if d.At(0, 1) != 0 {
		t.Fatal("masked output should have zero grad")
	}
	if math.Abs(d.At(0, 0)-(0.5-1)) > 1e-12 {
		t.Fatalf("grad = %v", d.At(0, 0))
	}
}

func TestSigmoidRange(t *testing.T) {
	s := Sigmoid([]float64{-1000, 0, 1000})
	if s[0] < 0 || s[0] > 1e-10 || math.Abs(s[1]-0.5) > 1e-12 || s[2] > 1 || s[2] < 1-1e-10 {
		t.Fatalf("sigmoid values: %v", s)
	}
}

func TestAdamReducesLossOnRegression(t *testing.T) {
	// Teach a 1-layer LSTM to output the previous input (delay-1 memory).
	n := tinyNet(t, 2, 8, 1, 2, 13)
	g := rng.New(14)
	opt := NewAdam(0.02)
	opt.ClipNorm = 5
	var first, last float64
	for iter := 0; iter < 120; iter++ {
		xs := randInputs(g, 6, 4, 2)
		targets := make([][]int, 6)
		for s := range targets {
			targets[s] = make([]int, 4)
			for b2 := 0; b2 < 4; b2++ {
				if s > 0 && xs[s-1].At(b2, 0) > 0 {
					targets[s][b2] = 1
				}
			}
		}
		n.ZeroGrads()
		ys, cache := n.Forward(xs, nil)
		var total float64
		dys := make([]*mat.Dense, len(ys))
		for s, y := range ys {
			valid := make([]bool, 4)
			for b2 := range valid {
				valid[b2] = s > 0
			}
			l, d, _ := SoftmaxCE(y, targets[s], valid)
			total += l
			dys[s] = d
		}
		n.Backward(cache, dys)
		opt.Step(n.Params())
		if iter == 0 {
			first = total
		}
		last = total
	}
	if last >= first*0.5 {
		t.Fatalf("Adam failed to reduce loss: first %v last %v", first, last)
	}
	if opt.Steps() != 120 {
		t.Fatalf("Steps = %d", opt.Steps())
	}
}

func TestAdamClipNorm(t *testing.T) {
	p := newParam("w", 1, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 30, 40 // norm 50
	a := NewAdam(0.1)
	a.ClipNorm = 5
	a.Step([]*Param{p})
	// After clipping, grad should be scaled to norm 5.
	if math.Abs(mat.Norm2(p.Grad.Data)-5) > 1e-9 {
		t.Fatalf("grad norm after clip: %v", mat.Norm2(p.Grad.Data))
	}
}

func TestAdamWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", 1, 1)
	p.Value.Data[0] = 10
	// Zero gradient: only decay acts.
	a := NewAdam(0.1)
	a.WeightDecay = 0.5
	a.Step([]*Param{p})
	if p.Value.Data[0] >= 10 {
		t.Fatalf("weight decay did not shrink weight: %v", p.Value.Data[0])
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	n := tinyNet(t, 3, 5, 2, 4, 99)
	xs := randInputs(rng.New(1), 3, 1, 3)
	ys1, _ := n.Forward(xs, nil)
	blob, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored LSTM
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Cfg != n.Cfg {
		t.Fatalf("config mismatch: %+v vs %+v", restored.Cfg, n.Cfg)
	}
	ys2, _ := restored.Forward(xs, nil)
	for s := range ys1 {
		for i := range ys1[s].Data {
			if ys1[s].Data[i] != ys2[s].Data[i] {
				t.Fatal("restored network differs")
			}
		}
	}
}

func TestUnmarshalCorruptFails(t *testing.T) {
	var n LSTM
	if err := n.UnmarshalBinary([]byte("not gob")); err == nil {
		t.Fatal("expected error")
	}
}

func TestBackwardEmptySequence(t *testing.T) {
	n := tinyNet(t, 2, 3, 1, 2, 5)
	ys, cache := n.Forward(nil, nil)
	if len(ys) != 0 || cache.T() != 0 {
		t.Fatal("empty forward should be empty")
	}
	n.Backward(cache, nil) // must not panic
}

func TestAdamZeroGradientNoChange(t *testing.T) {
	p := newParam("w", 1, 3)
	p.Value.Data[0], p.Value.Data[1], p.Value.Data[2] = 1, -2, 3
	before := append([]float64(nil), p.Value.Data...)
	a := NewAdam(0.1)
	for i := 0; i < 5; i++ {
		a.Step([]*Param{p})
	}
	for i, v := range p.Value.Data {
		if v != before[i] {
			t.Fatalf("zero gradient moved weight %d: %v -> %v", i, before[i], v)
		}
		if math.IsNaN(v) {
			t.Fatal("NaN weight")
		}
	}
}

func TestLSTMExtremeInputsStayFinite(t *testing.T) {
	n := tinyNet(t, 2, 4, 2, 3, 1)
	st := n.NewState(1)
	for _, x := range [][]float64{{1e9, -1e9}, {0, 0}, {-1e12, 1e12}} {
		out := n.StepForward(x, st)
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite output for input %v: %v", x, out)
			}
		}
	}
}
