package nn

import (
	"repro/internal/mat"
)

// Packed serving weights (DESIGN.md §6.5). A PackedLSTM is a
// publish-time conversion of a network's decode matrices (wx, wh, wy)
// into cache-blocked panels for the packed step kernels; biases stay
// plain slices, applied by the fused tile epilogues. Packing copies
// values bit-for-bit and the packed kernels accumulate in exactly the
// unpacked order, so a fleet running on panels emits byte-identical
// traces — panels change where weights live, never what they compute.
//
// A PackedLSTM is immutable after Pack and safe to share across
// fleets and goroutines; build one per published snapshot (internal/
// core caches it next to the model's f32 conversion) and rebuild on
// hot reload — a reloaded model value starts with an empty cache, so
// stale panels cannot survive a weight swap.

// packedLayer holds one layer's panel-packed step matrices.
type packedLayer struct {
	wx *mat.PackedDense // [in x 4H]
	wh *mat.PackedDense // [H x 4H]
}

// PackedLSTM carries panel-packed copies of an LSTM's decode weights.
// Training never reads it: the optimizer updates the unpacked Params,
// and serving snapshots re-pack from those.
type PackedLSTM struct {
	src    *LSTM
	layers []packedLayer
	wy     *mat.PackedDense // [H x OutputDim]
}

// Pack converts the network's decode weights into panels. Call at
// snapshot publish; the result is valid until the weights change, at
// which point it must be rebuilt (hot reload publishes a fresh model
// value, so its pack cache starts empty).
func (n *LSTM) Pack() *PackedLSTM {
	p := &PackedLSTM{src: n}
	for _, l := range n.layers {
		p.layers = append(p.layers, packedLayer{
			wx: l.wx.Value.Pack(),
			wh: l.wh.Value.Pack(),
		})
	}
	p.wy = n.wy.Value.Pack()
	return p
}

// packedLayer32 and PackedLSTM32 are the float32 counterparts, packed
// from the Convert32 snapshot the f32 serving path runs on.
type packedLayer32 struct {
	wx *mat.PackedDense32
	wh *mat.PackedDense32
}

// PackedLSTM32 carries panel-packed copies of an LSTM32's decode
// weights.
type PackedLSTM32 struct {
	src    *LSTM32
	layers []packedLayer32
	wy     *mat.PackedDense32
}

// Pack converts the f32 snapshot's decode weights into panels.
func (n *LSTM32) Pack() *PackedLSTM32 {
	p := &PackedLSTM32{src: n}
	for _, l := range n.layers {
		p.layers = append(p.layers, packedLayer32{
			wx: l.wx.Pack32(),
			wh: l.wh.Pack32(),
		})
	}
	p.wy = n.wy.Pack32()
	return p
}

// NewFleetPacked is NewFleet with the step GEMMs bound to packed
// panels and the bias/gate-activation pass fused into the wh kernel's
// tile epilogue (bit-identical to the unpacked fleet; see Fleet's
// comment). p must have been packed from this network; a nil p yields
// a plain unpacked fleet, which is how REPRO_NOPACK falls through.
func (n *LSTM) NewFleetPacked(capacity int, p *PackedLSTM) *Fleet {
	f := n.NewFleet(capacity)
	if p == nil {
		return f
	}
	if p.src != n {
		panic("nn: NewFleetPacked panels packed from a different network")
	}
	f.panels = p
	// The epilogues are built once here so steady-state Step calls
	// allocate nothing. Each reads the current subset through the fleet's
	// preallocated view headers (f.zv / f.yv), which Step points at the
	// gathered rows before the packed GEMM runs.
	f.epis = make([]func(int, int), len(n.layers))
	for l := range n.layers {
		f.epis[l] = f.gateEpi(l)
	}
	f.headEpi = f.headBiasEpi()
	return f
}

// Packed reports whether this fleet steps on panel-packed weights
// (false on plain NewFleet fleets and under REPRO_NOPACK). Diagnostic
// only — packed and unpacked fleets are byte-identical.
func (f *Fleet) Packed() bool { return f.panels != nil }

// Packed reports whether this f32 fleet steps on panel-packed weights.
func (f *Fleet32) Packed() bool { return f.panels != nil }

// gateEpi returns layer l's fused epilogue: for gate columns [j0, j1)
// of every gathered row, add the bias and apply the gate
// nonlinearity — sigmoid on the i/f/o segments, tanh on the g
// segment — while the tile is still hot in L1. Activations and bias
// adds are elementwise, so applying them per tile computes exactly
// what the unpacked path's whole-slab AddBiasRows + per-row activation
// sweep computes.
func (f *Fleet) gateEpi(l int) func(j0, j1 int) {
	layer := f.net.layers[l]
	hd := f.net.Cfg.HiddenDim
	return func(j0, j1 int) {
		bias := layer.b.Value.Row(0)
		k := f.zv.Rows
		for i := 0; i < k; i++ {
			zrow := f.zv.Row(i)
			for j := j0; j < j1; j++ {
				zrow[j] += bias[j]
			}
			// A tile may straddle gate boundaries, so apply each
			// activation to its intersection with [j0, j1). Segments are
			// at most one tile wide (≤ hd after intersection), so f.ts
			// always fits the tanh scratch.
			if lo, hi := j0, min(j1, 2*hd); lo < hi {
				vecSigmoid(zrow[lo:hi]) // i and f gates
			}
			if lo, hi := max(j0, 2*hd), min(j1, 3*hd); lo < hi {
				vecTanhInto(zrow[lo:hi], zrow[lo:hi], f.ts) // g gate
			}
			if lo, hi := max(j0, 3*hd), j1; lo < hi {
				vecSigmoid(zrow[lo:hi]) // o gate
			}
		}
	}
}

// headBiasEpi returns the head epilogue: add the output bias to the
// finished logit columns of every gathered row.
func (f *Fleet) headBiasEpi() func(j0, j1 int) {
	return func(j0, j1 int) {
		bias := f.net.by.Value.Row(0)
		k := f.yv.Rows
		for i := 0; i < k; i++ {
			yrow := f.yv.Row(i)
			for j := j0; j < j1; j++ {
				yrow[j] += bias[j]
			}
		}
	}
}

// NewFleet32Packed is NewFleet32 bound to f32 panels with the fused
// gate epilogue; a nil p yields a plain unpacked fleet (REPRO_NOPACK).
func (n *LSTM32) NewFleet32Packed(capacity int, p *PackedLSTM32) *Fleet32 {
	f := n.NewFleet32(capacity)
	if p == nil {
		return f
	}
	if p.src != n {
		panic("nn: NewFleet32Packed panels packed from a different network")
	}
	f.panels = p
	f.epis = make([]func(int, int), len(n.layers))
	for l := range n.layers {
		f.epis[l] = f.gateEpi32(l)
	}
	f.headEpi = f.headBiasEpi32()
	return f
}

// gateEpi32 is gateEpi on the f32 slab: bias add plus the native f32
// segment activations (SigmoidSlice32/TanhSlice32 allow exact
// aliasing and any length, with asm and portable paths bit-identical,
// so the per-tile split cannot change a bit).
func (f *Fleet32) gateEpi32(l int) func(j0, j1 int) {
	layer := f.net.layers[l]
	hd := f.net.Cfg.HiddenDim
	return func(j0, j1 int) {
		bias := layer.b
		k := f.zv.Rows
		for i := 0; i < k; i++ {
			zrow := f.zv.Row(i)
			for j := j0; j < j1; j++ {
				zrow[j] += bias[j]
			}
			if lo, hi := j0, min(j1, 2*hd); lo < hi {
				mat.SigmoidSlice32(zrow[lo:hi], zrow[lo:hi]) // i and f gates
			}
			if lo, hi := max(j0, 2*hd), min(j1, 3*hd); lo < hi {
				mat.TanhSlice32(zrow[lo:hi], zrow[lo:hi]) // g gate
			}
			if lo, hi := max(j0, 3*hd), j1; lo < hi {
				mat.SigmoidSlice32(zrow[lo:hi], zrow[lo:hi]) // o gate
			}
		}
	}
}

// headBiasEpi32 adds the f32 output bias to finished logit columns.
func (f *Fleet32) headBiasEpi32() func(j0, j1 int) {
	return func(j0, j1 int) {
		bias := f.net.by
		k := f.y32v.Rows
		for i := 0; i < k; i++ {
			yrow := f.y32v.Row(i)
			for j := j0; j < j1; j++ {
				yrow[j] += bias[j]
			}
		}
	}
}
