package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
)

// TestFleetPackedMatchesUnpacked pins byte-identity between a packed
// fleet (panel GEMMs + fused epilogues) and the unpacked fleet across
// stepped batches, at hidden sizes that exercise the wide tiles, the
// narrow cleanup tiles, and the head's scalar column tail.
func TestFleetPackedMatchesUnpacked(t *testing.T) {
	cfgs := []Config{
		{InputDim: 9, HiddenDim: 8, Layers: 2, OutputDim: 5},
		{InputDim: 7, HiddenDim: 5, Layers: 2, OutputDim: 3},
		{InputDim: 11, HiddenDim: 12, Layers: 1, OutputDim: 17},
	}
	for _, cfg := range cfgs {
		net := NewLSTM(cfg, rng.New(7))
		ref := net.NewFleet(4)
		pf := net.NewFleetPacked(4, net.Pack())
		const streams = 6
		rows := make([]int, streams)
		prows := make([]int, streams)
		for s := 0; s < streams; s++ {
			rows[s] = ref.Admit()
			prows[s] = pf.Admit()
		}
		for step := 0; step < 12; step++ {
			// Interleaved subsets so gather/scatter and batch composition
			// invariance are exercised too.
			var batch, pbatch []int
			for s := 0; s < streams; s++ {
				if (s+step)%3 == 0 {
					continue
				}
				i := len(batch)
				fleetInput(ref.InputRow(i), s, step)
				fleetInput(pf.InputRow(i), s, step)
				batch = append(batch, rows[s])
				pbatch = append(pbatch, prows[s])
			}
			want := ref.Step(batch)
			got := pf.Step(pbatch)
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("cfg %+v step %d: logit %d differs packed vs unpacked", cfg, step, i)
				}
			}
		}
	}
}

// TestFleet32PackedMatchesUnpacked is the f32 pin, under both kernel
// rounding contracts (the FMA panel tiles only run with fast-math).
func TestFleet32PackedMatchesUnpacked(t *testing.T) {
	for _, fm := range []bool{false, true} {
		saved := mat.FastMath()
		mat.SetFastMath(fm)
		defer mat.SetFastMath(saved)
		cfgs := []Config{
			{InputDim: 9, HiddenDim: 8, Layers: 2, OutputDim: 5},
			{InputDim: 7, HiddenDim: 5, Layers: 2, OutputDim: 3},
		}
		for _, cfg := range cfgs {
			net := NewLSTM(cfg, rng.New(11)).Convert32()
			ref := net.NewFleet32(4)
			pf := net.NewFleet32Packed(4, net.Pack())
			const streams = 5
			rows := make([]int, streams)
			prows := make([]int, streams)
			for s := 0; s < streams; s++ {
				rows[s] = ref.Admit()
				prows[s] = pf.Admit()
			}
			for step := 0; step < 10; step++ {
				for s := 0; s < streams; s++ {
					fleetInput(ref.InputRow(s), s, step)
					fleetInput(pf.InputRow(s), s, step)
				}
				want := ref.Step(rows)
				got := pf.Step(prows)
				for i := range want.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("fastmath=%v cfg %+v step %d: logit %d differs packed vs unpacked",
							fm, cfg, step, i)
					}
				}
			}
		}
	}
}

// TestFleetPackedStepAllocFree pins the packed decode step at zero
// steady-state allocations: panels and epilogue closures are built at
// publish/construction, never per step.
func TestFleetPackedStepAllocFree(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	net := fleetTestNet()
	const streams = 8
	f := net.NewFleetPacked(streams, net.Pack())
	batch := make([]int, streams)
	for s := 0; s < streams; s++ {
		batch[s] = f.Admit()
	}
	for i := range batch {
		fleetInput(f.InputRow(i), i, 0)
	}
	f.Step(batch)
	if allocs := testing.AllocsPerRun(100, func() {
		for i := range batch {
			in := f.InputRow(i)
			clear(in)
			if i%2 == 1 {
				in[i%len(in)] = 1
			} else {
				for j := range in {
					in[j] = float64(i*7+j) * 0.125
				}
			}
		}
		f.Step(batch)
	}); allocs != 0 {
		t.Fatalf("packed fleet step allocates %v times, want 0", allocs)
	}
}

// TestNewFleetPackedNilPanels pins the REPRO_NOPACK fall-through: a
// nil panel set yields a plain unpacked fleet.
func TestNewFleetPackedNilPanels(t *testing.T) {
	net := fleetTestNet()
	f := net.NewFleetPacked(2, nil)
	if f.panels != nil || f.epis != nil || f.headEpi != nil {
		t.Fatal("nil panels must yield an unpacked fleet")
	}
	f32 := net.Convert32()
	g := f32.NewFleet32Packed(2, nil)
	if g.panels != nil || g.epis != nil || g.headEpi != nil {
		t.Fatal("nil panels must yield an unpacked f32 fleet")
	}
}
