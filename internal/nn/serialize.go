package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/rng"
)

// paramBlob is one named weight tensor on the snapshot wire format.
// Params are encoded as a slice in construction order, not a map: gob
// walks maps in Go's randomized iteration order, which would make two
// snapshots of identical weights differ byte for byte and break the
// repository-wide byte-identical-output determinism contract.
type paramBlob struct {
	Name   string
	Values []float64
}

// marshalParams encodes a parameter list (with any gob-encodable config)
// into the shared snapshot wire format.
func marshalParams[C any](cfg C, params []*Param) ([]byte, error) {
	blobs := make([]paramBlob, 0, len(params))
	for _, p := range params {
		vals := make([]float64, len(p.Value.Data))
		copy(vals, p.Value.Data)
		blobs = append(blobs, paramBlob{Name: p.Name, Values: vals})
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(cfg); err != nil {
		return nil, fmt.Errorf("nn: marshal config: %w", err)
	}
	if err := enc.Encode(blobs); err != nil {
		return nil, fmt.Errorf("nn: marshal values: %w", err)
	}
	return buf.Bytes(), nil
}

// unmarshalParams decodes the wire format into cfg and copies the values
// into the freshly constructed params (matched by name).
func unmarshalParams[C any](data []byte, cfg *C, fresh func(C) []*Param) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("nn: unmarshal config: %w", err)
	}
	var blobs []paramBlob
	if err := dec.Decode(&blobs); err != nil {
		return fmt.Errorf("nn: unmarshal values: %w", err)
	}
	values := make(map[string][]float64, len(blobs))
	for _, b := range blobs {
		values[b.Name] = b.Values
	}
	for _, p := range fresh(*cfg) {
		vals, ok := values[p.Name]
		if !ok {
			return fmt.Errorf("nn: unmarshal: missing param %q", p.Name)
		}
		if len(vals) != len(p.Value.Data) {
			return fmt.Errorf("nn: unmarshal: param %q has %d values, want %d", p.Name, len(vals), len(p.Value.Data))
		}
		copy(p.Value.Data, vals)
	}
	return nil
}

// MarshalBinary serializes the network configuration and weights.
func (n *LSTM) MarshalBinary() ([]byte, error) {
	return marshalParams(n.Cfg, n.params)
}

// UnmarshalBinary restores a network previously serialized with
// MarshalBinary. The receiver's architecture is replaced.
func (n *LSTM) UnmarshalBinary(data []byte) error {
	var cfg Config
	var fresh *LSTM
	err := unmarshalParams(data, &cfg, func(c Config) []*Param {
		fresh = NewLSTM(c, rng.New(0)) // init values are overwritten
		return fresh.params
	})
	if err != nil {
		return err
	}
	*n = *fresh
	return nil
}

// MarshalBinary serializes the GRU's configuration and weights.
func (n *GRU) MarshalBinary() ([]byte, error) {
	return marshalParams(n.Cfg, n.params)
}

// UnmarshalBinary restores a GRU serialized with MarshalBinary.
func (n *GRU) UnmarshalBinary(data []byte) error {
	var cfg Config
	var fresh *GRU
	err := unmarshalParams(data, &cfg, func(c Config) []*Param {
		fresh = NewGRU(c, rng.New(0))
		return fresh.params
	})
	if err != nil {
		return err
	}
	*n = *fresh
	return nil
}

// MarshalBinary serializes the Transformer's configuration and weights.
func (t *Transformer) MarshalBinary() ([]byte, error) {
	return marshalParams(t.Cfg, t.params)
}

// UnmarshalBinary restores a Transformer serialized with MarshalBinary.
func (t *Transformer) UnmarshalBinary(data []byte) error {
	var cfg TransformerConfig
	var fresh *Transformer
	err := unmarshalParams(data, &cfg, func(c TransformerConfig) []*Param {
		fresh = NewTransformer(c, rng.New(0))
		return fresh.params
	})
	if err != nil {
		return err
	}
	*t = *fresh
	return nil
}
