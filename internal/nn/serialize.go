package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/rng"
)

// paramBlob is one named weight tensor on the snapshot wire format.
// Params are encoded as a slice in construction order, not a map: gob
// walks maps in Go's randomized iteration order, which would make two
// snapshots of identical weights differ byte for byte and break the
// repository-wide byte-identical-output determinism contract.
type paramBlob struct {
	Name   string
	Values []float64
}

// marshalParams encodes a parameter list (with any gob-encodable config)
// into the shared snapshot wire format.
func marshalParams[C any](cfg C, params []*Param) ([]byte, error) {
	blobs := make([]paramBlob, 0, len(params))
	for _, p := range params {
		vals := make([]float64, len(p.Value.Data))
		copy(vals, p.Value.Data)
		blobs = append(blobs, paramBlob{Name: p.Name, Values: vals})
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(cfg); err != nil {
		return nil, fmt.Errorf("nn: marshal config: %w", err)
	}
	if err := enc.Encode(blobs); err != nil {
		return nil, fmt.Errorf("nn: marshal values: %w", err)
	}
	return buf.Bytes(), nil
}

// Snapshot decode bounds. Snapshots come from disk (checkpoints, model
// files) and may be corrupt or hostile; every dimension is validated
// BEFORE any allocation is sized from it, so arbitrary input yields an
// error, never a panic or an absurd allocation (the FuzzSnapshotDecode
// target enforces this).
const (
	// maxSnapshotDim caps any single config dimension.
	maxSnapshotDim = 1 << 15
	// maxSnapshotParams caps the total scalar parameters a snapshot may
	// ask to restore (64M float64s = 512 MiB).
	maxSnapshotParams = 1 << 26
)

// checkLSTMConfig validates a decoded LSTM/GRU config against the
// snapshot bounds: validate() rejects non-positive dims, the caps
// reject dimensions large enough to make construction itself a DoS.
func checkLSTMConfig(c Config) error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.InputDim > maxSnapshotDim || c.HiddenDim > maxSnapshotDim ||
		c.Layers > maxSnapshotDim || c.OutputDim > maxSnapshotDim {
		return fmt.Errorf("nn: snapshot config dimensions exceed limit %d: %+v", maxSnapshotDim, c)
	}
	// Parameter-count bound (LSTM is the largest of the two recurrent
	// architectures; the same estimate safely over-covers the GRU).
	in, h, od := int64(c.InputDim), int64(c.HiddenDim), int64(c.OutputDim)
	total := (in+h)*4*h + 4*h // layer 0
	total += int64(c.Layers-1) * (2*h*4*h + 4*h)
	total += h*od + od
	if total > maxSnapshotParams {
		return fmt.Errorf("nn: snapshot config implies %d params, limit %d", total, maxSnapshotParams)
	}
	return nil
}

// checkTransformerConfig is the transformer-shaped counterpart of
// checkLSTMConfig.
func checkTransformerConfig(c TransformerConfig) error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.InputDim > maxSnapshotDim || c.ModelDim > maxSnapshotDim ||
		c.Heads > maxSnapshotDim || c.FFDim > maxSnapshotDim ||
		c.Layers > maxSnapshotDim || c.OutputDim > maxSnapshotDim ||
		c.MaxLen > maxSnapshotDim {
		return fmt.Errorf("nn: snapshot config dimensions exceed limit %d: %+v", maxSnapshotDim, c)
	}
	in, d, f, od := int64(c.InputDim), int64(c.ModelDim), int64(c.FFDim), int64(c.OutputDim)
	total := in*d + d + int64(c.MaxLen)*d // embedding + positions
	total += int64(c.Layers) * (4*d*d + 2*d*f + f + 5*d)
	total += 2*d + d*od + od // final LN + head
	if total > maxSnapshotParams {
		return fmt.Errorf("nn: snapshot config implies %d params, limit %d", total, maxSnapshotParams)
	}
	return nil
}

// unmarshalParams decodes the wire format into cfg, validates it with
// check before any construction, and copies the values into the freshly
// constructed params (matched by name).
func unmarshalParams[C any](data []byte, cfg *C, check func(C) error, fresh func(C) []*Param) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("nn: unmarshal config: %w", err)
	}
	if err := check(*cfg); err != nil {
		return fmt.Errorf("nn: unmarshal: %w", err)
	}
	var blobs []paramBlob
	if err := dec.Decode(&blobs); err != nil {
		return fmt.Errorf("nn: unmarshal values: %w", err)
	}
	values := make(map[string][]float64, len(blobs))
	for _, b := range blobs {
		values[b.Name] = b.Values
	}
	for _, p := range fresh(*cfg) {
		vals, ok := values[p.Name]
		if !ok {
			return fmt.Errorf("nn: unmarshal: missing param %q", p.Name)
		}
		if len(vals) != len(p.Value.Data) {
			return fmt.Errorf("nn: unmarshal: param %q has %d values, want %d", p.Name, len(vals), len(p.Value.Data))
		}
		copy(p.Value.Data, vals)
	}
	return nil
}

// MarshalBinary serializes the network configuration and weights.
func (n *LSTM) MarshalBinary() ([]byte, error) {
	return marshalParams(n.Cfg, n.params)
}

// UnmarshalBinary restores a network previously serialized with
// MarshalBinary. The receiver's architecture is replaced.
func (n *LSTM) UnmarshalBinary(data []byte) error {
	var cfg Config
	var fresh *LSTM
	err := unmarshalParams(data, &cfg, checkLSTMConfig, func(c Config) []*Param {
		fresh = NewLSTM(c, rng.New(0)) // init values are overwritten
		return fresh.params
	})
	if err != nil {
		return err
	}
	*n = *fresh
	return nil
}

// MarshalBinary serializes the GRU's configuration and weights.
func (n *GRU) MarshalBinary() ([]byte, error) {
	return marshalParams(n.Cfg, n.params)
}

// UnmarshalBinary restores a GRU serialized with MarshalBinary.
func (n *GRU) UnmarshalBinary(data []byte) error {
	var cfg Config
	var fresh *GRU
	err := unmarshalParams(data, &cfg, checkLSTMConfig, func(c Config) []*Param {
		fresh = NewGRU(c, rng.New(0))
		return fresh.params
	})
	if err != nil {
		return err
	}
	*n = *fresh
	return nil
}

// optStateWire is the optimizer-state snapshot wire format: the Adam
// step counter (which drives bias correction, so it must survive a
// resume bit-exactly) plus per-param first/second moment tensors in
// construction order (a slice, not a map, for the same determinism
// reason as paramBlob).
type optStateWire struct {
	Steps   int
	Moments []momentBlob
}

type momentBlob struct {
	Name string
	M    []float64
	V    []float64
}

// MarshalOptState serializes the Adam optimizer state (step counter and
// the per-param moment estimates) so a resumed run continues the exact
// update trajectory of an uninterrupted one.
func MarshalOptState(opt *Adam, params []*Param) ([]byte, error) {
	w := optStateWire{Steps: opt.t, Moments: make([]momentBlob, 0, len(params))}
	for _, p := range params {
		m := make([]float64, len(p.m.Data))
		copy(m, p.m.Data)
		v := make([]float64, len(p.v.Data))
		copy(v, p.v.Data)
		w.Moments = append(w.Moments, momentBlob{Name: p.Name, M: m, V: v})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("nn: marshal opt state: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalOptState restores optimizer state saved by MarshalOptState
// into opt and the given params (matched by name; lengths must agree
// with the params' shapes). Corrupt input yields an error, never a
// panic.
func UnmarshalOptState(data []byte, opt *Adam, params []*Param) error {
	var w optStateWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("nn: unmarshal opt state: %w", err)
	}
	if w.Steps < 0 {
		return fmt.Errorf("nn: unmarshal opt state: negative step counter %d", w.Steps)
	}
	moments := make(map[string]momentBlob, len(w.Moments))
	for _, b := range w.Moments {
		moments[b.Name] = b
	}
	for _, p := range params {
		b, ok := moments[p.Name]
		if !ok {
			return fmt.Errorf("nn: unmarshal opt state: missing moments for param %q", p.Name)
		}
		if len(b.M) != len(p.m.Data) || len(b.V) != len(p.v.Data) {
			return fmt.Errorf("nn: unmarshal opt state: param %q moment sizes %d/%d, want %d/%d",
				p.Name, len(b.M), len(b.V), len(p.m.Data), len(p.v.Data))
		}
	}
	// Validate-then-mutate: nothing above touched opt or params, so a
	// corrupt snapshot leaves the optimizer untouched.
	opt.t = w.Steps
	for _, p := range params {
		b := moments[p.Name]
		copy(p.m.Data, b.M)
		copy(p.v.Data, b.V)
	}
	return nil
}

// MarshalBinary serializes the Transformer's configuration and weights.
func (t *Transformer) MarshalBinary() ([]byte, error) {
	return marshalParams(t.Cfg, t.params)
}

// UnmarshalBinary restores a Transformer serialized with MarshalBinary.
func (t *Transformer) UnmarshalBinary(data []byte) error {
	var cfg TransformerConfig
	var fresh *Transformer
	err := unmarshalParams(data, &cfg, checkTransformerConfig, func(c TransformerConfig) []*Param {
		fresh = NewTransformer(c, rng.New(0))
		return fresh.params
	})
	if err != nil {
		return err
	}
	*t = *fresh
	return nil
}
