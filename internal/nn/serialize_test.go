package nn

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// encodeSnapshot builds a snapshot frame by hand so tests can feed
// UnmarshalBinary arbitrary (including invalid) configs without going
// through a constructor that would reject them.
func encodeSnapshot(t *testing.T, cfg any, blobs []paramBlob) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(cfg); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(blobs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUnmarshalRejectsCorruptInput is the panic-audit regression suite:
// every case here previously panicked (constructor panic on invalid
// config) or risked an absurd allocation; all must now return errors.
func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	valid, err := NewLSTM(Config{InputDim: 3, HiddenDim: 4, Layers: 1, OutputDim: 2}, rng.New(1)).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage":       []byte("not a gob stream at all"),
		"empty":         {},
		"truncated gob": valid[:len(valid)/2],
		"zero dims": encodeSnapshot(t, Config{}, nil),
		"negative dims": encodeSnapshot(t,
			Config{InputDim: -1, HiddenDim: -8, Layers: -2, OutputDim: -3}, nil),
		"huge dims": encodeSnapshot(t,
			Config{InputDim: 1 << 20, HiddenDim: 1 << 20, Layers: 1 << 20, OutputDim: 1 << 20}, nil),
		"oom dims within per-dim cap": encodeSnapshot(t,
			Config{InputDim: 1 << 14, HiddenDim: 1 << 14, Layers: 1 << 14, OutputDim: 2}, nil),
		"missing param": encodeSnapshot(t,
			Config{InputDim: 3, HiddenDim: 4, Layers: 1, OutputDim: 2}, nil),
		"short param": encodeSnapshot(t,
			Config{InputDim: 3, HiddenDim: 4, Layers: 1, OutputDim: 2},
			[]paramBlob{{Name: "layer0.Wx", Values: []float64{1}}}),
	}
	for name, data := range cases {
		var l LSTM
		if err := l.UnmarshalBinary(data); err == nil {
			t.Errorf("LSTM %s: decoded without error", name)
		}
		var g GRU
		if err := g.UnmarshalBinary(data); err == nil {
			t.Errorf("GRU %s: decoded without error", name)
		}
	}
}

func TestUnmarshalTransformerRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"garbage":   []byte{0x42, 0x00, 0xFF},
		"zero dims": encodeSnapshot(t, TransformerConfig{}, nil),
		"heads do not divide model dim": encodeSnapshot(t,
			TransformerConfig{InputDim: 3, ModelDim: 10, Heads: 3, FFDim: 8, Layers: 1, OutputDim: 2, MaxLen: 16}, nil),
		"huge dims": encodeSnapshot(t,
			TransformerConfig{InputDim: 1 << 20, ModelDim: 1 << 20, Heads: 1 << 20, FFDim: 1 << 20, Layers: 1 << 20, OutputDim: 1 << 20, MaxLen: 1 << 20}, nil),
		"oom dims within per-dim cap": encodeSnapshot(t,
			TransformerConfig{InputDim: 4, ModelDim: 1 << 13, Heads: 2, FFDim: 1 << 15, Layers: 1 << 10, OutputDim: 2, MaxLen: 8}, nil),
	}
	for name, data := range cases {
		var tr Transformer
		if err := tr.UnmarshalBinary(data); err == nil {
			t.Errorf("Transformer %s: decoded without error", name)
		}
	}
}

// TestUnmarshalErrorLeavesReceiverUsable checks that a failed decode
// does not corrupt an existing in-memory model (the hot-reload path
// relies on this: a bad snapshot must not take down the serving model).
func TestUnmarshalErrorLeavesReceiverUsable(t *testing.T) {
	n := NewLSTM(Config{InputDim: 3, HiddenDim: 4, Layers: 1, OutputDim: 2}, rng.New(7))
	before, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	after, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed decode mutated the receiver")
	}
}

func trainFewSteps(t *testing.T, n *LSTM, opt *Adam, steps int) {
	t.Helper()
	g := rng.New(42)
	const seqLen = 4
	for s := 0; s < steps; s++ {
		st := n.NewState(1)
		xs := make([]*mat.Dense, seqLen)
		for i := range xs {
			xs[i] = mat.NewDense(1, n.Cfg.InputDim)
			for j := range xs[i].Data {
				xs[i].Data[j] = g.Float64()
			}
		}
		ys, cache := n.Forward(xs, st)
		dys := make([]*mat.Dense, len(ys))
		for i, y := range ys {
			dys[i] = mat.NewDense(1, n.Cfg.OutputDim)
			for j := range y.Data {
				dys[i].Data[j] = y.Data[j] - 0.5
			}
		}
		n.ZeroGrads()
		n.Backward(cache, dys)
		opt.Step(n.Params())
	}
}

// TestOptStateRoundTrip is the bit-exact resume property at the
// optimizer level: weights + opt state restored into a fresh net must
// continue training identically to the original.
func TestOptStateRoundTrip(t *testing.T) {
	cfg := Config{InputDim: 3, HiddenDim: 4, Layers: 2, OutputDim: 2}
	a := NewLSTM(cfg, rng.New(11))
	optA := NewAdam(1e-2)
	trainFewSteps(t, a, optA, 5)

	weights, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	optBlob, err := MarshalOptState(optA, a.Params())
	if err != nil {
		t.Fatal(err)
	}

	var b LSTM
	if err := b.UnmarshalBinary(weights); err != nil {
		t.Fatal(err)
	}
	optB := NewAdam(1e-2)
	if err := UnmarshalOptState(optBlob, optB, b.Params()); err != nil {
		t.Fatal(err)
	}
	if optB.Steps() != optA.Steps() {
		t.Fatalf("restored step counter %d, want %d", optB.Steps(), optA.Steps())
	}

	// Continue both nets identically; they must stay byte-identical.
	trainFewSteps(t, a, optA, 5)
	trainFewSteps(t, &b, optB, 5)
	wa, _ := a.MarshalBinary()
	wb, _ := b.MarshalBinary()
	if !bytes.Equal(wa, wb) {
		t.Fatal("resumed training diverged from uninterrupted run")
	}
}

// TestOptStateRejectsCorruptInput: corrupt optimizer snapshots error
// out and leave the optimizer and moments untouched.
func TestOptStateRejectsCorruptInput(t *testing.T) {
	cfg := Config{InputDim: 3, HiddenDim: 4, Layers: 1, OutputDim: 2}
	n := NewLSTM(cfg, rng.New(3))
	opt := NewAdam(1e-2)
	trainFewSteps(t, n, opt, 3)
	stepsBefore := opt.Steps()

	good, err := MarshalOptState(opt, n.Params())
	if err != nil {
		t.Fatal(err)
	}

	encode := func(w optStateWire) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	short := momentBlob{Name: n.Params()[0].Name, M: []float64{1}, V: []float64{2}}
	cases := map[string][]byte{
		"garbage":        []byte("\x01\x02garbage"),
		"truncated":      good[:len(good)/3],
		"negative steps": encode(optStateWire{Steps: -4}),
		"missing param":  encode(optStateWire{Steps: 1}),
		"length mismatch": encode(optStateWire{
			Steps: 1, Moments: []momentBlob{short},
		}),
	}
	for name, data := range cases {
		if err := UnmarshalOptState(data, opt, n.Params()); err == nil {
			t.Errorf("%s: corrupt opt state decoded without error", name)
		}
		if opt.Steps() != stepsBefore {
			t.Fatalf("%s: failed decode mutated the step counter", name)
		}
	}
}

// TestCorruptErrorsAreWrapped: hardened decode errors carry the nn:
// prefix so callers can attribute failures to snapshot decoding.
func TestCorruptErrorsAreWrapped(t *testing.T) {
	var l LSTM
	err := l.UnmarshalBinary(encodeSnapshot(t, Config{InputDim: -1}, nil))
	if err == nil || !strings.Contains(err.Error(), "nn:") {
		t.Fatalf("error not attributed to nn: %v", err)
	}
}
