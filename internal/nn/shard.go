// Minibatch sharding: the deterministic data-parallel training driver.
//
// A minibatch of B independent sequences is split into fixed row-shards
// (ShardRows rows each — a constant, never a function of the worker
// count). Each shard runs Forward/Backward on a shadow of the network
// that shares the weight tensors but owns private gradient buffers, so
// shards never race. When every shard has finished, the per-shard
// gradients and losses are reduced into the real network in ascending
// shard order. Because the shard layout and the reduction order are
// both fixed, every Adam update — and therefore every trained weight
// and every generated trace — is bit-identical for any REPRO_PROCS.
package nn

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/par"
)

// ShardRows is the fixed row granularity of minibatch sharding. One row
// per shard maximizes available parallelism at the small batch sizes
// this repository trains with; determinism requires only that it never
// depend on the worker count.
const ShardRows = 1

// NumShards returns how many shards a batch of b rows splits into.
func NumShards(b int) int { return (b + ShardRows - 1) / ShardRows }

// shadowParam returns a Param sharing p's value tensor but owning a
// fresh gradient buffer. Shadow params carry no Adam moments: only the
// real network's params ever reach the optimizer.
func shadowParam(p *Param) *Param {
	return &Param{
		Name:  p.Name,
		Value: p.Value,
		Grad:  mat.NewDense(p.Grad.Rows, p.Grad.Cols),
	}
}

// ShadowGrads returns a network sharing n's weight tensors but with
// private gradient buffers, for race-free per-shard backward passes.
func (n *LSTM) ShadowGrads() *LSTM {
	s := &LSTM{Cfg: n.Cfg}
	for _, l := range n.layers {
		sl := &lstmLayer{
			in: l.in, hidden: l.hidden, first: l.first,
			wx: shadowParam(l.wx), wh: shadowParam(l.wh), b: shadowParam(l.b),
		}
		s.layers = append(s.layers, sl)
		s.params = append(s.params, sl.wx, sl.wh, sl.b)
	}
	s.wy, s.by = shadowParam(n.wy), shadowParam(n.by)
	s.params = append(s.params, s.wy, s.by)
	return s
}

// ShadowGrads is the GRU counterpart of LSTM.ShadowGrads.
func (n *GRU) ShadowGrads() *GRU {
	s := &GRU{Cfg: n.Cfg}
	for _, l := range n.layers {
		sl := &gruLayer{
			in: l.in, hidden: l.hidden, first: l.first,
			wx: shadowParam(l.wx), wh: shadowParam(l.wh), b: shadowParam(l.b),
		}
		s.layers = append(s.layers, sl)
		s.params = append(s.params, sl.wx, sl.wh, sl.b)
	}
	s.wy, s.by = shadowParam(n.wy), shadowParam(n.by)
	s.params = append(s.params, s.wy, s.by)
	return s
}

// SliceRows returns a view of rows [lo, hi) of the state. The view
// aliases s's storage until Forward replaces the per-layer matrices.
func (s *State) SliceRows(lo, hi int) *State {
	out := &State{}
	for i := range s.H {
		out.H = append(out.H, s.H[i].SliceRows(lo, hi))
		out.C = append(out.C, s.C[i].SliceRows(lo, hi))
	}
	return out
}

// CopyRows copies the (hi-lo)-row state src into rows [lo, hi) of s.
func (s *State) CopyRows(lo, hi int, src *State) {
	for i := range s.H {
		copy(s.H[i].SliceRows(lo, hi).Data, src.H[i].Data)
		copy(s.C[i].SliceRows(lo, hi).Data, src.C[i].Data)
	}
}

// SliceRows returns a view of rows [lo, hi) of the GRU state.
func (s *GRUState) SliceRows(lo, hi int) *GRUState {
	out := &GRUState{}
	for i := range s.H {
		out.H = append(out.H, s.H[i].SliceRows(lo, hi))
	}
	return out
}

// CopyRows copies the (hi-lo)-row state src into rows [lo, hi) of s.
func (s *GRUState) CopyRows(lo, hi int, src *GRUState) {
	for i := range s.H {
		copy(s.H[i].SliceRows(lo, hi).Data, src.H[i].Data)
	}
}

// ShardDys computes the loss gradient for shard rows [lo, hi) given the
// shard's per-step output logits. It returns the per-step gradients
// (nil to skip the backward pass, e.g. when the whole window carries no
// valid targets), the summed loss, and the contributing output count.
// It is called concurrently for different shards and must touch only
// row-[lo,hi) slices of caller state.
type ShardDys func(lo, hi int, ys []*mat.Dense) (dys []*mat.Dense, loss float64, count int)

// sliceRowsSeq views rows [lo, hi) of every step input.
func sliceRowsSeq(xs []*mat.Dense, lo, hi int) []*mat.Dense {
	out := make([]*mat.Dense, len(xs))
	for i, x := range xs {
		out[i] = x.SliceRows(lo, hi)
	}
	return out
}

// ShardedLSTM drives sharded minibatch training of an LSTM. Shadows are
// allocated once and reused across windows and epochs.
type ShardedLSTM struct {
	Net     *LSTM
	shadows []*LSTM
}

// NewShardedLSTM prepares a sharded trainer for batches of up to
// maxBatch rows.
func NewShardedLSTM(net *LSTM, maxBatch int) *ShardedLSTM {
	s := &ShardedLSTM{Net: net}
	for i := 0; i < NumShards(maxBatch); i++ {
		s.shadows = append(s.shadows, net.ShadowGrads())
	}
	return s
}

// RunWindow runs one truncated-BPTT window: per shard, forward over the
// row-sliced inputs from the row-sliced state, loss gradients via dys,
// backward into the shard's private gradients, and the shard's final
// state written back into st. Gradients are then reduced into Net's
// params (zeroed first) in ascending shard order; losses and counts
// reduce in the same order. st is advanced in place exactly as a
// full-batch Forward would.
func (s *ShardedLSTM) RunWindow(xs []*mat.Dense, st *State, dys ShardDys) (loss float64, count int) {
	if len(xs) == 0 {
		return 0, 0
	}
	b := xs[0].Rows
	ns := NumShards(b)
	if ns > len(s.shadows) {
		panic(fmt.Sprintf("nn: RunWindow batch %d exceeds prepared shards %d", b, len(s.shadows)))
	}
	losses := make([]float64, ns)
	counts := make([]int, ns)
	par.Do(ns, func(si int) {
		lo := si * ShardRows
		hi := lo + ShardRows
		if hi > b {
			hi = b
		}
		shadow := s.shadows[si]
		shadow.ZeroGrads()
		sst := st.SliceRows(lo, hi)
		ys, cache := shadow.Forward(sliceRowsSeq(xs, lo, hi), sst)
		d, l, n := dys(lo, hi, ys)
		if d != nil {
			shadow.Backward(cache, d)
		}
		st.CopyRows(lo, hi, sst)
		losses[si], counts[si] = l, n
	})
	s.Net.ZeroGrads()
	reduceGrads(s.Net.params, ns, func(i int) []*Param { return s.shadows[i].params })
	for si := 0; si < ns; si++ {
		loss += losses[si]
		count += counts[si]
	}
	return loss, count
}

// ShardedGRU drives sharded minibatch training of a GRU.
type ShardedGRU struct {
	Net     *GRU
	shadows []*GRU
}

// NewShardedGRU prepares a sharded trainer for batches of up to
// maxBatch rows.
func NewShardedGRU(net *GRU, maxBatch int) *ShardedGRU {
	s := &ShardedGRU{Net: net}
	for i := 0; i < NumShards(maxBatch); i++ {
		s.shadows = append(s.shadows, net.ShadowGrads())
	}
	return s
}

// RunWindow is the GRU counterpart of ShardedLSTM.RunWindow.
func (s *ShardedGRU) RunWindow(xs []*mat.Dense, st *GRUState, dys ShardDys) (loss float64, count int) {
	if len(xs) == 0 {
		return 0, 0
	}
	b := xs[0].Rows
	ns := NumShards(b)
	if ns > len(s.shadows) {
		panic(fmt.Sprintf("nn: RunWindow batch %d exceeds prepared shards %d", b, len(s.shadows)))
	}
	losses := make([]float64, ns)
	counts := make([]int, ns)
	par.Do(ns, func(si int) {
		lo := si * ShardRows
		hi := lo + ShardRows
		if hi > b {
			hi = b
		}
		shadow := s.shadows[si]
		shadow.ZeroGrads()
		sst := st.SliceRows(lo, hi)
		ys, cache := shadow.Forward(sliceRowsSeq(xs, lo, hi), sst)
		d, l, n := dys(lo, hi, ys)
		if d != nil {
			shadow.Backward(cache, d)
		}
		st.CopyRows(lo, hi, sst)
		losses[si], counts[si] = l, n
	})
	s.Net.ZeroGrads()
	reduceGrads(s.Net.params, ns, func(i int) []*Param { return s.shadows[i].params })
	for si := 0; si < ns; si++ {
		loss += losses[si]
		count += counts[si]
	}
	return loss, count
}

// reduceGrads accumulates shard gradients into dst in ascending shard
// order — the fixed-order merge half of the determinism contract.
func reduceGrads(dst []*Param, ns int, shard func(i int) []*Param) {
	for si := 0; si < ns; si++ {
		src := shard(si)
		for pi, p := range dst {
			mat.Axpy(1, src[pi].Grad.Data, p.Grad.Data)
		}
	}
}
