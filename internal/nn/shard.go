// Minibatch sharding: the deterministic data-parallel training driver.
//
// A minibatch of B independent sequences is split into fixed row-shards
// (ShardRows rows each — a constant, never a function of the worker
// count). Each shard runs Forward/Backward on a shadow of the network
// that shares the weight tensors but owns private gradient buffers (and
// its own Workspace), so shards never race. When every shard has
// finished, the per-shard gradients and losses are reduced into the
// real network in ascending shard order. Because the shard layout and
// the reduction order are both fixed, every Adam update — and therefore
// every trained weight and every generated trace — is bit-identical for
// any REPRO_PROCS.
//
// All per-window bookkeeping (row-view headers for shard inputs and
// states, loss/count accumulators) is allocated once per trainer and
// rebound each window, keeping the steady-state sharded training loop
// allocation-free outside the networks' own workspaces.
package nn

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/par"
)

// ShardRows is the fixed row granularity of minibatch sharding. One row
// per shard maximizes available parallelism at the small batch sizes
// this repository trains with; determinism requires only that it never
// depend on the worker count.
const ShardRows = 1

// NumShards returns how many shards a batch of b rows splits into.
func NumShards(b int) int { return (b + ShardRows - 1) / ShardRows }

// shadowParam returns a Param sharing p's value tensor but owning a
// fresh gradient buffer. Shadow params carry no Adam moments: only the
// real network's params ever reach the optimizer.
func shadowParam(p *Param) *Param {
	return &Param{
		Name:  p.Name,
		Value: p.Value,
		Grad:  mat.NewDense(p.Grad.Rows, p.Grad.Cols),
	}
}

// ShadowGrads returns a network sharing n's weight tensors but with
// private gradient buffers, for race-free per-shard backward passes.
// The shadow acquires its own Workspace on first use.
func (n *LSTM) ShadowGrads() *LSTM {
	s := &LSTM{Cfg: n.Cfg}
	for _, l := range n.layers {
		sl := &lstmLayer{
			in: l.in, hidden: l.hidden, first: l.first,
			wx: shadowParam(l.wx), wh: shadowParam(l.wh), b: shadowParam(l.b),
		}
		s.layers = append(s.layers, sl)
		s.params = append(s.params, sl.wx, sl.wh, sl.b)
	}
	s.wy, s.by = shadowParam(n.wy), shadowParam(n.by)
	s.params = append(s.params, s.wy, s.by)
	return s
}

// ShadowGrads is the GRU counterpart of LSTM.ShadowGrads.
func (n *GRU) ShadowGrads() *GRU {
	s := &GRU{Cfg: n.Cfg}
	for _, l := range n.layers {
		sl := &gruLayer{
			in: l.in, hidden: l.hidden, first: l.first,
			wx: shadowParam(l.wx), wh: shadowParam(l.wh), b: shadowParam(l.b),
		}
		s.layers = append(s.layers, sl)
		s.params = append(s.params, sl.wx, sl.wh, sl.b)
	}
	s.wy, s.by = shadowParam(n.wy), shadowParam(n.by)
	s.params = append(s.params, s.wy, s.by)
	return s
}

// SliceRows returns a view of rows [lo, hi) of the state. The view
// aliases s's storage until Forward replaces the per-layer matrices.
func (s *State) SliceRows(lo, hi int) *State {
	out := &State{}
	for i := range s.H {
		out.H = append(out.H, s.H[i].SliceRows(lo, hi))
		out.C = append(out.C, s.C[i].SliceRows(lo, hi))
	}
	return out
}

// CopyRows copies the (hi-lo)-row state src into rows [lo, hi) of s.
func (s *State) CopyRows(lo, hi int, src *State) {
	for i := range s.H {
		c := s.H[i].Cols
		copy(s.H[i].Data[lo*c:hi*c], src.H[i].Data)
		c = s.C[i].Cols
		copy(s.C[i].Data[lo*c:hi*c], src.C[i].Data)
	}
}

// SliceRows returns a view of rows [lo, hi) of the GRU state.
func (s *GRUState) SliceRows(lo, hi int) *GRUState {
	out := &GRUState{}
	for i := range s.H {
		out.H = append(out.H, s.H[i].SliceRows(lo, hi))
	}
	return out
}

// CopyRows copies the (hi-lo)-row state src into rows [lo, hi) of s.
func (s *GRUState) CopyRows(lo, hi int, src *GRUState) {
	for i := range s.H {
		c := s.H[i].Cols
		copy(s.H[i].Data[lo*c:hi*c], src.H[i].Data)
	}
}

// ShardDys computes the loss gradient for shard rows [lo, hi) given the
// shard's per-step output logits. It returns the per-step gradients
// (nil to skip the backward pass, e.g. when the whole window carries no
// valid targets), the summed loss, and the contributing output count.
// It is called concurrently for different shards and must touch only
// row-[lo,hi) slices of caller state.
type ShardDys func(lo, hi int, ys []*mat.Dense) (dys []*mat.Dense, loss float64, count int)

// shardViews is one shard's reusable row-view bookkeeping: persistent
// matrix headers that are re-pointed at the current window's inputs and
// state rows, so the per-window fan-out performs no allocation. Each
// shard owns its views exclusively, preserving race freedom.
type shardViews struct {
	hv, cv []mat.Dense  // per-layer headers over the batch state's shard rows
	sH, sC []*mat.Dense // pointer slices backing the shard state
	sst    State        // shard state handed to Forward (GRU use leaves C empty)
	gst    GRUState
	xv     []mat.Dense  // per-step headers over the window inputs' shard rows
	xs     []*mat.Dense // pointer slice handed to Forward
}

// bindInputs re-points the shard's input views at rows [lo, hi) of xs.
func (sv *shardViews) bindInputs(xs []*mat.Dense, lo, hi int) []*mat.Dense {
	T := len(xs)
	if cap(sv.xv) < T {
		sv.xv = make([]mat.Dense, T)
		sv.xs = make([]*mat.Dense, T)
	}
	sv.xv, sv.xs = sv.xv[:T], sv.xs[:T]
	for i, x := range xs {
		c := x.Cols
		sv.xv[i].Rows, sv.xv[i].Cols = hi-lo, c
		sv.xv[i].Data = x.Data[lo*c : hi*c]
		sv.xs[i] = &sv.xv[i]
	}
	return sv.xs
}

// bindState re-points the shard's state views at rows [lo, hi) of st.
// Forward replaces the pointer entries with workspace views, so the
// headers themselves stay owned by the shard and are rebound next
// window.
func (sv *shardViews) bindState(st *State, lo, hi int) *State {
	nl := len(st.H)
	if cap(sv.hv) < nl {
		sv.hv = make([]mat.Dense, nl)
		sv.cv = make([]mat.Dense, nl)
		sv.sH = make([]*mat.Dense, nl)
		sv.sC = make([]*mat.Dense, nl)
	}
	sv.hv, sv.cv = sv.hv[:nl], sv.cv[:nl]
	sv.sH, sv.sC = sv.sH[:nl], sv.sC[:nl]
	for l := 0; l < nl; l++ {
		c := st.H[l].Cols
		sv.hv[l].Rows, sv.hv[l].Cols = hi-lo, c
		sv.hv[l].Data = st.H[l].Data[lo*c : hi*c]
		sv.cv[l].Rows, sv.cv[l].Cols = hi-lo, c
		sv.cv[l].Data = st.C[l].Data[lo*c : hi*c]
		sv.sH[l], sv.sC[l] = &sv.hv[l], &sv.cv[l]
	}
	sv.sst.H, sv.sst.C = sv.sH, sv.sC
	return &sv.sst
}

// bindGRUState is the GRU counterpart of bindState.
func (sv *shardViews) bindGRUState(st *GRUState, lo, hi int) *GRUState {
	nl := len(st.H)
	if cap(sv.hv) < nl {
		sv.hv = make([]mat.Dense, nl)
		sv.sH = make([]*mat.Dense, nl)
	}
	sv.hv, sv.sH = sv.hv[:nl], sv.sH[:nl]
	for l := 0; l < nl; l++ {
		c := st.H[l].Cols
		sv.hv[l].Rows, sv.hv[l].Cols = hi-lo, c
		sv.hv[l].Data = st.H[l].Data[lo*c : hi*c]
		sv.sH[l] = &sv.hv[l]
	}
	sv.gst.H = sv.sH
	return &sv.gst
}

// ShardedLSTM drives sharded minibatch training of an LSTM. Shadows and
// shard scratch are allocated once and reused across windows and epochs.
type ShardedLSTM struct {
	Net     *LSTM
	shadows []*LSTM
	views   []*shardViews
	losses  []float64
	counts  []int
}

// NewShardedLSTM prepares a sharded trainer for batches of up to
// maxBatch rows.
func NewShardedLSTM(net *LSTM, maxBatch int) *ShardedLSTM {
	s := &ShardedLSTM{Net: net}
	ns := NumShards(maxBatch)
	for i := 0; i < ns; i++ {
		s.shadows = append(s.shadows, net.ShadowGrads())
		s.views = append(s.views, &shardViews{})
	}
	s.losses = make([]float64, ns)
	s.counts = make([]int, ns)
	return s
}

// RunWindow runs one truncated-BPTT window: per shard, forward over the
// row-sliced inputs from the row-sliced state, loss gradients via dys,
// backward into the shard's private gradients, and the shard's final
// state written back into st. Gradients are then reduced into Net's
// params (zeroed first) in ascending shard order; losses and counts
// reduce in the same order. st is advanced in place exactly as a
// full-batch Forward would.
func (s *ShardedLSTM) RunWindow(xs []*mat.Dense, st *State, dys ShardDys) (loss float64, count int) {
	if len(xs) == 0 {
		return 0, 0
	}
	b := xs[0].Rows
	ns := NumShards(b)
	if ns > len(s.shadows) {
		panic(fmt.Sprintf("nn: RunWindow batch %d exceeds prepared shards %d", b, len(s.shadows)))
	}
	par.Do(ns, func(si int) {
		lo := si * ShardRows
		hi := lo + ShardRows
		if hi > b {
			hi = b
		}
		shadow := s.shadows[si]
		sv := s.views[si]
		shadow.ZeroGrads()
		sst := sv.bindState(st, lo, hi)
		ys, cache := shadow.Forward(sv.bindInputs(xs, lo, hi), sst)
		d, l, n := dys(lo, hi, ys)
		if d != nil {
			shadow.Backward(cache, d)
		}
		st.CopyRows(lo, hi, sst)
		s.losses[si], s.counts[si] = l, n
	})
	s.Net.ZeroGrads()
	reduceGrads(s.Net.params, ns, func(i int) []*Param { return s.shadows[i].params })
	for si := 0; si < ns; si++ {
		loss += s.losses[si]
		count += s.counts[si]
	}
	return loss, count
}

// ShardedGRU drives sharded minibatch training of a GRU.
type ShardedGRU struct {
	Net     *GRU
	shadows []*GRU
	views   []*shardViews
	losses  []float64
	counts  []int
}

// NewShardedGRU prepares a sharded trainer for batches of up to
// maxBatch rows.
func NewShardedGRU(net *GRU, maxBatch int) *ShardedGRU {
	s := &ShardedGRU{Net: net}
	ns := NumShards(maxBatch)
	for i := 0; i < ns; i++ {
		s.shadows = append(s.shadows, net.ShadowGrads())
		s.views = append(s.views, &shardViews{})
	}
	s.losses = make([]float64, ns)
	s.counts = make([]int, ns)
	return s
}

// RunWindow is the GRU counterpart of ShardedLSTM.RunWindow.
func (s *ShardedGRU) RunWindow(xs []*mat.Dense, st *GRUState, dys ShardDys) (loss float64, count int) {
	if len(xs) == 0 {
		return 0, 0
	}
	b := xs[0].Rows
	ns := NumShards(b)
	if ns > len(s.shadows) {
		panic(fmt.Sprintf("nn: RunWindow batch %d exceeds prepared shards %d", b, len(s.shadows)))
	}
	par.Do(ns, func(si int) {
		lo := si * ShardRows
		hi := lo + ShardRows
		if hi > b {
			hi = b
		}
		shadow := s.shadows[si]
		sv := s.views[si]
		shadow.ZeroGrads()
		sst := sv.bindGRUState(st, lo, hi)
		ys, cache := shadow.Forward(sv.bindInputs(xs, lo, hi), sst)
		d, l, n := dys(lo, hi, ys)
		if d != nil {
			shadow.Backward(cache, d)
		}
		st.CopyRows(lo, hi, sst)
		s.losses[si], s.counts[si] = l, n
	})
	s.Net.ZeroGrads()
	reduceGrads(s.Net.params, ns, func(i int) []*Param { return s.shadows[i].params })
	for si := 0; si < ns; si++ {
		loss += s.losses[si]
		count += s.counts[si]
	}
	return loss, count
}

// reduceGrads accumulates shard gradients into dst in ascending shard
// order — the fixed-order merge half of the determinism contract.
func reduceGrads(dst []*Param, ns int, shard func(i int) []*Param) {
	for si := 0; si < ns; si++ {
		src := shard(si)
		for pi, p := range dst {
			mat.Axpy(1, src[pi].Grad.Data, p.Grad.Data)
		}
	}
}
