package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
)

// TestShardedMatchesDirect pins the sharded window driver to the direct
// Forward/Backward path: final states must match exactly (forward math
// is per-row), and gradients to a tight relative tolerance. Gradients
// cannot match bit for bit: the direct path accumulates weight
// gradients row-interleaved per time step, while shards sum each row's
// full time series before the fixed-order reduction — a pure
// regrouping of the same terms. Cross-worker-count bit-identity is
// covered by the root determinism test instead.
func TestShardedMatchesDirect(t *testing.T) {
	defer par.SetProcs(par.SetProcs(1))
	const inDim, hidden, outDim, steps, batch = 7, 6, 5, 4, 3
	mk := func() *LSTM {
		return NewLSTM(Config{InputDim: inDim, HiddenDim: hidden, Layers: 2, OutputDim: outDim}, rng.New(1))
	}
	g := rng.New(2)
	xs := make([]*mat.Dense, steps)
	targets := make([][]int, steps)
	for s := range xs {
		x := mat.NewDense(batch, inDim)
		for i := range x.Data {
			x.Data[i] = g.NormFloat64()
		}
		xs[s] = x
		tg := make([]int, batch)
		for i := range tg {
			tg[i] = g.Intn(outDim)
		}
		targets[s] = tg
	}

	direct := mk()
	stD := direct.NewState(batch)
	direct.ZeroGrads()
	ys, cache := direct.Forward(xs, stD)
	dys := make([]*mat.Dense, steps)
	for s, y := range ys {
		_, d, _ := SoftmaxCE(y, targets[s], nil)
		dys[s] = d
	}
	direct.Backward(cache, dys)

	sharded := mk()
	stS := sharded.NewState(batch)
	drv := NewShardedLSTM(sharded, batch)
	drv.RunWindow(xs, stS, func(lo, hi int, sys []*mat.Dense) ([]*mat.Dense, float64, int) {
		sdys := make([]*mat.Dense, len(sys))
		for s, y := range sys {
			_, d, _ := SoftmaxCE(y, targets[s][lo:hi], nil)
			sdys[s] = d
		}
		return sdys, 0, 0
	})

	dp, sp := direct.Params(), sharded.Params()
	if len(dp) != len(sp) {
		t.Fatalf("param count %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		for j := range dp[i].Grad.Data {
			dv, sv := dp[i].Grad.Data[j], sp[i].Grad.Data[j]
			if diff := math.Abs(dv - sv); diff > 1e-12*(1+math.Abs(dv)) {
				t.Fatalf("param %d grad[%d]: direct %v sharded %v", i, j, dv, sv)
			}
		}
	}
	for l := range stD.H {
		for j := range stD.H[l].Data {
			if stD.H[l].Data[j] != stS.H[l].Data[j] {
				t.Fatalf("state H[%d][%d]: direct %v sharded %v", l, j, stD.H[l].Data[j], stS.H[l].Data[j])
			}
		}
		for j := range stD.C[l].Data {
			if stD.C[l].Data[j] != stS.C[l].Data[j] {
				t.Fatalf("state C[%d][%d]: direct %v sharded %v", l, j, stD.C[l].Data[j], stS.C[l].Data[j])
			}
		}
	}
}
