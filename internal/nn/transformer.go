package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Transformer is a causal (decoder-only) self-attention sequence model —
// the architecture the paper notes "could be used in place of the
// LSTMs" (§7). It processes one sequence at a time as a [T x InputDim]
// matrix, applies a learned input projection plus learned positional
// embeddings, a stack of pre-LayerNorm attention+FFN blocks with
// residual connections, and a linear output head. Backpropagation is
// implemented by hand and verified against numerical gradients in the
// package tests. Forward/Backward scratch comes from a per-network
// Workspace with the same validity/reentrancy rules as the LSTM.
type Transformer struct {
	Cfg TransformerConfig

	wEmb *Param // [InputDim x D]
	bEmb *Param // [1 x D]
	pos  *Param // [MaxLen x D]

	blocks []*tblock

	lnFg, lnFb *Param // final layer norm
	wOut       *Param // [D x OutputDim]
	bOut       *Param // [1 x OutputDim]

	params []*Param
	ws     *Workspace // Forward/Backward scratch arenas, lazily acquired
}

// TransformerConfig sizes the network. ModelDim must be divisible by
// Heads.
type TransformerConfig struct {
	InputDim  int
	ModelDim  int
	Heads     int
	FFDim     int
	Layers    int
	OutputDim int
	MaxLen    int // maximum sequence length (positional table size)
}

func (c TransformerConfig) validate() error {
	if c.InputDim <= 0 || c.ModelDim <= 0 || c.Heads <= 0 || c.FFDim <= 0 ||
		c.Layers <= 0 || c.OutputDim <= 0 || c.MaxLen <= 0 {
		return fmt.Errorf("nn: invalid transformer config %+v", c)
	}
	if c.ModelDim%c.Heads != 0 {
		return fmt.Errorf("nn: ModelDim %d not divisible by Heads %d", c.ModelDim, c.Heads)
	}
	return nil
}

// tblock is one pre-LN transformer block.
type tblock struct {
	ln1g, ln1b     *Param
	wq, wk, wv, wo *Param // [D x D]
	ln2g, ln2b     *Param
	w1, b1         *Param // [D x F], [1 x F]
	w2, b2         *Param // [F x D], [1 x D]
}

// NewTransformer constructs the network with Xavier-uniform weights.
func NewTransformer(cfg TransformerConfig, g *rng.RNG) *Transformer {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	t := &Transformer{Cfg: cfg}
	d := cfg.ModelDim
	add := func(p *Param) *Param {
		t.params = append(t.params, p)
		return p
	}
	t.wEmb = add(newParam("emb.w", cfg.InputDim, d))
	xavierInit(t.wEmb.Value, cfg.InputDim, d, g)
	t.bEmb = add(newParam("emb.b", 1, d))
	t.pos = add(newParam("emb.pos", cfg.MaxLen, d))
	for i := range t.pos.Value.Data {
		t.pos.Value.Data[i] = 0.02 * g.NormFloat64()
	}
	for l := 0; l < cfg.Layers; l++ {
		b := &tblock{
			ln1g: add(newParam(fmt.Sprintf("b%d.ln1g", l), 1, d)),
			ln1b: add(newParam(fmt.Sprintf("b%d.ln1b", l), 1, d)),
			wq:   add(newParam(fmt.Sprintf("b%d.wq", l), d, d)),
			wk:   add(newParam(fmt.Sprintf("b%d.wk", l), d, d)),
			wv:   add(newParam(fmt.Sprintf("b%d.wv", l), d, d)),
			wo:   add(newParam(fmt.Sprintf("b%d.wo", l), d, d)),
			ln2g: add(newParam(fmt.Sprintf("b%d.ln2g", l), 1, d)),
			ln2b: add(newParam(fmt.Sprintf("b%d.ln2b", l), 1, d)),
			w1:   add(newParam(fmt.Sprintf("b%d.w1", l), d, cfg.FFDim)),
			b1:   add(newParam(fmt.Sprintf("b%d.b1", l), 1, cfg.FFDim)),
			w2:   add(newParam(fmt.Sprintf("b%d.w2", l), cfg.FFDim, d)),
			b2:   add(newParam(fmt.Sprintf("b%d.b2", l), 1, d)),
		}
		b.ln1g.Value.Fill(1)
		b.ln2g.Value.Fill(1)
		xavierInit(b.wq.Value, d, d, g)
		xavierInit(b.wk.Value, d, d, g)
		xavierInit(b.wv.Value, d, d, g)
		xavierInit(b.wo.Value, d, d, g)
		xavierInit(b.w1.Value, d, cfg.FFDim, g)
		xavierInit(b.w2.Value, cfg.FFDim, d, g)
		t.blocks = append(t.blocks, b)
	}
	t.lnFg = add(newParam("final.lng", 1, d))
	t.lnFg.Value.Fill(1)
	t.lnFb = add(newParam("final.lnb", 1, d))
	t.wOut = add(newParam("head.w", d, cfg.OutputDim))
	xavierInit(t.wOut.Value, d, cfg.OutputDim, g)
	t.bOut = add(newParam("head.b", 1, cfg.OutputDim))
	return t
}

// Params returns all learnable parameters.
func (t *Transformer) Params() []*Param { return t.params }

// NumParams returns the total scalar parameter count.
func (t *Transformer) NumParams() int {
	n := 0
	for _, p := range t.params {
		n += len(p.Value.Data)
	}
	return n
}

// ZeroGrads clears all gradients.
func (t *Transformer) ZeroGrads() {
	for _, p := range t.params {
		p.ZeroGrad()
	}
}

const lnEps = 1e-5

// lnCache stores what LayerNorm backward needs. Its buffers live in the
// workspace arena of the Forward call that filled it.
type lnCache struct {
	xhat   *mat.Dense
	invStd []float64
}

// layerNorm applies per-row layer normalization with gain g and bias b,
// drawing the output, xhat and invStd buffers from the arena.
func layerNorm(ar *arena, x *mat.Dense, g, b []float64, c *lnCache) *mat.Dense {
	out := ar.slab(x.Rows, x.Cols, false)
	c.xhat = ar.slab(x.Rows, x.Cols, false)
	c.invStd = ar.fslice(x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var variance float64
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(len(row))
		inv := 1 / math.Sqrt(variance+lnEps)
		c.invStd[i] = inv
		xh := c.xhat.Row(i)
		o := out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			o[j] = xh[j]*g[j] + b[j]
		}
	}
	return out
}

// layerNormBackward accumulates dG, dB and returns dX given dY, drawing
// dX from the arena.
func layerNormBackward(ar *arena, dy *mat.Dense, c *lnCache, g []float64, dg, db []float64) *mat.Dense {
	dx := ar.slab(dy.Rows, dy.Cols, false)
	n := float64(dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xh := c.xhat.Row(i)
		var sumDxhat, sumDxhatXhat float64
		for j, d := range dyr {
			dg[j] += d * xh[j]
			db[j] += d
			dxh := d * g[j]
			sumDxhat += dxh
			sumDxhatXhat += dxh * xh[j]
		}
		inv := c.invStd[i]
		dxr := dx.Row(i)
		for j, d := range dyr {
			dxh := d * g[j]
			dxr[j] = inv * (dxh - sumDxhat/n - xh[j]*sumDxhatXhat/n)
		}
	}
	return dx
}

// attnCache stores per-block activations for backward; everything in it
// is arena-backed.
type attnCache struct {
	lnIn    lnCache
	xNorm   *mat.Dense
	q, k, v *mat.Dense
	attn    []*mat.Dense // per head, [T x T] softmax weights
	concat  *mat.Dense   // [T x D] pre-Wo
	lnMid   lnCache
	hNorm   *mat.Dense
	ff1     *mat.Dense // post-ReLU [T x F]
	ffPre   *mat.Dense // pre-ReLU [T x F]
	x       *mat.Dense // block input
	h       *mat.Dense // after attention residual
}

// tCache is the full forward cache, embedded in (and valid as long as)
// the workspace arena of the Forward call that filled it.
type tCache struct {
	T      int
	ar     *arena
	input  *mat.Dense // raw input features [T x InputDim] (caller-owned)
	emb    *mat.Dense // after embedding+pos
	blocks []*attnCache
	lnF    lnCache
	final  *mat.Dense // after final LN [T x D]
}

// tCacheFor returns the arena's embedded tCache, resized for nb blocks.
func (a *arena) tCacheFor(nb int) *tCache {
	c := &a.tCache
	c.ar = a
	for len(c.blocks) < nb {
		c.blocks = append(c.blocks, &attnCache{})
	}
	c.blocks = c.blocks[:nb]
	return c
}

// Forward runs the model over one sequence x of shape [T x InputDim]
// with T <= MaxLen, returning [T x OutputDim] logits and a cache. Both
// alias the network's workspace and stay valid until the next-but-one
// Forward on this network; x itself is retained by the cache until
// Backward runs.
func (t *Transformer) Forward(x *mat.Dense) (*mat.Dense, *tCache) {
	T := x.Rows
	if T > t.Cfg.MaxLen {
		panic(fmt.Sprintf("nn: sequence length %d exceeds MaxLen %d", T, t.Cfg.MaxLen))
	}
	if x.Cols != t.Cfg.InputDim {
		panic(fmt.Sprintf("nn: input dim %d, want %d", x.Cols, t.Cfg.InputDim))
	}
	d := t.Cfg.ModelDim
	ar := t.workspace().flip()
	cache := ar.tCacheFor(len(t.blocks))
	cache.T, cache.input = T, x
	h := ar.slab(T, d, true)
	if sparseEnough(x) {
		mat.MulAddSparse(h, x, t.wEmb.Value)
	} else {
		mat.MulAdd(h, x, t.wEmb.Value)
	}
	mat.AddBiasRows(h, t.bEmb.Value.Row(0))
	for i := 0; i < T; i++ {
		mat.Axpy(1, t.pos.Value.Row(i), h.Row(i))
	}
	cache.emb = h
	cur := h
	for l, blk := range t.blocks {
		cur = t.blockForward(ar, blk, cur, cache.blocks[l])
	}
	cache.final = layerNorm(ar, cur, t.lnFg.Value.Row(0), t.lnFb.Value.Row(0), &cache.lnF)
	out := ar.slab(T, t.Cfg.OutputDim, true)
	mat.MulAdd(out, cache.final, t.wOut.Value)
	mat.AddBiasRows(out, t.bOut.Value.Row(0))
	return out, cache
}

func (t *Transformer) blockForward(ar *arena, blk *tblock, x *mat.Dense, bc *attnCache) *mat.Dense {
	T := x.Rows
	d := t.Cfg.ModelDim
	heads := t.Cfg.Heads
	dk := d / heads
	scale := 1 / math.Sqrt(float64(dk))

	bc.x = x
	bc.xNorm = layerNorm(ar, x, blk.ln1g.Value.Row(0), blk.ln1b.Value.Row(0), &bc.lnIn)
	xNorm := bc.xNorm

	q := ar.slab(T, d, true)
	mat.MulAdd(q, xNorm, blk.wq.Value)
	k := ar.slab(T, d, true)
	mat.MulAdd(k, xNorm, blk.wk.Value)
	v := ar.slab(T, d, true)
	mat.MulAdd(v, xNorm, blk.wv.Value)
	bc.q, bc.k, bc.v = q, k, v

	concat := ar.slab(T, d, true)
	bc.attn = bc.attn[:0]
	for hd := 0; hd < heads; hd++ {
		off := hd * dk
		// Zeroed so the causal mask holds: a.Row(i)[j] stays 0 for j > i.
		a := ar.slab(T, T, true)
		for i := 0; i < T; i++ {
			qi := q.Row(i)[off : off+dk]
			arow := a.Row(i)
			maxv := math.Inf(-1)
			for j := 0; j <= i; j++ {
				s := mat.Dot(qi, k.Row(j)[off:off+dk]) * scale
				arow[j] = s
				if s > maxv {
					maxv = s
				}
			}
			var sum float64
			for j := 0; j <= i; j++ {
				arow[j] = math.Exp(arow[j] - maxv)
				sum += arow[j]
			}
			inv := 1 / sum
			for j := 0; j <= i; j++ {
				arow[j] *= inv
			}
			crow := concat.Row(i)[off : off+dk]
			for j := 0; j <= i; j++ {
				mat.Axpy(arow[j], v.Row(j)[off:off+dk], crow)
			}
		}
		bc.attn = append(bc.attn, a)
	}
	bc.concat = concat

	attnOut := ar.slab(T, d, true)
	mat.MulAdd(attnOut, concat, blk.wo.Value)
	h := ar.slab(T, d, false)
	mat.AddTo(h, x, attnOut)
	bc.h = h

	bc.hNorm = layerNorm(ar, h, blk.ln2g.Value.Row(0), blk.ln2b.Value.Row(0), &bc.lnMid)
	ffPre := ar.slab(T, t.Cfg.FFDim, true)
	mat.MulAdd(ffPre, bc.hNorm, blk.w1.Value)
	mat.AddBiasRows(ffPre, blk.b1.Value.Row(0))
	bc.ffPre = ffPre
	ff1 := ar.slab(T, t.Cfg.FFDim, false)
	copy(ff1.Data, ffPre.Data)
	for i, vv := range ff1.Data {
		if vv < 0 {
			ff1.Data[i] = 0
		}
	}
	bc.ff1 = ff1
	ffOut := ar.slab(T, d, true)
	mat.MulAdd(ffOut, ff1, blk.w2.Value)
	mat.AddBiasRows(ffOut, blk.b2.Value.Row(0))
	out := ar.slab(T, d, false)
	mat.AddTo(out, h, ffOut)
	return out
}

// Backward accumulates parameter gradients given dOut (the gradient of
// the loss with respect to the Forward output logits). Scratch
// bump-continues on the arena holding the cache.
func (t *Transformer) Backward(cache *tCache, dOut *mat.Dense) {
	T := cache.T
	d := t.Cfg.ModelDim
	ar := cache.ar
	// Head.
	mat.MulATB(t.wOut.Grad, cache.final, dOut)
	mat.SumRows(t.bOut.Grad.Row(0), dOut)
	dFinal := ar.slab(T, d, true)
	mat.MulABT(dFinal, dOut, t.wOut.Value)
	dCur := layerNormBackward(ar, dFinal, &cache.lnF, t.lnFg.Value.Row(0),
		t.lnFg.Grad.Row(0), t.lnFb.Grad.Row(0))
	for l := len(t.blocks) - 1; l >= 0; l-- {
		dCur = t.blockBackward(ar, t.blocks[l], cache.blocks[l], dCur)
	}
	// Embedding.
	if sparseEnough(cache.input) {
		mat.MulATBSparse(t.wEmb.Grad, cache.input, dCur)
	} else {
		mat.MulATB(t.wEmb.Grad, cache.input, dCur)
	}
	mat.SumRows(t.bEmb.Grad.Row(0), dCur)
	for i := 0; i < T; i++ {
		mat.Axpy(1, dCur.Row(i), t.pos.Grad.Row(i))
	}
}

func (t *Transformer) blockBackward(ar *arena, blk *tblock, bc *attnCache, dOut *mat.Dense) *mat.Dense {
	T := dOut.Rows
	d := t.Cfg.ModelDim
	heads := t.Cfg.Heads
	dk := d / heads
	scale := 1 / math.Sqrt(float64(dk))

	// out = h + FFN(LN2(h)); dOut flows into both h and the FFN path.
	dFF := dOut // gradient into ffOut
	// FFN backward.
	mat.MulATB(blk.w2.Grad, bc.ff1, dFF)
	mat.SumRows(blk.b2.Grad.Row(0), dFF)
	dFF1 := ar.slab(T, t.Cfg.FFDim, true)
	mat.MulABT(dFF1, dFF, blk.w2.Value)
	for i, v := range bc.ffPre.Data {
		if v < 0 {
			dFF1.Data[i] = 0
		}
	}
	mat.MulATB(blk.w1.Grad, bc.hNorm, dFF1)
	mat.SumRows(blk.b1.Grad.Row(0), dFF1)
	dHNorm := ar.slab(T, d, true)
	mat.MulABT(dHNorm, dFF1, blk.w1.Value)
	dH := layerNormBackward(ar, dHNorm, &bc.lnMid, blk.ln2g.Value.Row(0),
		blk.ln2g.Grad.Row(0), blk.ln2b.Grad.Row(0))
	// Residual: dH += dOut.
	for i := range dH.Data {
		dH.Data[i] += dOut.Data[i]
	}

	// h = x + attnOut.
	dAttnOut := dH
	mat.MulATB(blk.wo.Grad, bc.concat, dAttnOut)
	dConcat := ar.slab(T, d, true)
	mat.MulABT(dConcat, dAttnOut, blk.wo.Value)

	dQ := ar.slab(T, d, true)
	dK := ar.slab(T, d, true)
	dV := ar.slab(T, d, true)
	dAbuf := ar.fslice(T)
	for hd := 0; hd < heads; hd++ {
		off := hd * dk
		a := bc.attn[hd]
		for i := 0; i < T; i++ {
			dci := dConcat.Row(i)[off : off+dk]
			arow := a.Row(i)
			// dA and dV.
			var sumDAA float64
			dArow := dAbuf[:i+1]
			for j := 0; j <= i; j++ {
				dArow[j] = mat.Dot(dci, bc.v.Row(j)[off:off+dk])
				mat.Axpy(arow[j], dci, dV.Row(j)[off:off+dk])
				sumDAA += dArow[j] * arow[j]
			}
			// Softmax backward.
			qi := bc.q.Row(i)[off : off+dk]
			dqi := dQ.Row(i)[off : off+dk]
			for j := 0; j <= i; j++ {
				dS := arow[j] * (dArow[j] - sumDAA) * scale
				mat.Axpy(dS, bc.k.Row(j)[off:off+dk], dqi)
				mat.Axpy(dS, qi, dK.Row(j)[off:off+dk])
			}
		}
	}
	mat.MulATB(blk.wq.Grad, bc.xNorm, dQ)
	mat.MulATB(blk.wk.Grad, bc.xNorm, dK)
	mat.MulATB(blk.wv.Grad, bc.xNorm, dV)
	dXNorm := ar.slab(T, d, true)
	mat.MulABT(dXNorm, dQ, blk.wq.Value)
	mat.MulABT(dXNorm, dK, blk.wk.Value)
	mat.MulABT(dXNorm, dV, blk.wv.Value)
	dX := layerNormBackward(ar, dXNorm, &bc.lnIn, blk.ln1g.Value.Row(0),
		blk.ln1g.Grad.Row(0), blk.ln1b.Grad.Row(0))
	// Residual: dX += dH.
	for i := range dX.Data {
		dX.Data[i] += dH.Data[i]
	}
	return dX
}

// TWindow is the sliding generation context for a Transformer: it keeps
// the last up-to-MaxLen input feature rows and recomputes the forward
// pass over the window at each step (O(L²) per step, acceptable at the
// window sizes this repository uses). Storage is a fixed ring buffer, so
// steady-state Append calls allocate nothing.
type TWindow struct {
	t        *Transformer
	ring     *mat.Dense // [MaxLen x InputDim] circular store of feature rows
	xm       *mat.Dense // [MaxLen x InputDim] packed window, oldest first
	win      mat.Dense  // header over xm's first Len rows
	start, n int
}

// NewWindow returns an empty generation context.
func (t *Transformer) NewWindow() *TWindow {
	return &TWindow{
		t:    t,
		ring: mat.NewDense(t.Cfg.MaxLen, t.Cfg.InputDim),
		xm:   mat.NewDense(t.Cfg.MaxLen, t.Cfg.InputDim),
	}
}

// Append adds one input feature row and returns the output logits for
// the newest position (valid until the next-but-one Append).
func (w *TWindow) Append(x []float64) []float64 {
	if len(x) != w.t.Cfg.InputDim {
		panic(fmt.Sprintf("nn: window input len %d, want %d", len(x), w.t.Cfg.InputDim))
	}
	L := w.t.Cfg.MaxLen
	copy(w.ring.Row((w.start+w.n)%L), x)
	if w.n < L {
		w.n++
	} else {
		w.start = (w.start + 1) % L
	}
	T := w.n
	for i := 0; i < T; i++ {
		copy(w.xm.Row(i), w.ring.Row((w.start+i)%L))
	}
	w.win.Rows, w.win.Cols = T, w.t.Cfg.InputDim
	w.win.Data = w.xm.Data[:T*w.t.Cfg.InputDim]
	out, _ := w.t.Forward(&w.win)
	return out.Row(T - 1)
}

// Len returns the current window length.
func (w *TWindow) Len() int { return w.n }
