package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func tinyTransformer(seed int64) *Transformer {
	return NewTransformer(TransformerConfig{
		InputDim: 5, ModelDim: 8, Heads: 2, FFDim: 12,
		Layers: 2, OutputDim: 3, MaxLen: 16,
	}, rng.New(seed))
}

func TestNewTransformerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTransformer(TransformerConfig{InputDim: 4, ModelDim: 7, Heads: 2, FFDim: 8, Layers: 1, OutputDim: 2, MaxLen: 8}, rng.New(1))
}

func TestTransformerForwardShapes(t *testing.T) {
	tr := tinyTransformer(1)
	g := rng.New(2)
	x := mat.NewDense(6, 5)
	for i := range x.Data {
		x.Data[i] = g.NormFloat64()
	}
	out, cache := tr.Forward(x)
	if out.Rows != 6 || out.Cols != 3 {
		t.Fatalf("output %v", out)
	}
	if cache.T != 6 {
		t.Fatalf("cache T %d", cache.T)
	}
	if tr.NumParams() == 0 || len(tr.Params()) == 0 {
		t.Fatal("no params")
	}
}

// TestTransformerCausality verifies the causal mask: changing a future
// input must not change earlier outputs.
func TestTransformerCausality(t *testing.T) {
	tr := tinyTransformer(3)
	g := rng.New(4)
	x := mat.NewDense(5, 5)
	for i := range x.Data {
		x.Data[i] = g.NormFloat64()
	}
	out1, _ := tr.Forward(x)
	x2 := x.Clone()
	x2.Set(4, 0, 99) // perturb the final step
	out2, _ := tr.Forward(x2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if out1.At(i, j) != out2.At(i, j) {
				t.Fatalf("future input leaked into position %d", i)
			}
		}
	}
	changed := false
	for j := 0; j < 3; j++ {
		if out1.At(4, j) != out2.At(4, j) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("final position should depend on its own input")
	}
}

func TestTransformerTooLongPanics(t *testing.T) {
	tr := tinyTransformer(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Forward(mat.NewDense(17, 5))
}

// TestTransformerGradientCheck verifies the hand-written backward pass
// (attention, layer norm, FFN, residuals, embeddings) against numerical
// differentiation.
func TestTransformerGradientCheck(t *testing.T) {
	tr := tinyTransformer(7)
	g := rng.New(8)
	const T = 4
	x := mat.NewDense(T, 5)
	for i := range x.Data {
		x.Data[i] = g.NormFloat64()
	}
	targets := make([]int, T)
	for i := range targets {
		targets[i] = g.Intn(3)
	}
	lossFn := func() float64 {
		out, _ := tr.Forward(x)
		l, _, _ := SoftmaxCE(out, targets, nil)
		return l
	}
	tr.ZeroGrads()
	out, cache := tr.Forward(x)
	_, d, _ := SoftmaxCE(out, targets, nil)
	tr.Backward(cache, d)
	for _, p := range tr.Params() {
		stride := len(p.Value.Data)/4 + 1
		for idx := 0; idx < len(p.Value.Data); idx += stride {
			num := numericalGrad(lossFn, p, idx)
			ana := p.Grad.Data[idx]
			diff := math.Abs(num - ana)
			scl := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if diff/scl > 2e-5 {
				t.Errorf("param %s[%d]: analytic %v numeric %v", p.Name, idx, ana, num)
			}
		}
	}
}

// TestTransformerLearnsCopy trains the transformer on a delay-1 copy
// task (predict the previous token's class), verifying the training loop
// end to end.
func TestTransformerLearnsCopy(t *testing.T) {
	tr := NewTransformer(TransformerConfig{
		InputDim: 4, ModelDim: 16, Heads: 2, FFDim: 32,
		Layers: 1, OutputDim: 4, MaxLen: 24,
	}, rng.New(9))
	g := rng.New(10)
	opt := NewAdam(3e-3)
	opt.ClipNorm = 5
	var first, last float64
	for iter := 0; iter < 400; iter++ {
		const T = 12
		x := mat.NewDense(T, 4)
		targets := make([]int, T)
		prev := 0
		for s := 0; s < T; s++ {
			cls := g.Intn(4)
			x.Set(s, cls, 1)
			targets[s] = prev
			prev = cls
		}
		tr.ZeroGrads()
		out, cache := tr.Forward(x)
		valid := make([]bool, T)
		for i := range valid {
			valid[i] = i > 0
		}
		l, d, _ := SoftmaxCE(out, targets, valid)
		tr.Backward(cache, d)
		opt.Step(tr.Params())
		if iter == 0 {
			first = l
		}
		last = l
	}
	if last >= first*0.5 {
		t.Fatalf("transformer failed to learn copy: first %v last %v", first, last)
	}
}

func TestTransformerWindowMatchesForward(t *testing.T) {
	tr := tinyTransformer(11)
	g := rng.New(12)
	const T = 6
	x := mat.NewDense(T, 5)
	for i := range x.Data {
		x.Data[i] = g.NormFloat64()
	}
	// Forward output aliases the workspace and the window's Appends run
	// more Forwards on the same network, so snapshot it first.
	fullView, _ := tr.Forward(x)
	full := fullView.Clone()
	w := tr.NewWindow()
	for s := 0; s < T; s++ {
		got := w.Append(x.Row(s))
		for j, v := range got {
			if math.Abs(v-full.At(s, j)) > 1e-12 {
				t.Fatalf("window step %d output %d: %v vs %v", s, j, v, full.At(s, j))
			}
		}
	}
	if w.Len() != T {
		t.Fatalf("window len %d", w.Len())
	}
}

func TestTransformerWindowSlides(t *testing.T) {
	tr := NewTransformer(TransformerConfig{
		InputDim: 2, ModelDim: 4, Heads: 1, FFDim: 8,
		Layers: 1, OutputDim: 2, MaxLen: 4,
	}, rng.New(13))
	w := tr.NewWindow()
	for s := 0; s < 10; s++ {
		w.Append([]float64{float64(s), 1})
		if w.Len() > 4 {
			t.Fatalf("window exceeded MaxLen: %d", w.Len())
		}
	}
}

func TestTransformerSerializationRoundTrip(t *testing.T) {
	tr := tinyTransformer(42)
	g := rng.New(1)
	x := mat.NewDense(4, 5)
	for i := range x.Data {
		x.Data[i] = g.NormFloat64()
	}
	before, _ := tr.Forward(x)
	blob, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Transformer
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	after, _ := restored.Forward(x)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("transformer round trip changed outputs")
		}
	}
}
