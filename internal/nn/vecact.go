package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Vectorized activation kernels for the continuous-batching decode
// path (DESIGN.md §6.2). Each one computes exactly what its scalar
// counterpart computes — same elementary operations on the same
// values in the same order, with mat.ExpSlice standing in bit-for-bit
// for math.Exp — so swapping them into the batched path cannot perturb
// a single sampled trace. The serial path keeps the scalar reference
// implementations; the exactness tests in vecact_test.go compare the
// two element-for-element.

// vecSigmoid applies sigmoid in place: v[i] = 1/(1+Exp(-v[i])), the
// exact expression of the scalar sigmoid helper.
func vecSigmoid(v []float64) {
	for i, x := range v {
		v[i] = -x
	}
	mat.ExpSlice(v, v)
	for i, e := range v {
		v[i] = 1 / (1 + e)
	}
}

// Coefficients of math.Tanh's rational approximation (math/tanh.go,
// from the Cephes library), reproduced so vecTanhInto can evaluate the
// identical polynomial on the sub-0.625 branch.
const (
	tanhP0 = -9.64399179425052238628e-1
	tanhP1 = -9.92877231001918586564e1
	tanhP2 = -1.61468768441708447952e3
	tanhQ0 = 1.12811678491632931402e2
	tanhQ1 = 2.23548839060100448583e3
	tanhQ2 = 4.84406305325125486048e3

	tanhMaxlog = 8.8029691931113054295988e+01 // log(2**127), math.Tanh's saturation cutoff
)

// vecTanhInto sets dst[i] = math.Tanh(x[i]) bit-for-bit, batching the
// Exp calls of the |x| >= 0.625 branch through mat.ExpSlice. scratch
// needs len(x); dst may alias x exactly.
func vecTanhInto(dst, x, scratch []float64) {
	if len(dst) != len(x) || len(scratch) < len(x) {
		panic(fmt.Sprintf("nn: vecTanhInto lens dst %d x %d scratch %d", len(dst), len(x), len(scratch)))
	}
	scratch = scratch[:len(x)]
	for i, v := range x {
		scratch[i] = 2 * math.Abs(v)
	}
	// Speculative for the poly and saturation lanes (harmlessly +Inf
	// past the cutoff); exact for the branch that uses it.
	mat.ExpSlice(scratch, scratch)
	for i, v := range x {
		z := math.Abs(v)
		switch {
		case z > 0.5*tanhMaxlog:
			if v < 0 {
				dst[i] = -1
			} else {
				dst[i] = 1
			}
		case z >= 0.625:
			s := scratch[i] // == math.Exp(2*z)
			r := 1 - 2/(s+1)
			if v < 0 {
				r = -r
			}
			dst[i] = r
		default:
			if v == 0 {
				dst[i] = v // preserves ±0 like math.Tanh
				continue
			}
			s := v * v
			dst[i] = v + v*s*((tanhP0*s+tanhP1)*s+tanhP2)/(((s+tanhQ0)*s+tanhQ1)*s+tanhQ2)
		}
	}
}

// SoftmaxIntoVec writes the probabilities into out exactly as
// SoftmaxInto does — log-softmax with the same ascending-index
// max/sum reductions, then exponentiation — with both Exp passes
// vectorized. Unlike SoftmaxInto, out must not alias logits (it is
// used as exp scratch before logits is fully consumed).
func SoftmaxIntoVec(logits, out []float64) {
	if len(out) != len(logits) {
		panic(fmt.Sprintf("nn: SoftmaxIntoVec dst len %d, want %d", len(out), len(logits)))
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	for i, v := range logits {
		out[i] = v - maxv
	}
	mat.ExpSlice(out, out)
	var sum float64
	for _, e := range out {
		sum += e
	}
	lse := maxv + math.Log(sum)
	for i, v := range logits {
		out[i] = v - lse
	}
	mat.ExpSlice(out, out)
}

// SigmoidIntoVec writes elementwise sigmoids into out exactly as
// SigmoidInto does, with the Exp calls vectorized. out must not alias
// logits.
func SigmoidIntoVec(logits, out []float64) {
	if len(out) != len(logits) {
		panic(fmt.Sprintf("nn: SigmoidIntoVec dst len %d, want %d", len(out), len(logits)))
	}
	for i, v := range logits {
		out[i] = -v
	}
	mat.ExpSlice(out, out)
	for i, e := range out {
		out[i] = 1 / (1 + e)
	}
}
