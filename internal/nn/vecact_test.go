package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// actCases covers every branch of the scalar activations: ordinary
// gate pre-activations, the tanh poly/exp/saturation regions and their
// boundaries, signed zeros, saturating magnitudes, and non-finites.
func actCases() []float64 {
	cases := []float64{
		0, math.Copysign(0, -1), 1e-300, -1e-300,
		0.1, -0.1, 0.624999, -0.624999, 0.625, -0.625, 0.626, -0.626,
		1, -1, 5, -5, 20, -20,
		44.014, -44.014, 44.0149, -44.0149, 44.015, -44.015, 50, -50,
		700, -700, 710, -710, 745.2, -745.2,
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	g := rng.New(7)
	for i := 0; i < 5000; i++ {
		cases = append(cases, (g.Float64()-0.5)*30)
	}
	for i := 0; i < 2000; i++ {
		cases = append(cases, (g.Float64()-0.5)*1600)
	}
	return cases
}

func TestVecSigmoidBitExact(t *testing.T) {
	x := actCases()
	v := append([]float64(nil), x...)
	vecSigmoid(v)
	for i, xv := range x {
		want := sigmoid(xv)
		if math.Float64bits(v[i]) != math.Float64bits(want) {
			t.Fatalf("sigmoid(%v) = %x, want %x", xv, math.Float64bits(v[i]), math.Float64bits(want))
		}
	}
}

func TestVecTanhBitExact(t *testing.T) {
	x := actCases()
	dst := make([]float64, len(x))
	scratch := make([]float64, len(x))
	vecTanhInto(dst, x, scratch)
	for i, xv := range x {
		want := math.Tanh(xv)
		if math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Fatalf("tanh(%v) = %x, want %x", xv, math.Float64bits(dst[i]), math.Float64bits(want))
		}
	}
	// Exact-alias form, as the fleet gate loop uses it.
	v := append([]float64(nil), x...)
	vecTanhInto(v, v, scratch)
	for i, xv := range x {
		if math.Float64bits(v[i]) != math.Float64bits(math.Tanh(xv)) {
			t.Fatalf("aliased tanh(%v) = %v, want %v", xv, v[i], math.Tanh(xv))
		}
	}
}

func TestSoftmaxIntoVecBitExact(t *testing.T) {
	g := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		n := 1 + g.Intn(40)
		logits := make([]float64, n)
		for i := range logits {
			logits[i] = (g.Float64() - 0.5) * 20
		}
		want := make([]float64, n)
		got := make([]float64, n)
		SoftmaxInto(logits, want)
		SoftmaxIntoVec(logits, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d elem %d: got %x want %x",
					trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

func TestSigmoidIntoVecBitExact(t *testing.T) {
	logits := actCases()
	want := make([]float64, len(logits))
	got := make([]float64, len(logits))
	SigmoidInto(logits, want)
	SigmoidIntoVec(logits, got)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("elem %d (x=%v): got %x want %x",
				i, logits[i], math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestVecActNoAlloc(t *testing.T) {
	v := make([]float64, 96)
	scratch := make([]float64, 96)
	logits := make([]float64, 47)
	out := make([]float64, 47)
	g := rng.New(3)
	for i := range v {
		v[i] = (g.Float64() - 0.5) * 10
	}
	for i := range logits {
		logits[i] = (g.Float64() - 0.5) * 10
	}
	if n := testing.AllocsPerRun(100, func() {
		vecSigmoid(v)
		vecTanhInto(v, v, scratch)
		SoftmaxIntoVec(logits, out)
		SigmoidIntoVec(logits, out)
	}); n != 0 {
		t.Fatalf("vector activations allocated %v per run", n)
	}
}
