// Workspace: the package's memory-discipline layer (DESIGN.md "Memory
// discipline"). Every per-call buffer a Forward/Backward pass needs —
// activation slabs, gate caches, backward scratch, row views — is drawn
// from a per-network Workspace instead of the heap, so the steady-state
// training and generation hot paths allocate nothing.
//
// A Workspace holds two bump arenas and flips between them on each
// Forward call: the current call's buffers come from one arena while
// the previous call's buffers (in particular the State views a caller
// carries across truncated-BPTT windows, and the returned ys) stay
// readable in the other. A buffer is therefore valid until the
// next-but-one Forward on the same network. Backward bump-continues on
// the arena of the cache it was given.
//
// Determinism contract: the arena only changes where results are
// stored, never how they are computed — kernel call sequence, shapes,
// and per-element accumulation order are untouched, so reusing buffers
// is bit-exact with respect to fresh allocation (workspace_test.go
// proves it). Workspaces are per-network and never shared: sharded
// training gives every shadow network its own, which is what makes the
// parallel shard fan-out race-free. Networks lazily take a Workspace
// from a package free list on first use, so short-lived networks (dev
// evaluation, ablation sweeps) recycle arenas instead of growing new
// ones.
package nn

import (
	"sync"

	"repro/internal/mat"
)

// arena is a bump allocator over reusable matrix slabs and view
// headers. reset rewinds it without freeing, so steady-state calls
// reuse the same backing arrays.
type arena struct {
	bufs   []*mat.Dense // owned slabs, in acquisition order
	views  []*mat.Dense // owned view headers, in acquisition order
	floats [][]float64  // owned float scratch slices, in acquisition order
	nb     int          // slabs handed out since reset
	nv     int          // views handed out since reset
	nf     int          // float slices handed out since reset

	cache    Cache    // reusable LSTM forward cache (one per arena)
	gruCache GRUCache // reusable GRU forward cache
	tCache   tCache   // reusable Transformer forward cache
}

func (a *arena) reset() { a.nb, a.nv, a.nf = 0, 0, 0 }

// slab returns an r×c matrix backed by arena memory, growing the
// backing array only when the requested size exceeds its capacity.
// zero=true clears it (required for GEMM accumulation targets); pass
// false only when every element is written before it is read.
func (a *arena) slab(r, c int, zero bool) *mat.Dense {
	need := r * c
	var m *mat.Dense
	if a.nb < len(a.bufs) {
		m = a.bufs[a.nb]
		if cap(m.Data) >= need {
			m.Rows, m.Cols, m.Data = r, c, m.Data[:need]
			if zero {
				m.Zero()
			}
			a.nb++
			return m
		}
		m.Rows, m.Cols, m.Data = r, c, make([]float64, need)
		a.nb++
		return m
	}
	m = mat.NewDense(r, c)
	a.bufs = append(a.bufs, m)
	a.nb++
	return m
}

// fslice returns an arena-owned []float64 of length n, grown on demand.
// The contents are unspecified; callers must fully write before reading.
func (a *arena) fslice(n int) []float64 {
	if a.nf < len(a.floats) {
		s := a.floats[a.nf]
		if cap(s) >= n {
			a.floats[a.nf] = s[:n]
			a.nf++
			return s[:n]
		}
		s = make([]float64, n)
		a.floats[a.nf] = s
		a.nf++
		return s
	}
	s := make([]float64, n)
	a.floats = append(a.floats, s)
	a.nf++
	return s
}

// view returns an arena-owned header over rows [lo, hi) of m, aliasing
// m's storage.
func (a *arena) view(m *mat.Dense, lo, hi int) *mat.Dense {
	var v *mat.Dense
	if a.nv < len(a.views) {
		v = a.views[a.nv]
	} else {
		v = &mat.Dense{}
		a.views = append(a.views, v)
	}
	a.nv++
	v.Rows, v.Cols = hi-lo, m.Cols
	v.Data = m.Data[lo*m.Cols : hi*m.Cols]
	return v
}

// Workspace is a pair of bump arenas owned by one network. flip
// switches to (and rewinds) the other arena, keeping the previous
// call's buffers intact for state carried across windows.
type Workspace struct {
	arenas [2]arena
	cur    int
}

func (w *Workspace) flip() *arena {
	w.cur ^= 1
	a := &w.arenas[w.cur]
	a.reset()
	return a
}

// workspaceFreeList recycles Workspaces across network lifetimes. A
// network takes one lazily on first Forward and keeps it; transient
// networks can hand theirs back via ReleaseWorkspace.
var workspaceFreeList struct {
	mu   sync.Mutex
	free []*Workspace
}

func acquireWorkspace() *Workspace {
	workspaceFreeList.mu.Lock()
	defer workspaceFreeList.mu.Unlock()
	if n := len(workspaceFreeList.free); n > 0 {
		ws := workspaceFreeList.free[n-1]
		workspaceFreeList.free = workspaceFreeList.free[:n-1]
		return ws
	}
	return &Workspace{}
}

func releaseWorkspace(ws *Workspace) {
	if ws == nil {
		return
	}
	workspaceFreeList.mu.Lock()
	workspaceFreeList.free = append(workspaceFreeList.free, ws)
	workspaceFreeList.mu.Unlock()
}

func (n *LSTM) workspace() *Workspace {
	if n.ws == nil {
		n.ws = acquireWorkspace()
	}
	return n.ws
}

// ReleaseWorkspace returns the network's scratch arenas to the package
// free list. Call it when retiring a network whose buffers are no
// longer referenced (states and ys obtained from Forward alias the
// workspace). Safe to call on a network that never ran.
func (n *LSTM) ReleaseWorkspace() {
	releaseWorkspace(n.ws)
	n.ws = nil
}

func (n *GRU) workspace() *Workspace {
	if n.ws == nil {
		n.ws = acquireWorkspace()
	}
	return n.ws
}

// ReleaseWorkspace is the GRU counterpart of LSTM.ReleaseWorkspace.
func (n *GRU) ReleaseWorkspace() {
	releaseWorkspace(n.ws)
	n.ws = nil
}

func (t *Transformer) workspace() *Workspace {
	if t.ws == nil {
		t.ws = acquireWorkspace()
	}
	return t.ws
}

// ReleaseWorkspace is the Transformer counterpart of
// LSTM.ReleaseWorkspace.
func (t *Transformer) ReleaseWorkspace() {
	releaseWorkspace(t.ws)
	t.ws = nil
}
