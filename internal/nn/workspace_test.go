package nn

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// snapshotGrads deep-copies every parameter gradient.
func snapshotGrads(params []*Param) []*mat.Dense {
	out := make([]*mat.Dense, len(params))
	for i, p := range params {
		out[i] = p.Grad.Clone()
	}
	return out
}

// runLSTMPass runs one ZeroGrads/Forward/Backward cycle and returns
// deep copies of the outputs and gradients.
func runLSTMPass(n *LSTM, xs []*mat.Dense, dys []*mat.Dense) ([]*mat.Dense, []*mat.Dense) {
	n.ZeroGrads()
	ys, cache := n.Forward(xs, nil)
	out := cloneAll(ys)
	n.Backward(cache, dys)
	return out, snapshotGrads(n.Params())
}

// TestWorkspaceWarmColdBitIdentical is the workspace-equivalence test:
// the first Forward/Backward on a fresh network runs on cold (newly
// grown) arenas, while later passes reuse warm buffers full of stale
// values. Reuse must be invisible — outputs and gradients bit-identical
// across repeated passes, including after interleaving a differently
// shaped pass that forces the arenas to re-slice their slabs.
func TestWorkspaceWarmColdBitIdentical(t *testing.T) {
	n := NewLSTM(Config{InputDim: 3, HiddenDim: 5, Layers: 2, OutputDim: 4}, rng.New(31))
	g := rng.New(32)
	const steps, batch = 5, 3
	xs := randInputs(g, steps, batch, 3)
	dys := make([]*mat.Dense, steps)
	for s := range dys {
		d := mat.NewDense(batch, 4)
		for i := range d.Data {
			d.Data[i] = g.NormFloat64()
		}
		dys[s] = d
	}
	coldYs, coldGrads := runLSTMPass(n, xs, dys)
	for pass := 0; pass < 3; pass++ {
		ys, grads := runLSTMPass(n, xs, dys)
		for s := range ys {
			for i := range ys[s].Data {
				if ys[s].Data[i] != coldYs[s].Data[i] {
					t.Fatalf("pass %d: output step %d differs from cold pass", pass, s)
				}
			}
		}
		for pi := range grads {
			for i := range grads[pi].Data {
				if grads[pi].Data[i] != coldGrads[pi].Data[i] {
					t.Fatalf("pass %d: grad %s differs from cold pass", pass, n.Params()[pi].Name)
				}
			}
		}
		// Force every slab to resize before the next pass so reuse has
		// to handle shape changes, not just identical replays.
		other := randInputs(g, steps+2, batch+1, 3)
		n.Forward(other, nil)
		n.Forward(other, nil)
	}
}

// TestWorkspaceFreeList verifies ReleaseWorkspace returns the buffers
// to the shared pool: a released workspace is handed to the next
// network that asks, and a network re-acquires one lazily after
// release without changing results.
func TestWorkspaceFreeList(t *testing.T) {
	n := NewLSTM(Config{InputDim: 3, HiddenDim: 5, Layers: 2, OutputDim: 4}, rng.New(33))
	xs := randInputs(rng.New(34), 4, 2, 3)
	before, _ := n.Forward(xs, nil)
	want := cloneAll(before)
	ws := n.ws
	if ws == nil {
		t.Fatal("Forward did not acquire a workspace")
	}
	n.ReleaseWorkspace()
	if n.ws != nil {
		t.Fatal("ReleaseWorkspace left the workspace attached")
	}
	m := tinyGRU(35)
	m.Forward(randInputs(rng.New(36), 3, 2, 3), nil)
	if m.ws != ws {
		t.Fatal("released workspace was not reused from the free list")
	}
	after, _ := n.Forward(xs, nil)
	for s := range after {
		for i := range after[s].Data {
			if after[s].Data[i] != want[s].Data[i] {
				t.Fatal("re-acquired workspace changed outputs")
			}
		}
	}
	m.ReleaseWorkspace()
	n.ReleaseWorkspace()
}

// TestStepForwardAllocFree pins the streaming decode path: after the
// lazily sized scratch exists, StepForward must not allocate at all.
func TestStepForwardAllocFree(t *testing.T) {
	n := NewLSTM(Config{InputDim: 3, HiddenDim: 5, Layers: 2, OutputDim: 4}, rng.New(37))
	st := n.NewState(1)
	x := []float64{0.1, -0.2, 0.3}
	n.StepForward(x, st) // size the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		n.StepForward(x, st)
	}); allocs != 0 {
		t.Fatalf("LSTM StepForward allocates %v times per step, want 0", allocs)
	}
	gn := tinyGRU(38)
	gst := gn.NewState(1)
	gn.StepForward(x, gst)
	if allocs := testing.AllocsPerRun(100, func() {
		gn.StepForward(x, gst)
	}); allocs != 0 {
		t.Fatalf("GRU StepForward allocates %v times per step, want 0", allocs)
	}
}

// TestForwardBackwardSteadyStateAllocs pins the training hot path: once
// both arenas of the double-buffered workspace are grown, a full
// Forward/Backward cycle performs no allocation at all. (The problem is
// sized below the kernels' parallel threshold; above it, par.For's
// fork/join bookkeeping allocates a bounded amount per call.)
func TestForwardBackwardSteadyStateAllocs(t *testing.T) {
	n := NewLSTM(Config{InputDim: 3, HiddenDim: 5, Layers: 2, OutputDim: 4}, rng.New(39))
	g := rng.New(40)
	const steps, batch = 6, 4
	xs := randInputs(g, steps, batch, 3)
	dys := make([]*mat.Dense, steps)
	for s := range dys {
		dys[s] = mat.NewDense(batch, 4)
	}
	pass := func() {
		_, cache := n.Forward(xs, nil)
		n.Backward(cache, dys)
	}
	pass()
	pass() // warm both arenas
	if allocs := testing.AllocsPerRun(20, pass); allocs != 0 {
		t.Fatalf("steady-state Forward/Backward allocates %v times, want 0", allocs)
	}
}
