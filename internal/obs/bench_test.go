package obs

import (
	"io"
	"testing"
)

// The instrumentation budget (DESIGN.md §7): counters/gauges are one
// atomic op, Histogram.Observe stays allocation-free, and the journal
// is off the hot path entirely (per-epoch / per-request granularity).

func BenchmarkCounterInc(b *testing.B) {
	b.ReportAllocs()
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	b.ReportAllocs()
	var g Gauge
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	h := NewHistogram(LatencyBuckets)
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	b.ReportAllocs()
	h := NewHistogram(LatencyBuckets)
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0
		for pb.Next() {
			h.Observe(v)
			v += 0.001
			if v > 1 {
				v = 0
			}
		}
	})
}

func BenchmarkJournalEvent(b *testing.B) {
	b.ReportAllocs()
	j := NewJournal(io.Discard)
	fields := map[string]any{"model": "flavor_lstm", "epoch": 3, "loss": 2.25}
	for i := 0; i < b.N; i++ {
		j.Event("epoch", fields)
	}
}
