package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Journal is a structured JSONL event log for a run: one JSON object
// per line, written under a mutex so concurrent training loops (e.g.
// clouds fitted in parallel) interleave whole lines. All methods are
// safe on a nil *Journal, so call sites thread an optional journal
// without guarding.
//
// Every event carries three standard fields — "event" (the type),
// "ts" (wall-clock RFC3339Nano), and "t_ms" (milliseconds since the
// journal opened) — plus the caller's fields. Journals observe; they
// never feed anything back into the system, so an enabled journal
// cannot perturb RNG streams or results.
//
// Write and marshal failures never propagate to the instrumented code
// path, but they are not silent either: every lost line increments the
// journal's dropped count (Dropped), the first error is retained (Err),
// and CountInto mirrors both into a Registry as the
// "obs.journal_errors" counter and "obs.journal_dropped_lines" gauge
// so a sick journal shows up on GET /metrics instead of producing a
// quietly truncated file.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	start  time.Time
	err    error

	dropped atomic.Int64 // lines lost to marshal or write failures

	// Optional registry mirrors, set by CountInto.
	errCount  *Counter
	dropGauge *Gauge
}

// NewJournal wraps an arbitrary writer (tests use a bytes.Buffer).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, start: time.Now()}
}

// OpenJournal creates (truncating) a JSONL journal file at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := NewJournal(f)
	j.closer = f
	return j, nil
}

// Event appends one line with the standard fields merged over the
// caller's fields. Marshal failures of individual values are recorded
// in Err rather than panicking.
func (j *Journal) Event(event string, fields map[string]any) {
	if j == nil {
		return
	}
	rec := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		rec[k] = v
	}
	now := time.Now()
	rec["event"] = event
	rec["ts"] = now.Format(time.RFC3339Nano)
	rec["t_ms"] = float64(now.Sub(j.start).Microseconds()) / 1000
	line, err := json.Marshal(rec)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.recordFailure(err)
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.recordFailure(err)
	}
}

// recordFailure accounts one lost line (caller holds j.mu): first error
// retained for Err, dropped count advanced, registry mirrors updated
// when attached.
func (j *Journal) recordFailure(err error) {
	if j.err == nil {
		j.err = err
	}
	n := j.dropped.Add(1)
	if j.errCount != nil {
		j.errCount.Inc()
	}
	if j.dropGauge != nil {
		j.dropGauge.Set(n)
	}
}

// Dropped returns how many journal lines have been lost to marshal or
// write failures (0 on a nil journal).
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// CountInto mirrors the journal's failure accounting into reg: every
// lost line increments the "obs.journal_errors" counter and refreshes
// the "obs.journal_dropped_lines" gauge, so journal health is visible
// on the /metrics snapshot. Failures that happened before attachment
// are folded in. Safe on a nil journal (the metrics are still created,
// reporting zero).
func (j *Journal) CountInto(reg *Registry) {
	errCount := reg.Counter("obs.journal_errors")
	dropGauge := reg.Gauge("obs.journal_dropped_lines")
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.errCount = errCount
	j.dropGauge = dropGauge
	if n := j.dropped.Load(); n > 0 {
		errCount.Add(n)
		dropGauge.Set(n)
	}
}

// StartSpan starts a journal-only timer (see Registry.StartSpan for
// the histogram-backed variant). Safe on a nil journal: the returned
// span still measures wall time but emits nothing.
func (j *Journal) StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now(), j: j}
}

// Err returns the first write or marshal error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close closes the underlying file when the journal owns one.
func (j *Journal) Close() error {
	if j == nil || j.closer == nil {
		return nil
	}
	return j.closer.Close()
}

// EpochEvent is the uniform per-epoch training telemetry record every
// training loop emits (flavor LSTM/GRU/Transformer, lifetime
// hazard/PMF, joint LSTM, and — as a single-epoch convergence record —
// the arrival GLM), so runs are comparable across models.
type EpochEvent struct {
	Model    string  // loop identity, e.g. "flavor_lstm"
	Epoch    int     // 0-based epoch index
	Epochs   int     // configured total
	Loss     float64 // mean training loss over the epoch
	Dev      float64 // dev-set loss, when evaluated this epoch
	HasDev   bool    // whether Dev was evaluated this epoch
	LR       float64 // learning rate in effect
	GradNorm float64 // last observed global gradient L2 norm (0 if never computed)
	Steps    int     // loss-contributing steps/outputs this epoch
	WallMS   float64 // wall-clock of the epoch in milliseconds
}

// EpochSink receives per-epoch training events. *Journal implements it;
// tests use SinkFunc recorders.
type EpochSink interface {
	EpochDone(EpochEvent)
}

// SinkFunc adapts a function to EpochSink.
type SinkFunc func(EpochEvent)

// EpochDone implements EpochSink.
func (f SinkFunc) EpochDone(e EpochEvent) { f(e) }

// EpochDone implements EpochSink: the event is journaled as an "epoch"
// line ("dev_loss" present only on epochs where the dev set was
// scored).
func (j *Journal) EpochDone(e EpochEvent) {
	if j == nil {
		return
	}
	fields := map[string]any{
		"model":     e.Model,
		"epoch":     e.Epoch,
		"epochs":    e.Epochs,
		"loss":      e.Loss,
		"lr":        e.LR,
		"grad_norm": e.GradNorm,
		"steps":     e.Steps,
		"wall_ms":   e.WallMS,
	}
	if e.HasDev {
		fields["dev_loss"] = e.Dev
	}
	j.Event("epoch", fields)
}
