package obs

import (
	"errors"
	"testing"
)

// failWriter fails every write after the first n succeed.
type failWriter struct {
	ok  int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.ok > 0 {
		w.ok--
		return len(p), nil
	}
	return 0, w.err
}

// TestJournalDroppedLinesSurfaced: write failures must not vanish —
// the dropped count, first error, and the registry mirrors all advance.
func TestJournalDroppedLinesSurfaced(t *testing.T) {
	boom := errors.New("disk full")
	j := NewJournal(&failWriter{ok: 2, err: boom})
	reg := NewRegistry()
	j.CountInto(reg)

	for i := 0; i < 5; i++ {
		j.Event("tick", map[string]any{"i": i})
	}
	if got := j.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if !errors.Is(j.Err(), boom) {
		t.Fatalf("Err = %v, want %v", j.Err(), boom)
	}
	if got := reg.Counter("obs.journal_errors").Value(); got != 3 {
		t.Fatalf("obs.journal_errors = %d, want 3", got)
	}
	if got := reg.Gauge("obs.journal_dropped_lines").Value(); got != 3 {
		t.Fatalf("obs.journal_dropped_lines = %d, want 3", got)
	}
	// The snapshot (what /metrics serves) carries both.
	snap := reg.Snapshot()
	if snap.Counters["obs.journal_errors"] != 3 || snap.Gauges["obs.journal_dropped_lines"] != 3 {
		t.Fatalf("snapshot missing journal health: %+v", snap)
	}
}

// TestJournalCountIntoFoldsPriorFailures: failures before attachment
// are not lost when the registry mirror arrives later.
func TestJournalCountIntoFoldsPriorFailures(t *testing.T) {
	j := NewJournal(&failWriter{err: errors.New("enospc")})
	j.Event("a", nil)
	j.Event("b", nil)
	reg := NewRegistry()
	j.CountInto(reg)
	if got := reg.Counter("obs.journal_errors").Value(); got != 2 {
		t.Fatalf("pre-attach errors folded = %d, want 2", got)
	}
	j.Event("c", nil)
	if got := reg.Counter("obs.journal_errors").Value(); got != 3 {
		t.Fatalf("post-attach errors = %d, want 3", got)
	}
}

// TestJournalCountIntoNilJournal: the metrics exist (zero) even when
// journaling is disabled, so dashboards see a stable schema.
func TestJournalCountIntoNilJournal(t *testing.T) {
	var j *Journal
	reg := NewRegistry()
	j.CountInto(reg)
	snap := reg.Snapshot()
	if v, ok := snap.Counters["obs.journal_errors"]; !ok || v != 0 {
		t.Fatalf("nil journal: obs.journal_errors = %d (ok=%v), want 0", v, ok)
	}
	if j.Dropped() != 0 {
		t.Fatal("nil journal Dropped != 0")
	}
}

// TestFloatGauge: set/get round-trip and snapshot exposure.
func TestFloatGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.FloatGauge("fidelity.flavor_kl")
	g.Set(0.125)
	if got := g.Value(); got != 0.125 {
		t.Fatalf("value = %v, want 0.125", got)
	}
	if again := reg.FloatGauge("fidelity.flavor_kl"); again != g {
		t.Fatal("FloatGauge is not get-or-create")
	}
	snap := reg.Snapshot()
	if got := snap.FloatGauges["fidelity.flavor_kl"]; got != 0.125 {
		t.Fatalf("snapshot float gauge = %v, want 0.125", got)
	}
}

// TestHistogramSnapshotQuantiles: p50/p90/p99 ride along with every
// snapshot and are consistent with Quantile.
func TestHistogramSnapshotQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5)
	}
	s := h.Snapshot()
	if s.P50 != s.Quantile(0.50) || s.P90 != s.Quantile(0.90) || s.P99 != s.Quantile(0.99) {
		t.Fatalf("derived quantiles inconsistent: %+v", s)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50, s.P90, s.P99)
	}
	if s.P50 <= 0 {
		t.Fatalf("p50 = %v, want > 0", s.P50)
	}
	if empty := NewHistogram([]float64{1}).Snapshot(); empty.P99 != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", empty.P99)
	}
}
