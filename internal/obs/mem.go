package obs

import "runtime"

// MemSnapshot is a compact JSON-marshalable view of the Go runtime's
// memory statistics — the fields that matter for watching the
// allocation discipline of the hot paths (heap in use, cumulative
// allocation churn, GC frequency and pause totals).
type MemSnapshot struct {
	// HeapAllocBytes is the live heap (bytes of allocated, reachable
	// or not-yet-swept objects).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// HeapInUseBytes is the heap memory in in-use spans.
	HeapInUseBytes uint64 `json:"heap_in_use_bytes"`
	// SysBytes is the total virtual memory obtained from the OS.
	SysBytes uint64 `json:"sys_bytes"`
	// TotalAllocBytes is cumulative bytes allocated since process
	// start (never decreases; its growth rate is allocation churn).
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs and Frees are cumulative object counts; Mallocs-Frees is
	// the live object count.
	Mallocs uint64 `json:"mallocs"`
	Frees   uint64 `json:"frees"`
	// GCCount is the number of completed GC cycles.
	GCCount uint32 `json:"gc_count"`
	// GCPauseTotalMs is the cumulative stop-the-world pause time.
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	// LastGCPauseMs is the most recent cycle's pause (0 before the
	// first cycle).
	LastGCPauseMs float64 `json:"last_gc_pause_ms"`
	// NextGCBytes is the heap size at which the next GC triggers.
	NextGCBytes uint64 `json:"next_gc_bytes"`
	// Goroutines is the current goroutine count.
	Goroutines int `json:"goroutines"`
}

// ReadMemStats snapshots the runtime memory statistics. It calls
// runtime.ReadMemStats, which briefly stops the world — suitable for
// debug endpoints and periodic telemetry, not for per-step hot paths.
// Like everything in obs it is strictly read-only: it cannot perturb
// model state, RNG streams, or generated traces.
func ReadMemStats() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := MemSnapshot{
		HeapAllocBytes:  ms.HeapAlloc,
		HeapInUseBytes:  ms.HeapInuse,
		SysBytes:        ms.Sys,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		Frees:           ms.Frees,
		GCCount:         ms.NumGC,
		GCPauseTotalMs:  float64(ms.PauseTotalNs) / 1e6,
		NextGCBytes:     ms.NextGC,
		Goroutines:      runtime.NumGoroutine(),
	}
	if ms.NumGC > 0 {
		snap.LastGCPauseMs = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	return snap
}
