// Package obs is the repository's instrumentation layer: atomic
// counters and gauges, fixed-bucket histograms, span timers, and a
// structured JSONL run journal (journal.go). It is stdlib-only and
// deliberately read-only with respect to the rest of the system — no
// obs call ever touches an RNG stream or model state, so enabling
// instrumentation cannot change generated traces or trained weights
// (the root determinism test pins this).
//
// Hot-path cost: Counter.Inc / Gauge.Add are a single atomic add;
// Histogram.Observe is a short linear bucket scan plus three atomic
// operations, with zero allocations. Registry lookups take a mutex, so
// callers resolve metrics once (at construction / handler-wiring time)
// and hold the pointer.
package obs

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; this is not enforced on the hot
// path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic instantaneous float64 value, for metrics
// that are genuinely continuous (fidelity divergences, ratios) where
// scaling into an integer Gauge would obscure the units.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates a float64 with compare-and-swap on its bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// LatencyBuckets is the default upper-bound layout for request/phase
// latencies in seconds: 1ms to 60s, roughly logarithmic. Values above
// the last bound land in the overflow bucket.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram: len(bounds)+1 atomic bucket
// counts (the last is overflow), a total count, and a CAS-accumulated
// sum. Bounds are upper bounds in ascending order and are immutable
// after construction.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot returns a consistent-enough copy for reporting (individual
// fields are atomically read; cross-field skew of in-flight updates is
// acceptable for monitoring).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	// Derived p50/p90/p99 ride along with every snapshot so /metrics
	// consumers get tail latencies without re-deriving them from raw
	// buckets (DESIGN.md §7).
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshot is the JSON-marshalable view of a Histogram.
// Counts has len(Bounds)+1 entries; the final entry counts values above
// the last bound (kept separate so +Inf never appears in JSON).
// P50/P90/P99 are the interpolated Quantile values at snapshot time
// (0 when the histogram is empty).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an approximate q-quantile (0 < q < 1) by linear
// interpolation within the containing bucket. Values in the overflow
// bucket report the last bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		frac := (rank - prev) / float64(c)
		return lo + frac*(s.Bounds[i]-lo)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry is a named collection of metrics. Get-or-create lookups are
// mutex-protected; the returned metric pointers are lock-free to
// update, so callers resolve names once and keep the pointer.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		floatGauges: map[string]*FloatGauge{},
		histograms:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floatGauges[name]
	if !ok {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// GaugeFamily returns the n gauges "prefix.0" … "prefix.<n-1>",
// creating any that don't exist yet. It is the per-index variant of
// Gauge for fixed-cardinality dimensions known at wiring time (e.g.
// decode shards: decode.shard_occupancy.<k>); callers index the
// returned slice on the hot path instead of formatting names.
func (r *Registry) GaugeFamily(prefix string, n int) []*Gauge {
	gs := make([]*Gauge, n)
	for i := range gs {
		gs[i] = r.Gauge(prefix + "." + strconv.Itoa(i))
	}
	return gs
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns a JSON-marshalable view of every metric. Map keys
// marshal in sorted order, so serialized snapshots are stable.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:    make(map[string]int64, len(r.counters)),
		Gauges:      make(map[string]int64, len(r.gauges)),
		FloatGauges: make(map[string]float64, len(r.floatGauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.floatGauges {
		s.FloatGauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is the point-in-time view of a Registry.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Span is a phase-level timer: started against a Registry (recording
// into the histogram "span.<name>.seconds") and/or a Journal (emitting
// a "span" event with the wall time on End). A Span with neither
// backend is a plain stopwatch.
type Span struct {
	name  string
	start time.Time
	h     *Histogram
	j     *Journal
}

// StartSpan starts a timer recording into this registry's
// "span.<name>.seconds" histogram.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{
		name:  name,
		start: time.Now(),
		h:     r.Histogram("span."+name+".seconds", LatencyBuckets),
	}
}

// WithJournal additionally emits a "span" journal event on End. A nil
// journal is a no-op.
func (s *Span) WithJournal(j *Journal) *Span {
	s.j = j
	return s
}

// End stops the span, records its backends, and returns the elapsed
// wall time.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	s.j.Event("span", map[string]any{
		"name":    s.name,
		"wall_ms": float64(d.Microseconds()) / 1000,
	})
	return d
}
