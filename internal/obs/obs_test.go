package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(2)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if want := []int64{2, 1, 1, 1}; len(s.Counts) != len(want) {
		t.Fatalf("counts = %v", s.Counts)
	} else {
		for i := range want {
			if s.Counts[i] != want[i] {
				t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want[i])
			}
		}
	}
	if math.Abs(s.Sum-106) > 1e-12 {
		t.Errorf("sum = %v", s.Sum)
	}
	if math.Abs(s.Mean()-21.2) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.01)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%40) + 0.5)
	}
	s := h.Snapshot()
	q50 := s.Quantile(0.5)
	if q50 < 10 || q50 > 30 {
		t.Errorf("q50 = %v, want within [10, 30]", q50)
	}
	if q := s.Quantile(0.999); q > 40 {
		t.Errorf("q99.9 = %v exceeds max bound", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name must return same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name must return same gauge")
	}
	if r.Histogram("h", LatencyBuckets) != r.Histogram("h", nil) {
		t.Error("same name must return same histogram")
	}
	r.Counter("a").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", nil).Observe(0.2)
	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["g"] != -2 || s.Histograms["h"].Count != 1 {
		t.Errorf("snapshot: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot must be JSON-marshalable: %v", err)
	}
}

func TestJournalEvents(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Event("hello", map[string]any{"k": 1, "s": "v"})
	j.Event("bye", nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var events []string
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, rec["event"].(string))
		if _, ok := rec["ts"]; !ok {
			t.Error("missing ts")
		}
		if _, ok := rec["t_ms"]; !ok {
			t.Error("missing t_ms")
		}
	}
	if len(events) != 2 || events[0] != "hello" || events[1] != "bye" {
		t.Fatalf("events: %v", events)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Event("x", nil) // must not panic
	j.EpochDone(EpochEvent{})
	sp := j.StartSpan("phase")
	if sp.End() < 0 {
		t.Error("negative span duration")
	}
	if j.Err() != nil || j.Close() != nil {
		t.Error("nil journal Err/Close must be nil")
	}
}

func TestJournalEpochDone(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.EpochDone(EpochEvent{Model: "flavor_lstm", Epoch: 1, Epochs: 4, Loss: 2.5, LR: 0.003, Steps: 10, WallMS: 7})
	j.EpochDone(EpochEvent{Model: "flavor_lstm", Epoch: 3, Epochs: 4, Loss: 2.1, Dev: 2.4, HasDev: true})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %d", len(lines))
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["event"] != "epoch" || first["model"] != "flavor_lstm" || first["loss"].(float64) != 2.5 {
		t.Errorf("first: %v", first)
	}
	if _, ok := first["dev_loss"]; ok {
		t.Error("dev_loss must be omitted when not evaluated")
	}
	if second["dev_loss"].(float64) != 2.4 {
		t.Errorf("second: %v", second)
	}
}

func TestOpenJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Event("start", map[string]any{"seed": 7})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(blob), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["event"] != "start" || rec["seed"].(float64) != 7 {
		t.Errorf("rec: %v", rec)
	}
}

func TestSpanRegistryAndJournal(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	j := NewJournal(&buf)
	sp := r.StartSpan("train").WithJournal(j)
	if d := sp.End(); d < 0 {
		t.Fatal("negative duration")
	}
	s := r.Snapshot()
	h, ok := s.Histograms["span.train.seconds"]
	if !ok || h.Count != 1 {
		t.Fatalf("span histogram missing/empty: %+v", s.Histograms)
	}
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["event"] != "span" || rec["name"] != "train" {
		t.Errorf("rec: %v", rec)
	}
	if _, ok := rec["wall_ms"]; !ok {
		t.Error("missing wall_ms")
	}
}

func TestSinkFunc(t *testing.T) {
	var got []EpochEvent
	var sink EpochSink = SinkFunc(func(e EpochEvent) { got = append(got, e) })
	sink.EpochDone(EpochEvent{Model: "m", Epoch: 0, Loss: 1})
	if len(got) != 1 || got[0].Model != "m" {
		t.Fatalf("got: %+v", got)
	}
}

func TestReadMemStats(t *testing.T) {
	s := ReadMemStats()
	if s.HeapInUseBytes == 0 || s.SysBytes == 0 || s.Mallocs == 0 {
		t.Fatalf("implausible memory snapshot: %+v", s)
	}
	if s.Mallocs < s.Frees {
		t.Fatalf("mallocs %d < frees %d", s.Mallocs, s.Frees)
	}
	if s.Goroutines < 1 {
		t.Fatalf("goroutines %d", s.Goroutines)
	}
	// Allocation churn must move the cumulative counters but the
	// snapshot itself must stay cheap and side-effect free.
	before := ReadMemStats()
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	_ = sink
	after := ReadMemStats()
	if after.TotalAllocBytes < before.TotalAllocBytes {
		t.Fatalf("total_alloc went backwards: %d -> %d", before.TotalAllocBytes, after.TotalAllocBytes)
	}
	if b, err := json.Marshal(s); err != nil || len(b) == 0 {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}
