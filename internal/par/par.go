// Package par is the deterministic parallel execution layer: a bounded
// worker scheme with a process-wide worker count (REPRO_PROCS env
// override, runtime.NumCPU() default) and helpers for running
// independent index-addressed tasks concurrently. Process-wide
// utilization counters (regions, tasks, worker busy/spawn-wait time)
// are exposed via Snapshot for the observability layer (/metrics,
// expvar).
//
// Determinism contract: every caller must arrange the work so the
// result is independent of scheduling order — each task writes only to
// its own index of a pre-sized slice (or to a disjoint row range), and
// any floating-point or RNG-consuming reduction happens on the caller's
// goroutine in fixed index order after the parallel region completes.
// Under that contract the output is bit-identical for any worker count,
// which the root determinism regression test enforces end-to-end.
//
// Workers are spawned per call (bounded by Procs()) rather than parked
// in a shared global pool: nested parallel regions (e.g. a pipelined
// Model.Generate inside a parallel Monte-Carlo sweep) would deadlock a
// fixed-size shared pool, while per-call workers compose freely and the
// spawn cost (~1µs) is negligible at the granularity this repository
// parallelizes (training shards, trace samples, packing trials, GEMM
// row blocks).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// procs is the current worker count. It is stored atomically so tests
// (and the determinism harness) can flip it at runtime.
var procs atomic.Int32

func init() { procs.Store(int32(defaultProcs())) }

// defaultProcs resolves the initial worker count: the REPRO_PROCS
// environment variable when set to a positive integer, else the number
// of logical CPUs.
func defaultProcs() int {
	if s := os.Getenv("REPRO_PROCS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.NumCPU()
}

// Procs returns the current worker count. A value of 1 selects the
// serial path everywhere.
func Procs() int { return int(procs.Load()) }

// SetProcs overrides the worker count (the programmatic equivalent of
// REPRO_PROCS) and returns the previous value so callers can restore it:
//
//	defer par.SetProcs(par.SetProcs(8))
//
// Values below 1 are clamped to 1.
func SetProcs(n int) int {
	if n < 1 {
		n = 1
	}
	return int(procs.Swap(int32(n)))
}

// Stats is a point-in-time snapshot of the process-wide parallel-layer
// counters: how many parallel regions ran, how many tasks they carried,
// how many workers were spawned, and the accumulated wall, busy, and
// spawn-wait times. Utilization over an interval is the delta of
// BusyNanos divided by (delta of WallNanos × worker count); SpawnNanos
// is the region-entry latency (time from Do being called to each
// worker claiming its first task) — the per-call analogue of queue
// wait in a pooled design.
type Stats struct {
	Regions    int64 `json:"regions"`
	Tasks      int64 `json:"tasks"`
	Workers    int64 `json:"workers"`
	WallNanos  int64 `json:"wall_nanos"`
	BusyNanos  int64 `json:"busy_nanos"`
	SpawnNanos int64 `json:"spawn_nanos"`
}

// Counters are process-wide and monotonic; consumers (the /metrics
// endpoint, expvar) report values or deltas. Cost per region: two
// clock reads and a handful of atomic adds — noise next to the
// millisecond-scale work Do fans out (the bench.sh overhead comparison
// keeps this honest).
var (
	statRegions atomic.Int64
	statTasks   atomic.Int64
	statWorkers atomic.Int64
	statWall    atomic.Int64
	statBusy    atomic.Int64
	statSpawn   atomic.Int64
)

// Snapshot returns the current counter values.
func Snapshot() Stats {
	return Stats{
		Regions:    statRegions.Load(),
		Tasks:      statTasks.Load(),
		Workers:    statWorkers.Load(),
		WallNanos:  statWall.Load(),
		BusyNanos:  statBusy.Load(),
		SpawnNanos: statSpawn.Load(),
	}
}

// Do runs fn(i) for every i in [0, n), spread over min(Procs(), n)
// workers. Tasks must be independent: fn(i) may read shared immutable
// state but must write only to state owned by index i. With Procs()==1
// the tasks run inline in ascending order; otherwise completion order is
// unspecified, so reductions belong after Do returns.
//
// A panic in any task is re-raised on the calling goroutine after all
// workers have drained, preserving the package's panic-on-bug style.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	start := time.Now()
	statRegions.Add(1)
	statTasks.Add(int64(n))
	w := Procs()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		d := time.Since(start).Nanoseconds()
		statWall.Add(d)
		statBusy.Add(d)
		return
	}
	statWorkers.Add(int64(w))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			t0 := time.Now()
			statSpawn.Add(t0.Sub(start).Nanoseconds())
			defer func() {
				statBusy.Add(time.Since(t0).Nanoseconds())
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
					// Drain remaining indices so sibling workers exit
					// promptly instead of running doomed work.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	statWall.Add(time.Since(start).Nanoseconds())
	if panicVal != nil {
		panic(panicVal)
	}
}

// For splits [0, n) into at most Procs() contiguous chunks of at least
// grain elements each and runs fn(lo, hi) on each chunk. It is meant for
// row-range kernels where every row's result is independent of the
// chunking (so the boundaries — which do depend on the worker count —
// cannot affect the output). With one worker, or when n does not exceed
// grain, fn(0, n) runs inline.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Procs()
	if w <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	Do(chunks, func(c int) {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		if lo < hi {
			fn(lo, hi)
		}
	})
}
