package par

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestProcsDefaultPositive(t *testing.T) {
	if Procs() < 1 {
		t.Fatalf("Procs() = %d", Procs())
	}
}

func TestSetProcsRestores(t *testing.T) {
	old := SetProcs(3)
	if Procs() != 3 {
		t.Fatalf("after SetProcs(3), Procs() = %d", Procs())
	}
	if prev := SetProcs(old); prev != 3 {
		t.Fatalf("SetProcs returned %d, want 3", prev)
	}
	if Procs() != old {
		t.Fatalf("restore failed: %d != %d", Procs(), old)
	}
}

func TestSetProcsClamps(t *testing.T) {
	defer SetProcs(SetProcs(0))
	if Procs() != 1 {
		t.Fatalf("SetProcs(0) should clamp to 1, got %d", Procs())
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8, 32} {
		defer SetProcs(SetProcs(w))
		const n = 1000
		counts := make([]int32, n)
		Do(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("procs=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoEmptyAndNegative(t *testing.T) {
	called := false
	Do(0, func(int) { called = true })
	Do(-5, func(int) { called = true })
	if called {
		t.Fatal("Do ran tasks for n <= 0")
	}
}

// TestDoDeterministicReduction is the package-level contract check:
// per-index outputs followed by an in-order reduction give identical
// results at any worker count.
func TestDoDeterministicReduction(t *testing.T) {
	run := func(w int) float64 {
		defer SetProcs(SetProcs(w))
		const n = 513
		out := make([]float64, n)
		Do(n, func(i int) { out[i] = 1.0 / float64(i+1) })
		var s float64
		for _, v := range out {
			s += v
		}
		return s
	}
	want := run(1)
	for _, w := range []int{2, 4, 16} {
		if got := run(w); got != want {
			t.Fatalf("procs=%d sum %v != serial %v", w, got, want)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer SetProcs(SetProcs(4))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		} else if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Do(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForCoversRangeDisjointly(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		for _, n := range []int{1, 5, 64, 1001} {
			defer SetProcs(SetProcs(w))
			counts := make([]int32, n)
			For(n, 4, func(lo, hi int) {
				if lo >= hi || lo < 0 || hi > n {
					panic(fmt.Sprintf("bad range [%d,%d) of %d", lo, hi, n))
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("procs=%d n=%d: index %d covered %d times", w, n, i, c)
				}
			}
		}
	}
}

func TestForRespectsGrain(t *testing.T) {
	defer SetProcs(SetProcs(8))
	// n <= grain must run as a single inline chunk.
	chunks := 0
	For(16, 32, func(lo, hi int) {
		chunks++
		if lo != 0 || hi != 16 {
			t.Fatalf("expected single chunk [0,16), got [%d,%d)", lo, hi)
		}
	})
	if chunks != 1 {
		t.Fatalf("chunks = %d", chunks)
	}
}

func TestSnapshotCountersAdvance(t *testing.T) {
	defer SetProcs(SetProcs(4))
	before := Snapshot()
	Do(10, func(int) { time.Sleep(time.Millisecond) })
	after := Snapshot()
	if got := after.Regions - before.Regions; got != 1 {
		t.Errorf("regions delta = %d, want 1", got)
	}
	if got := after.Tasks - before.Tasks; got != 10 {
		t.Errorf("tasks delta = %d, want 10", got)
	}
	if got := after.Workers - before.Workers; got != 4 {
		t.Errorf("workers delta = %d, want 4", got)
	}
	if after.WallNanos <= before.WallNanos {
		t.Error("wall time did not advance")
	}
	// 10 sleeping tasks over 4 workers: busy time must exceed the
	// region's wall time (workers run concurrently).
	if busy, wall := after.BusyNanos-before.BusyNanos, after.WallNanos-before.WallNanos; busy <= wall {
		t.Errorf("busy delta %d <= wall delta %d for a 4-worker region", busy, wall)
	}
}

// BenchmarkDoSerialRegion measures the fixed per-region cost of the
// serial Do path (bounds check + stats: two clock reads, a few atomic
// adds). Compare against the millisecond-scale regions Do fans out in
// practice — the stats must stay noise (<2% overhead budget).
func BenchmarkDoSerialRegion(b *testing.B) {
	defer SetProcs(SetProcs(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Do(1, func(int) {})
	}
}

// BenchmarkDoParallelRegion measures region setup + teardown on the
// multi-worker path (worker spawn, stats, join) with trivial tasks.
func BenchmarkDoParallelRegion(b *testing.B) {
	defer SetProcs(SetProcs(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Do(8, func(int) {})
	}
}

// TestSnapshotZeroAlloc pins Snapshot at zero allocations while
// parallel regions run concurrently (the sharded decode engine polls
// Snapshot from /metrics while shards step through Do): six atomic
// loads into a value struct, no matter how contended the counters are.
func TestSnapshotZeroAlloc(t *testing.T) {
	defer SetProcs(SetProcs(4))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				Do(8, func(int) {})
			}
		}
	}()
	var sink Stats
	if allocs := testing.AllocsPerRun(1000, func() { sink = Snapshot() }); allocs != 0 {
		t.Errorf("Snapshot allocates %v times under concurrent regions, want 0", allocs)
	}
	close(stop)
	<-done
	_ = sink
}

// BenchmarkSnapshotContended measures Snapshot while shardCount
// goroutines continuously open and close serial regions — the
// multi-region contention the ~130 ns/region serial figure from
// BenchmarkDoSerialRegion never exercises. Caveat (same as bench.sh):
// cross-block ns/op deltas under ~10% are clock noise; for a
// kernel-level decision run the contended and uncontended blocks in
// one process and compare within the run.
func BenchmarkSnapshotContended(b *testing.B) {
	defer SetProcs(SetProcs(1))
	const shardCount = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < shardCount; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Do(1, func(int) {})
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink Stats
	for i := 0; i < b.N; i++ {
		sink = Snapshot()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	_ = sink
}

// BenchmarkDoSerialRegionContended is the multi-region companion to
// BenchmarkDoSerialRegion: per-region cost when shardCount goroutines
// enter serial regions concurrently, so the shared atomic counters are
// genuinely contended (the sharded decode engine's steady state —
// every shard's GEMM opens regions against its siblings). The same
// paired-measure caveat applies: compare against BenchmarkDoSerialRegion
// from the same bench.sh run, not across baselines.
func BenchmarkDoSerialRegionContended(b *testing.B) {
	defer SetProcs(SetProcs(1))
	const shardCount = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < shardCount; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Do(1, func(int) {})
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Do(1, func(int) {})
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func TestSnapshotSerialPath(t *testing.T) {
	defer SetProcs(SetProcs(1))
	before := Snapshot()
	Do(5, func(int) {})
	after := Snapshot()
	if got := after.Tasks - before.Tasks; got != 5 {
		t.Errorf("tasks delta = %d, want 5", got)
	}
	if got := after.Workers - before.Workers; got != 0 {
		t.Errorf("workers delta = %d, want 0 on the serial path", got)
	}
	if after.BusyNanos < before.BusyNanos || after.WallNanos < before.WallNanos {
		t.Error("time counters went backwards")
	}
}
