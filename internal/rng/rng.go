// Package rng provides a seeded random source plus the distribution
// samplers the workload models need (Poisson, geometric, categorical,
// Zipf, log-normal). Every consumer in this repository draws through an
// *rng.RNG so experiments are reproducible bit-for-bit from a seed.
package rng

import (
	"fmt"
	"math"
	"math/rand"
)

// RNG wraps a seeded PRNG with workload-modeling samplers. Its stream
// position is checkpointable: every consumer draws through a counting
// source, so State/Restore can reproduce the exact mid-stream state by
// reseeding and replaying the counted source draws (DESIGN.md §8).
type RNG struct {
	r       *rand.Rand
	src     countingSource
	seedVal int64
}

// countingSource wraps the stdlib source and counts source-level draws.
// All rand.Rand methods consume entropy exclusively through Int63/
// Uint64 on the source, so (seed, draws) fully determines the stream
// position regardless of which sampler mix produced the draws.
type countingSource struct {
	s     rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.s.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.s.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.draws = 0
	c.s.Seed(seed)
}

// State is a serializable snapshot of an RNG's stream position. It is
// tiny (a seed and a draw count) and restores bit-exactly: an RNG
// restored from a State produces the same subsequent draws as the
// original would have.
type State struct {
	Seed  int64
	Draws uint64
}

// maxRestoreDraws bounds how many source draws Restore will replay.
// Restoring is O(draws); states from verified checkpoints are far below
// this, and refusing absurd counts keeps corrupt (but checksummed-past)
// input from turning into an unbounded replay loop.
const maxRestoreDraws = 1 << 36

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	g := &RNG{seedVal: seed}
	g.src = countingSource{s: rand.NewSource(seed).(rand.Source64)}
	g.r = rand.New(&g.src)
	return g
}

// State returns the RNG's current stream position.
func (g *RNG) State() State {
	return State{Seed: g.seedVal, Draws: g.src.draws}
}

// Restore reconstructs an RNG at the exact stream position captured by
// st: reseed, then replay the counted source draws. Returns an error
// (never hangs) when the draw count exceeds the replay budget.
func Restore(st State) (*RNG, error) {
	if st.Draws > maxRestoreDraws {
		return nil, fmt.Errorf("rng: refusing to replay %d draws (limit %d)", st.Draws, uint64(maxRestoreDraws))
	}
	g := New(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		g.src.s.Int63()
	}
	g.src.draws = st.Draws
	return g, nil
}

// Split derives an independent child RNG from this one. Use it to give
// each subsystem its own stream so adding draws in one place does not
// perturb another.
func (g *RNG) Split() *RNG {
	return New(g.r.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Poisson samples from a Poisson distribution with mean lambda.
// Knuth's product method is used for small lambda; for large lambda the
// PTRS transformed-rejection method of Hörmann (1993) is used.
func (g *RNG) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= g.r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return g.poissonPTRS(lambda)
	}
}

// poissonPTRS implements Hörmann's PTRS rejection sampler (lambda >= 10).
func (g *RNG) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := g.r.Float64() - 0.5
		v := g.r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// Geometric samples the number of failures before the first success in
// Bernoulli(p) trials; the result is >= 0 with mean (1-p)/p.
func (g *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := g.r.Float64()
	// Inverse CDF: k = floor(ln(1-u) / ln(1-p)).
	return int(math.Log(1-u) / math.Log(1-p))
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Categorical samples an index from unnormalized non-negative weights
// by inverse-CDF walk. Panics if all weights are zero.
func (g *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical all-zero weights")
	}
	u := g.r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1
}

// LogNormal samples exp(N(mu, sigma)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Exponential samples from Exp(rate).
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return g.r.ExpFloat64() / rate
}

// Gamma samples from Gamma(shape, scale) with mean shape*scale using
// the Marsaglia–Tsang squeeze method (2000). Shapes below 1 are boosted
// via the Gamma(shape+1) * U^(1/shape) identity. The workload layer
// uses unit-mean Gamma multipliers (shape=1/cv², scale=cv²) to build
// bursty doubly-stochastic arrival processes.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// Boost: X ~ Gamma(a+1), X * U^(1/a) ~ Gamma(a).
		u := g.r.Float64()
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = g.r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull samples from Weibull(shape k, scale λ) by inverse CDF:
// λ * (-ln(1-U))^(1/k). The mean is λ·Γ(1+1/k); shape k < 1 gives
// heavy-tailed (bursty) interarrivals, k > 1 regular ones.
func (g *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull requires shape > 0 and scale > 0")
	}
	u := g.r.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// ZipfWeights returns n unnormalized Zipf(s) weights: w[i] = 1/(i+1)^s.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// Alias is a Walker alias table for O(1) categorical sampling; it is the
// hot-path counterpart of RNG.Categorical for large, fixed weight sets.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from unnormalized non-negative weights.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAlias negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: NewAlias all-zero weights")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws an index from the alias table using g.
func (a *Alias) Sample(g *RNG) int {
	i := g.Intn(len(a.prob))
	if g.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the number of categories in the table.
func (a *Alias) Len() int { return len(a.prob) }
