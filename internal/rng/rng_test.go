package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(1)
	c1 := g.Split()
	c2 := g.Split()
	same := true
	for i := 0; i < 10; i++ {
		if c1.Float64() != c2.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("split children should differ")
	}
}

func TestPoissonMeanVariance(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 80, 500} {
		g := New(7)
		n := 20000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := float64(g.Poisson(lambda))
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		tol := 4 * math.Sqrt(lambda/float64(n)) * math.Max(1, math.Sqrt(lambda))
		if math.Abs(mean-lambda) > tol {
			t.Errorf("lambda=%v: mean %v too far", lambda, mean)
		}
		if math.Abs(variance-lambda) > 10*tol*math.Sqrt(lambda) {
			t.Errorf("lambda=%v: variance %v too far", lambda, variance)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	g := New(1)
	if g.Poisson(0) != 0 || g.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	g := New(9)
	p := 1.0 / 7.0
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(g.Geometric(p))
	}
	mean := sum / float64(n)
	want := (1 - p) / p // = 6
	if math.Abs(mean-want) > 0.2 {
		t.Fatalf("geometric mean %v want %v", mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	g := New(1)
	for i := 0; i < 10; i++ {
		if g.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestGeometricBadPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Geometric(0)
}

func TestCategoricalFrequencies(t *testing.T) {
	g := New(11)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	n := 40000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10 * float64(n)
		if math.Abs(float64(c)-want) > 4*math.Sqrt(want) {
			t.Errorf("category %d: count %d want ~%v", i, c, want)
		}
	}
}

func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	g := New(3)
	w := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if g.Categorical(w) != 1 {
			t.Fatal("zero-weight category sampled")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestAliasMatchesCategorical(t *testing.T) {
	g := New(13)
	w := []float64{5, 1, 0, 3, 0.5}
	a := NewAlias(w)
	if a.Len() != len(w) {
		t.Fatalf("alias len %d", a.Len())
	}
	counts := make([]int, len(w))
	n := 100000
	for i := 0; i < n; i++ {
		counts[a.Sample(g)]++
	}
	var total float64
	for _, v := range w {
		total += v
	}
	for i, c := range counts {
		want := w[i] / total * float64(n)
		if w[i] == 0 {
			if c != 0 {
				t.Errorf("zero-weight category %d sampled %d times", i, c)
			}
			continue
		}
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want+1) {
			t.Errorf("alias category %d: %d want ~%v", i, c, want)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a := NewAlias([]float64{2.5})
	g := New(1)
	for i := 0; i < 10; i++ {
		if a.Sample(g) != 0 {
			t.Fatal("single category must always be 0")
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	if w[0] != 1 || math.Abs(w[1]-0.5) > 1e-15 || math.Abs(w[3]-0.25) > 1e-15 {
		t.Fatalf("zipf weights wrong: %v", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatal("zipf weights must be non-increasing")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := New(5)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	g := New(17)
	rate := 2.0
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += g.Exponential(rate)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exponential mean %v want 0.5", mean)
	}
}

func TestLogNormalPositiveQuick(t *testing.T) {
	g := New(23)
	f := func(mu int8, sigmaRaw uint8) bool {
		sigma := float64(sigmaRaw%30) / 10
		return g.LogNormal(float64(mu%5), sigma) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonAlwaysNonNegativeQuick(t *testing.T) {
	g := New(29)
	f := func(raw uint16) bool {
		lambda := float64(raw) / 100
		return g.Poisson(lambda) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaMeanVariance(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {2.5, 0.4}, {9, 3},
	} {
		g := New(11)
		n := 40000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := g.Gamma(tc.shape, tc.scale)
			if v <= 0 {
				t.Fatalf("Gamma(%v,%v) produced non-positive %v", tc.shape, tc.scale, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		// Standard error of the mean is sqrt(var/n); allow 5 sigma.
		tol := 5 * math.Sqrt(wantVar/float64(n))
		if math.Abs(mean-wantMean) > tol {
			t.Errorf("Gamma(%v,%v): mean %v want %v (tol %v)", tc.shape, tc.scale, mean, wantMean, tol)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar+tol {
			t.Errorf("Gamma(%v,%v): variance %v want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	g := New(1)
	for _, tc := range []struct{ shape, scale float64 }{{0, 1}, {-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v,%v) should panic", tc.shape, tc.scale)
				}
			}()
			g.Gamma(tc.shape, tc.scale)
		}()
	}
}

func TestWeibullMeanVariance(t *testing.T) {
	gamma := math.Gamma
	for _, tc := range []struct{ shape, scale float64 }{
		{0.7, 1}, {1, 2}, {1.5, 0.5}, {3, 4},
	} {
		g := New(13)
		n := 40000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := g.Weibull(tc.shape, tc.scale)
			if v < 0 {
				t.Fatalf("Weibull(%v,%v) produced negative %v", tc.shape, tc.scale, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		wantMean := tc.scale * gamma(1+1/tc.shape)
		wantVar := tc.scale*tc.scale*gamma(1+2/tc.shape) - wantMean*wantMean
		tol := 5 * math.Sqrt(wantVar/float64(n))
		if math.Abs(mean-wantMean) > tol {
			t.Errorf("Weibull(%v,%v): mean %v want %v (tol %v)", tc.shape, tc.scale, mean, wantMean, tol)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar+tol {
			t.Errorf("Weibull(%v,%v): variance %v want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestWeibullPanics(t *testing.T) {
	g := New(1)
	for _, tc := range []struct{ shape, scale float64 }{{0, 1}, {-1, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Weibull(%v,%v) should panic", tc.shape, tc.scale)
				}
			}()
			g.Weibull(tc.shape, tc.scale)
		}()
	}
}
