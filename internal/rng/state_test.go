package rng

import (
	"testing"
)

// drainMixed consumes a representative mix of samplers (uniform,
// normal/ziggurat, Poisson, geometric, permutation) so the draw counter
// is exercised across every source-consumption pattern rand.Rand has.
func drainMixed(g *RNG, rounds int) []float64 {
	var out []float64
	for i := 0; i < rounds; i++ {
		out = append(out, g.Float64())
		out = append(out, g.NormFloat64())
		out = append(out, float64(g.Poisson(3.5)))
		out = append(out, float64(g.Poisson(120)))
		out = append(out, float64(g.Geometric(0.25)))
		out = append(out, float64(g.Intn(1000)))
		for _, p := range g.Perm(5) {
			out = append(out, float64(p))
		}
		out = append(out, g.LogNormal(1, 0.5))
		out = append(out, g.Exponential(2))
	}
	return out
}

// TestStateRestoreMidStream is the stream-checkpoint property: snapshot
// an RNG mid-stream after an arbitrary sampler mix, restore it, and the
// restored stream must match the original draw for draw.
func TestStateRestoreMidStream(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 123456789} {
		g := New(seed)
		drainMixed(g, 3) // advance to an arbitrary mid-stream position
		st := g.State()
		want := drainMixed(g, 3)
		r, err := Restore(st)
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		got := drainMixed(r, 3)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: restored stream diverges at draw %d: %v vs %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestStateFreshRNG(t *testing.T) {
	g := New(99)
	st := g.State()
	if st.Seed != 99 || st.Draws != 0 {
		t.Fatalf("fresh state = %+v, want {99 0}", st)
	}
	r, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := g.Float64(), r.Float64(); a != b {
		t.Fatalf("fresh restore diverges: %v vs %v", a, b)
	}
}

func TestStateSurvivesSplit(t *testing.T) {
	g := New(5)
	_ = g.Split()
	st := g.State()
	r, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	// Children split after the snapshot must match too.
	c1, c2 := g.Split(), r.Split()
	for i := 0; i < 20; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("post-restore split children diverge")
		}
	}
}

func TestRestoreRefusesAbsurdReplay(t *testing.T) {
	if _, err := Restore(State{Seed: 1, Draws: 1 << 60}); err == nil {
		t.Fatal("Restore accepted an absurd draw count")
	}
}
