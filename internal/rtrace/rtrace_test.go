package rtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: the disabled state (nil tracer / nil trace) must be a
// no-op end to end — call sites thread traces without guarding.
func TestNilSafety(t *testing.T) {
	var tc *Tracer
	if tc := NewTracer(0); tc != nil {
		t.Fatal("NewTracer(0) should return the nil disabled tracer")
	}
	tr := tc.StartTrace()
	if tr != nil {
		t.Fatal("nil tracer should hand out nil traces")
	}
	tr.Add("queue", time.Now(), time.Millisecond)
	tr.AddN("decode", time.Now(), time.Millisecond, 7)
	tr.SetShard(3)
	if got := tr.ID(); got != "" {
		t.Fatalf("nil trace ID = %q, want empty", got)
	}
	if f := tc.Finish(tr); f.ID != "" || len(f.Spans) != 0 {
		t.Fatalf("nil finish = %+v, want zero", f)
	}
	if tc.Tail(10) != nil || tc.Count() != 0 || tc.Capacity() != 0 {
		t.Fatal("nil tracer should report nothing")
	}
	if ctx := NewContext(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("nil trace must not be stored in context")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) must be nil")
	}
}

func TestIDsUniqueAndHex(t *testing.T) {
	tc := NewTracer(4)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := tc.StartTrace().ID()
		if len(id) != 16 || strings.ToLower(id) != id {
			t.Fatalf("ID %q is not 16 lowercase hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestSpansAndCoverage(t *testing.T) {
	tc := NewTracer(8)
	tr := tc.StartTrace()
	start := tr.start
	tr.Add("queue", start, 10*time.Millisecond)
	tr.AddN("decode", start.Add(10*time.Millisecond), 30*time.Millisecond, 12)
	tr.SetShard(2)
	f := tc.Finish(tr)
	if f.Shard != 2 {
		t.Fatalf("shard = %d, want 2", f.Shard)
	}
	if len(f.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(f.Spans))
	}
	if f.Spans[1].Steps != 12 {
		t.Fatalf("decode steps = %d, want 12", f.Spans[1].Steps)
	}
	if f.Spans[1].StartNS != (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("decode start offset = %d", f.Spans[1].StartNS)
	}
	if d, ok := f.SpanDur("queue"); !ok || d != 10*time.Millisecond {
		t.Fatalf("SpanDur(queue) = %v %v", d, ok)
	}
	if _, ok := f.SpanDur("missing"); ok {
		t.Fatal("SpanDur should miss unknown names")
	}
	// Coverage is span time over total; with a synthetic DurNS it is
	// exact.
	f.DurNS = (40 * time.Millisecond).Nanoseconds()
	if cov := f.Coverage(); cov != 1.0 {
		t.Fatalf("coverage = %v, want 1.0", cov)
	}
}

// TestRingWrap: the ring keeps exactly the most recent `capacity`
// traces, oldest first, and Tail(n) clips to the newest n.
func TestRingWrap(t *testing.T) {
	const capacity = 4
	tc := NewTracer(capacity)
	var ids []string
	for i := 0; i < 10; i++ {
		tr := tc.StartTrace()
		ids = append(ids, tr.ID())
		tc.Finish(tr)
	}
	if tc.Count() != 10 {
		t.Fatalf("count = %d, want 10", tc.Count())
	}
	tail := tc.Tail(0)
	if len(tail) != capacity {
		t.Fatalf("ring holds %d, want %d", len(tail), capacity)
	}
	for i, f := range tail {
		if want := ids[10-capacity+i]; f.ID != want {
			t.Fatalf("ring[%d] = %s, want %s (oldest first)", i, f.ID, want)
		}
	}
	last2 := tc.Tail(2)
	if len(last2) != 2 || last2[1].ID != ids[9] || last2[0].ID != ids[8] {
		t.Fatalf("Tail(2) = %v", last2)
	}
}

func TestJSONLExportAndStream(t *testing.T) {
	var stream bytes.Buffer
	tc := NewTracer(8)
	tc.StreamTo(&stream)
	tr := tc.StartTrace()
	tr.Add("decode", tr.start, time.Millisecond)
	tc.Finish(tr)

	var batch bytes.Buffer
	if err := tc.WriteJSONL(&batch); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"stream": &stream, "batch": &batch} {
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 1 {
			t.Fatalf("%s: %d lines, want 1", name, len(lines))
		}
		var f Finished
		if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
			t.Fatalf("%s: bad JSONL line: %v", name, err)
		}
		if f.ID != tr.ID() || len(f.Spans) != 1 || f.Spans[0].Name != "decode" {
			t.Fatalf("%s: decoded %+v", name, f)
		}
	}
}

// TestConcurrentFinish: many goroutines finishing traces must not race
// (run under -race in scripts/check.sh) and must all be counted.
func TestConcurrentFinish(t *testing.T) {
	tc := NewTracer(16)
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := tc.StartTrace()
			tr.Add("decode", tr.start, time.Microsecond)
			tc.Finish(tr)
		}()
	}
	wg.Wait()
	if tc.Count() != n {
		t.Fatalf("count = %d, want %d", tc.Count(), n)
	}
	if got := len(tc.Tail(0)); got != 16 {
		t.Fatalf("ring holds %d, want 16", got)
	}
}

// TestContextRoundTrip: the engine extracts exactly what the handler
// stored.
func TestContextRoundTrip(t *testing.T) {
	tc := NewTracer(1)
	tr := tc.StartTrace()
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("background context should carry no trace")
	}
}
