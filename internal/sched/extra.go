package sched

import (
	"math"

	"repro/internal/rng"
	"repro/internal/trace"
)

// FirstFit places the request on the lowest-indexed feasible server —
// the classical bin-packing heuristic, useful as a floor for the
// smarter policies.
type FirstFit struct{}

// Name implements Algorithm.
func (FirstFit) Name() string { return "FirstFit" }

// Choose implements Algorithm.
func (FirstFit) Choose(servers []Server, r Request, _ *rng.RNG) int {
	for i := range servers {
		if servers[i].Fits(r) {
			return i
		}
	}
	return -1
}

// WorstFit places the request on the feasible server with the most free
// capacity (spreading load), the anti-packing policy schedulers use for
// latency isolation at the cost of fragmentation.
type WorstFit struct{}

// Name implements Algorithm.
func (WorstFit) Name() string { return "WorstFit" }

// Choose implements Algorithm.
func (WorstFit) Choose(servers []Server, r Request, _ *rng.RNG) int {
	best, bestScore := -1, math.Inf(-1)
	for i := range servers {
		s := &servers[i]
		if !s.Fits(r) {
			continue
		}
		score := (s.CPUCap-s.CPUUsed)/s.CPUCap + (s.MemCap-s.MemUsed)/s.MemCap
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// AllAlgorithms returns the paper's four policies plus the classical
// extras, for broader policy studies.
func AllAlgorithms() []Algorithm {
	return append(Algorithms(), FirstFit{}, WorstFit{})
}

// UtilizationPoint is one sample of cluster utilization over a replay.
type UtilizationPoint struct {
	Time    float64
	CPUFrac float64
	MemFrac float64
	Active  int // VMs currently placed
}

// ReplayUtilization replays the full event stream (no failure stop;
// requests that do not fit are dropped and counted) and samples cluster
// utilization every sampleEvery seconds. It returns the samples and the
// number of dropped requests — the measurement loop behind
// fragmentation studies.
func ReplayUtilization(tr *trace.Trace, events []Event, opt PackOptions, sampleEvery float64, g *rng.RNG) ([]UtilizationPoint, int) {
	if opt.Servers <= 0 || opt.CPUCap <= 0 || opt.MemCap <= 0 || sampleEvery <= 0 {
		panic("sched: bad ReplayUtilization options")
	}
	servers := make([]Server, opt.Servers)
	for i := range servers {
		servers[i] = Server{CPUCap: opt.CPUCap, MemCap: opt.MemCap}
	}
	placed := make(map[int]int)
	var out []UtilizationPoint
	dropped := 0
	nextSample := 0.0
	totalCPU := float64(opt.Servers) * opt.CPUCap
	totalMem := float64(opt.Servers) * opt.MemCap
	snapshot := func(at float64) {
		var cpu, mem float64
		for i := range servers {
			cpu += servers[i].CPUUsed
			mem += servers[i].MemUsed
		}
		out = append(out, UtilizationPoint{
			Time: at, CPUFrac: cpu / totalCPU, MemFrac: mem / totalMem, Active: len(placed),
		})
	}
	for _, ev := range events {
		for nextSample <= ev.Time {
			snapshot(nextSample)
			nextSample += sampleEvery
		}
		vm := tr.VMs[ev.VM]
		def := tr.Flavors.Defs[vm.Flavor]
		if !ev.Arrival {
			if srv, ok := placed[ev.VM]; ok {
				servers[srv].CPUUsed -= def.CPU
				servers[srv].MemUsed -= def.MemGB
				delete(placed, ev.VM)
			}
			continue
		}
		req := Request{VM: ev.VM, CPU: def.CPU, Mem: def.MemGB}
		srv := opt.Alg.Choose(servers, req, g)
		if srv < 0 {
			dropped++
			continue
		}
		servers[srv].CPUUsed += req.CPU
		servers[srv].MemUsed += req.Mem
		placed[ev.VM] = srv
	}
	// Final snapshot after the last event so the end state is observed.
	snapshot(nextSample)
	return out, dropped
}
