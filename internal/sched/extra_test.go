package sched

import (
	"testing"

	"repro/internal/rng"
)

func TestFirstFitTakesLowestIndex(t *testing.T) {
	servers := []Server{
		{CPUCap: 1, MemCap: 1, CPUUsed: 1}, // full
		{CPUCap: 4, MemCap: 4},
		{CPUCap: 4, MemCap: 4},
	}
	if got := (FirstFit{}).Choose(servers, Request{CPU: 1, Mem: 1}, nil); got != 1 {
		t.Fatalf("first-fit chose %d", got)
	}
	full := []Server{{CPUCap: 1, MemCap: 1, CPUUsed: 1}}
	if got := (FirstFit{}).Choose(full, Request{CPU: 1, Mem: 1}, nil); got != -1 {
		t.Fatalf("expected -1, got %d", got)
	}
}

func TestWorstFitSpreads(t *testing.T) {
	servers := []Server{
		{CPUCap: 10, MemCap: 10, CPUUsed: 8, MemUsed: 8},
		{CPUCap: 10, MemCap: 10, CPUUsed: 1, MemUsed: 1},
		{CPUCap: 10, MemCap: 10, CPUUsed: 5, MemUsed: 5},
	}
	if got := (WorstFit{}).Choose(servers, Request{CPU: 1, Mem: 1}, nil); got != 1 {
		t.Fatalf("worst-fit chose %d", got)
	}
}

func TestAllAlgorithms(t *testing.T) {
	algs := AllAlgorithms()
	if len(algs) != 6 {
		t.Fatalf("got %d algorithms", len(algs))
	}
	seen := map[string]bool{}
	for _, a := range algs {
		if seen[a.Name()] {
			t.Fatalf("duplicate algorithm %q", a.Name())
		}
		seen[a.Name()] = true
	}
}

func TestReplayUtilization(t *testing.T) {
	// Two long VMs of 4 CPUs onto one 8-CPU server: utilization ramps to
	// 1.0; a third is dropped.
	tr := mkTrace([3]int{0, 0, 9999999}, [3]int{0, 1, 9999999}, [3]int{0, 2, 9999999})
	evs := Events(tr, nil)
	pts, dropped := ReplayUtilization(tr, evs, PackOptions{
		Servers: 1, CPUCap: 8, MemCap: 100, Alg: FirstFit{},
	}, 300, rng.New(1))
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if len(pts) == 0 {
		t.Fatal("no samples")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatal("samples out of order")
		}
	}
	// At peak, both placed VMs saturate the 8-CPU server; they depart at
	// the end of their long lifetimes, so check the maximum rather than
	// the final sample.
	var peak UtilizationPoint
	for _, p := range pts {
		if p.CPUFrac > peak.CPUFrac {
			peak = p
		}
	}
	if peak.CPUFrac != 1.0 || peak.Active != 2 {
		t.Fatalf("peak sample: %+v", peak)
	}
	for _, p := range pts {
		if p.CPUFrac < 0 || p.CPUFrac > 1 || p.MemFrac < 0 || p.MemFrac > 1 {
			t.Fatalf("utilization out of range: %+v", p)
		}
	}
}

func TestReplayUtilizationDeparturesReduceLoad(t *testing.T) {
	// One VM that departs after 300s: utilization should return to 0.
	tr := mkTrace([3]int{0, 0, 300})
	evs := Events(tr, nil)
	pts, dropped := ReplayUtilization(tr, evs, PackOptions{
		Servers: 1, CPUCap: 8, MemCap: 100, Alg: FirstFit{},
	}, 100, rng.New(2))
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	// The final sample (after the departure) must be back at zero, and
	// the load must have been visible in between.
	last := pts[len(pts)-1]
	if last.CPUFrac != 0 || last.Active != 0 {
		t.Fatalf("utilization never returned to zero: %+v", pts)
	}
	sawLoad := false
	for _, p := range pts {
		if p.Active == 1 {
			sawLoad = true
		}
	}
	if !sawLoad {
		t.Fatalf("load never observed: %+v", pts)
	}
}

func TestReplayUtilizationBadOptsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReplayUtilization(mkTrace(), nil, PackOptions{}, 0, nil)
}
