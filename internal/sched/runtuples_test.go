package sched

import (
	"reflect"
	"testing"

	"repro/internal/par"
	"repro/internal/rng"
)

// TestRunTuplesMatchesSerial pins the parallel tuple fan-out to a plain
// serial loop over the same pre-split RNG streams: because every tuple's
// stream is split from g in tuple order before the fan-out, the packing
// results must be identical at any worker count.
func TestRunTuplesMatchesSerial(t *testing.T) {
	gv := rng.New(5)
	specs := make([][3]int, 60)
	for i := range specs {
		specs[i] = [3]int{gv.Intn(3), gv.Intn(80), 300 + gv.Intn(5000)}
	}
	tr := mkTrace(specs...)
	events := Events(tr, rng.New(6))
	tuples := SampleTuples(rng.New(7), 12, TupleRanges{
		MinServers: 2, MaxServers: 6,
		MinCPU: 2, MaxCPU: 8,
		MinMem: 2, MaxMem: 32,
	})

	ref := func() []PackResult {
		g := rng.New(8)
		gs := make([]*rng.RNG, len(tuples))
		for i := range gs {
			gs[i] = g.Split()
		}
		out := make([]PackResult, len(tuples))
		for i, tp := range tuples {
			out[i] = RunTuple(tr, events, tp, gs[i])
		}
		return out
	}()

	for _, procs := range []int{1, 8} {
		func() {
			defer par.SetProcs(par.SetProcs(procs))
			got := RunTuples(tr, events, tuples, rng.New(8))
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("procs=%d: RunTuples differs from serial reference", procs)
			}
		}()
	}
}
