// Package sched is the VM-scheduler substrate for the paper's §6.2
// workload-scheduling experiments: an event-driven placement simulator
// with the four packing algorithms the paper samples from (random
// placement, busiest-fit, cosine similarity [Tetris], and delta
// perpendicular-distance [Fundy]), the first-failure allocation ratio
// (FFAR) metric, and the reuse-distance metric of Protean.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Request is one VM placement request.
type Request struct {
	VM  int // index into the source trace's VMs
	CPU float64
	Mem float64
}

// Server is one physical machine in the simulated cluster.
type Server struct {
	CPUCap, MemCap   float64
	CPUUsed, MemUsed float64
}

// Fits reports whether the request fits in the server's free capacity.
func (s *Server) Fits(r Request) bool {
	return s.CPUUsed+r.CPU <= s.CPUCap+1e-9 && s.MemUsed+r.Mem <= s.MemCap+1e-9
}

// Algorithm selects a server for a request. Choose returns the index of
// the chosen feasible server, or -1 when no server fits.
type Algorithm interface {
	Name() string
	Choose(servers []Server, r Request, g *rng.RNG) int
}

// Random places the request on a uniformly random feasible server.
type Random struct{}

// Name implements Algorithm.
func (Random) Name() string { return "Random" }

// Choose implements Algorithm.
func (Random) Choose(servers []Server, r Request, g *rng.RNG) int {
	feasible := make([]int, 0, len(servers))
	for i := range servers {
		if servers[i].Fits(r) {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		return -1
	}
	return feasible[g.Intn(len(feasible))]
}

// BusiestFit places the request on the feasible server with the highest
// current utilization (normalized CPU + memory), packing tightly.
type BusiestFit struct{}

// Name implements Algorithm.
func (BusiestFit) Name() string { return "BusiestFit" }

// Choose implements Algorithm.
func (BusiestFit) Choose(servers []Server, r Request, _ *rng.RNG) int {
	best, bestScore := -1, math.Inf(-1)
	for i := range servers {
		s := &servers[i]
		if !s.Fits(r) {
			continue
		}
		score := s.CPUUsed/s.CPUCap + s.MemUsed/s.MemCap
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// CosineSimilarity places the request on the feasible server whose
// remaining-capacity vector is best aligned with the request vector
// (the multi-resource packing heuristic of Grandl et al.).
type CosineSimilarity struct{}

// Name implements Algorithm.
func (CosineSimilarity) Name() string { return "Cosine" }

// Choose implements Algorithm.
func (CosineSimilarity) Choose(servers []Server, r Request, _ *rng.RNG) int {
	best, bestScore := -1, math.Inf(-1)
	for i := range servers {
		s := &servers[i]
		if !s.Fits(r) {
			continue
		}
		freeCPU := (s.CPUCap - s.CPUUsed) / s.CPUCap
		freeMem := (s.MemCap - s.MemUsed) / s.MemCap
		reqCPU := r.CPU / s.CPUCap
		reqMem := r.Mem / s.MemCap
		dot := freeCPU*reqCPU + freeMem*reqMem
		na := math.Sqrt(freeCPU*freeCPU + freeMem*freeMem)
		nb := math.Sqrt(reqCPU*reqCPU + reqMem*reqMem)
		score := 0.0
		if na > 0 && nb > 0 {
			score = dot / (na * nb)
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// DeltaPerpDistance places the request on the feasible server that
// minimizes the increase of the utilization point's perpendicular
// distance from the balanced-use diagonal (the Fundy heuristic).
type DeltaPerpDistance struct{}

// Name implements Algorithm.
func (DeltaPerpDistance) Name() string { return "DeltaPerp" }

func perpDist(cpuFrac, memFrac float64) float64 {
	return math.Abs(cpuFrac-memFrac) / math.Sqrt2
}

// Choose implements Algorithm.
func (DeltaPerpDistance) Choose(servers []Server, r Request, _ *rng.RNG) int {
	best, bestDelta := -1, math.Inf(1)
	for i := range servers {
		s := &servers[i]
		if !s.Fits(r) {
			continue
		}
		before := perpDist(s.CPUUsed/s.CPUCap, s.MemUsed/s.MemCap)
		after := perpDist((s.CPUUsed+r.CPU)/s.CPUCap, (s.MemUsed+r.Mem)/s.MemCap)
		delta := after - before
		if delta < bestDelta {
			best, bestDelta = i, delta
		}
	}
	return best
}

// Algorithms returns the four paper algorithms in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{Random{}, BusiestFit{}, CosineSimilarity{}, DeltaPerpDistance{}}
}

// Event is one arrival or departure in the replay stream.
type Event struct {
	Time    float64
	Arrival bool
	VM      int // index into the trace's VMs
}

// Events builds the time-ordered arrival/departure stream for a trace
// per §2.4: arrivals are spread across their 5-minute period in
// generative order; each departure happens at arrival + duration, which
// interleaves departures with arrivals. g jitters departure placement
// within their own period; pass nil for deterministic spreading only.
func Events(tr *trace.Trace, g *rng.RNG) []Event {
	perPeriod := make(map[int][]int)
	maxPeriod := -1
	for i, vm := range tr.VMs {
		perPeriod[vm.Start] = append(perPeriod[vm.Start], i)
		if vm.Start > maxPeriod {
			maxPeriod = vm.Start
		}
	}
	// Iterate periods in order (not map order) so the jitter RNG draws
	// are assigned deterministically.
	events := make([]Event, 0, 2*len(tr.VMs))
	for p := 0; p <= maxPeriod; p++ {
		idxs, ok := perPeriod[p]
		if !ok {
			continue
		}
		n := len(idxs)
		for k, i := range idxs {
			at := float64(p)*trace.PeriodSeconds +
				trace.PeriodSeconds*float64(k+1)/float64(n+1)
			events = append(events, Event{Time: at, Arrival: true, VM: i})
			dur := tr.VMs[i].Duration
			if g != nil {
				// Re-place the departure uniformly within its period.
				depPeriod := math.Floor((at + dur) / trace.PeriodSeconds)
				dep := (depPeriod + g.Float64()) * trace.PeriodSeconds
				if dep <= at {
					dep = at + 1
				}
				events = append(events, Event{Time: dep, Arrival: false, VM: i})
			} else {
				events = append(events, Event{Time: at + dur, Arrival: false, VM: i})
			}
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].Time != events[b].Time {
			return events[a].Time < events[b].Time
		}
		// Departures before arrivals at identical times frees capacity
		// first, the optimistic (and conventional) tie-break.
		return !events[a].Arrival && events[b].Arrival
	})
	return events
}

// PackResult summarizes one packing run.
type PackResult struct {
	Failed   bool
	Placed   int     // requests placed before the first failure
	CPUFFAR  float64 // allocated CPU fraction at first failure
	MemFFAR  float64 // allocated memory fraction at first failure
	Limiting float64 // FFAR of the limiting (higher-FFAR) resource
}

// PackOptions configures a packing run.
type PackOptions struct {
	Servers   int
	CPUCap    float64
	MemCap    float64
	Alg       Algorithm
	Start     int  // index into the event stream to start from
	NoDeparts bool // arrivals-only variant (§6.2 robustness check)
}

// Pack replays the event stream onto an empty cluster until the first
// placement failure (or the stream ends) and reports FFAR. Departures of
// VMs that were never placed (e.g. they arrived before Start) are
// ignored.
func Pack(tr *trace.Trace, events []Event, opt PackOptions, g *rng.RNG) PackResult {
	if opt.Servers <= 0 || opt.CPUCap <= 0 || opt.MemCap <= 0 {
		panic(fmt.Sprintf("sched: bad pack options %+v", opt))
	}
	servers := make([]Server, opt.Servers)
	for i := range servers {
		servers[i] = Server{CPUCap: opt.CPUCap, MemCap: opt.MemCap}
	}
	placed := make(map[int]int) // vm index -> server
	var res PackResult
	for e := opt.Start; e < len(events); e++ {
		ev := events[e]
		vm := tr.VMs[ev.VM]
		if !ev.Arrival {
			if opt.NoDeparts {
				continue
			}
			if srv, ok := placed[ev.VM]; ok {
				def := tr.Flavors.Defs[vm.Flavor]
				servers[srv].CPUUsed -= def.CPU
				servers[srv].MemUsed -= def.MemGB
				delete(placed, ev.VM)
			}
			continue
		}
		def := tr.Flavors.Defs[vm.Flavor]
		req := Request{VM: ev.VM, CPU: def.CPU, Mem: def.MemGB}
		srv := opt.Alg.Choose(servers, req, g)
		if srv < 0 {
			res.Failed = true
			break
		}
		servers[srv].CPUUsed += req.CPU
		servers[srv].MemUsed += req.Mem
		placed[ev.VM] = srv
		res.Placed++
	}
	var cpuUsed, memUsed float64
	for i := range servers {
		cpuUsed += servers[i].CPUUsed
		memUsed += servers[i].MemUsed
	}
	res.CPUFFAR = cpuUsed / (float64(opt.Servers) * opt.CPUCap)
	res.MemFFAR = memUsed / (float64(opt.Servers) * opt.MemCap)
	res.Limiting = math.Max(res.CPUFFAR, res.MemFFAR)
	return res
}

// ReuseDistances computes, for each VM request in trace arrival order,
// the number of unique flavors requested since the last request of the
// same flavor (Protean's reuse-distance metric). First-time flavors get
// distance math.MaxInt (bucketed as "6+" downstream).
func ReuseDistances(tr *trace.Trace) []int {
	// Move-to-front list of flavors, most recent first; the reuse
	// distance is the list index (number of distinct flavors requested
	// more recently). The flavor universe is small (≤ a few hundred), so
	// a linear scan per request is cheap.
	var stack []int
	out := make([]int, len(tr.VMs))
	for i, vm := range tr.VMs {
		idx := -1
		for j, f := range stack {
			if f == vm.Flavor {
				idx = j
				break
			}
		}
		if idx < 0 {
			out[i] = math.MaxInt
		} else {
			out[i] = idx
			stack = append(stack[:idx], stack[idx+1:]...)
		}
		stack = append(stack, 0)
		copy(stack[1:], stack[:len(stack)-1])
		stack[0] = vm.Flavor
	}
	return out
}

// ReuseBuckets is the Figure 9 x-axis: distances 0..5 and "6+"
// (first-time flavors land in 6+).
const ReuseBuckets = 7

// ReuseHistogram buckets reuse distances into 0..5 and 6+ proportions.
func ReuseHistogram(distances []int) []float64 {
	counts := make([]int, ReuseBuckets)
	for _, d := range distances {
		if d >= 6 {
			counts[6]++
		} else {
			counts[d]++
		}
	}
	out := make([]float64, ReuseBuckets)
	if len(distances) == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(len(distances))
	}
	return out
}

// Tuple is one randomly sampled scheduling configuration (§6.2).
type Tuple struct {
	StartFrac float64 // fraction through the event stream to start at
	Servers   int
	CPUCap    float64
	MemCap    float64
	AlgIndex  int // index into Algorithms()
}

// TupleRanges bounds the tuple sampler. Capacities are sampled
// log-uniformly between the min and max.
type TupleRanges struct {
	MinServers, MaxServers int
	MinCPU, MaxCPU         float64
	MinMem, MaxMem         float64
}

// SampleTuples draws n scheduling tuples. The same tuples are reused
// across generators to reduce variance, as in the paper.
func SampleTuples(g *rng.RNG, n int, r TupleRanges) []Tuple {
	if r.MinServers <= 0 || r.MaxServers < r.MinServers {
		panic(fmt.Sprintf("sched: bad tuple ranges %+v", r))
	}
	algs := len(Algorithms())
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{
			StartFrac: g.Float64() * 0.5,
			Servers:   r.MinServers + g.Intn(r.MaxServers-r.MinServers+1),
			CPUCap:    logUniform(g, r.MinCPU, r.MaxCPU),
			MemCap:    logUniform(g, r.MinMem, r.MaxMem),
			AlgIndex:  g.Intn(algs),
		}
	}
	return out
}

func logUniform(g *rng.RNG, lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("sched: logUniform needs 0 < lo <= hi")
	}
	return math.Exp(g.Uniform(math.Log(lo), math.Log(hi)))
}

// RunTuple packs the trace under one tuple and returns the result.
func RunTuple(tr *trace.Trace, events []Event, tp Tuple, g *rng.RNG) PackResult {
	start := int(tp.StartFrac * float64(len(events)))
	return Pack(tr, events, PackOptions{
		Servers: tp.Servers,
		CPUCap:  tp.CPUCap,
		MemCap:  tp.MemCap,
		Alg:     Algorithms()[tp.AlgIndex],
		Start:   start,
	}, g)
}

// RunTuples packs the trace under every tuple, in parallel when the
// worker pool allows. Each tuple draws from its own RNG stream split
// from g serially in tuple order before the fan-out, and results are
// returned indexed by tuple, so the output is identical at any worker
// count.
func RunTuples(tr *trace.Trace, events []Event, tuples []Tuple, g *rng.RNG) []PackResult {
	gs := make([]*rng.RNG, len(tuples))
	for i := range gs {
		gs[i] = g.Split()
	}
	out := make([]PackResult, len(tuples))
	par.Do(len(tuples), func(i int) {
		out[i] = RunTuple(tr, events, tuples[i], gs[i])
	})
	return out
}
